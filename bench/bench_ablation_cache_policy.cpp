/**
 * @file
 * Section VIII ablation ("Pinned vs demand-based cache replacement
 * policy"): compare GROW's statically pinned HDN cache against an
 * LRU-managed cache of the same capacity, with and without graph
 * partitioning. The paper reports that pinning the high-degree nodes
 * yields the most robust speedups because evicting a hub costs far more
 * than the low-degree locality LRU picks up.
 */
#include "common.hpp"

using namespace grow;
using namespace grow::bench;

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv);
    ctx.banner("Sec. VIII ablation: pinned vs LRU HDN cache");

    TextTable t("Cache replacement policy");
    t.setHeader({"dataset", "pinned hit", "LRU hit",
                 "pinned cycles", "LRU cycles", "pinned advantage"});
    std::vector<double> advantage;
    for (const auto &spec : ctx.specs()) {
        const auto &pin = ctx.inference(spec.name, "grow");
        const auto &lru = ctx.inference(spec.name, "grow-lru");
        double adv = static_cast<double>(lru.totalCycles) /
                     static_cast<double>(pin.totalCycles);
        advantage.push_back(adv);
        t.addRow({spec.name, fmtPercent(pin.cacheHitRate()),
                  fmtPercent(lru.cacheHitRate()),
                  fmtCount(pin.totalCycles), fmtCount(lru.totalCycles),
                  fmtRatio(adv)});
    }
    t.print();
    TextTable avg("Average");
    avg.setHeader({"metric", "value"});
    avg.addRow({"geomean pinned-over-LRU speedup (paper: pinning "
                "'most robust')",
                fmtRatio(geomean(advantage))});
    avg.print();
    return 0;
}
