/**
 * @file
 * Section VIII ablation ("Pinned vs demand-based cache replacement
 * policy"): compare GROW's statically pinned HDN cache against an
 * LRU-managed cache of the same capacity, with and without graph
 * partitioning. The paper reports that pinning the high-degree nodes
 * yields the most robust speedups because evicting a hub costs far more
 * than the low-degree locality LRU picks up.
 */
#include "common.hpp"

using namespace grow;
using namespace grow::bench;

GROW_BENCH_MAIN("ablation_cache_policy")
{
    BenchContext ctx(argc, argv);
    ctx.banner("Sec. VIII ablation: pinned vs LRU HDN cache");

    auto t = ctx.table("cache_policy", "Cache replacement policy");
    t.col("dataset", "dataset")
        .col("pinned_hit_rate", "pinned hit")
        .col("lru_hit_rate", "LRU hit")
        .col("pinned_cycles", "pinned cycles", "cycles")
        .col("lru_cycles", "LRU cycles", "cycles")
        .col("pinned_advantage", "pinned advantage");
    std::vector<double> advantage;
    for (const auto &spec : ctx.specs()) {
        const auto &pin = ctx.inference(spec.name, "grow");
        const auto &lru = ctx.inference(spec.name, "grow-lru");
        double adv = static_cast<double>(lru.totalCycles) /
                     static_cast<double>(pin.totalCycles);
        advantage.push_back(adv);
        t.row({.dataset = spec.name})
            .add(report::textCell(spec.name))
            .add(report::fraction(pin.cacheHitRate()))
            .add(report::fraction(lru.cacheHitRate()))
            .add(report::count(pin.totalCycles, "cycles"))
            .add(report::count(lru.totalCycles, "cycles"))
            .add(report::ratio(adv));
    }
    auto avg = ctx.table("cache_policy_avg", "Average");
    avg.col("metric", "metric").col("geomean_pinned_advantage", "value");
    avg.row()
        .add(report::textCell(
            "geomean pinned-over-LRU speedup (paper: pinning "
            "'most robust')"))
        .add(report::ratio(geomean(advantage)));
    return 0;
}
