/**
 * @file
 * DRAM-model fidelity ablation: re-run the headline GROW-vs-GCNAX
 * comparison with the banked row-buffer DRAM model instead of the
 * bandwidth/latency channel. The qualitative conclusions must be
 * insensitive to the memory-model choice (DESIGN.md, Sec. 5).
 */
#include "common.hpp"

using namespace grow;
using namespace grow::bench;

GROW_BENCH_MAIN("ablation_dram_model")
{
    BenchContext ctx(argc, argv, "tiny");
    ctx.banner("DRAM model ablation: simple channel vs banked "
               "row-buffer");

    auto t = ctx.table("dram_model", "GROW cycles under both DRAM models");
    t.col("dataset", "dataset")
        .col("simple_cycles", "simple", "cycles")
        .col("banked_cycles", "banked", "cycles")
        .col("banked_over_simple", "banked/simple");
    for (const auto &spec : ctx.specs()) {
        const auto &w = ctx.workload(spec.name);
        gcn::RunOptions opt = ctx.runOptions();
        opt.usePartitioning = true;
        core::GrowSim simA(driver::growDefaultConfig());
        auto simple = gcn::runInference(simA, w, opt);
        opt.sim.dramKind = "banked";
        core::GrowSim simB(driver::growDefaultConfig());
        auto banked = gcn::runInference(simB, w, opt);
        t.row({.dataset = spec.name, .engine = "grow"})
            .add(report::textCell(spec.name))
            .add(report::count(simple.totalCycles, "cycles"))
            .add(report::count(banked.totalCycles, "cycles"))
            .add(report::real(
                static_cast<double>(banked.totalCycles) /
                    static_cast<double>(simple.totalCycles),
                2));
    }
    return 0;
}
