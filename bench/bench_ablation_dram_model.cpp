/**
 * @file
 * DRAM-model fidelity ablation: re-run the headline GROW-vs-GCNAX
 * comparison with the banked row-buffer DRAM model instead of the
 * bandwidth/latency channel. The qualitative conclusions must be
 * insensitive to the memory-model choice (DESIGN.md, Sec. 5).
 */
#include "common.hpp"

using namespace grow;
using namespace grow::bench;

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv, "tiny");
    ctx.banner("DRAM model ablation: simple channel vs banked "
               "row-buffer");

    TextTable t("GROW cycles under both DRAM models");
    t.setHeader({"dataset", "simple", "banked", "banked/simple"});
    for (const auto &spec : ctx.specs()) {
        const auto &w = ctx.workload(spec.name);
        gcn::RunnerOptions opt;
        opt.usePartitioning = true;
        core::GrowSim simA(driver::growDefaultConfig());
        auto simple = gcn::runInference(simA, w, opt);
        opt.sim.dramKind = "banked";
        core::GrowSim simB(driver::growDefaultConfig());
        auto banked = gcn::runInference(simB, w, opt);
        t.addRow({spec.name, fmtCount(simple.totalCycles),
                  fmtCount(banked.totalCycles),
                  fmtDouble(static_cast<double>(banked.totalCycles) /
                                static_cast<double>(simple.totalCycles),
                            2)});
    }
    t.print();
    return 0;
}
