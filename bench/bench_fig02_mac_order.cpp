/**
 * @file
 * Figure 2 reproduction: normalized MAC counts of the two execution
 * orders (A*X)*W vs A*(X*W). The A*(XW) order should need dramatically
 * fewer MACs, which is why all unified SpDeGEMM accelerators adopt it
 * (Sec. II-B).
 */
#include "common.hpp"
#include "sparse/reference_gemm.hpp"

using namespace grow;
using namespace grow::bench;

GROW_BENCH_MAIN("fig02_mac_order")
{
    BenchContext ctx(argc, argv);
    ctx.banner("Figure 2: MACs by execution order, layer 1 "
               "(normalized to (A*X)*W)");

    auto t = ctx.table("fig02", "Figure 2");
    t.col("dataset", "dataset")
        .col("macs_ax_then_w", "(AX)W MACs", "count")
        .col("macs_xw_then_a", "A(XW) MACs", "count")
        .col("mac_ratio", "A(XW)/(AX)W");
    for (const auto &spec : ctx.specs()) {
        const auto &w = ctx.workload(spec.name);
        auto counts = sparse::countMacsBothOrders(w.adjacency(), w.x(0),
                                                  w.shape().hidden);
        double ratio = static_cast<double>(counts.xwThenA) /
                       static_cast<double>(counts.axThenW);
        t.row({.dataset = spec.name})
            .add(report::textCell(spec.name))
            .add(report::sci(double(counts.axThenW), 2, "count"))
            .add(report::sci(double(counts.xwThenA), 2, "count"))
            .add(report::real(ratio, 3));
    }
    return 0;
}
