/**
 * @file
 * Figure 2 reproduction: normalized MAC counts of the two execution
 * orders (A*X)*W vs A*(X*W). The A*(XW) order should need dramatically
 * fewer MACs, which is why all unified SpDeGEMM accelerators adopt it
 * (Sec. II-B).
 */
#include "common.hpp"
#include "sparse/reference_gemm.hpp"

using namespace grow;
using namespace grow::bench;

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv);
    ctx.banner("Figure 2: MACs by execution order, layer 1 "
               "(normalized to (A*X)*W)");

    TextTable t("Figure 2");
    t.setHeader({"dataset", "(AX)W MACs", "A(XW) MACs", "A(XW)/(AX)W"});
    for (const auto &spec : ctx.specs()) {
        const auto &w = ctx.workload(spec.name);
        auto counts = sparse::countMacsBothOrders(w.adjacency(), w.x(0),
                                                  w.shape().hidden);
        double ratio = static_cast<double>(counts.xwThenA) /
                       static_cast<double>(counts.axThenW);
        t.addRow({spec.name, fmtSci(double(counts.axThenW)),
                  fmtSci(double(counts.xwThenA)), fmtDouble(ratio, 3)});
    }
    t.print();
    return 0;
}
