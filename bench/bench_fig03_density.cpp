/**
 * @file
 * Figure 3 reproduction: density of the sparse operands (A, X) and the
 * dense operands (XW, W) of aggregation and combination. A is orders of
 * magnitude sparser than X; the RHS matrices are fully dense.
 */
#include "common.hpp"

using namespace grow;
using namespace grow::bench;

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv);
    ctx.banner("Figure 3: operand densities");

    TextTable t("Figure 3(a): sparse operands");
    t.setHeader({"dataset", "density A", "density X(0)", "density X(1)",
                 "A/X(0) sparsity gap"});
    for (const auto &spec : ctx.specs()) {
        const auto &w = ctx.workload(spec.name);
        double dA = w.adjacency().density();
        double dX = w.x(0).density();
        t.addRow({spec.name, fmtSci(dA), fmtPercent(dX, 2),
                  fmtPercent(w.x(1).density(), 1),
                  dA > 0 ? fmtRatio(dX / dA, 0) : "-"});
    }
    t.print();

    TextTable d("Figure 3(b): dense operands");
    d.setHeader({"dataset", "density XW", "density W"});
    for (const auto &spec : ctx.specs()) {
        // XW and W are dense by construction (the paper measures
        // ~100%); the simulator treats them as uncompressed.
        d.addRow({spec.name, "100%", "100%"});
    }
    d.print();
    return 0;
}
