/**
 * @file
 * Figure 3 reproduction: density of the sparse operands (A, X) and the
 * dense operands (XW, W) of aggregation and combination. A is orders of
 * magnitude sparser than X; the RHS matrices are fully dense.
 */
#include "common.hpp"

using namespace grow;
using namespace grow::bench;

GROW_BENCH_MAIN("fig03_density")
{
    BenchContext ctx(argc, argv);
    ctx.banner("Figure 3: operand densities");

    auto t = ctx.table("fig03a", "Figure 3(a): sparse operands");
    t.col("dataset", "dataset")
        .col("density_a", "density A", "fraction")
        .col("density_x0", "density X(0)")
        .col("density_x1", "density X(1)")
        .col("sparsity_gap", "A/X(0) sparsity gap");
    for (const auto &spec : ctx.specs()) {
        const auto &w = ctx.workload(spec.name);
        double dA = w.adjacency().density();
        double dX = w.x(0).density();
        t.row({.dataset = spec.name})
            .add(report::textCell(spec.name))
            .add(report::sci(dA, 2, "fraction"))
            .add(report::fraction(dX, 2))
            .add(report::fraction(w.x(1).density(), 1))
            .add(dA > 0 ? report::ratio(dX / dA, 0)
                        : report::textCell("-"));
    }

    auto d = ctx.table("fig03b", "Figure 3(b): dense operands");
    d.col("dataset", "dataset")
        .col("density_xw", "density XW")
        .col("density_w", "density W");
    for (const auto &spec : ctx.specs()) {
        // XW and W are dense by construction (the paper measures
        // ~100%); the simulator treats them as uncompressed.
        d.row({.dataset = spec.name})
            .add(report::textCell(spec.name))
            .add(report::custom(1.0, "100%", "fraction"))
            .add(report::custom(1.0, "100%", "fraction"));
    }
    return 0;
}
