/**
 * @file
 * Figure 5 reproduction: number of non-zeros per fetched GCNAX tile for
 * (a) the adjacency matrix A during aggregation and (b) the feature
 * matrix X during combination, using GCNAX's own per-phase tile choice.
 * Aggregation tiles are expected to hold only a handful of non-zeros
 * while combination tiles hold hundreds-to-thousands.
 */
#include "common.hpp"
#include "sparse/tiling.hpp"

using namespace grow;
using namespace grow::bench;

namespace {

void
addHistogram(BenchContext &ctx, const char *id, const char *title,
             bool aggregation, const std::vector<uint64_t> &bounds)
{
    auto t = ctx.table(id, title);
    t.col("dataset", "dataset").col("tile", "tile (Tm x Tk)");
    {
        BucketHistogram proto(bounds);
        for (size_t b = 0; b < proto.numBuckets(); ++b)
            t.col("bin_" + std::to_string(b), proto.label(b), "fraction");
    }

    accel::GcnaxSim gcnax(driver::gcnaxDefaultConfig());
    for (const auto &spec : ctx.specs()) {
        const auto &w = ctx.workload(spec.name);
        const sparse::CsrMatrix &m = aggregation ? w.adjacency() : w.x(0);
        // Both phases of layer 0 produce hidden-width outputs.
        uint32_t rhsCols = w.layer(0).outDim;
        auto tiling = gcnax.chooseTiling(m, rhsCols);
        auto stats = sparse::TileGridStats::compute(
            m, sparse::TileShape{tiling.tm, tiling.tk});
        auto h = stats.nnzHistogram(bounds);
        auto row = t.row({.dataset = spec.name});
        row.add(report::textCell(spec.name))
            .add(report::textCell(std::to_string(tiling.tm) + " x " +
                                  std::to_string(tiling.tk)));
        for (size_t b = 0; b < h.numBuckets(); ++b)
            row.add(report::fraction(h.fraction(b)));
    }
}

} // namespace

GROW_BENCH_MAIN("fig05_tile_nnz")
{
    BenchContext ctx(argc, argv);
    ctx.banner("Figure 5: non-zeros per fetched GCNAX tile");
    addHistogram(ctx, "fig05a", "Figure 5(a): matrix A (aggregation)",
                 true, {1, 2, 8, 16});
    addHistogram(ctx, "fig05b", "Figure 5(b): matrix X (combination)",
                 false, {1, 2, 8, 1024});
    return 0;
}
