/**
 * @file
 * Figure 6 reproduction: effective memory bandwidth utilization when
 * GCNAX fetches the sparse operands A and X, measured as effectual
 * bytes / fetched bytes at 64 B access granularity. The adjacency
 * matrix wastes most of the bandwidth; the feature matrix does not.
 * GROW's 1-D row streaming utilization is shown for contrast
 * (Fig. 10's argument).
 */
#include "common.hpp"
#include "sparse/tiling.hpp"

using namespace grow;
using namespace grow::bench;

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv);
    ctx.banner("Figure 6: effective DRAM bandwidth fetching sparse "
               "operands (GCNAX)");

    TextTable t("Figure 6");
    t.setHeader({"dataset", "A util (GCNAX)", "X util (GCNAX)",
                 "A util (GROW stream)"});
    accel::GcnaxSim gcnax(driver::gcnaxDefaultConfig());
    accel::SimOptions opt;
    std::vector<double> utilA;
    for (const auto &spec : ctx.specs()) {
        const auto &w = ctx.workload(spec.name);

        accel::SpDeGemmProblem agg;
        agg.lhs = &w.adjacency();
        agg.rhsCols = w.shape().hidden;
        auto ra = gcnax.run(agg, opt);

        accel::SpDeGemmProblem comb;
        comb.lhs = &w.x(0);
        comb.rhsCols = w.shape().hidden;
        comb.rhsOnChip = true;
        auto rx = gcnax.run(comb, opt);

        auto stream = sparse::rowStreamFetchTotals(w.adjacency());
        utilA.push_back(ra.sparseBandwidthUtil());
        t.addRow({spec.name, fmtPercent(ra.sparseBandwidthUtil()),
                  fmtPercent(rx.sparseBandwidthUtil()),
                  fmtPercent(stream.utilization())});
    }
    t.print();
    TextTable avg("Average");
    avg.setHeader({"metric", "value"});
    avg.addRow({"mean A utilization (paper: ~23%)",
                fmtPercent(geomean(utilA))});
    avg.print();
    return 0;
}
