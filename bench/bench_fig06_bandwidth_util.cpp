/**
 * @file
 * Figure 6 reproduction: effective memory bandwidth utilization when
 * GCNAX fetches the sparse operands A and X, measured as effectual
 * bytes / fetched bytes at 64 B access granularity. The adjacency
 * matrix wastes most of the bandwidth; the feature matrix does not.
 * GROW's 1-D row streaming utilization is shown for contrast
 * (Fig. 10's argument).
 */
#include "common.hpp"
#include "sparse/tiling.hpp"

using namespace grow;
using namespace grow::bench;

GROW_BENCH_MAIN("fig06_bandwidth_util")
{
    BenchContext ctx(argc, argv);
    ctx.banner("Figure 6: effective DRAM bandwidth fetching sparse "
               "operands (GCNAX)");

    auto t = ctx.table("fig06", "Figure 6");
    t.col("dataset", "dataset")
        .col("util_a_gcnax", "A util (GCNAX)")
        .col("util_x_gcnax", "X util (GCNAX)")
        .col("util_a_grow_stream", "A util (GROW stream)");
    accel::GcnaxSim gcnax(driver::gcnaxDefaultConfig());
    accel::SimOptions opt;
    std::vector<double> utilA;
    for (const auto &spec : ctx.specs()) {
        const auto &w = ctx.workload(spec.name);

        accel::SpDeGemmProblem agg;
        agg.lhs = &w.adjacency();
        agg.rhsCols = w.shape().hidden;
        auto ra = gcnax.run(agg, opt);

        accel::SpDeGemmProblem comb;
        comb.lhs = &w.x(0);
        comb.rhsCols = w.shape().hidden;
        comb.rhsOnChip = true;
        auto rx = gcnax.run(comb, opt);

        auto stream = sparse::rowStreamFetchTotals(w.adjacency());
        utilA.push_back(ra.sparseBandwidthUtil());
        t.row({.dataset = spec.name})
            .add(report::textCell(spec.name))
            .add(report::fraction(ra.sparseBandwidthUtil()))
            .add(report::fraction(rx.sparseBandwidthUtil()))
            .add(report::fraction(stream.utilization()));
    }
    auto avg = ctx.table("fig06_avg", "Average");
    avg.col("metric", "metric").col("mean_util_a_gcnax", "value");
    avg.row()
        .add(report::textCell("mean A utilization (paper: ~23%)"))
        .add(report::fraction(geomean(utilA)));
    return 0;
}
