/**
 * @file
 * Figure 7 reproduction: breakdown of GCNAX's end-to-end inference
 * latency into aggregation and combination. Aggregation dominates for
 * the large, sparse graphs -- the bottleneck GROW attacks.
 */
#include "common.hpp"

using namespace grow;
using namespace grow::bench;

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv);
    ctx.banner("Figure 7: GCNAX latency breakdown");

    TextTable t("Figure 7");
    t.setHeader({"dataset", "total cycles", "aggregation", "combination",
                 "attention"});
    for (const auto &spec : ctx.specs()) {
        const auto &r = ctx.inference(spec.name, "gcnax");
        // Each share is attributed from its own counter (not derived
        // as a remainder) so model-zoo runs with an attention phase
        // (model=gat) report honestly; attention is 0% for the
        // paper's GCN workloads.
        const double total = static_cast<double>(r.totalCycles);
        t.addRow({spec.name, fmtCount(r.totalCycles),
                  fmtPercent(static_cast<double>(r.aggregationCycles) /
                             total),
                  fmtPercent(static_cast<double>(r.combinationCycles) /
                             total),
                  fmtPercent(static_cast<double>(r.attentionCycles) /
                             total)});
    }
    t.print();
    return 0;
}
