/**
 * @file
 * Figure 7 reproduction: breakdown of GCNAX's end-to-end inference
 * latency into aggregation and combination. Aggregation dominates for
 * the large, sparse graphs -- the bottleneck GROW attacks.
 */
#include "common.hpp"

using namespace grow;
using namespace grow::bench;

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv);
    ctx.banner("Figure 7: GCNAX latency breakdown");

    TextTable t("Figure 7");
    t.setHeader({"dataset", "total cycles", "aggregation", "combination"});
    for (const auto &spec : ctx.specs()) {
        const auto &r = ctx.inference(spec.name, "gcnax");
        double agg = static_cast<double>(r.aggregationCycles) /
                     static_cast<double>(r.totalCycles);
        t.addRow({spec.name, fmtCount(r.totalCycles), fmtPercent(agg),
                  fmtPercent(1.0 - agg)});
    }
    t.print();
    return 0;
}
