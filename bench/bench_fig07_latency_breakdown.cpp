/**
 * @file
 * Figure 7 reproduction: breakdown of GCNAX's end-to-end inference
 * latency into aggregation and combination. Aggregation dominates for
 * the large, sparse graphs -- the bottleneck GROW attacks.
 */
#include "common.hpp"

using namespace grow;
using namespace grow::bench;

GROW_BENCH_MAIN("fig07_latency_breakdown")
{
    BenchContext ctx(argc, argv);
    ctx.banner("Figure 7: GCNAX latency breakdown");

    auto t = ctx.table("fig07", "Figure 7");
    t.col("dataset", "dataset")
        .col("total_cycles", "total cycles", "cycles")
        .col("aggregation_frac", "aggregation")
        .col("combination_frac", "combination")
        .col("attention_frac", "attention");
    for (const auto &spec : ctx.specs()) {
        const auto &r = ctx.inference(spec.name, "gcnax");
        // Each share is attributed from its own counter (not derived
        // as a remainder) so model-zoo runs with an attention phase
        // (model=gat) report honestly; attention is 0% for the
        // paper's GCN workloads.
        const double total = static_cast<double>(r.totalCycles);
        t.row({.dataset = spec.name, .engine = "gcnax"})
            .add(report::textCell(spec.name))
            .add(report::count(r.totalCycles, "cycles"))
            .add(report::fraction(
                static_cast<double>(r.aggregationCycles) / total))
            .add(report::fraction(
                static_cast<double>(r.combinationCycles) / total))
            .add(report::fraction(
                static_cast<double>(r.attentionCycles) / total));
    }
    return 0;
}
