/**
 * @file
 * Figure 11 reproduction: the power-law degree distribution that makes
 * HDN caching effective. Prints the sorted-degree curve of Reddit (the
 * paper's example) at logarithmic rank points, plus the coverage the
 * HDN cache achieves by pinning the head of the distribution.
 */
#include "common.hpp"
#include "graph/degree_stats.hpp"

using namespace grow;
using namespace grow::bench;

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv, "mini", "reddit");
    ctx.banner("Figure 11: power-law degree distribution");

    for (const auto &spec : ctx.specs()) {
        const auto &g = ctx.workload(spec.name).graph();
        auto degrees = graph::sortedDegreesDesc(g);

        TextTable t("Figure 11: " + spec.name +
                    " (sorted degree curve)");
        t.setHeader({"rank", "degree", "cumulative edge coverage"});
        uint64_t cum = 0;
        size_t next = 1;
        for (size_t i = 0; i < degrees.size(); ++i) {
            cum += degrees[i];
            if (i + 1 == next || i + 1 == degrees.size()) {
                t.addRow({fmtCount(i + 1), fmtCount(degrees[i]),
                          fmtPercent(static_cast<double>(cum) /
                                     static_cast<double>(g.numArcs()))});
                next *= 4;
            }
        }
        t.print();

        auto h = graph::degreeHistogram(g);
        TextTable s("HDN-cache relevance");
        s.setHeader({"metric", "value"});
        s.addRow({"nodes", fmtCount(g.numNodes())});
        s.addRow({"max degree", fmtCount(h.maxValue())});
        s.addRow({"mean degree", fmtDouble(h.mean(), 1)});
        s.addRow({"power-law alpha (MLE)", fmtDouble(h.powerLawAlpha(4), 2)});
        s.addRow({"coverage of top-1024 nodes (one HDN cache)",
                  fmtPercent(graph::topKDegreeCoverage(g, 1024))});
        s.addRow({"coverage of top-4096 nodes (CAM capacity)",
                  fmtPercent(graph::topKDegreeCoverage(g, 4096))});
        s.print();
    }
    return 0;
}
