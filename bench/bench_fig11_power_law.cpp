/**
 * @file
 * Figure 11 reproduction: the power-law degree distribution that makes
 * HDN caching effective. Prints the sorted-degree curve of Reddit (the
 * paper's example) at logarithmic rank points, plus the coverage the
 * HDN cache achieves by pinning the head of the distribution.
 */
#include "common.hpp"
#include "graph/degree_stats.hpp"

using namespace grow;
using namespace grow::bench;

GROW_BENCH_MAIN("fig11_power_law")
{
    BenchContext ctx(argc, argv, "mini", "reddit");
    ctx.banner("Figure 11: power-law degree distribution");

    for (const auto &spec : ctx.specs()) {
        const auto g = ctx.workload(spec.name).graphView();
        auto degrees = graph::sortedDegreesDesc(g);

        auto t = ctx.table("fig11_curve",
                           "Figure 11: " + spec.name +
                               " (sorted degree curve)");
        t.col("rank", "rank")
            .col("degree", "degree", "count")
            .col("edge_coverage", "cumulative edge coverage");
        uint64_t cum = 0;
        size_t next = 1;
        for (size_t i = 0; i < degrees.size(); ++i) {
            cum += degrees[i];
            if (i + 1 == next || i + 1 == degrees.size()) {
                t.row({.dataset = spec.name,
                       .extra = {{"rank", std::to_string(i + 1)}}})
                    .add(report::count(i + 1))
                    .add(report::count(degrees[i]))
                    .add(report::fraction(
                        static_cast<double>(cum) /
                        static_cast<double>(g.numArcs())));
                next *= 4;
            }
        }

        auto h = graph::degreeHistogram(g);
        auto s = ctx.table("fig11_hdn_relevance", "HDN-cache relevance");
        s.col("metric", "metric").col("value", "value");
        auto statRow = [&](const char *slug) {
            return s.row({.dataset = spec.name,
                          .extra = {{"stat", slug}}});
        };
        statRow("nodes")
            .add(report::textCell("nodes"))
            .add(report::count(g.numNodes()));
        statRow("max_degree")
            .add(report::textCell("max degree"))
            .add(report::count(h.maxValue()));
        statRow("mean_degree")
            .add(report::textCell("mean degree"))
            .add(report::real(h.mean(), 1));
        statRow("power_law_alpha")
            .add(report::textCell("power-law alpha (MLE)"))
            .add(report::real(h.powerLawAlpha(4), 2));
        statRow("coverage_top1024")
            .add(report::textCell(
                "coverage of top-1024 nodes (one HDN cache)"))
            .add(report::fraction(graph::topKDegreeCoverage(g, 1024)));
        statRow("coverage_top4096")
            .add(report::textCell(
                "coverage of top-4096 nodes (CAM capacity)"))
            .add(report::fraction(graph::topKDegreeCoverage(g, 4096)));
    }
    return 0;
}
