/**
 * @file
 * Figure 14 reproduction: the effect of graph partitioning on the
 * adjacency matrix structure. The figure shows non-zeros concentrating
 * into diagonal blocks; we quantify the same effect as the fraction of
 * non-zeros that fall inside the k x k diagonal blocks before vs after
 * the METIS-like partitioning + relabeling pass (8 partitions, as in
 * the figure).
 */
#include "common.hpp"
#include "partition/metrics.hpp"
#include "partition/multilevel.hpp"
#include "partition/relabel.hpp"

using namespace grow;
using namespace grow::bench;

namespace {

/**
 * Fraction of arcs inside equal diagonal blocks of a graph, under an
 * optional relabeling (empty @p old_to_new means identity IDs). Working
 * off the permutation avoids materializing the relabeled graph.
 */
double
diagonalBlockMass(const graph::CsrView &g, uint32_t blocks,
                  const std::vector<NodeId> &old_to_new = {})
{
    uint64_t intra = 0;
    uint32_t per = (g.numNodes() + blocks - 1) / blocks;
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        const NodeId rv = old_to_new.empty() ? v : old_to_new[v];
        for (NodeId nb : g.neighbors(v)) {
            const NodeId rnb = old_to_new.empty() ? nb : old_to_new[nb];
            intra += (rv / per) == (rnb / per);
        }
    }
    return g.numArcs() == 0
               ? 0.0
               : static_cast<double>(intra) /
                     static_cast<double>(g.numArcs());
}

} // namespace

GROW_BENCH_MAIN("fig14_partition_structure")
{
    BenchContext ctx(argc, argv, "mini", "reddit,yelp,pokec,amazon");
    ctx.banner("Figure 14: partitioning effect on adjacency structure "
               "(8 partitions)");

    auto t = ctx.table("fig14", "Figure 14");
    t.col("dataset", "dataset")
        .col("diag_mass_original", "diag mass (original IDs)")
        .col("diag_mass_partitioned",
             "diag mass (partitioned+relabeled)")
        .col("edge_cut", "edge cut", "count")
        .col("balance", "balance");
    const uint32_t blocks = 8;
    for (const auto &spec : ctx.specs()) {
        const auto g = ctx.workload(spec.name).graphView();
        partition::PartitionConfig pc;
        pc.numParts = blocks;
        pc.seed = 5;
        auto parts =
            partition::MultilevelPartitioner(pc).partition(g);
        auto q = partition::evaluatePartition(g, parts);
        auto relabel =
            partition::relabelByPartition(g.numNodes(), parts);
        std::vector<NodeId> oldToNew(g.numNodes());
        for (NodeId v = 0; v < g.numNodes(); ++v)
            oldToNew[relabel.newToOld[v]] = v;
        t.row({.dataset = spec.name})
            .add(report::textCell(spec.name))
            .add(report::fraction(diagonalBlockMass(g, blocks)))
            .add(report::fraction(
                diagonalBlockMass(g, blocks, oldToNew)))
            .add(report::count(q.cutEdges))
            .add(report::real(q.balance, 2));
    }
    return 0;
}
