/**
 * @file
 * Figure 14 reproduction: the effect of graph partitioning on the
 * adjacency matrix structure. The figure shows non-zeros concentrating
 * into diagonal blocks; we quantify the same effect as the fraction of
 * non-zeros that fall inside the k x k diagonal blocks before vs after
 * the METIS-like partitioning + relabeling pass (8 partitions, as in
 * the figure).
 */
#include "common.hpp"
#include "partition/metrics.hpp"
#include "partition/multilevel.hpp"
#include "partition/relabel.hpp"

using namespace grow;
using namespace grow::bench;

namespace {

/** Fraction of arcs inside equal diagonal blocks of a graph. */
double
diagonalBlockMass(const graph::Graph &g, uint32_t blocks)
{
    uint64_t intra = 0;
    uint32_t per = (g.numNodes() + blocks - 1) / blocks;
    for (NodeId v = 0; v < g.numNodes(); ++v)
        for (NodeId nb : g.neighbors(v))
            intra += (v / per) == (nb / per);
    return g.numArcs() == 0
               ? 0.0
               : static_cast<double>(intra) /
                     static_cast<double>(g.numArcs());
}

} // namespace

GROW_BENCH_MAIN("fig14_partition_structure")
{
    BenchContext ctx(argc, argv, "mini", "reddit,yelp,pokec,amazon");
    ctx.banner("Figure 14: partitioning effect on adjacency structure "
               "(8 partitions)");

    auto t = ctx.table("fig14", "Figure 14");
    t.col("dataset", "dataset")
        .col("diag_mass_original", "diag mass (original IDs)")
        .col("diag_mass_partitioned",
             "diag mass (partitioned+relabeled)")
        .col("edge_cut", "edge cut", "count")
        .col("balance", "balance");
    const uint32_t blocks = 8;
    for (const auto &spec : ctx.specs()) {
        const auto &g = ctx.workload(spec.name).graph();
        partition::PartitionConfig pc;
        pc.numParts = blocks;
        pc.seed = 5;
        auto parts =
            partition::MultilevelPartitioner(pc).partition(g);
        auto q = partition::evaluatePartition(g, parts);
        auto relabel =
            partition::relabelByPartition(g.numNodes(), parts);
        auto rg = g.relabeled(relabel.newToOld);
        t.row({.dataset = spec.name})
            .add(report::textCell(spec.name))
            .add(report::fraction(diagonalBlockMass(g, blocks)))
            .add(report::fraction(diagonalBlockMass(rg, blocks)))
            .add(report::count(q.cutEdges))
            .add(report::real(q.balance, 2));
    }
    return 0;
}
