/**
 * @file
 * Figure 14 reproduction: the effect of graph partitioning on the
 * adjacency matrix structure. The figure shows non-zeros concentrating
 * into diagonal blocks; we quantify the same effect as the fraction of
 * non-zeros that fall inside the k x k diagonal blocks before vs after
 * the METIS-like partitioning + relabeling pass (8 partitions, as in
 * the figure).
 */
#include "common.hpp"
#include "partition/metrics.hpp"
#include "partition/multilevel.hpp"
#include "partition/relabel.hpp"

using namespace grow;
using namespace grow::bench;

namespace {

/** Fraction of arcs inside equal diagonal blocks of a graph. */
double
diagonalBlockMass(const graph::Graph &g, uint32_t blocks)
{
    uint64_t intra = 0;
    uint32_t per = (g.numNodes() + blocks - 1) / blocks;
    for (NodeId v = 0; v < g.numNodes(); ++v)
        for (NodeId nb : g.neighbors(v))
            intra += (v / per) == (nb / per);
    return g.numArcs() == 0
               ? 0.0
               : static_cast<double>(intra) /
                     static_cast<double>(g.numArcs());
}

} // namespace

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv, "mini", "reddit,yelp,pokec,amazon");
    ctx.banner("Figure 14: partitioning effect on adjacency structure "
               "(8 partitions)");

    TextTable t("Figure 14");
    t.setHeader({"dataset", "diag mass (original IDs)",
                 "diag mass (partitioned+relabeled)", "edge cut",
                 "balance"});
    const uint32_t blocks = 8;
    for (const auto &spec : ctx.specs()) {
        const auto &g = ctx.workload(spec.name).graph();
        partition::PartitionConfig pc;
        pc.numParts = blocks;
        pc.seed = 5;
        auto parts =
            partition::MultilevelPartitioner(pc).partition(g);
        auto q = partition::evaluatePartition(g, parts);
        auto relabel =
            partition::relabelByPartition(g.numNodes(), parts);
        auto rg = g.relabeled(relabel.newToOld);
        t.addRow({spec.name, fmtPercent(diagonalBlockMass(g, blocks)),
                  fmtPercent(diagonalBlockMass(rg, blocks)),
                  fmtCount(q.cutEdges), fmtDouble(q.balance, 2)});
    }
    t.print();
    return 0;
}
