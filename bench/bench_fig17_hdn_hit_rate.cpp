/**
 * @file
 * Figure 17 reproduction: HDN cache hit rate with and without graph
 * partitioning. Without G.P. the cache pins the global top-N degree
 * nodes; with G.P. it pins the per-cluster top-N, which captures far
 * more locality on large graphs.
 */
#include "common.hpp"

using namespace grow;
using namespace grow::bench;

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv);
    ctx.banner("Figure 17: HDN cache hit rate");

    TextTable t("Figure 17");
    t.setHeader({"dataset", "GROW (w/o G.P)", "GROW (with G.P)",
                 "improvement"});
    for (const auto &spec : ctx.specs()) {
        const auto &noGp = ctx.inference(spec.name, "grow-nogp");
        const auto &gp = ctx.inference(spec.name, "grow");
        double a = noGp.cacheHitRate();
        double b = gp.cacheHitRate();
        t.addRow({spec.name, fmtPercent(a), fmtPercent(b),
                  a > 0 ? fmtRatio(b / a) : "-"});
    }
    t.print();
    return 0;
}
