/**
 * @file
 * Figure 17 reproduction: HDN cache hit rate with and without graph
 * partitioning. Without G.P. the cache pins the global top-N degree
 * nodes; with G.P. it pins the per-cluster top-N, which captures far
 * more locality on large graphs.
 */
#include "common.hpp"

using namespace grow;
using namespace grow::bench;

GROW_BENCH_MAIN("fig17_hdn_hit_rate")
{
    BenchContext ctx(argc, argv);
    ctx.banner("Figure 17: HDN cache hit rate");

    auto t = ctx.table("fig17", "Figure 17");
    t.col("dataset", "dataset")
        .col("hit_rate_nogp", "GROW (w/o G.P)")
        .col("hit_rate_gp", "GROW (with G.P)")
        .col("improvement", "improvement");
    for (const auto &spec : ctx.specs()) {
        const auto &noGp = ctx.inference(spec.name, "grow-nogp");
        const auto &gp = ctx.inference(spec.name, "grow");
        double a = noGp.cacheHitRate();
        double b = gp.cacheHitRate();
        t.row({.dataset = spec.name})
            .add(report::textCell(spec.name))
            .add(report::fraction(a))
            .add(report::fraction(b))
            .add(a > 0 ? report::ratio(b / a) : report::textCell("-"));
    }
    return 0;
}
