/**
 * @file
 * Figure 18 reproduction: total DRAM bytes per inference, normalized to
 * GCNAX. GROW with graph partitioning cuts traffic ~2x on average in
 * the paper (max 4.7x), with Reddit as the adversarial case where
 * GROW's row-stationary fetch loses to GCNAX's dense tiles.
 */
#include "common.hpp"

using namespace grow;
using namespace grow::bench;

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv);
    ctx.banner("Figure 18: DRAM traffic normalized to GCNAX "
               "(lower is better)");

    TextTable t("Figure 18");
    t.setHeader({"dataset", "GCNAX (bytes)", "GCNAX", "GROW (w/o G.P)",
                 "GROW (with G.P)", "reduction (with G.P)"});
    std::vector<double> reductions;
    for (const auto &spec : ctx.specs()) {
        double base = static_cast<double>(
            ctx.inference(spec.name, "gcnax").totalTrafficBytes());
        double noGp = static_cast<double>(
            ctx.inference(spec.name, "grow-nogp").totalTrafficBytes());
        double gp = static_cast<double>(
            ctx.inference(spec.name, "grow").totalTrafficBytes());
        reductions.push_back(base / gp);
        t.addRow({spec.name,
                  fmtBytes(static_cast<Bytes>(base)), "1.00",
                  fmtDouble(noGp / base, 2), fmtDouble(gp / base, 2),
                  fmtRatio(base / gp)});
    }
    t.print();
    TextTable avg("Average");
    avg.setHeader({"metric", "value"});
    avg.addRow({"geomean traffic reduction (paper: ~2x, max 4.7x)",
                fmtRatio(geomean(reductions))});
    avg.print();
    return 0;
}
