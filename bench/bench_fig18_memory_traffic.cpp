/**
 * @file
 * Figure 18 reproduction: total DRAM bytes per inference, normalized to
 * GCNAX. GROW with graph partitioning cuts traffic ~2x on average in
 * the paper (max 4.7x), with Reddit as the adversarial case where
 * GROW's row-stationary fetch loses to GCNAX's dense tiles.
 */
#include "common.hpp"

using namespace grow;
using namespace grow::bench;

GROW_BENCH_MAIN("fig18_memory_traffic")
{
    BenchContext ctx(argc, argv);
    ctx.banner("Figure 18: DRAM traffic normalized to GCNAX "
               "(lower is better)");

    auto t = ctx.table("fig18", "Figure 18");
    t.col("dataset", "dataset")
        .col("gcnax_bytes", "GCNAX (bytes)", "bytes")
        .col("gcnax_norm", "GCNAX")
        .col("nogp_norm", "GROW (w/o G.P)")
        .col("gp_norm", "GROW (with G.P)")
        .col("traffic_reduction_gp", "reduction (with G.P)");
    std::vector<double> reductions;
    for (const auto &spec : ctx.specs()) {
        double base = static_cast<double>(
            ctx.inference(spec.name, "gcnax").totalTrafficBytes());
        double noGp = static_cast<double>(
            ctx.inference(spec.name, "grow-nogp").totalTrafficBytes());
        double gp = static_cast<double>(
            ctx.inference(spec.name, "grow").totalTrafficBytes());
        reductions.push_back(base / gp);
        t.row({.dataset = spec.name})
            .add(report::textCell(spec.name))
            .add(report::bytesValue(static_cast<Bytes>(base)))
            .add(report::custom(1.0, "1.00", ""))
            .add(report::real(noGp / base, 2))
            .add(report::real(gp / base, 2))
            .add(report::ratio(base / gp));
    }
    auto avg = ctx.table("fig18_avg", "Average");
    avg.col("metric", "metric").col("geomean_traffic_reduction", "value");
    avg.row()
        .add(report::textCell(
            "geomean traffic reduction (paper: ~2x, max 4.7x)"))
        .add(report::ratio(geomean(reductions)));
    return 0;
}
