/**
 * @file
 * Figure 19 reproduction: DRAM traffic reduction from HDN caching and
 * graph partitioning, normalized to GROW *without* either (higher is
 * better). The paper reports HDN caching alone buys ~4.3x and adding
 * partitioning ~5.8x on average.
 */
#include "common.hpp"

using namespace grow;
using namespace grow::bench;

GROW_BENCH_MAIN("fig19_traffic_ablation")
{
    BenchContext ctx(argc, argv);
    ctx.banner("Figure 19: traffic reduction from HDN caching + G.P "
               "(normalized to GROW w/o HDN caching)");

    auto t = ctx.table("fig19", "Figure 19");
    t.col("dataset", "dataset")
        .col("no_cache_norm", "w/o HDN caching")
        .col("cache_gain", "w/ HDN caching")
        .col("cache_gp_gain", "w/ HDN caching + G.P");
    std::vector<double> cacheGain, bothGain;
    for (const auto &spec : ctx.specs()) {
        double none = static_cast<double>(
            ctx.inference(spec.name, "grow-nocache").totalTrafficBytes());
        double cache = static_cast<double>(
            ctx.inference(spec.name, "grow-nogp").totalTrafficBytes());
        double both = static_cast<double>(
            ctx.inference(spec.name, "grow").totalTrafficBytes());
        cacheGain.push_back(none / cache);
        bothGain.push_back(none / both);
        t.row({.dataset = spec.name})
            .add(report::textCell(spec.name))
            .add(report::custom(1.0, "1.00", ""))
            .add(report::ratio(none / cache))
            .add(report::ratio(none / both));
    }
    auto avg = ctx.table("fig19_avg", "Average");
    avg.col("metric", "metric").col("geomean_gain", "value");
    avg.row({.extra = {{"config", "hdn_cache"}}})
        .add(report::textCell("geomean w/ HDN caching (paper: ~4.3x)"))
        .add(report::ratio(geomean(cacheGain)));
    avg.row({.extra = {{"config", "hdn_cache_gp"}}})
        .add(report::textCell(
            "geomean w/ caching + G.P (paper: ~5.8x)"))
        .add(report::ratio(geomean(bothGain)));
    return 0;
}
