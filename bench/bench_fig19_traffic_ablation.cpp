/**
 * @file
 * Figure 19 reproduction: DRAM traffic reduction from HDN caching and
 * graph partitioning, normalized to GROW *without* either (higher is
 * better). The paper reports HDN caching alone buys ~4.3x and adding
 * partitioning ~5.8x on average.
 */
#include "common.hpp"

using namespace grow;
using namespace grow::bench;

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv);
    ctx.banner("Figure 19: traffic reduction from HDN caching + G.P "
               "(normalized to GROW w/o HDN caching)");

    TextTable t("Figure 19");
    t.setHeader({"dataset", "w/o HDN caching", "w/ HDN caching",
                 "w/ HDN caching + G.P"});
    std::vector<double> cacheGain, bothGain;
    for (const auto &spec : ctx.specs()) {
        double none = static_cast<double>(
            ctx.inference(spec.name, "grow-nocache").totalTrafficBytes());
        double cache = static_cast<double>(
            ctx.inference(spec.name, "grow-nogp").totalTrafficBytes());
        double both = static_cast<double>(
            ctx.inference(spec.name, "grow").totalTrafficBytes());
        cacheGain.push_back(none / cache);
        bothGain.push_back(none / both);
        t.addRow({spec.name, "1.00", fmtRatio(none / cache),
                  fmtRatio(none / both)});
    }
    t.print();
    TextTable avg("Average");
    avg.setHeader({"metric", "value"});
    avg.addRow({"geomean w/ HDN caching (paper: ~4.3x)",
                fmtRatio(geomean(cacheGain))});
    avg.addRow({"geomean w/ caching + G.P (paper: ~5.8x)",
                fmtRatio(geomean(bothGain))});
    avg.print();
    return 0;
}
