/**
 * @file
 * Figure 20 reproduction: (a) end-to-end speedup over GCNAX and (b) the
 * per-engine latency breakdown into aggregation/combination. GROW's
 * gains come from collapsing the aggregation bottleneck, shifting the
 * residual time into combination.
 */
#include "common.hpp"

using namespace grow;
using namespace grow::bench;

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv);
    ctx.banner("Figure 20(a): speedup vs GCNAX");

    // All engine x dataset combinations are independent: run them
    // concurrently up front, then read the cache below.
    ctx.prefetch({"gcnax", "grow-nogp", "grow"});

    TextTable t("Figure 20(a)");
    t.setHeader({"dataset", "GCNAX cycles", "GROW (w/o G.P)",
                 "GROW (with G.P)"});
    std::vector<double> speedups;
    for (const auto &spec : ctx.specs()) {
        double base = static_cast<double>(
            ctx.inference(spec.name, "gcnax").totalCycles);
        double noGp = static_cast<double>(
            ctx.inference(spec.name, "grow-nogp").totalCycles);
        double gp = static_cast<double>(
            ctx.inference(spec.name, "grow").totalCycles);
        speedups.push_back(base / gp);
        t.addRow({spec.name, fmtCount(static_cast<uint64_t>(base)),
                  fmtRatio(base / noGp), fmtRatio(base / gp)});
    }
    t.print();
    TextTable avg("Average");
    avg.setHeader({"metric", "value"});
    avg.addRow({"geomean speedup with G.P (paper: 2.8x avg, 14.2x max)",
                fmtRatio(geomean(speedups))});
    avg.print();

    ctx.banner("Figure 20(b): latency breakdown (fraction aggregation)");
    TextTable b("Figure 20(b)");
    b.setHeader({"dataset", "GCNAX agg%", "GROW (w/o G.P) agg%",
                 "GROW (with G.P) agg%"});
    for (const auto &spec : ctx.specs()) {
        auto aggFrac = [&](const char *key) {
            const auto &r = ctx.inference(spec.name, key);
            return static_cast<double>(r.aggregationCycles) /
                   static_cast<double>(r.totalCycles);
        };
        b.addRow({spec.name, fmtPercent(aggFrac("gcnax")),
                  fmtPercent(aggFrac("grow-nogp")),
                  fmtPercent(aggFrac("grow"))});
    }
    b.print();
    return 0;
}
