/**
 * @file
 * Figure 20 reproduction: (a) end-to-end speedup over GCNAX and (b) the
 * per-engine latency breakdown into aggregation/combination. GROW's
 * gains come from collapsing the aggregation bottleneck, shifting the
 * residual time into combination.
 */
#include "common.hpp"

using namespace grow;
using namespace grow::bench;

GROW_BENCH_MAIN("fig20_speedup")
{
    BenchContext ctx(argc, argv);
    ctx.banner("Figure 20(a): speedup vs GCNAX");

    // All engine x dataset combinations are independent: run them
    // concurrently up front, then read the cache below.
    ctx.prefetch({"gcnax", "grow-nogp", "grow"});

    auto t = ctx.table("fig20a", "Figure 20(a)");
    t.col("dataset", "dataset")
        .col("gcnax_cycles", "GCNAX cycles", "cycles")
        .col("speedup_nogp", "GROW (w/o G.P)")
        .col("speedup_gp", "GROW (with G.P)");
    std::vector<double> speedups;
    for (const auto &spec : ctx.specs()) {
        double base = static_cast<double>(
            ctx.inference(spec.name, "gcnax").totalCycles);
        double noGp = static_cast<double>(
            ctx.inference(spec.name, "grow-nogp").totalCycles);
        double gp = static_cast<double>(
            ctx.inference(spec.name, "grow").totalCycles);
        speedups.push_back(base / gp);
        t.row({.dataset = spec.name})
            .add(report::textCell(spec.name))
            .add(report::count(static_cast<uint64_t>(base), "cycles"))
            .add(report::ratio(base / noGp))
            .add(report::ratio(base / gp));
    }
    auto avg = ctx.table("fig20a_avg", "Average");
    avg.col("metric", "metric").col("geomean_speedup_gp", "value");
    avg.row()
        .add(report::textCell(
            "geomean speedup with G.P (paper: 2.8x avg, 14.2x max)"))
        .add(report::ratio(geomean(speedups)));

    ctx.banner("Figure 20(b): latency breakdown (fraction aggregation)");
    auto b = ctx.table("fig20b", "Figure 20(b)");
    b.col("dataset", "dataset")
        .col("gcnax_agg_frac", "GCNAX agg%")
        .col("nogp_agg_frac", "GROW (w/o G.P) agg%")
        .col("gp_agg_frac", "GROW (with G.P) agg%");
    for (const auto &spec : ctx.specs()) {
        auto aggFrac = [&](const char *key) {
            const auto &r = ctx.inference(spec.name, key);
            return static_cast<double>(r.aggregationCycles) /
                   static_cast<double>(r.totalCycles);
        };
        b.row({.dataset = spec.name})
            .add(report::textCell(spec.name))
            .add(report::fraction(aggFrac("gcnax")))
            .add(report::fraction(aggFrac("grow-nogp")))
            .add(report::fraction(aggFrac("grow")));
    }
    return 0;
}
