/**
 * @file
 * Figure 21 reproduction: incremental ablation of GROW's three
 * mechanisms. Baseline = row-stationary dataflow + HDN cache but no
 * runahead and no partitioning; then runahead execution is enabled;
 * then graph partitioning. Speedups are relative to GCNAX.
 */
#include "common.hpp"

using namespace grow;
using namespace grow::bench;

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv);
    ctx.banner("Figure 21: ablation (speedup vs GCNAX)");

    TextTable t("Figure 21");
    t.setHeader({"dataset", "HDN cache only", "+ runahead",
                 "+ graph partition"});
    std::vector<double> s1, s2, s3;
    for (const auto &spec : ctx.specs()) {
        double base = static_cast<double>(
            ctx.inference(spec.name, "gcnax").totalCycles);
        double cacheOnly = static_cast<double>(
            ctx.inference(spec.name, "grow-norunahead").totalCycles);
        double runahead = static_cast<double>(
            ctx.inference(spec.name, "grow-nogp").totalCycles);
        double full = static_cast<double>(
            ctx.inference(spec.name, "grow").totalCycles);
        s1.push_back(base / cacheOnly);
        s2.push_back(base / runahead);
        s3.push_back(base / full);
        t.addRow({spec.name, fmtRatio(base / cacheOnly),
                  fmtRatio(base / runahead), fmtRatio(base / full)});
    }
    t.print();
    TextTable avg("Average (paper: ~1.4x -> ~2.5x -> ~2.8x)");
    avg.setHeader({"config", "geomean speedup"});
    avg.addRow({"HDN cache only", fmtRatio(geomean(s1))});
    avg.addRow({"+ runahead", fmtRatio(geomean(s2))});
    avg.addRow({"+ graph partition", fmtRatio(geomean(s3))});
    avg.print();
    return 0;
}
