/**
 * @file
 * Figure 21 reproduction: incremental ablation of GROW's three
 * mechanisms. Baseline = row-stationary dataflow + HDN cache but no
 * runahead and no partitioning; then runahead execution is enabled;
 * then graph partitioning. Speedups are relative to GCNAX.
 */
#include "common.hpp"

using namespace grow;
using namespace grow::bench;

GROW_BENCH_MAIN("fig21_ablation")
{
    BenchContext ctx(argc, argv);
    ctx.banner("Figure 21: ablation (speedup vs GCNAX)");

    auto t = ctx.table("fig21", "Figure 21");
    t.col("dataset", "dataset")
        .col("speedup_cache_only", "HDN cache only")
        .col("speedup_runahead", "+ runahead")
        .col("speedup_gp", "+ graph partition");
    std::vector<double> s1, s2, s3;
    for (const auto &spec : ctx.specs()) {
        double base = static_cast<double>(
            ctx.inference(spec.name, "gcnax").totalCycles);
        double cacheOnly = static_cast<double>(
            ctx.inference(spec.name, "grow-norunahead").totalCycles);
        double runahead = static_cast<double>(
            ctx.inference(spec.name, "grow-nogp").totalCycles);
        double full = static_cast<double>(
            ctx.inference(spec.name, "grow").totalCycles);
        s1.push_back(base / cacheOnly);
        s2.push_back(base / runahead);
        s3.push_back(base / full);
        t.row({.dataset = spec.name})
            .add(report::textCell(spec.name))
            .add(report::ratio(base / cacheOnly))
            .add(report::ratio(base / runahead))
            .add(report::ratio(base / full));
    }
    auto avg = ctx.table("fig21_avg",
                         "Average (paper: ~1.4x -> ~2.5x -> ~2.8x)");
    avg.col("label", "config").col("geomean_speedup", "geomean speedup");
    avg.row({.extra = {{"config", "cache_only"}}})
        .add(report::textCell("HDN cache only"))
        .add(report::ratio(geomean(s1)));
    avg.row({.extra = {{"config", "runahead"}}})
        .add(report::textCell("+ runahead"))
        .add(report::ratio(geomean(s2)));
    avg.row({.extra = {{"config", "graph_partition"}}})
        .add(report::textCell("+ graph partition"))
        .add(report::ratio(geomean(s3)));
    return 0;
}
