/**
 * @file
 * Figure 22 reproduction: energy consumption normalized to GCNAX, split
 * into the paper's five categories (MAC, register file, SRAM, DRAM
 * dynamic; leakage static). DRAM movement dominates, so GROW's traffic
 * reduction translates into an energy-efficiency win (~2.3x average in
 * the paper).
 */
#include "common.hpp"

using namespace grow;
using namespace grow::bench;

GROW_BENCH_MAIN("fig22_energy")
{
    BenchContext ctx(argc, argv);
    ctx.banner("Figure 22: energy normalized to GCNAX");

    auto t = ctx.table("fig22", "Figure 22");
    t.col("dataset", "dataset")
        .col("engine", "engine")
        .col("mac_norm", "MAC")
        .col("rf_norm", "RF")
        .col("sram_norm", "SRAM")
        .col("dram_norm", "DRAM")
        .col("static_norm", "static")
        .col("total_norm", "total");
    std::vector<double> gains;
    for (const auto &spec : ctx.specs()) {
        double base =
            ctx.inference(spec.name, "gcnax").energy.total();
        for (const char *key : {"gcnax", "grow-nogp", "grow"}) {
            const auto &e = ctx.inference(spec.name, key).energy;
            t.row({.dataset = spec.name, .engine = key})
                .add(report::textCell(spec.name))
                .add(report::textCell(key))
                .add(report::real(e.macPj / base, 3))
                .add(report::real(e.rfPj / base, 3))
                .add(report::real(e.sramPj / base, 3))
                .add(report::real(e.dramPj / base, 3))
                .add(report::real(e.staticPj / base, 3))
                .add(report::real(e.total() / base, 3));
        }
        gains.push_back(base /
                        ctx.inference(spec.name, "grow").energy.total());
    }
    auto avg = ctx.table("fig22_avg", "Average");
    avg.col("metric", "metric").col("geomean_energy_gain", "value");
    avg.row()
        .add(report::textCell(
            "geomean energy-efficiency gain (paper: ~2.3x)"))
        .add(report::ratio(geomean(gains)));
    return 0;
}
