/**
 * @file
 * Figure 22 reproduction: energy consumption normalized to GCNAX, split
 * into the paper's five categories (MAC, register file, SRAM, DRAM
 * dynamic; leakage static). DRAM movement dominates, so GROW's traffic
 * reduction translates into an energy-efficiency win (~2.3x average in
 * the paper).
 */
#include "common.hpp"

using namespace grow;
using namespace grow::bench;

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv);
    ctx.banner("Figure 22: energy normalized to GCNAX");

    TextTable t("Figure 22");
    t.setHeader({"dataset", "engine", "MAC", "RF", "SRAM", "DRAM",
                 "static", "total"});
    std::vector<double> gains;
    for (const auto &spec : ctx.specs()) {
        double base =
            ctx.inference(spec.name, "gcnax").energy.total();
        for (const char *key : {"gcnax", "grow-nogp", "grow"}) {
            const auto &e = ctx.inference(spec.name, key).energy;
            t.addRow({spec.name, key, fmtDouble(e.macPj / base, 3),
                      fmtDouble(e.rfPj / base, 3),
                      fmtDouble(e.sramPj / base, 3),
                      fmtDouble(e.dramPj / base, 3),
                      fmtDouble(e.staticPj / base, 3),
                      fmtDouble(e.total() / base, 3)});
        }
        gains.push_back(base /
                        ctx.inference(spec.name, "grow").energy.total());
    }
    t.print();
    TextTable avg("Average");
    avg.setHeader({"metric", "value"});
    avg.addRow({"geomean energy-efficiency gain (paper: ~2.3x)",
                fmtRatio(geomean(gains))});
    avg.print();
    return 0;
}
