/**
 * @file
 * Figure 24 reproduction: throughput as the PE count sweeps 1..16 with
 * proportional memory bandwidth. Small graphs saturate with one PE;
 * large graphs scale close to linearly because the row-stationary
 * dataflow parallelises over clusters.
 */
#include "common.hpp"

using namespace grow;
using namespace grow::bench;

GROW_BENCH_MAIN("fig24_pe_scaling")
{
    BenchContext ctx(argc, argv, "tiny");
    ctx.banner("Figure 24: PE scaling (throughput normalized to 1 PE)");

    auto t = ctx.table("fig24", "Figure 24");
    t.col("dataset", "dataset");
    for (uint32_t pes : {1u, 2u, 4u, 8u, 16u})
        t.col("speedup_pe" + std::to_string(pes),
              std::to_string(pes) + " PE");
    for (const auto &spec : ctx.specs()) {
        const auto &w = ctx.workload(spec.name);
        gcn::RunOptions opt = ctx.runOptions();
        opt.usePartitioning = true;
        auto row = t.row({.dataset = spec.name, .engine = "grow"});
        row.add(report::textCell(spec.name));
        double base = 0;
        for (uint32_t pes : {1u, 2u, 4u, 8u, 16u}) {
            core::GrowConfig cfg = driver::growDefaultConfig();
            cfg.numPes = pes;
            core::GrowSim sim(cfg);
            auto r = gcn::runInference(sim, w, opt);
            double cycles = static_cast<double>(r.totalCycles);
            if (pes == 1)
                base = cycles;
            row.add(report::real(base / cycles, 2));
        }
    }
    return 0;
}
