/**
 * @file
 * Figure 24 reproduction: throughput as the PE count sweeps 1..16 with
 * proportional memory bandwidth. Small graphs saturate with one PE;
 * large graphs scale close to linearly because the row-stationary
 * dataflow parallelises over clusters.
 */
#include "common.hpp"

using namespace grow;
using namespace grow::bench;

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv, "tiny");
    ctx.banner("Figure 24: PE scaling (throughput normalized to 1 PE)");

    TextTable t("Figure 24");
    t.setHeader({"dataset", "1 PE", "2 PE", "4 PE", "8 PE", "16 PE"});
    for (const auto &spec : ctx.specs()) {
        const auto &w = ctx.workload(spec.name);
        gcn::RunnerOptions opt;
        opt.usePartitioning = true;
        std::vector<std::string> row{spec.name};
        double base = 0;
        for (uint32_t pes : {1u, 2u, 4u, 8u, 16u}) {
            core::GrowConfig cfg = driver::growDefaultConfig();
            cfg.numPes = pes;
            core::GrowSim sim(cfg);
            auto r = gcn::runInference(sim, w, opt);
            double cycles = static_cast<double>(r.totalCycles);
            if (pes == 1)
                base = cycles;
            row.push_back(fmtDouble(base / cycles, 2));
        }
        t.addRow(row);
    }
    t.print();
    return 0;
}
