/**
 * @file
 * Figure 25(a) reproduction: throughput vs runahead execution degree
 * (1..32-way), normalized to 1-way. Gains grow until the LDN/LHS-ID
 * tables saturate around 8-16-way.
 */
#include "common.hpp"

using namespace grow;
using namespace grow::bench;

GROW_BENCH_MAIN("fig25a_runahead_sweep")
{
    BenchContext ctx(argc, argv, "tiny");
    ctx.banner("Figure 25(a): runahead degree sweep "
               "(throughput normalized to 1-way)");

    auto t = ctx.table("fig25a", "Figure 25(a)");
    t.col("dataset", "dataset");
    for (uint32_t degree : {1u, 2u, 4u, 8u, 16u, 32u})
        t.col("speedup_ra" + std::to_string(degree),
              std::to_string(degree) + "-way");
    for (const auto &spec : ctx.specs()) {
        const auto &w = ctx.workload(spec.name);
        gcn::RunOptions opt = ctx.runOptions();
        opt.usePartitioning = true;
        auto row = t.row({.dataset = spec.name, .engine = "grow"});
        row.add(report::textCell(spec.name));
        double base = 0;
        for (uint32_t degree : {1u, 2u, 4u, 8u, 16u, 32u}) {
            core::GrowConfig cfg = driver::growDefaultConfig();
            cfg.runaheadDegree = degree;
            core::GrowSim sim(cfg);
            auto r = gcn::runInference(sim, w, opt);
            double cycles = static_cast<double>(r.totalCycles);
            if (degree == 1)
                base = cycles;
            row.add(report::real(base / cycles, 2));
        }
    }
    return 0;
}
