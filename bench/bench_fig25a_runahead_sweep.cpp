/**
 * @file
 * Figure 25(a) reproduction: throughput vs runahead execution degree
 * (1..32-way), normalized to 1-way. Gains grow until the LDN/LHS-ID
 * tables saturate around 8-16-way.
 */
#include "common.hpp"

using namespace grow;
using namespace grow::bench;

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv, "tiny");
    ctx.banner("Figure 25(a): runahead degree sweep "
               "(throughput normalized to 1-way)");

    TextTable t("Figure 25(a)");
    t.setHeader({"dataset", "1-way", "2-way", "4-way", "8-way", "16-way",
                 "32-way"});
    for (const auto &spec : ctx.specs()) {
        const auto &w = ctx.workload(spec.name);
        gcn::RunnerOptions opt;
        opt.usePartitioning = true;
        std::vector<std::string> row{spec.name};
        double base = 0;
        for (uint32_t degree : {1u, 2u, 4u, 8u, 16u, 32u}) {
            core::GrowConfig cfg = driver::growDefaultConfig();
            cfg.runaheadDegree = degree;
            core::GrowSim sim(cfg);
            auto r = gcn::runInference(sim, w, opt);
            double cycles = static_cast<double>(r.totalCycles);
            if (degree == 1)
                base = cycles;
            row.push_back(fmtDouble(base / cycles, 2));
        }
        t.addRow(row);
    }
    t.print();
    return 0;
}
