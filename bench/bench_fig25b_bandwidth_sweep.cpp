/**
 * @file
 * Figure 25(b) reproduction: sensitivity to off-chip bandwidth
 * (16..256 GB/s), each engine normalized to its own 64 GB/s point.
 * GCNAX's curve is much steeper than GROW's -- it lives and dies by
 * memory bandwidth, while GROW's better utilization flattens the slope.
 */
#include "common.hpp"

using namespace grow;
using namespace grow::bench;

GROW_BENCH_MAIN("fig25b_bandwidth_sweep")
{
    BenchContext ctx(argc, argv, "tiny");
    ctx.banner("Figure 25(b): bandwidth sweep (normalized to own "
               "64 GB/s point)");

    const std::vector<double> bws = {16, 32, 64, 128, 256};
    auto t = ctx.table("fig25b", "Figure 25(b)");
    t.col("dataset", "dataset").col("engine", "engine");
    for (double bw : bws)
        t.col("speedup_bw" + std::to_string(static_cast<int>(bw)),
              fmtDouble(bw, 0) + " GB/s");

    auto addEngineRow = [&](const graph::DatasetSpec &spec,
                            const char *engine,
                            const std::vector<double> &cycles) {
        auto row = t.row({.dataset = spec.name, .engine = engine});
        row.add(report::textCell(spec.name))
            .add(report::textCell(engine));
        for (double c : cycles)
            row.add(report::real(cycles[2] / c, 2));
    };

    for (const auto &spec : ctx.specs()) {
        const auto &w = ctx.workload(spec.name);
        // GROW.
        {
            std::vector<double> cycles;
            for (double bw : bws) {
                core::GrowConfig cfg = driver::growDefaultConfig();
                cfg.dram.bandwidthGBps = bw;
                core::GrowSim sim(cfg);
                gcn::RunOptions opt = ctx.runOptions();
                opt.usePartitioning = true;
                cycles.push_back(static_cast<double>(
                    gcn::runInference(sim, w, opt).totalCycles));
            }
            addEngineRow(spec, "GROW", cycles);
        }
        // GCNAX.
        {
            std::vector<double> cycles;
            for (double bw : bws) {
                accel::GcnaxConfig cfg = driver::gcnaxDefaultConfig();
                cfg.dram.bandwidthGBps = bw;
                accel::GcnaxSim sim(cfg);
                gcn::RunOptions opt = ctx.runOptions();
                cycles.push_back(static_cast<double>(
                    gcn::runInference(sim, w, opt).totalCycles));
            }
            addEngineRow(spec, "GCNAX", cycles);
        }
    }
    return 0;
}
