/**
 * @file
 * Figure 25(b) reproduction: sensitivity to off-chip bandwidth
 * (16..256 GB/s), each engine normalized to its own 64 GB/s point.
 * GCNAX's curve is much steeper than GROW's -- it lives and dies by
 * memory bandwidth, while GROW's better utilization flattens the slope.
 */
#include "common.hpp"

using namespace grow;
using namespace grow::bench;

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv, "tiny");
    ctx.banner("Figure 25(b): bandwidth sweep (normalized to own "
               "64 GB/s point)");

    const std::vector<double> bws = {16, 32, 64, 128, 256};
    TextTable t("Figure 25(b)");
    std::vector<std::string> header{"dataset", "engine"};
    for (double bw : bws)
        header.push_back(fmtDouble(bw, 0) + " GB/s");
    t.setHeader(header);

    for (const auto &spec : ctx.specs()) {
        const auto &w = ctx.workload(spec.name);
        // GROW.
        {
            std::vector<double> cycles;
            for (double bw : bws) {
                core::GrowConfig cfg = driver::growDefaultConfig();
                cfg.dram.bandwidthGBps = bw;
                core::GrowSim sim(cfg);
                gcn::RunnerOptions opt;
                opt.usePartitioning = true;
                cycles.push_back(static_cast<double>(
                    gcn::runInference(sim, w, opt).totalCycles));
            }
            std::vector<std::string> row{spec.name, "GROW"};
            for (double c : cycles)
                row.push_back(fmtDouble(cycles[2] / c, 2));
            t.addRow(row);
        }
        // GCNAX.
        {
            std::vector<double> cycles;
            for (double bw : bws) {
                accel::GcnaxConfig cfg = driver::gcnaxDefaultConfig();
                cfg.dram.bandwidthGBps = bw;
                accel::GcnaxSim sim(cfg);
                gcn::RunnerOptions opt;
                cycles.push_back(static_cast<double>(
                    gcn::runInference(sim, w, opt).totalCycles));
            }
            std::vector<std::string> row{spec.name, "GCNAX"};
            for (double c : cycles)
                row.push_back(fmtDouble(cycles[2] / c, 2));
            t.addRow(row);
        }
    }
    t.print();
    return 0;
}
