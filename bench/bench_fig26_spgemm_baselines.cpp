/**
 * @file
 * Figure 26 reproduction: GROW vs the row-wise sparse-sparse GEMM
 * accelerators MatRaptor and GAMMA (and GCNAX), speedup normalized to
 * GCNAX. The paper reports GROW at ~9.3x over MatRaptor and ~1.5x over
 * GAMMA on average, driven by 18x/4x traffic reductions.
 */
#include "common.hpp"

using namespace grow;
using namespace grow::bench;

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv);
    ctx.banner("Figure 26: speedup vs MatRaptor / GAMMA "
               "(normalized to GCNAX)");

    TextTable t("Figure 26");
    t.setHeader({"dataset", "GCNAX", "MatRaptor", "GAMMA", "GROW"});
    std::vector<double> vsMat, vsGamma;
    for (const auto &spec : ctx.specs()) {
        double base = static_cast<double>(
            ctx.inference(spec.name, "gcnax").totalCycles);
        double mat = static_cast<double>(
            ctx.inference(spec.name, "matraptor").totalCycles);
        double gam = static_cast<double>(
            ctx.inference(spec.name, "gamma").totalCycles);
        double grw = static_cast<double>(
            ctx.inference(spec.name, "grow").totalCycles);
        vsMat.push_back(mat / grw);
        vsGamma.push_back(gam / grw);
        t.addRow({spec.name, "1.00", fmtDouble(base / mat, 2),
                  fmtDouble(base / gam, 2), fmtDouble(base / grw, 2)});
    }
    t.print();

    TextTable m("Traffic comparison");
    m.setHeader({"dataset", "MatRaptor/GROW bytes", "GAMMA/GROW bytes"});
    for (const auto &spec : ctx.specs()) {
        double grw = static_cast<double>(
            ctx.inference(spec.name, "grow").totalTrafficBytes());
        double mat = static_cast<double>(
            ctx.inference(spec.name, "matraptor").totalTrafficBytes());
        double gam = static_cast<double>(
            ctx.inference(spec.name, "gamma").totalTrafficBytes());
        m.addRow({spec.name, fmtRatio(mat / grw), fmtRatio(gam / grw)});
    }
    m.print();

    TextTable avg("Average");
    avg.setHeader({"metric", "value"});
    avg.addRow({"geomean GROW speedup vs MatRaptor (paper: ~9.3x)",
                fmtRatio(geomean(vsMat))});
    avg.addRow({"geomean GROW speedup vs GAMMA (paper: ~1.5x)",
                fmtRatio(geomean(vsGamma))});
    avg.print();
    return 0;
}
