/**
 * @file
 * Figure 26 reproduction: GROW vs the row-wise sparse-sparse GEMM
 * accelerators MatRaptor and GAMMA (and GCNAX), speedup normalized to
 * GCNAX. The paper reports GROW at ~9.3x over MatRaptor and ~1.5x over
 * GAMMA on average, driven by 18x/4x traffic reductions.
 */
#include "common.hpp"

using namespace grow;
using namespace grow::bench;

GROW_BENCH_MAIN("fig26_spgemm_baselines")
{
    BenchContext ctx(argc, argv);
    ctx.banner("Figure 26: speedup vs MatRaptor / GAMMA "
               "(normalized to GCNAX)");

    auto t = ctx.table("fig26", "Figure 26");
    t.col("dataset", "dataset")
        .col("gcnax_norm", "GCNAX")
        .col("matraptor_speedup", "MatRaptor")
        .col("gamma_speedup", "GAMMA")
        .col("grow_speedup", "GROW");
    std::vector<double> vsMat, vsGamma;
    for (const auto &spec : ctx.specs()) {
        double base = static_cast<double>(
            ctx.inference(spec.name, "gcnax").totalCycles);
        double mat = static_cast<double>(
            ctx.inference(spec.name, "matraptor").totalCycles);
        double gam = static_cast<double>(
            ctx.inference(spec.name, "gamma").totalCycles);
        double grw = static_cast<double>(
            ctx.inference(spec.name, "grow").totalCycles);
        vsMat.push_back(mat / grw);
        vsGamma.push_back(gam / grw);
        t.row({.dataset = spec.name})
            .add(report::textCell(spec.name))
            .add(report::custom(1.0, "1.00", ""))
            .add(report::real(base / mat, 2))
            .add(report::real(base / gam, 2))
            .add(report::real(base / grw, 2));
    }

    auto m = ctx.table("fig26_traffic", "Traffic comparison");
    m.col("dataset", "dataset")
        .col("matraptor_traffic_ratio", "MatRaptor/GROW bytes")
        .col("gamma_traffic_ratio", "GAMMA/GROW bytes");
    for (const auto &spec : ctx.specs()) {
        double grw = static_cast<double>(
            ctx.inference(spec.name, "grow").totalTrafficBytes());
        double mat = static_cast<double>(
            ctx.inference(spec.name, "matraptor").totalTrafficBytes());
        double gam = static_cast<double>(
            ctx.inference(spec.name, "gamma").totalTrafficBytes());
        m.row({.dataset = spec.name})
            .add(report::textCell(spec.name))
            .add(report::ratio(mat / grw))
            .add(report::ratio(gam / grw));
    }

    auto avg = ctx.table("fig26_avg", "Average");
    avg.col("metric", "metric").col("geomean_speedup", "value");
    avg.row({.extra = {{"baseline", "matraptor"}}})
        .add(report::textCell(
            "geomean GROW speedup vs MatRaptor (paper: ~9.3x)"))
        .add(report::ratio(geomean(vsMat)));
    avg.row({.extra = {{"baseline", "gamma"}}})
        .add(report::textCell(
            "geomean GROW speedup vs GAMMA (paper: ~1.5x)"))
        .add(report::ratio(geomean(vsGamma)));
    return 0;
}
