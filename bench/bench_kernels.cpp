/**
 * @file
 * Google-benchmark microbenchmarks of the substrate kernels: golden
 * SpMM, format conversions, tile census, graph generation, the
 * multilevel partitioner and the workload-construction split, plus
 * paired old-vs-new container benches of the RowEngine hot-loop data
 * structures (ring/flat-map vs deque/unordered_map) and the WorkPool
 * submit path. These quantify the host-side cost of the simulation
 * substrate itself (not simulated cycles).
 */
#include <benchmark/benchmark.h>

#include <atomic>
#include <deque>
#include <filesystem>
#include <unordered_map>

#include "gcn/runner.hpp"
#include "gcn/workload.hpp"
#include "graph/file_graph.hpp"
#include "graph/generators.hpp"
#include "graph/normalize.hpp"
#include "graph/sampling.hpp"
#include "partition/multilevel.hpp"
#include "sparse/convert.hpp"
#include "sparse/reference_gemm.hpp"
#include "sparse/tiling.hpp"
#include "util/arena.hpp"
#include "util/flat_map.hpp"
#include "util/random.hpp"
#include "util/work_pool.hpp"

using namespace grow;

namespace {

sparse::CsrMatrix
fixtureCsr(uint32_t n, double density)
{
    Rng rng(n);
    return sparse::randomCsr(n, n, density, rng);
}

void
BM_ReferenceSpMM(benchmark::State &state)
{
    auto s = fixtureCsr(static_cast<uint32_t>(state.range(0)), 0.01);
    Rng rng(7);
    auto d = sparse::randomDense(s.cols(), 64, rng);
    for (auto _ : state) {
        auto c = sparse::referenceSpMM(s, d);
        benchmark::DoNotOptimize(c);
    }
    state.SetItemsProcessed(state.iterations() * s.nnz() * 64);
}
BENCHMARK(BM_ReferenceSpMM)->Arg(1024)->Arg(4096);

void
BM_CsrToCsc(benchmark::State &state)
{
    auto m = fixtureCsr(static_cast<uint32_t>(state.range(0)), 0.01);
    for (auto _ : state) {
        auto c = sparse::toCsc(m);
        benchmark::DoNotOptimize(c);
    }
    state.SetItemsProcessed(state.iterations() * m.nnz());
}
BENCHMARK(BM_CsrToCsc)->Arg(4096)->Arg(16384);

void
BM_TileCensus(benchmark::State &state)
{
    auto m = fixtureCsr(8192, 0.002);
    for (auto _ : state) {
        auto stats = sparse::TileGridStats::compute(
            m, sparse::TileShape{512, 16});
        benchmark::DoNotOptimize(stats);
    }
    state.SetItemsProcessed(state.iterations() * m.nnz());
}
BENCHMARK(BM_TileCensus);

void
BM_DcSbmGenerate(benchmark::State &state)
{
    graph::DcSbmParams p;
    p.nodes = static_cast<uint32_t>(state.range(0));
    p.avgDegree = 16.0;
    p.communities = p.nodes / 700 + 1;
    for (auto _ : state) {
        p.seed += 1;
        auto g = graph::generateDcSbm(p);
        benchmark::DoNotOptimize(g);
    }
    state.SetItemsProcessed(state.iterations() * p.nodes * 16);
}
BENCHMARK(BM_DcSbmGenerate)->Arg(10000)->Arg(40000);

void
BM_MultilevelPartition(benchmark::State &state)
{
    graph::DcSbmParams p;
    p.nodes = static_cast<uint32_t>(state.range(0));
    p.avgDegree = 12.0;
    p.communities = p.nodes / 700 + 1;
    p.seed = 3;
    auto g = graph::generateDcSbm(p);
    partition::PartitionConfig pc;
    pc.numParts = p.communities;
    for (auto _ : state) {
        pc.seed += 1;
        auto r = partition::MultilevelPartitioner(pc).partition(g);
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(state.iterations() * g.numArcs());
}
BENCHMARK(BM_MultilevelPartition)->Arg(10000)->Arg(40000);

void
BM_NormalizeAdjacency(benchmark::State &state)
{
    auto g = graph::generateChungLu(
        static_cast<uint32_t>(state.range(0)), 12.0, 2.3, 5);
    for (auto _ : state) {
        auto a = graph::normalizedAdjacency(g, true);
        benchmark::DoNotOptimize(a);
    }
    state.SetItemsProcessed(state.iterations() * g.numArcs());
}
BENCHMARK(BM_NormalizeAdjacency)->Arg(20000);

// Paired serial-vs-parallel build-stage benchmarks: Arg is the worker
// count (results are bit-identical for every value; these measure the
// wall-clock payoff of the deterministic parallel pipeline).
void
BM_PartitionThreads(benchmark::State &state)
{
    graph::DcSbmParams p;
    p.nodes = 40000;
    p.avgDegree = 12.0;
    p.communities = p.nodes / 700 + 1;
    p.seed = 3;
    auto g = graph::generateDcSbm(p);
    partition::PartitionConfig pc;
    pc.numParts = p.communities;
    pc.threads = static_cast<uint32_t>(state.range(0));
    for (auto _ : state) {
        pc.seed += 1;
        auto r = partition::MultilevelPartitioner(pc).partition(g.view());
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(state.iterations() * g.numArcs());
}
BENCHMARK(BM_PartitionThreads)->Arg(1)->Arg(4)->Arg(8)->UseRealTime();

void
BM_NormalizeThreads(benchmark::State &state)
{
    auto g = graph::generateChungLu(100000, 16.0, 2.3, 5);
    const auto threads = static_cast<uint32_t>(state.range(0));
    for (auto _ : state) {
        auto a = graph::normalizedAdjacency(g.view(), true, threads);
        benchmark::DoNotOptimize(a);
    }
    state.SetItemsProcessed(state.iterations() * g.numArcs());
}
BENCHMARK(BM_NormalizeThreads)->Arg(1)->Arg(4)->Arg(8)->UseRealTime();

// Traversal through the mmap-backed CsrView vs the same graph on the
// heap: quantifies the page-cache indirection cost of the out-of-core
// path (a warm mapping should be within noise of the heap copy).
void
BM_CsrTraversal(benchmark::State &state)
{
    const bool mapped = state.range(0) != 0;
    auto g = graph::generateChungLu(100000, 16.0, 2.3, 5);
    std::shared_ptr<const graph::MappedCsrGraph> file;
    graph::CsrView v = g.view();
    std::string path;
    if (mapped) {
        graph::DatasetSpec spec;
        spec.name = "bm_traversal";
        path = (std::filesystem::temp_directory_path() /
                "bm_traversal.growcsr")
                   .string();
        if (!graph::writeCsrFile(path, spec, graph::ScaleTier::Full,
                                 g.view()))
            state.SkipWithError("writeCsrFile failed");
        file = graph::MappedCsrGraph::open(path);
        if (!file)
            state.SkipWithError("MappedCsrGraph::open failed");
        v = file->view();
    }
    for (auto _ : state) {
        uint64_t sum = 0;
        for (NodeId u = 0; u < v.numNodes(); ++u)
            for (NodeId nb : v.neighbors(u))
                sum += nb;
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(state.iterations() * v.numArcs());
    state.SetLabel(mapped ? "mmap" : "heap");
    if (!path.empty())
        std::filesystem::remove(path);
}
BENCHMARK(BM_CsrTraversal)->Arg(0)->Arg(1);

void
BM_BuildGraphArtifacts(benchmark::State &state)
{
    // The expensive, shared half of workload construction (what the
    // WorkloadCache amortises across depths and runs).
    const auto &spec = graph::datasetByName("cora");
    for (auto _ : state) {
        auto a = gcn::buildGraphArtifacts(spec, graph::ScaleTier::Unit);
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_BuildGraphArtifacts);

void
BM_BuildLayerData(benchmark::State &state)
{
    // The cheap, per-depth half layered on cached artefacts.
    const auto &spec = graph::datasetByName("cora");
    auto artifacts = gcn::buildGraphArtifacts(spec, graph::ScaleTier::Unit);
    gcn::WorkloadConfig wc;
    wc.tier = graph::ScaleTier::Unit;
    wc.numLayers = static_cast<uint32_t>(state.range(0));
    for (auto _ : state) {
        wc.seed += 1;
        auto w = gcn::buildLayerData(artifacts, wc);
        benchmark::DoNotOptimize(w);
    }
}
BENCHMARK(BM_BuildLayerData)->Arg(2)->Arg(4);

void
BM_SampleNeighbors(benchmark::State &state)
{
    // SAGEConv's seeded fanout-k sampling pass (the depth-independent
    // artefact buildGraphArtifacts caches for the sampling models).
    auto g = graph::generateChungLu(
        static_cast<uint32_t>(state.range(0)), 16.0, 2.3, 5);
    uint64_t seed = 1;
    for (auto _ : state) {
        seed += 1;
        auto s = graph::sampleNeighborAdjacency(g, 10, seed);
        benchmark::DoNotOptimize(s);
    }
    state.SetItemsProcessed(state.iterations() * g.numArcs());
}
BENCHMARK(BM_SampleNeighbors)->Arg(10000)->Arg(40000);

void
BM_BuildPhasePlan(benchmark::State &state)
{
    // Per-ModelKind lowering cost: the plan is rebuilt per inference,
    // so it must stay negligible next to the simulation itself.
    const auto model = static_cast<gcn::ModelKind>(state.range(0));
    const auto &spec = graph::datasetByName("cora");
    gcn::WorkloadConfig wc;
    wc.tier = graph::ScaleTier::Unit;
    wc.model = model;
    auto w = gcn::buildWorkload(spec, wc);
    gcn::RunOptions opt;
    opt.usePartitioning = true;
    for (auto _ : state) {
        auto plan = gcn::buildPhasePlan(w, opt);
        benchmark::DoNotOptimize(plan);
    }
    state.SetItemsProcessed(state.iterations() *
                            gcn::modelPhasesPerLayer(model) *
                            w.numLayers());
    state.SetLabel(gcn::modelKindName(model));
}
BENCHMARK(BM_BuildPhasePlan)
    ->Arg(static_cast<int>(gcn::ModelKind::Gcn))
    ->Arg(static_cast<int>(gcn::ModelKind::SageMean))
    ->Arg(static_cast<int>(gcn::ModelKind::SagePool))
    ->Arg(static_cast<int>(gcn::ModelKind::Gin))
    ->Arg(static_cast<int>(gcn::ModelKind::Gat));

// ---------------------------------------------------------------------
// RowEngine hot-loop containers: each pair runs the identical access
// pattern through the old standard container and the new arena-backed
// replacement, so one bench_kernels run shows the speedup directly.
// ---------------------------------------------------------------------

/** Stand-in for RowEngine's per-row window slot (same field layout). */
struct BenchSlot
{
    NodeId row;
    uint64_t token;
    uint32_t pending;
    Cycle lastFinish;
    bool controlDone;
};

constexpr uint32_t kLdnEntries = 1024;

/** LDN-table churn: find / miss-insert / FIFO-evict over a bounded
 *  live set, the access pattern of RowEngine's ldnMap_. The id space
 *  is 2x the live bound: like the real table (which exists to dedupe
 *  in-flight fetches of clustered neighbourhoods), lookups hit about
 *  half the time. */
template <typename Body>
void
ldnChurn(benchmark::State &state, Body &&body)
{
    constexpr uint32_t kIdSpace = kLdnEntries * 2;
    uint64_t lcg = 0x2545F4914F6CDD1DULL;
    uint64_t hits = 0;
    for (auto _ : state) {
        lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
        const NodeId id = static_cast<NodeId>((lcg >> 33) % kIdSpace);
        hits += body(id, static_cast<Cycle>(lcg));
    }
    benchmark::DoNotOptimize(hits);
    state.SetItemsProcessed(state.iterations());
}

void
BM_LdnTableUnorderedMap(benchmark::State &state)
{
    std::unordered_map<NodeId, Cycle> map;
    map.reserve(kLdnEntries);
    std::vector<NodeId> fifo(kLdnEntries);
    uint32_t at = 0;
    ldnChurn(state, [&](NodeId id, Cycle c) -> uint64_t {
        auto it = map.find(id);
        if (it != map.end())
            return 1;
        if (map.size() == kLdnEntries)
            map.erase(fifo[at]);
        map.emplace(id, c);
        fifo[at] = id;
        at = (at + 1) % kLdnEntries;
        return 0;
    });
}
BENCHMARK(BM_LdnTableUnorderedMap);

void
BM_LdnTableFlatMap(benchmark::State &state)
{
    util::FlatMap<NodeId, Cycle> map(kLdnEntries, kInvalidNode);
    std::vector<NodeId> fifo(kLdnEntries);
    uint32_t at = 0;
    ldnChurn(state, [&](NodeId id, Cycle c) -> uint64_t {
        if (map.find(id) != nullptr)
            return 1;
        if (map.size() == kLdnEntries)
            map.erase(fifo[at]);
        map.insert(id, c);
        fifo[at] = id;
        at = (at + 1) % kLdnEntries;
        return 0;
    });
}
BENCHMARK(BM_LdnTableFlatMap);

/** Runahead-window traffic: steady push_back / touch-back / pop_front
 *  through a window of runahead-degree slots, the access pattern of
 *  RowEngine's window_ (and, with Cycle payloads, streamChunks_). */
constexpr size_t kWindowDepth = 16;

void
BM_RunaheadWindowDeque(benchmark::State &state)
{
    std::deque<BenchSlot> win;
    uint64_t token = 0, sum = 0;
    for (auto _ : state) {
        if (win.size() == kWindowDepth) {
            sum += win.front().lastFinish;
            win.pop_front();
        }
        win.push_back(BenchSlot{static_cast<NodeId>(token), token, 1,
                                token * 3, false});
        win.back().pending += 1;
        ++token;
    }
    benchmark::DoNotOptimize(sum);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RunaheadWindowDeque);

void
BM_RunaheadWindowRing(benchmark::State &state)
{
    util::Arena arena(util::ceilPow2(kWindowDepth) * sizeof(BenchSlot) +
                      alignof(std::max_align_t));
    util::RingBuffer<BenchSlot> win(arena, kWindowDepth);
    uint64_t token = 0, sum = 0;
    for (auto _ : state) {
        if (win.size() == kWindowDepth) {
            sum += win.front().lastFinish;
            win.pop_front();
        }
        win.push_back(BenchSlot{static_cast<NodeId>(token), token, 1,
                                token * 3, false});
        win.back().pending += 1;
        ++token;
    }
    benchmark::DoNotOptimize(sum);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RunaheadWindowRing);

/**
 * WorkPool submit throughput: one epoch-mode co-simulation round is
 * one runAll() of tiny tasks, so batch setup cost (allocation, ticket
 * posting, wakeup, completion wait) sits on the simulator's critical
 * path. Arg = worker count (0 = caller-only).
 */
void
BM_WorkPoolSubmit(benchmark::State &state)
{
    util::WorkPool pool(static_cast<uint32_t>(state.range(0)));
    constexpr size_t kTasks = 16;
    std::atomic<uint64_t> sink{0};
    for (auto _ : state) {
        std::vector<std::function<void()>> tasks;
        tasks.reserve(kTasks);
        for (size_t i = 0; i < kTasks; ++i)
            tasks.emplace_back([&sink] {
                sink.fetch_add(1, std::memory_order_relaxed);
            });
        util::rethrowFirstError(pool.runAll(std::move(tasks)));
    }
    state.SetItemsProcessed(state.iterations() * kTasks);
}
BENCHMARK(BM_WorkPoolSubmit)->Arg(0)->Arg(3)->UseRealTime();

} // namespace

BENCHMARK_MAIN();
