/**
 * @file
 * Model zoo study (Sec. VIII "GROW applicability for advanced
 * aggregation functions"): lower every ModelKind -- vanilla GCN,
 * SAGEConv mean/pool over sampled neighbourhoods, GIN with folded
 * epsilon, GAT with SDDMM attention scores -- onto the PhasePlan
 * abstraction and run GROW against the baseline engines on the
 * Table I datasets. The per-model tables report cycles, DRAM traffic,
 * HDN-cache behaviour and energy (including the Sec. VIII extra-unit
 * energy), and the summary table rolls up geomean speedups plus the
 * area overhead each model's extra hardware costs on GROW.
 *
 * Extra arguments beside the common ones (common.hpp):
 *   engines=grow,gcnax          engine keys to compare (first is the
 *                               speedup numerator's denominator)
 *   models=gcn,sage-mean,...    ModelKind subset (default: all)
 *   fanout=10                   SAGEConv neighbour-sampling fanout
 */
#include <map>

#include "common.hpp"
#include "gcn/aggregators.hpp"
#include "gcn/model.hpp"
#include "util/logging.hpp"

using namespace grow;
using namespace grow::bench;

GROW_BENCH_MAIN("model_zoo")
{
    BenchContext ctx(argc, argv, /*default_scale=*/"tiny", "all",
                     {"engines", "models", "fanout"});
    ctx.banner("Model zoo: GNN layer types on the GROW pipeline");

    const auto engineKeys =
        ctx.args().getList("engines", {"grow", "gcnax"});
    if (engineKeys.size() < 2)
        fatal("model zoo needs >= 2 engine keys (engines=grow,gcnax)");
    std::vector<gcn::ModelKind> models;
    if (ctx.args().has("models")) {
        for (const auto &tok : ctx.args().getList("models", {}))
            models.push_back(gcn::modelKindFromString(tok));
    } else if (ctx.args().has("model")) {
        // The common per-bench knob narrows the zoo to one model.
        models = {ctx.model()};
    } else {
        models = gcn::allModelKinds();
    }
    const int64_t fanout = ctx.args().getInt("fanout", 10);
    if (fanout < 1 || fanout > 1024)
        fatal("fanout must be in [1, 1024], got " +
              std::to_string(fanout));

    // Build every (model, dataset) workload up front through the shared
    // cache (map, not vector: jobs borrow stable addresses). Models
    // that don't sample share one graph-artefact bundle per dataset;
    // the SAGEConv models add the sampled-adjacency artefact to theirs.
    std::map<std::string, gcn::GcnWorkload> workloads;
    std::vector<driver::SweepJob> jobs;
    for (gcn::ModelKind model : models) {
        for (const auto &spec : ctx.specs()) {
            gcn::WorkloadConfig wc;
            wc.tier = ctx.tier();
            wc.model = model;
            wc.sageFanout = static_cast<uint32_t>(fanout);
            std::string key =
                std::string(gcn::modelKindName(model)) + "/" + spec.name;
            const auto &w =
                workloads.emplace(key, ctx.cache().workload(spec, wc))
                    .first->second;
            for (const auto &engine : engineKeys)
                jobs.push_back(driver::makeEngineJob(
                    engine, w, ctx.runOptions()));
        }
    }
    driver::SweepDriver pool(ctx.threads());
    auto outcomes = pool.runAll(jobs);

    // Consume outcomes positionally, verifying the dataset so a
    // reorder of the assembly loop cannot shift results silently.
    size_t cursor = 0;
    auto take = [&](const std::string &dataset)
        -> const gcn::InferenceResult & {
        GROW_ASSERT(cursor < outcomes.size() &&
                        outcomes[cursor].label.rfind(dataset + "/", 0) ==
                            0,
                    "sweep outcome order mismatch at " + dataset);
        return outcomes[cursor++].inference;
    };

    std::map<std::string, std::vector<double>> speedups;
    for (gcn::ModelKind model : models) {
        const char *modelName = gcn::modelKindName(model);
        const auto &support =
            gcn::aggregatorSupport(gcn::modelAggregator(model));
        auto t = ctx.table(
            std::string("model_zoo_") + modelName,
            std::string("model ") + modelName +
                (support.extraHardware.empty()
                     ? ""
                     : " (extra unit: " + support.extraHardware + ")"));
        t.col("dataset", "dataset");
        for (const auto &engine : engineKeys)
            t.col(engine + "_cycles", engine + " cycles", "cycles");
        t.col("speedup", "speedup")
            .col("hit_rate", "hit rate")
            .col("dram_traffic", "DRAM traffic", "bytes")
            .col("energy_uj", "energy (uJ)", "uJ")
            .col("aux_energy_uj", "aux energy (uJ)", "uJ");

        for (const auto &spec : ctx.specs()) {
            std::vector<const gcn::InferenceResult *> results;
            for (size_t e = 0; e < engineKeys.size(); ++e)
                results.push_back(&take(spec.name));
            for (size_t e = 0; e < engineKeys.size(); ++e)
                ctx.recordInference(spec.name,
                                    engineKeys[e] + "@" + modelName,
                                    *results[e]);
            const auto &lead = *results.front();
            // Speedup of the lead engine over the second key (the
            // headline baseline).
            double speedup = static_cast<double>(results[1]->totalCycles) /
                             static_cast<double>(lead.totalCycles);
            speedups[modelName].push_back(speedup);

            auto row = t.row({.dataset = spec.name,
                              .engine = engineKeys.front(),
                              .model = modelName});
            row.add(report::textCell(spec.name));
            for (const auto *r : results)
                row.add(report::count(r->totalCycles, "cycles"));
            row.add(report::ratio(speedup))
                .add(report::fraction(lead.cacheHitRate()))
                .add(report::bytesValue(lead.totalTrafficBytes()))
                .add(report::real(lead.energy.total() / 1e6, 1, "uJ"))
                .add(report::real(lead.energy.auxPj / 1e6, 3, "uJ"));
        }
    }

    auto s = ctx.table("model_zoo_summary",
                       "Sec. VIII summary (" + engineKeys[0] + " vs " +
                           engineKeys[1] + ")");
    s.col("model", "model")
        .col("phases_per_layer", "phases/layer", "count")
        .col("geomean_speedup", "geomean speedup")
        .col("extra_hardware", "extra hardware")
        .col("area_65nm", "area @65nm (mm^2)", "mm^2")
        .col("area_overhead", "area overhead");
    for (gcn::ModelKind model : models) {
        const char *modelName = gcn::modelKindName(model);
        const auto &support =
            gcn::aggregatorSupport(gcn::modelAggregator(model));
        auto area = gcn::growAreaWithAggregator(
            gcn::modelAggregator(model));
        s.row({.engine = engineKeys.front(), .model = modelName})
            .add(report::textCell(modelName))
            .add(report::count(gcn::modelPhasesPerLayer(model)))
            .add(report::ratio(geomean(speedups[modelName])))
            .add(report::textCell(support.extraHardware.empty()
                                      ? "-"
                                      : support.extraHardware))
            .add(report::real(area.total(), 3))
            .add(report::fraction(support.areaOverhead));
    }
    return 0;
}
