/**
 * @file
 * Multi-chip strong scaling: the Table I datasets sharded across 1, 2,
 * 4 and 8 chips joined by inter-chip links (src/scaleout/).
 *
 * Two execution paths share every table so CI can diff them:
 *
 *   path=sharded (default)  scaleout::runInference -- the sharded
 *                           co-simulation, any chips= value. chips=1
 *                           runs the identity shard and must reproduce
 *                           the single-chip path byte-for-byte.
 *   path=single             the classic gcn::runInference (chips= must
 *                           be 1). The CI scale-out gate runs both
 *                           paths at chips=1 and requires bytewise
 *                           identical table and JSON output.
 *
 * Extra keys on top of the universal set (chips=, link_gbps=,
 * link_ns= included there):
 *   engine=grow            engine configuration key (must consume the
 *                          partitioning for chips > 1)
 *   path=sharded|single    see above
 *   cluster_nodes=256      target nodes per partition cluster. The
 *                          default sizing derives clusters from the
 *                          HDN cache and leaves the small Table I
 *                          graphs as a single cluster, which cannot
 *                          shard; the smaller default here gives every
 *                          dataset enough clusters for 8 chips.
 *
 * Per-link byte counters come from the canonical egress link devices
 * and are exact (cut-edge boundary vertices x feature bytes); their
 * unit is "link-bytes" so report_diff gates them at zero tolerance.
 */
#include "common.hpp"

#include "driver/engine_factory.hpp"
#include "scaleout/runner.hpp"

using namespace grow;
using namespace grow::bench;

GROW_BENCH_MAIN("scaleout")
{
    BenchContext ctx(argc, argv, "mini", "all",
                     {"engine", "path", "cluster_nodes"});
    const std::string engineKey = ctx.args().get("engine", "grow");
    const std::string path = ctx.args().get("path", "sharded");
    if (path != "sharded" && path != "single")
        fatal("path must be sharded or single, got '" + path + "'");
    const int64_t clusterNodes =
        ctx.args().getInt("cluster_nodes", 256);
    if (clusterNodes < 1)
        fatal("cluster_nodes must be >= 1, got " +
              std::to_string(clusterNodes));
    if (path == "single") {
        for (uint32_t chips : ctx.chipCounts())
            if (chips != 1)
                fatal("path=single is the classic single-chip runner; "
                      "it cannot honour chips=" + std::to_string(chips));
    }

    // The banner deliberately omits `path`: the CI scale-out gate
    // diffs both paths' chips=1 output byte-for-byte.
    ctx.banner("Multi-chip strong scaling (" + engineKey + ")");

    auto t = ctx.table("scaleout_scaling", "Strong scaling");
    t.col("dataset", "dataset")
        .col("chips", "chips")
        .col("cycles", "cycles", "cycles")
        .col("speedup", "speedup", "x")
        .col("halo_cycles", "halo cycles", "cycles")
        .col("traffic", "DRAM traffic", "bytes")
        .col("halo_bytes", "halo bytes", "link-bytes")
        .col("cut_arcs", "cut arcs", "arcs");

    struct LinkRow
    {
        std::string dataset;
        uint32_t chips = 0;
        uint32_t link = 0;
        Bytes egressBytes = 0;
        Cycle busyCycles = 0;
    };
    std::vector<LinkRow> linkRows;

    for (const auto &spec : ctx.specs()) {
        // The bench's own cluster sizing (see header comment); the
        // bundle is cached per partition plan, so this never collides
        // with other benches' artefacts.
        gcn::WorkloadConfig wc;
        wc.tier = ctx.tier();
        wc.model = ctx.model();
        wc.targetClusterSize = static_cast<uint32_t>(clusterNodes);
        const auto &w = ctx.cache().workload(spec, wc);

        Cycle baseCycles = 0;
        for (uint32_t chips : ctx.chipCounts()) {
            gcn::InferenceResult merged;
            Cycle haloCycles = 0;
            Bytes haloBytes = 0;
            uint64_t cutArcs = 0;
            if (path == "single") {
                auto engSpec = driver::engineByKey(engineKey);
                gcn::RunOptions opts = ctx.runOptions();
                opts.usePartitioning = engSpec.usePartitioning;
                auto engine = engSpec.make();
                merged = gcn::runInference(*engine, w, opts);
            } else {
                const auto topo = ctx.topology(engineKey, chips);
                auto sr =
                    scaleout::runInference(topo, w, ctx.runOptions());
                haloCycles = sr.haloCycles;
                haloBytes = sr.haloBytes;
                cutArcs = sr.shard.cutArcs;
                for (uint32_t link = 0; link < chips; ++link) {
                    if (chips == 1)
                        break; // no links on a single-chip topology
                    linkRows.push_back({spec.name, chips, link,
                                        sr.links.egressBytes[link],
                                        sr.links.egressBusyCycles[link]});
                }
                merged = std::move(sr.merged);
            }
            if (baseCycles == 0)
                baseCycles = merged.totalCycles;
            const double speedup =
                merged.totalCycles == 0
                    ? 0.0
                    : static_cast<double>(baseCycles) /
                          static_cast<double>(merged.totalCycles);
            const std::string label =
                "chips/" + std::to_string(chips);
            t.row({.dataset = spec.name,
                   .engine = engineKey,
                   .extra = {{"label", label}}})
                .add(report::textCell(spec.name))
                .add(report::count(chips))
                .add(report::count(merged.totalCycles, "cycles"))
                .add(report::real(speedup, 3, "x"))
                .add(report::count(haloCycles, "cycles"))
                .add(report::bytesValue(merged.totalTrafficBytes()))
                .add(report::count(haloBytes, "link-bytes"))
                .add(report::count(cutArcs, "arcs"));
            ctx.recordInference(spec.name + "@" + label, engineKey,
                                merged);
        }
    }

    if (!linkRows.empty()) {
        auto lt = ctx.table("scaleout_links", "Per-link egress traffic");
        lt.col("dataset", "dataset")
            .col("chips", "chips")
            .col("link", "link")
            .col("egress_bytes", "egress bytes", "link-bytes")
            .col("busy_cycles", "busy cycles", "cycles");
        for (const auto &r : linkRows) {
            lt.row({.dataset = r.dataset,
                    .engine = engineKey,
                    .extra = {{"label", "chips/" +
                                            std::to_string(r.chips) +
                                            "/link/" +
                                            std::to_string(r.link)}}})
                .add(report::textCell(r.dataset))
                .add(report::count(r.chips))
                .add(report::count(r.link))
                .add(report::count(r.egressBytes, "link-bytes"))
                .add(report::count(r.busyCycles, "cycles"));
        }
    }
    return 0;
}
