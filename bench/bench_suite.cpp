/**
 * @file
 * bench_suite: execute a named subset of the registered benches in one
 * process and merge their structured reports into a single document.
 * This is how the repo tracks its own perf trajectory: CI runs
 *
 *   bench_suite suite=smoke scale=mini format=json out=BENCH_GROW.json
 *
 * validates the schema (tools/report_check) and uploads the file as a
 * workflow artifact on every run, so cross-run, cross-baseline
 * comparisons (Fig. 20-style speedups, traffic, energy) are queryable
 * without parsing stdout tables.
 *
 * Every bench body is linked in (compiled with GROW_BENCH_NO_MAIN) and
 * found through bench::benchRegistry(); a report::ReportCollector
 * intercepts each bench's finished report instead of letting it print.
 *
 * Usage: bench_suite [suite=smoke|paper] [benches=fig20_speedup,...]
 *                    [list=1]
 *                    [scale=...] [datasets=...] [model=...]
 *                    [cachedir=...] [format=table|json|csv] [out=path]
 *                    [threads=N] [epoch=cycles] [profile=0|1]
 *
 * `benches=` overrides `suite=`; scale/datasets/model/cachedir/
 * threads/epoch/profile are forwarded verbatim to every bench
 * (per-bench defaults apply when omitted). With profile=1 every
 * bench's report carries the nondeterministic `sim-speed` family
 * (host wall-clock + rows/s), which lands in the merged
 * BENCH_GROW.json for the trajectory differ's loose-tolerance gate. `format=table` renders every report in sequence exactly as
 * the standalone binaries would; json/csv emit the merged records.
 */
#include <fstream>
#include <iostream>

#include "common.hpp"
#include "util/logging.hpp"
#include "util/work_pool.hpp"

using namespace grow;
using namespace grow::bench;

namespace {

/** Named bench subsets. "paper" is every registered bench. */
const std::map<std::string, std::vector<std::string>> &
suites()
{
    static const std::map<std::string, std::vector<std::string>> s = {
        // Cheap headline set for per-commit CI trajectory tracking:
        // dataset fidelity, the Fig. 18/20 headline comparisons and
        // the HDN hit-rate mechanism.
        {"smoke",
         {"table1_datasets", "fig03_density", "fig17_hdn_hit_rate",
          "fig18_memory_traffic", "fig20_speedup"}},
    };
    return s;
}

std::vector<std::string>
resolveBenches(const CliArgs &args)
{
    std::vector<std::string> all;
    for (const auto &[name, fn] : benchRegistry())
        all.push_back(name);
    if (args.has("benches")) {
        auto names = args.getList("benches", {});
        if (names.size() == 1 && names[0] == "all")
            return all;
        if (names.empty())
            fatal("benches= needs at least one bench name");
        return names;
    }
    const std::string suite = args.get("suite", "smoke");
    if (suite == "paper")
        return all;
    auto it = suites().find(suite);
    if (it == suites().end()) {
        std::string known = "paper";
        for (const auto &[name, benches] : suites())
            known += ", " + name;
        fatal("unknown suite '" + suite + "' (known: " + known + ")");
    }
    return it->second;
}

} // namespace

namespace {

int
suiteMain(int argc, char **argv)
{
    CliArgs args(argc, argv);
    args.requireKnown({"suite", "benches", "list", "scale", "datasets",
                       "model", "cachedir", "format", "out", "threads",
                       "epoch", "profile"});
    if (args.has("threads")) // reject bad values before any bench runs
        util::checkedThreadCount(args.getInt("threads", 1));
    if (args.getBool("list", false)) {
        for (const auto &[name, fn] : benchRegistry())
            std::cout << name << "\n";
        return 0;
    }

    const std::string format = args.get("format", "table");
    report::makeSink(format); // validate before running anything
    const std::string outPath = args.get("out", "");

    // Forward everything except the suite-level keys; the per-bench
    // report is intercepted, so format/out never reach a bench.
    std::vector<std::string> forwarded;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        bool suiteOnly = false;
        for (const char *key : {"suite=", "benches=", "list=", "format=",
                                "out="})
            suiteOnly = suiteOnly || arg.rfind(key, 0) == 0;
        if (!suiteOnly)
            forwarded.push_back(arg);
    }

    const auto benches = resolveBenches(args);
    for (const auto &name : benches)
        if (!benchRegistry().count(name))
            fatal("unknown bench '" + name +
                  "' (bench_suite list=1 prints the registry)");

    report::ReportCollector collector;
    report::setActiveCollector(&collector);
    std::vector<std::string> failed;
    for (const auto &name : benches) {
        std::vector<char *> childArgv;
        childArgv.push_back(argv[0]);
        for (auto &arg : forwarded)
            childArgv.push_back(arg.data());
        const int rc = runBench(name, benchRegistry().at(name),
                                static_cast<int>(childArgv.size()),
                                childArgv.data());
        if (rc != 0)
            failed.push_back(name);
    }
    report::setActiveCollector(nullptr);

    report::Report merged;
    auto &meta = merged.meta();
    meta.bench = "bench_suite";
    meta.suite = args.has("benches") ? "custom"
                                     : args.get("suite", "smoke");
    meta.revision = report::buildRevision();
    meta.scale = args.get("scale", "");
    meta.model = args.get("model", "");
    for (const auto &rep : collector.reports())
        merged.merge(rep);

    if (format == "table") {
        // Render each bench's report in order, exactly as the
        // standalone binaries would print them.
        report::TableSink sink;
        if (outPath.empty()) {
            for (const auto &rep : collector.reports())
                sink.emit(rep, std::cout);
        } else {
            std::ofstream out(outPath, std::ios::trunc);
            if (!out)
                fatal("cannot open report output file '" + outPath + "'");
            for (const auto &rep : collector.reports())
                sink.emit(rep, out);
            if (!out)
                fatal("failed writing report output file '" + outPath +
                      "'");
        }
    } else {
        report::emitReport(merged, format, outPath);
    }

    if (!failed.empty()) {
        std::cerr << "bench_suite: " << failed.size()
                  << " bench(es) failed:";
        for (const auto &name : failed)
            std::cerr << " " << name;
        std::cerr << "\n";
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return suiteMain(argc, argv);
    } catch (const std::exception &e) {
        std::cerr << "bench_suite: " << e.what() << "\n";
        return 1;
    }
}
