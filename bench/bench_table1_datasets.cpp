/**
 * @file
 * Table I reproduction: structure and key features of the synthetic
 * graph datasets vs the published values. "paper" columns are the
 * Table I numbers; "gen" columns are measured on the graphs this
 * repository synthesises at the selected scale tier.
 */
#include <iostream>

#include "common.hpp"
#include "graph/degree_stats.hpp"
#include "sparse/convert.hpp"
#include "util/random.hpp"

using namespace grow;
using namespace grow::bench;

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv);
    ctx.banner("Table I: dataset structure (paper vs generated)");

    TextTable t("Table I");
    t.setHeader({"dataset", "nodes(paper)", "nodes(gen)", "arcs(paper)",
                 "arcs(gen)", "deg(paper)", "deg(gen)", "densA(paper)",
                 "densA(gen)", "features", "x0 dens", "x1 dens"});
    for (const auto &spec : ctx.specs()) {
        const auto &w = ctx.workload(spec.name);
        const auto &g = w.graph();
        t.addRow({spec.name, fmtCount(spec.paperNodes),
                  fmtCount(g.numNodes()), fmtCount(spec.paperArcs),
                  fmtCount(g.numArcs()),
                  fmtDouble(spec.paperAvgDegree, 1),
                  fmtDouble(g.avgDegree(), 1), fmtSci(spec.paperDensityA),
                  fmtSci(g.density()),
                  std::to_string(spec.gcn.inFeatures) + "-" +
                      std::to_string(spec.gcn.hidden) + "-" +
                      std::to_string(spec.gcn.classes),
                  fmtPercent(w.x(0).density(), 2),
                  fmtPercent(w.x(1).density(), 1)});
    }
    t.print();

    TextTable p("Degree-distribution shape (power-law evidence)");
    p.setHeader({"dataset", "max degree", "mean degree", "gini",
                 "alpha (MLE)", "top-1% coverage"});
    for (const auto &spec : ctx.specs()) {
        const auto &g = ctx.workload(spec.name).graph();
        auto h = graph::degreeHistogram(g);
        uint32_t k = std::max(1u, g.numNodes() / 100);
        p.addRow({spec.name, fmtCount(h.maxValue()),
                  fmtDouble(h.mean(), 1),
                  fmtDouble(graph::degreeGini(g), 2),
                  fmtDouble(h.powerLawAlpha(4), 2),
                  fmtPercent(graph::topKDegreeCoverage(g, k))});
    }
    p.print();
    return 0;
}
