/**
 * @file
 * Table I reproduction: structure and key features of the synthetic
 * graph datasets vs the published values. "paper" columns are the
 * Table I numbers; "gen" columns are measured on the graphs this
 * repository synthesises at the selected scale tier.
 */
#include "common.hpp"
#include "graph/degree_stats.hpp"
#include "sparse/convert.hpp"
#include "util/random.hpp"

using namespace grow;
using namespace grow::bench;

GROW_BENCH_MAIN("table1_datasets")
{
    BenchContext ctx(argc, argv);
    ctx.banner("Table I: dataset structure (paper vs generated)");

    auto t = ctx.table("table1", "Table I");
    t.col("dataset", "dataset")
        .col("nodes_paper", "nodes(paper)", "count")
        .col("nodes_gen", "nodes(gen)", "count")
        .col("arcs_paper", "arcs(paper)", "count")
        .col("arcs_gen", "arcs(gen)", "count")
        .col("degree_paper", "deg(paper)")
        .col("degree_gen", "deg(gen)")
        .col("density_a_paper", "densA(paper)", "fraction")
        .col("density_a_gen", "densA(gen)", "fraction")
        .col("features", "features")
        .col("x0_density", "x0 dens")
        .col("x1_density", "x1 dens");
    for (const auto &spec : ctx.specs()) {
        const auto &w = ctx.workload(spec.name);
        const auto g = w.graphView();
        t.row({.dataset = spec.name})
            .add(report::textCell(spec.name))
            .add(report::count(spec.paperNodes))
            .add(report::count(g.numNodes()))
            .add(report::count(spec.paperArcs))
            .add(report::count(g.numArcs()))
            .add(report::real(spec.paperAvgDegree, 1))
            .add(report::real(g.avgDegree(), 1))
            .add(report::sci(spec.paperDensityA, 2, "fraction"))
            .add(report::sci(g.density(), 2, "fraction"))
            .add(report::textCell(
                std::to_string(spec.gcn.inFeatures) + "-" +
                std::to_string(spec.gcn.hidden) + "-" +
                std::to_string(spec.gcn.classes)))
            .add(report::fraction(w.x(0).density(), 2))
            .add(report::fraction(w.x(1).density(), 1));
    }

    auto p = ctx.table("table1_degrees",
                       "Degree-distribution shape (power-law evidence)");
    p.col("dataset", "dataset")
        .col("max_degree", "max degree", "count")
        .col("mean_degree", "mean degree")
        .col("gini", "gini")
        .col("power_law_alpha", "alpha (MLE)")
        .col("top1pct_coverage", "top-1% coverage");
    for (const auto &spec : ctx.specs()) {
        const auto g = ctx.workload(spec.name).graphView();
        auto h = graph::degreeHistogram(g);
        uint32_t k = std::max(1u, g.numNodes() / 100);
        p.row({.dataset = spec.name})
            .add(report::textCell(spec.name))
            .add(report::count(h.maxValue()))
            .add(report::real(h.mean(), 1))
            .add(report::real(graph::degreeGini(g), 2))
            .add(report::real(h.powerLawAlpha(4), 2))
            .add(report::fraction(graph::topKDegreeCoverage(g, k)));
    }
    return 0;
}
