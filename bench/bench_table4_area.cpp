/**
 * @file
 * Table IV reproduction: GROW's area breakdown at 65 nm (measured in
 * the paper via Synopsys DC) and the 40 nm scaling used to compare
 * against GCNAX's published 6.51 mm^2. Also derives the Sec. VII-E
 * performance-per-area claim using the measured speedup from this
 * repository's Figure 20 bench.
 */
#include "common.hpp"
#include "energy/area_model.hpp"

using namespace grow;
using namespace grow::bench;

GROW_BENCH_MAIN("table4_area")
{
    BenchContext ctx(argc, argv, "tiny");
    ctx.banner("Table IV: area breakdown");

    auto a65 = energy::estimateGrowArea(energy::GrowAreaInputs{},
                                        energy::ProcessNode::Nm65);
    auto a40 = energy::estimateGrowArea(energy::GrowAreaInputs{},
                                        energy::ProcessNode::Nm40);

    auto t = ctx.table("table4", "Table IV (mm^2)");
    t.col("component", "component")
        .col("area_40nm", "40 nm (estimated)", "mm^2")
        .col("area_65nm", "65 nm (measured)", "mm^2");
    auto component = [&](const char *slug, const char *name, double a40v,
                         double a65v) {
        t.row({.extra = {{"component", slug}}})
            .add(report::textCell(name))
            .add(report::real(a40v, 3))
            .add(report::real(a65v, 3));
    };
    component("mac_array", "MAC array", a40.macArray, a65.macArray);
    component("ibuf_sparse", "I-BUF_sparse", a40.iBufSparse,
              a65.iBufSparse);
    component("hdn_id_list", "HDN ID list", a40.hdnIdList, a65.hdnIdList);
    component("hdn_cache", "HDN cache", a40.hdnCache, a65.hdnCache);
    component("obuf_dense", "O-BUF_dense", a40.oBufDense, a65.oBufDense);
    component("others", "Others", a40.others, a65.others);
    component("total", "Total", a40.total(), a65.total());
    t.row({.extra = {{"component", "gcnax_reported"}}})
        .add(report::textCell("GCNAX (reported, 40 nm)"))
        .add(report::real(energy::gcnaxReportedAreaMm2(), 2))
        .add(report::textCell("-"));

    // Measure the average speedup at this bench's scale and fold it
    // into performance/mm^2 (Sec. VII-E).
    std::vector<double> speedups;
    for (const auto &spec : ctx.specs()) {
        double base = static_cast<double>(
            ctx.inference(spec.name, "gcnax").totalCycles);
        double gp = static_cast<double>(
            ctx.inference(spec.name, "grow").totalCycles);
        speedups.push_back(base / gp);
    }
    double speedup = geomean(speedups);
    double perfPerArea =
        speedup * energy::gcnaxReportedAreaMm2() / a40.total();

    auto s = ctx.table("table4_perf_area",
                       "Performance per area (Sec. VII-E)");
    s.col("metric", "metric").col("value", "value");
    s.row({.extra = {{"stat", "geomean_speedup"}}})
        .add(report::textCell("measured geomean speedup"))
        .add(report::ratio(speedup));
    s.row({.extra = {{"stat", "area_ratio_gcnax_grow"}}})
        .add(report::textCell("area ratio GCNAX/GROW @40nm"))
        .add(report::ratio(energy::gcnaxReportedAreaMm2() / a40.total()));
    s.row({.extra = {{"stat", "perf_per_area_vs_gcnax"}}})
        .add(report::textCell(
            "performance/mm^2 vs GCNAX (paper: 8.2x @2.8x speedup)"))
        .add(report::ratio(perfPerArea));
    return 0;
}
