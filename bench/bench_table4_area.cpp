/**
 * @file
 * Table IV reproduction: GROW's area breakdown at 65 nm (measured in
 * the paper via Synopsys DC) and the 40 nm scaling used to compare
 * against GCNAX's published 6.51 mm^2. Also derives the Sec. VII-E
 * performance-per-area claim using the measured speedup from this
 * repository's Figure 20 bench.
 */
#include "common.hpp"
#include "energy/area_model.hpp"

using namespace grow;
using namespace grow::bench;

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv, "tiny");
    ctx.banner("Table IV: area breakdown");

    auto a65 = energy::estimateGrowArea(energy::GrowAreaInputs{},
                                        energy::ProcessNode::Nm65);
    auto a40 = energy::estimateGrowArea(energy::GrowAreaInputs{},
                                        energy::ProcessNode::Nm40);

    TextTable t("Table IV (mm^2)");
    t.setHeader({"component", "40 nm (estimated)", "65 nm (measured)"});
    t.addRow({"MAC array", fmtDouble(a40.macArray, 3),
              fmtDouble(a65.macArray, 3)});
    t.addRow({"I-BUF_sparse", fmtDouble(a40.iBufSparse, 3),
              fmtDouble(a65.iBufSparse, 3)});
    t.addRow({"HDN ID list", fmtDouble(a40.hdnIdList, 3),
              fmtDouble(a65.hdnIdList, 3)});
    t.addRow({"HDN cache", fmtDouble(a40.hdnCache, 3),
              fmtDouble(a65.hdnCache, 3)});
    t.addRow({"O-BUF_dense", fmtDouble(a40.oBufDense, 3),
              fmtDouble(a65.oBufDense, 3)});
    t.addRow({"Others", fmtDouble(a40.others, 3),
              fmtDouble(a65.others, 3)});
    t.addRow({"Total", fmtDouble(a40.total(), 3),
              fmtDouble(a65.total(), 3)});
    t.addRow({"GCNAX (reported, 40 nm)",
              fmtDouble(energy::gcnaxReportedAreaMm2(), 2), "-"});
    t.print();

    // Measure the average speedup at this bench's scale and fold it
    // into performance/mm^2 (Sec. VII-E).
    std::vector<double> speedups;
    for (const auto &spec : ctx.specs()) {
        double base = static_cast<double>(
            ctx.inference(spec.name, "gcnax").totalCycles);
        double gp = static_cast<double>(
            ctx.inference(spec.name, "grow").totalCycles);
        speedups.push_back(base / gp);
    }
    double speedup = geomean(speedups);
    double perfPerArea =
        speedup * energy::gcnaxReportedAreaMm2() / a40.total();

    TextTable s("Performance per area (Sec. VII-E)");
    s.setHeader({"metric", "value"});
    s.addRow({"measured geomean speedup", fmtRatio(speedup)});
    s.addRow({"area ratio GCNAX/GROW @40nm",
              fmtRatio(energy::gcnaxReportedAreaMm2() / a40.total())});
    s.addRow({"performance/mm^2 vs GCNAX (paper: 8.2x @2.8x speedup)",
              fmtRatio(perfPerArea)});
    s.print();
    return 0;
}
