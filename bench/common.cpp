#include "common.hpp"

#include <algorithm>
#include <iostream>
#include <thread>

#include "util/logging.hpp"
#include "util/work_pool.hpp"

namespace grow::bench {

namespace {

std::map<std::string, BenchFn> &
mutableRegistry()
{
    static std::map<std::string, BenchFn> registry;
    return registry;
}

std::string &
mutableCurrentBench()
{
    static std::string name;
    return name;
}

} // namespace

const std::map<std::string, BenchFn> &
benchRegistry()
{
    return mutableRegistry();
}

BenchRegistrar::BenchRegistrar(const char *name, BenchFn fn)
{
    auto [it, inserted] = mutableRegistry().emplace(name, fn);
    GROW_ASSERT(inserted,
                std::string("duplicate bench registration: ") + name);
}

const std::string &
currentBenchName()
{
    return mutableCurrentBench();
}

int
runBench(const std::string &name, BenchFn fn, int argc, char **argv)
{
    mutableCurrentBench() = name;
    int rc = 1;
    try {
        rc = fn(argc, argv);
    } catch (const std::exception &e) {
        std::cerr << "bench " << name << " failed: " << e.what() << "\n";
    }
    mutableCurrentBench().clear();
    return rc;
}

BenchContext::BenchContext(int argc, char **argv,
                           const std::string &default_scale,
                           const std::string &default_datasets,
                           const std::vector<std::string> &extra_keys)
    : args_(argc, argv), cache_(args_.get("cachedir", ""))
{
    std::vector<std::string> known = {"scale",  "datasets", "model",
                                      "cachedir", "format", "out",
                                      "threads",  "epoch",  "profile",
                                      "memcap",   "chips",  "link_gbps",
                                      "link_ns"};
    known.insert(known.end(), extra_keys.begin(), extra_keys.end());
    args_.requireKnown(known);

    tier_ = graph::tierFromString(args_.get("scale", default_scale));
    model_ = gcn::modelKindFromString(args_.get("model", "gcn"));
    // Default: one worker per core, like the sweeps always ran. An
    // explicit threads= bounds *every* level (sweep prefetch, phase
    // fan-out, epoch rounds); results are bit-identical either way.
    threads_ = args_.has("threads")
                   ? util::checkedThreadCount(args_.getInt("threads", 1))
                   : std::max(1u, std::thread::hardware_concurrency());
    profile_ = args_.getBool("profile", false);
    chipCounts_.clear();
    for (const auto &c : args_.getList("chips", {"1"})) {
        if (c.empty() || c.find_first_not_of("0123456789") != std::string::npos)
            fatal("chips= takes positive chip counts, got '" + c + "'");
        const uint64_t n = std::stoull(c);
        if (n < 1 || n > scaleout::kMaxChips)
            fatal("chips= must be in [1, " +
                  std::to_string(scaleout::kMaxChips) + "], got " + c);
        chipCounts_.push_back(static_cast<uint32_t>(n));
    }
    const bool anySharded =
        std::any_of(chipCounts_.begin(), chipCounts_.end(),
                    [](uint32_t n) { return n > 1; });
    if ((args_.has("link_gbps") || args_.has("link_ns")) && !anySharded)
        fatal("link_gbps=/link_ns= describe the inter-chip links of a "
              "multi-chip topology; pass a chips= value > 1 (or drop "
              "the link keys)");
    link_.bandwidthGBps = args_.getDouble("link_gbps", link_.bandwidthGBps);
    link_.latencyNs = args_.getDouble("link_ns", link_.latencyNs);
    if (args_.has("memcap"))
        cache_.setMemoryByteCap(
            parseByteSize("memcap", args_.get("memcap", "")));
    // Cache misses build with the bench's worker pool; artefacts are
    // bit-identical for every thread count (see DESIGN.md).
    cache_.setBuildThreads(threads_);
    if (args_.get("epoch", "") == "auto") {
        // epoch=auto: window seeds at the controller default and
        // adapts per round from observed channel utilisation.
        epochAuto_ = true;
    } else {
        const int64_t epoch = args_.getInt("epoch", 0);
        if (epoch < 0)
            fatal("epoch must be >= 0 cycles (0 = exact serial "
                  "schedule) or 'auto', got " + std::to_string(epoch));
        epochCycles_ = static_cast<Cycle>(epoch);
    }
    specs_ = graph::datasetsByNames(
        args_.getList("datasets", split(default_datasets, ',')));

    format_ = args_.get("format", "table");
    report::makeSink(format_); // reject bad formats before simulating
    out_ = args_.get("out", "");

    auto &meta = report_.meta();
    meta.bench = currentBenchName().empty() ? "bench" : currentBenchName();
    meta.revision = report::buildRevision();
    meta.scale = graph::tierName(tier_);
    meta.model = gcn::modelKindName(model_);
}

BenchContext::~BenchContext()
{
    try {
        if (profile_)
            emitSimSpeed();
        if (auto *collector = report::activeCollector())
            collector->add(std::move(report_));
        else
            report::emitReport(report_, format_, out_);
    } catch (const std::exception &e) {
        logError(std::string("report emission failed: ") + e.what());
    }
}

void
BenchContext::emitSimSpeed()
{
    // Every cached InferenceResult already carries its own host timing
    // (gcn::executePlan measures itself); this just declares it. The
    // values are nondeterministic, which is fine: sim-speed units
    // ("ms", "rows/s") are outside report_diff's default gate set and
    // only compare under an explicit loose tolerance override.
    if (!results_.empty()) {
        auto t = report_.table("sim_speed",
                               "Simulator speed (host wall-clock)");
        t.col("dataset", "dataset")
            .col("engine", "engine")
            .col("wall_ms", "wall ms", "ms")
            .col("combination_ms", "comb ms", "ms")
            .col("aggregation_ms", "agg ms", "ms")
            .col("attention_ms", "attn ms", "ms")
            .col("sim_rows", "sim rows", "rows")
            .col("rows_per_sec", "sim rows/s", "rows/s");
        for (const auto &[key, r] : results_) {
            const auto slash = key.find('/');
            std::string dataset = key.substr(0, slash);
            std::string engine = slash == std::string::npos
                                     ? std::string()
                                     : key.substr(slash + 1);
            double comb = 0.0, agg = 0.0, attn = 0.0;
            for (const auto &pm : r.phases) {
                switch (pm.op) {
                  case gcn::PhaseOp::Combination:
                    comb += pm.hostMillis;
                    break;
                  case gcn::PhaseOp::Aggregation:
                    agg += pm.hostMillis;
                    break;
                  case gcn::PhaseOp::AttentionScore:
                    attn += pm.hostMillis;
                    break;
                  case gcn::PhaseOp::HaloExchange:
                    // Halo phases never reach the single-chip results
                    // cached here (bench_scaleout reports link time in
                    // its own tables).
                    break;
                }
            }
            t.row({.dataset = dataset, .engine = engine})
                .add(report::textCell(dataset))
                .add(report::textCell(engine))
                .add(report::real(r.hostMillis, 3, "ms"))
                .add(report::real(comb, 3, "ms"))
                .add(report::real(agg, 3, "ms"))
                .add(report::real(attn, 3, "ms"))
                .add(report::count(r.simRows, "rows"))
                .add(report::real(
                    util::rowsPerSecond(r.simRows, r.hostMillis), 1,
                    "rows/s"));
        }
    }
    // build_phase family: per-stage wall-clock of every bundle this
    // process actually built (cache/disk hits record nothing). The
    // cache's build log survives eviction, so a memcap= run still
    // reports its builds. One row per dataset: a sweep may build
    // several bundle variants of one graph (e.g. a sampled extension),
    // but duplicate row keys would collide in the record stream, so
    // the first (base) build represents the dataset.
    std::map<std::string, gcn::GraphArtifacts::BuildProfile> built;
    for (const auto &[name, profile] : cache_.buildLog())
        built.emplace(name, profile);
    if (!built.empty()) {
        auto pt = report_.table("build_phase",
                                "Workload build (host wall-clock)");
        pt.col("dataset", "dataset")
            .col("threads", "threads")
            .col("synth_ms", "synth ms", "ms")
            .col("normalize_ms", "norm ms", "ms")
            .col("partition_ms", "part ms", "ms")
            .col("relabel_ms", "relabel ms", "ms")
            .col("hdn_ms", "hdn ms", "ms")
            .col("total_ms", "total ms", "ms")
            .col("edges_per_sec", "edges/s", "edges/s");
        for (const auto &[name, p] : built) {
            pt.row({.dataset = name})
                .add(report::textCell(name))
                .add(report::count(p.threads))
                .add(report::real(p.synthMs, 3, "ms"))
                .add(report::real(p.normalizeMs, 3, "ms"))
                .add(report::real(p.partitionMs, 3, "ms"))
                .add(report::real(p.relabelMs, 3, "ms"))
                .add(report::real(p.hdnMs, 3, "ms"))
                .add(report::real(p.totalMs, 3, "ms"))
                .add(report::real(p.arcsPerSec(), 1, "edges/s"));
        }
    }
    auto bt = report_.table("sim_speed_bench", "Bench wall-clock");
    bt.col("bench_wall_ms", "bench wall ms", "ms");
    bt.row({}).add(report::real(benchClock_.elapsedMs(), 3, "ms"));
}

void
BenchContext::banner(const std::string &what)
{
    std::string line = "\n### " + what +
                       " [scale=" + graph::tierName(tier_);
    if (model_ != gcn::ModelKind::Gcn)
        line += std::string(" model=") + gcn::modelKindName(model_);
    line += "]";
    report_.note(std::move(line));
}

const gcn::GcnWorkload &
BenchContext::workload(const std::string &name)
{
    auto it = workloads_.find(name);
    if (it == workloads_.end()) {
        gcn::WorkloadConfig wc;
        wc.tier = tier_;
        wc.model = model_;
        it = workloads_
                 .emplace(name,
                          cache_.workload(graph::datasetByName(name), wc))
                 .first;
    }
    return it->second;
}

gcn::RunOptions
BenchContext::runOptions() const
{
    gcn::RunOptions base;
    base.sim.threads = threads_;
    base.sim.epochCycles = epochCycles_;
    base.sim.epochAuto = epochAuto_;
    return base;
}

scaleout::EngineTopology
BenchContext::topology(const std::string &engine_key, uint32_t chips) const
{
    auto topo = scaleout::EngineTopology{}
                    .withEngine(engine_key)
                    .withChips(chips)
                    .withLink(link_);
    topo.validate();
    return topo;
}

gcn::InferenceResult
BenchContext::runEngine(const gcn::GcnWorkload &w,
                        const std::string &engine_key)
{
    auto job = driver::makeEngineJob(engine_key, w, runOptions());
    auto engine = job.makeEngine();
    return gcn::runInference(*engine, w, job.options);
}

const gcn::InferenceResult &
BenchContext::inference(const std::string &dataset,
                        const std::string &engine_key)
{
    std::string key = dataset + "/" + engine_key;
    auto it = results_.find(key);
    if (it == results_.end()) {
        it = results_.emplace(key, runEngine(workload(dataset), engine_key))
                 .first;
    }
    return it->second;
}

void
BenchContext::recordInference(const std::string &dataset,
                              const std::string &engine_key,
                              const gcn::InferenceResult &result)
{
    if (!profile_)
        return;
    results_.emplace(dataset + "/" + engine_key, result);
}

void
BenchContext::prefetch(const std::vector<std::string> &engine_keys)
{
    // Workload construction mutates the cache map; do it serially up
    // front so the parallel phase only reads borrowed workloads.
    std::vector<driver::SweepJob> jobs;
    for (const auto &spec : specs_) {
        const auto &w = workload(spec.name);
        for (const auto &key : engine_keys) {
            std::string cacheKey = spec.name + "/" + key;
            if (results_.count(cacheKey))
                continue;
            auto job = driver::makeEngineJob(key, w, runOptions());
            // Label IS the cache key: inference() must find these.
            job.label = std::move(cacheKey);
            jobs.push_back(std::move(job));
        }
    }
    driver::SweepDriver pool(threads_);
    auto outcomes = pool.runAll(jobs);
    for (auto &o : outcomes)
        results_.emplace(o.label, std::move(o.inference));
}

} // namespace grow::bench
