#include "common.hpp"

#include <cmath>
#include <iostream>

#include "util/logging.hpp"

namespace grow::bench {

core::GrowConfig
EngineSet::growDefault()
{
    return core::GrowConfig{};
}

core::GrowConfig
EngineSet::growNoRunahead()
{
    // "Without runahead" (Fig. 21 baseline) removes the *multi-row*
    // window: the engine derives one output row at a time and only
    // admits the next row once the current one retires. Misses within
    // the single active row may still overlap (the LDN/LHS-ID tables
    // exist in all configurations).
    core::GrowConfig c;
    c.runaheadDegree = 1;
    return c;
}

core::GrowConfig
EngineSet::growNoCache()
{
    core::GrowConfig c;
    c.hdnCacheEnabled = false;
    return c;
}

accel::GcnaxConfig
EngineSet::gcnaxDefault()
{
    return accel::GcnaxConfig{};
}

accel::MatRaptorConfig
EngineSet::matraptorDefault()
{
    return accel::MatRaptorConfig{};
}

accel::GammaConfig
EngineSet::gammaDefault()
{
    return accel::GammaConfig{};
}

BenchContext::BenchContext(int argc, char **argv,
                           const std::string &default_scale,
                           const std::string &default_datasets)
    : args_(argc, argv)
{
    tier_ = graph::tierFromString(args_.get("scale", default_scale));
    specs_ = graph::datasetsByNames(
        args_.getList("datasets", split(default_datasets, ',')));
}

const gcn::GcnWorkload &
BenchContext::workload(const std::string &name)
{
    auto it = workloads_.find(name);
    if (it == workloads_.end()) {
        gcn::WorkloadConfig wc;
        wc.tier = tier_;
        it = workloads_
                 .emplace(name, gcn::buildWorkload(
                                    graph::datasetByName(name), wc))
                 .first;
    }
    return it->second;
}

gcn::InferenceResult
BenchContext::runEngine(const gcn::GcnWorkload &w,
                        const std::string &engine_key)
{
    gcn::RunnerOptions opt;
    if (engine_key == "grow") {
        opt.usePartitioning = true;
        core::GrowSim sim(EngineSet::growDefault());
        return gcn::runInference(sim, w, opt);
    }
    if (engine_key == "grow-nogp") {
        core::GrowSim sim(EngineSet::growDefault());
        return gcn::runInference(sim, w, opt);
    }
    if (engine_key == "grow-norunahead") {
        core::GrowSim sim(EngineSet::growNoRunahead());
        return gcn::runInference(sim, w, opt);
    }
    if (engine_key == "grow-norunahead-gp") {
        opt.usePartitioning = true;
        core::GrowSim sim(EngineSet::growNoRunahead());
        return gcn::runInference(sim, w, opt);
    }
    if (engine_key == "grow-nocache") {
        core::GrowSim sim(EngineSet::growNoCache());
        return gcn::runInference(sim, w, opt);
    }
    if (engine_key == "grow-lru") {
        opt.usePartitioning = true;
        core::GrowConfig c = EngineSet::growDefault();
        c.hdnPolicy = core::HdnPolicy::Lru;
        core::GrowSim sim(c);
        return gcn::runInference(sim, w, opt);
    }
    if (engine_key == "grow-lru-nogp") {
        core::GrowConfig c = EngineSet::growDefault();
        c.hdnPolicy = core::HdnPolicy::Lru;
        core::GrowSim sim(c);
        return gcn::runInference(sim, w, opt);
    }
    if (engine_key == "gcnax") {
        accel::GcnaxSim sim(EngineSet::gcnaxDefault());
        return gcn::runInference(sim, w, opt);
    }
    if (engine_key == "matraptor") {
        accel::MatRaptorSim sim(EngineSet::matraptorDefault());
        return gcn::runInference(sim, w, opt);
    }
    if (engine_key == "gamma") {
        accel::GammaSim sim(EngineSet::gammaDefault());
        return gcn::runInference(sim, w, opt);
    }
    fatal("unknown engine key: " + engine_key);
}

const gcn::InferenceResult &
BenchContext::inference(const std::string &dataset,
                        const std::string &engine_key)
{
    std::string key = dataset + "/" + engine_key;
    auto it = results_.find(key);
    if (it == results_.end()) {
        it = results_.emplace(key, runEngine(workload(dataset), engine_key))
                 .first;
    }
    return it->second;
}

void
BenchContext::banner(const std::string &what) const
{
    std::cout << "\n### " << what << " [scale=" << graph::tierName(tier_)
              << "]\n";
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double logSum = 0.0;
    for (double v : values)
        logSum += std::log(v);
    return std::exp(logSum / static_cast<double>(values.size()));
}

} // namespace grow::bench
