#include "common.hpp"

#include <iostream>

#include "util/logging.hpp"

namespace grow::bench {

BenchContext::BenchContext(int argc, char **argv,
                           const std::string &default_scale,
                           const std::string &default_datasets)
    : args_(argc, argv), cache_(args_.get("cachedir", ""))
{
    tier_ = graph::tierFromString(args_.get("scale", default_scale));
    model_ = gcn::modelKindFromString(args_.get("model", "gcn"));
    specs_ = graph::datasetsByNames(
        args_.getList("datasets", split(default_datasets, ',')));
}

const gcn::GcnWorkload &
BenchContext::workload(const std::string &name)
{
    auto it = workloads_.find(name);
    if (it == workloads_.end()) {
        gcn::WorkloadConfig wc;
        wc.tier = tier_;
        wc.model = model_;
        it = workloads_
                 .emplace(name,
                          cache_.workload(graph::datasetByName(name), wc))
                 .first;
    }
    return it->second;
}

gcn::InferenceResult
BenchContext::runEngine(const gcn::GcnWorkload &w,
                        const std::string &engine_key)
{
    auto job = driver::makeEngineJob(engine_key, w);
    auto engine = job.makeEngine();
    return gcn::runInference(*engine, w, job.options);
}

const gcn::InferenceResult &
BenchContext::inference(const std::string &dataset,
                        const std::string &engine_key)
{
    std::string key = dataset + "/" + engine_key;
    auto it = results_.find(key);
    if (it == results_.end()) {
        it = results_.emplace(key, runEngine(workload(dataset), engine_key))
                 .first;
    }
    return it->second;
}

void
BenchContext::prefetch(const std::vector<std::string> &engine_keys)
{
    // Workload construction mutates the cache map; do it serially up
    // front so the parallel phase only reads borrowed workloads.
    std::vector<driver::SweepJob> jobs;
    for (const auto &spec : specs_) {
        const auto &w = workload(spec.name);
        for (const auto &key : engine_keys) {
            std::string cacheKey = spec.name + "/" + key;
            if (results_.count(cacheKey))
                continue;
            auto job = driver::makeEngineJob(key, w);
            // Label IS the cache key: inference() must find these.
            job.label = std::move(cacheKey);
            jobs.push_back(std::move(job));
        }
    }
    driver::SweepDriver pool;
    auto outcomes = pool.runAll(jobs);
    for (auto &o : outcomes)
        results_.emplace(o.label, std::move(o.inference));
}

void
BenchContext::banner(const std::string &what) const
{
    std::cout << "\n### " << what << " [scale=" << graph::tierName(tier_);
    if (model_ != gcn::ModelKind::Gcn)
        std::cout << " model=" << gcn::modelKindName(model_);
    std::cout << "]\n";
}

} // namespace grow::bench
