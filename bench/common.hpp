/**
 * @file
 * Shared scaffolding for the paper-reproduction bench binaries.
 *
 * Every bench accepts `key=value` arguments:
 *   scale=mini|tiny|full|unit   dataset scale tier (per-bench default)
 *   datasets=cora,...|all       dataset subset
 *   model=gcn|sage-mean|sage-pool|gin|gat
 *                               GNN layer type the workloads lower as
 *                               (default gcn, the paper's evaluation)
 *   cachedir=<path>             persist graph artefacts on disk so
 *                               repeated runs skip synthesis (optional)
 * and prints one or more TextTables that mirror a specific table or
 * figure of the paper. EXPERIMENTS.md records paper-vs-measured per
 * bench.
 */
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "accel/gamma.hpp"
#include "accel/gcnax.hpp"
#include "accel/matraptor.hpp"
#include "core/grow.hpp"
#include "driver/sweep_driver.hpp"
#include "driver/workload_cache.hpp"
#include "gcn/runner.hpp"
#include "gcn/workload.hpp"
#include "graph/datasets.hpp"
#include "util/cli.hpp"
#include "util/mathutil.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace grow::bench {

/** Workload cache + argument handling shared by all bench mains. */
class BenchContext
{
  public:
    BenchContext(int argc, char **argv,
                 const std::string &default_scale = "mini",
                 const std::string &default_datasets = "all");

    const CliArgs &args() const { return args_; }
    graph::ScaleTier tier() const { return tier_; }
    /** GNN layer type selected via `model=` (default Gcn). */
    gcn::ModelKind model() const { return model_; }
    const std::vector<graph::DatasetSpec> &specs() const { return specs_; }

    /** Build (once) and return the workload of @p name, lowered as
     *  the bench's selected model. */
    const gcn::GcnWorkload &workload(const std::string &name);

    /**
     * The shared construction cache behind workload(): graph-level
     * artefacts are memoised per (dataset, tier, partition plan), and
     * persisted on disk when `cachedir=` was given.
     */
    driver::WorkloadCache &cache() { return cache_; }

    /** Run inference; results are cached per (engine, layout). */
    const gcn::InferenceResult &
    inference(const std::string &dataset, const std::string &engine_key);

    /**
     * Fan the whole dataset x engine-key cross product out over the
     * sweep driver and populate the inference cache, so subsequent
     * inference() calls only read. Cuts sweep wall-clock by roughly
     * the core count; results are identical to serial runs.
     */
    void prefetch(const std::vector<std::string> &engine_keys);

    /** Pretty header line for the bench. */
    void banner(const std::string &what) const;

  private:
    gcn::InferenceResult runEngine(const gcn::GcnWorkload &w,
                                   const std::string &engine_key);

    CliArgs args_;
    graph::ScaleTier tier_;
    gcn::ModelKind model_ = gcn::ModelKind::Gcn;
    std::vector<graph::DatasetSpec> specs_;
    driver::WorkloadCache cache_;
    std::map<std::string, gcn::GcnWorkload> workloads_;
    std::map<std::string, gcn::InferenceResult> results_;
};

/** Geometric mean helper for "average speedup" rows. */
using ::grow::geomean;

} // namespace grow::bench
