/**
 * @file
 * Shared scaffolding for the paper-reproduction bench binaries.
 *
 * Every bench accepts `key=value` arguments (unknown keys abort with
 * the accepted list):
 *   scale=mini|tiny|full|unit   dataset scale tier (per-bench default)
 *   datasets=cora,...|all       dataset subset; a `file:<path>`
 *                               element streams a pre-converted
 *                               .growcsr graph (tools/graph_convert)
 *                               through mmap instead of synthesising
 *                               (out-of-core ingestion; pass the
 *                               scale= the file was converted at)
 *   model=gcn|sage-mean|sage-pool|gin|gat
 *                               GNN layer type the workloads lower as
 *                               (default gcn, the paper's evaluation)
 *   cachedir=<path>             persist graph artefacts on disk so
 *                               repeated runs skip synthesis (optional)
 *   format=table|json|csv       report rendering (default table, the
 *                               historical human-readable output)
 *   out=<path>                  write the report to a file instead of
 *                               stdout
 *   threads=<n>                 worker parallelism (default: one per
 *                               core): bounds sweep prefetch, phase
 *                               fan-out inside each inference and
 *                               epoch-mode cluster rounds, all on one
 *                               shared pool; results are bit-identical
 *                               for every value. Rejects 0 and > 4x
 *                               hardware concurrency.
 *   epoch=<cycles>|auto         GROW cluster-parallel co-simulation
 *                               window (default 0 = exact serial
 *                               schedule; `auto` adapts the window
 *                               per round from observed channel
 *                               utilisation, still deterministically;
 *                               see DESIGN.md)
 *   profile=0|1                 also report the `sim-speed` metric
 *                               family: host wall-clock per inference
 *                               (split by phase op) plus simulated
 *                               rows per host second, and the
 *                               `build_phase` family: per-stage
 *                               workload-build wall-clock (synthesis,
 *                               normalize, partition, relabel, HDN)
 *                               plus build edges/s, one row per
 *                               freshly built bundle (cache hits have
 *                               no build to time). Off by default
 *                               -- wall-clock is nondeterministic and
 *                               must never enter golden-locked output
 *                               (see DESIGN.md "Simulator
 *                               performance")
 *   memcap=<bytes>[K|M|G]       byte budget for the in-memory artefact
 *                               cache (default 0 = unbounded):
 *                               least-recently-used bundles are
 *                               evicted past the budget, except the
 *                               most recent one, so a single
 *                               over-budget graph still runs
 *                               (out-of-core via dataset=file:)
 *   chips=<n>[,<n>...]          chip counts to evaluate (default 1):
 *                               values > 1 shard the workload's
 *                               partition clusters across that many
 *                               chips joined by inter-chip links
 *                               (scaleout::runInference); benches that
 *                               evaluate a single topology use the
 *                               first element
 *   link_gbps=<GB/s>            inter-chip link bandwidth per
 *                               direction (default 64); only
 *                               meaningful with a chips= value > 1
 *   link_ns=<ns>                inter-chip link latency (default 500);
 *                               only meaningful with a chips= value
 *                               > 1
 *
 * A bench does not print: it *declares* its banner lines and tables
 * through the structured results API (src/report/) and the selected
 * ReportSink renders everything once at exit. `format=table` output is
 * byte-identical to the historical hand-formatted tables;
 * `format=json` emits the schema-versioned record stream that
 * bench_suite merges into the BENCH_GROW.json perf trajectory.
 *
 * Bench bodies are defined with GROW_BENCH_MAIN("name"), which both
 * emits a standalone main() and registers the body in benchRegistry()
 * so bench_suite (built with GROW_BENCH_NO_MAIN) can run any subset
 * in one process. EXPERIMENTS.md records paper-vs-measured per bench.
 */
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "accel/gamma.hpp"
#include "accel/gcnax.hpp"
#include "accel/matraptor.hpp"
#include "core/grow.hpp"
#include "driver/sweep_driver.hpp"
#include "driver/workload_cache.hpp"
#include "gcn/runner.hpp"
#include "gcn/workload.hpp"
#include "graph/datasets.hpp"
#include "report/report.hpp"
#include "report/sinks.hpp"
#include "scaleout/topology.hpp"
#include "util/cli.hpp"
#include "util/mathutil.hpp"
#include "util/string_util.hpp"
#include "util/wallclock.hpp"

namespace grow::bench {

/** Signature of one registered bench body. */
using BenchFn = int (*)(int argc, char **argv);

/** Name -> body of every bench linked into this binary. */
const std::map<std::string, BenchFn> &benchRegistry();

/** Registers a bench body under its name at static-init time. */
struct BenchRegistrar
{
    BenchRegistrar(const char *name, BenchFn fn);
};

/** Name of the bench currently executing ("" outside runBench()). */
const std::string &currentBenchName();

/**
 * Run @p fn as bench @p name: sets currentBenchName() (BenchContext
 * stamps it into the report meta) and maps uncaught exceptions to a
 * non-zero exit instead of a terminate(), so one failing bench cannot
 * take a whole suite run down.
 */
int runBench(const std::string &name, BenchFn fn, int argc, char **argv);

/** Workload cache + argument handling + report shared by all benches. */
class BenchContext
{
  public:
    /**
     * Parse argv and reject unknown keys: the universal set above
     * plus @p extra_keys (bench-specific knobs like model_zoo's
     * `engines=`).
     */
    BenchContext(int argc, char **argv,
                 const std::string &default_scale = "mini",
                 const std::string &default_datasets = "all",
                 const std::vector<std::string> &extra_keys = {});

    /** Emits the report through the `format=`/`out=` sink -- or hands
     *  it to the active ReportCollector (suite runs). */
    ~BenchContext();

    BenchContext(const BenchContext &) = delete;
    BenchContext &operator=(const BenchContext &) = delete;

    const CliArgs &args() const { return args_; }
    graph::ScaleTier tier() const { return tier_; }
    /** GNN layer type selected via `model=` (default Gcn). */
    gcn::ModelKind model() const { return model_; }
    const std::vector<graph::DatasetSpec> &specs() const { return specs_; }

    /** Validated `threads=` worker parallelism (default: one per
     *  core). Bounds every level: sweep prefetch, phase fan-out and
     *  epoch-mode rounds. */
    uint32_t threads() const { return threads_; }

    /** Whether `profile=1` requested the sim-speed metric family. */
    bool profile() const { return profile_; }

    /** Base run options every inference of this bench runs under
     *  (threads= and epoch= applied; engine-specific layout still
     *  comes from makeEngineJob). */
    gcn::RunOptions runOptions() const;

    /** Deprecated pre-scale-out spelling of runOptions(). */
    gcn::RunOptions runnerOptions() const { return runOptions(); }

    /** Every `chips=` value, supplied order (default {1}). */
    const std::vector<uint32_t> &chipCounts() const { return chipCounts_; }

    /** First `chips=` value -- the topology single-topology benches
     *  evaluate. */
    uint32_t chips() const { return chipCounts_.front(); }

    /** Inter-chip link spec assembled from `link_gbps=`/`link_ns=`. */
    const scaleout::LinkSpec &linkSpec() const { return link_; }

    /**
     * The EngineTopology this bench's arguments describe for
     * @p engine_key at @p chips chips (defaulting to chips()):
     * link_gbps=/link_ns= applied, validated. Feed it to
     * driver::engineForTopology / scaleout::runInference.
     */
    scaleout::EngineTopology topology(const std::string &engine_key,
                                      uint32_t chips) const;
    scaleout::EngineTopology topology(const std::string &engine_key) const
    {
        return topology(engine_key, chips());
    }

    /** The report this bench declares its results into. */
    report::Report &report() { return report_; }

    /** Declare a new table (shorthand for report().table()). */
    report::TableBuilder table(std::string id, std::string title)
    {
        return report_.table(std::move(id), std::move(title));
    }

    /** Append a verbatim output line to the report. */
    void note(std::string text) { report_.note(std::move(text)); }

    /** Declare the standard bench banner line. */
    void banner(const std::string &what);

    /** Build (once) and return the workload of @p name, lowered as
     *  the bench's selected model. */
    const gcn::GcnWorkload &workload(const std::string &name);

    /**
     * The shared construction cache behind workload(): graph-level
     * artefacts are memoised per (dataset, tier, partition plan), and
     * persisted on disk when `cachedir=` was given.
     */
    driver::WorkloadCache &cache() { return cache_; }

    /** Run inference; results are cached per (engine, layout). */
    const gcn::InferenceResult &
    inference(const std::string &dataset, const std::string &engine_key);

    /**
     * Feed an externally-run inference into the sim-speed emitter.
     * Benches that drive their own SweepDriver (model_zoo) bypass the
     * inference() cache; under profile=1 they hand each outcome here
     * so their host timing still reaches the sim_speed table. No-op
     * unless profiling (avoids result copies on golden runs).
     */
    void recordInference(const std::string &dataset,
                         const std::string &engine_key,
                         const gcn::InferenceResult &result);

    /**
     * Fan the whole dataset x engine-key cross product out over the
     * sweep driver and populate the inference cache, so subsequent
     * inference() calls only read. Cuts sweep wall-clock by roughly
     * the core count; results are identical to serial runs.
     */
    void prefetch(const std::vector<std::string> &engine_keys);

  private:
    gcn::InferenceResult runEngine(const gcn::GcnWorkload &w,
                                   const std::string &engine_key);

    /** Declare the sim-speed tables from the cached inference results
     *  (profile=1 only; runs just before the report is emitted). */
    void emitSimSpeed();

    CliArgs args_;
    graph::ScaleTier tier_;
    gcn::ModelKind model_ = gcn::ModelKind::Gcn;
    uint32_t threads_ = 1;
    bool profile_ = false;
    std::vector<uint32_t> chipCounts_{1};
    scaleout::LinkSpec link_;
    util::WallClock benchClock_;
    Cycle epochCycles_ = 0;
    bool epochAuto_ = false;
    std::vector<graph::DatasetSpec> specs_;
    driver::WorkloadCache cache_;
    std::map<std::string, gcn::GcnWorkload> workloads_;
    std::map<std::string, gcn::InferenceResult> results_;
    report::Report report_;
    std::string format_;
    std::string out_;
};

/** Geometric mean helper for "average speedup" rows. */
using ::grow::geomean;

} // namespace grow::bench

#ifdef GROW_BENCH_NO_MAIN
// Suite build: every bench body is linked into one binary; only the
// registry entry is emitted, bench_suite provides main().
#define GROW_BENCH_EMIT_MAIN(name)
#else
#define GROW_BENCH_EMIT_MAIN(name)                                         \
    int main(int argc, char **argv)                                        \
    {                                                                      \
        return ::grow::bench::runBench(name, &growBenchBody, argc, argv);  \
    }
#endif

/**
 * Define one bench body: `GROW_BENCH_MAIN("fig20_speedup") { ... }`.
 * Emits the standalone main() (unless GROW_BENCH_NO_MAIN) and the
 * registry entry bench_suite dispatches through.
 */
#define GROW_BENCH_MAIN(name)                                              \
    static int growBenchBody(int argc, char **argv);                       \
    static const ::grow::bench::BenchRegistrar growBenchRegistrar(         \
        name, &growBenchBody);                                             \
    GROW_BENCH_EMIT_MAIN(name)                                             \
    static int growBenchBody(int argc, char **argv)
