/**
 * @file
 * Batched multi-graph serving -- now a thin client of the serving
 * subsystem (src/serve/).
 *
 * Historically this example hand-rolled its own batch dispatch over
 * the SweepDriver; the serving layer has since become a first-class
 * subsystem (serve::Executor + the virtual-clock loop behind
 * tools/grow_serve), so the example now *is* what a serving consumer
 * writes: build the request batch, replay it through runVirtualServe,
 * and aggregate the records. Several requests per graph (fresh
 * feature seeds stand in for fresh user inputs) share each graph's
 * expensive preprocessing through the WorkloadCache; with cachedir=
 * the artefacts persist across runs.
 *
 * The report keeps the historical shape: the `batched_serving` table
 * (dataset, nodes, mean cycles, mean DRAM traffic, HDN hit rate, mean
 * latency @1GHz) plus the `aggregate_engine_ms` record -- both now
 * produced by serve::appendServedDatasetTable, which
 * tests/serve/serve_report_test.cpp locks down.
 *
 * For the full daemon (socket protocol, admission control, deadlines,
 * multi-tenant fairness) see tools/grow_serve and tools/serve_load.
 *
 * Usage: batched_serving [datasets=cora,citeseer,pubmed] [scale=unit]
 *                        [engine=grow] [requests=4] [threads=1]
 *                        [cachedir=] [format=table|json|csv] [out=path]
 */
#include <string>
#include <vector>

#include "driver/workload_cache.hpp"
#include "graph/datasets.hpp"
#include "report/report.hpp"
#include "report/sinks.hpp"
#include "serve/executor.hpp"
#include "serve/metrics.hpp"
#include "serve/virtual_serve.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"

using namespace grow;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    args.requireKnown({"datasets", "scale", "engine", "requests",
                       "threads", "cachedir", "format", "out"});
    auto specs = graph::datasetsByNames(
        args.getList("datasets", {"cora", "citeseer", "pubmed"}));
    auto tier = graph::tierFromString(args.get("scale", "unit"));
    const std::string engineKey = args.get("engine", "grow");
    const int64_t requests = args.getInt("requests", 4);
    if (requests < 1 || requests > 4096)
        fatal("requests must be between 1 and 4096, got " +
              std::to_string(requests));
    const int64_t threads = args.getInt("threads", 1);
    if (threads < 1 || threads > 1024)
        fatal("threads must be between 1 and 1024, got " +
              std::to_string(threads));
    const std::string format = args.get("format", "table");
    report::makeSink(format); // reject bad formats before simulating

    driver::WorkloadCache cache(args.get("cachedir", ""));
    serve::Executor executor(cache, specs,
                             static_cast<uint32_t>(threads));

    // ---- The batch as a serving schedule: requests x graphs, all
    // arriving at once, served back to back on one virtual engine.
    std::vector<serve::ScheduledRequest> schedule;
    uint64_t id = 0;
    for (const auto &spec : specs) {
        for (int64_t r = 0; r < requests; ++r) {
            serve::ScheduledRequest sr;
            serve::ServeRequest &req = sr.request;
            req.id = ++id;
            req.dataset = spec.name;
            req.engine = engineKey;
            req.tier = tier;
            // Each request carries its own synthetic input features;
            // the graph-level artefacts are shared through the cache.
            req.seed = 7 + static_cast<uint64_t>(r);
            schedule.push_back(std::move(sr));
        }
    }

    serve::VirtualServeConfig config;
    config.admission.maxDepth =
        static_cast<uint32_t>(schedule.size()); // batch mode: admit all
    serve::VirtualServeResult result =
        serve::runVirtualServe(schedule, &executor, config, nullptr);
    for (const serve::RequestRecord &rec : result.records)
        if (rec.status != serve::RequestStatus::Completed)
            fatal("batched_serving: request " +
                  std::to_string(rec.request.id) +
                  " failed: " + rec.error);

    report::Report rep;
    rep.meta().bench = "batched_serving";
    rep.meta().generator = "grow-example";
    rep.meta().revision = report::buildRevision();
    rep.meta().scale = graph::tierName(tier);

    auto cstats = cache.stats();
    rep.note("batch: " + std::to_string(schedule.size()) +
             " request(s) over " + std::to_string(specs.size()) +
             " graph(s) on '" + engineKey + "'");
    rep.note("preprocessing: " + std::to_string(cstats.builds) +
             " build(s), " + std::to_string(cstats.memoryHits) +
             " in-memory reuse(s), " + std::to_string(cstats.diskLoads) +
             " disk load(s)" +
             (cache.diskDir().empty()
                  ? ""
                  : " [disk cache: " + cache.diskDir() + "]"));

    const double serialMs = serve::appendServedDatasetTable(
        rep, result.records, "batched_serving",
        "batched serving (" + std::string(graph::tierName(tier)) +
            " scale, " + std::to_string(requests) + " request(s)/graph)");

    // One engine serving the whole batch serially.
    rep.note("aggregate simulated engine time: " +
             fmtDouble(serialMs, 2) + " ms (" +
             fmtDouble(serialMs / static_cast<double>(schedule.size()), 2) +
             " ms/request)");
    rep.addRecord({.bench = "batched_serving",
                   .table = "batched_serving_totals",
                   .dims = {.engine = engineKey},
                   .metric = "aggregate_engine_ms",
                   .unit = "ms",
                   .hasValue = true,
                   .value = serialMs});

    report::emitReport(rep, format, args.get("out", ""));
    return 0;
}
