/**
 * @file
 * Batched multi-graph serving on one engine configuration.
 *
 * The serving scenario behind ROADMAP's "batched multi-graph
 * inference" item: a fleet of identical GROW engines answers a batch
 * of inference requests, several requests per graph (fresh feature
 * matrices stand in for fresh user inputs). The expensive per-graph
 * preprocessing -- synthesis, normalized adjacency, partitioning, HDN
 * lists -- is built exactly once per graph by the WorkloadCache and
 * shared, read-only, by every request in the batch; only the cheap
 * per-request feature data is constructed per job. With cachedir= the
 * artefacts persist, so a warmed-up server process skips graph
 * preprocessing entirely.
 *
 * Requests are independent, so the batch is dispatched through the
 * SweepDriver thread pool (one simulated engine instance per request,
 * results in deterministic batch order). Results go through the
 * structured results API: format=json gives serving consumers the
 * per-graph latency/traffic records programmatically.
 *
 * Usage: batched_serving [datasets=cora,citeseer,pubmed] [scale=unit]
 *                        [engine=grow] [requests=4] [threads=0]
 *                        [cachedir=] [format=table|json|csv] [out=path]
 */
#include <memory>

#include "driver/sweep_driver.hpp"
#include "driver/workload_cache.hpp"
#include "gcn/runner.hpp"
#include "gcn/workload.hpp"
#include "report/report.hpp"
#include "report/sinks.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"

using namespace grow;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    args.requireKnown({"datasets", "scale", "engine", "requests",
                       "threads", "cachedir", "format", "out"});
    auto specs = graph::datasetsByNames(
        args.getList("datasets", {"cora", "citeseer", "pubmed"}));
    auto tier = graph::tierFromString(args.get("scale", "unit"));
    const std::string engineKey = args.get("engine", "grow");
    const int64_t requests = args.getInt("requests", 4);
    if (requests < 1 || requests > 4096)
        fatal("requests must be between 1 and 4096, got " +
              std::to_string(requests));
    const int64_t threadsArg = args.getInt("threads", 0);
    if (threadsArg < 0 || threadsArg > 1024)
        fatal("threads must be between 0 (= all cores) and 1024, got " +
              std::to_string(threadsArg));
    const std::string format = args.get("format", "table");
    report::makeSink(format); // reject bad formats before simulating

    driver::WorkloadCache cache(args.get("cachedir", ""));
    driver::SweepDriver pool(static_cast<uint32_t>(threadsArg));

    // ---- Assemble the batch: requests x graphs, shared artefacts. ----
    std::vector<driver::SweepJob> jobs;
    std::vector<uint32_t> nodesPerSpec;
    for (const auto &spec : specs) {
        for (int64_t r = 0; r < requests; ++r) {
            gcn::WorkloadConfig wc;
            wc.tier = tier;
            // Each request carries its own synthetic input features;
            // the graph-level artefacts are shared through the cache.
            wc.seed = 7 + static_cast<uint64_t>(r);
            auto w = std::make_shared<const gcn::GcnWorkload>(
                cache.workload(spec, wc));
            if (r == 0)
                nodesPerSpec.push_back(w->nodes());
            auto job = driver::makeEngineJob(engineKey, std::move(w));
            job.label = spec.name + "/req" + std::to_string(r);
            jobs.push_back(std::move(job));
        }
    }

    report::Report rep;
    rep.meta().bench = "batched_serving";
    rep.meta().generator = "grow-example";
    rep.meta().revision = report::buildRevision();
    rep.meta().scale = graph::tierName(tier);

    auto cstats = cache.stats();
    rep.note("batch: " + std::to_string(jobs.size()) +
             " request(s) over " + std::to_string(specs.size()) +
             " graph(s) on '" + engineKey + "' (" +
             std::to_string(pool.numThreads()) + " engines)");
    rep.note("preprocessing: " + std::to_string(cstats.builds) +
             " build(s), " + std::to_string(cstats.memoryHits) +
             " in-memory reuse(s), " + std::to_string(cstats.diskLoads) +
             " disk load(s)" +
             (cache.diskDir().empty()
                  ? ""
                  : " [disk cache: " + cache.diskDir() + "]"));

    // Phase-level fan-out inside each request shares the sweep pool.
    for (auto &job : jobs)
        job.options.sim.threads = pool.numThreads();

    auto outcomes = pool.runAll(jobs);

    // ---- Per-graph serving report. -----------------------------------
    auto t = rep.table(
        "batched_serving",
        "batched serving (" + std::string(graph::tierName(tier)) +
            " scale, " + std::to_string(requests) + " request(s)/graph)");
    t.col("dataset", "graph")
        .col("nodes", "nodes", "count")
        .col("mean_cycles", "mean cycles", "cycles")
        .col("mean_dram_traffic", "mean DRAM traffic", "bytes")
        .col("hdn_hit_rate", "HDN hit rate")
        .col("mean_latency_ms", "mean latency @1GHz", "ms");
    size_t cursor = 0;
    Cycle engineCycles = 0;
    for (size_t s = 0; s < specs.size(); ++s) {
        const auto &spec = specs[s];
        double cycles = 0.0;
        double traffic = 0.0;
        double hits = 0.0, lookups = 0.0;
        for (int64_t r = 0; r < requests; ++r) {
            const auto &o = outcomes.at(cursor++);
            GROW_ASSERT(o.label.rfind(spec.name + "/", 0) == 0,
                        "batch outcome order mismatch at " + spec.name);
            cycles += static_cast<double>(o.inference.totalCycles);
            traffic += static_cast<double>(o.inference.totalTrafficBytes());
            hits += static_cast<double>(o.inference.cacheHits);
            lookups += static_cast<double>(o.inference.cacheHits +
                                           o.inference.cacheMisses);
            engineCycles += o.inference.totalCycles;
        }
        const double n = static_cast<double>(requests);
        t.row({.dataset = spec.name, .engine = engineKey})
            .add(report::textCell(spec.name))
            .add(report::count(nodesPerSpec.at(s)))
            .add(report::count(static_cast<uint64_t>(cycles / n),
                               "cycles"))
            .add(report::bytesValue(static_cast<Bytes>(traffic / n)))
            .add(lookups > 0 ? report::fraction(hits / lookups)
                             : report::textCell("-"))
            .add(report::custom(cycles / n / 1e6,
                                fmtDouble(cycles / n / 1e6, 2) + " ms",
                                "ms"));
    }

    // One engine serving the whole batch serially vs the fleet.
    const double serialMs = static_cast<double>(engineCycles) / 1e6;
    rep.note("aggregate simulated engine time: " +
             fmtDouble(serialMs, 2) + " ms (" +
             fmtDouble(serialMs / static_cast<double>(jobs.size()), 2) +
             " ms/request)");
    rep.addRecord({.bench = "batched_serving",
                   .table = "batched_serving_totals",
                   .dims = {.engine = engineKey},
                   .metric = "aggregate_engine_ms",
                   .unit = "ms",
                   .hasValue = true,
                   .value = serialMs});

    report::emitReport(rep, format, args.get("out", ""));
    return 0;
}
