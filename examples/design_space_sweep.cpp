/**
 * @file
 * Architectural design-space exploration with the GROW model: sweep the
 * HDN cache capacity, the runahead degree, the MAC array width and the
 * model depth for one dataset, and report the latency / area / energy
 * trade-off each point buys. This is the kind of study Table III's
 * chosen configuration came from.
 *
 * All sweep points are independent, so they are dispatched together
 * through the SweepDriver thread pool and only *reported* in order --
 * wall-clock shrinks by roughly the core count. Workloads of all
 * depths come from one WorkloadCache, so graph synthesis +
 * partitioning runs exactly once; pass cachedir= to persist the
 * artefacts and skip synthesis on the next invocation too.
 *
 * Results go through the structured results API (src/report/):
 * format=json emits the same sweep as schema-versioned MetricRecords
 * keyed by the SweepJob labels ("cap/512", "ra/8", ...).
 *
 * Two optional tiers ride on top of the classic sweep:
 *   est=1     re-scores every sweep point with the analytical cost
 *             model (src/costmodel/) and reports the estimate-vs-sim
 *             drift as percent records with unit "est", so CI can gate
 *             the estimator envelope via report_diff `tol.est=`.
 *   dse=1     runs the two-tier explorer (driver::DseDriver): the
 *             ~17k-point default grid is scored analytically in
 *             microseconds per point, pruned to its Pareto frontier
 *             over (cycles, SRAM), and the first pareto= survivors are
 *             simulated cycle-accurately for validation.
 *
 * With dse=1 a `chips=` list additionally sweeps multi-chip scale-out
 * points analytically: the shard plan's cut arcs price the per-layer
 * halo traffic through costmodel::estimateLinkTraffic under the
 * link_gbps=/link_ns= spec.
 *
 * Usage: design_space_sweep [datasets=pokec] [scale=tiny] [threads=0]
 *                           [epoch=0] [dse=0] [pareto=8] [est=0]
 *                           [chips=1] [link_gbps=64] [link_ns=500]
 *                           [cachedir=] [model=gcn|sage-mean|sage-pool|
 *                           gin|gat] [format=table|json|csv] [out=path]
 *                           (dataset= is a deprecated alias)
 */
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>

#include "core/grow.hpp"
#include "costmodel/cost_model.hpp"
#include "costmodel/link_model.hpp"
#include "driver/dse.hpp"
#include "driver/engine_factory.hpp"
#include "scaleout/halo.hpp"
#include "scaleout/shard.hpp"
#include "scaleout/topology.hpp"
#include "driver/sweep_driver.hpp"
#include "driver/workload_cache.hpp"
#include "energy/area_model.hpp"
#include "gcn/runner.hpp"
#include "gcn/workload.hpp"
#include "report/report.hpp"
#include "report/sinks.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"

using namespace grow;

namespace {

driver::SweepJob
growJob(const std::string &label, const core::GrowConfig &cfg,
        const gcn::GcnWorkload &w)
{
    driver::SweepJob job;
    job.label = label;
    job.makeEngine = [cfg] { return std::make_unique<core::GrowSim>(cfg); };
    job.workload = &w;
    job.options.usePartitioning = true;
    return job;
}

/** Fixed-point rendering for wall-clock notes. */
std::string
fmtFixed(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    // `dataset=` predates the bench-wide `datasets=` grammar; keep it
    // working as a deprecated alias.
    args.applyAliases({{"dataset", "datasets"}});
    args.requireKnown({"datasets", "scale", "threads", "cachedir", "model",
                       "format", "out", "epoch", "dse", "pareto", "est",
                       "chips", "link_gbps", "link_ns"});
    const auto names = args.getList("datasets", {"pokec"});
    if (names.size() != 1)
        fatal("design_space_sweep explores one dataset per run; got " +
              std::to_string(names.size()) + " in datasets=");
    const auto &spec = graph::datasetByName(names.front());
    auto tier = graph::tierFromString(args.get("scale", "tiny"));
    const int64_t threadsArg = args.getInt("threads", 0);
    if (threadsArg < 0 || threadsArg > 1024)
        fatal("threads must be between 0 (= all cores) and 1024, got " +
              std::to_string(threadsArg));
    const int64_t epochArg = args.getInt("epoch", 0);
    if (epochArg < 0)
        fatal("epoch must be >= 0 cycles, got " +
              std::to_string(epochArg));
    const int64_t dseArg = args.getInt("dse", 0);
    if (dseArg != 0 && dseArg != 1)
        fatal("dse must be 0 or 1, got " + std::to_string(dseArg));
    const int64_t paretoArg = args.getInt("pareto", 8);
    if (paretoArg < 0)
        fatal("pareto must be >= 0 survivors (0 = whole frontier), got " +
              std::to_string(paretoArg));
    const int64_t estArg = args.getInt("est", 0);
    if (estArg != 0 && estArg != 1)
        fatal("est must be 0 or 1, got " + std::to_string(estArg));
    const std::string format = args.get("format", "table");
    report::makeSink(format); // reject bad formats before simulating
    driver::SweepDriver pool(static_cast<uint32_t>(threadsArg));

    driver::WorkloadCache cache(args.get("cachedir", ""));
    gcn::WorkloadConfig wc;
    wc.tier = tier;
    wc.model = gcn::modelKindFromString(args.get("model", "gcn"));
    auto w = cache.workload(spec, wc);

    report::Report rep;
    rep.meta().bench = "design_space_sweep";
    rep.meta().generator = "grow-example";
    rep.meta().revision = report::buildRevision();
    rep.meta().scale = graph::tierName(tier);
    rep.meta().model = gcn::modelKindName(wc.model);
    rep.note("dataset " + spec.name + " @" + graph::tierName(tier) +
             " model=" + gcn::modelKindName(wc.model) + ": " +
             fmtCount(w.nodes()) + " nodes (" +
             std::to_string(pool.numThreads()) + " sweep threads)");

    // Deeper models share `w`'s graph artefacts through the cache and
    // only synthesise their own per-layer feature matrices.
    const uint32_t depths[] = {1, 2, 3, 4};
    std::vector<gcn::GcnWorkload> deepWorkloads;
    std::vector<const gcn::GcnWorkload *> workloadByDepth;
    deepWorkloads.reserve(std::size(depths));
    for (uint32_t depth : depths) {
        if (depth == wc.numLayers) {
            workloadByDepth.push_back(&w);
            continue;
        }
        gcn::WorkloadConfig dwc = wc;
        dwc.numLayers = depth;
        deepWorkloads.push_back(cache.workload(spec, dwc));
        workloadByDepth.push_back(&deepWorkloads.back());
    }
    auto cstats = cache.stats();
    rep.note("workload cache: " + std::to_string(cstats.builds) +
             " build(s), " + std::to_string(cstats.memoryHits) +
             " shared reuse(s), " + std::to_string(cstats.diskLoads) +
             " disk load(s)");

    // --- Assemble every sweep point, then run them all at once. -------
    std::vector<driver::SweepJob> jobs;
    // (config, workload) of each job, for the est=1 re-scoring pass.
    struct EstPoint
    {
        core::GrowConfig cfg;
        const gcn::GcnWorkload *workload;
    };
    std::vector<EstPoint> estPoints;
    auto addJob = [&](const std::string &label,
                      const core::GrowConfig &cfg,
                      const gcn::GcnWorkload &wl) {
        jobs.push_back(growJob(label, cfg, wl));
        estPoints.push_back({cfg, &wl});
    };

    const Bytes capacitiesKb[] = {64, 128, 256, 512, 1024};
    for (Bytes kb : capacitiesKb) {
        core::GrowConfig cfg;
        cfg.hdn.capacityBytes = kb * 1024;
        addJob("cap/" + std::to_string(kb), cfg, w);
    }

    const std::pair<uint32_t, uint32_t> runaheadPoints[] = {
        {1, 1}, {4, 4}, {8, 8}, {16, 16}, {32, 32}};
    for (auto [degree, ldn] : runaheadPoints) {
        core::GrowConfig cfg;
        cfg.runaheadDegree = degree;
        cfg.ldnEntries = ldn;
        cfg.lhsIdEntries = 4 * ldn;
        addJob("ra/" + std::to_string(degree), cfg, w);
    }

    const uint32_t macWidths[] = {8, 16, 32, 64};
    for (uint32_t macs : macWidths) {
        core::GrowConfig cfg;
        cfg.numMacs = macs;
        addJob("mac/" + std::to_string(macs), cfg, w);
    }

    for (size_t i = 0; i < std::size(depths); ++i) {
        addJob("depth/" + std::to_string(depths[i]), core::GrowConfig{},
               *workloadByDepth[i]);
    }

    // Within-inference parallelism rides the same shared pool as the
    // sweep (phase fan-out always; epoch-mode cluster rounds when
    // epoch= is set), so one `threads=` knob governs both levels.
    for (auto &job : jobs) {
        job.options.sim.threads = pool.numThreads();
        job.options.sim.epochCycles = static_cast<Cycle>(epochArg);
    }

    auto outcomes = pool.runAll(jobs);
    // Consume outcomes positionally, but verify the label so a reorder
    // of the assembly block above cannot silently shift results onto
    // the wrong table. The labels double as the record row keys.
    size_t cursor = 0;
    auto take = [&](const std::string &prefix)
        -> const driver::SweepOutcome & {
        GROW_ASSERT(cursor < outcomes.size() &&
                        outcomes[cursor].label.rfind(prefix, 0) == 0,
                    "sweep outcome order mismatch at " + prefix);
        return outcomes[cursor++];
    };
    const std::string engineName = "grow";

    // --- Sweep 1: HDN cache capacity. ---------------------------------
    auto c = rep.table("hdn_capacity",
                       "HDN cache capacity sweep (runahead 16)");
    c.col("capacity_kib", "capacity")
        .col("hit_rate", "hit rate")
        .col("cycles", "cycles", "cycles")
        .col("dram_traffic", "DRAM traffic", "bytes")
        .col("area_65nm", "area @65nm (mm^2)", "mm^2")
        .col("energy_uj", "energy (uJ)", "uJ");
    for (Bytes kb : capacitiesKb) {
        const auto &o = take("cap/");
        const auto &r = o.inference;
        energy::GrowAreaInputs area;
        area.hdnCacheBytes = kb * 1024;
        auto a = energy::estimateGrowArea(area,
                                          energy::ProcessNode::Nm65);
        c.row({.dataset = spec.name,
               .engine = engineName,
               .extra = {{"label", o.label},
                         {"capacity_kib", std::to_string(kb)}}})
            .add(report::textCell(std::to_string(kb) + " KiB"))
            .add(report::fraction(r.cacheHitRate()))
            .add(report::count(r.totalCycles, "cycles"))
            .add(report::bytesValue(r.totalTrafficBytes()))
            .add(report::real(a.total(), 2))
            .add(report::real(r.energy.total() / 1e6, 1, "uJ"));
    }

    // --- Sweep 2: runahead degree x LDN entries. -----------------------
    auto ra = rep.table("runahead",
                        "runahead degree x LDN table sweep (512 KiB "
                        "cache)");
    ra.col("runahead", "runahead")
        .col("ldn_entries", "LDN entries", "count")
        .col("cycles", "cycles", "cycles")
        .col("speedup_vs_1way", "vs (1,1) baseline");
    double base = 0;
    for (auto [degree, ldn] : runaheadPoints) {
        const auto &o = take("ra/");
        const auto &r = o.inference;
        double cycles = static_cast<double>(r.totalCycles);
        if (base == 0)
            base = cycles;
        ra.row({.dataset = spec.name,
                .engine = engineName,
                .extra = {{"label", o.label},
                          {"runahead", std::to_string(degree)}}})
            .add(report::textCell(std::to_string(degree)))
            .add(report::count(ldn))
            .add(report::count(r.totalCycles, "cycles"))
            .add(report::ratio(base / cycles));
    }

    // --- Sweep 3: MAC width (compute vs memory balance). --------------
    auto m = rep.table("mac_width", "MAC array width sweep");
    m.col("macs", "MACs")
        .col("cycles", "cycles", "cycles")
        .col("speedup_vs_16", "speedup vs 16")
        .col("area_65nm", "area @65nm", "mm^2");
    double ref = 0;
    std::vector<const driver::SweepOutcome *> macOutcomes;
    for (uint32_t macs : macWidths) {
        const auto &o = take("mac/");
        macOutcomes.push_back(&o);
        if (macs == 16)
            ref = static_cast<double>(o.inference.totalCycles);
    }
    for (size_t i = 0; i < std::size(macWidths); ++i) {
        const auto &o = *macOutcomes[i];
        const auto &r = o.inference;
        double cycles = static_cast<double>(r.totalCycles);
        energy::GrowAreaInputs area;
        area.numMacs = macWidths[i];
        auto a = energy::estimateGrowArea(area,
                                          energy::ProcessNode::Nm65);
        m.row({.dataset = spec.name,
               .engine = engineName,
               .extra = {{"label", o.label},
                         {"macs", std::to_string(macWidths[i])}}})
            .add(report::textCell(std::to_string(macWidths[i])))
            .add(report::count(r.totalCycles, "cycles"))
            .add(ref > 0 ? report::ratio(ref / cycles)
                         : report::textCell("-"))
            .add(report::real(a.total(), 2));
    }

    // --- Sweep 4: model depth (N-layer GCN). --------------------------
    auto d = rep.table("model_depth", "model depth sweep (Table I widths)");
    d.col("layers", "layers", "count")
        .col("phases", "phases", "count")
        .col("cycles", "cycles", "cycles")
        .col("dram_traffic", "DRAM traffic", "bytes")
        .col("energy_uj", "energy (uJ)", "uJ");
    for (uint32_t depth : depths) {
        const auto &o = take("depth/");
        const auto &r = o.inference;
        d.row({.dataset = spec.name,
               .engine = engineName,
               .depth = depth,
               .extra = {{"label", o.label}}})
            .add(report::count(depth))
            .add(report::count(r.phases.size()))
            .add(report::count(r.totalCycles, "cycles"))
            .add(report::bytesValue(r.totalTrafficBytes()))
            .add(report::real(r.energy.total() / 1e6, 1, "uJ"));
    }

    // --- est=1: analytical estimator drift on every sweep point. ------
    // Percent-error records carry unit "est" so CI gates the whole
    // family with one `tol.est=` override (the offline envelope lives
    // in tests/costmodel/estimator_envelope_test.cpp).
    if (estArg) {
        struct EstModel
        {
            gcn::PhasePlan plan;
            std::unique_ptr<costmodel::AnalyticalCostModel> model;
        };
        std::map<const gcn::GcnWorkload *, std::unique_ptr<EstModel>>
            models;
        auto modelFor = [&](const gcn::GcnWorkload *wl)
            -> costmodel::AnalyticalCostModel & {
            auto &slot = models[wl];
            if (!slot) {
                slot = std::make_unique<EstModel>();
                gcn::RunOptions opt;
                opt.usePartitioning = true;
                slot->plan = gcn::buildPhasePlan(*wl, opt);
                slot->model =
                    std::make_unique<costmodel::AnalyticalCostModel>(
                        slot->plan);
            }
            return *slot->model;
        };
        auto relPct = [](double est, double sim) {
            return sim == 0.0 ? 0.0 : 100.0 * std::abs(est - sim) / sim;
        };
        auto e = rep.table("estimator_error",
                           "analytical estimate vs cycle-accurate sim");
        e.col("point", "point")
            .col("est_cycles", "est cycles", "cycles")
            .col("cycle_err_pct", "cycle err %", "est")
            .col("traffic_err_pct", "traffic err %", "est");
        for (size_t i = 0; i < jobs.size(); ++i) {
            core::GrowSim probe(estPoints[i].cfg);
            auto est =
                modelFor(estPoints[i].workload).estimate(probe.mapping());
            const auto &r = outcomes[i].inference;
            e.row({.dataset = spec.name,
                   .engine = engineName,
                   .extra = {{"label", outcomes[i].label}}})
                .add(report::textCell(outcomes[i].label))
                .add(report::count(est.totalCycles, "cycles"))
                .add(report::real(
                    relPct(static_cast<double>(est.totalCycles),
                           static_cast<double>(r.totalCycles)),
                    2, "est"))
                .add(report::real(
                    relPct(static_cast<double>(est.trafficBytes),
                           static_cast<double>(r.totalTrafficBytes())),
                    2, "est"));
        }
    }

    // --- dse=1: two-tier design-space exploration. --------------------
    if (dseArg) {
        gcn::RunOptions dseBase;
        dseBase.sim.threads = pool.numThreads();
        dseBase.sim.epochCycles = static_cast<Cycle>(epochArg);
        driver::DseDriver dse(w, dseBase);
        const auto grid = driver::DseGrid::defaultGrid();
        auto analysis = dse.analyze(grid);
        rep.note("dse tier-1: " + fmtCount(analysis.points.size()) +
                 " grid points scored in " +
                 fmtFixed(analysis.scoreMillis, 1) + " ms (" +
                 fmtFixed(analysis.microsPerPoint(), 2) +
                 " us/point; one-time reuse profiling " +
                 fmtFixed(analysis.setupMillis, 1) + " ms); frontier " +
                 std::to_string(analysis.frontier.size()) + " point(s)");

        auto survivors = dse.simulateFrontier(
            analysis, static_cast<size_t>(paretoArg), pool);
        rep.note("dse tier-2: simulated " +
                 std::to_string(survivors.size()) + " of " +
                 std::to_string(analysis.frontier.size()) +
                 " frontier point(s) cycle-accurately");
        if (!survivors.empty())
            rep.note("dse wall-clock: whole analytical grid " +
                     fmtFixed(analysis.scoreMillis, 1) +
                     " ms vs one cycle-accurate point " +
                     fmtFixed(survivors[0].simulated.hostMillis, 1) +
                     " ms");

        auto f = rep.table("dse_frontier",
                           "Pareto frontier (est cycles vs SRAM), "
                           "cycle-accurate validation");
        f.col("config", "config")
            .col("sram", "SRAM", "bytes")
            .col("est_cycles", "est cycles", "cycles")
            .col("sim_cycles", "sim cycles", "cycles")
            .col("cycle_err_pct", "cycle err %", "est")
            .col("traffic_err_pct", "traffic err %", "est");
        for (const auto &s : survivors) {
            f.row({.dataset = spec.name,
                   .engine = engineName,
                   .extra = {{"label", s.estimate.label}}})
                .add(report::textCell(s.estimate.label))
                .add(report::bytesValue(s.estimate.sramBytes))
                .add(report::count(s.estimate.cycles, "cycles"))
                .add(report::count(s.simulated.totalCycles, "cycles"))
                .add(report::real(100.0 * s.cycleError, 2, "est"))
                .add(report::real(100.0 * s.trafficError, 2, "est"));
        }

        // --- chips=: analytical multi-chip scale-out points. ----------
        // Every chip count is priced without link co-simulation: the
        // shard plan's cut structure gives the exact halo bytes and
        // costmodel::estimateLinkTraffic the link-time roofline; chip
        // compute scales the analytical single-chip estimate.
        std::vector<uint32_t> chipCounts;
        for (const auto &c : args.getList("chips", {"1"})) {
            if (c.empty() ||
                c.find_first_not_of("0123456789") != std::string::npos)
                fatal("chips= takes positive chip counts, got '" + c + "'");
            chipCounts.push_back(
                static_cast<uint32_t>(std::stoull(c)));
        }
        const bool anySharded =
            std::any_of(chipCounts.begin(), chipCounts.end(),
                        [](uint32_t n) { return n > 1; });
        if (anySharded) {
            scaleout::LinkSpec link;
            link.bandwidthGBps = args.getDouble("link_gbps", 64.0);
            link.latencyNs = args.getDouble("link_ns", 500.0);

            gcn::RunOptions estOpt;
            estOpt.usePartitioning = true;
            const auto basePlan = gcn::buildPhasePlan(w, estOpt);
            costmodel::AnalyticalCostModel baseModel(basePlan);
            core::GrowSim probe(driver::growDefaultConfig());
            const auto baseEst = baseModel.estimate(probe.mapping());

            auto sc = rep.table("scaleout_est",
                                "Analytical multi-chip scale-out");
            sc.col("chips", "chips")
                .col("cut_arcs", "cut arcs", "arcs")
                .col("halo_bytes", "halo bytes", "link-bytes")
                .col("est_halo_cycles", "est halo cycles", "cycles")
                .col("est_cycles", "est cycles", "cycles");
            for (uint32_t chips : chipCounts) {
                const auto &adj = w.adjacencyPartitioned();
                const auto &clustering = w.relabel().clustering;
                const auto shard =
                    scaleout::buildShardPlan(adj, clustering, chips);
                const auto haloPlan = scaleout::buildHaloPlan(adj, shard);
                gcn::RunOptions shardOpt;
                shardOpt.usePartitioning = true;
                shardOpt.chips = chips;
                const auto plan = gcn::buildPhasePlan(w, shardOpt);
                const auto linkEst = costmodel::estimateLinkTraffic(
                    plan, shard, haloPlan, link);
                // First-order strong scaling: per-chip compute is the
                // single-chip estimate over the chip count (balanced
                // shards), plus the serialised halo steps.
                const Cycle estCycles =
                    baseEst.totalCycles / chips + linkEst.haloCycles;
                sc.row({.dataset = spec.name,
                        .engine = engineName,
                        .extra = {{"label",
                                   "chips/" + std::to_string(chips)}}})
                    .add(report::count(chips))
                    .add(report::count(shard.cutArcs, "arcs"))
                    .add(report::count(linkEst.totalBytes, "link-bytes"))
                    .add(report::count(linkEst.haloCycles, "cycles"))
                    .add(report::count(estCycles, "cycles"));
            }
        }
    }

    report::emitReport(rep, format, args.get("out", ""));
    return 0;
}
