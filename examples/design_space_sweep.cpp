/**
 * @file
 * Architectural design-space exploration with the GROW model: sweep the
 * HDN cache capacity, the runahead degree, the MAC array width and the
 * model depth for one dataset, and report the latency / area / energy
 * trade-off each point buys. This is the kind of study Table III's
 * chosen configuration came from.
 *
 * All sweep points are independent, so they are dispatched together
 * through the SweepDriver thread pool and only *printed* in order --
 * wall-clock shrinks by roughly the core count. Workloads of all
 * depths come from one WorkloadCache, so graph synthesis +
 * partitioning runs exactly once; pass cachedir= to persist the
 * artefacts and skip synthesis on the next invocation too.
 *
 * Usage: design_space_sweep [dataset=pokec] [scale=tiny] [threads=0]
 *                           [cachedir=] [model=gcn|sage-mean|sage-pool|
 *                           gin|gat]
 */
#include <iostream>

#include "core/grow.hpp"
#include "driver/sweep_driver.hpp"
#include "driver/workload_cache.hpp"
#include "energy/area_model.hpp"
#include "gcn/runner.hpp"
#include "gcn/workload.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

using namespace grow;

namespace {

driver::SweepJob
growJob(const std::string &label, const core::GrowConfig &cfg,
        const gcn::GcnWorkload &w)
{
    driver::SweepJob job;
    job.label = label;
    job.makeEngine = [cfg] { return std::make_unique<core::GrowSim>(cfg); };
    job.workload = &w;
    job.options.usePartitioning = true;
    return job;
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const auto &spec = graph::datasetByName(args.get("dataset", "pokec"));
    auto tier = graph::tierFromString(args.get("scale", "tiny"));
    const int64_t threadsArg = args.getInt("threads", 0);
    if (threadsArg < 0 || threadsArg > 1024)
        fatal("threads must be between 0 (= all cores) and 1024, got " +
              std::to_string(threadsArg));
    driver::SweepDriver pool(static_cast<uint32_t>(threadsArg));

    driver::WorkloadCache cache(args.get("cachedir", ""));
    gcn::WorkloadConfig wc;
    wc.tier = tier;
    wc.model = gcn::modelKindFromString(args.get("model", "gcn"));
    auto w = cache.workload(spec, wc);
    std::cout << "dataset " << spec.name << " @" << graph::tierName(tier)
              << " model=" << gcn::modelKindName(wc.model) << ": "
              << fmtCount(w.nodes()) << " nodes (" << pool.numThreads()
              << " sweep threads)\n";

    // Deeper models share `w`'s graph artefacts through the cache and
    // only synthesise their own per-layer feature matrices.
    const uint32_t depths[] = {1, 2, 3, 4};
    std::vector<gcn::GcnWorkload> deepWorkloads;
    std::vector<const gcn::GcnWorkload *> workloadByDepth;
    deepWorkloads.reserve(std::size(depths));
    for (uint32_t depth : depths) {
        if (depth == wc.numLayers) {
            workloadByDepth.push_back(&w);
            continue;
        }
        gcn::WorkloadConfig dwc = wc;
        dwc.numLayers = depth;
        deepWorkloads.push_back(cache.workload(spec, dwc));
        workloadByDepth.push_back(&deepWorkloads.back());
    }
    auto cstats = cache.stats();
    std::cout << "workload cache: " << cstats.builds << " build(s), "
              << cstats.memoryHits << " shared reuse(s), "
              << cstats.diskLoads << " disk load(s)\n";

    // --- Assemble every sweep point, then run them all at once. -------
    std::vector<driver::SweepJob> jobs;

    const Bytes capacitiesKb[] = {64, 128, 256, 512, 1024};
    for (Bytes kb : capacitiesKb) {
        core::GrowConfig cfg;
        cfg.hdn.capacityBytes = kb * 1024;
        jobs.push_back(growJob("cap/" + std::to_string(kb), cfg, w));
    }

    const std::pair<uint32_t, uint32_t> runaheadPoints[] = {
        {1, 1}, {4, 4}, {8, 8}, {16, 16}, {32, 32}};
    for (auto [degree, ldn] : runaheadPoints) {
        core::GrowConfig cfg;
        cfg.runaheadDegree = degree;
        cfg.ldnEntries = ldn;
        cfg.lhsIdEntries = 4 * ldn;
        jobs.push_back(growJob("ra/" + std::to_string(degree), cfg, w));
    }

    const uint32_t macWidths[] = {8, 16, 32, 64};
    for (uint32_t macs : macWidths) {
        core::GrowConfig cfg;
        cfg.numMacs = macs;
        jobs.push_back(growJob("mac/" + std::to_string(macs), cfg, w));
    }

    for (size_t i = 0; i < std::size(depths); ++i) {
        jobs.push_back(growJob("depth/" + std::to_string(depths[i]),
                               core::GrowConfig{}, *workloadByDepth[i]));
    }

    auto outcomes = pool.runAll(jobs);
    // Consume outcomes positionally, but verify the label so a reorder
    // of the assembly block above cannot silently shift results onto
    // the wrong table.
    size_t cursor = 0;
    auto take = [&](const std::string &prefix)
        -> const gcn::InferenceResult & {
        GROW_ASSERT(cursor < outcomes.size() &&
                        outcomes[cursor].label.rfind(prefix, 0) == 0,
                    "sweep outcome order mismatch at " + prefix);
        return outcomes[cursor++].inference;
    };

    // --- Sweep 1: HDN cache capacity. ---------------------------------
    TextTable c("HDN cache capacity sweep (runahead 16)");
    c.setHeader({"capacity", "hit rate", "cycles", "DRAM traffic",
                 "area @65nm (mm^2)", "energy (uJ)"});
    for (Bytes kb : capacitiesKb) {
        const auto &r = take("cap/");
        energy::GrowAreaInputs area;
        area.hdnCacheBytes = kb * 1024;
        auto a = energy::estimateGrowArea(area,
                                          energy::ProcessNode::Nm65);
        c.addRow({std::to_string(kb) + " KiB",
                  fmtPercent(r.cacheHitRate()), fmtCount(r.totalCycles),
                  fmtBytes(r.totalTrafficBytes()),
                  fmtDouble(a.total(), 2),
                  fmtDouble(r.energy.total() / 1e6, 1)});
    }
    c.print();

    // --- Sweep 2: runahead degree x LDN entries. -----------------------
    TextTable ra("runahead degree x LDN table sweep (512 KiB cache)");
    ra.setHeader({"runahead", "LDN entries", "cycles",
                  "vs (1,1) baseline"});
    double base = 0;
    for (auto [degree, ldn] : runaheadPoints) {
        const auto &r = take("ra/");
        double cycles = static_cast<double>(r.totalCycles);
        if (base == 0)
            base = cycles;
        ra.addRow({std::to_string(degree), std::to_string(ldn),
                   fmtCount(r.totalCycles), fmtRatio(base / cycles)});
    }
    ra.print();

    // --- Sweep 3: MAC width (compute vs memory balance). --------------
    TextTable m("MAC array width sweep");
    m.setHeader({"MACs", "cycles", "speedup vs 16", "area @65nm"});
    double ref = 0;
    std::vector<const gcn::InferenceResult *> macResults;
    for (uint32_t macs : macWidths) {
        const auto &r = take("mac/");
        macResults.push_back(&r);
        if (macs == 16)
            ref = static_cast<double>(r.totalCycles);
    }
    for (size_t i = 0; i < std::size(macWidths); ++i) {
        const auto &r = *macResults[i];
        double cycles = static_cast<double>(r.totalCycles);
        energy::GrowAreaInputs area;
        area.numMacs = macWidths[i];
        auto a = energy::estimateGrowArea(area,
                                          energy::ProcessNode::Nm65);
        m.addRow({std::to_string(macWidths[i]), fmtCount(r.totalCycles),
                  ref > 0 ? fmtRatio(ref / cycles) : "-",
                  fmtDouble(a.total(), 2)});
    }
    m.print();

    // --- Sweep 4: model depth (N-layer GCN). --------------------------
    TextTable d("model depth sweep (Table I widths)");
    d.setHeader({"layers", "phases", "cycles", "DRAM traffic",
                 "energy (uJ)"});
    for (uint32_t depth : depths) {
        const auto &r = take("depth/");
        d.addRow({std::to_string(depth),
                  std::to_string(r.phases.size()), fmtCount(r.totalCycles),
                  fmtBytes(r.totalTrafficBytes()),
                  fmtDouble(r.energy.total() / 1e6, 1)});
    }
    d.print();
    return 0;
}
