/**
 * @file
 * Architectural design-space exploration with the GROW model: sweep the
 * HDN cache capacity and the runahead degree for one dataset, and
 * report the latency / area / energy trade-off each point buys. This is
 * the kind of study Table III's chosen configuration came from.
 *
 * Usage: design_space_sweep [dataset=pokec] [scale=tiny]
 */
#include <iostream>

#include "core/grow.hpp"
#include "energy/area_model.hpp"
#include "gcn/runner.hpp"
#include "gcn/workload.hpp"
#include "util/cli.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

using namespace grow;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const auto &spec = graph::datasetByName(args.get("dataset", "pokec"));
    auto tier = graph::tierFromString(args.get("scale", "tiny"));

    gcn::WorkloadConfig wc;
    wc.tier = tier;
    auto w = gcn::buildWorkload(spec, wc);
    std::cout << "dataset " << spec.name << " @" << graph::tierName(tier)
              << ": " << fmtCount(w.nodes()) << " nodes\n";

    gcn::RunnerOptions opt;
    opt.usePartitioning = true;

    // --- Sweep 1: HDN cache capacity. ---------------------------------
    TextTable c("HDN cache capacity sweep (runahead 16)");
    c.setHeader({"capacity", "hit rate", "cycles", "DRAM traffic",
                 "area @65nm (mm^2)", "energy (uJ)"});
    for (Bytes kb : {64u, 128u, 256u, 512u, 1024u}) {
        core::GrowConfig cfg;
        cfg.hdn.capacityBytes = kb * 1024;
        core::GrowSim sim(cfg);
        auto r = gcn::runInference(sim, w, opt);
        energy::GrowAreaInputs area;
        area.hdnCacheBytes = kb * 1024;
        auto a = energy::estimateGrowArea(area,
                                          energy::ProcessNode::Nm65);
        c.addRow({std::to_string(kb) + " KiB",
                  fmtPercent(r.cacheHitRate()), fmtCount(r.totalCycles),
                  fmtBytes(r.totalTrafficBytes()),
                  fmtDouble(a.total(), 2),
                  fmtDouble(r.energy.total() / 1e6, 1)});
    }
    c.print();

    // --- Sweep 2: runahead degree x LDN entries. -----------------------
    TextTable ra("runahead degree x LDN table sweep (512 KiB cache)");
    ra.setHeader({"runahead", "LDN entries", "cycles",
                  "vs (1,1) baseline"});
    double base = 0;
    const std::pair<uint32_t, uint32_t> points[] = {
        {1, 1}, {4, 4}, {8, 8}, {16, 16}, {32, 32}};
    for (auto [degree, ldn] : points) {
        core::GrowConfig cfg;
        cfg.runaheadDegree = degree;
        cfg.ldnEntries = ldn;
        cfg.lhsIdEntries = 4 * ldn;
        core::GrowSim sim(cfg);
        auto r = gcn::runInference(sim, w, opt);
        double cycles = static_cast<double>(r.totalCycles);
        if (base == 0)
            base = cycles;
        ra.addRow({std::to_string(degree), std::to_string(ldn),
                   fmtCount(r.totalCycles), fmtRatio(base / cycles)});
    }
    ra.print();

    // --- Sweep 3: MAC width (compute vs memory balance). --------------
    TextTable m("MAC array width sweep");
    m.setHeader({"MACs", "cycles", "speedup vs 16", "area @65nm"});
    double ref = 0;
    for (uint32_t macs : {8u, 16u, 32u, 64u}) {
        core::GrowConfig cfg;
        cfg.numMacs = macs;
        core::GrowSim sim(cfg);
        auto r = gcn::runInference(sim, w, opt);
        double cycles = static_cast<double>(r.totalCycles);
        if (macs == 16)
            ref = cycles;
        energy::GrowAreaInputs area;
        area.numMacs = macs;
        auto a = energy::estimateGrowArea(area,
                                          energy::ProcessNode::Nm65);
        m.addRow({std::to_string(macs), fmtCount(r.totalCycles),
                  ref > 0 ? fmtRatio(ref / cycles) : "-",
                  fmtDouble(a.total(), 2)});
    }
    m.print();
    return 0;
}
