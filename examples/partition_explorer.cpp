/**
 * @file
 * Preprocessing explorer: how much does each preprocessing strategy
 * contribute to GROW's locality?
 *
 * Compares four adjacency layouts on one dataset:
 *   original      no preprocessing (GROW w/o G.P: global HDN list)
 *   degree-sort   vertex reordering by degree (Zhang & Li, Sec. III)
 *   random        random balanced clusters (sanity floor)
 *   multilevel    the METIS-like partitioner GROW uses (Sec. V-C)
 *
 * Usage: partition_explorer [dataset=yelp] [scale=mini]
 */
#include <iostream>

#include "core/grow.hpp"
#include "gcn/workload.hpp"
#include "graph/normalize.hpp"
#include "partition/degree_reorder.hpp"
#include "partition/hdn_select.hpp"
#include "partition/metrics.hpp"
#include "partition/multilevel.hpp"
#include "util/cli.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

using namespace grow;

namespace {

struct Layout
{
    std::string name;
    sparse::CsrMatrix adjacency;
    partition::RelabelResult relabel;
    std::vector<std::vector<NodeId>> hdnLists;
    double intraFraction = 0.0;
};

Layout
makeLayout(const std::string &name, const graph::Graph &g,
           const sparse::CsrMatrix &A,
           const partition::PartitionResult *parts)
{
    Layout l;
    l.name = name;
    if (parts == nullptr) {
        l.relabel = partition::identityRelabel(g.numNodes());
        l.adjacency = A;
        l.intraFraction = 1.0;
    } else {
        l.relabel = partition::relabelByPartition(g.numNodes(), *parts);
        l.adjacency = A.permutedSymmetric(l.relabel.newToOld);
        l.intraFraction =
            partition::evaluatePartition(g, *parts).intraArcFraction;
    }
    auto rg = g.relabeled(l.relabel.newToOld);
    l.hdnLists = partition::selectHdnPerCluster(
        rg, l.relabel.clustering, 4096);
    return l;
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    args.requireKnown({"dataset", "scale"});
    const auto &spec = graph::datasetByName(args.get("dataset", "yelp"));
    auto tier = graph::tierFromString(args.get("scale", "mini"));

    gcn::WorkloadConfig wc;
    wc.tier = tier;
    wc.buildPartitioning = false;
    auto w = gcn::buildWorkload(spec, wc);
    const auto &g = w.graph();
    const auto &A = w.adjacency();
    const uint32_t hidden = w.shape().hidden;
    std::cout << "dataset " << spec.name << ": " << fmtCount(g.numNodes())
              << " nodes, " << fmtCount(g.numArcs()) << " arcs\n";

    const uint32_t k = std::max(
        2u, g.numNodes() /
                std::max(64u, static_cast<uint32_t>(
                                  (512u * 1024u) / (hidden * 8u))));

    std::vector<Layout> layouts;
    layouts.push_back(makeLayout("original (global HDN)", g, A, nullptr));
    {
        // Degree-sorted reorder, then contiguous equal clusters.
        auto reorder = partition::degreeSortRelabel(g);
        auto rg = g.relabeled(reorder.newToOld);
        auto contiguous =
            partition::contiguousPartition(g.numNodes(), k);
        Layout l = makeLayout("degree-sort + ranges", rg,
                              A.permutedSymmetric(reorder.newToOld),
                              &contiguous);
        layouts.push_back(std::move(l));
    }
    {
        auto random = partition::randomPartition(g.numNodes(), k, 7);
        layouts.push_back(makeLayout("random clusters", g, A, &random));
    }
    {
        partition::PartitionConfig pc;
        pc.numParts = k;
        auto parts = partition::MultilevelPartitioner(pc).partition(g);
        layouts.push_back(
            makeLayout("multilevel (GROW)", g, A, &parts));
    }

    TextTable t("HDN locality by preprocessing strategy (" + spec.name +
                ", " + std::to_string(k) + " clusters)");
    t.setHeader({"layout", "intra-cluster arcs", "HDN hit rate",
                 "aggregation cycles", "DRAM traffic"});
    for (auto &l : layouts) {
        accel::SpDeGemmProblem p;
        p.lhs = &l.adjacency;
        p.rhsCols = hidden;
        if (l.relabel.clustering.numClusters() > 1) {
            p.clustering = &l.relabel.clustering;
            p.hdnLists = &l.hdnLists;
        }
        core::GrowSim sim((core::GrowConfig()));
        auto r = sim.run(p, accel::SimOptions{});
        double hitRate =
            static_cast<double>(r.cacheHits) /
            static_cast<double>(r.cacheHits + r.cacheMisses);
        t.addRow({l.name,
                  l.relabel.clustering.numClusters() > 1
                      ? fmtPercent(l.intraFraction)
                      : "-",
                  fmtPercent(hitRate), fmtCount(r.cycles),
                  fmtBytes(r.totalTrafficBytes())});
    }
    t.print();
    return 0;
}
