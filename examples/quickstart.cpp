/**
 * @file
 * Quickstart: build a dataset, preprocess it the GROW way, run N-layer
 * GCN inference on GROW and GCNAX, and print the headline comparison.
 *
 * Usage: quickstart [dataset=cora] [scale=mini] [functional=1]
 *                   [layers=2]
 */
#include <iostream>

#include "gcn/runner.hpp"
#include "gcn/workload.hpp"
#include "accel/gcnax.hpp"
#include "core/grow.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

using namespace grow;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    args.requireKnown({"dataset", "scale", "functional", "layers"});
    const auto &spec = graph::datasetByName(args.get("dataset", "cora"));
    auto tier = graph::tierFromString(args.get("scale", "mini"));
    const bool functional = args.getBool("functional", true);
    const int64_t layersArg = args.getInt("layers", 2);
    if (layersArg < 1 || layersArg > 64)
        fatal("layers must be between 1 and 64, got " +
              std::to_string(layersArg));
    const uint32_t layers = static_cast<uint32_t>(layersArg);

    // 1. Build the workload: synthetic graph matched to Table I,
    //    normalized adjacency, METIS-like partitioning, HDN lists.
    gcn::WorkloadConfig wc;
    wc.tier = tier;
    wc.numLayers = layers;
    wc.functionalData = functional;
    auto workload = gcn::buildWorkload(spec, wc);
    std::cout << "dataset " << spec.name << " @" << graph::tierName(tier)
              << ": " << fmtCount(workload.nodes()) << " nodes, "
              << fmtCount(workload.graphView().numArcs()) << " arcs, "
              << workload.relabel().clustering.numClusters()
              << " clusters\n";

    // 2. Run GROW (with its graph-partitioning preprocessing).
    gcn::RunOptions opt;
    opt.sim.functional = functional;
    opt.usePartitioning = true;
    core::GrowSim grow((core::GrowConfig()));
    auto growRes = gcn::runInference(grow, workload, opt);

    // 3. Run the GCNAX baseline (no preprocessing, Table II).
    gcn::RunOptions optBase = opt;
    optBase.usePartitioning = false;
    accel::GcnaxSim gcnax((accel::GcnaxConfig()));
    auto gcnaxRes = gcn::runInference(gcnax, workload, optBase);

    // 4. Report.
    TextTable t("GROW vs GCNAX -- " + std::to_string(layers) +
                "-layer GCN inference (" + std::string(spec.name) + ")");
    t.setHeader({"engine", "cycles", "DRAM traffic", "energy (uJ)",
                 "HDN hit rate"});
    for (const auto *r : {&growRes, &gcnaxRes}) {
        t.addRow({r->engine, fmtCount(r->totalCycles),
                  fmtBytes(r->totalTrafficBytes()),
                  fmtDouble(r->energy.total() / 1e6, 1),
                  r->engine == "grow" ? fmtPercent(r->cacheHitRate())
                                      : "-"});
    }
    t.print();

    double speedup = static_cast<double>(gcnaxRes.totalCycles) /
                     static_cast<double>(growRes.totalCycles);
    double trafficRatio =
        static_cast<double>(gcnaxRes.totalTrafficBytes()) /
        static_cast<double>(growRes.totalTrafficBytes());
    std::cout << "speedup " << fmtRatio(speedup) << ", traffic reduction "
              << fmtRatio(trafficRatio) << "\n";
    if (functional)
        std::cout << "functional outputs verified against reference "
                     "SpMM.\n";
    return 0;
}
