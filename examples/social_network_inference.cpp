/**
 * @file
 * Domain scenario: GCN inference over a synthetic social network.
 *
 * This example exercises the public API end to end *without* the
 * built-in dataset registry: it models a social platform with strongly
 * clustered friend circles and a heavy-tailed follower distribution
 * (the workload class the paper's introduction motivates), runs the
 * full GROW preprocessing pipeline by hand, and reports per-phase
 * latency, traffic and Fig. 22-style energy.
 *
 * Usage: social_network_inference [users=60000] [avgdeg=24]
 *        [circles=80] [hidden=64] [classes=32] [pes=4]
 */
#include <iostream>

#include "accel/gcnax.hpp"
#include "core/grow.hpp"
#include "energy/energy_model.hpp"
#include "graph/generators.hpp"
#include "graph/normalize.hpp"
#include "partition/hdn_select.hpp"
#include "partition/metrics.hpp"
#include "partition/multilevel.hpp"
#include "sparse/convert.hpp"
#include "util/cli.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

using namespace grow;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    args.requireKnown({"users", "avgdeg", "circles", "features", "hidden",
                       "classes", "pes"});
    const uint32_t users = static_cast<uint32_t>(args.getInt("users", 60000));
    const double avgdeg = args.getDouble("avgdeg", 24.0);
    const uint32_t circles = static_cast<uint32_t>(args.getInt("circles", 80));
    const uint32_t features = static_cast<uint32_t>(args.getInt("features", 128));
    const uint32_t hidden = static_cast<uint32_t>(args.getInt("hidden", 64));
    const uint32_t classes = static_cast<uint32_t>(args.getInt("classes", 32));
    const uint32_t pes = static_cast<uint32_t>(args.getInt("pes", 4));

    // --- 1. The social graph: clustered, heavy-tailed. ---------------
    graph::DcSbmParams gp;
    gp.nodes = users;
    gp.avgDegree = avgdeg;
    gp.communities = circles;
    gp.intraFraction = 0.85; // friend circles are tight
    gp.powerLawAlpha = 2.1;  // influencers exist
    gp.seed = 2026;
    auto g = graph::generateDcSbm(gp);
    std::cout << "social graph: " << fmtCount(g.numNodes()) << " users, "
              << fmtCount(g.numEdges()) << " friendships (avg degree "
              << fmtDouble(g.avgDegree(), 1) << ")\n";

    // --- 2. GROW's offline preprocessing (Sec. V-C). ------------------
    partition::PartitionConfig pc;
    pc.numParts = std::max(2u, users / 1024);
    auto parts = partition::MultilevelPartitioner(pc).partition(g);
    auto quality = partition::evaluatePartition(g, parts);
    auto relabel = partition::relabelByPartition(users, parts);
    auto rg = g.relabeled(relabel.newToOld);
    auto hdnLists = partition::selectHdnPerCluster(
        rg, relabel.clustering, 4096);
    std::cout << "partitioned into "
              << relabel.clustering.numClusters() << " clusters ("
              << fmtPercent(quality.intraArcFraction)
              << " of edges intra-cluster, balance "
              << fmtDouble(quality.balance, 2) << ")\n";

    auto A = graph::normalizedAdjacency(rg, true);
    Rng rng(99);
    auto X = sparse::randomCsr(users, features, 0.35, rng);

    // --- 3. Inference phases on GROW vs GCNAX. ------------------------
    core::GrowConfig growCfg;
    growCfg.numPes = pes;
    core::GrowSim grow(growCfg);
    accel::GcnaxSim gcnax((accel::GcnaxConfig()));
    energy::EnergyParams energyParams;

    struct Row
    {
        std::string name;
        accel::PhaseResult r;
    };
    std::vector<Row> rows;

    auto runPhase = [&](accel::AcceleratorSim &engine,
                        const sparse::CsrMatrix &lhs, uint32_t n,
                        bool onChip, bool preprocessed,
                        const std::string &label) {
        accel::SpDeGemmProblem p;
        p.lhs = &lhs;
        p.rhsCols = n;
        p.rhsOnChip = onChip;
        p.phase = onChip ? accel::Phase::Combination
                         : accel::Phase::Aggregation;
        if (preprocessed && !onChip) {
            p.clustering = &relabel.clustering;
            p.hdnLists = &hdnLists;
        }
        rows.push_back({label, engine.run(p, accel::SimOptions{})});
    };

    runPhase(grow, X, hidden, true, true, "grow: X*W (combination)");
    runPhase(grow, A, hidden, false, true, "grow: A*(XW) (aggregation)");
    runPhase(gcnax, X, hidden, true, false, "gcnax: X*W (combination)");
    runPhase(gcnax, A, hidden, false, false,
             "gcnax: A*(XW) (aggregation)");
    (void)classes;

    TextTable t("layer-1 phases, " + std::to_string(pes) + " PE GROW");
    t.setHeader({"phase", "cycles", "DRAM traffic", "energy (uJ)",
                 "hit rate", "sparse BW util"});
    for (const auto &row : rows) {
        auto e = energy::computeEnergy(energyParams, row.r.activity);
        uint64_t lookups = row.r.cacheHits + row.r.cacheMisses;
        t.addRow({row.name, fmtCount(row.r.cycles),
                  fmtBytes(row.r.totalTrafficBytes()),
                  fmtDouble(e.total() / 1e6, 1),
                  lookups ? fmtPercent(double(row.r.cacheHits) / lookups)
                          : "-",
                  fmtPercent(row.r.sparseBandwidthUtil())});
    }
    t.print();

    double speedup =
        static_cast<double>(rows[3].r.cycles) /
        static_cast<double>(rows[1].r.cycles);
    std::cout << "aggregation speedup vs GCNAX: " << fmtRatio(speedup)
              << "\n";
    return 0;
}
