#include "accel/accelerator.hpp"

namespace grow::accel {

const char *
phaseName(Phase phase)
{
    switch (phase) {
      case Phase::Combination: return "combination";
      case Phase::Aggregation: return "aggregation";
    }
    return "?";
}

double
PhaseResult::sparseBandwidthUtil() const
{
    if (fetchedSparseBytes == 0)
        return 1.0;
    return static_cast<double>(effectualSparseBytes) /
           static_cast<double>(fetchedSparseBytes);
}

} // namespace grow::accel
