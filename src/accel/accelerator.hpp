/**
 * @file
 * Common interface of all cycle-level SpDeGEMM accelerator models.
 *
 * A GCN layer is executed as two consecutive sparse-dense GEMMs
 * (Sec. II-B): combination X*W followed by aggregation A*(XW). Each
 * engine consumes one SpDeGemmProblem per phase and returns a
 * PhaseResult carrying cycles, classified DRAM traffic, cache and
 * bandwidth-utility statistics, activity counts for the energy model,
 * and (optionally) the functional output matrix for verification.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "energy/energy_model.hpp"
#include "mapping/mapping.hpp"
#include "mem/dram.hpp"
#include "partition/hdn_select.hpp"
#include "partition/relabel.hpp"
#include "sim/types.hpp"
#include "sparse/csr_matrix.hpp"
#include "sparse/dense_matrix.hpp"

namespace grow::accel {

/** Which GCN phase a SpDeGEMM belongs to. */
enum class Phase { Combination, Aggregation };

/** Phase name for reporting. */
const char *phaseName(Phase phase);

/** Global simulation options shared by all engines. */
struct SimOptions
{
    /** Compute the functional output (verified against the reference). */
    bool functional = false;
    /** DRAM model flavour: "simple" or "banked". */
    std::string dramKind = "simple";
    /**
     * Worker-pool parallelism available to one inference: phase-level
     * fan-out in gcn::executePlan and lane-level co-simulation rounds
     * in GROW's epoch mode both draw at most this many workers from
     * the shared util::WorkPool. Results are bit-identical for every
     * value (see DESIGN.md "Parallel co-simulation").
     */
    uint32_t threads = 1;
    /**
     * Epoch window (in cycles) of the deterministic cluster-parallel
     * co-simulation inside GrowSim. 0 (default) keeps the exact
     * serial engine interleaving -- byte-identical to the historical
     * tables; > 0 resolves cross-lane DRAM contention at epoch
     * boundaries (accel::EpochDramArbiter), which changes cycle
     * results slightly but deterministically: for a fixed window the
     * outcome is bit-identical regardless of `threads`.
     */
    Cycle epochCycles = 0;
    /**
     * Auto-tune the epoch window from observed channel utilisation
     * (CLI `epoch=auto`): after each committed round the canonical
     * channel's busy-cycle delta is compared against the window span;
     * a mostly-idle channel doubles the next window (fewer barriers),
     * a saturated one halves it (cross-lane contention resolved at
     * finer grain). The adaptation reads only simulated state, so for
     * a fixed seed window the outcome stays bit-identical for every
     * thread count (but differs from any fixed-window run).
     * epochCycles > 0 seeds the first window; 0 seeds at 4096 cycles.
     */
    bool epochAuto = false;
};

/**
 * One sparse-dense GEMM: C[M x N] = S[M x K] * D[K x N].
 */
struct SpDeGemmProblem
{
    /** Sparse LHS (A for aggregation, X for combination). */
    const sparse::CsrMatrix *lhs = nullptr;
    /** Dense RHS column count N. */
    uint32_t rhsCols = 0;
    /** Dense RHS values (required only when options.functional). */
    const sparse::DenseMatrix *rhs = nullptr;
    Phase phase = Phase::Aggregation;
    /**
     * Model-level provenance of this problem (e.g. "gat/attention-
     * score/layer1", set by the phase-plan lowering). Engines copy it
     * into PhaseResult verbatim and never interpret it.
     */
    std::string label;
    /**
     * Whether the RHS fits on-chip for the whole phase (true for the
     * weight matrix W during combination, Sec. V-B).
     */
    bool rhsOnChip = false;

    /**
     * GROW-specific preprocessing artefacts (ignored by the baselines):
     * cluster layout of the (relabeled) LHS rows and the per-cluster
     * HDN ID lists. Null means "single cluster / global HDN list".
     */
    const partition::Clustering *clustering = nullptr;
    const std::vector<std::vector<NodeId>> *hdnLists = nullptr;
};

/** Outcome of simulating one SpDeGEMM phase. */
struct PhaseResult
{
    std::string engine;
    Phase phase = Phase::Aggregation;
    /** Problem provenance, echoed from SpDeGemmProblem::label. */
    std::string label;

    Cycle cycles = 0;
    uint64_t macOps = 0;

    /** Classified line-granular DRAM transfers. */
    mem::DramTraffic traffic;

    /** Fig. 6 accounting for the sparse LHS fetch. */
    Bytes effectualSparseBytes = 0;
    Bytes fetchedSparseBytes = 0;

    /** RHS-row cache behaviour (GROW / GAMMA only). */
    uint64_t cacheHits = 0;
    uint64_t cacheMisses = 0;

    /** Inputs for the energy model. */
    energy::ActivityCounts activity;

    /** Functional output (valid iff hasOutput). */
    sparse::DenseMatrix output;
    bool hasOutput = false;

    /** Fig. 6 metric: effectual / fetched for the sparse operand. */
    double sparseBandwidthUtil() const;

    /** Sum of all classified DRAM traffic in bytes. */
    Bytes totalTrafficBytes() const { return traffic.total(); }
};

/**
 * Abstract cycle-level SpDeGEMM engine.
 */
class AcceleratorSim
{
  public:
    virtual ~AcceleratorSim() = default;

    /** Engine name for reports ("grow", "gcnax", ...). */
    virtual std::string name() const = 0;

    /** Simulate one SpDeGEMM phase. */
    virtual PhaseResult run(const SpDeGemmProblem &problem,
                            const SimOptions &options) = 0;

    /**
     * The engine's declarative dataflow description (loop nest,
     * stationarity, reuse categories, buffer levels) for both phase
     * classes, derived from the current configuration. Pure data: the
     * phase-plan lowering derives problem fields from it and the
     * analytical cost model derives closed-form cycle/traffic
     * estimates; run() never reads it.
     */
    virtual mapping::EngineMapping mapping() const = 0;

    /**
     * A fresh engine of the identical configuration, carrying no
     * state from past run() calls. The phase-parallel executor clones
     * one engine per concurrent phase so run() never races on engine
     * members; run() is a pure function of (config, problem, options),
     * so a clone's results are bit-identical to the original's.
     */
    virtual std::unique_ptr<AcceleratorSim> clone() const = 0;
};

} // namespace grow::accel
