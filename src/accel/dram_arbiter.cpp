#include "accel/dram_arbiter.hpp"

#include <algorithm>
#include <tuple>

#include "util/logging.hpp"

namespace grow::accel {

LaneDramPort::LaneDramPort(EpochArbiter &arbiter, uint32_t resource_id,
                           uint32_t lane_id)
    : mem::DramModel(arbiter.resources_.at(resource_id)->config()),
      arbiter_(arbiter), resource_(resource_id), lane_(lane_id),
      cluster_(lane_id)
{
}

Cycle
LaneDramPort::record(bool is_write, Cycle now, uint64_t addr, Bytes bytes,
                     mem::TrafficClass cls)
{
    GROW_ASSERT(replica_ != nullptr,
                "lane port used outside an open epoch (beginEpoch "
                "missing)");
    DramRequest req;
    req.epoch = arbiter_.epoch_;
    req.resourceId = resource_;
    req.clusterId = cluster_;
    req.laneId = lane_;
    req.seq = seq_++;
    req.isWrite = is_write;
    req.now = now;
    req.addr = addr;
    req.bytes = bytes;
    req.cls = cls;
    pending_.push_back(req);
    // The engine-visible response: the snapshot state plus this lane's
    // own earlier requests of the epoch. The replica's private traffic
    // accounting is discarded at commit; the canonical replay is the
    // single source of truth for byte totals.
    return is_write ? replica_->write(now, addr, bytes, cls)
                    : replica_->read(now, addr, bytes, cls);
}

Cycle
LaneDramPort::read(Cycle now, uint64_t addr, Bytes bytes,
                   mem::TrafficClass cls)
{
    return record(false, now, addr, bytes, cls);
}

Cycle
LaneDramPort::write(Cycle now, uint64_t addr, Bytes bytes,
                    mem::TrafficClass cls)
{
    return record(true, now, addr, bytes, cls);
}

std::unique_ptr<mem::DramModel>
LaneDramPort::cloneTimingState() const
{
    panic("LaneDramPort cannot be snapshotted (it is itself a view "
          "onto the canonical device)");
}

EpochArbiter::EpochArbiter(std::vector<mem::DramModel *> resources,
                           uint32_t num_lanes)
    : resources_(std::move(resources)), numLanes_(num_lanes)
{
    GROW_ASSERT(!resources_.empty(),
                "arbiter needs at least one resource");
    for (const mem::DramModel *r : resources_)
        GROW_ASSERT(r != nullptr, "arbiter resource is null");
    GROW_ASSERT(num_lanes >= 1, "arbiter needs at least one lane");
    ports_.reserve(static_cast<size_t>(resources_.size()) * numLanes_);
    for (uint32_t r = 0; r < resources_.size(); ++r)
        for (uint32_t i = 0; i < numLanes_; ++i)
            ports_.push_back(std::make_unique<LaneDramPort>(*this, r, i));
}

void
EpochArbiter::beginEpoch()
{
    ++epoch_;
    for (auto &port : ports_) {
        GROW_ASSERT(port->pending_.empty(),
                    "beginEpoch with uncommitted requests (commitEpoch "
                    "missing)");
        port->replica_ =
            resources_[port->resource_]->cloneTimingState();
    }
}

void
EpochArbiter::commitEpoch()
{
    GROW_ASSERT(epoch_ > 0, "commitEpoch before the first beginEpoch");
    std::vector<DramRequest> all;
    for (auto &port : ports_) {
        all.insert(all.end(), port->pending_.begin(),
                   port->pending_.end());
        port->pending_.clear();
        port->replica_.reset();
    }
    // Canonical total order: resource first (each canonical device
    // replays its own stream), then cluster id (the issue key the
    // hardware arbiter would see), lane id as a defensive tie-break,
    // port-local sequence last so program order within a cluster is
    // preserved. The sort key is unique, so std::sort is stable here.
    std::sort(all.begin(), all.end(),
              [](const DramRequest &a, const DramRequest &b) {
                  return std::tie(a.epoch, a.resourceId, a.clusterId,
                                  a.laneId, a.seq) <
                         std::tie(b.epoch, b.resourceId, b.clusterId,
                                  b.laneId, b.seq);
              });
    for (const DramRequest &r : all) {
        mem::DramModel &device = *resources_[r.resourceId];
        if (r.isWrite)
            device.write(r.now, r.addr, r.bytes, r.cls);
        else
            device.read(r.now, r.addr, r.bytes, r.cls);
    }
    committed_ += all.size();
}

} // namespace grow::accel
