#include "accel/dram_arbiter.hpp"

#include <algorithm>
#include <tuple>

#include "util/logging.hpp"

namespace grow::accel {

LaneDramPort::LaneDramPort(EpochDramArbiter &arbiter, uint32_t lane_id)
    : mem::DramModel(arbiter.canonical_.config()), arbiter_(arbiter),
      lane_(lane_id), cluster_(lane_id)
{
}

Cycle
LaneDramPort::record(bool is_write, Cycle now, uint64_t addr, Bytes bytes,
                     mem::TrafficClass cls)
{
    GROW_ASSERT(replica_ != nullptr,
                "lane port used outside an open epoch (beginEpoch "
                "missing)");
    DramRequest req;
    req.epoch = arbiter_.epoch_;
    req.clusterId = cluster_;
    req.laneId = lane_;
    req.seq = seq_++;
    req.isWrite = is_write;
    req.now = now;
    req.addr = addr;
    req.bytes = bytes;
    req.cls = cls;
    pending_.push_back(req);
    // The engine-visible response: the snapshot state plus this lane's
    // own earlier requests of the epoch. The replica's private traffic
    // accounting is discarded at commit; the canonical replay is the
    // single source of truth for byte totals.
    return is_write ? replica_->write(now, addr, bytes, cls)
                    : replica_->read(now, addr, bytes, cls);
}

Cycle
LaneDramPort::read(Cycle now, uint64_t addr, Bytes bytes,
                   mem::TrafficClass cls)
{
    return record(false, now, addr, bytes, cls);
}

Cycle
LaneDramPort::write(Cycle now, uint64_t addr, Bytes bytes,
                    mem::TrafficClass cls)
{
    return record(true, now, addr, bytes, cls);
}

std::unique_ptr<mem::DramModel>
LaneDramPort::cloneTimingState() const
{
    panic("LaneDramPort cannot be snapshotted (it is itself a view "
          "onto the canonical device)");
}

EpochDramArbiter::EpochDramArbiter(mem::DramModel &canonical,
                                   uint32_t num_lanes)
    : canonical_(canonical)
{
    GROW_ASSERT(num_lanes >= 1, "arbiter needs at least one lane");
    lanes_.reserve(num_lanes);
    for (uint32_t i = 0; i < num_lanes; ++i)
        lanes_.push_back(std::make_unique<LaneDramPort>(*this, i));
}

void
EpochDramArbiter::beginEpoch()
{
    ++epoch_;
    for (auto &lane : lanes_) {
        GROW_ASSERT(lane->pending_.empty(),
                    "beginEpoch with uncommitted requests (commitEpoch "
                    "missing)");
        lane->replica_ = canonical_.cloneTimingState();
    }
}

void
EpochDramArbiter::commitEpoch()
{
    GROW_ASSERT(epoch_ > 0, "commitEpoch before the first beginEpoch");
    std::vector<DramRequest> all;
    for (auto &lane : lanes_) {
        all.insert(all.end(), lane->pending_.begin(),
                   lane->pending_.end());
        lane->pending_.clear();
        lane->replica_.reset();
    }
    // Canonical total order: cluster id first (the issue key the
    // hardware arbiter would see), lane id as a defensive tie-break,
    // lane-local sequence last so program order within a cluster is
    // preserved. The sort key is unique, so std::sort is stable here.
    std::sort(all.begin(), all.end(),
              [](const DramRequest &a, const DramRequest &b) {
                  return std::tie(a.epoch, a.clusterId, a.laneId, a.seq) <
                         std::tie(b.epoch, b.clusterId, b.laneId, b.seq);
              });
    for (const DramRequest &r : all) {
        if (r.isWrite)
            canonical_.write(r.now, r.addr, r.bytes, r.cls);
        else
            canonical_.read(r.now, r.addr, r.bytes, r.cls);
    }
    committed_ += all.size();
}

} // namespace grow::accel
