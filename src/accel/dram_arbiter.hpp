/**
 * @file
 * Deterministic epoch-based arbitration of shared memory-like devices.
 *
 * The cluster-parallel co-simulation (core::GrowSim with
 * SimOptions::epochCycles > 0) runs one lane per processing engine,
 * each lane executing its share of the graph clusters concurrently.
 * The lanes share one DRAM device -- exactly the coupling that makes
 * naive parallel simulation non-deterministic: the interleaving of
 * read()/write() calls would depend on OS scheduling. The multi-chip
 * scale-out co-simulation (src/scaleout/) has the same structure one
 * level up: receiving chips (lanes) pull halo rows through shared
 * egress links (resources), so the identical protocol arbitrates
 * inter-chip link ports too.
 *
 * EpochArbiter removes the scheduling dependence with a bulk-
 * synchronous protocol over any set of mem::DramModel-shaped shared
 * resources (DRAM channels, inter-chip links):
 *
 *  1. beginEpoch() snapshots every canonical device's timing state
 *     into one private replica per (resource, lane) port
 *     (DramModel::cloneTimingState).
 *  2. During the epoch each lane talks only to its LaneDramPorts: the
 *     response comes from the port's replica (snapshot + the lane's
 *     own earlier requests of this epoch on that resource), and the
 *     request is recorded with its canonical key (epoch, resourceId,
 *     clusterId, laneId, requestSeq). Lanes never touch shared mutable
 *     state, so they may run on any number of worker threads in any
 *     order.
 *  3. commitEpoch() sorts the recorded requests by the canonical key
 *     and replays them through their canonical devices, which
 *     accumulate the official traffic accounting and the channel
 *     backlog that the next epoch's snapshots observe.
 *
 * Determinism: every response and the canonical replay order are pure
 * functions of the simulation state at the epoch boundary -- thread
 * count and scheduling cannot change a single bit. Fidelity: a lane
 * observes other lanes' channel pressure with one-epoch delay
 * (contention within an epoch window of E cycles is resolved at the
 * boundary), which is the standard relaxed-synchronization trade-off
 * of parallel architecture simulators; epochCycles == 0 disables the
 * arbiter entirely and keeps the exact serial interleaving. See
 * DESIGN.md "Parallel co-simulation & DRAM arbitration".
 *
 * EpochDramArbiter below is the original single-resource (one DRAM
 * channel) specialisation -- its protocol, canonical order and results
 * are bit-identical to the pre-generalisation implementation.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/dram.hpp"
#include "sim/types.hpp"

namespace grow::accel {

class EpochArbiter;

/** One recorded memory request with its canonical ordering key. */
struct DramRequest
{
    uint64_t epoch = 0;
    /** Canonical resource (DRAM channel / link) the request targets. */
    uint32_t resourceId = 0;
    /** Graph cluster the owning lane was executing (falls back to the
     *  lane id before the first cluster transition). Clusters are
     *  owned by exactly one lane, so (epoch, resourceId, clusterId,
     *  seq) is unique; laneId breaks ties defensively. */
    uint32_t clusterId = 0;
    uint32_t laneId = 0;
    /** Port-local issue index (program order within the lane). */
    uint64_t seq = 0;

    bool isWrite = false;
    Cycle now = 0;
    uint64_t addr = 0;
    Bytes bytes = 0;
    mem::TrafficClass cls = mem::TrafficClass::DenseRow;
};

/**
 * Per-(resource, lane) port: a DramModel whose responses are computed
 * against the lane's private replica of that canonical device. Engines
 * use it as a drop-in DRAM; the arbiter owns it.
 */
class LaneDramPort : public mem::DramModel
{
  public:
    LaneDramPort(EpochArbiter &arbiter, uint32_t resource_id,
                 uint32_t lane_id);

    /** Stamp subsequent requests as belonging to @p cluster_id
     *  (wired to RowEngine's cluster transitions). */
    void setCluster(uint32_t cluster_id) { cluster_ = cluster_id; }

    Cycle read(Cycle now, uint64_t addr, Bytes bytes,
               mem::TrafficClass cls) override;
    Cycle write(Cycle now, uint64_t addr, Bytes bytes,
                mem::TrafficClass cls) override;
    std::unique_ptr<mem::DramModel> cloneTimingState() const override;

  private:
    friend class EpochArbiter;

    Cycle record(bool is_write, Cycle now, uint64_t addr, Bytes bytes,
                 mem::TrafficClass cls);

    EpochArbiter &arbiter_;
    uint32_t resource_;
    uint32_t lane_;
    uint32_t cluster_;
    uint64_t seq_ = 0;
    /** Snapshot of the canonical device + this port's epoch requests. */
    std::unique_ptr<mem::DramModel> replica_;
    std::vector<DramRequest> pending_;
};

/**
 * The epoch coordinator over a set of shared resources. Owns the
 * (resource x lane) ports; the canonical devices are borrowed and must
 * outlive the arbiter.
 */
class EpochArbiter
{
  public:
    EpochArbiter(std::vector<mem::DramModel *> resources,
                 uint32_t num_lanes);

    uint32_t numResources() const
    {
        return static_cast<uint32_t>(resources_.size());
    }
    uint32_t numLanes() const { return numLanes_; }

    /** Lane @p lane's private port onto resource @p resource. */
    LaneDramPort &port(uint32_t resource, uint32_t lane)
    {
        return *ports_.at(static_cast<size_t>(resource) * numLanes_ +
                          lane);
    }

    /** Current epoch index (first beginEpoch() starts epoch 1). */
    uint64_t epoch() const { return epoch_; }

    /** Total requests replayed through the canonical devices so far. */
    uint64_t committedRequests() const { return committed_; }

    /** Open the next epoch: re-snapshot every port's replica from its
     *  canonical device. */
    void beginEpoch();

    /**
     * Close the epoch: gather every port's recorded requests, order
     * them by the canonical (epoch, resourceId, clusterId, laneId,
     * seq) key and replay them through their canonical devices.
     * Responses of the replay are discarded -- lanes already consumed
     * their replica responses; the replay exists to accumulate the
     * official traffic and carry the channel backlog into the next
     * epoch.
     */
    void commitEpoch();

  private:
    friend class LaneDramPort;

    std::vector<mem::DramModel *> resources_;
    uint32_t numLanes_ = 0;
    std::vector<std::unique_ptr<LaneDramPort>> ports_;
    uint64_t epoch_ = 0;
    uint64_t committed_ = 0;
};

/**
 * The single-resource specialisation: one DRAM channel shared by
 * per-PE lanes (core::GrowSim's epoch mode). Canonical order and
 * results are bit-identical to the original dedicated implementation
 * (the resourceId key is constant 0).
 */
class EpochDramArbiter : public EpochArbiter
{
  public:
    EpochDramArbiter(mem::DramModel &canonical, uint32_t num_lanes)
        : EpochArbiter({&canonical}, num_lanes)
    {
    }

    LaneDramPort &lane(uint32_t i) { return port(0, i); }
};

} // namespace grow::accel
