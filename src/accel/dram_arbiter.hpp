/**
 * @file
 * Deterministic epoch-based arbitration of a shared DRAM channel.
 *
 * The cluster-parallel co-simulation (core::GrowSim with
 * SimOptions::epochCycles > 0) runs one lane per processing engine,
 * each lane executing its share of the graph clusters concurrently.
 * The lanes share one DRAM device -- exactly the coupling that makes
 * naive parallel simulation non-deterministic: the interleaving of
 * read()/write() calls would depend on OS scheduling.
 *
 * The arbiter removes the scheduling dependence with a bulk-
 * synchronous protocol:
 *
 *  1. beginEpoch() snapshots the canonical device's timing state into
 *     one private replica per lane (DramModel::cloneTimingState).
 *  2. During the epoch each lane talks only to its LaneDramPort: the
 *     response comes from the lane's replica (snapshot + the lane's
 *     own earlier requests of this epoch), and the request is recorded
 *     with its canonical key (epoch, clusterId, requestSeq). Lanes
 *     never touch shared mutable state, so they may run on any number
 *     of worker threads in any order.
 *  3. commitEpoch() sorts the recorded requests by the canonical key
 *     and replays them through the canonical device, which accumulates
 *     the official traffic accounting and the channel backlog that the
 *     next epoch's snapshots observe.
 *
 * Determinism: every response and the canonical replay order are pure
 * functions of the simulation state at the epoch boundary -- thread
 * count and scheduling cannot change a single bit. Fidelity: a lane
 * observes other lanes' channel pressure with one-epoch delay
 * (contention within an epoch window of E cycles is resolved at the
 * boundary), which is the standard relaxed-synchronization trade-off
 * of parallel architecture simulators; epochCycles == 0 disables the
 * arbiter entirely and keeps the exact serial interleaving. See
 * DESIGN.md "Parallel co-simulation & DRAM arbitration".
 */
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/dram.hpp"
#include "sim/types.hpp"

namespace grow::accel {

class EpochDramArbiter;

/** One recorded memory request with its canonical ordering key. */
struct DramRequest
{
    uint64_t epoch = 0;
    /** Graph cluster the owning lane was executing (falls back to the
     *  lane id before the first cluster transition). Clusters are
     *  owned by exactly one lane, so (epoch, clusterId, seq) is
     *  unique; laneId breaks ties defensively. */
    uint32_t clusterId = 0;
    uint32_t laneId = 0;
    /** Lane-local issue index (program order within the lane). */
    uint64_t seq = 0;

    bool isWrite = false;
    Cycle now = 0;
    uint64_t addr = 0;
    Bytes bytes = 0;
    mem::TrafficClass cls = mem::TrafficClass::DenseRow;
};

/**
 * Per-lane port: a DramModel whose responses are computed against the
 * lane's private replica of the canonical device. Engines use it as a
 * drop-in DRAM; the arbiter owns it.
 */
class LaneDramPort : public mem::DramModel
{
  public:
    LaneDramPort(EpochDramArbiter &arbiter, uint32_t lane_id);

    /** Stamp subsequent requests as belonging to @p cluster_id
     *  (wired to RowEngine's cluster transitions). */
    void setCluster(uint32_t cluster_id) { cluster_ = cluster_id; }

    Cycle read(Cycle now, uint64_t addr, Bytes bytes,
               mem::TrafficClass cls) override;
    Cycle write(Cycle now, uint64_t addr, Bytes bytes,
                mem::TrafficClass cls) override;
    std::unique_ptr<mem::DramModel> cloneTimingState() const override;

  private:
    friend class EpochDramArbiter;

    Cycle record(bool is_write, Cycle now, uint64_t addr, Bytes bytes,
                 mem::TrafficClass cls);

    EpochDramArbiter &arbiter_;
    uint32_t lane_;
    uint32_t cluster_;
    uint64_t seq_ = 0;
    /** Snapshot of the canonical device + this lane's epoch requests. */
    std::unique_ptr<mem::DramModel> replica_;
    std::vector<DramRequest> pending_;
};

/**
 * The epoch coordinator. Owns the lane ports; the canonical device is
 * borrowed and must outlive the arbiter.
 */
class EpochDramArbiter
{
  public:
    EpochDramArbiter(mem::DramModel &canonical, uint32_t num_lanes);

    uint32_t numLanes() const
    {
        return static_cast<uint32_t>(lanes_.size());
    }
    LaneDramPort &lane(uint32_t i) { return *lanes_.at(i); }

    /** Current epoch index (first beginEpoch() starts epoch 1). */
    uint64_t epoch() const { return epoch_; }

    /** Total requests replayed through the canonical device so far. */
    uint64_t committedRequests() const { return committed_; }

    /** Open the next epoch: re-snapshot every lane's replica from the
     *  canonical device. */
    void beginEpoch();

    /**
     * Close the epoch: gather every lane's recorded requests, order
     * them by the canonical (epoch, clusterId, laneId, seq) key and
     * replay them through the canonical device. Responses of the
     * replay are discarded -- lanes already consumed their replica
     * responses; the replay exists to accumulate the official traffic
     * and carry the channel backlog into the next epoch.
     */
    void commitEpoch();

  private:
    friend class LaneDramPort;

    mem::DramModel &canonical_;
    std::vector<std::unique_ptr<LaneDramPort>> lanes_;
    uint64_t epoch_ = 0;
    uint64_t committed_ = 0;
};

} // namespace grow::accel
