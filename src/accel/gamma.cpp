#include "accel/gamma.hpp"

#include <algorithm>
#include <utility>

#include "util/bitutil.hpp"
#include "util/logging.hpp"

namespace grow::accel {

GammaSim::GammaSim(GammaConfig config) : config_(std::move(config))
{
    GROW_ASSERT(config_.numMacs > 0, "invalid GAMMA configuration");
}

mapping::EngineMapping
GammaSim::mapping() const
{
    using namespace grow::mapping;
    EngineMapping em;
    em.engine = "gamma";
    em.consumesPartitioning = false;
    em.dramBytesPerCycle = config_.dram.bytesPerCycle();
    em.dramAccessLatency = config_.dram.accessLatency;

    // Gustavson row-wise product like GROW, but generic sparse-sparse:
    // fibers are demand-cached under LRU and partials pass a merge
    // network instead of accumulating in a dense output row.
    MappingSpec s;
    s.stationarity = Stationarity::Row;
    s.rhsFormat = OperandFormat::CompressedFiber;
    s.outFormat = OperandFormat::CompressedFiber;
    s.denseReuse = DenseReuse::LruCache;
    s.loops = {{Dim::M, MapKind::Temporal, 1},
               {Dim::K, MapKind::Temporal, 1},
               {Dim::N, MapKind::Spatial, config_.numMacs}};
    s.spatialLanes = config_.numMacs;
    s.reductionLanes = config_.mergeRadix;
    s.buffers = {{BufferRole::RowCache, config_.fiberCacheBytes}};

    // The FiberCache sim runs for combination too (no W residency).
    em.combination = s;
    em.combination.phaseClass = PhaseClass::DenseResident;
    em.aggregation = std::move(s);
    em.aggregation.phaseClass = PhaseClass::SparseStreaming;
    mapping::validate(em);
    return em;
}

PhaseResult
GammaSim::run(const SpDeGemmProblem &problem, const SimOptions &options)
{
    GROW_ASSERT(problem.lhs != nullptr, "missing LHS");
    const auto &S = *problem.lhs;
    const uint32_t M = S.rows();
    const uint32_t N = problem.rhsCols;

    PhaseResult res;
    res.engine = name();
    res.phase = problem.phase;
    res.label = problem.label;

    const Bytes fiberBytes =
        static_cast<Bytes>(N) * (kValueBytes + kIndexBytes) + kPtrBytes;
    const Bytes fiberFetch = roundUp(fiberBytes, kDramLineBytes);

    // FiberCache simulation over the actual access stream (row-major
    // schedule, demand fill, LRU replacement).
    mem::LruRowCache cache(config_.fiberCacheBytes, fiberBytes);
    for (uint32_t r = 0; r < M; ++r) {
        for (NodeId k : S.rowCols(r)) {
            if (!cache.lookup(k))
                cache.insert(k);
        }
    }
    res.cacheHits = cache.hits();
    res.cacheMisses = cache.misses();

    // --- DRAM traffic ------------------------------------------------
    Bytes sparseStream =
        roundUp(S.nnz() * kValueBytes, kDramLineBytes) +
        roundUp(S.nnz() * kIndexBytes, kDramLineBytes) +
        roundUp(static_cast<Bytes>(M) * kPtrBytes, kDramLineBytes);
    Bytes rhsFetch = res.cacheMisses * fiberFetch;
    Bytes outputWrite = roundUp(
        static_cast<Bytes>(M) * N * (kValueBytes + kIndexBytes) +
            static_cast<Bytes>(M) * kPtrBytes,
        kDramLineBytes);

    using mem::TrafficClass;
    res.traffic.readBytes[static_cast<size_t>(
        TrafficClass::SparseStream)] = sparseStream;
    res.traffic.readBytes[static_cast<size_t>(TrafficClass::DenseRow)] =
        rhsFetch;
    res.traffic.writeBytes[static_cast<size_t>(
        TrafficClass::OutputWrite)] = outputWrite;

    res.effectualSparseBytes = S.nnz() * (kValueBytes + kIndexBytes);
    res.fetchedSparseBytes = sparseStream;

    // --- Timing ------------------------------------------------------
    res.macOps = S.nnz() * N;
    Cycle multiply = S.nnz() * ceilDiv(N, config_.numMacs);
    // High-radix merge absorbs most partials; residual cost per element.
    Cycle merge = ceilDiv(res.macOps, config_.mergeRadix);
    Cycle compute = multiply + merge;
    Cycle memory = static_cast<Cycle>(
        static_cast<double>(res.traffic.total()) /
        config_.dram.bytesPerCycle());
    res.cycles = std::max(compute, memory) + config_.dram.accessLatency;

    // --- Energy activity ---------------------------------------------
    res.activity.macOps = res.macOps;
    res.activity.dramBytes = res.traffic.total();
    res.activity.cycles = res.cycles;
    res.activity.onChipSramBytes = config_.fiberCacheBytes;
    res.activity.sram.push_back(
        {config_.fiberCacheBytes,
         res.cacheHits * (fiberBytes / kValueBytes) +
             res.cacheMisses * (fiberBytes / kValueBytes),
         false});

    // --- Functional output -------------------------------------------
    if (options.functional) {
        GROW_ASSERT(problem.rhs != nullptr,
                    "functional mode requires RHS values");
        res.output = sparse::DenseMatrix(M, N);
        for (uint32_t r = 0; r < M; ++r) {
            auto cols = S.rowCols(r);
            auto vals = S.rowVals(r);
            double *out = res.output.row(r);
            for (size_t i = 0; i < cols.size(); ++i) {
                const double *rhs = problem.rhs->row(cols[i]);
                for (uint32_t j = 0; j < N; ++j)
                    out[j] += vals[i] * rhs[j];
            }
        }
        res.hasOutput = true;
    }
    return res;
}

} // namespace grow::accel
