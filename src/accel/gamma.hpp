/**
 * @file
 * GAMMA baseline model (Zhang et al., ASPLOS'21).
 *
 * GAMMA also uses Gustavson's algorithm, but targets generic
 * sparse-sparse GEMM. Its FiberCache is a demand-filled cache with
 * LRU-style replacement over RHS fibers -- effective, but "not
 * optimized for the power-law distribution of graphs" (Sec. VII-H):
 * hub rows can be evicted by one-touch cold rows, unlike GROW's pinned
 * HDN cache. The RHS is again consumed in compressed form, paying
 * metadata traffic on dense operands.
 */
#pragma once

#include "accel/accelerator.hpp"
#include "mem/dram.hpp"
#include "mem/lru_cache.hpp"

namespace grow::accel {

/** GAMMA configuration (capacity-matched to GROW's on-chip SRAM). */
struct GammaConfig
{
    uint32_t numMacs = 16;
    /** FiberCache capacity (GROW's HDN cache + ID list, Sec. VI). */
    Bytes fiberCacheBytes = 524 * 1024;
    /** High-radix merge width. */
    uint32_t mergeRadix = 32;
    mem::DramConfig dram;
};

class GammaSim : public AcceleratorSim
{
  public:
    explicit GammaSim(GammaConfig config);

    std::string name() const override { return "gamma"; }

    PhaseResult run(const SpDeGemmProblem &problem,
                    const SimOptions &options) override;

    /** Row-wise product with a demand-filled LRU FiberCache and a
     *  high-radix merge; RHS consumed as compressed fibers. */
    mapping::EngineMapping mapping() const override;

    std::unique_ptr<AcceleratorSim> clone() const override
    {
        return std::make_unique<GammaSim>(config_);
    }

  private:
    GammaConfig config_;
};

} // namespace grow::accel
