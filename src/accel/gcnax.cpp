#include "accel/gcnax.hpp"

#include <algorithm>
#include <utility>

#include "util/bitutil.hpp"
#include "util/logging.hpp"

namespace grow::accel {

namespace {

/** Largest power of two <= x (x >= 1). */
uint32_t
pow2Floor(uint32_t x)
{
    uint32_t p = 1;
    while (p * 2 <= x)
        p *= 2;
    return p;
}

} // namespace

GcnaxSim::GcnaxSim(GcnaxConfig config) : config_(std::move(config))
{
    GROW_ASSERT(config_.numMacs > 0, "GCNAX needs at least one MAC");
}

mapping::EngineMapping
GcnaxSim::mapping() const
{
    using namespace grow::mapping;
    EngineMapping em;
    em.engine = "gcnax";
    em.consumesPartitioning = false;
    em.dramBytesPerCycle = config_.dram.bytesPerCycle();
    em.dramAccessLatency = config_.dram.accessLatency;

    // Outer-product loop fusion (Fig. 4): the output tile stays
    // resident across the K sweep; tile extents come from the runtime
    // traffic search (tile = 0), bounded below by the hardware minima.
    MappingSpec s;
    s.stationarity = Stationarity::Output;
    s.rhsFormat = OperandFormat::DenseRows;
    s.outFormat = OperandFormat::DenseRows;
    s.denseReuse = DenseReuse::Tiled;
    s.loops = {{Dim::N, MapKind::Temporal, 0},
               {Dim::M, MapKind::Temporal, 0},
               {Dim::K, MapKind::Temporal, 0},
               {Dim::N, MapKind::Spatial, config_.numMacs}};
    s.spatialLanes = config_.numMacs;
    s.tileOverheadCycles = config_.tileOverheadCycles;
    s.minTileK = config_.minTileK;
    s.minTileM = config_.minTileM;
    s.buffers = {{BufferRole::SparseInput, config_.sparseBufBytes},
                 {BufferRole::DenseInput, config_.denseBufBytes},
                 {BufferRole::Output, config_.outBufBytes}};

    // GCNAX runs combination with the same tiled dataflow -- it does
    // not pin W on-chip, so both phase classes share one spec.
    em.combination = s;
    em.combination.phaseClass = PhaseClass::DenseResident;
    em.aggregation = std::move(s);
    em.aggregation.phaseClass = PhaseClass::SparseStreaming;
    mapping::validate(em);
    return em;
}

Bytes
GcnaxSim::tilingTraffic(const sparse::TileGridStats &stats, uint32_t tk,
                        uint32_t tn, uint32_t rows, uint32_t cols,
                        uint32_t rhs_cols) const
{
    (void)rows;
    const uint32_t trip_n = static_cast<uint32_t>(ceilDiv(rhs_cols, tn));
    Bytes sparseFetch = 0;
    Bytes denseFetch = 0;
    for (uint32_t m = 0; m < stats.rowTiles(); ++m) {
        for (uint32_t k = 0; k < stats.colTiles(); ++k) {
            uint64_t nnz = stats.nnzAt(m, k);
            if (nnz == 0)
                continue;
            sparseFetch += sparse::TileFetchModel::fetchedBytes(nnz);
            // Dense tile D[k, n]: kExtent rows of the RHS.
            uint64_t kExtent =
                std::min<uint64_t>(tk, cols - static_cast<uint64_t>(k) * tk);
            Bytes tile =
                tn * kValueBytes >= kDramLineBytes || tn == rhs_cols
                    ? roundUp(kExtent * tn * kValueBytes, kDramLineBytes)
                    : kExtent * roundUp(tn * kValueBytes, kDramLineBytes);
            denseFetch += tile;
        }
    }
    Bytes output = roundUp(static_cast<Bytes>(stats.rowTiles()) == 0
                               ? 0
                               : static_cast<Bytes>(rows) * rhs_cols *
                                     kValueBytes,
                           kDramLineBytes);
    return sparseFetch * trip_n + denseFetch * trip_n + output;
}

GcnaxTiling
GcnaxSim::chooseTiling(const sparse::CsrMatrix &lhs,
                       uint32_t rhs_cols) const
{
    const uint32_t M = lhs.rows();
    const uint32_t K = lhs.cols();
    const uint32_t N = rhs_cols;

    // Dense-tile width: as wide as the buffer permits at minimum Tk --
    // GCN output widths are small (Table I), so Tn == N is the norm.
    uint32_t tn = std::min<uint32_t>(
        N, std::max<uint32_t>(
               1, static_cast<uint32_t>(config_.denseBufBytes /
                                        (config_.minTileK * kValueBytes))));

    GcnaxTiling best;
    for (uint32_t tk = config_.minTileK;; tk *= 2) {
        if (static_cast<Bytes>(tk) * tn * kValueBytes >
            config_.denseBufBytes)
            break;
        // Worst-case (fully dense) sparse-tile provisioning, Sec. IV-B.
        uint64_t tmCap = config_.sparseBufBytes /
                         (static_cast<uint64_t>(tk) *
                          (kValueBytes + kIndexBytes));
        uint64_t tmOut = config_.outBufBytes /
                         (static_cast<uint64_t>(tn) * kValueBytes);
        uint32_t tm = static_cast<uint32_t>(
            std::min<uint64_t>({tmCap, tmOut, M == 0 ? 1 : M}));
        if (tm < config_.minTileM) {
            if (tk == config_.minTileK && best.tm == 0)
                tm = config_.minTileM; // smallest legal fallback
            else
                break;
        }
        tm = pow2Floor(tm);

        auto stats = sparse::TileGridStats::compute(
            lhs, sparse::TileShape{tm, tk});
        Bytes traffic = tilingTraffic(stats, tk, tn, M, K, N);
        if (best.tm == 0 || traffic < best.estimatedTraffic) {
            best = GcnaxTiling{tm, tk, tn, traffic};
        }
        if (tk >= K)
            break;
    }
    GROW_ASSERT(best.tm > 0, "no feasible GCNAX tiling");
    return best;
}

PhaseResult
GcnaxSim::run(const SpDeGemmProblem &problem, const SimOptions &options)
{
    GROW_ASSERT(problem.lhs != nullptr, "missing LHS");
    const auto &S = *problem.lhs;
    const uint32_t M = S.rows();
    const uint32_t K = S.cols();
    const uint32_t N = problem.rhsCols;

    PhaseResult res;
    res.engine = name();
    res.phase = problem.phase;
    res.label = problem.label;

    GcnaxTiling t = chooseTiling(S, N);
    auto stats =
        sparse::TileGridStats::compute(S, sparse::TileShape{t.tm, t.tk});
    const uint32_t trip_n = static_cast<uint32_t>(ceilDiv(N, t.tn));

    // --- DRAM traffic ------------------------------------------------
    Bytes sparseFetch = 0;
    Bytes denseFetch = 0;
    for (uint32_t m = 0; m < stats.rowTiles(); ++m) {
        for (uint32_t k = 0; k < stats.colTiles(); ++k) {
            uint64_t nnz = stats.nnzAt(m, k);
            if (nnz == 0)
                continue;
            sparseFetch += sparse::TileFetchModel::fetchedBytes(nnz);
            uint64_t kExtent = std::min<uint64_t>(
                t.tk, K - static_cast<uint64_t>(k) * t.tk);
            denseFetch +=
                t.tn * kValueBytes >= kDramLineBytes || t.tn == N
                    ? roundUp(kExtent * t.tn * kValueBytes, kDramLineBytes)
                    : kExtent * roundUp(t.tn * kValueBytes, kDramLineBytes);
        }
    }
    sparseFetch *= trip_n;
    denseFetch *= trip_n;
    Bytes outputWrite =
        roundUp(static_cast<Bytes>(M) * N * kValueBytes, kDramLineBytes);

    using mem::TrafficClass;
    res.traffic.readBytes[static_cast<size_t>(
        TrafficClass::SparseStream)] = sparseFetch;
    res.traffic.readBytes[static_cast<size_t>(TrafficClass::DenseRow)] =
        denseFetch;
    res.traffic.writeBytes[static_cast<size_t>(
        TrafficClass::OutputWrite)] = outputWrite;

    res.effectualSparseBytes =
        S.nnz() * (kValueBytes + kIndexBytes) * trip_n;
    res.fetchedSparseBytes = sparseFetch;

    // --- Timing ------------------------------------------------------
    res.macOps = S.nnz() * N;
    Cycle compute = S.nnz() * ceilDiv(t.tn, config_.numMacs) * trip_n +
                    stats.nonEmptyTiles() * config_.tileOverheadCycles *
                        trip_n;
    double bpc = config_.dram.bytesPerCycle();
    Cycle memory = static_cast<Cycle>(
        static_cast<double>(res.traffic.total()) / bpc);
    // Double-buffered tiles overlap fetch and compute; the slower side
    // dominates, plus the initial fill latency.
    res.cycles = std::max(compute, memory) + config_.dram.accessLatency;

    // --- Energy activity ---------------------------------------------
    res.activity.macOps = res.macOps;
    res.activity.dramBytes = res.traffic.total();
    res.activity.cycles = res.cycles;
    res.activity.onChipSramBytes = config_.sparseBufBytes +
                                   config_.denseBufBytes +
                                   config_.outBufBytes;
    res.activity.sram.push_back(
        {config_.sparseBufBytes, S.nnz() * 2 * trip_n, false});
    res.activity.sram.push_back(
        {config_.denseBufBytes, denseFetch / kValueBytes + res.macOps,
         false});
    res.activity.sram.push_back(
        {config_.outBufBytes,
         res.macOps + static_cast<uint64_t>(M) * N, false});

    // --- Functional output -------------------------------------------
    if (options.functional) {
        GROW_ASSERT(problem.rhs != nullptr,
                    "functional mode requires RHS values");
        GROW_ASSERT(problem.rhs->rows() == K && problem.rhs->cols() == N,
                    "RHS shape mismatch");
        res.output = sparse::DenseMatrix(M, N);
        uint64_t visited = 0;
        for (uint32_t r = 0; r < M; ++r) {
            auto cols = S.rowCols(r);
            auto vals = S.rowVals(r);
            double *out = res.output.row(r);
            for (size_t i = 0; i < cols.size(); ++i) {
                const double *rhs = problem.rhs->row(cols[i]);
                for (uint32_t j = 0; j < N; ++j)
                    out[j] += vals[i] * rhs[j];
                ++visited;
            }
        }
        GROW_ASSERT(visited == S.nnz(), "tile sweep missed non-zeros");
        res.hasOutput = true;
    }
    return res;
}

} // namespace grow::accel
