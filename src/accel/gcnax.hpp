/**
 * @file
 * GCNAX baseline model (Li et al., HPCA'21) -- the paper's primary
 * comparison point.
 *
 * GCNAX executes SpDeGEMM with an outer-product dataflow over 2-D tiles
 * of a CSC-compressed sparse operand (Fig. 4), with reconfigurable loop
 * ordering/tiling and loop fusion that keeps each output tile on-chip
 * until it is complete (no partial-sum DRAM traffic). We reproduce:
 *
 *  - a per-phase tile-size optimizer that, like GCNAX's offline search,
 *    picks the tiling minimising estimated DRAM traffic subject to the
 *    on-chip buffer capacities. Following the GROW paper's observation
 *    (Sec. IV-B), the sparse tile buffer must be provisioned for the
 *    *worst-case* fully dense tile, which bounds Tm x Tk;
 *  - the outer-product execution loop: for every non-empty sparse tile
 *    S[m,k], the corresponding dense tile D[k,n] is fetched, and each
 *    non-zero performs a Tn-wide rank-1 update into the resident output
 *    tile;
 *  - tile-granular DRAM fetch with 64 B lines (the Fig. 5/6 waste).
 *
 * The dense-tile height Tk has a hardware minimum (the outer-product
 * pipeline consumes dense rows in blocks); hypersparse adjacency tiles
 * therefore drag in mostly-useless dense tiles, which is exactly the
 * inefficiency GROW's row-stationary dataflow removes.
 */
#pragma once

#include "accel/accelerator.hpp"
#include "mem/dram.hpp"
#include "sparse/tiling.hpp"

namespace grow::accel {

/** GCNAX configuration (provisioned to match GROW, Sec. VI). */
struct GcnaxConfig
{
    uint32_t numMacs = 16;
    /** Sparse-tile buffer (worst-case dense provisioning applies). */
    Bytes sparseBufBytes = 128 * 1024;
    /** Dense-tile buffer. */
    Bytes denseBufBytes = 128 * 1024;
    /** Output-tile buffer (output-stationary loop fusion). */
    Bytes outBufBytes = 280 * 1024;
    /** Minimum dense-tile height fetched per sparse tile. */
    uint32_t minTileK = 16;
    /** Minimum sparse-tile height. */
    uint32_t minTileM = 64;
    /** Pipeline bubble per tile switch (buffer swap, pointer setup). */
    Cycle tileOverheadCycles = 8;
    mem::DramConfig dram;
};

/** Chosen loop tiling for one SpDeGEMM. */
struct GcnaxTiling
{
    uint32_t tm = 0;
    uint32_t tk = 0;
    uint32_t tn = 0;
    /** Estimated total DRAM traffic under this tiling. */
    Bytes estimatedTraffic = 0;
};

class GcnaxSim : public AcceleratorSim
{
  public:
    explicit GcnaxSim(GcnaxConfig config);

    std::string name() const override { return "gcnax"; }

    PhaseResult run(const SpDeGemmProblem &problem,
                    const SimOptions &options) override;

    /** Output-stationary outer-product dataflow over 2-D sparse tiles
     *  with a per-problem traffic-minimising tiling search. */
    mapping::EngineMapping mapping() const override;

    /**
     * The reconfigurable tiling search: enumerate feasible (Tm, Tk, Tn)
     * and return the traffic-minimising choice for this operand.
     */
    GcnaxTiling chooseTiling(const sparse::CsrMatrix &lhs,
                             uint32_t rhs_cols) const;

    const GcnaxConfig &config() const { return config_; }

    std::unique_ptr<AcceleratorSim> clone() const override
    {
        return std::make_unique<GcnaxSim>(config_);
    }

  private:
    /** Exact traffic for a candidate tiling (O(nnz) tile census). */
    Bytes tilingTraffic(const sparse::TileGridStats &stats, uint32_t tk,
                        uint32_t tn, uint32_t rows, uint32_t cols,
                        uint32_t rhs_cols) const;

    GcnaxConfig config_;
};

} // namespace grow::accel
