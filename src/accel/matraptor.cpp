#include "accel/matraptor.hpp"

#include <algorithm>
#include <utility>

#include "util/bitutil.hpp"
#include "util/logging.hpp"

namespace grow::accel {

MatRaptorSim::MatRaptorSim(MatRaptorConfig config) : config_(std::move(config))
{
    GROW_ASSERT(config_.numMacs > 0 && config_.mergeLanes > 0,
                "invalid MatRaptor configuration");
}

mapping::EngineMapping
MatRaptorSim::mapping() const
{
    using namespace grow::mapping;
    EngineMapping em;
    em.engine = "matraptor";
    em.consumesPartitioning = false;
    em.dramBytesPerCycle = config_.dram.bytesPerCycle();
    em.dramAccessLatency = config_.dram.accessLatency;

    // Row-wise product without any dense-operand reuse: each LHS
    // non-zero streams its full RHS fiber (compressed, the format tax
    // of a sparse-sparse engine) and partials drain through sorting
    // queues.
    MappingSpec s;
    s.stationarity = Stationarity::None;
    s.rhsFormat = OperandFormat::CompressedFiber;
    s.outFormat = OperandFormat::CompressedFiber;
    s.denseReuse = DenseReuse::None;
    s.loops = {{Dim::M, MapKind::Temporal, 1},
               {Dim::K, MapKind::Temporal, 1},
               {Dim::N, MapKind::Spatial, config_.numMacs}};
    s.spatialLanes = config_.numMacs;
    s.reductionLanes = config_.mergeLanes;
    s.buffers = {{BufferRole::MergeQueue, config_.queueBufBytes}};

    em.combination = s;
    em.combination.phaseClass = PhaseClass::DenseResident;
    em.aggregation = std::move(s);
    em.aggregation.phaseClass = PhaseClass::SparseStreaming;
    mapping::validate(em);
    return em;
}

PhaseResult
MatRaptorSim::run(const SpDeGemmProblem &problem, const SimOptions &options)
{
    GROW_ASSERT(problem.lhs != nullptr, "missing LHS");
    const auto &S = *problem.lhs;
    const uint32_t M = S.rows();
    const uint32_t N = problem.rhsCols;

    PhaseResult res;
    res.engine = name();
    res.phase = problem.phase;
    res.label = problem.label;

    // CSR fiber of one dense RHS row: N values + N column indices + one
    // segment pointer. This is the format tax of a sparse-sparse engine
    // consuming a dense operand.
    const Bytes fiberBytes =
        static_cast<Bytes>(N) * (kValueBytes + kIndexBytes) + kPtrBytes;

    // --- DRAM traffic ------------------------------------------------
    Bytes sparseStream =
        roundUp(S.nnz() * kValueBytes, kDramLineBytes) +
        roundUp(S.nnz() * kIndexBytes, kDramLineBytes) +
        roundUp(static_cast<Bytes>(M) * kPtrBytes, kDramLineBytes);
    // Every non-zero re-fetches its RHS fiber: no reuse cache.
    Bytes rhsFetch = S.nnz() * roundUp(fiberBytes, kDramLineBytes);
    // Output rows leave in compressed form as well.
    Bytes outputWrite = roundUp(
        static_cast<Bytes>(M) * N * (kValueBytes + kIndexBytes) +
            static_cast<Bytes>(M) * kPtrBytes,
        kDramLineBytes);

    using mem::TrafficClass;
    res.traffic.readBytes[static_cast<size_t>(
        TrafficClass::SparseStream)] = sparseStream;
    res.traffic.readBytes[static_cast<size_t>(TrafficClass::DenseRow)] =
        rhsFetch;
    res.traffic.readBytes[static_cast<size_t>(TrafficClass::Metadata)] =
        S.nnz() * kPtrBytes; // fiber pointer lookups
    res.traffic.writeBytes[static_cast<size_t>(
        TrafficClass::OutputWrite)] = outputWrite;

    res.effectualSparseBytes = S.nnz() * (kValueBytes + kIndexBytes);
    res.fetchedSparseBytes = sparseStream;

    // --- Timing ------------------------------------------------------
    res.macOps = S.nnz() * N;
    Cycle multiply = S.nnz() * ceilDiv(N, config_.numMacs);
    // Each produced partial element passes through a sorting queue.
    Cycle merge = ceilDiv(res.macOps, config_.mergeLanes);
    Cycle compute = multiply + merge;
    Cycle memory = static_cast<Cycle>(
        static_cast<double>(res.traffic.total()) /
        config_.dram.bytesPerCycle());
    res.cycles = std::max(compute, memory) + config_.dram.accessLatency;

    // --- Energy activity ---------------------------------------------
    res.activity.macOps = res.macOps;
    res.activity.dramBytes = res.traffic.total();
    res.activity.cycles = res.cycles;
    res.activity.onChipSramBytes = config_.queueBufBytes;
    // Queue SRAM touched once per produced element (insert) plus once
    // per drained element.
    res.activity.sram.push_back(
        {config_.queueBufBytes, res.macOps * 2, false});

    // --- Functional output -------------------------------------------
    if (options.functional) {
        GROW_ASSERT(problem.rhs != nullptr,
                    "functional mode requires RHS values");
        res.output = sparse::DenseMatrix(M, N);
        for (uint32_t r = 0; r < M; ++r) {
            auto cols = S.rowCols(r);
            auto vals = S.rowVals(r);
            double *out = res.output.row(r);
            for (size_t i = 0; i < cols.size(); ++i) {
                const double *rhs = problem.rhs->row(cols[i]);
                for (uint32_t j = 0; j < N; ++j)
                    out[j] += vals[i] * rhs[j];
            }
        }
        res.hasOutput = true;
    }
    return res;
}

} // namespace grow::accel
