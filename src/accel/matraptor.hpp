/**
 * @file
 * MatRaptor baseline model (Srivastava et al., MICRO'20).
 *
 * MatRaptor is a row-wise-product sparse-*sparse* GEMM accelerator
 * (Sec. VII-H). Running it on GCN's SpDeGEMM exposes three structural
 * handicaps the paper calls out:
 *
 *  1. no RHS row cache: every LHS non-zero streams the full RHS row
 *     from DRAM, so GCN's power-law reuse is wasted;
 *  2. the RHS is consumed in a compressed (CSR-like) format even though
 *     XW/W are fully dense, paying index+pointer metadata per element;
 *  3. partial outputs flow through sort-merge queues, an overhead that
 *     a sparse-dense product does not need at all (the output row is
 *     dense and directly accumulable).
 */
#pragma once

#include "accel/accelerator.hpp"
#include "mem/dram.hpp"

namespace grow::accel {

/** MatRaptor configuration (throughput-matched to GROW). */
struct MatRaptorConfig
{
    uint32_t numMacs = 16;
    /** Sorting-queue merge lanes (per the MatRaptor design). */
    uint32_t mergeLanes = 8;
    Bytes queueBufBytes = 512 * 1024; ///< sorting-queue SRAM
    mem::DramConfig dram;
};

class MatRaptorSim : public AcceleratorSim
{
  public:
    explicit MatRaptorSim(MatRaptorConfig config);

    std::string name() const override { return "matraptor"; }

    PhaseResult run(const SpDeGemmProblem &problem,
                    const SimOptions &options) override;

    /** Row-wise product with no RHS reuse at all: every non-zero
     *  refetches its compressed fiber; sort-merge output queues. */
    mapping::EngineMapping mapping() const override;

    std::unique_ptr<AcceleratorSim> clone() const override
    {
        return std::make_unique<MatRaptorSim>(config_);
    }

  private:
    MatRaptorConfig config_;
};

} // namespace grow::accel
