#include "core/grow.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace grow::core {

GrowSim::GrowSim(GrowConfig config) : config_(std::move(config))
{
    GROW_ASSERT(config_.numPes >= 1, "need at least one PE");
}

std::vector<NodeId>
topReferencedColumns(const sparse::CsrMatrix &lhs, uint32_t top_n)
{
    std::vector<uint32_t> freq(lhs.cols(), 0);
    for (NodeId c : lhs.colIdx())
        freq[c] += 1;
    std::vector<NodeId> ids(lhs.cols());
    for (NodeId i = 0; i < lhs.cols(); ++i)
        ids[i] = i;
    // Only the top-N ranks matter; a full sort of every column is
    // wasted work when top_n << cols (the common case: 4096 CAM
    // entries vs millions of columns).
    auto cmp = [&freq](NodeId a, NodeId b) {
        if (freq[a] != freq[b])
            return freq[a] > freq[b];
        return a < b;
    };
    if (ids.size() > top_n) {
        std::partial_sort(ids.begin(), ids.begin() + top_n, ids.end(),
                          cmp);
        ids.resize(top_n);
    } else {
        std::sort(ids.begin(), ids.end(), cmp);
    }
    return ids;
}

accel::PhaseResult
GrowSim::run(const accel::SpDeGemmProblem &problem,
             const accel::SimOptions &options)
{
    GROW_ASSERT(problem.lhs != nullptr, "missing LHS");
    const auto &S = *problem.lhs;
    const uint32_t M = S.rows();
    const uint32_t N = problem.rhsCols;

    // Preprocessing artefacts: when none are supplied, fall back to one
    // equal row range per PE (so combination and unpartitioned
    // aggregation still parallelise) with a global HDN list per PE.
    partition::Clustering defaultClustering;
    {
        uint32_t chunks = std::max(1u, config_.numPes);
        defaultClustering.clusterStart.resize(chunks + 1);
        for (uint32_t c = 0; c <= chunks; ++c)
            defaultClustering.clusterStart[c] = static_cast<uint32_t>(
                static_cast<uint64_t>(M) * c / chunks);
    }
    const partition::Clustering *clustering =
        problem.clustering != nullptr ? problem.clustering
                                      : &defaultClustering;

    // Fallback global HDN list ("GROW w/o G.P"): ranked once per
    // problem and shared by every cluster, not copied per cluster.
    std::vector<NodeId> globalHdnList;
    if (problem.hdnLists == nullptr && config_.hdnCacheEnabled &&
        !problem.rhsOnChip)
        globalHdnList = topReferencedColumns(S, config_.hdn.camEntries);

    // Shared DRAM channel; bandwidth scales with PE count (Sec. VII-F).
    mem::DramConfig dramCfg = config_.dram;
    dramCfg.bandwidthGBps *= config_.numPes;
    auto dram = mem::makeDram(options.dramKind, dramCfg);

    // Interleave clusters across PEs.
    std::vector<std::vector<uint32_t>> ownership(config_.numPes);
    for (uint32_t c = 0; c < clustering->numClusters(); ++c)
        ownership[c % config_.numPes].push_back(c);

    sparse::DenseMatrix out;
    if (options.functional) {
        GROW_ASSERT(problem.rhs != nullptr,
                    "functional mode requires RHS values");
        out = sparse::DenseMatrix(M, N);
    }

    RowEngineProblem ep;
    ep.lhs = problem.lhs;
    ep.rhsCols = N;
    ep.rhsValues = problem.rhs;
    ep.rhsOnChip = problem.rhsOnChip;
    ep.clustering = clustering;
    ep.hdnLists = problem.hdnLists;
    ep.globalHdnList = globalHdnList.empty() ? nullptr : &globalHdnList;

    std::vector<std::unique_ptr<RowEngine>> engines;
    engines.reserve(config_.numPes);
    for (uint32_t pe = 0; pe < config_.numPes; ++pe) {
        engines.push_back(std::make_unique<RowEngine>(
            config_, ep, *dram, pe, std::move(ownership[pe]),
            options.functional ? &out : nullptr));
    }

    // Co-simulate: always step the engine with the smallest local clock
    // so shared-DRAM requests issue in (approximately) global order.
    while (true) {
        RowEngine *next = nullptr;
        for (auto &e : engines) {
            if (!e->rowsRemaining())
                continue;
            if (next == nullptr || e->clock() < next->clock())
                next = e.get();
        }
        if (next == nullptr)
            break;
        next->processNextRow();
    }

    Cycle end = 0;
    for (auto &e : engines)
        end = std::max(end, e->finalize());

    // --- Assemble the result -----------------------------------------
    accel::PhaseResult res;
    res.engine = name();
    res.phase = problem.phase;
    res.label = problem.label;
    res.cycles = end;
    res.traffic = dram->traffic();

    lastEngineStats_.clear();
    uint64_t iBufAccess = 0, oBufAccess = 0, wBufAccess = 0;
    uint64_t hdnDataAccess = 0, camLookups = 0;
    for (auto &e : engines) {
        const auto &s = e->stats();
        lastEngineStats_.push_back(s);
        res.macOps += s.macOps;
        res.effectualSparseBytes += s.effectualSparseBytes;
        res.fetchedSparseBytes += s.fetchedSparseBytes;
        res.cacheHits += e->cacheHits();
        res.cacheMisses += e->cacheMisses();
        auto words = [](const mem::SramBuffer &b) {
            return (b.bytesRead() + b.bytesWritten()) / kValueBytes;
        };
        iBufAccess += words(e->iBufSparse());
        oBufAccess += words(e->oBufDense());
        wBufAccess += words(e->wBuf());
        hdnDataAccess += words(e->hdnCache().dataArray());
        camLookups += e->hdnCache().camArray().accesses();
    }

    res.activity.macOps = res.macOps;
    res.activity.dramBytes = res.traffic.total();
    res.activity.cycles = res.cycles;
    res.activity.onChipSramBytes =
        config_.onChipSramBytes() * config_.numPes;
    res.activity.sram.push_back(
        {config_.iBufSparseBytes, iBufAccess, false});
    res.activity.sram.push_back(
        {config_.oBufDenseBytes, oBufAccess, false});
    if (problem.rhsOnChip) {
        res.activity.sram.push_back(
            {config_.hdn.capacityBytes, wBufAccess, false});
    } else if (config_.hdnCacheEnabled) {
        res.activity.sram.push_back(
            {config_.hdn.capacityBytes, hdnDataAccess, false});
        res.activity.sram.push_back(
            {static_cast<Bytes>(config_.hdn.camEntries) * kHdnIdBytes,
             camLookups, true});
    }

    if (options.functional) {
        res.output = std::move(out);
        res.hasOutput = true;
    }
    return res;
}

} // namespace grow::core
