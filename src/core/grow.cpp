#include "core/grow.hpp"

#include <algorithm>
#include <functional>

#include "accel/dram_arbiter.hpp"
#include "util/logging.hpp"
#include "util/work_pool.hpp"

namespace grow::core {

namespace {

/**
 * Cluster-parallel co-simulation (SimOptions::epochCycles > 0): bulk-
 * synchronous rounds over the engine lanes. Each round opens a DRAM
 * epoch, lets every lane whose clock lies inside the round's window
 * [tmin, tmin + epochCycles) process rows until it leaves the window
 * (against its private channel replica -- see accel/dram_arbiter.hpp),
 * then commits the recorded requests in canonical order. Membership,
 * the per-lane row work and the commit order are all pure functions of
 * simulation state, so the outcome is bit-identical for every thread
 * count; the worker pool only decides who computes which lane.
 */
void
runEpochRounds(std::vector<std::unique_ptr<RowEngine>> &engines,
               accel::EpochDramArbiter &arbiter,
               const mem::DramModel &channel,
               const accel::SimOptions &options)
{
    // epoch=auto window adaptation (SimOptions::epochAuto): bounds and
    // thresholds of the utilisation controller. All inputs are
    // simulated state, so the trajectory is deterministic.
    constexpr Cycle kAutoSeedWindow = 4096;
    constexpr Cycle kAutoMinWindow = 256;
    constexpr Cycle kAutoMaxWindow = 1u << 20;
    constexpr double kAutoLowUtil = 0.25;
    constexpr double kAutoHighUtil = 0.75;

    Cycle window = options.epochCycles > 0 ? options.epochCycles
                   : options.epochAuto    ? kAutoSeedWindow
                                          : 0;
    Cycle prevBusy = channel.busyCycles();
    const uint32_t threads = std::max(1u, options.threads);
    while (true) {
        bool any = false;
        Cycle tmin = 0;
        for (auto &e : engines) {
            if (!e->rowsRemaining())
                continue;
            if (!any || e->clock() < tmin)
                tmin = e->clock();
            any = true;
        }
        if (!any)
            break;
        const Cycle windowEnd = tmin + window;
        std::vector<RowEngine *> members;
        for (auto &e : engines) {
            if (e->rowsRemaining() && e->clock() < windowEnd)
                members.push_back(e.get());
        }
        arbiter.beginEpoch();
        auto step = [windowEnd](RowEngine *e) {
            while (e->rowsRemaining() && e->clock() < windowEnd)
                e->processNextRow();
        };
        if (threads <= 1 || members.size() <= 1) {
            for (auto *m : members)
                step(m);
        } else {
            std::vector<std::function<void()>> tasks;
            tasks.reserve(members.size());
            for (auto *m : members)
                tasks.emplace_back([m, step] { step(m); });
            util::rethrowFirstError(util::WorkPool::shared().runAll(
                std::move(tasks), threads));
        }
        arbiter.commitEpoch();
        if (options.epochAuto) {
            // A saturated channel means cross-lane contention is being
            // resolved too coarsely (lanes see it one epoch late):
            // halve the window. A mostly idle channel means the lanes
            // barely interact and the rounds are pure overhead: double
            // it.
            const Cycle busy = channel.busyCycles();
            const double util = static_cast<double>(busy - prevBusy) /
                                static_cast<double>(window);
            prevBusy = busy;
            if (util > kAutoHighUtil)
                window = std::max(kAutoMinWindow, window / 2);
            else if (util < kAutoLowUtil)
                window = std::min(kAutoMaxWindow, window * 2);
        }
    }
}

} // namespace

GrowSim::GrowSim(GrowConfig config) : config_(std::move(config))
{
    GROW_ASSERT(config_.numPes >= 1, "need at least one PE");
}

mapping::EngineMapping
GrowSim::mapping() const
{
    using namespace grow::mapping;
    EngineMapping em;
    em.engine = "grow";
    em.consumesPartitioning = true;
    em.dramBytesPerCycle = config_.dram.bytesPerCycle();
    em.dramAccessLatency = config_.dram.accessLatency;
    em.numPes = config_.numPes;

    // Row-stationary Gustavson nest (Fig. 8/15): a runahead window of
    // LHS rows is temporally resident, each non-zero issues one
    // RHS-row product, and the MAC array spatially spans the output
    // row.
    MappingSpec agg;
    agg.phaseClass = PhaseClass::SparseStreaming;
    agg.stationarity = Stationarity::Row;
    agg.rhsFormat = OperandFormat::DenseRows;
    agg.outFormat = OperandFormat::DenseRows;
    agg.loops = {{Dim::M, MapKind::Temporal, config_.runaheadDegree},
                 {Dim::K, MapKind::Temporal, 1},
                 {Dim::N, MapKind::Spatial, config_.numMacs}};
    agg.spatialLanes = config_.numMacs;
    agg.rowWindow = config_.runaheadDegree;
    agg.missConcurrency = std::max(1u, config_.ldnEntries);
    agg.streamChunkBytes = config_.dmaChunkBytes;
    agg.denseReuse = !config_.hdnCacheEnabled ? DenseReuse::None
                     : config_.hdnPolicy == HdnPolicy::Lru
                         ? DenseReuse::LruCache
                         : DenseReuse::PinnedCache;
    agg.pinnedIdEntries =
        config_.hdnCacheEnabled ? config_.hdn.camEntries : 0;
    agg.buffers = {{BufferRole::SparseInput, config_.iBufSparseBytes},
                   {BufferRole::Output, config_.oBufDenseBytes}};
    if (config_.hdnCacheEnabled)
        agg.buffers.push_back(
            {BufferRole::RowCache, config_.hdn.capacityBytes});

    // Combination keeps the whole weight matrix in the repurposed HDN
    // data array (Sec. V-B): same nest, dense operand fully resident.
    MappingSpec comb = agg;
    comb.phaseClass = PhaseClass::DenseResident;
    comb.denseReuse = DenseReuse::Resident;
    comb.pinnedIdEntries = 0;
    comb.buffers = {{BufferRole::SparseInput, config_.iBufSparseBytes},
                    {BufferRole::Output, config_.oBufDenseBytes},
                    {BufferRole::DenseInput, config_.hdn.capacityBytes}};

    em.combination = std::move(comb);
    em.aggregation = std::move(agg);
    mapping::validate(em);
    return em;
}

std::vector<NodeId>
topReferencedColumns(const sparse::CsrMatrix &lhs, uint32_t top_n)
{
    std::vector<uint32_t> freq(lhs.cols(), 0);
    for (NodeId c : lhs.colIdx())
        freq[c] += 1;
    std::vector<NodeId> ids(lhs.cols());
    for (NodeId i = 0; i < lhs.cols(); ++i)
        ids[i] = i;
    // Only the top-N ranks matter; a full sort of every column is
    // wasted work when top_n << cols (the common case: 4096 CAM
    // entries vs millions of columns).
    auto cmp = [&freq](NodeId a, NodeId b) {
        if (freq[a] != freq[b])
            return freq[a] > freq[b];
        return a < b;
    };
    if (ids.size() > top_n) {
        std::partial_sort(ids.begin(), ids.begin() + top_n, ids.end(),
                          cmp);
        ids.resize(top_n);
    } else {
        std::sort(ids.begin(), ids.end(), cmp);
    }
    return ids;
}

accel::PhaseResult
GrowSim::run(const accel::SpDeGemmProblem &problem,
             const accel::SimOptions &options)
{
    GROW_ASSERT(problem.lhs != nullptr, "missing LHS");
    const auto &S = *problem.lhs;
    const uint32_t M = S.rows();
    const uint32_t N = problem.rhsCols;

    // Preprocessing artefacts: when none are supplied, fall back to one
    // equal row range per PE (so combination and unpartitioned
    // aggregation still parallelise) with a global HDN list per PE.
    partition::Clustering defaultClustering;
    {
        uint32_t chunks = std::max(1u, config_.numPes);
        defaultClustering.clusterStart.resize(chunks + 1);
        for (uint32_t c = 0; c <= chunks; ++c)
            defaultClustering.clusterStart[c] = static_cast<uint32_t>(
                static_cast<uint64_t>(M) * c / chunks);
    }
    const partition::Clustering *clustering =
        problem.clustering != nullptr ? problem.clustering
                                      : &defaultClustering;

    // Fallback global HDN list ("GROW w/o G.P"): ranked once per
    // problem and shared by every cluster, not copied per cluster.
    std::vector<NodeId> globalHdnList;
    if (problem.hdnLists == nullptr && config_.hdnCacheEnabled &&
        !problem.rhsOnChip)
        globalHdnList = topReferencedColumns(S, config_.hdn.camEntries);

    // Shared DRAM channel; bandwidth scales with PE count (Sec. VII-F).
    mem::DramConfig dramCfg = config_.dram;
    dramCfg.bandwidthGBps *= config_.numPes;
    auto dram = mem::makeDram(options.dramKind, dramCfg);

    // Epoch mode: engines talk to per-lane arbiter ports instead of
    // the device itself, so lanes can co-simulate on worker threads
    // deterministically. epochCycles == 0 (default) keeps the exact
    // serial interleaving below.
    const bool epochMode = options.epochCycles > 0 || options.epochAuto;
    std::unique_ptr<accel::EpochDramArbiter> arbiter;
    if (epochMode) {
        arbiter = std::make_unique<accel::EpochDramArbiter>(
            *dram, config_.numPes);
    }

    // Interleave clusters across PEs.
    std::vector<std::vector<uint32_t>> ownership(config_.numPes);
    for (uint32_t c = 0; c < clustering->numClusters(); ++c)
        ownership[c % config_.numPes].push_back(c);

    sparse::DenseMatrix out;
    if (options.functional) {
        GROW_ASSERT(problem.rhs != nullptr,
                    "functional mode requires RHS values");
        out = sparse::DenseMatrix(M, N);
    }

    RowEngineProblem ep;
    ep.lhs = problem.lhs;
    ep.rhsCols = N;
    ep.rhsValues = problem.rhs;
    ep.rhsOnChip = problem.rhsOnChip;
    ep.clustering = clustering;
    ep.hdnLists = problem.hdnLists;
    ep.globalHdnList = globalHdnList.empty() ? nullptr : &globalHdnList;

    // Engine construction issues the cluster/weight preloads, so in
    // epoch mode it already runs inside an open epoch. Construction
    // stays serial in PE order either way (deterministic).
    std::vector<std::unique_ptr<RowEngine>> engines;
    engines.reserve(config_.numPes);
    if (epochMode)
        arbiter->beginEpoch();
    for (uint32_t pe = 0; pe < config_.numPes; ++pe) {
        mem::DramModel *channel = dram.get();
        RowEngineProblem pep = ep;
        if (epochMode) {
            accel::LaneDramPort *port = &arbiter->lane(pe);
            pep.onClusterStart = [port](uint32_t c) {
                port->setCluster(c);
            };
            channel = port;
        }
        engines.push_back(std::make_unique<RowEngine>(
            config_, pep, *channel, pe, std::move(ownership[pe]),
            options.functional ? &out : nullptr));
    }
    if (epochMode)
        arbiter->commitEpoch();

    if (epochMode) {
        runEpochRounds(engines, *arbiter, *dram, options);
    } else {
        // Co-simulate: always step the engine with the smallest local
        // clock so shared-DRAM requests issue in (approximately)
        // global order.
        while (true) {
            RowEngine *next = nullptr;
            for (auto &e : engines) {
                if (!e->rowsRemaining())
                    continue;
                if (next == nullptr || e->clock() < next->clock())
                    next = e.get();
            }
            if (next == nullptr)
                break;
            next->processNextRow();
        }
    }

    // Drain the windows (output writes). In epoch mode this is the
    // final epoch; lanes finalize independently against their
    // replicas, so the drain parallelises like any round.
    if (epochMode)
        arbiter->beginEpoch();
    Cycle end = 0;
    std::vector<Cycle> completions(engines.size(), 0);
    if (epochMode && std::max(1u, options.threads) > 1 &&
        engines.size() > 1) {
        std::vector<std::function<void()>> tasks;
        tasks.reserve(engines.size());
        for (size_t i = 0; i < engines.size(); ++i) {
            RowEngine *e = engines[i].get();
            Cycle *slot = &completions[i];
            tasks.emplace_back([e, slot] { *slot = e->finalize(); });
        }
        util::rethrowFirstError(util::WorkPool::shared().runAll(
            std::move(tasks), options.threads));
    } else {
        for (size_t i = 0; i < engines.size(); ++i)
            completions[i] = engines[i]->finalize();
    }
    for (Cycle c : completions)
        end = std::max(end, c);
    if (epochMode)
        arbiter->commitEpoch();

    // --- Assemble the result -----------------------------------------
    accel::PhaseResult res;
    res.engine = name();
    res.phase = problem.phase;
    res.label = problem.label;
    res.cycles = end;
    res.traffic = dram->traffic();

    lastEngineStats_.clear();
    uint64_t iBufAccess = 0, oBufAccess = 0, wBufAccess = 0;
    uint64_t hdnDataAccess = 0, camLookups = 0;
    for (auto &e : engines) {
        const auto &s = e->stats();
        lastEngineStats_.push_back(s);
        res.macOps += s.macOps;
        res.effectualSparseBytes += s.effectualSparseBytes;
        res.fetchedSparseBytes += s.fetchedSparseBytes;
        res.cacheHits += e->cacheHits();
        res.cacheMisses += e->cacheMisses();
        auto words = [](const mem::SramBuffer &b) {
            return (b.bytesRead() + b.bytesWritten()) / kValueBytes;
        };
        iBufAccess += words(e->iBufSparse());
        oBufAccess += words(e->oBufDense());
        wBufAccess += words(e->wBuf());
        hdnDataAccess += words(e->hdnCache().dataArray());
        camLookups += e->hdnCache().camArray().accesses();
    }

    res.activity.macOps = res.macOps;
    res.activity.dramBytes = res.traffic.total();
    res.activity.cycles = res.cycles;
    res.activity.onChipSramBytes =
        config_.onChipSramBytes() * config_.numPes;
    res.activity.sram.push_back(
        {config_.iBufSparseBytes, iBufAccess, false});
    res.activity.sram.push_back(
        {config_.oBufDenseBytes, oBufAccess, false});
    if (problem.rhsOnChip) {
        res.activity.sram.push_back(
            {config_.hdn.capacityBytes, wBufAccess, false});
    } else if (config_.hdnCacheEnabled) {
        res.activity.sram.push_back(
            {config_.hdn.capacityBytes, hdnDataAccess, false});
        res.activity.sram.push_back(
            {static_cast<Bytes>(config_.hdn.camEntries) * kHdnIdBytes,
             camLookups, true});
    }

    if (options.functional) {
        res.output = std::move(out);
        res.hasOutput = true;
    }
    return res;
}

} // namespace grow::core
