/**
 * @file
 * GROW: the row-stationary sparse-dense GEMM accelerator (Sec. V).
 *
 * GrowSim glues together the per-PE RowEngines, the shared DRAM channel
 * (bandwidth scaled with PE count, Sec. VII-F) and the preprocessing
 * artefacts (cluster layout + per-cluster HDN lists). Clusters are
 * interleaved across PEs and the engines are co-simulated in lockstep
 * on a shared memory system, so transient per-PE bandwidth imbalance is
 * captured.
 *
 * Two co-simulation schedules exist (SimOptions::epochCycles):
 * 0 (default) steps the engine with the smallest local clock against
 * the live shared DRAM -- the exact historical serial schedule; > 0
 * runs bulk-synchronous epochs in which the engine lanes execute
 * concurrently against private DRAM replicas and their requests are
 * replayed through the shared device in canonical (epoch, clusterId,
 * requestSeq) order (accel::EpochDramArbiter). Either way the result
 * is bit-identical for every SimOptions::threads value; see DESIGN.md
 * "Parallel co-simulation & DRAM arbitration".
 */
#pragma once

#include <memory>
#include <vector>

#include "accel/accelerator.hpp"
#include "core/grow_config.hpp"
#include "core/row_engine.hpp"

namespace grow::core {

class GrowSim : public accel::AcceleratorSim
{
  public:
    explicit GrowSim(GrowConfig config);

    std::string name() const override { return "grow"; }

    accel::PhaseResult run(const accel::SpDeGemmProblem &problem,
                           const accel::SimOptions &options) override;

    /** Row-stationary Gustavson dataflow with the multi-row runahead
     *  window and the pinned (or LRU / disabled) HDN row cache. */
    mapping::EngineMapping mapping() const override;

    std::unique_ptr<accel::AcceleratorSim> clone() const override
    {
        return std::make_unique<GrowSim>(config_);
    }

    const GrowConfig &config() const { return config_; }

    /** Detailed per-run engine statistics of the last run() call. */
    const std::vector<RowEngineStats> &lastEngineStats() const
    {
        return lastEngineStats_;
    }

  private:
    GrowConfig config_;
    std::vector<RowEngineStats> lastEngineStats_;
};

/**
 * Derive a fallback global HDN list: the top-N most referenced RHS rows
 * (column frequency of the LHS). Used when the caller supplies no
 * preprocessing artefacts -- the "GROW (w/o G.P)" configuration.
 */
std::vector<NodeId> topReferencedColumns(const sparse::CsrMatrix &lhs,
                                         uint32_t top_n);

} // namespace grow::core
