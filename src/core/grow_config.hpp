/**
 * @file
 * GROW accelerator configuration (Table III defaults).
 */
#pragma once

#include <cstdint>
#include <string>

#include "mem/dram.hpp"
#include "mem/hdn_cache.hpp"
#include "sim/types.hpp"

namespace grow::core {

/**
 * HDN cache replacement policy (Sec. VIII, "Pinned vs demand-based
 * cache replacement policy"). The paper's design statically pins the
 * per-cluster top-N high-degree nodes; the LRU alternative demand-fills
 * the same capacity and lets low-degree nodes evict hubs.
 */
enum class HdnPolicy { Pinned, Lru };

/** Full configuration of a GROW instance. */
struct GrowConfig
{
    /** MAC lanes per processing engine (Table III: 16 x 64-bit). */
    uint32_t numMacs = 16;

    /** Processing engines; clusters are interleaved across PEs and the
     *  DRAM bandwidth scales proportionally (Sec. VII-F). */
    uint32_t numPes = 1;

    /** Multi-row stationary window / runahead degree (Table III: 16). */
    uint32_t runaheadDegree = 16;

    /** LDN table entries M (Sec. V-D: 16). */
    uint32_t ldnEntries = 16;

    /** LHS ID table entries N (Sec. V-D: 64). */
    uint32_t lhsIdEntries = 64;

    /** I-BUF_sparse capacity (Table III: 12 KB). */
    Bytes iBufSparseBytes = 12 * 1024;

    /** O-BUF_dense capacity (Table III: 2 KB). */
    Bytes oBufDenseBytes = 2 * 1024;

    /** HDN cache + ID list (Table III: 512 KB + 12 KB / 4096 IDs). */
    mem::HdnCacheConfig hdn;

    /** Whether the HDN cache participates at all (Fig. 19 ablation). */
    bool hdnCacheEnabled = true;

    /** Replacement policy of the HDN cache (Sec. VIII study). */
    HdnPolicy hdnPolicy = HdnPolicy::Pinned;

    /** Off-chip memory (Table III: 128 GB/s). */
    mem::DramConfig dram;

    /** DMA streaming chunk for CSR/preload transfers. */
    Bytes dmaChunkBytes = 256;

    /**
     * Overlap the next cluster's HDN preload with the previous
     * cluster's tail: the control unit keeps draining the window and
     * issuing the first rows' stream fetches while the preload DMA is
     * in flight, joining it only before the first CAM lookup of the
     * new cluster. Off by default: the shipped schedules are
     * golden-locked to the blocking transition.
     */
    bool hdnPreloadOverlap = false;

    /** Total per-PE on-chip SRAM (for leakage/area accounting). */
    Bytes
    onChipSramBytes() const
    {
        return iBufSparseBytes + oBufDenseBytes + hdn.capacityBytes +
               static_cast<Bytes>(hdn.camEntries) * kHdnIdBytes;
    }
};

} // namespace grow::core
