#include "core/mac_scheduler.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace grow::core {

void
MacScheduler::addProduct(Cycle ready, uint64_t row_token, Cycle dur)
{
    GROW_ASSERT(dur > 0, "product duration must be positive");
    pending_.push(Product{ready, nextSeq_++, row_token, dur});
}

MacCompletion
MacScheduler::drainOne()
{
    GROW_ASSERT(!pending_.empty(), "drainOne() with no pending products");
    Product p = pending_.top();
    pending_.pop();
    Cycle start = std::max(macFree_, p.ready);
    macFree_ = start + p.dur;
    busyCycles_ += p.dur;
    return MacCompletion{p.rowToken, macFree_};
}

} // namespace grow::core
