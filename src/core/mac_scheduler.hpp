/**
 * @file
 * List scheduler for the MAC vector array.
 *
 * Products (one per LHS non-zero: a scalar x RHS-row vector operation,
 * Fig. 9(b)) become ready when their RHS row is available -- immediately
 * for HDN cache hits, at DRAM fill time for misses. The MAC array
 * consumes ready products in ready-order; each occupies the array for
 * ceil(F / lanes) cycles. The scheduler exposes completions so the
 * row engine can retire output rows in order (Fig. 15's head/tail
 * window).
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <queue>
#include <vector>

#include "sim/types.hpp"

namespace grow::core {

/** One completed product execution. */
struct MacCompletion
{
    uint64_t rowToken = 0; ///< engine-assigned identifier of the row
    Cycle finish = 0;
};

class MacScheduler
{
  public:
    MacScheduler() = default;

    /** Queue a product of @p dur cycles, ready at @p ready. */
    void addProduct(Cycle ready, uint64_t row_token, Cycle dur);

    /** Whether any products remain unexecuted. */
    bool idle() const { return pending_.empty(); }

    size_t pendingProducts() const { return pending_.size(); }

    /**
     * Execute the earliest-ready pending product.
     * @pre !idle()
     */
    MacCompletion drainOne();

    /** Cycle at which the MAC array next becomes free. */
    Cycle macFree() const { return macFree_; }

    /** Total cycles the array spent executing products. */
    Cycle busyCycles() const { return busyCycles_; }

  private:
    struct Product
    {
        Cycle ready;
        uint64_t seq;
        uint64_t rowToken;
        Cycle dur;
    };

    struct Later
    {
        bool
        operator()(const Product &a, const Product &b) const
        {
            if (a.ready != b.ready)
                return a.ready > b.ready;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Product, std::vector<Product>, Later> pending_;
    uint64_t nextSeq_ = 0;
    Cycle macFree_ = 0;
    Cycle busyCycles_ = 0;
};

} // namespace grow::core
