#include "core/row_engine.hpp"

#include <algorithm>

#include "util/bitutil.hpp"
#include "util/logging.hpp"

namespace grow::core {

namespace {

/** Widely separated address-space regions, offset per PE. */
constexpr uint64_t kRegionStride = 1ULL << 40;

mem::HdnCacheConfig
cacheConfigFor(const GrowConfig &config, const RowEngineProblem &problem)
{
    mem::HdnCacheConfig c = config.hdn;
    c.rowBytes = static_cast<Bytes>(problem.rhsCols) * kValueBytes;
    return c;
}

} // namespace

RowEngine::StreamExtent
RowEngine::streamExtent(const RowEngineProblem &problem,
                        const std::vector<uint32_t> &cluster_ids)
{
    GROW_ASSERT(problem.lhs != nullptr, "missing LHS matrix");
    GROW_ASSERT(problem.clustering != nullptr, "missing clustering");
    StreamExtent e;
    for (uint32_t c : cluster_ids) {
        for (NodeId r = problem.clustering->clusterStart[c];
             r < problem.clustering->clusterStart[c + 1]; ++r) {
            Bytes b = problem.lhs->rowNnz(r) * (kValueBytes + kIndexBytes) +
                      kPtrBytes;
            e.totalBytes += b;
            e.maxRowBytes = std::max(e.maxRowBytes, b);
        }
    }
    return e;
}

size_t
RowEngine::streamChunkBound(const GrowConfig &config, Bytes max_row_bytes)
{
    // ensureStreamed keeps chunks covering at most the prefetch window
    // (I-BUF capacity) plus the row being demanded plus one chunk of
    // slack. Full chunks are dmaChunkBytes; at most one partial chunk
    // survives per processed row, and every row advances the demand
    // pointer by >= kPtrBytes, so partials are bounded by span/kPtrBytes.
    const Bytes chunk = std::max<Bytes>(1, config.dmaChunkBytes);
    const Bytes span = config.iBufSparseBytes + max_row_bytes + chunk;
    return static_cast<size_t>(ceilDiv(span, chunk) +
                               ceilDiv(span, kPtrBytes) + 4);
}

size_t
RowEngine::arenaBytes(const GrowConfig &config, Bytes max_row_bytes)
{
    const size_t windowSlots =
        util::ceilPow2(std::max<uint32_t>(1, config.runaheadDegree));
    const size_t chunkSlots =
        util::ceilPow2(streamChunkBound(config, max_row_bytes));
    return windowSlots * sizeof(Slot) + chunkSlots * sizeof(StreamChunk) +
           2 * alignof(std::max_align_t);
}

RowEngine::RowEngine(const GrowConfig &config,
                     const RowEngineProblem &problem, mem::DramModel &dram,
                     uint32_t pe_id, std::vector<uint32_t> cluster_ids,
                     sparse::DenseMatrix *out)
    : config_(config), problem_(problem), dram_(dram), out_(out),
      rhsBase_(0),
      streamBase_(kRegionStride * (4 * static_cast<uint64_t>(pe_id) + 1)),
      outBase_(kRegionStride * (4 * static_cast<uint64_t>(pe_id) + 2)),
      preloadBase_(kRegionStride * (4 * static_cast<uint64_t>(pe_id) + 3)),
      clusterIds_(std::move(cluster_ids)),
      durPerProduct_(std::max<Cycle>(
          1, ceilDiv(problem.rhsCols, config.numMacs))),
      extent_(streamExtent(problem, clusterIds_)),
      arena_(arenaBytes(config, extent_.maxRowBytes)),
      window_(arena_, std::max<uint32_t>(1, config.runaheadDegree)),
      streamChunks_(arena_,
                    streamChunkBound(config, extent_.maxRowBytes)),
      ldnMap_(config.ldnEntries ? config.ldnEntries : 1, kInvalidNode),
      hdnCache_(cacheConfigFor(config, problem), problem.lhs->cols()),
      lruCache_(config.hdn.capacityBytes,
                std::max<Bytes>(1, static_cast<Bytes>(problem.rhsCols) *
                                       kValueBytes)),
      iBufSparse_("iBufSparse", config.iBufSparseBytes),
      oBufDense_("oBufDense", config.oBufDenseBytes),
      wBuf_("wBuf", config.hdn.capacityBytes)
{
    GROW_ASSERT(config_.runaheadDegree >= 1,
                "runahead degree must be >= 1");
    if (clusterIds_.empty()) {
        finishedIssue_ = true;
    } else {
        startNextCluster();
    }
    // Combination keeps the whole weight matrix on-chip: preload once.
    if (problem_.rhsOnChip) {
        Bytes wBytes = static_cast<Bytes>(problem_.lhs->cols()) *
                       problem_.rhsCols * kValueBytes;
        Cycle done = dram_.read(clock_, preloadBase_, wBytes,
                                mem::TrafficClass::HdnPreload);
        clock_ = std::max(clock_, done);
        wBuf_.write(wBytes);
    }
}

Bytes
RowEngine::rowCsrBytes(NodeId row) const
{
    return problem_.lhs->rowNnz(row) * (kValueBytes + kIndexBytes) +
           kPtrBytes;
}

uint64_t
RowEngine::rhsRowAddr(NodeId k) const
{
    return rhsBase_ +
           static_cast<uint64_t>(k) * problem_.rhsCols * kValueBytes;
}

void
RowEngine::startNextCluster()
{
    if (clusterCursor_ >= clusterIds_.size()) {
        finishedIssue_ = true;
        return;
    }
    uint32_t c = clusterIds_[clusterCursor_++];
    rowCursor_ = problem_.clustering->clusterStart[c];
    clusterEndRow_ = problem_.clustering->clusterStart[c + 1];
    stats_.clustersProcessed += 1;
    if (problem_.onClusterStart)
        problem_.onClusterStart(c);

    // A demand-filled LRU cache does not preload anything.
    if (config_.hdnPolicy == HdnPolicy::Lru)
        return;

    const std::vector<NodeId> *clusterIdsList = nullptr;
    if (problem_.hdnLists != nullptr && c < problem_.hdnLists->size())
        clusterIdsList = &(*problem_.hdnLists)[c];
    else if (problem_.globalHdnList != nullptr)
        clusterIdsList = problem_.globalHdnList;

    if (!problem_.rhsOnChip && config_.hdnCacheEnabled &&
        clusterIdsList != nullptr) {
        const auto &ids = *clusterIdsList;
        uint32_t pinned = hdnCache_.loadCluster(ids);
        stats_.hdnRowsPinned += pinned;
        Bytes preload = static_cast<Bytes>(ids.size()) * kHdnIdBytes +
                        static_cast<Bytes>(pinned) *
                            hdnCache_.config().rowBytes;
        if (preload > 0) {
            Cycle done = dram_.read(clock_, preloadBase_, preload,
                                    mem::TrafficClass::HdnPreload);
            if (config_.hdnPreloadOverlap) {
                // The DMA is outstanding; the control unit keeps
                // running and joins it before the first CAM lookup of
                // this cluster (processNextRow).
                preloadReady_ = std::max(preloadReady_, done);
                preloadPending_ = true;
            } else {
                clock_ = std::max(clock_, done);
            }
        }
    }
}

Cycle
RowEngine::ensureStreamed(Bytes up_to)
{
    // Prefetch one I-BUF_sparse worth of stream beyond the request, but
    // never past the engine's total demand.
    Bytes target =
        std::min(up_to + config_.iBufSparseBytes, extent_.totalBytes);
    target = std::max(target, up_to);
    while (streamIssued_ < target) {
        Bytes chunk = std::min<Bytes>(config_.dmaChunkBytes,
                                      target - streamIssued_);
        Cycle done =
            dram_.read(clock_, streamBase_ + streamIssued_, chunk,
                       mem::TrafficClass::SparseStream);
        streamIssued_ += chunk;
        stats_.fetchedSparseBytes += roundUp(chunk, kDramLineBytes);
        streamChunks_.push_back(StreamChunk{streamIssued_, done});
        iBufSparse_.write(chunk);
    }
    // Completion of the chunk containing byte up_to-1.
    while (streamChunks_.size() > 1 && streamChunks_.front().upTo < up_to)
        streamChunks_.pop_front();
    return streamChunks_.empty() ? clock_ : streamChunks_.front().done;
}

void
RowEngine::freeExpiredLdn()
{
    while (!ldnHeap_.empty() && ldnHeap_.top().first <= clock_) {
        auto [when, node] = ldnHeap_.top();
        ldnHeap_.pop();
        const Cycle *entry = ldnMap_.find(node);
        if (entry != nullptr && *entry == when) {
            ldnMap_.erase(node);
            GROW_ASSERT(ldnLive_ > 0, "LDN occupancy underflow");
            --ldnLive_;
        }
    }
}

void
RowEngine::freeExpiredLhs()
{
    while (!lhsHeap_.empty() && lhsHeap_.top() <= clock_) {
        lhsHeap_.pop();
        GROW_ASSERT(lhsLive_ > 0, "LHS ID occupancy underflow");
        --lhsLive_;
    }
}

Cycle
RowEngine::missFetch(NodeId k)
{
    freeExpiredLdn();
    freeExpiredLhs();

    // LHS ID table: one entry per parked product.
    if (lhsLive_ >= config_.lhsIdEntries) {
        GROW_ASSERT(!lhsHeap_.empty(), "full LHS ID table with no heap");
        clock_ = std::max(clock_, lhsHeap_.top());
        stats_.lhsIdStalls += 1;
        freeExpiredLhs();
        freeExpiredLdn();
    }

    Cycle completion;
    const Cycle *entry = ldnMap_.find(k);
    if (entry != nullptr && *entry > clock_) {
        // Another product already fetches this row; share the fill.
        completion = *entry;
    } else {
        if (entry != nullptr)
            ldnMap_.erase(k); // expired entry not yet reaped
        if (ldnLive_ >= config_.ldnEntries) {
            stats_.ldnStalls += 1;
            // Wait for the earliest live entry to return.
            while (ldnLive_ >= config_.ldnEntries) {
                GROW_ASSERT(!ldnHeap_.empty(),
                            "full LDN table with empty heap");
                auto [when, node] = ldnHeap_.top();
                ldnHeap_.pop();
                const Cycle *live = ldnMap_.find(node);
                if (live != nullptr && *live == when) {
                    clock_ = std::max(clock_, when);
                    ldnMap_.erase(node);
                    --ldnLive_;
                }
            }
            freeExpiredLhs();
        }
        Bytes rowBytes =
            static_cast<Bytes>(problem_.rhsCols) * kValueBytes;
        completion = dram_.read(clock_, rhsRowAddr(k), rowBytes,
                                mem::TrafficClass::DenseRow);
        ldnMap_.insert(k, completion);
        ldnHeap_.emplace(completion, k);
        ++ldnLive_;
    }
    lhsHeap_.push(completion);
    ++lhsLive_;
    return completion;
}

RowEngine::Slot &
RowEngine::findSlot(uint64_t token)
{
    // Tokens are assigned sequentially at push and the window only
    // retires from the front, so the slot index is just the offset from
    // the oldest token -- O(1), no scan.
    GROW_ASSERT(!window_.empty(), "slot lookup in empty window");
    const uint64_t base = window_.front().token;
    GROW_ASSERT(token >= base && token - base < window_.size(),
                "MAC completion for unknown row token");
    Slot &slot = window_[static_cast<size_t>(token - base)];
    GROW_ASSERT(slot.token == token, "window token sequence broken");
    return slot;
}

void
RowEngine::retireFront()
{
    GROW_ASSERT(!window_.empty(), "retire with empty window");
    while (window_.front().pending > 0) {
        MacCompletion comp = mac_.drainOne();
        Slot &slot = findSlot(comp.rowToken);
        GROW_ASSERT(slot.pending > 0, "pending underflow");
        slot.pending -= 1;
        slot.lastFinish = std::max(slot.lastFinish, comp.finish);
    }
    Slot front = window_.front();
    window_.pop_front();
    GROW_ASSERT(front.controlDone, "retiring a row still under control");

    const Bytes outBytes =
        static_cast<Bytes>(problem_.rhsCols) * kValueBytes;
    oBufDense_.read(outBytes);
    Cycle written = dram_.write(
        front.lastFinish,
        outBase_ + static_cast<uint64_t>(front.row) * outBytes, outBytes,
        mem::TrafficClass::OutputWrite);
    maxCompletion_ = std::max({maxCompletion_, front.lastFinish, written});
}

void
RowEngine::processNextRow()
{
    if (finishedIssue_)
        return;
    while (rowCursor_ >= clusterEndRow_) {
        startNextCluster();
        if (finishedIssue_)
            return;
    }
    const NodeId row = rowCursor_++;

    // Window admission (in-order retire, Fig. 15).
    while (window_.size() >= config_.runaheadDegree) {
        stats_.windowStalls += 1;
        retireFront();
    }

    streamNeeded_ += rowCsrBytes(row);
    Cycle rowReady = ensureStreamed(streamNeeded_);
    clock_ = std::max(clock_, rowReady);

    // Join an outstanding HDN preload before this cluster's first CAM
    // lookup (hdnPreloadOverlap; no-op otherwise).
    if (preloadPending_) {
        clock_ = std::max(clock_, preloadReady_);
        preloadPending_ = false;
    }

    window_.push_back(Slot{row, nextToken_++, 0, clock_, false});
    const uint64_t token = window_.back().token;

    auto cols = problem_.lhs->rowCols(row);
    auto vals = problem_.lhs->rowVals(row);
    const Bytes rhsRowBytes =
        static_cast<Bytes>(problem_.rhsCols) * kValueBytes;
    iBufSparse_.read(cols.size() * (kValueBytes + kIndexBytes));

    for (size_t i = 0; i < cols.size(); ++i) {
        const NodeId k = cols[i];
        clock_ += 1; // HDN ID list CAM: one lookup per cycle
        stats_.camLookups += 1;

        Cycle ready;
        if (problem_.rhsOnChip) {
            wBuf_.read(rhsRowBytes);
            ready = clock_;
        } else if (config_.hdnCacheEnabled &&
                   config_.hdnPolicy == HdnPolicy::Lru) {
            // Sec. VIII alternative: demand-filled LRU over the same
            // capacity. Hubs compete with one-touch cold rows.
            if (lruCache_.lookup(k)) {
                ++lruHits_;
                hdnCache_.dataArray().read(rhsRowBytes);
                ready = clock_;
            } else {
                ++lruMisses_;
                ready = missFetch(k);
                lruCache_.insert(k);
                hdnCache_.dataArray().write(rhsRowBytes);
            }
        } else if (config_.hdnCacheEnabled && hdnCache_.lookup(k)) {
            ready = clock_;
        } else {
            ready = missFetch(k);
        }
        mac_.addProduct(ready, token, durPerProduct_);
        window_.back().pending += 1;
        oBufDense_.write(rhsRowBytes);
        stats_.products += 1;
        stats_.macOps += problem_.rhsCols;

        if (out_ != nullptr) {
            GROW_ASSERT(problem_.rhsValues != nullptr,
                        "functional mode requires RHS values");
            double *acc = out_->row(row);
            const double *rhs = problem_.rhsValues->row(k);
            const double v = vals[i];
            for (uint32_t j = 0; j < problem_.rhsCols; ++j)
                acc[j] += v * rhs[j];
        }
    }
    window_.back().controlDone = true;
    stats_.rowsProcessed += 1;
    stats_.effectualSparseBytes += rowCsrBytes(row);
}

Cycle
RowEngine::finalize()
{
    while (!window_.empty())
        retireFront();
    finishedIssue_ = true;
    // A preload issued by a trailing row-less cluster still has to
    // complete before the engine is done.
    if (preloadPending_) {
        clock_ = std::max(clock_, preloadReady_);
        preloadPending_ = false;
    }
    return std::max({clock_, maxCompletion_, mac_.macFree()});
}

uint64_t
RowEngine::cacheHits() const
{
    return config_.hdnPolicy == HdnPolicy::Lru ? lruHits_
                                               : hdnCache_.hits();
}

uint64_t
RowEngine::cacheMisses() const
{
    return config_.hdnPolicy == HdnPolicy::Lru ? lruMisses_
                                               : hdnCache_.misses();
}

} // namespace grow::core
