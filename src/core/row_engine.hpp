/**
 * @file
 * The per-PE row-stationary execution engine (Sec. V-B/V-D).
 *
 * One RowEngine models one GROW processing engine walking its share of
 * the LHS matrix rows. For every row it:
 *
 *  1. waits for the CSR stream (DMA-prefetched through I-BUF_sparse) to
 *     deliver the row's non-zeros;
 *  2. performs one HDN ID list CAM lookup per non-zero (1/cycle);
 *  3. on a hit, reads the RHS row from the HDN cache and queues the
 *     scalar-x-vector product on the MAC array;
 *  4. on a miss, allocates an LDN table entry (or joins an in-flight
 *     one), allocates an LHS ID table entry, and issues the DRAM fetch;
 *     the product becomes MAC-ready when the fill returns;
 *  5. runs ahead to subsequent rows subject to the multi-row window
 *     (runahead degree), retiring output rows in order through
 *     O-BUF_dense (Fig. 15's head/tail discipline).
 *
 * Control stalls only when a hardware table is exhausted: the LDN table
 * (outstanding distinct misses), the LHS ID table (outstanding parked
 * products) or the row window itself -- exactly the structural hazards
 * of Fig. 16.
 *
 * Hot-loop layout: the per-row bookkeeping (multi-row window, stream
 * chunk FIFO, LDN table) lives in fixed-capacity ring buffers and an
 * open-addressing flat map carved from one per-engine arena
 * (util/arena.hpp, util/flat_map.hpp). Their capacities are derived
 * from the hardware configuration, so they never grow; the swap from
 * std::deque/std::unordered_map is bit-identical in simulated results
 * and substantially faster in host wall-clock (bench_kernels
 * BM_LdnTable*, BM_RowEngineAggregation).
 *
 * With GrowConfig::hdnPreloadOverlap the engine issues the next
 * cluster's HDN preload without stalling its control clock: the
 * preload DMA overlaps the previous cluster's tail (window drain +
 * first-row stream fetch) and the control unit joins it only before
 * the first CAM lookup of the new cluster. Off (the default) the
 * engine blocks at the transition, reproducing the golden-locked
 * historical schedules exactly.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "core/grow_config.hpp"
#include "core/mac_scheduler.hpp"
#include "mem/dram.hpp"
#include "mem/hdn_cache.hpp"
#include "mem/lru_cache.hpp"
#include "mem/sram.hpp"
#include "partition/relabel.hpp"
#include "sim/types.hpp"
#include "sparse/csr_matrix.hpp"
#include "sparse/dense_matrix.hpp"
#include "util/arena.hpp"
#include "util/flat_map.hpp"

namespace grow::core {

/** Counters exported by one engine after a phase. */
struct RowEngineStats
{
    uint64_t rowsProcessed = 0;
    uint64_t products = 0;
    uint64_t macOps = 0;
    uint64_t camLookups = 0;
    uint64_t ldnStalls = 0;
    uint64_t lhsIdStalls = 0;
    uint64_t windowStalls = 0;
    uint64_t clustersProcessed = 0;
    uint64_t hdnRowsPinned = 0;
    Bytes effectualSparseBytes = 0;
    Bytes fetchedSparseBytes = 0;
};

/** Immutable description of the phase an engine executes. */
struct RowEngineProblem
{
    const sparse::CsrMatrix *lhs = nullptr;
    uint32_t rhsCols = 0;
    const sparse::DenseMatrix *rhsValues = nullptr; ///< functional only
    /** RHS resident on-chip for the whole phase (combination). */
    bool rhsOnChip = false;
    const partition::Clustering *clustering = nullptr;
    const std::vector<std::vector<NodeId>> *hdnLists = nullptr;
    /**
     * Shared fallback HDN list preloaded by every cluster that has no
     * per-cluster entry in hdnLists ("GROW w/o G.P": one global top-N
     * list, computed once per problem instead of copied per cluster).
     */
    const std::vector<NodeId> *globalHdnList = nullptr;
    /**
     * Invoked with the cluster id whenever the engine transitions to
     * a new cluster, before any memory request of that cluster is
     * issued. The epoch arbiter wires this to LaneDramPort::setCluster
     * so requests carry their canonical (epoch, clusterId, seq) key;
     * unset (the serial path) it costs nothing.
     */
    std::function<void(uint32_t)> onClusterStart;
};

class RowEngine
{
  public:
    /**
     * @param pe_id       engine index (address-space separation)
     * @param cluster_ids clusters owned by this engine, in order
     * @param out         functional output (nullable; rows are disjoint
     *                    across engines)
     */
    RowEngine(const GrowConfig &config, const RowEngineProblem &problem,
              mem::DramModel &dram, uint32_t pe_id,
              std::vector<uint32_t> cluster_ids,
              sparse::DenseMatrix *out);

    /** Whether all owned rows have been issued. */
    bool rowsRemaining() const { return !finishedIssue_; }

    /** Local control-unit clock. */
    Cycle clock() const { return clock_; }

    /** Process one row (handles cluster transitions and preloads). */
    void processNextRow();

    /** Retire everything; returns the engine's completion cycle. */
    Cycle finalize();

    const RowEngineStats &stats() const { return stats_; }
    const mem::HdnCache &hdnCache() const { return hdnCache_; }
    mem::HdnCache &hdnCache() { return hdnCache_; }
    uint64_t cacheHits() const;
    uint64_t cacheMisses() const;
    const mem::SramBuffer &iBufSparse() const { return iBufSparse_; }
    const mem::SramBuffer &oBufDense() const { return oBufDense_; }
    const mem::SramBuffer &wBuf() const { return wBuf_; }

  private:
    /** One in-flight output row of the multi-row window. */
    struct Slot
    {
        NodeId row;
        uint64_t token;
        uint32_t pending = 0;
        Cycle lastFinish = 0;
        bool controlDone = false;
    };

    /** One in-flight DMA stream chunk: bytes covered + fill time. */
    struct StreamChunk
    {
        Bytes upTo;
        Cycle done;
    };

    /** Stream totals scanned once over the owned clusters. */
    struct StreamExtent
    {
        Bytes totalBytes = 0;
        Bytes maxRowBytes = 0;
    };
    static StreamExtent
    streamExtent(const RowEngineProblem &problem,
                 const std::vector<uint32_t> &cluster_ids);

    /** Hardware-derived bound on in-flight stream chunks (see .cpp). */
    static size_t streamChunkBound(const GrowConfig &config,
                                   Bytes max_row_bytes);

    /** Arena capacity covering every table carved below. */
    static size_t arenaBytes(const GrowConfig &config,
                             Bytes max_row_bytes);

    void startNextCluster();
    void retireFront();
    Cycle ensureStreamed(Bytes up_to);
    Cycle missFetch(NodeId k);
    void freeExpiredLdn();
    void freeExpiredLhs();
    Slot &findSlot(uint64_t token);

    Bytes rowCsrBytes(NodeId row) const;
    uint64_t rhsRowAddr(NodeId k) const;

    const GrowConfig &config_;
    RowEngineProblem problem_;
    mem::DramModel &dram_;
    sparse::DenseMatrix *out_;

    // Address-space bases (distinct per PE for the banked DRAM model).
    uint64_t rhsBase_;
    uint64_t streamBase_;
    uint64_t outBase_;
    uint64_t preloadBase_;

    std::vector<uint32_t> clusterIds_;
    size_t clusterCursor_ = 0;
    NodeId rowCursor_ = 0;
    NodeId clusterEndRow_ = 0;
    bool finishedIssue_ = false;

    Cycle clock_ = 0;
    Cycle maxCompletion_ = 0;
    Cycle durPerProduct_;

    // In-flight HDN preload (hdnPreloadOverlap only): the DMA is
    // outstanding and the control unit joins it before the first CAM
    // lookup of the new cluster.
    Cycle preloadReady_ = 0;
    bool preloadPending_ = false;

    // Sparse stream prefetch totals (extent_ scanned at construction).
    StreamExtent extent_;
    Bytes streamNeeded_ = 0;
    Bytes streamIssued_ = 0;

    // Per-engine arena backing the hot-loop tables below.
    util::Arena arena_;

    // Multi-row stationary window (capacity = runahead degree).
    util::RingBuffer<Slot> window_;
    uint64_t nextToken_ = 0;
    MacScheduler mac_;

    // Stream chunk FIFO (capacity derived from I-BUF / DMA chunk).
    util::RingBuffer<StreamChunk> streamChunks_;

    // LDN table (outstanding distinct RHS-row misses; occupancy is
    // bounded by ldnEntries -- see missFetch).
    util::FlatMap<NodeId, Cycle> ldnMap_;
    std::priority_queue<std::pair<Cycle, NodeId>,
                        std::vector<std::pair<Cycle, NodeId>>,
                        std::greater<>> ldnHeap_;
    uint32_t ldnLive_ = 0;

    // LHS ID table (outstanding parked products).
    std::priority_queue<Cycle, std::vector<Cycle>, std::greater<>>
        lhsHeap_;
    uint32_t lhsLive_ = 0;

    mem::HdnCache hdnCache_;
    mem::LruRowCache lruCache_; ///< used when hdnPolicy == Lru
    uint64_t lruHits_ = 0;
    uint64_t lruMisses_ = 0;
    mem::SramBuffer iBufSparse_;
    mem::SramBuffer oBufDense_;
    mem::SramBuffer wBuf_; ///< on-chip W during combination

    RowEngineStats stats_;
};

} // namespace grow::core
