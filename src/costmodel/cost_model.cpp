#include "costmodel/cost_model.hpp"

#include <algorithm>

#include "sparse/tiling.hpp"
#include "util/bitutil.hpp"
#include "util/logging.hpp"

namespace grow::costmodel {

namespace {

using mapping::BufferRole;
using mapping::DenseReuse;
using mapping::EngineMapping;
using mapping::MappingSpec;
using mapping::OperandFormat;

Bytes
lineUp(Bytes b)
{
    return roundUp(b, kDramLineBytes);
}

/** Largest power of two <= x (x >= 1). */
uint32_t
pow2Floor(uint32_t x)
{
    uint32_t p = 1;
    while (p * 2 <= x)
        p *= 2;
    return p;
}

/** CSR fiber of one dense RHS row in compressed form. */
Bytes
fiberBytes(uint32_t n)
{
    return static_cast<Bytes>(n) * (kValueBytes + kIndexBytes) + kPtrBytes;
}

/**
 * DRAM bytes of a stream of @p extent payload bytes issued in DMA
 * chunks of @p chunk bytes, each request line-rounded (the row
 * engine's ensureStreamed); chunk == 0 is plain line-granular.
 */
Bytes
chunkedStreamBytes(Bytes extent, Bytes chunk)
{
    if (chunk == 0)
        return lineUp(extent);
    const Bytes full = extent / chunk;
    const Bytes rest = extent % chunk;
    return full * lineUp(chunk) + (rest != 0 ? lineUp(rest) : 0);
}

/**
 * Non-zeros of the most loaded PE under the engine's cluster
 * interleaving: clusters round-robin over PEs when the phase carries a
 * clustering, else the engine's fallback of numPes equal row chunks.
 */
uint64_t
maxPeNnz(const OperandStats &s, uint32_t num_pes)
{
    if (num_pes <= 1)
        return s.nnz;
    if (!s.clusterNnz.empty()) {
        std::vector<uint64_t> pe(num_pes, 0);
        for (size_t c = 0; c < s.clusterNnz.size(); ++c)
            pe[c % num_pes] += s.clusterNnz[c];
        return *std::max_element(pe.begin(), pe.end());
    }
    const auto &ptr = s.lhs->rowPtr();
    uint64_t best = 0;
    for (uint32_t c = 0; c < num_pes; ++c) {
        const uint64_t lo = s.rows * c / num_pes;
        const uint64_t hi = s.rows * (c + 1) / num_pes;
        best = std::max(best, ptr[hi] - ptr[lo]);
    }
    return best;
}

/**
 * Replay of the tiled dataflow's runtime tiling search (GCNAX
 * chooseTiling) from mapping parameters alone, then the simulator's
 * own traffic/compute formulas -- the estimate matches the simulator
 * exactly by construction.
 */
PhaseEstimate
estimateTiled(const MappingSpec &spec, const EngineMapping &em,
              const OperandStats &s, uint32_t n)
{
    const Bytes denseBuf = spec.bufferCapacity(BufferRole::DenseInput);
    const Bytes sparseBuf = spec.bufferCapacity(BufferRole::SparseInput);
    const Bytes outBuf = spec.bufferCapacity(BufferRole::Output);
    const uint32_t minTileK = std::max<uint32_t>(1, spec.minTileK);
    const uint32_t minTileM = std::max<uint32_t>(1, spec.minTileM);
    const uint32_t M = static_cast<uint32_t>(s.rows);
    const uint32_t K = static_cast<uint32_t>(s.cols);

    const uint32_t tn = std::min<uint32_t>(
        n, std::max<uint32_t>(
               1, static_cast<uint32_t>(denseBuf /
                                        (minTileK * kValueBytes))));

    auto tileTraffic = [&](const sparse::TileGridStats &st, uint32_t tk,
                           Bytes &sparse_fetch, Bytes &dense_fetch) {
        sparse_fetch = 0;
        dense_fetch = 0;
        for (uint32_t m = 0; m < st.rowTiles(); ++m) {
            for (uint32_t k = 0; k < st.colTiles(); ++k) {
                const uint64_t nnz = st.nnzAt(m, k);
                if (nnz == 0)
                    continue;
                sparse_fetch += sparse::TileFetchModel::fetchedBytes(nnz);
                const uint64_t kExtent = std::min<uint64_t>(
                    tk, K - static_cast<uint64_t>(k) * tk);
                dense_fetch +=
                    tn * kValueBytes >= kDramLineBytes || tn == n
                        ? lineUp(kExtent * tn * kValueBytes)
                        : kExtent * lineUp(tn * kValueBytes);
            }
        }
    };

    // Traffic-driven tk search, identical bounds and fallback.
    uint32_t bestTm = 0;
    uint32_t bestTk = 0;
    Bytes bestTraffic = 0;
    sparse::TileGridStats bestStats;
    for (uint32_t tk = minTileK;; tk *= 2) {
        if (static_cast<Bytes>(tk) * tn * kValueBytes > denseBuf)
            break;
        const uint64_t tmCap =
            sparseBuf /
            (static_cast<uint64_t>(tk) * (kValueBytes + kIndexBytes));
        const uint64_t tmOut =
            outBuf / (static_cast<uint64_t>(tn) * kValueBytes);
        uint32_t tm = static_cast<uint32_t>(
            std::min<uint64_t>({tmCap, tmOut, M == 0 ? 1 : M}));
        if (tm < minTileM) {
            if (tk == minTileK && bestTm == 0)
                tm = minTileM;
            else
                break;
        }
        tm = pow2Floor(tm);

        auto st = sparse::TileGridStats::compute(*s.lhs,
                                                 sparse::TileShape{tm, tk});
        Bytes sparseFetch = 0;
        Bytes denseFetch = 0;
        tileTraffic(st, tk, sparseFetch, denseFetch);
        const uint32_t trip = static_cast<uint32_t>(ceilDiv(n, tn));
        const Bytes traffic =
            (sparseFetch + denseFetch) * trip +
            lineUp(static_cast<Bytes>(M) * n * kValueBytes);
        if (bestTm == 0 || traffic < bestTraffic) {
            bestTm = tm;
            bestTk = tk;
            bestTraffic = traffic;
            bestStats = std::move(st);
        }
        if (tk >= K)
            break;
    }
    GROW_ASSERT(bestTm > 0, "no feasible tiling for tiled mapping");
    (void)bestTk;

    const uint32_t trip = static_cast<uint32_t>(ceilDiv(n, tn));
    PhaseEstimate e;
    e.trafficBytes = bestTraffic;
    e.macOps = s.nnz * n;
    e.computeBound =
        s.nnz * ceilDiv(tn, spec.spatialLanes) * trip +
        bestStats.nonEmptyTiles() * spec.tileOverheadCycles * trip;
    e.memoryBound = static_cast<Cycle>(
        static_cast<double>(e.trafficBytes) /
        (em.dramBytesPerCycle * em.numPes));
    e.cycles = std::max(e.computeBound, e.memoryBound) +
               em.dramAccessLatency;
    return e;
}

PhaseEstimate
estimatePhase(const MappingSpec &spec, const EngineMapping &em,
              const OperandStats &s, uint32_t n)
{
    if (spec.denseReuse == DenseReuse::Tiled)
        return estimateTiled(spec, em, s, n);

    PhaseEstimate e;
    const double bpcTotal = em.dramBytesPerCycle * em.numPes;
    const Bytes rowBytes = static_cast<Bytes>(n) * kValueBytes;
    const Bytes rhsRowSize = spec.rhsFormat == OperandFormat::DenseRows
                                 ? rowBytes
                                 : fiberBytes(n);
    // Chunked DMA streaming marks the event-driven row engine; the
    // closed-form engines read each stream component at line
    // granularity in one go.
    const bool rowEngine = spec.streamChunkBytes != 0;

    // --- DRAM traffic -------------------------------------------------
    const Bytes sparseStream =
        rowEngine
            ? chunkedStreamBytes(s.csrStreamBytes, spec.streamChunkBytes)
            : lineUp(s.nnz * kValueBytes) + lineUp(s.nnz * kIndexBytes) +
                  lineUp(s.rows * kPtrBytes);

    Bytes denseFetch = 0;
    Bytes preload = 0;
    Bytes metadata = 0;
    uint64_t hits = 0;
    uint64_t missCount = 0; ///< dense-row DRAM fetches (not all are
                            ///< reported cache misses)
    switch (spec.denseReuse) {
      case DenseReuse::Resident:
        // Whole dense operand preloaded per PE before compute.
        preload = static_cast<Bytes>(em.numPes) *
                  lineUp(s.cols * rowBytes);
        break;
      case DenseReuse::PinnedCache: {
        const Bytes cap = spec.bufferCapacity(BufferRole::RowCache);
        const uint64_t resident = std::min<uint64_t>(
            rowBytes ? cap / rowBytes : 0, spec.pinnedIdEntries);
        hits = s.pinnedHits(resident);
        missCount = s.nnz - hits;
        denseFetch = missCount * lineUp(rowBytes);
        e.cacheHits = hits;
        e.cacheMisses = missCount;
        if (!s.clusterListLens.empty()) {
            for (uint32_t len : s.clusterListLens) {
                const uint64_t pinned = std::min<uint64_t>(len, resident);
                preload += lineUp(static_cast<Bytes>(len) * kHdnIdBytes +
                                  pinned * rowBytes);
            }
        } else {
            // Fallback global list, preloaded once per PE per cluster
            // chunk (one chunk per PE in the default layout).
            const uint64_t len =
                std::min<uint64_t>(spec.pinnedIdEntries, s.cols);
            const uint64_t pinned = std::min<uint64_t>(len, resident);
            preload = static_cast<Bytes>(em.numPes) *
                      lineUp(len * kHdnIdBytes + pinned * rowBytes);
        }
        break;
      }
      case DenseReuse::LruCache: {
        const Bytes cap = spec.bufferCapacity(BufferRole::RowCache);
        const uint64_t entries =
            std::max<uint64_t>(1, rhsRowSize ? cap / rhsRowSize : 1);
        hits = s.lruHits(entries);
        missCount = s.nnz - hits;
        denseFetch = missCount * lineUp(rhsRowSize);
        e.cacheHits = hits;
        e.cacheMisses = missCount;
        break;
      }
      case DenseReuse::None:
        missCount = s.nnz;
        denseFetch = missCount * lineUp(rhsRowSize);
        if (spec.rhsFormat == OperandFormat::CompressedFiber)
            metadata = s.nnz * kPtrBytes; // fiber pointer lookups
        break;
      case DenseReuse::Tiled:
        break; // handled above
    }

    const Bytes output =
        spec.outFormat == OperandFormat::CompressedFiber
            ? lineUp(s.rows * static_cast<Bytes>(n) *
                         (kValueBytes + kIndexBytes) +
                     s.rows * kPtrBytes)
            : (rowEngine ? s.rows * lineUp(rowBytes)
                         : lineUp(s.rows * rowBytes));

    e.trafficBytes = sparseStream + denseFetch + preload + metadata + output;
    e.macOps = s.nnz * n;

    // --- Roofline -----------------------------------------------------
    if (rowEngine) {
        // Control (one CAM lookup per non-zero) and the MAC pipeline
        // (ceil(N/lanes) per product) overlap; the most loaded PE
        // bounds the phase.
        const Cycle dur =
            std::max<Cycle>(1, ceilDiv(n, spec.spatialLanes));
        e.computeBound = maxPeNnz(s, em.numPes) * dur;
    } else {
        const Cycle multiply = s.nnz * ceilDiv(n, spec.spatialLanes);
        const Cycle merge =
            spec.reductionLanes != 0
                ? ceilDiv(e.macOps, spec.reductionLanes)
                : 0;
        e.computeBound = multiply + merge;
    }
    e.memoryBound = static_cast<Cycle>(
        static_cast<double>(e.trafficBytes) / bpcTotal);
    if (rowEngine && missCount != 0) {
        // Miss fills bounded by LDN concurrency across the PEs.
        const uint64_t conc = std::max<uint64_t>(
            1, static_cast<uint64_t>(spec.missConcurrency) * em.numPes);
        e.missBound = static_cast<Cycle>(
            missCount * static_cast<uint64_t>(em.dramAccessLatency) /
            conc);
    }

    if (rowEngine && spec.denseReuse == DenseReuse::Resident) {
        // The per-PE weight preloads serialise on the shared channel
        // before any row processing starts.
        const Cycle preloadCycles = static_cast<Cycle>(
            static_cast<double>(preload) / bpcTotal);
        const Cycle rest = static_cast<Cycle>(
            static_cast<double>(e.trafficBytes - preload) / bpcTotal);
        e.cycles = preloadCycles + std::max(e.computeBound, rest) +
                   em.dramAccessLatency;
    } else {
        e.cycles =
            std::max({e.computeBound, e.memoryBound, e.missBound}) +
            em.dramAccessLatency;
    }
    return e;
}

} // namespace

AnalyticalCostModel::AnalyticalCostModel(const gcn::PhasePlan &plan)
    : plan_(&plan)
{
    for (const auto &ph : plan) {
        // Halo-exchange markers move bytes over links, not SpDeGEMM
        // work; costmodel::estimateLinkTraffic prices them.
        if (ph.op == gcn::PhaseOp::HaloExchange)
            continue;
        GROW_ASSERT(ph.problem.lhs != nullptr,
                    "phase plan entry without LHS");
        bool known = false;
        for (const auto &st : stats_) {
            if (st->lhs == ph.problem.lhs &&
                st->clustering == ph.problem.clustering &&
                st->hdnLists == ph.problem.hdnLists) {
                known = true;
                break;
            }
        }
        if (!known)
            stats_.push_back(std::make_unique<OperandStats>(
                OperandStats::compute(*ph.problem.lhs,
                                      ph.problem.clustering,
                                      ph.problem.hdnLists)));
    }
}

const OperandStats &
AnalyticalCostModel::statsFor(const gcn::PlannedPhase &phase) const
{
    for (const auto &st : stats_) {
        if (st->lhs == phase.problem.lhs &&
            st->clustering == phase.problem.clustering &&
            st->hdnLists == phase.problem.hdnLists)
            return *st;
    }
    panic("phase operand not profiled by this cost model");
}

PlanEstimate
AnalyticalCostModel::estimate(const mapping::EngineMapping &em) const
{
    PlanEstimate pe;
    pe.phases.reserve(plan_->size());
    for (const auto &ph : *plan_) {
        if (ph.op == gcn::PhaseOp::HaloExchange)
            continue;
        const MappingSpec &spec = em.spec(ph.mapping.phaseClass);
        PhaseEstimate e =
            estimatePhase(spec, em, statsFor(ph), ph.problem.rhsCols);
        e.layer = ph.layer;
        e.op = ph.op;
        e.label = ph.problem.label;

        pe.totalCycles += e.cycles;
        pe.trafficBytes += e.trafficBytes;
        pe.macOps += e.macOps;
        switch (ph.op) {
          case gcn::PhaseOp::Combination:
            pe.combinationCycles += e.cycles;
            break;
          case gcn::PhaseOp::Aggregation:
            pe.aggregationCycles += e.cycles;
            pe.cacheHits += e.cacheHits;
            pe.cacheMisses += e.cacheMisses;
            break;
          case gcn::PhaseOp::AttentionScore:
            pe.attentionCycles += e.cycles;
            pe.cacheHits += e.cacheHits;
            pe.cacheMisses += e.cacheMisses;
            break;
          case gcn::PhaseOp::HaloExchange:
            break; // skipped above
        }
        pe.phases.push_back(std::move(e));
    }
    return pe;
}

} // namespace grow::costmodel
