/**
 * @file
 * Closed-form analytical cost model over dataflow mappings.
 *
 * Mirrors each cycle-accurate engine's first-order behaviour from its
 * published mapping::EngineMapping alone -- no engine types appear
 * here. The estimator dispatches on MappingSpec fields (dense-reuse
 * discipline, operand formats, stream chunking), never on engine
 * names, so a new engine that publishes an honest mapping is estimable
 * without touching this module.
 *
 * Fidelity by construction:
 *  - Closed-form engines (MatRaptor; GAMMA via the exact Mattson LRU
 *    curve; GCNAX by replaying the same tiling search over the same
 *    TileGridStats census) reproduce the simulators' own formulas --
 *    the estimate is exact or within rounding.
 *  - The event-driven row engine (GROW) is approximated by a roofline:
 *    max(control/MAC throughput of the most loaded PE, DRAM channel
 *    occupancy, LDN-bounded miss service) plus serialised preloads and
 *    one access latency. Reuse counts stay *exact* (stack-distance and
 *    pinned-rank curves); the error lives in overlap effects -- LDN
 *    fill sharing, window stalls, per-PE LRU privacy -- and is bounded
 *    by the envelope tests (tests/costmodel/).
 *
 * One AnalyticalCostModel instance amortises the O(nnz log nnz) reuse
 * profiling of each distinct operand in a phase plan; estimate() is
 * then O(#clusters + numPes) per phase for row-engine mappings, which
 * is what makes a >=10k-point design-space grid cheaper than a single
 * cycle-accurate simulation (examples/design_space_sweep dse=1).
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "costmodel/workload_stats.hpp"
#include "gcn/runner.hpp"
#include "mapping/mapping.hpp"

namespace grow::costmodel {

/** Analytical estimate of one planned phase. */
struct PhaseEstimate
{
    uint32_t layer = 0;
    gcn::PhaseOp op = gcn::PhaseOp::Combination;
    std::string label;
    Cycle cycles = 0;
    Bytes trafficBytes = 0;
    uint64_t macOps = 0;
    uint64_t cacheHits = 0;
    uint64_t cacheMisses = 0;
    /** Roofline legs (diagnostics; cycles >= max of the three). */
    Cycle computeBound = 0;
    Cycle memoryBound = 0;
    Cycle missBound = 0;
};

/** Whole-plan aggregate, bucketed like gcn::InferenceResult. */
struct PlanEstimate
{
    Cycle totalCycles = 0;
    Cycle combinationCycles = 0;
    Cycle aggregationCycles = 0;
    Cycle attentionCycles = 0;
    Bytes trafficBytes = 0;
    uint64_t macOps = 0;
    uint64_t cacheHits = 0;
    uint64_t cacheMisses = 0;
    std::vector<PhaseEstimate> phases;
};

class AnalyticalCostModel
{
  public:
    /**
     * Profile every distinct operand of @p plan (borrowed: plan and
     * the workload it was lowered from must outlive the model).
     */
    explicit AnalyticalCostModel(const gcn::PhasePlan &plan);

    /** Estimate the plan under @p em (any configuration, not just the
     *  one the plan was lowered against -- that is the DSE fast path). */
    PlanEstimate estimate(const mapping::EngineMapping &em) const;

    /** Reuse profile of @p phase's sparse operand. */
    const OperandStats &statsFor(const gcn::PlannedPhase &phase) const;

  private:
    const gcn::PhasePlan *plan_;
    std::vector<std::unique_ptr<OperandStats>> stats_;
};

} // namespace grow::costmodel
