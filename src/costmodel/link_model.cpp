#include "costmodel/link_model.hpp"

#include <algorithm>

#include "util/logging.hpp"
#include "util/bitutil.hpp"

namespace grow::costmodel {

LinkEstimate
estimateLinkTraffic(const gcn::PhasePlan &plan,
                    const scaleout::ChipShardPlan &shard,
                    const scaleout::HaloPlan &halo,
                    const scaleout::LinkSpec &link)
{
    GROW_ASSERT(halo.chips == shard.chips,
                "halo plan and shard plan disagree on the chip count");
    LinkEstimate est;
    const uint32_t chips = shard.chips;
    est.pairBytes.assign(chips, std::vector<Bytes>(chips, 0));
    est.egressBytes.assign(chips, 0);

    const double bpc = link.bytesPerCycle();
    GROW_ASSERT(bpc > 0, "link bandwidth must be positive");

    for (const auto &ph : plan) {
        if (ph.op != gcn::PhaseOp::HaloExchange)
            continue;
        LinkPhaseEstimate pe;
        pe.layer = ph.layer;
        const uint32_t cols = ph.problem.rhsCols;
        // The busiest serial agent bounds the step: each source chip's
        // egress link serialises everything it sends, and each
        // destination chip pulls its ingress serially (the co-sim's
        // lanes). Bytes per pair are exact -- same HaloPlan the
        // runner's link counters are checked against.
        std::vector<Bytes> egress(chips, 0), ingress(chips, 0);
        std::vector<uint64_t> egressChunks(chips, 0),
            ingressChunks(chips, 0);
        for (uint32_t dst = 0; dst < chips; ++dst) {
            for (uint32_t src = 0; src < chips; ++src) {
                if (src == dst)
                    continue;
                const Bytes bytes = halo.pairPhaseBytes(dst, src, cols);
                if (bytes == 0)
                    continue;
                const Bytes rowBytes =
                    static_cast<Bytes>(cols) * kValueBytes;
                const uint64_t rows = bytes / rowBytes;
                const uint64_t chunks =
                    rows * ceilDiv(rowBytes, link.chunkBytes);
                est.pairBytes[src][dst] += bytes;
                est.egressBytes[src] += bytes;
                est.totalBytes += bytes;
                egress[src] += bytes;
                ingress[dst] += bytes;
                egressChunks[src] += chunks;
                ingressChunks[dst] += chunks;
                pe.totalBytes += bytes;
            }
        }
        Bytes critBytes = 0;
        uint64_t critChunks = 0;
        for (uint32_t c = 0; c < chips; ++c) {
            if (egress[c] > critBytes) {
                critBytes = egress[c];
                critChunks = egressChunks[c];
            }
            if (ingress[c] > critBytes) {
                critBytes = ingress[c];
                critChunks = ingressChunks[c];
            }
        }
        if (pe.totalBytes > 0)
            pe.cycles = link.latencyCycles() +
                        static_cast<Cycle>(
                            static_cast<double>(critBytes) / bpc) +
                        critChunks;
        est.haloCycles += pe.cycles;
        est.phases.push_back(pe);
    }
    return est;
}

} // namespace grow::costmodel
