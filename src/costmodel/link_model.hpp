/**
 * @file
 * Closed-form inter-chip link traffic estimate.
 *
 * Prices the HaloExchange steps of a multi-chip phase plan without
 * running the link co-simulation, so design-space sweeps (dse=1) can
 * score chip counts analytically. Byte counts are *exact* by
 * construction -- the estimator and the scale-out runner both read the
 * same HaloPlan (boundary vertices x feature bytes), so the estimate
 * equals the simulated per-link byte counters to the byte. Cycle
 * counts are a roofline: per halo step,
 *
 *   latencyCycles + serialization(busiest egress or ingress agent)
 *                 + one issue cycle per DMA chunk of that agent
 *
 * which the epoch co-simulation tracks within the envelope gated by
 * tests/scaleout/ (the sim adds epoch-window quantization and
 * cross-phase link backlog on top; both only increase cycles).
 */
#pragma once

#include <vector>

#include "gcn/runner.hpp"
#include "scaleout/halo.hpp"
#include "scaleout/shard.hpp"
#include "scaleout/topology.hpp"

namespace grow::costmodel {

/** One halo step's closed-form price. */
struct LinkPhaseEstimate
{
    uint32_t layer = 0;
    Bytes totalBytes = 0;
    Cycle cycles = 0;
};

/** Whole-plan link traffic estimate. */
struct LinkEstimate
{
    /** Exact bytes chip s sends chip d over the whole plan,
     *  indexed [s][d] (diagonal zero). */
    std::vector<std::vector<Bytes>> pairBytes;
    /** Exact per-chip egress totals (row sums of pairBytes). */
    std::vector<Bytes> egressBytes;
    Bytes totalBytes = 0;
    /** Estimated cycles spent in halo steps across the plan. */
    Cycle haloCycles = 0;
    std::vector<LinkPhaseEstimate> phases;
};

/**
 * Price every HaloExchange step of @p plan under @p link for the
 * sharding described by (@p shard, @p halo). Plans without halo steps
 * (chips == 1) yield an all-zero estimate.
 */
LinkEstimate estimateLinkTraffic(const gcn::PhasePlan &plan,
                                 const scaleout::ChipShardPlan &shard,
                                 const scaleout::HaloPlan &halo,
                                 const scaleout::LinkSpec &link);

} // namespace grow::costmodel
