#include "costmodel/pareto.hpp"

#include <algorithm>

namespace grow::costmodel {

std::vector<size_t>
paretoFrontier(const std::vector<ParetoPoint> &points)
{
    std::vector<ParetoPoint> sorted(points);
    std::sort(sorted.begin(), sorted.end(),
              [](const ParetoPoint &a, const ParetoPoint &b) {
                  if (a.x != b.x)
                      return a.x < b.x;
                  if (a.y != b.y)
                      return a.y < b.y;
                  return a.index < b.index;
              });
    std::vector<size_t> frontier;
    bool any = false;
    double bestY = 0.0;
    double lastX = 0.0;
    double lastY = 0.0;
    for (const ParetoPoint &p : sorted) {
        if (any && p.x == lastX && p.y == lastY)
            continue; // duplicate: lowest index already kept
        if (!any || p.y < bestY) {
            frontier.push_back(p.index);
            bestY = p.y;
            any = true;
        }
        lastX = p.x;
        lastY = p.y;
    }
    return frontier;
}

} // namespace grow::costmodel
