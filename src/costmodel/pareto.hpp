/**
 * @file
 * Pareto-frontier pruning for two-objective design-space exploration.
 *
 * The DSE driver scores every grid point analytically, keeps only the
 * non-dominated (both objectives minimised) configurations, and spends
 * cycle-accurate simulation exclusively on that frontier.
 */
#pragma once

#include <cstddef>
#include <vector>

namespace grow::costmodel {

/** One scored point; @p index is the caller's grid index. */
struct ParetoPoint
{
    double x = 0.0; ///< first objective (minimise), e.g. cycles
    double y = 0.0; ///< second objective (minimise), e.g. SRAM bytes
    size_t index = 0;
};

/**
 * Indices (caller's ParetoPoint::index) of the non-dominated points,
 * sorted by ascending x. A point is dominated when another point is <=
 * in both objectives and < in at least one; among exact duplicates the
 * lowest index survives. O(n log n).
 */
std::vector<size_t> paretoFrontier(const std::vector<ParetoPoint> &points);

} // namespace grow::costmodel
