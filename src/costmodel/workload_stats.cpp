#include "costmodel/workload_stats.hpp"

#include <algorithm>
#include <numeric>

#include "util/logging.hpp"

namespace grow::costmodel {

namespace {

/** Fenwick tree of reference positions (Mattson stack-distance
 *  helper): prefixSum(i) = distinct columns whose most recent access
 *  lies at position <= i. */
class Fenwick
{
  public:
    explicit Fenwick(size_t n) : tree_(n + 1, 0) {}

    void add(size_t i, int32_t delta)
    {
        for (i += 1; i < tree_.size(); i += i & (~i + 1))
            tree_[i] = static_cast<uint32_t>(
                static_cast<int64_t>(tree_[i]) + delta);
    }

    uint64_t prefixSum(size_t i) const
    {
        uint64_t s = 0;
        for (i += 1; i > 0; i -= i & (~i + 1))
            s += tree_[i];
        return s;
    }

  private:
    std::vector<uint32_t> tree_;
};

std::vector<uint64_t>
prefixFromHistogram(std::vector<uint64_t> hist)
{
    std::vector<uint64_t> prefix(hist.size() + 1, 0);
    for (size_t i = 0; i < hist.size(); ++i)
        prefix[i + 1] = prefix[i] + hist[i];
    return prefix;
}

uint64_t
clampedPrefix(const std::vector<uint64_t> &prefix, uint64_t i)
{
    if (prefix.empty())
        return 0;
    const uint64_t last = static_cast<uint64_t>(prefix.size() - 1);
    return prefix[static_cast<size_t>(std::min(i, last))];
}

/**
 * Exact LRU hit curve of the row-major column-reference stream: for
 * each reference, its stack distance d (distinct columns touched since
 * the previous access to the same column) decides hit-or-miss at every
 * capacity at once -- a C-row LRU hits iff d < C. Classic Mattson
 * (1970) single-pass profiling, O(nnz log nnz) with a Fenwick tree.
 *
 * This models a demand-filled cache that inserts on reference, which
 * is exact for GAMMA's FiberCache and for GROW's LRU policy up to
 * fill latency (a row still in flight counts as a cache miss in the
 * simulator but shares its fill through the LDN).
 */
std::vector<uint64_t>
lruHistogram(const sparse::CsrMatrix &lhs)
{
    const uint64_t n = lhs.nnz();
    std::vector<int64_t> lastPos(lhs.cols(), -1);
    Fenwick active(static_cast<size_t>(n));
    std::vector<uint64_t> hist;
    uint64_t pos = 0;
    for (NodeId c : lhs.colIdx()) {
        const int64_t prev = lastPos[c];
        if (prev >= 0) {
            // Distinct columns referenced strictly after prev: the
            // column's depth in the LRU stack.
            const uint64_t depth =
                active.prefixSum(static_cast<size_t>(pos) - 1) -
                active.prefixSum(static_cast<size_t>(prev));
            if (hist.size() <= depth)
                hist.resize(static_cast<size_t>(depth) + 1, 0);
            hist[static_cast<size_t>(depth)] += 1;
            active.add(static_cast<size_t>(prev), -1);
        }
        active.add(static_cast<size_t>(pos), +1);
        lastPos[c] = static_cast<int64_t>(pos);
        pos += 1;
    }
    return hist;
}

/**
 * Exact pinned-cache hit curve: rank every reference by its column's
 * position in the pinned list that is live while its row streams
 * (cluster-local HDN list, or the global frequency ranking when the
 * operand carries no artefacts). A scratchpad that pins the first P
 * list entries hits exactly the references of rank < P -- ranks only
 * exist inside a list, so merging histograms across clusters stays
 * exact for every P.
 */
std::vector<uint64_t>
pinnedHistogram(const sparse::CsrMatrix &lhs,
                const partition::Clustering *clustering,
                const std::vector<std::vector<NodeId>> *hdn_lists)
{
    std::vector<uint64_t> hist;
    auto bump = [&hist](uint32_t rank) {
        if (hist.size() <= rank)
            hist.resize(static_cast<size_t>(rank) + 1, 0);
        hist[rank] += 1;
    };

    constexpr uint32_t kNoRank = UINT32_MAX;
    std::vector<uint32_t> rankOf(lhs.cols(), kNoRank);

    if (clustering != nullptr && hdn_lists != nullptr) {
        const uint32_t numClusters =
            std::min(clustering->numClusters(),
                     static_cast<uint32_t>(hdn_lists->size()));
        for (uint32_t cl = 0; cl < numClusters; ++cl) {
            const auto &ids = (*hdn_lists)[cl];
            for (uint32_t r = 0; r < ids.size(); ++r)
                rankOf[ids[r]] = r;
            const uint32_t rowBegin = clustering->clusterStart[cl];
            const uint32_t rowEnd = clustering->clusterStart[cl + 1];
            for (uint32_t row = rowBegin; row < rowEnd; ++row)
                for (NodeId c : lhs.rowCols(row))
                    if (rankOf[c] != kNoRank)
                        bump(rankOf[c]);
            for (NodeId id : ids)
                rankOf[id] = kNoRank;
        }
        return hist;
    }

    // No artefacts: every cluster pins the same global list, ranked by
    // (reference frequency desc, id asc) -- core::topReferencedColumns'
    // order, extended over all columns so any CAM depth can be queried.
    std::vector<uint32_t> freq(lhs.cols(), 0);
    for (NodeId c : lhs.colIdx())
        freq[c] += 1;
    std::vector<NodeId> order(lhs.cols());
    std::iota(order.begin(), order.end(), NodeId{0});
    std::sort(order.begin(), order.end(), [&freq](NodeId a, NodeId b) {
        if (freq[a] != freq[b])
            return freq[a] > freq[b];
        return a < b;
    });
    for (uint32_t r = 0; r < order.size(); ++r)
        rankOf[order[r]] = r;
    for (NodeId c : lhs.colIdx())
        bump(rankOf[c]);
    return hist;
}

} // namespace

uint64_t
OperandStats::lruHits(uint64_t capacity_rows) const
{
    return clampedPrefix(lruHitPrefix, capacity_rows);
}

uint64_t
OperandStats::pinnedHits(uint64_t resident_rows) const
{
    return clampedPrefix(pinnedHitPrefix, resident_rows);
}

OperandStats
OperandStats::compute(const sparse::CsrMatrix &lhs,
                      const partition::Clustering *clustering,
                      const std::vector<std::vector<NodeId>> *hdn_lists)
{
    OperandStats s;
    s.lhs = &lhs;
    s.clustering = clustering;
    s.hdnLists = hdn_lists;
    s.rows = lhs.rows();
    s.cols = lhs.cols();
    s.nnz = lhs.nnz();
    s.csrStreamBytes = lhs.streamBytes();
    s.lruHitPrefix = prefixFromHistogram(lruHistogram(lhs));
    s.pinnedHitPrefix =
        prefixFromHistogram(pinnedHistogram(lhs, clustering, hdn_lists));
    if (hdn_lists != nullptr) {
        s.clusterListLens.reserve(hdn_lists->size());
        for (const auto &ids : *hdn_lists)
            s.clusterListLens.push_back(
                static_cast<uint32_t>(ids.size()));
    }
    if (clustering != nullptr) {
        const auto &ptr = lhs.rowPtr();
        s.clusterNnz.reserve(clustering->numClusters());
        for (uint32_t c = 0; c < clustering->numClusters(); ++c)
            s.clusterNnz.push_back(ptr[clustering->clusterStart[c + 1]] -
                                   ptr[clustering->clusterStart[c]]);
    }
    return s;
}

} // namespace grow::costmodel
