/**
 * @file
 * Per-operand reuse statistics for the analytical cost model.
 *
 * Everything expensive is computed exactly once per sparse operand
 * (O(nnz log nnz)), after which any configuration's reuse can be
 * queried in O(1)/O(log):
 *
 *  - LRU reuse profile: Mattson stack distances of the row-major
 *    column-reference stream. lruHits(C) is the *exact* hit count of a
 *    fully-associative demand-filled LRU cache with C row slots
 *    (GAMMA's FiberCache, GROW's Sec. VIII LRU policy study) -- one
 *    pass yields the whole capacity axis.
 *
 *  - Pinned reuse profile: every reference ranked by its column's
 *    position in the pinned HDN list (per-cluster lists when the
 *    operand carries partitioning artefacts, the global frequency
 *    order otherwise). pinnedHits(P) is the exact hit count of a
 *    scratchpad that pins the first P list entries per cluster --
 *    again the whole capacity/CAM axis from one pass.
 *
 * These two curves are what lets the DSE's analytical tier sweep
 * thousands of HDN capacities per second instead of re-simulating.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "partition/relabel.hpp"
#include "sim/types.hpp"
#include "sparse/csr_matrix.hpp"

namespace grow::costmodel {

struct OperandStats
{
    /** Borrowed operand identity (must outlive the stats). */
    const sparse::CsrMatrix *lhs = nullptr;
    const partition::Clustering *clustering = nullptr;
    const std::vector<std::vector<NodeId>> *hdnLists = nullptr;

    uint64_t rows = 0;
    uint64_t cols = 0;
    uint64_t nnz = 0;
    /** CSR stream extent: nnz*(value+index) + rows*pointer bytes. */
    Bytes csrStreamBytes = 0;

    /**
     * lruHitPrefix[c] = exact LRU hits with a c-row cache. The last
     * entry saturates (every finite-distance reuse hits); lruHits()
     * clamps.
     */
    std::vector<uint64_t> lruHitPrefix;

    /**
     * pinnedHitPrefix[r] = exact pinned-cache hits when the first r
     * entries of each cluster's HDN list are resident (global list
     * ranks when the operand has no per-cluster lists).
     */
    std::vector<uint64_t> pinnedHitPrefix;

    /** Per-cluster HDN list lengths (preload accounting); empty when
     *  the operand carries no artefacts. */
    std::vector<uint32_t> clusterListLens;

    /** Per-cluster non-zero counts (PE load-balance accounting); empty
     *  when the operand carries no clustering. */
    std::vector<uint64_t> clusterNnz;

    uint64_t lruHits(uint64_t capacity_rows) const;
    uint64_t pinnedHits(uint64_t resident_rows) const;

    /**
     * One-shot exact precompute over the operand's reference stream.
     * @p clustering / @p hdn_lists may be null (unpartitioned layout:
     * the pinned profile then ranks by global column frequency, the
     * order topReferencedColumns() pins).
     */
    static OperandStats
    compute(const sparse::CsrMatrix &lhs,
            const partition::Clustering *clustering,
            const std::vector<std::vector<NodeId>> *hdn_lists);
};

} // namespace grow::costmodel
