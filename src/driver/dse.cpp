#include "driver/dse.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "core/grow.hpp"
#include "costmodel/pareto.hpp"
#include "util/logging.hpp"

namespace grow::driver {

namespace {

double
millisSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Empty axes sweep just the base value. */
template <typename T, typename Get>
std::vector<T>
axisOr(const std::vector<T> &axis, Get base)
{
    if (!axis.empty())
        return axis;
    return {base()};
}

std::string
pointLabel(const core::GrowConfig &cfg)
{
    return "cap" + std::to_string(cfg.hdn.capacityBytes / 1024) +
           "k/cam" + std::to_string(cfg.hdn.camEntries) + "/ra" +
           std::to_string(cfg.runaheadDegree) + "/mac" +
           std::to_string(cfg.numMacs) + "/pe" +
           std::to_string(cfg.numPes) + "/bw" +
           std::to_string(static_cast<uint64_t>(cfg.dram.bandwidthGBps));
}

} // namespace

size_t
DseGrid::size() const
{
    auto dim = [](size_t n) { return n == 0 ? size_t{1} : n; };
    return dim(hdnCapacityBytes.size()) * dim(camEntries.size()) *
           dim(runaheadDegrees.size()) * dim(macWidths.size()) *
           dim(peCounts.size()) * dim(dramBandwidthGBps.size());
}

DseGrid
DseGrid::defaultGrid()
{
    DseGrid g;
    for (Bytes kb : {32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024})
        g.hdnCapacityBytes.push_back(kb * 1024);
    g.camEntries = {1024, 2048, 4096, 8192};
    g.runaheadDegrees = {1, 2, 4, 8, 16, 32};
    g.macWidths = {8, 16, 32, 64};
    g.peCounts = {1, 2, 4, 8};
    g.dramBandwidthGBps = {64, 128, 256, 512};
    return g;
}

double
DseAnalysis::microsPerPoint() const
{
    return points.empty() ? 0.0
                          : scoreMillis * 1000.0 /
                                static_cast<double>(points.size());
}

DseDriver::DseDriver(const gcn::GcnWorkload &workload,
                     const gcn::RunOptions &base)
    : workload_(&workload), options_(base)
{
    // The grid is GROW's: lower once under the partitioned convention
    // and the engine-neutral mapping contract (every grid point shares
    // the lowering-visible spec fields), then re-score per point.
    options_.usePartitioning = true;
    options_.mapping.reset();
    plan_ = gcn::buildPhasePlan(*workload_, options_);
    const auto t0 = std::chrono::steady_clock::now();
    model_ = std::make_unique<costmodel::AnalyticalCostModel>(plan_);
    setupMillis_ = millisSince(t0);
}

DseAnalysis
DseDriver::analyze(const DseGrid &grid) const
{
    DseAnalysis out;
    out.setupMillis = setupMillis_;
    out.points.reserve(grid.size());

    const core::GrowConfig &base = grid.base;
    const auto caps = axisOr(grid.hdnCapacityBytes,
                             [&] { return base.hdn.capacityBytes; });
    const auto cams =
        axisOr(grid.camEntries, [&] { return base.hdn.camEntries; });
    const auto ras =
        axisOr(grid.runaheadDegrees, [&] { return base.runaheadDegree; });
    const auto macs = axisOr(grid.macWidths, [&] { return base.numMacs; });
    const auto pes = axisOr(grid.peCounts, [&] { return base.numPes; });
    const auto bws = axisOr(grid.dramBandwidthGBps,
                            [&] { return base.dram.bandwidthGBps; });

    const auto t0 = std::chrono::steady_clock::now();
    for (Bytes cap : caps)
        for (uint32_t cam : cams)
            for (uint32_t ra : ras)
                for (uint32_t mac : macs)
                    for (uint32_t pe : pes)
                        for (double bw : bws) {
                            core::GrowConfig cfg = base;
                            cfg.hdn.capacityBytes = cap;
                            cfg.hdn.camEntries = cam;
                            cfg.runaheadDegree = ra;
                            cfg.ldnEntries = ra;
                            cfg.lhsIdEntries = 4 * ra;
                            cfg.numMacs = mac;
                            cfg.numPes = pe;
                            cfg.dram.bandwidthGBps = bw;

                            core::GrowSim sim(cfg);
                            auto est = model_->estimate(sim.mapping());

                            DsePointEstimate p;
                            p.label = pointLabel(cfg);
                            p.config = cfg;
                            p.cycles = est.totalCycles;
                            p.trafficBytes = est.trafficBytes;
                            p.sramBytes = static_cast<Bytes>(cfg.numPes) *
                                          cfg.onChipSramBytes();
                            p.cacheHits = est.cacheHits;
                            p.cacheMisses = est.cacheMisses;
                            out.points.push_back(std::move(p));
                        }
    out.scoreMillis = millisSince(t0);

    std::vector<costmodel::ParetoPoint> objectives;
    objectives.reserve(out.points.size());
    for (size_t i = 0; i < out.points.size(); ++i)
        objectives.push_back(
            {static_cast<double>(out.points[i].cycles),
             static_cast<double>(out.points[i].sramBytes), i});
    out.frontier = costmodel::paretoFrontier(objectives);
    return out;
}

std::vector<DseSurvivor>
DseDriver::simulateFrontier(const DseAnalysis &analysis,
                            size_t max_survivors,
                            const SweepDriver &pool) const
{
    size_t n = analysis.frontier.size();
    if (max_survivors != 0)
        n = std::min(n, max_survivors);

    std::vector<SweepJob> jobs;
    jobs.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        const auto &p = analysis.points[analysis.frontier[i]];
        SweepJob job;
        job.label = p.label;
        core::GrowConfig cfg = p.config;
        job.makeEngine = [cfg] {
            return std::make_unique<core::GrowSim>(cfg);
        };
        job.workload = workload_;
        job.options = options_;
        job.options.mapping.reset(); // runInference refills per engine
        jobs.push_back(std::move(job));
    }
    auto outcomes = pool.runAll(jobs);

    auto relErr = [](double est, double sim) {
        return sim == 0.0 ? 0.0 : std::abs(est - sim) / sim;
    };
    std::vector<DseSurvivor> survivors;
    survivors.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        DseSurvivor s;
        s.estimate = analysis.points[analysis.frontier[i]];
        s.simulated = std::move(outcomes[i].inference);
        s.cycleError =
            relErr(static_cast<double>(s.estimate.cycles),
                   static_cast<double>(s.simulated.totalCycles));
        s.trafficError = relErr(
            static_cast<double>(s.estimate.trafficBytes),
            static_cast<double>(s.simulated.totalTrafficBytes()));
        survivors.push_back(std::move(s));
    }
    return survivors;
}

} // namespace grow::driver
