/**
 * @file
 * Two-tier design-space exploration driver.
 *
 * Tier 1 (analytical): score every configuration of a GROW design grid
 * with costmodel::AnalyticalCostModel -- microseconds per point after a
 * one-time reuse-profiling pass of the workload's operands, so grids of
 * 10k+ points cost less wall-clock than a single cycle-accurate
 * simulation. Tier 2 (cycle-accurate): prune the grid to its Pareto
 * frontier over (estimated cycles, on-chip SRAM bytes), cap the
 * survivor count, and hand only those to driver::SweepDriver for real
 * simulation. The per-survivor estimate-vs-simulation drift doubles as
 * a live validation of the analytical tier (reported through the
 * estimator-error records; see tests/costmodel/ for the offline
 * envelope).
 *
 * The grid sweeps GrowConfig knobs: GROW's estimator is O(#clusters)
 * per configuration once profiled, whereas re-tiling dataflows (GCNAX)
 * pay an O(nnz) tile census per buffer configuration -- fine for
 * one-off estimates, wrong for a dense grid.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/grow_config.hpp"
#include "costmodel/cost_model.hpp"
#include "driver/sweep_driver.hpp"
#include "gcn/runner.hpp"
#include "gcn/workload.hpp"

namespace grow::driver {

/** Axes of the GROW configuration grid (cartesian product). */
struct DseGrid
{
    core::GrowConfig base;
    std::vector<Bytes> hdnCapacityBytes;
    std::vector<uint32_t> camEntries;
    /** Runahead degree; LDN entries follow (== degree, the Fig. 21
     *  provisioning) and the LHS ID table is 4x the LDN. */
    std::vector<uint32_t> runaheadDegrees;
    std::vector<uint32_t> macWidths;
    std::vector<uint32_t> peCounts;
    std::vector<double> dramBandwidthGBps;

    /** Grid cardinality (empty axes count as the base value). */
    size_t size() const;

    /** The default example grid: ~17k points around Table III. */
    static DseGrid defaultGrid();
};

/** One analytically scored configuration. */
struct DsePointEstimate
{
    std::string label;           ///< "cap512k/cam4096/ra16/mac16/pe1/bw128"
    core::GrowConfig config;
    Cycle cycles = 0;            ///< estimated end-to-end cycles
    Bytes trafficBytes = 0;      ///< estimated DRAM traffic
    Bytes sramBytes = 0;         ///< on-chip SRAM cost objective
    uint64_t cacheHits = 0;
    uint64_t cacheMisses = 0;
};

/** Tier-1 outcome. */
struct DseAnalysis
{
    std::vector<DsePointEstimate> points; ///< grid order
    /** Indices into points, ascending estimated cycles. */
    std::vector<size_t> frontier;
    double setupMillis = 0.0;    ///< operand reuse profiling (one-time)
    double scoreMillis = 0.0;    ///< scoring all grid points
    double microsPerPoint() const;
};

/** One tier-2 survivor with its validation drift. */
struct DseSurvivor
{
    DsePointEstimate estimate;
    gcn::InferenceResult simulated;
    /** |est - sim| / sim. */
    double cycleError = 0.0;
    double trafficError = 0.0;
};

/**
 * Two-tier explorer over one workload. Borrows @p workload (must
 * outlive the driver); the phase plan is lowered once under the
 * engine-neutral mapping contract (usePartitioning on -- the grid is
 * GROW's) and re-scored per configuration.
 */
class DseDriver
{
  public:
    DseDriver(const gcn::GcnWorkload &workload,
              const gcn::RunOptions &base);

    /** Tier 1: score the whole grid and compute the Pareto frontier
     *  over (cycles, SRAM bytes). */
    DseAnalysis analyze(const DseGrid &grid) const;

    /**
     * Tier 2: cycle-accurately simulate the first @p max_survivors
     * frontier points of @p analysis (all of them when 0) through
     * @p pool, and attach the estimate-vs-simulation drift.
     */
    std::vector<DseSurvivor> simulateFrontier(const DseAnalysis &analysis,
                                              size_t max_survivors,
                                              const SweepDriver &pool) const;

    const gcn::PhasePlan &plan() const { return plan_; }
    const costmodel::AnalyticalCostModel &model() const { return *model_; }

  private:
    const gcn::GcnWorkload *workload_;
    gcn::RunOptions options_;
    gcn::PhasePlan plan_;
    std::unique_ptr<costmodel::AnalyticalCostModel> model_;
    double setupMillis_ = 0.0;
};

} // namespace grow::driver
