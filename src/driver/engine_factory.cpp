#include "driver/engine_factory.hpp"

#include "core/grow.hpp"
#include "util/logging.hpp"

namespace grow::driver {

namespace {

template <typename Sim, typename Config>
EngineFactory
factoryOf(Config config)
{
    return [config]() -> std::unique_ptr<accel::AcceleratorSim> {
        return std::make_unique<Sim>(config);
    };
}

/**
 * The one registry table: key, layout convention, factory builder.
 * engineByKey and knownEngineKeys both iterate it, so the key set
 * cannot drift between the dispatch and the published list.
 */
struct RegistryEntry
{
    const char *key;
    bool usePartitioning;
    EngineFactory (*make)();
};

const RegistryEntry kRegistry[] = {
    {"grow", true,
     [] { return factoryOf<core::GrowSim>(growDefaultConfig()); }},
    {"grow-nogp", false,
     [] { return factoryOf<core::GrowSim>(growDefaultConfig()); }},
    {"grow-norunahead", false,
     [] { return factoryOf<core::GrowSim>(growNoRunaheadConfig()); }},
    {"grow-norunahead-gp", true,
     [] { return factoryOf<core::GrowSim>(growNoRunaheadConfig()); }},
    {"grow-nocache", false,
     [] { return factoryOf<core::GrowSim>(growNoCacheConfig()); }},
    {"grow-lru", true,
     [] { return factoryOf<core::GrowSim>(growLruConfig()); }},
    {"grow-lru-nogp", false,
     [] { return factoryOf<core::GrowSim>(growLruConfig()); }},
    {"gcnax", false,
     [] { return factoryOf<accel::GcnaxSim>(gcnaxDefaultConfig()); }},
    {"matraptor", false,
     [] {
         return factoryOf<accel::MatRaptorSim>(matraptorDefaultConfig());
     }},
    {"gamma", false,
     [] { return factoryOf<accel::GammaSim>(gammaDefaultConfig()); }},
};

} // namespace

core::GrowConfig
growDefaultConfig()
{
    return core::GrowConfig{};
}

core::GrowConfig
growNoRunaheadConfig()
{
    // "Without runahead" (Fig. 21 baseline) removes the *multi-row*
    // window: the engine derives one output row at a time and only
    // admits the next row once the current one retires. Misses within
    // the single active row may still overlap (the LDN/LHS-ID tables
    // exist in all configurations).
    core::GrowConfig c;
    c.runaheadDegree = 1;
    return c;
}

core::GrowConfig
growLruConfig()
{
    core::GrowConfig c;
    c.hdnPolicy = core::HdnPolicy::Lru;
    return c;
}

core::GrowConfig
growNoCacheConfig()
{
    core::GrowConfig c;
    c.hdnCacheEnabled = false;
    return c;
}

accel::GcnaxConfig
gcnaxDefaultConfig()
{
    return accel::GcnaxConfig{};
}

accel::MatRaptorConfig
matraptorDefaultConfig()
{
    return accel::MatRaptorConfig{};
}

accel::GammaConfig
gammaDefaultConfig()
{
    return accel::GammaConfig{};
}

EngineSpec
engineByKey(const std::string &key)
{
    for (const auto &entry : kRegistry) {
        if (key == entry.key) {
            EngineSpec spec;
            spec.key = key;
            spec.usePartitioning = entry.usePartitioning;
            spec.make = entry.make();
            return spec;
        }
    }
    std::string known;
    for (const auto &entry : kRegistry)
        known += (known.empty() ? "" : ", ") + std::string(entry.key);
    fatal("unknown engine key: " + key + " (known: " + known + ")");
}

EngineSpec
engineForTopology(const scaleout::EngineTopology &topo)
{
    topo.validate();
    EngineSpec spec = engineByKey(topo.engine);
    if (topo.growConfig)
        spec.make = factoryOf<core::GrowSim>(*topo.growConfig);
    if (topo.chips > 1 && !spec.usePartitioning)
        fatal("engine '" + topo.engine +
              "' does not consume the graph partitioning, so it "
              "cannot be sharded across chips (pick a partitioning "
              "engine or chips=1)");
    return spec;
}

std::vector<std::string>
knownEngineKeys()
{
    std::vector<std::string> keys;
    keys.reserve(std::size(kRegistry));
    for (const auto &entry : kRegistry)
        keys.push_back(entry.key);
    return keys;
}

} // namespace grow::driver
