/**
 * @file
 * Registry of named engine configurations.
 *
 * Benches, examples and the sweep driver all refer to engines by a
 * string key ("grow", "grow-nogp", "gcnax", ...). Each key maps to a
 * factory producing a fresh AcceleratorSim plus the runner-layout
 * convention that configuration is evaluated under (Table II: only
 * GROW consumes the graph-partitioning preprocessing).
 */
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "accel/accelerator.hpp"
#include "accel/gamma.hpp"
#include "accel/gcnax.hpp"
#include "accel/matraptor.hpp"
#include "core/grow_config.hpp"
#include "scaleout/topology.hpp"

namespace grow::driver {

/** Factory for fresh engine instances of one named configuration. */
using EngineFactory =
    std::function<std::unique_ptr<accel::AcceleratorSim>()>;

/** One named engine configuration. */
struct EngineSpec
{
    std::string key;
    /** Whether runs of this engine consume the partitioned layout. */
    bool usePartitioning = false;
    EngineFactory make;
};

/** Lookup by key; fatal() (naming the known keys) when unknown. */
EngineSpec engineByKey(const std::string &key);

/**
 * Resolve the engine of an EngineTopology: engineByKey(topo.engine),
 * with topo.growConfig (when set) overriding the registry
 * configuration, and the multi-chip constraints enforced -- a sharded
 * topology needs a partitioning-consuming engine (the shard plan is
 * built from the cluster structure). fatal() with a clear message on
 * any violation. The returned factory builds ONE chip's engine; the
 * scale-out runner instantiates it once per chip.
 */
EngineSpec engineForTopology(const scaleout::EngineTopology &topo);

/** Every key engineByKey() accepts. */
std::vector<std::string> knownEngineKeys();

/**
 * Named configurations shared by the registry and the benches
 * (single source of truth for what each key means).
 */
core::GrowConfig growDefaultConfig();
/** GROW with the multi-row runahead window disabled (Fig. 21). */
core::GrowConfig growNoRunaheadConfig();
/** GROW with the HDN cache disabled entirely (Fig. 19). */
core::GrowConfig growNoCacheConfig();
/** GROW with demand-filled LRU replacement (Sec. VIII study). */
core::GrowConfig growLruConfig();
/** Baselines provisioned to match GROW (Sec. VI). */
accel::GcnaxConfig gcnaxDefaultConfig();
accel::MatRaptorConfig matraptorDefaultConfig();
accel::GammaConfig gammaDefaultConfig();

} // namespace grow::driver
