#include "driver/sweep_driver.hpp"

#include <atomic>
#include <exception>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "util/logging.hpp"
#include "util/work_pool.hpp"

namespace grow::driver {

SweepJob
makeEngineJob(const std::string &key, const gcn::GcnWorkload &workload,
              const gcn::RunOptions &base)
{
    auto spec = engineByKey(key);
    SweepJob job;
    // Non-default models join the label ("yelp/gat/grow") so mixed
    // model-zoo sweeps stay distinguishable; plain GCN keeps the
    // original "yelp/grow" form.
    std::string model =
        workload.model == gcn::ModelKind::Gcn
            ? ""
            : std::string(gcn::modelKindName(workload.model)) + "/";
    job.label = std::string(workload.spec() ? workload.spec()->name : "?") +
                "/" + model + key;
    job.makeEngine = std::move(spec.make);
    job.workload = &workload;
    job.options = base;
    job.options.usePartitioning = spec.usePartitioning;
    return job;
}

SweepJob
makeEngineJob(const std::string &key,
              std::shared_ptr<const gcn::GcnWorkload> workload,
              const gcn::RunOptions &base)
{
    GROW_ASSERT(workload != nullptr, "engine job without a workload");
    SweepJob job = makeEngineJob(key, *workload, base);
    job.ownedWorkload = std::move(workload);
    return job;
}

SweepDriver::SweepDriver(uint32_t num_threads)
{
    if (num_threads == 0)
        num_threads = std::max(1u, std::thread::hardware_concurrency());
    numThreads_ = num_threads;
}

namespace {

/** Best-effort message of a stored exception. */
std::string
errorMessage(const std::exception_ptr &err)
{
    try {
        std::rethrow_exception(err);
    } catch (const std::exception &e) {
        return e.what();
    } catch (...) {
        return "unknown error";
    }
}

} // namespace

std::vector<SweepOutcome>
SweepDriver::runAll(const std::vector<SweepJob> &jobs) const
{
    std::vector<SweepOutcome> outcomes(jobs.size());
    if (jobs.empty())
        return outcomes;
    // Labels are assigned up front so even jobs that fail or are
    // skipped by fail-fast keep their identity in the outcome slots.
    for (size_t i = 0; i < jobs.size(); ++i)
        outcomes[i].label = jobs[i].label;

    std::atomic<bool> failed{false};
    std::vector<std::exception_ptr> errors(jobs.size());
    std::vector<char> ran(jobs.size(), 0);

    // Jobs run on the shared process-wide pool (util::WorkPool), so a
    // job that itself fans out -- phase-parallel executePlan, epoch-
    // mode cluster rounds -- reuses the same workers instead of
    // oversubscribing the machine with a second thread layer.
    std::vector<std::function<void()>> tasks;
    tasks.reserve(jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        tasks.emplace_back([&, i] {
            if (failed.load())
                return; // fail-fast: skip unstarted jobs
            const SweepJob &job = jobs[i];
            ran[i] = 1;
            try {
                GROW_ASSERT(job.workload != nullptr,
                            "sweep job without a workload");
                GROW_ASSERT(static_cast<bool>(job.makeEngine),
                            "sweep job without an engine factory");
                auto engine = job.makeEngine();
                outcomes[i].inference =
                    gcn::runInference(*engine, *job.workload, job.options);
            } catch (...) {
                errors[i] = std::current_exception();
                failed.store(true);
            }
        });
    }
    util::WorkPool::shared().runAll(std::move(tasks), numThreads_);

    if (failed.load()) {
        // One aggregate report: every error in job order, then the
        // labels fail-fast skipped. A caller that only reads the first
        // line still sees the first failure first.
        size_t numErrors = 0;
        std::ostringstream skipped;
        size_t numSkipped = 0;
        std::ostringstream msg;
        for (size_t i = 0; i < jobs.size(); ++i) {
            if (errors[i]) {
                ++numErrors;
                msg << "\n  " << jobs[i].label << ": "
                    << errorMessage(errors[i]);
            } else if (!ran[i]) {
                skipped << (numSkipped++ ? ", " : "") << jobs[i].label;
            }
        }
        std::ostringstream head;
        head << "sweep failed: " << numErrors << " of " << jobs.size()
             << " job(s) threw:" << msg.str();
        if (numSkipped)
            head << "\n  skipped by fail-fast: " << skipped.str();
        throw std::runtime_error(head.str());
    }
    return outcomes;
}

} // namespace grow::driver
