#include "driver/sweep_driver.hpp"

#include <atomic>
#include <exception>
#include <thread>

#include "util/logging.hpp"

namespace grow::driver {

SweepJob
makeEngineJob(const std::string &key, const gcn::GcnWorkload &workload,
              const gcn::RunnerOptions &base)
{
    auto spec = engineByKey(key);
    SweepJob job;
    job.label = std::string(workload.spec ? workload.spec->name : "?") +
                "/" + key;
    job.makeEngine = std::move(spec.make);
    job.workload = &workload;
    job.options = base;
    job.options.usePartitioning = spec.usePartitioning;
    return job;
}

SweepDriver::SweepDriver(uint32_t num_threads)
{
    if (num_threads == 0)
        num_threads = std::max(1u, std::thread::hardware_concurrency());
    numThreads_ = num_threads;
}

std::vector<SweepOutcome>
SweepDriver::runAll(const std::vector<SweepJob> &jobs) const
{
    std::vector<SweepOutcome> outcomes(jobs.size());
    if (jobs.empty())
        return outcomes;

    std::atomic<size_t> next{0};
    std::atomic<bool> failed{false};
    std::vector<std::exception_ptr> errors(jobs.size());

    auto worker = [&]() {
        while (true) {
            const size_t i = next.fetch_add(1);
            if (i >= jobs.size() || failed.load())
                return;
            const SweepJob &job = jobs[i];
            try {
                GROW_ASSERT(job.workload != nullptr,
                            "sweep job without a workload");
                GROW_ASSERT(static_cast<bool>(job.makeEngine),
                            "sweep job without an engine factory");
                auto engine = job.makeEngine();
                outcomes[i].label = job.label;
                outcomes[i].inference =
                    gcn::runInference(*engine, *job.workload, job.options);
            } catch (...) {
                errors[i] = std::current_exception();
                failed.store(true);
            }
        }
    };

    const uint32_t threads = static_cast<uint32_t>(
        std::min<size_t>(numThreads_, jobs.size()));
    if (threads <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (uint32_t t = 0; t < threads; ++t)
            pool.emplace_back(worker);
        for (auto &t : pool)
            t.join();
    }

    for (auto &err : errors)
        if (err)
            std::rethrow_exception(err);
    return outcomes;
}

} // namespace grow::driver
