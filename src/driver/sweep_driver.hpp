/**
 * @file
 * Parallel sweep execution over engine x workload x options jobs.
 *
 * Every figure bench and design-space example is a sweep: the same
 * inference executed under many (engine, dataset, config, depth)
 * combinations, each combination independent of the others. Engine
 * instances carry no state across run() calls and workloads are only
 * read, so combinations parallelise perfectly: the driver fans jobs
 * out over the shared util::WorkPool (one fresh engine instance per
 * job, constructed on the worker that claims it; at most numThreads
 * jobs in flight) and returns results in job order regardless of
 * completion order, so parallel sweeps are bit-identical to serial
 * ones. Jobs that fan out internally (phase-parallel executePlan,
 * epoch-mode co-simulation) reuse the same pool workers -- nesting
 * never oversubscribes. See DESIGN.md for the threading model.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "driver/engine_factory.hpp"
#include "gcn/runner.hpp"
#include "gcn/workload.hpp"

namespace grow::driver {

/** One independent inference of a sweep. */
struct SweepJob
{
    /** Caller-chosen tag echoed in the result ("yelp/grow", ...). */
    std::string label;
    /** Fresh-engine factory; invoked once, on the executing worker. */
    EngineFactory makeEngine;
    /** Borrowed workload; must outlive runAll(). */
    const gcn::GcnWorkload *workload = nullptr;
    /**
     * Optional shared ownership of the workload (batched serving: jobs
     * assembled from a WorkloadCache outlive the construction scope).
     * When set, `workload` points into it.
     */
    std::shared_ptr<const gcn::GcnWorkload> ownedWorkload;
    gcn::RunOptions options;
};

/** Outcome of one job. */
struct SweepOutcome
{
    std::string label;
    gcn::InferenceResult inference;
};

/**
 * Build the job for engine @p key on @p workload: the engine's layout
 * convention (Table II) decides options.usePartitioning; other options
 * come from @p base.
 */
SweepJob makeEngineJob(const std::string &key,
                       const gcn::GcnWorkload &workload,
                       const gcn::RunOptions &base = {});

/** As above, but the job co-owns the workload (see SweepJob). */
SweepJob makeEngineJob(const std::string &key,
                       std::shared_ptr<const gcn::GcnWorkload> workload,
                       const gcn::RunOptions &base = {});

/** Fixed-size thread pool running sweep jobs. */
class SweepDriver
{
  public:
    /** @p num_threads 0 picks the hardware concurrency. */
    explicit SweepDriver(uint32_t num_threads = 0);

    uint32_t numThreads() const { return numThreads_; }

    /**
     * Run every job and return the outcomes in job order. A throwing
     * job cancels the sweep: remaining unclaimed jobs are skipped, all
     * workers drain, and one aggregate error is thrown that reports
     * *every* collected failure (in job order) plus the labels of the
     * jobs skipped by fail-fast -- no job vanishes silently.
     */
    std::vector<SweepOutcome> runAll(const std::vector<SweepJob> &jobs) const;

  private:
    uint32_t numThreads_ = 1;
};

} // namespace grow::driver
