#include "driver/workload_cache.hpp"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "util/checksum.hpp"
#include "util/logging.hpp"

namespace grow::driver {

namespace {

namespace fs = std::filesystem;

/** File magic: identifies a GROW artefact cache file. */
constexpr char kMagic[8] = {'G', 'R', 'O', 'W', 'A', 'R', 'T', 'C'};

/** FNV-1a 64-bit over a byte range; cheap and order-sensitive. */
uint64_t
checksum(const char *data, size_t size)
{
    return util::fnv1a(data, size);
}

/** Append-only little encoder over a byte buffer. */
class Writer
{
  public:
    template <typename T>
    void
    pod(T v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        const char *p = reinterpret_cast<const char *>(&v);
        buf_.append(p, sizeof(T));
    }

    void
    str(const std::string &s)
    {
        pod(static_cast<uint32_t>(s.size()));
        buf_.append(s);
    }

    template <typename T>
    void
    vec(const std::vector<T> &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        pod(static_cast<uint64_t>(v.size()));
        buf_.append(reinterpret_cast<const char *>(v.data()),
                    v.size() * sizeof(T));
    }

    void
    csr(const sparse::CsrMatrix &m)
    {
        pod(m.rows());
        pod(m.cols());
        vec(m.rowPtr());
        vec(m.colIdx());
        vec(m.values());
    }

    const std::string &bytes() const { return buf_; }

  private:
    std::string buf_;
};

/**
 * Bounds-checked decoder over a sub-range of a borrowed buffer (no
 * payload copy). Every accessor returns false on underrun so a
 * truncated file degrades to a failed load, never an out-of-bounds
 * read.
 */
class Reader
{
  public:
    Reader(const std::string &bytes, size_t begin, size_t end)
        : buf_(bytes), pos_(begin), end_(end)
    {
    }

    template <typename T>
    bool
    pod(T &out)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        if (pos_ + sizeof(T) > end_)
            return false;
        std::memcpy(&out, buf_.data() + pos_, sizeof(T));
        pos_ += sizeof(T);
        return true;
    }

    bool
    str(std::string &out)
    {
        uint32_t len = 0;
        if (!pod(len) || pos_ + len > end_)
            return false;
        out.assign(buf_.data() + pos_, len);
        pos_ += len;
        return true;
    }

    template <typename T>
    bool
    vec(std::vector<T> &out)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        uint64_t n = 0;
        if (!pod(n))
            return false;
        // Reject sizes the remaining bytes cannot possibly hold before
        // allocating (a corrupt length must not trigger a bad_alloc).
        if (n > (end_ - pos_) / sizeof(T))
            return false;
        out.resize(n);
        std::memcpy(out.data(), buf_.data() + pos_, n * sizeof(T));
        pos_ += n * sizeof(T);
        return true;
    }

    bool
    csr(sparse::CsrMatrix &out)
    {
        uint32_t rows = 0, cols = 0;
        std::vector<uint64_t> rowPtr;
        std::vector<NodeId> colIdx;
        std::vector<double> values;
        if (!pod(rows) || !pod(cols) || !vec(rowPtr) || !vec(colIdx) ||
            !vec(values))
            return false;
        // fromRaw validates structure and panics on inconsistency; the
        // caller treats any throw as a failed load.
        out = sparse::CsrMatrix::fromRaw(rows, cols, std::move(rowPtr),
                                         std::move(colIdx),
                                         std::move(values));
        return true;
    }

    bool done() const { return pos_ == end_; }

  private:
    const std::string &buf_;
    size_t pos_ = 0;
    size_t end_ = 0;
};

std::string
tierToken(graph::ScaleTier tier)
{
    return graph::tierName(tier);
}

/**
 * Fingerprint of every DatasetSpec field that feeds synthesis or the
 * workload shape. Stored in the cache payload so that editing the
 * dataset registry (a seed, a degree divisor, the GCN shape, ...)
 * invalidates old files just like a format bump would -- the
 * key/version header alone cannot see data-table edits.
 */
uint64_t
specFingerprint(const graph::DatasetSpec &spec)
{
    Writer w;
    w.str(spec.name);
    w.pod(spec.paperNodes);
    w.pod(spec.paperArcs);
    w.pod(spec.paperAvgDegree);
    w.pod(spec.paperDensityA);
    w.pod(spec.x0Density);
    w.pod(spec.x1Density);
    w.pod(spec.gcn.inFeatures);
    w.pod(spec.gcn.hidden);
    w.pod(spec.gcn.classes);
    w.pod(spec.powerLawAlpha);
    w.pod(spec.intraFraction);
    w.pod(spec.seed);
    w.pod(spec.miniNodeDiv);
    w.pod(spec.tinyNodeDiv);
    w.pod(spec.miniDegreeDiv);
    w.pod(spec.tinyDegreeDiv);
    // File-backed datasets: the payload checksum of the .growcsr the
    // spec was decoded from (0 for synthesized specs). Re-converting
    // the file invalidates artefacts just like a registry edit would.
    w.pod(spec.sourceChecksum);
    return checksum(w.bytes().data(), w.bytes().size());
}

} // namespace

ArtifactKey
ArtifactKey::of(const graph::DatasetSpec &spec, graph::ScaleTier tier,
                const gcn::PartitionPlan &plan)
{
    ArtifactKey k;
    k.dataset = spec.name;
    k.tier = tier;
    k.plan = plan;
    k.fileChecksum = spec.sourceChecksum;
    return k;
}

std::string
ArtifactKey::fingerprint() const
{
    std::ostringstream oss;
    oss << dataset << '-' << tierToken(tier) << "-p"
        << (plan.buildPartitioning ? 1 : 0) << "-c"
        << plan.targetClusterSize << "-h" << plan.hdnTopN << "-s"
        << plan.sampleFanout;
    if (fileChecksum != 0)
        oss << "-f" << std::hex << fileChecksum;
    return oss.str();
}

bool
ArtifactKey::operator<(const ArtifactKey &o) const
{
    auto tie = [](const ArtifactKey &k) {
        return std::make_tuple(k.dataset, static_cast<int>(k.tier),
                               k.plan.buildPartitioning,
                               k.plan.targetClusterSize, k.plan.hdnTopN,
                               k.plan.sampleFanout, k.fileChecksum);
    };
    return tie(*this) < tie(o);
}

bool
saveArtifacts(const std::string &path, const gcn::GraphArtifacts &a)
{
    GROW_ASSERT(a.spec != nullptr, "artefacts without a dataset spec");
    GROW_ASSERT(a.hasSampling == (a.plan.sampleFanout > 0),
                "sampling flag disagrees with the plan fanout");
    Writer w;
    w.str(a.spec->name);
    w.pod(specFingerprint(*a.spec));
    w.pod(static_cast<uint32_t>(a.tier));
    w.pod(static_cast<uint8_t>(a.plan.buildPartitioning));
    w.pod(a.plan.targetClusterSize);
    w.pod(a.plan.hdnTopN);
    w.pod(a.plan.sampleFanout);
    w.pod(a.maxClusterNodes);
    w.pod(static_cast<uint8_t>(a.hasPartitioning));
    w.pod(static_cast<uint8_t>(a.fileBacked()));
    if (a.hasSampling) {
        // v3 extension file: only the sampled operand. The graph-level
        // payload is owned by (and serialized under) the base bundle.
        w.pod(a.sampleSeed);
        w.csr(a.adjacencySampled);
        if (a.hasPartitioning)
            w.csr(a.adjacencySampledPartitioned);
    } else {
        // v4: a file-backed bundle's graph stays in its .growcsr file
        // (re-mapped at load); only heap bundles serialize the arrays.
        if (!a.fileBacked()) {
            w.vec(a.own.graph.offsets());
            w.vec(a.own.graph.adjacency());
        }
        w.csr(a.own.adjacency);
        if (a.hasPartitioning) {
            w.csr(a.own.adjacencyPartitioned);
            w.vec(a.own.relabel.newToOld);
            w.vec(a.own.relabel.clustering.clusterStart);
            w.pod(static_cast<uint64_t>(a.own.hdnLists.size()));
            for (const auto &list : a.own.hdnLists)
                w.vec(list);
        }
    }

    try {
        fs::path target(path);
        if (target.has_parent_path())
            fs::create_directories(target.parent_path());
        // Atomic publish: write a sibling temp file, then rename. A
        // crashed or concurrent writer can never leave a torn file
        // under the final name.
        fs::path tmp = target;
        tmp += ".tmp";
        {
            std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
            if (!out)
                return false;
            out.write(kMagic, sizeof(kMagic));
            uint32_t version = kArtifactFormatVersion;
            out.write(reinterpret_cast<const char *>(&version),
                      sizeof(version));
            out.write(w.bytes().data(),
                      static_cast<std::streamsize>(w.bytes().size()));
            uint64_t sum = checksum(w.bytes().data(), w.bytes().size());
            out.write(reinterpret_cast<const char *>(&sum), sizeof(sum));
            if (!out)
                return false;
        }
        fs::rename(tmp, target);
        return true;
    } catch (const std::exception &e) {
        logWarn("artifact cache store failed for " + path + ": " +
                e.what());
        return false;
    }
}

std::shared_ptr<const gcn::GraphArtifacts>
loadArtifacts(const std::string &path, const ArtifactKey &expected,
              std::shared_ptr<const gcn::GraphArtifacts> base)
{
    // One sized read into one buffer; the checksum and the Reader both
    // work on it in place (artefact files can be large, and tripling
    // the footprint on the warm-start path would defeat the cache).
    std::string raw;
    {
        std::ifstream in(path, std::ios::binary | std::ios::ate);
        if (!in)
            return nullptr;
        const auto size = in.tellg();
        if (size < 0)
            return nullptr;
        raw.resize(static_cast<size_t>(size));
        in.seekg(0);
        in.read(raw.data(), size);
        if (!in)
            return nullptr;
    }
    const size_t headerSize = sizeof(kMagic) + sizeof(uint32_t);
    if (raw.size() < headerSize + sizeof(uint64_t))
        return nullptr;
    if (std::memcmp(raw.data(), kMagic, sizeof(kMagic)) != 0)
        return nullptr;
    uint32_t version = 0;
    std::memcpy(&version, raw.data() + sizeof(kMagic), sizeof(version));
    if (version != kArtifactFormatVersion)
        return nullptr; // stale format: rebuild, don't guess
    uint64_t storedSum = 0;
    std::memcpy(&storedSum, raw.data() + raw.size() - sizeof(storedSum),
                sizeof(storedSum));
    const size_t payloadEnd = raw.size() - sizeof(storedSum);
    if (checksum(raw.data() + headerSize, payloadEnd - headerSize) !=
        storedSum)
        return nullptr;

    try {
        Reader r(raw, headerSize, payloadEnd);
        auto a = std::make_shared<gcn::GraphArtifacts>();

        std::string dataset;
        uint64_t fingerprint = 0;
        uint32_t tier = 0;
        uint8_t buildPartitioning = 0;
        if (!r.str(dataset) || !r.pod(fingerprint) || !r.pod(tier) ||
            !r.pod(buildPartitioning) ||
            !r.pod(a->plan.targetClusterSize) || !r.pod(a->plan.hdnTopN) ||
            !r.pod(a->plan.sampleFanout) || !r.pod(a->maxClusterNodes))
            return nullptr;
        a->plan.buildPartitioning = buildPartitioning != 0;
        a->tier = static_cast<graph::ScaleTier>(tier);
        if (dataset != expected.dataset || a->tier != expected.tier ||
            a->plan.buildPartitioning != expected.plan.buildPartitioning ||
            a->plan.targetClusterSize !=
                expected.plan.targetClusterSize ||
            a->plan.hdnTopN != expected.plan.hdnTopN ||
            a->plan.sampleFanout != expected.plan.sampleFanout)
            return nullptr;
        a->spec = &graph::datasetByName(dataset);
        // The registry's spec may have been edited since the file was
        // written; stale synthesis parameters must rebuild. For
        // file-backed datasets the fingerprint covers the .growcsr
        // payload checksum, so a re-converted file rebuilds too.
        if (fingerprint != specFingerprint(*a->spec))
            return nullptr;
        if (a->spec->sourceChecksum != expected.fileChecksum)
            return nullptr;

        uint8_t hasPartitioning = 0;
        uint8_t fileBacked = 0;
        if (!r.pod(hasPartitioning) || !r.pod(fileBacked))
            return nullptr;
        a->hasPartitioning = hasPartitioning != 0;
        if (a->hasPartitioning != a->plan.buildPartitioning)
            return nullptr;
        if ((fileBacked != 0) != a->spec->isFileBacked())
            return nullptr;

        if (a->plan.sampleFanout > 0) {
            // Extension file: the graph-level payload is shared with
            // the caller-supplied base, which must describe the same
            // (dataset, tier, base plan).
            if (base == nullptr || base->hasSampling ||
                base->spec != a->spec || base->tier != a->tier ||
                base->hasPartitioning != a->hasPartitioning ||
                base->plan.targetClusterSize !=
                    a->plan.targetClusterSize ||
                base->plan.hdnTopN != a->plan.hdnTopN)
                return nullptr;
            if (!r.pod(a->sampleSeed) || !r.csr(a->adjacencySampled))
                return nullptr;
            if (a->hasPartitioning &&
                !r.csr(a->adjacencySampledPartitioned))
                return nullptr;
            if (a->adjacencySampled.rows() != base->nodes())
                return nullptr;
            a->base = std::move(base);
            a->hasSampling = true;
            if (!r.done())
                return nullptr; // trailing bytes: not a file we wrote
            return a;
        }

        if (fileBacked != 0) {
            // The graph never left its .growcsr: re-attach the mapped
            // instance held by the file-dataset registry.
            a->own.mapped = graph::fileDatasetGraph(*a->spec);
            if (a->own.mapped == nullptr)
                return nullptr;
        } else {
            std::vector<uint64_t> offsets;
            std::vector<NodeId> neighbors;
            if (!r.vec(offsets) || !r.vec(neighbors))
                return nullptr;
            a->own.graph =
                graph::Graph::fromAdjacency(std::move(offsets),
                                            std::move(neighbors));
        }
        if (!r.csr(a->own.adjacency))
            return nullptr;
        if (a->hasPartitioning) {
            uint64_t numLists = 0;
            if (!r.csr(a->own.adjacencyPartitioned) ||
                !r.vec(a->own.relabel.newToOld) ||
                !r.vec(a->own.relabel.clustering.clusterStart) ||
                !r.pod(numLists))
                return nullptr;
            a->own.hdnLists.resize(numLists);
            for (auto &list : a->own.hdnLists)
                if (!r.vec(list))
                    return nullptr;
        }
        if (!r.done())
            return nullptr; // trailing bytes: not a file we wrote
        if (a->own.adjacency.rows() != a->graphView().numNodes())
            return nullptr;
        return a;
    } catch (const std::exception &e) {
        logWarn("artifact cache load failed for " + path + ": " +
                e.what());
        return nullptr;
    }
}

uint64_t
artifactFootprintBytes(const gcn::GraphArtifacts &a)
{
    auto vecBytes = [](size_t n, size_t elem) -> uint64_t {
        return sizeof(uint64_t) + static_cast<uint64_t>(n) * elem;
    };
    auto csrBytes = [&](const sparse::CsrMatrix &m) -> uint64_t {
        return 2 * sizeof(uint32_t) +
               vecBytes(m.rowPtr().size(), sizeof(uint64_t)) +
               vecBytes(m.colIdx().size(), sizeof(NodeId)) +
               vecBytes(m.values().size(), sizeof(double));
    };
    if (a.hasSampling) {
        // Extension bundle: the base payload is a separate cache entry.
        uint64_t bytes = sizeof(a.sampleSeed);
        bytes += csrBytes(a.adjacencySampled);
        if (a.hasPartitioning)
            bytes += csrBytes(a.adjacencySampledPartitioned);
        return bytes;
    }
    uint64_t bytes = 0;
    // A mapped graph contributes nothing: its pages are reclaimable
    // page cache, not process heap. That is the whole point of the
    // out-of-core path -- a graph over the byte budget still runs.
    if (!a.fileBacked()) {
        bytes += vecBytes(a.own.graph.offsets().size(),
                          sizeof(uint64_t));
        bytes += vecBytes(a.own.graph.adjacency().size(),
                          sizeof(NodeId));
    }
    bytes += csrBytes(a.own.adjacency);
    if (a.hasPartitioning) {
        bytes += csrBytes(a.own.adjacencyPartitioned);
        bytes += vecBytes(a.own.relabel.newToOld.size(), sizeof(NodeId));
        bytes += vecBytes(a.own.relabel.clustering.clusterStart.size(),
                          sizeof(uint32_t));
        bytes += sizeof(uint64_t);
        for (const auto &list : a.own.hdnLists)
            bytes += vecBytes(list.size(), sizeof(NodeId));
    }
    return bytes;
}

WorkloadCache::WorkloadCache(std::string disk_dir) : dir_(std::move(disk_dir))
{
}

std::string
WorkloadCache::pathFor(const ArtifactKey &key) const
{
    return (fs::path(dir_) / (key.fingerprint() + ".growart")).string();
}

std::shared_ptr<const gcn::GraphArtifacts>
WorkloadCache::artifacts(const graph::DatasetSpec &spec,
                         graph::ScaleTier tier,
                         const gcn::PartitionPlan &plan)
{
    const ArtifactKey key = ArtifactKey::of(spec, tier, plan);
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = mem_.find(key);
        if (it != mem_.end()) {
            ++stats_.memoryHits;
            lru_.splice(lru_.begin(), lru_, it->second.pos);
            return it->second.bundle;
        }
    }

    // Build / load outside the lock: synthesis can take seconds and
    // independent keys should not serialize on each other.
    //
    // A sampled plan only adds the (cheap, deterministic) sampled
    // adjacency to the unsampled bundle: serve the base through the
    // cache first -- both the in-memory extension and the on-disk
    // extension file share it, so mixed model sweeps never hold (or
    // persist) the expensive graph-level payload twice.
    std::shared_ptr<const gcn::GraphArtifacts> baseBundle;
    if (plan.sampleFanout > 0) {
        gcn::PartitionPlan basePlan = plan;
        basePlan.sampleFanout = 0;
        baseBundle = artifacts(spec, tier, basePlan);
    }
    std::shared_ptr<const gcn::GraphArtifacts> built;
    bool fromDisk = false;
    bool diskFailed = false;
    if (!dir_.empty()) {
        const std::string path = pathFor(key);
        built = loadArtifacts(path, key, baseBundle);
        if (built)
            fromDisk = true;
        else if (fs::exists(fs::path(path)))
            diskFailed = true; // present but unusable: rebuild
    }
    if (!built) {
        uint32_t threads = 1;
        {
            std::lock_guard<std::mutex> lock(mu_);
            threads = buildThreads_;
        }
        built = baseBundle
                    ? gcn::extendWithSampling(baseBundle,
                                              plan.sampleFanout)
                    : gcn::buildGraphArtifacts(spec, tier, plan,
                                               threads);
    }

    bool stored = false;
    if (!dir_.empty() && !fromDisk)
        stored = saveArtifacts(pathFor(key), *built);

    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = mem_.try_emplace(key);
    if (!inserted) {
        // Another thread built the same key first; adopt its bundle so
        // every consumer shares one instance.
        ++stats_.memoryHits;
        lru_.splice(lru_.begin(), lru_, it->second.pos);
        return it->second.bundle;
    }
    it->second.bundle = built;
    lru_.push_front(key);
    it->second.pos = lru_.begin();
    it->second.bytes = artifactFootprintBytes(*built);
    totalBytes_ += it->second.bytes;
    if (!fromDisk && built->buildProfile.valid)
        buildLog_.emplace_back(spec.name, built->buildProfile);
    enforceCapLocked();
    if (fromDisk)
        ++stats_.diskLoads;
    else
        ++stats_.builds;
    if (diskFailed)
        ++stats_.diskFailures;
    if (stored)
        ++stats_.diskStores;
    return built;
}

gcn::GcnWorkload
WorkloadCache::workload(const graph::DatasetSpec &spec,
                        const gcn::WorkloadConfig &config)
{
    return gcn::buildLayerData(
        artifacts(spec, config.tier, config.partitionPlan()), config);
}

WorkloadCache::Stats
WorkloadCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

WorkloadCache::Snapshot
WorkloadCache::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    Snapshot s;
    s.counters = stats_;
    s.entries = mem_.size();
    s.bytes = totalBytes_;
    s.entryCap = entryCap_;
    s.byteCap = byteCap_;
    return s;
}

std::vector<std::pair<std::string, gcn::GraphArtifacts::BuildProfile>>
WorkloadCache::buildLog() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return buildLog_;
}

void
WorkloadCache::clearMemory()
{
    std::lock_guard<std::mutex> lock(mu_);
    mem_.clear();
    lru_.clear();
    totalBytes_ = 0;
}

void
WorkloadCache::setMemoryEntryCap(uint64_t max_entries)
{
    std::lock_guard<std::mutex> lock(mu_);
    entryCap_ = max_entries;
    enforceCapLocked();
}

uint64_t
WorkloadCache::memoryEntryCap() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entryCap_;
}

void
WorkloadCache::setMemoryByteCap(uint64_t max_bytes)
{
    std::lock_guard<std::mutex> lock(mu_);
    byteCap_ = max_bytes;
    enforceCapLocked();
}

uint64_t
WorkloadCache::memoryByteCap() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return byteCap_;
}

uint64_t
WorkloadCache::memoryBytes() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return totalBytes_;
}

void
WorkloadCache::setBuildThreads(uint32_t threads)
{
    std::lock_guard<std::mutex> lock(mu_);
    buildThreads_ = threads == 0 ? 1 : threads;
}

size_t
WorkloadCache::memoryEntries() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return mem_.size();
}

void
WorkloadCache::enforceCapLocked()
{
    auto evictOldest = [this] {
        auto it = mem_.find(lru_.back());
        totalBytes_ -= it->second.bytes;
        mem_.erase(it);
        lru_.pop_back();
    };
    if (entryCap_ != 0) {
        while (mem_.size() > entryCap_) {
            evictOldest();
            ++stats_.evictions;
        }
    }
    // Byte budget: evict LRU-first, but always retain the most
    // recently used entry so one over-budget bundle still runs.
    if (byteCap_ != 0) {
        while (totalBytes_ > byteCap_ && mem_.size() > 1) {
            evictOldest();
            ++stats_.evictionsByBytes;
        }
    }
}

} // namespace grow::driver
