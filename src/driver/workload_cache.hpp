/**
 * @file
 * Shared workload construction cache.
 *
 * Graph synthesis + partitioning dominates sweep start-up, yet every
 * depth/config of a sweep needs the *same* graph-level artefacts
 * (gcn::GraphArtifacts). The cache makes that sharing explicit, at two
 * levels:
 *
 *  - In memory: artefact bundles are memoised per (dataset, tier,
 *    partition plan) key, so a depth-1..k sweep over d datasets runs
 *    synthesis + partitioning exactly d times, not d*k times.
 *  - On disk (optional): bundles are persisted as binary files with a
 *    format-version header and payload checksum, so repeated bench/CI
 *    invocations skip synthesis entirely. A corrupted, truncated or
 *    stale-version file is never trusted: load returns null and the
 *    cache transparently falls back to a rebuild.
 *
 * Thread-safety: all public member functions are safe to call
 * concurrently; the returned bundles are immutable.
 */
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "gcn/workload.hpp"

namespace grow::driver {

/** Cache key: one graph-artefact bundle per distinct tuple. */
struct ArtifactKey
{
    std::string dataset;
    graph::ScaleTier tier = graph::ScaleTier::Mini;
    gcn::PartitionPlan plan;
    /**
     * Payload checksum of the backing .growcsr file for file-backed
     * datasets (0 for synthesized ones). Part of the key so replacing
     * the file behind a dataset name can never serve stale artefacts.
     */
    uint64_t fileChecksum = 0;

    /** Key for @p spec at @p tier under @p plan. */
    static ArtifactKey of(const graph::DatasetSpec &spec,
                          graph::ScaleTier tier,
                          const gcn::PartitionPlan &plan);

    /** Filesystem-safe identity, used as the on-disk file stem. */
    std::string fingerprint() const;

    bool operator<(const ArtifactKey &o) const;
};

/**
 * On-disk artefact format version. Bump whenever the serialized layout
 * *or the semantics of any serialized artefact* change (e.g. a
 * partitioning fix): stale files must miss, not poison results.
 *
 * v2: sampled-adjacency artefacts (SAGEConv fanout-k operand) appended
 *     to the payload; PartitionPlan::sampleFanout joined the key.
 * v3: a sampled bundle holds its unsampled base by shared_ptr and its
 *     file carries only the sampled *extension* (seed + sampled
 *     adjacencies); the graph-level payload lives solely in the base
 *     bundle's file and is re-attached at load time.
 * v4: file-backed bundles (dataset=file:<path>) serialize a flag
 *     instead of the graph arrays -- the graph stays in the .growcsr
 *     file and is re-mapped at load time; the spec fingerprint covers
 *     the source-file checksum.
 */
inline constexpr uint32_t kArtifactFormatVersion = 4;

/**
 * Serialize @p artifacts to @p path (binary; atomic via temp+rename).
 * A sampled bundle writes only its extension payload (see
 * kArtifactFormatVersion v3); the base bundle is saved under its own
 * key. Returns false (after logging) when the file cannot be written.
 */
bool saveArtifacts(const std::string &path,
                   const gcn::GraphArtifacts &artifacts);

/**
 * Deserialize an artefact bundle from @p path. Returns null -- never
 * throws, never returns partial data -- when the file is missing,
 * truncated, corrupted (checksum mismatch), from another format
 * version, or describes a different key than @p expected.
 *
 * When @p expected names a sampled plan the file holds only the
 * extension, so the unsampled @p base bundle (same dataset, tier and
 * base plan) must be supplied; the loaded bundle shares it. Loading a
 * base plan ignores @p base.
 */
std::shared_ptr<const gcn::GraphArtifacts>
loadArtifacts(const std::string &path, const ArtifactKey &expected,
              std::shared_ptr<const gcn::GraphArtifacts> base = nullptr);

/**
 * Heap footprint of @p artifacts, mirroring the serialized payload
 * layout (the dominant vectors and CSR arrays; per-bundle bookkeeping
 * is ignored). A mmap-backed graph counts as zero -- its pages live in
 * the page cache and are reclaimable, not held by this process. A
 * sampled extension counts only its own payload (the base is a
 * separate cache entry). Used to size the byte-budget memory cap.
 */
uint64_t artifactFootprintBytes(const gcn::GraphArtifacts &artifacts);

/**
 * Memoising construction front-end for workloads and their shared
 * graph artefacts.
 */
class WorkloadCache
{
  public:
    /** Counters exposed for tests and bench banners. */
    struct Stats
    {
        uint64_t builds = 0;       ///< artefact bundles built from scratch
        uint64_t memoryHits = 0;   ///< served from the in-memory map
        uint64_t diskLoads = 0;    ///< served from a valid disk file
        uint64_t diskStores = 0;   ///< files written after a build
        uint64_t diskFailures = 0; ///< unreadable/corrupt files skipped
        uint64_t evictions = 0;    ///< entries dropped by the entry cap
        /** Entries dropped by the byte-budget cap (memcap=). */
        uint64_t evictionsByBytes = 0;
    };

    /** In-memory-only cache. */
    WorkloadCache() = default;

    /**
     * Cache backed by @p disk_dir (created on first store). Pass an
     * empty string for in-memory-only behaviour.
     */
    explicit WorkloadCache(std::string disk_dir);

    /** Directory backing the disk layer ("" = memory only). */
    const std::string &diskDir() const { return dir_; }

    /**
     * The artefact bundle of (spec, tier, plan): served from memory,
     * then disk, then built (and stored to both).
     */
    std::shared_ptr<const gcn::GraphArtifacts>
    artifacts(const graph::DatasetSpec &spec, graph::ScaleTier tier,
              const gcn::PartitionPlan &plan = {});

    /**
     * Build the workload of @p spec under @p config on top of cached
     * artefacts. Per-layer features/weights are synthesised fresh (they
     * are cheap and depth-dependent); the graph-level bundle is shared.
     */
    gcn::GcnWorkload workload(const graph::DatasetSpec &spec,
                              const gcn::WorkloadConfig &config);

    Stats stats() const;

    /**
     * One coherent picture of the cache: counters plus the current
     * footprint and caps, all read under a single lock acquisition.
     * A metrics loop that polls a serving cache must use this instead
     * of stitching stats()/memoryEntries()/memoryBytes() together --
     * between separate calls a concurrent lookup can evict, so the
     * stitched numbers would describe no state the cache ever held.
     */
    struct Snapshot
    {
        Stats counters;
        uint64_t entries = 0;  ///< bundles currently in memory
        uint64_t bytes = 0;    ///< artefact payload bytes in memory
        uint64_t entryCap = 0; ///< 0 = unbounded
        uint64_t byteCap = 0;  ///< 0 = unbounded

        /** Artefact lookups served without a from-scratch build. */
        uint64_t reuses() const
        {
            return counters.memoryHits + counters.diskLoads;
        }
    };

    Snapshot snapshot() const;

    /** Drop the in-memory map (the disk layer is untouched). */
    void clearMemory();

    /**
     * Cap the in-memory map at @p max_entries bundles, evicting the
     * least-recently-used key past the cap (0 = unbounded, the
     * default). Long-lived serving processes sweep many (dataset, tier,
     * plan) keys whose bundles are hundreds of MB at scale; the cap
     * bounds that footprint. Only the memory layer is affected -- the
     * disk layer keeps every file, so an evicted key reloads from disk
     * instead of resynthesising. Bundles already handed out stay alive
     * through their shared_ptr; eviction merely drops the cache's
     * reference. Shrinking the cap below the current size evicts
     * immediately.
     */
    void setMemoryEntryCap(uint64_t max_entries);

    /** Current in-memory entry cap (0 = unbounded). */
    uint64_t memoryEntryCap() const;

    /**
     * Cap the in-memory map at @p max_bytes of artefact payload
     * (0 = unbounded, the default), measured by
     * artifactFootprintBytes(). Least-recently-used keys are evicted
     * past the budget, except the most recently inserted/used entry,
     * which is always retained: a single bundle larger than the budget
     * (the out-of-core case) still completes, it just shares with
     * nothing. Composes with the entry cap -- both are enforced.
     */
    void setMemoryByteCap(uint64_t max_bytes);

    /** Current in-memory byte cap (0 = unbounded). */
    uint64_t memoryByteCap() const;

    /** Total artefact payload bytes currently held in memory. */
    uint64_t memoryBytes() const;

    /**
     * Worker threads handed to buildGraphArtifacts() on a cache miss
     * (>= 1). Never part of any cache key: builds are bit-identical
     * across thread counts.
     */
    void setBuildThreads(uint32_t threads);

    /** Number of bundles currently held in memory (for tests). */
    size_t memoryEntries() const;

    /**
     * Per-dataset build profile of every bundle this process built
     * from scratch (disk loads and memory hits record nothing), in
     * build order. Survives eviction and clearMemory(): the log feeds
     * the profile=1 build_phase metric family, which must not lose
     * rows just because the byte cap reclaimed the bundle itself.
     */
    std::vector<std::pair<std::string, gcn::GraphArtifacts::BuildProfile>>
    buildLog() const;

  private:
    struct MemEntry
    {
        std::shared_ptr<const gcn::GraphArtifacts> bundle;
        /** Position in lru_ (front = most recently used). */
        std::list<ArtifactKey>::iterator pos;
        /** artifactFootprintBytes() of bundle, counted once at insert. */
        uint64_t bytes = 0;
    };

    std::string pathFor(const ArtifactKey &key) const;
    /** Evict past the entry and byte caps. Caller holds mu_. */
    void enforceCapLocked();

    mutable std::mutex mu_;
    std::string dir_;
    std::map<ArtifactKey, MemEntry> mem_;
    std::list<ArtifactKey> lru_;
    uint64_t entryCap_ = 0;
    uint64_t byteCap_ = 0;
    uint64_t totalBytes_ = 0;
    uint32_t buildThreads_ = 1;
    Stats stats_;
    std::vector<std::pair<std::string, gcn::GraphArtifacts::BuildProfile>> buildLog_;
};

} // namespace grow::driver
