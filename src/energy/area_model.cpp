#include "energy/area_model.hpp"

namespace grow::energy {

AreaBreakdown
estimateGrowArea(const GrowAreaInputs &inputs, ProcessNode node,
                 const AreaParams &params)
{
    auto kb = [](Bytes b) { return static_cast<double>(b) / 1024.0; };

    AreaBreakdown a;
    a.macArray = params.macMm2 * inputs.numMacs;
    a.iBufSparse = params.sramDualPortMm2PerKb * kb(inputs.iBufSparseBytes);
    a.hdnIdList = params.camMm2PerKb * kb(inputs.hdnIdListBytes);
    a.hdnCache = params.sramSinglePortMm2PerKb * kb(inputs.hdnCacheBytes);
    a.oBufDense = params.dffBufferMm2PerKb * kb(inputs.oBufDenseBytes);
    a.others = params.othersMm2;

    if (node == ProcessNode::Nm40) {
        double s = params.scaleTo40;
        a.macArray *= s;
        a.iBufSparse *= s;
        a.hdnIdList *= s;
        a.hdnCache *= s;
        a.oBufDense *= s;
        a.others *= s;
    }
    return a;
}

double
gcnaxReportedAreaMm2()
{
    return 6.51; // 40 nm, from the GCNAX paper (Table IV)
}

} // namespace grow::energy
