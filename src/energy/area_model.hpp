/**
 * @file
 * Analytical area model calibrated to Table IV.
 *
 * The paper measures GROW's area by synthesising the RTL with a 65 nm
 * standard-cell library and scales to 40 nm for the GCNAX comparison.
 * We cannot run Synopsys DC here, so we invert Table IV into per-unit
 * constants (mm^2 per KB of single-/dual-ported SRAM, per KB of CAM,
 * per 64-bit MAC) and rebuild the breakdown analytically. By
 * construction the default configuration reproduces Table IV; the model
 * then generalises to other buffer/MAC configurations for the
 * design-space example.
 */
#pragma once

#include <cstdint>
#include <string>

#include "sim/types.hpp"

namespace grow::energy {

/** Process node for area reporting. */
enum class ProcessNode { Nm65, Nm40 };

/** Per-unit area constants at 65 nm (derived from Table IV). */
struct AreaParams
{
    /** Single-ported SRAM (HDN cache banks): 3.569 mm^2 / 512 KB. */
    double sramSinglePortMm2PerKb = 3.569 / 512.0;
    /** Dual-ported SRAM (I-BUF_sparse): 0.319 mm^2 / 12 KB. */
    double sramDualPortMm2PerKb = 0.319 / 12.0;
    /** D-flipflop CAM (HDN ID list): 1.112 mm^2 / 12 KB. */
    double camMm2PerKb = 1.112 / 12.0;
    /** D-flipflop buffer (O-BUF_dense): 0.113 mm^2 / 2 KB. */
    double dffBufferMm2PerKb = 0.113 / 2.0;
    /** 64-bit MAC: 0.613 mm^2 / 16 MACs. */
    double macMm2 = 0.613 / 16.0;
    /** Control and glue ("Others" row). */
    double othersMm2 = 0.059;
    /** 65 nm -> 40 nm scale factor (Table IV: 2.191 / 5.785). */
    double scaleTo40 = 2.191 / 5.785;
};

/** Structural inputs of a GROW-like configuration. */
struct GrowAreaInputs
{
    uint32_t numMacs = 16;
    Bytes iBufSparseBytes = 12 * 1024;
    Bytes hdnIdListBytes = 12 * 1024;
    Bytes hdnCacheBytes = 512 * 1024;
    Bytes oBufDenseBytes = 2 * 1024;
};

/** Area split matching Table IV's rows (mm^2). */
struct AreaBreakdown
{
    double macArray = 0;
    double iBufSparse = 0;
    double hdnIdList = 0;
    double hdnCache = 0;
    double oBufDense = 0;
    double others = 0;

    double total() const
    {
        return macArray + iBufSparse + hdnIdList + hdnCache + oBufDense +
               others;
    }
};

/** Estimate the area of @p inputs at @p node. */
AreaBreakdown estimateGrowArea(const GrowAreaInputs &inputs,
                               ProcessNode node,
                               const AreaParams &params = AreaParams{});

/** GCNAX's reported area (40 nm, from its paper) for comparisons. */
double gcnaxReportedAreaMm2();

} // namespace grow::energy
