#include "energy/energy_model.hpp"

#include <cmath>

namespace grow::energy {

double
EnergyParams::sramAccessPj(Bytes capacity) const
{
    double kb = static_cast<double>(capacity) / 1024.0;
    return sramBasePj + sramSqrtPjPerKb * std::sqrt(kb);
}

double
EnergyParams::leakagePjPerCycle(Bytes total_sram_bytes) const
{
    double mw = logicLeakageMw +
                leakageMwPerKb * static_cast<double>(total_sram_bytes) /
                    1024.0;
    // mW = pJ/ns; cycles at clockGHz take 1/clockGHz ns.
    return mw / clockGHz;
}

EnergyBreakdown &
EnergyBreakdown::operator+=(const EnergyBreakdown &other)
{
    macPj += other.macPj;
    rfPj += other.rfPj;
    sramPj += other.sramPj;
    dramPj += other.dramPj;
    staticPj += other.staticPj;
    auxPj += other.auxPj;
    return *this;
}

double
auxiliaryUnitPj(const EnergyBreakdown &phase, double mac_area_fraction)
{
    return phase.macPj * mac_area_fraction;
}

EnergyBreakdown
computeEnergy(const EnergyParams &params, const ActivityCounts &activity)
{
    EnergyBreakdown e;
    e.macPj = params.macPj * static_cast<double>(activity.macOps);
    e.rfPj = params.rfAccessPj * params.rfAccessesPerMac *
             static_cast<double>(activity.macOps);
    for (const auto &s : activity.sram) {
        double per = s.isCam
                         ? params.camSearchPjPerKb *
                               (static_cast<double>(s.capacity) / 1024.0)
                         : params.sramAccessPj(s.capacity);
        e.sramPj += per * static_cast<double>(s.accesses);
    }
    e.dramPj =
        params.dramPjPerByte * static_cast<double>(activity.dramBytes);
    e.staticPj = params.leakagePjPerCycle(activity.onChipSramBytes) *
                 static_cast<double>(activity.cycles);
    return e;
}

} // namespace grow::energy
