/**
 * @file
 * Energy model (Sec. VI "Energy").
 *
 * Mirrors the paper's accounting: per-operation energies follow
 * Horowitz's ISSCC'14 survey for arithmetic and DRAM, CACTI-style
 * capacity scaling for on-chip SRAM dynamic energy, and CACTI leakage
 * for static energy. Energy is reported in the five categories of
 * Fig. 22: MAC (dynamic), register file (dynamic), SRAM (dynamic),
 * DRAM (dynamic) and leakage (static).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace grow::energy {

/** Per-operation energy constants (45 nm-class, pJ). */
struct EnergyParams
{
    /** One 64-bit multiply-accumulate. */
    double macPj = 20.0;
    /** One register-file operand access. */
    double rfAccessPj = 1.0;
    /** Operand accesses per MAC (two reads + one write). */
    double rfAccessesPerMac = 3.0;
    /** DRAM transfer energy per byte (~25 pJ/bit). */
    double dramPjPerByte = 200.0 / 8.0 * 1.0; // 25 pJ/bit
    /** SRAM access energy: base + slope * sqrt(capacity in KB), per 8 B. */
    double sramBasePj = 0.5;
    double sramSqrtPjPerKb = 0.8;
    /** CAM search energy per lookup, per KB of CAM. */
    double camSearchPjPerKb = 0.15;
    /** SRAM leakage density (mW per KB). */
    double leakageMwPerKb = 0.10;
    /** Fixed logic leakage (mW). */
    double logicLeakageMw = 10.0;
    /** Accelerator clock (GHz) for converting cycles to time. */
    double clockGHz = 1.0;

    /** Energy of one 8-byte access to an SRAM of @p capacity bytes. */
    double sramAccessPj(Bytes capacity) const;

    /** Static energy burned per cycle given total on-chip SRAM. */
    double leakagePjPerCycle(Bytes total_sram_bytes) const;
};

/** Access activity of one SRAM buffer during a phase. */
struct SramActivity
{
    Bytes capacity = 0;
    uint64_t accesses = 0;
    bool isCam = false;
};

/** Operation counts gathered by an engine during one phase. */
struct ActivityCounts
{
    uint64_t macOps = 0;
    Bytes dramBytes = 0;
    Cycle cycles = 0;
    std::vector<SramActivity> sram;
    /** Total on-chip SRAM capacity for leakage. */
    Bytes onChipSramBytes = 0;
};

/**
 * Energy split into the paper's Fig. 22 categories (pJ), plus the
 * auxiliary-unit category of the Sec. VIII model-zoo analysis (softmax
 * unit, comparator array): zero for every configuration the paper
 * evaluates, populated only by phases that exercise an extra unit.
 */
struct EnergyBreakdown
{
    double macPj = 0;
    double rfPj = 0;
    double sramPj = 0;
    double dramPj = 0;
    double staticPj = 0;
    double auxPj = 0; ///< extra functional unit (Sec. VIII overheads)

    double total() const
    {
        return macPj + rfPj + sramPj + dramPj + staticPj + auxPj;
    }

    EnergyBreakdown &operator+=(const EnergyBreakdown &other);
};

/** Convert activity counts into an energy breakdown. */
EnergyBreakdown computeEnergy(const EnergyParams &params,
                              const ActivityCounts &activity);

/**
 * Dynamic energy of an auxiliary functional unit exercised alongside
 * the MAC array during one phase: a unit synthesised at
 * @p mac_area_fraction of the MAC array, switched once per MAC-fed
 * element, burns that fraction of the phase's MAC energy (dynamic
 * energy tracks switched capacitance, which tracks area at a fixed
 * node). This is how the Sec. VIII softmax-unit and comparator-array
 * overheads reach the per-phase energy accounting.
 */
double auxiliaryUnitPj(const EnergyBreakdown &phase,
                       double mac_area_fraction);

} // namespace grow::energy
