#include "gcn/aggregators.hpp"

#include "util/logging.hpp"

namespace grow::gcn {

const std::vector<AggregatorSupport> &
aggregatorSupportMatrix()
{
    // Overhead figures from Sec. VIII: the pooling comparator array
    // synthesises to +1.4% of the 65 nm design; a conservative
    // table-based softmax (A3-style) adds ~16% of the MAC array,
    // i.e. ~1.7% chip-wide. The comparator array's MAC-array fraction
    // is derived from the published chip-wide ratios:
    // 0.014 / 0.017 * 0.16 ~= 0.132.
    static const std::vector<AggregatorSupport> matrix = {
        {Aggregator::WeightedSum, "gcn-weighted-sum", true, "", 0.0, 0.0,
         "The evaluated dataflow: scalar x vector MACs."},
        {Aggregator::SageMean, "sage-mean", true, "", 0.0, 0.0,
         "Sampled-node rows fetched via the row-stationary dataflow; "
         "mean runs on the MAC array."},
        {Aggregator::SagePool, "sage-pool", false,
         "vector comparator array", 0.014, 0.132,
         "Max-pool needs element-wise comparators beside the MACs."},
        {Aggregator::SageLstm, "sage-lstm", true, "", 0.0, 0.0,
         "LSTM gates execute as consecutive MAC passes."},
        {Aggregator::Gin, "gin", true, "", 0.0, 0.0,
         "Learnable central-node weight refactors into consecutive W "
         "matrices (as in GCNAX); supported as-is."},
        {Aggregator::GatAttention, "gat-attention", false,
         "softmax unit (table-based)", 0.017, 0.16,
         "MLPs run on the MAC array; softmax needs a dedicated unit "
         "(~16% of the MAC array area)."},
    };
    return matrix;
}

const AggregatorSupport &
aggregatorSupport(Aggregator a)
{
    for (const auto &s : aggregatorSupportMatrix())
        if (s.aggregator == a)
            return s;
    panic("unknown aggregator");
}

energy::AreaBreakdown
growAreaWithAggregator(Aggregator a, const energy::GrowAreaInputs &inputs)
{
    auto area = energy::estimateGrowArea(inputs,
                                         energy::ProcessNode::Nm65);
    const auto &support = aggregatorSupport(a);
    if (support.areaOverhead > 0.0) {
        // The extra unit is accounted under "others".
        area.others += area.total() * support.areaOverhead;
    }
    return area;
}

} // namespace grow::gcn
