/**
 * @file
 * Advanced aggregation functions (Sec. VIII, "GROW applicability for
 * advanced aggregation functions").
 *
 * The paper analyses what it would take for GROW to serve GNNs beyond
 * vanilla GCN aggregation (weighted sum):
 *
 *  - SAGEConv: mean / pool / LSTM over sampled neighbours. Mean and
 *    LSTM map onto the existing MAC array; pooling needs a vector
 *    comparator array (+1.4% area at 65 nm).
 *  - GIN: the learnable-epsilon central-node weighting refactors into
 *    consecutive W matrices; supported as-is.
 *  - GAT: attention requires MLP (MAC array) plus a softmax unit; a
 *    table-based softmax costs ~16% of the MAC array, a chip-wide
 *    ~1.7% overhead.
 *
 * This module encodes that feasibility/overhead analysis so the
 * design-space tooling can report it quantitatively.
 */
#pragma once

#include <string>
#include <vector>

#include "energy/area_model.hpp"

namespace grow::gcn {

/** Aggregation operator families discussed in Sec. VIII. */
enum class Aggregator {
    WeightedSum, ///< vanilla GCN (this paper's evaluation)
    SageMean,    ///< SAGEConv mean over sampled neighbours
    SagePool,    ///< SAGEConv max-pool (needs comparator array)
    SageLstm,    ///< SAGEConv LSTM (sequential MACs)
    Gin,         ///< GIN epsilon-weighted sum (refactored into W)
    GatAttention ///< GAT attention (MLP + softmax)
};

/** Feasibility verdict for one aggregator on the GROW pipeline. */
struct AggregatorSupport
{
    Aggregator aggregator;
    std::string name;
    /** Runs on the existing MAC array with no new hardware. */
    bool supportedAsIs = false;
    /** Extra functional unit required (empty if none). */
    std::string extraHardware;
    /** Chip-wide area overhead fraction at 65 nm (0 if none). */
    double areaOverhead = 0.0;
    /**
     * The extra unit's size as a fraction of the MAC array (0 if no
     * extra unit). Feeds energy::auxiliaryUnitPj for phases that
     * exercise the unit (model zoo lowering, src/gcn/model.hpp).
     */
    double macAreaFraction = 0.0;
    /** Paper's assessment, condensed. */
    std::string notes;
};

/** The Sec. VIII support matrix. */
const std::vector<AggregatorSupport> &aggregatorSupportMatrix();

/** Lookup by enum. */
const AggregatorSupport &aggregatorSupport(Aggregator a);

/**
 * GROW area including the extra unit an aggregator needs, at 65 nm.
 * WeightedSum/GIN/SageMean/SageLstm return the baseline area.
 */
energy::AreaBreakdown
growAreaWithAggregator(Aggregator a,
                       const energy::GrowAreaInputs &inputs = {});

} // namespace grow::gcn
