#include "gcn/model.hpp"

#include <algorithm>
#include <cctype>

#include "util/logging.hpp"

namespace grow::gcn {

const char *
modelKindName(ModelKind kind)
{
    switch (kind) {
      case ModelKind::Gcn: return "gcn";
      case ModelKind::SageMean: return "sage-mean";
      case ModelKind::SagePool: return "sage-pool";
      case ModelKind::Gin: return "gin";
      case ModelKind::Gat: return "gat";
    }
    panic("unknown ModelKind");
}

const char *
phaseOpName(PhaseOp op)
{
    switch (op) {
      case PhaseOp::Combination: return "combination";
      case PhaseOp::Aggregation: return "aggregation";
      case PhaseOp::AttentionScore: return "attention-score";
      case PhaseOp::HaloExchange: return "halo-exchange";
    }
    panic("unknown PhaseOp");
}

ModelKind
modelKindFromString(const std::string &s)
{
    std::string lower = s;
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    for (ModelKind kind : allModelKinds())
        if (lower == modelKindName(kind))
            return kind;
    std::string known;
    for (ModelKind kind : allModelKinds())
        known += (known.empty() ? "" : ", ") +
                 std::string(modelKindName(kind));
    fatal("unknown model: " + s + " (known: " + known + ")");
}

const std::vector<ModelKind> &
allModelKinds()
{
    static const std::vector<ModelKind> kinds = {
        ModelKind::Gcn, ModelKind::SageMean, ModelKind::SagePool,
        ModelKind::Gin, ModelKind::Gat};
    return kinds;
}

Aggregator
modelAggregator(ModelKind kind)
{
    switch (kind) {
      case ModelKind::Gcn: return Aggregator::WeightedSum;
      case ModelKind::SageMean: return Aggregator::SageMean;
      case ModelKind::SagePool: return Aggregator::SagePool;
      case ModelKind::Gin: return Aggregator::Gin;
      case ModelKind::Gat: return Aggregator::GatAttention;
    }
    panic("unknown ModelKind");
}

bool
modelUsesSampling(ModelKind kind)
{
    return kind == ModelKind::SageMean || kind == ModelKind::SagePool;
}

uint32_t
modelPhasesPerLayer(ModelKind kind)
{
    switch (kind) {
      case ModelKind::Gcn:
      case ModelKind::SageMean:
      case ModelKind::SagePool:
        return 2;
      case ModelKind::Gin: // combination, aggregation, MLP combination
      case ModelKind::Gat: // combination, attention score, aggregation
        return 3;
    }
    panic("unknown ModelKind");
}

double
modelAuxUnitMacFraction(ModelKind kind, PhaseOp op)
{
    const auto &support = aggregatorSupport(modelAggregator(kind));
    if (kind == ModelKind::Gat && op == PhaseOp::AttentionScore)
        return support.macAreaFraction;
    if (kind == ModelKind::SagePool && op == PhaseOp::Aggregation)
        return support.macAreaFraction;
    return 0.0;
}

} // namespace grow::gcn
