/**
 * @file
 * GNN model zoo: which layer types lower onto the GROW pipeline, and
 * what each lowers *to*.
 *
 * The paper evaluates vanilla GCN, but Sec. VIII analyses how the
 * advanced aggregation functions of SAGEConv, GIN and GAT map onto the
 * same row-stationary SpDeGEMM pipeline. This module turns that
 * analysis into executable lowerings: a ModelKind names the layer
 * type, and gcn::buildPhasePlan expands every layer of a workload into
 * the per-kind op sequence described here (see DESIGN.md "Model
 * lowering"):
 *
 *  - Gcn:      [Combination, Aggregation] -- the paper's evaluation,
 *              A*(X*W) over the normalized adjacency (Sec. II-B).
 *  - SageMean: [Combination, Aggregation] over the *sampled* adjacency
 *              (fanout-k uniform neighbour sampling, mean-normalized;
 *              graph::sampleNeighborAdjacency). Runs on the MAC array
 *              as-is (Sec. VIII).
 *  - SagePool: same lowering as SageMean, but the max-pool reduction
 *              exercises a vector comparator array beside the MACs
 *              (+1.4% chip area, Sec. VIII); the aggregation phases
 *              carry that extra unit's energy.
 *  - Gin:      [Combination, Aggregation, Combination] -- the
 *              aggregation streams GIN's sum operand A + (1+eps)I
 *              (the learnable central-node weight on the diagonal),
 *              and the MLP refactors into consecutive W phases (as in
 *              GCNAX, Sec. VIII -- no new hardware): the trailing
 *              combination is the second MLP stage applied to the
 *              aggregated output.
 *  - Gat:      [Combination, AttentionScore, Aggregation] -- per-edge
 *              attention scores lower as an SDDMM-shaped SpDeGEMM over
 *              the adjacency non-zeros, with the table-based softmax
 *              folded into the score phase (~16% of the MAC array,
 *              ~1.7% chip-wide, Sec. VIII).
 */
#pragma once

#include <string>
#include <vector>

#include "gcn/aggregators.hpp"

namespace grow::gcn {

/** GNN layer types lowered onto the PhasePlan abstraction. */
enum class ModelKind {
    Gcn,      ///< vanilla GCN (the paper's evaluation)
    SageMean, ///< SAGEConv, mean over sampled neighbours
    SagePool, ///< SAGEConv, max-pool over sampled neighbours
    Gin,      ///< GIN, epsilon folded into consecutive W phases
    Gat       ///< GAT, SDDMM attention scores + softmax-folded phase
};

/**
 * What one SpDeGEMM step of a plan computes at the model level. The
 * engines never interpret this -- they see only the problem shape --
 * but the runner's cycle/energy accounting and functional-output
 * threading are keyed on it.
 */
enum class PhaseOp {
    Combination,   ///< X * W, dense W resident on-chip
    Aggregation,   ///< A * (XW): weighted-sum / mean / pool reduction
    AttentionScore, ///< SDDMM-shaped per-edge score pass, softmax folded
    /**
     * Multi-chip boundary-feature exchange (src/scaleout/): before a
     * layer's adjacency-streaming steps can run, every chip pulls the
     * combination outputs of its remote boundary vertices across the
     * inter-chip links. Only plans lowered with RunOptions::chips > 1
     * carry this op; the single-chip executor rejects it (the scale-out
     * runner co-simulates it against the link models).
     */
    HaloExchange
};

/** Canonical CLI token of @p kind ("gcn", "sage-mean", ...). */
const char *modelKindName(ModelKind kind);

/** Short phase-op token for labels/diagnostics. */
const char *phaseOpName(PhaseOp op);

/** Parse a model token (case-insensitive); fatal() naming the known
 *  tokens when unknown. */
ModelKind modelKindFromString(const std::string &s);

/** Every ModelKind, in declaration order (the model-zoo sweep set). */
const std::vector<ModelKind> &allModelKinds();

/** The Sec. VIII aggregator family @p kind maps to (area/energy
 *  overhead provenance: aggregatorSupport(modelAggregator(kind))). */
Aggregator modelAggregator(ModelKind kind);

/** Whether @p kind aggregates over a sampled adjacency (SAGEConv's
 *  fanout-k operand) instead of the full normalized adjacency. */
bool modelUsesSampling(ModelKind kind);

/** SpDeGEMM steps per layer of @p kind (2 or 3). */
uint32_t modelPhasesPerLayer(ModelKind kind);

/**
 * MAC-array area fraction of the extra functional unit a phase of
 * (@p kind, @p op) exercises, 0 when the op runs on the stock MAC
 * array. Feeds energy::auxiliaryUnitPj: the softmax unit is exercised
 * by GAT's AttentionScore phases, the comparator array by SagePool's
 * Aggregation phases.
 */
double modelAuxUnitMacFraction(ModelKind kind, PhaseOp op);

} // namespace grow::gcn
