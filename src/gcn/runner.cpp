#include "gcn/runner.hpp"

#include "sparse/reference_gemm.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"

namespace grow::gcn {

namespace {

/** Element-wise accumulate classified traffic. */
void
mergeTraffic(mem::DramTraffic &into, const mem::DramTraffic &from)
{
    for (size_t i = 0; i < mem::kNumTrafficClasses; ++i) {
        into.readBytes[i] += from.readBytes[i];
        into.writeBytes[i] += from.writeBytes[i];
    }
}

/** Verify a functional output against the golden SpMM. */
void
checkFunctional(const accel::PhaseResult &result,
                const sparse::CsrMatrix &lhs,
                const sparse::DenseMatrix &rhs, const std::string &what)
{
    GROW_ASSERT(result.hasOutput, "functional run produced no output");
    auto golden = sparse::referenceSpMM(lhs, rhs);
    double diff = sparse::DenseMatrix::maxAbsDiff(golden, result.output);
    GROW_ASSERT(diff < 1e-9,
                "functional mismatch in " + what + " (max diff " +
                    fmtSci(diff) + ")");
}

/** Fold one executed phase into the inference aggregate. */
void
accumulatePhase(InferenceResult &res, uint32_t layer,
                accel::PhaseResult &&r, const energy::EnergyParams &params)
{
    PhaseMetrics pm;
    pm.layer = layer;
    pm.energy = energy::computeEnergy(params, r.activity);
    res.totalCycles += r.cycles;
    res.macOps += r.macOps;
    mergeTraffic(res.traffic, r.traffic);
    res.energy += pm.energy;
    if (r.phase == accel::Phase::Aggregation) {
        res.aggregationCycles += r.cycles;
        res.cacheHits += r.cacheHits;
        res.cacheMisses += r.cacheMisses;
    } else {
        res.combinationCycles += r.cycles;
    }
    // Drop bulky functional outputs before archiving.
    r.output = sparse::DenseMatrix();
    r.hasOutput = false;
    pm.result = std::move(r);
    res.phases.push_back(std::move(pm));
}

} // namespace

double
InferenceResult::cacheHitRate() const
{
    uint64_t total = cacheHits + cacheMisses;
    return total == 0 ? 0.0
                      : static_cast<double>(cacheHits) /
                            static_cast<double>(total);
}

PhasePlan
buildPhasePlan(const GcnWorkload &workload, const RunnerOptions &options)
{
    const bool part = options.usePartitioning;
    GROW_ASSERT(!part || workload.hasPartitioning(),
                "workload lacks partitioning artefacts");
    const bool functional = options.sim.functional;
    GROW_ASSERT(!functional || workload.hasFunctionalData(),
                "functional mode requires workload weights");
    GROW_ASSERT(workload.numLayers() >= 1, "workload has no layers");

    const sparse::CsrMatrix &A =
        part ? workload.adjacencyPartitioned() : workload.adjacency();

    PhasePlan plan;
    plan.reserve(2 * workload.numLayers());
    for (uint32_t layer = 0; layer < workload.numLayers(); ++layer) {
        const uint32_t outCols = workload.layer(layer).outDim;

        // ---- Combination: X(i) * W(i) (W resident on-chip) -----------
        PlannedPhase comb;
        comb.layer = layer;
        comb.problem.lhs =
            part ? &workload.xPartitioned(layer) : &workload.x(layer);
        comb.problem.rhsCols = outCols;
        comb.problem.rhs = functional ? &workload.weight(layer) : nullptr;
        comb.problem.phase = accel::Phase::Combination;
        comb.problem.rhsOnChip = true;
        plan.push_back(comb);

        // ---- Aggregation: A * (X(i)W(i)) -----------------------------
        // In functional mode the dense RHS is the preceding combination
        // output, threaded in by executePlan.
        PlannedPhase agg;
        agg.layer = layer;
        agg.problem.lhs = &A;
        agg.problem.rhsCols = outCols;
        agg.problem.phase = accel::Phase::Aggregation;
        if (part) {
            agg.problem.clustering = &workload.relabel().clustering;
            agg.problem.hdnLists = &workload.hdnLists();
        }
        plan.push_back(agg);
    }
    return plan;
}

InferenceResult
executePlan(accel::AcceleratorSim &engine, const PhasePlan &plan,
            const RunnerOptions &options)
{
    const bool functional = options.sim.functional;

    InferenceResult res;
    res.engine = engine.name();

    // The most recent combination output, pending consumption by the
    // same layer's aggregation step (functional mode only).
    sparse::DenseMatrix pending;
    bool hasPending = false;

    for (const PlannedPhase &step : plan) {
        accel::SpDeGemmProblem problem = step.problem;
        const bool isAggregation =
            problem.phase == accel::Phase::Aggregation;
        if (functional && isAggregation) {
            GROW_ASSERT(hasPending,
                        "aggregation step without a preceding "
                        "combination output");
            problem.rhs = &pending;
        }

        auto phaseRes = engine.run(problem, options.sim);
        if (functional) {
            checkFunctional(phaseRes, *problem.lhs, *problem.rhs,
                            std::string(accel::phaseName(problem.phase)) +
                                " layer " + std::to_string(step.layer));
            if (isAggregation) {
                hasPending = false;
            } else {
                pending = std::move(phaseRes.output);
                phaseRes.hasOutput = false;
                hasPending = true;
            }
        }
        accumulatePhase(res, step.layer, std::move(phaseRes),
                        options.energy);
    }
    return res;
}

InferenceResult
runInference(accel::AcceleratorSim &engine, const GcnWorkload &workload,
             const RunnerOptions &options)
{
    return executePlan(engine, buildPhasePlan(workload, options), options);
}

} // namespace grow::gcn
