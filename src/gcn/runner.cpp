#include "gcn/runner.hpp"

#include "sparse/reference_gemm.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"

namespace grow::gcn {

namespace {

/** Element-wise accumulate classified traffic. */
void
mergeTraffic(mem::DramTraffic &into, const mem::DramTraffic &from)
{
    for (size_t i = 0; i < mem::kNumTrafficClasses; ++i) {
        into.readBytes[i] += from.readBytes[i];
        into.writeBytes[i] += from.writeBytes[i];
    }
}

/** Verify a functional output against the golden SpMM. */
void
checkFunctional(const accel::PhaseResult &result,
                const sparse::CsrMatrix &lhs,
                const sparse::DenseMatrix &rhs, const std::string &what)
{
    GROW_ASSERT(result.hasOutput, "functional run produced no output");
    auto golden = sparse::referenceSpMM(lhs, rhs);
    double diff = sparse::DenseMatrix::maxAbsDiff(golden, result.output);
    GROW_ASSERT(diff < 1e-9,
                "functional mismatch in " + what + " (max diff " +
                    fmtSci(diff) + ")");
}

} // namespace

double
InferenceResult::cacheHitRate() const
{
    uint64_t total = cacheHits + cacheMisses;
    return total == 0 ? 0.0
                      : static_cast<double>(cacheHits) /
                            static_cast<double>(total);
}

InferenceResult
runInference(accel::AcceleratorSim &engine, const GcnWorkload &workload,
             const RunnerOptions &options)
{
    const bool part = options.usePartitioning;
    GROW_ASSERT(!part || workload.hasPartitioning,
                "workload lacks partitioning artefacts");
    const bool functional = options.sim.functional;
    GROW_ASSERT(!functional ||
                    (workload.w0.has_value() && workload.w1.has_value()),
                "functional mode requires workload weights");

    InferenceResult res;
    res.engine = engine.name();

    const sparse::CsrMatrix &A =
        part ? workload.adjacencyPartitioned : workload.adjacency;

    for (uint32_t layer = 0; layer < 2; ++layer) {
        const sparse::CsrMatrix &X =
            layer == 0 ? (part ? workload.x0Partitioned : workload.x0)
                       : (part ? workload.x1Partitioned : workload.x1);
        const uint32_t outCols = layer == 0 ? workload.shape.hidden
                                            : workload.shape.classes;
        const sparse::DenseMatrix *W =
            functional
                ? (layer == 0 ? &workload.w0.value() : &workload.w1.value())
                : nullptr;

        // ---- Combination: X * W (W resident on-chip) -----------------
        accel::SpDeGemmProblem comb;
        comb.lhs = &X;
        comb.rhsCols = outCols;
        comb.rhs = W;
        comb.phase = accel::Phase::Combination;
        comb.rhsOnChip = true;
        auto combRes = engine.run(comb, options.sim);
        if (functional)
            checkFunctional(combRes, X, *W,
                            "combination layer " + std::to_string(layer));

        // ---- Aggregation: A * (XW) -----------------------------------
        accel::SpDeGemmProblem agg;
        agg.lhs = &A;
        agg.rhsCols = outCols;
        sparse::DenseMatrix xw;
        if (functional) {
            xw = std::move(combRes.output);
            combRes.hasOutput = false;
            agg.rhs = &xw;
        }
        agg.phase = accel::Phase::Aggregation;
        if (part) {
            agg.clustering = &workload.relabel.clustering;
            agg.hdnLists = &workload.hdnLists;
        }
        auto aggRes = engine.run(agg, options.sim);
        if (functional)
            checkFunctional(aggRes, A, xw,
                            "aggregation layer " + std::to_string(layer));

        // ---- Bookkeeping ---------------------------------------------
        for (auto *r : {&combRes, &aggRes}) {
            PhaseMetrics pm;
            pm.layer = layer;
            pm.energy = energy::computeEnergy(options.energy, r->activity);
            res.totalCycles += r->cycles;
            res.macOps += r->macOps;
            mergeTraffic(res.traffic, r->traffic);
            res.energy += pm.energy;
            if (r->phase == accel::Phase::Aggregation) {
                res.aggregationCycles += r->cycles;
                res.cacheHits += r->cacheHits;
                res.cacheMisses += r->cacheMisses;
            } else {
                res.combinationCycles += r->cycles;
            }
            // Drop bulky functional outputs before archiving.
            r->output = sparse::DenseMatrix();
            r->hasOutput = false;
            pm.result = std::move(*r);
            res.phases.push_back(std::move(pm));
        }
    }
    return res;
}

} // namespace gcn
