#include "gcn/runner.hpp"

#include <functional>

#include "sparse/reference_gemm.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"
#include "util/wallclock.hpp"
#include "util/work_pool.hpp"

namespace grow::gcn {

namespace {

/** Element-wise accumulate classified traffic. */
void
mergeTraffic(mem::DramTraffic &into, const mem::DramTraffic &from)
{
    for (size_t i = 0; i < mem::kNumTrafficClasses; ++i) {
        into.readBytes[i] += from.readBytes[i];
        into.writeBytes[i] += from.writeBytes[i];
    }
}

/** "gat attention-score layer 2": phase identity for diagnostics. */
std::string
describePhase(const PlannedPhase &step)
{
    return std::string(modelKindName(step.model)) + " " +
           phaseOpName(step.op) + " layer " + std::to_string(step.layer);
}

/** Verify a functional output against the golden SpMM. */
void
checkFunctional(const accel::PhaseResult &result,
                const sparse::CsrMatrix &lhs,
                const sparse::DenseMatrix &rhs, const std::string &what)
{
    GROW_ASSERT(result.hasOutput, "functional run produced no output");
    auto golden = sparse::referenceSpMM(lhs, rhs);
    double diff = sparse::DenseMatrix::maxAbsDiff(golden, result.output);
    GROW_ASSERT(diff < 1e-9,
                "functional mismatch in " + what + " (max diff " +
                    fmtSci(diff) + ")");
}

/** Fold one executed phase into the inference aggregate. */
void
accumulatePhase(InferenceResult &res, const PlannedPhase &step,
                accel::PhaseResult &&r, const energy::EnergyParams &params,
                double host_ms)
{
    PhaseMetrics pm;
    pm.layer = step.layer;
    pm.op = step.op;
    pm.hostMillis = host_ms;
    res.simRows += step.problem.lhs->rows();
    pm.energy = energy::computeEnergy(params, r.activity);
    // Sec. VIII extra-unit energy: phases that exercise the softmax
    // unit (GAT scores) or the comparator array (SagePool reduction)
    // carry the unit's dynamic energy beside the MAC energy.
    const double auxFraction = modelAuxUnitMacFraction(step.model,
                                                       step.op);
    if (auxFraction > 0.0)
        pm.energy.auxPj = energy::auxiliaryUnitPj(pm.energy, auxFraction);
    res.totalCycles += r.cycles;
    res.macOps += r.macOps;
    mergeTraffic(res.traffic, r.traffic);
    res.energy += pm.energy;
    switch (step.op) {
      case PhaseOp::Combination:
        res.combinationCycles += r.cycles;
        break;
      case PhaseOp::Aggregation:
        res.aggregationCycles += r.cycles;
        res.cacheHits += r.cacheHits;
        res.cacheMisses += r.cacheMisses;
        break;
      case PhaseOp::AttentionScore:
        res.attentionCycles += r.cycles;
        res.cacheHits += r.cacheHits;
        res.cacheMisses += r.cacheMisses;
        break;
      case PhaseOp::HaloExchange:
        res.haloCycles += r.cycles;
        break;
    }
    // Drop bulky functional outputs before archiving.
    r.output = sparse::DenseMatrix();
    r.hasOutput = false;
    pm.result = std::move(r);
    res.phases.push_back(std::move(pm));
}

} // namespace

double
InferenceResult::cacheHitRate() const
{
    uint64_t total = cacheHits + cacheMisses;
    return total == 0 ? 0.0
                      : static_cast<double>(cacheHits) /
                            static_cast<double>(total);
}

PhasePlan
buildPhasePlan(const GcnWorkload &workload, const RunOptions &options)
{
    const bool part = options.usePartitioning;
    const bool sharded = options.chips > 1;
    GROW_ASSERT(options.chips >= 1, "chips must be >= 1");
    GROW_ASSERT(!sharded || part,
                "multi-chip lowering requires partitioning artefacts "
                "(the shard plan is built from the cluster structure)");
    GROW_ASSERT(!sharded || !options.sim.functional,
                "multi-chip lowering has no functional mode");
    GROW_ASSERT(!part || workload.hasPartitioning(),
                "workload lacks partitioning artefacts");
    const bool functional = options.sim.functional;
    GROW_ASSERT(!functional || workload.hasFunctionalData(),
                "functional mode requires workload weights");
    GROW_ASSERT(workload.numLayers() >= 1, "workload has no layers");
    const ModelKind model = workload.model;
    GROW_ASSERT(!modelUsesSampling(model) || workload.hasSampling(),
                "sampling model lacks the sampled-adjacency artefact");

    // The adjacency every non-combination step streams: SAGEConv
    // aggregates over the sampled fanout-k operand, GIN over the
    // epsilon-weighted sum operand A + (1+eps)I, everything else over
    // the full normalized adjacency.
    const sparse::CsrMatrix &A =
        modelUsesSampling(model)
            ? (part ? workload.adjacencySampledPartitioned()
                    : workload.adjacencySampled())
        : model == ModelKind::Gin
            ? (part ? workload.adjacencyGinPartitioned
                    : workload.adjacencyGin)
            : (part ? workload.adjacencyPartitioned()
                    : workload.adjacency());

    PhasePlan plan;
    plan.reserve(static_cast<size_t>(modelPhasesPerLayer(model) +
                                     (sharded ? 1 : 0)) *
                 workload.numLayers());

    // The dataflow mapping the plan is lowered against. Everything
    // engine-visible below (rhsOnChip, accel::Phase, artefact
    // attachment) is read from the spec of the step's phase class --
    // the lowering itself knows no engine.
    const mapping::EngineMapping &em =
        options.mapping ? *options.mapping : mapping::genericMapping();

    /** Derive the problem fields the spec dictates. */
    auto applySpec = [](PlannedPhase &ph,
                        const mapping::MappingSpec &spec) {
        ph.mapping = spec;
        ph.problem.rhsOnChip = spec.rhsResident();
        ph.problem.phase = spec.rhsResident()
                               ? accel::Phase::Combination
                               : accel::Phase::Aggregation;
    };

    // ---- Combination: X * W. The DenseResident spec declares whether
    // the engine keeps W on-chip (Sec. V-B). @p stage disambiguates
    // same-layer combinations in the provenance label (GIN's trailing
    // MLP pass). -------------------------------------------------------
    auto pushCombination = [&](uint32_t layer, const sparse::CsrMatrix &x,
                               const sparse::DenseMatrix *wts,
                               const char *stage = "") {
        PlannedPhase ph;
        ph.layer = layer;
        ph.model = model;
        ph.op = PhaseOp::Combination;
        ph.problem.lhs = &x;
        ph.problem.rhsCols = workload.layer(layer).outDim;
        ph.problem.rhs = functional ? wts : nullptr;
        applySpec(ph, em.spec(mapping::PhaseClass::DenseResident));
        ph.problem.label = describePhase(ph) + stage;
        plan.push_back(std::move(ph));
    };

    // ---- Adjacency-streaming step: aggregation A*(XW), or GAT's
    // SDDMM-shaped attention-score pass over the same non-zeros. In
    // functional mode the dense RHS is the preceding combination
    // output, threaded in by executePlan. GROW's preprocessing
    // artefacts apply to every step whose spec streams the sparse
    // operand (i.e. does not hold the dense operand resident).
    auto pushAdjacencyStep = [&](uint32_t layer, PhaseOp op) {
        PlannedPhase ph;
        ph.layer = layer;
        ph.model = model;
        ph.op = op;
        ph.problem.lhs = &A;
        ph.problem.rhsCols = workload.layer(layer).outDim;
        applySpec(ph, em.spec(mapping::PhaseClass::SparseStreaming));
        if (part && !ph.mapping.rhsResident()) {
            ph.problem.clustering = &workload.relabel().clustering;
            ph.problem.hdnLists = &workload.hdnLists();
        }
        ph.problem.label = describePhase(ph);
        plan.push_back(std::move(ph));
    };

    // ---- Halo exchange (multi-chip lowering only): before a layer's
    // adjacency-streaming steps, every chip pulls the combination
    // outputs of its remote boundary vertices across the inter-chip
    // links. The marker carries the adjacency (boundary structure) and
    // the layer's feature width; only scaleout::runInference can
    // execute it -- executePlan rejects plans that contain one. --------
    auto pushHalo = [&](uint32_t layer) {
        if (!sharded)
            return;
        PlannedPhase ph;
        ph.layer = layer;
        ph.model = model;
        ph.op = PhaseOp::HaloExchange;
        ph.problem.lhs = &A;
        ph.problem.rhsCols = workload.layer(layer).outDim;
        ph.problem.label = describePhase(ph);
        plan.push_back(std::move(ph));
    };

    for (uint32_t layer = 0; layer < workload.numLayers(); ++layer) {
        const sparse::CsrMatrix &x =
            part ? workload.xPartitioned(layer) : workload.x(layer);
        const sparse::DenseMatrix *wts =
            functional ? &workload.weight(layer) : nullptr;

        switch (model) {
          case ModelKind::Gcn:
          case ModelKind::SageMean:
          case ModelKind::SagePool:
            // X*W then A*(XW) -- the Sec. II-B order; SAGEConv only
            // swaps A for the sampled operand (Sec. VIII).
            pushCombination(layer, x, wts);
            pushHalo(layer);
            pushAdjacencyStep(layer, PhaseOp::Aggregation);
            break;
          case ModelKind::Gat:
            // Per-edge attention scores lower as an SDDMM-shaped
            // SpDeGEMM over the adjacency non-zeros, with the
            // table-based softmax folded into the score phase
            // (Sec. VIII); the weighted aggregation follows.
            pushCombination(layer, x, wts);
            pushHalo(layer);
            pushAdjacencyStep(layer, PhaseOp::AttentionScore);
            pushAdjacencyStep(layer, PhaseOp::Aggregation);
            break;
          case ModelKind::Gin:
            // The (1+eps) central-node weight sits on A_gin's
            // diagonal; the MLP is consecutive W phases (Sec. VIII --
            // no new hardware), the second stage a trailing
            // combination over the synthetic stand-in for the
            // aggregated output.
            pushCombination(layer, x, wts);
            pushHalo(layer);
            pushAdjacencyStep(layer, PhaseOp::Aggregation);
            pushCombination(layer,
                            part ? workload.xMlpPartitioned(layer)
                                 : workload.xMlp(layer),
                            functional ? &workload.mlpWeight(layer)
                                       : nullptr,
                            " (mlp stage 2)");
            break;
        }
    }
    return plan;
}

InferenceResult
executePlan(accel::AcceleratorSim &engine, const PhasePlan &plan,
            const RunOptions &options)
{
    const bool functional = options.sim.functional;
    for (const PlannedPhase &step : plan) {
        GROW_ASSERT(step.op != PhaseOp::HaloExchange,
                    "plan contains a halo-exchange step; only the "
                    "scale-out runner (scaleout::runInference) can "
                    "execute multi-chip plans");
    }
    util::WallClock runClock;

    InferenceResult res;
    res.engine = engine.name();
    if (!plan.empty()) {
        res.model = plan.front().model;
        res.modelAreaOverhead =
            aggregatorSupport(modelAggregator(res.model)).areaOverhead;
    }

    // Phase-parallel execution: outside functional mode no phase reads
    // another phase's output (the plan carries every operand), so the
    // phases of one inference fan out over the shared worker pool --
    // one cloned engine and one private DRAM model per phase -- and
    // fold back in plan order. Each phase's simulation is hermetic,
    // so the aggregate is bit-identical to the serial loop below for
    // every thread count. Functional mode threads combination outputs
    // between phases and stays serial.
    const uint32_t threads = std::max(1u, options.sim.threads);
    if (!functional && threads > 1 && plan.size() > 1) {
        std::vector<accel::PhaseResult> phaseResults(plan.size());
        std::vector<double> phaseMillis(plan.size(), 0.0);
        std::vector<std::function<void()>> tasks;
        tasks.reserve(plan.size());
        for (size_t i = 0; i < plan.size(); ++i) {
            tasks.emplace_back([&engine, &plan, &options, &phaseResults,
                                &phaseMillis, i] {
                util::ScopedTimer timer(phaseMillis[i]);
                auto worker = engine.clone();
                phaseResults[i] =
                    worker->run(plan[i].problem, options.sim);
            });
        }
        util::rethrowFirstError(
            util::WorkPool::shared().runAll(std::move(tasks), threads));
        for (size_t i = 0; i < plan.size(); ++i) {
            accumulatePhase(res, plan[i], std::move(phaseResults[i]),
                            options.energy, phaseMillis[i]);
        }
        res.hostMillis = runClock.elapsedMs();
        return res;
    }

    // The most recent combination output, pending consumption by a
    // downstream step of the same layer (functional mode only): an
    // attention-score step peeks at it, an aggregation step consumes
    // it, and a combination whose successor is another combination (or
    // the end of the plan) produces a terminal output instead.
    sparse::DenseMatrix pending;
    bool hasPending = false;

    for (size_t i = 0; i < plan.size(); ++i) {
        const PlannedPhase &step = plan[i];
        accel::SpDeGemmProblem problem = step.problem;
        if (functional && step.op != PhaseOp::Combination) {
            GROW_ASSERT(hasPending,
                        std::string(phaseOpName(step.op)) +
                            " step without a preceding combination "
                            "output (" +
                            describePhase(step) + ")");
            problem.rhs = &pending;
        }

        double phaseMs = 0.0;
        accel::PhaseResult phaseRes;
        {
            util::ScopedTimer timer(phaseMs);
            phaseRes = engine.run(problem, options.sim);
        }
        if (functional) {
            checkFunctional(phaseRes, *problem.lhs, *problem.rhs,
                            describePhase(step));
            switch (step.op) {
              case PhaseOp::Combination: {
                const PlannedPhase *next =
                    i + 1 < plan.size() ? &plan[i + 1] : nullptr;
                const bool feedsNext =
                    next != nullptr && next->layer == step.layer &&
                    next->op != PhaseOp::Combination;
                if (feedsNext) {
                    pending = std::move(phaseRes.output);
                    phaseRes.hasOutput = false;
                    hasPending = true;
                }
                // Otherwise (e.g. GIN's trailing MLP stage) the output
                // is the layer's terminal result: verified, then
                // dropped -- the next layer starts from its own
                // synthetic features (DESIGN.md substitutions).
                break;
              }
              case PhaseOp::AttentionScore:
                // Scores are consumed on-chip by the softmax unit; the
                // combination output still feeds the aggregation.
                break;
              case PhaseOp::Aggregation:
                hasPending = false;
                break;
              case PhaseOp::HaloExchange:
                panic("halo-exchange step in single-chip executor");
            }
        }
        accumulatePhase(res, step, std::move(phaseRes), options.energy,
                        phaseMs);
    }
    res.hostMillis = runClock.elapsedMs();
    GROW_ASSERT(!hasPending,
                "plan left a functional combination output unconsumed "
                "at end of plan (model " +
                    std::string(plan.empty()
                                    ? "?"
                                    : modelKindName(plan.front().model)) +
                    ")");
    return res;
}

InferenceResult
runInference(accel::AcceleratorSim &engine, const GcnWorkload &workload,
             const RunOptions &options)
{
    RunOptions opts = options;
    if (!opts.mapping) {
        opts.mapping = std::make_shared<mapping::EngineMapping>(
            engine.mapping());
    }
    return executePlan(engine, buildPhasePlan(workload, opts), opts);
}

} // namespace grow::gcn
