/**
 * @file
 * End-to-end GCN inference runner.
 *
 * Executes the 2-layer GCN of Table I as four SpDeGEMM phases
 * (combination then aggregation per layer, the A*(X*W) order of
 * Sec. II-B) on any AcceleratorSim, and aggregates cycles, classified
 * DRAM traffic, cache statistics and Fig. 22-style energy.
 */
#pragma once

#include <string>
#include <vector>

#include "accel/accelerator.hpp"
#include "energy/energy_model.hpp"
#include "gcn/workload.hpp"

namespace grow::gcn {

/** Options of one inference run. */
struct RunnerOptions
{
    accel::SimOptions sim;
    energy::EnergyParams energy;
    /**
     * Feed GROW's preprocessing artefacts (relabeled adjacency,
     * clustering, HDN lists) to the engine. Baselines ignore the
     * artefacts but still see the original-layout operands.
     */
    bool usePartitioning = false;
};

/** One executed phase with its energy. */
struct PhaseMetrics
{
    uint32_t layer = 0;
    accel::PhaseResult result;
    energy::EnergyBreakdown energy;
};

/** Whole-inference aggregate. */
struct InferenceResult
{
    std::string engine;
    Cycle totalCycles = 0;
    Cycle combinationCycles = 0;
    Cycle aggregationCycles = 0;
    uint64_t macOps = 0;
    mem::DramTraffic traffic;
    energy::EnergyBreakdown energy;
    uint64_t cacheHits = 0;
    uint64_t cacheMisses = 0;
    std::vector<PhaseMetrics> phases;

    /** Total DRAM bytes moved. */
    Bytes totalTrafficBytes() const { return traffic.total(); }

    /** Aggregate HDN cache hit rate across aggregation phases. */
    double cacheHitRate() const;
};

/**
 * Run 2-layer GCN inference for @p workload on @p engine.
 *
 * In functional mode (options.sim.functional) the combination outputs
 * feed the aggregation inputs and every phase output is checked against
 * sparse::referenceSpMM; a mismatch panics.
 */
InferenceResult runInference(accel::AcceleratorSim &engine,
                             const GcnWorkload &workload,
                             const RunnerOptions &options);

} // namespace grow::gcn
