/**
 * @file
 * End-to-end GNN inference runner.
 *
 * An N-layer model (Table I generalised) is lowered into a declarative
 * *phase plan*: an ordered list of SpDeGEMM problems whose per-layer
 * op sequence depends on the workload's ModelKind (vanilla GCN is
 * combination then aggregation, the A*(X*W) order of Sec. II-B; the
 * Sec. VIII model zoo adds attention-score and MLP steps -- see
 * src/gcn/model.hpp). A generic executor runs any plan on any
 * AcceleratorSim, threading functional combination outputs into the
 * downstream steps that consume them, and aggregates cycles,
 * classified DRAM traffic, cache statistics and Fig. 22-style energy.
 * See DESIGN.md for the layer-plan abstraction and model lowering.
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "accel/accelerator.hpp"
#include "energy/energy_model.hpp"
#include "gcn/model.hpp"
#include "gcn/workload.hpp"
#include "mapping/mapping.hpp"

namespace grow::gcn {

/** Options of one inference run. */
struct RunOptions
{
    accel::SimOptions sim;
    energy::EnergyParams energy;
    /**
     * Feed GROW's preprocessing artefacts (relabeled adjacency,
     * clustering, HDN lists) to the engine. Baselines ignore the
     * artefacts but still see the original-layout operands.
     */
    bool usePartitioning = false;
    /**
     * Number of chips the inference is sharded across. 1 lowers the
     * classic single-chip plan; > 1 makes buildPhasePlan insert one
     * HaloExchange step per layer ahead of the adjacency-streaming
     * steps, which only the scale-out runner (scaleout::runInference)
     * can execute -- the single-chip executePlan rejects such plans.
     */
    uint32_t chips = 1;
    /**
     * Dataflow mapping of the engine the plan will execute on.
     * runInference fills it from AcceleratorSim::mapping(); a plan
     * built without an engine in hand falls back to
     * mapping::genericMapping(), whose lowering-visible fields are
     * identical to every published engine mapping's.
     */
    std::shared_ptr<const mapping::EngineMapping> mapping;

    /** Fluent setters (the common knobs, chainable). */
    RunOptions &withThreads(uint32_t t)
    {
        sim.threads = t;
        return *this;
    }
    RunOptions &withPartitioning(bool on = true)
    {
        usePartitioning = on;
        return *this;
    }
    RunOptions &withChips(uint32_t n)
    {
        chips = n;
        return *this;
    }
    RunOptions &withFunctional(bool on = true)
    {
        sim.functional = on;
        return *this;
    }
};

/** Deprecated spelling of RunOptions (pre-scale-out API). */
using RunnerOptions = RunOptions;

/**
 * One step of a lowered inference: a fully described SpDeGEMM plus its
 * provenance in the model (layer index, model kind, model-level op).
 * For a functional step whose dense RHS is produced at execution time
 * by the layer's combination step (aggregation, attention score),
 * problem.rhs stays null in the plan.
 */
struct PlannedPhase
{
    uint32_t layer = 0;
    ModelKind model = ModelKind::Gcn;
    PhaseOp op = PhaseOp::Combination;
    accel::SpDeGemmProblem problem;
    /**
     * The dataflow spec this phase was lowered against (the engine
     * mapping's spec for the phase class of `op`). Every engine-
     * visible problem field above (rhsOnChip, phase, artefact
     * attachment) is derived from it -- the lowering itself carries no
     * per-engine knowledge.
     */
    mapping::MappingSpec mapping;
};

/**
 * Ordered lowering of one workload: modelPhasesPerLayer(model) * depth
 * SpDeGEMM steps. The plan borrows matrices from the workload it was
 * built from -- the workload must outlive the plan.
 */
using PhasePlan = std::vector<PlannedPhase>;

/** One executed phase with its energy. */
struct PhaseMetrics
{
    uint32_t layer = 0;
    PhaseOp op = PhaseOp::Combination;
    accel::PhaseResult result;
    energy::EnergyBreakdown energy;
    /** Host wall-clock spent simulating this phase (sim-speed). */
    double hostMillis = 0.0;
};

/** Whole-inference aggregate. */
struct InferenceResult
{
    std::string engine;
    ModelKind model = ModelKind::Gcn;
    Cycle totalCycles = 0;
    Cycle combinationCycles = 0;
    Cycle aggregationCycles = 0;
    Cycle attentionCycles = 0; ///< GAT attention-score phases
    Cycle haloCycles = 0; ///< multi-chip halo-exchange phases (scale-out)
    uint64_t macOps = 0;
    mem::DramTraffic traffic;
    energy::EnergyBreakdown energy;
    uint64_t cacheHits = 0;
    uint64_t cacheMisses = 0;
    /**
     * Chip-wide area overhead fraction of the extra unit the model
     * needs on GROW (Sec. VIII aggregatorSupportMatrix; 0 for models
     * that run on the stock MAC array).
     */
    double modelAreaOverhead = 0.0;
    std::vector<PhaseMetrics> phases;

    /**
     * Simulator throughput (sim-speed family): host wall-clock of the
     * whole executePlan call and the LHS rows simulated across its
     * phases. Host time is nondeterministic by nature -- it feeds the
     * opt-in `profile=` reporting only and never a golden-locked
     * table.
     */
    double hostMillis = 0.0;
    uint64_t simRows = 0;

    /** Total DRAM bytes moved. */
    Bytes totalTrafficBytes() const { return traffic.total(); }

    /** Aggregate HDN cache hit rate across the phases that stream RHS
     *  rows through the cache (aggregation and attention score). */
    double cacheHitRate() const;
};

/**
 * Lower @p workload into its ordered phase plan under @p options: for
 * each layer, the op sequence of workload.model (src/gcn/model.hpp),
 * with GROW's preprocessing artefacts attached to the steps that
 * stream the adjacency when options.usePartitioning. model=Gcn
 * reproduces the original 2-SpDeGEMM-per-layer lowering exactly.
 */
PhasePlan buildPhasePlan(const GcnWorkload &workload,
                         const RunOptions &options);

/**
 * Execute @p plan on @p engine and aggregate the per-phase metrics.
 *
 * With options.sim.threads > 1 (and outside functional mode) the
 * phases fan out over the shared worker pool, one cloned engine and
 * one private DRAM model per phase, and fold back in plan order --
 * bit-identical to the serial loop for every thread count (phases are
 * hermetic; see DESIGN.md "Parallel co-simulation").
 *
 * In functional mode (options.sim.functional) each combination output
 * feeds the downstream steps of its layer that consume it (attention
 * score peeks at it, aggregation consumes it, a trailing MLP
 * combination's output is terminal) and every phase output is checked
 * against sparse::referenceSpMM; a mismatch panics, as does a plan
 * that leaves a combination output unconsumed at the end. Functional
 * plans execute serially regardless of the thread budget.
 */
InferenceResult executePlan(accel::AcceleratorSim &engine,
                            const PhasePlan &plan,
                            const RunOptions &options);

/**
 * Run N-layer inference for @p workload on @p engine: convenience
 * wrapper for buildPhasePlan + executePlan.
 */
InferenceResult runInference(accel::AcceleratorSim &engine,
                             const GcnWorkload &workload,
                             const RunOptions &options);

} // namespace grow::gcn
