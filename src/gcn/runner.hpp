/**
 * @file
 * End-to-end GCN inference runner.
 *
 * An N-layer GCN (Table I generalised) is lowered into a declarative
 * *phase plan*: an ordered list of SpDeGEMM problems -- combination
 * then aggregation per layer, the A*(X*W) order of Sec. II-B. A
 * generic executor runs any plan on any AcceleratorSim, threading
 * functional combination outputs into the matching aggregation inputs,
 * and aggregates cycles, classified DRAM traffic, cache statistics and
 * Fig. 22-style energy. See DESIGN.md for the layer-plan abstraction.
 */
#pragma once

#include <string>
#include <vector>

#include "accel/accelerator.hpp"
#include "energy/energy_model.hpp"
#include "gcn/workload.hpp"

namespace grow::gcn {

/** Options of one inference run. */
struct RunnerOptions
{
    accel::SimOptions sim;
    energy::EnergyParams energy;
    /**
     * Feed GROW's preprocessing artefacts (relabeled adjacency,
     * clustering, HDN lists) to the engine. Baselines ignore the
     * artefacts but still see the original-layout operands.
     */
    bool usePartitioning = false;
};

/**
 * One step of a lowered inference: a fully described SpDeGEMM plus its
 * provenance in the model. For a functional aggregation step the dense
 * RHS is produced at execution time by the preceding combination step,
 * so problem.rhs stays null in the plan.
 */
struct PlannedPhase
{
    uint32_t layer = 0;
    accel::SpDeGemmProblem problem;
};

/**
 * Ordered lowering of one workload: 2 * depth SpDeGEMM steps. The plan
 * borrows matrices from the workload it was built from -- the workload
 * must outlive the plan.
 */
using PhasePlan = std::vector<PlannedPhase>;

/** One executed phase with its energy. */
struct PhaseMetrics
{
    uint32_t layer = 0;
    accel::PhaseResult result;
    energy::EnergyBreakdown energy;
};

/** Whole-inference aggregate. */
struct InferenceResult
{
    std::string engine;
    Cycle totalCycles = 0;
    Cycle combinationCycles = 0;
    Cycle aggregationCycles = 0;
    uint64_t macOps = 0;
    mem::DramTraffic traffic;
    energy::EnergyBreakdown energy;
    uint64_t cacheHits = 0;
    uint64_t cacheMisses = 0;
    std::vector<PhaseMetrics> phases;

    /** Total DRAM bytes moved. */
    Bytes totalTrafficBytes() const { return traffic.total(); }

    /** Aggregate HDN cache hit rate across aggregation phases. */
    double cacheHitRate() const;
};

/**
 * Lower @p workload into its ordered phase plan under @p options:
 * for each layer i, combination X(i)*W(i) (W on-chip) followed by
 * aggregation A*(X(i)W(i)), with GROW's preprocessing artefacts
 * attached to aggregation steps when options.usePartitioning.
 */
PhasePlan buildPhasePlan(const GcnWorkload &workload,
                         const RunnerOptions &options);

/**
 * Execute @p plan on @p engine and aggregate the per-phase metrics.
 *
 * In functional mode (options.sim.functional) each combination output
 * feeds the same layer's aggregation input and every phase output is
 * checked against sparse::referenceSpMM; a mismatch panics.
 */
InferenceResult executePlan(accel::AcceleratorSim &engine,
                            const PhasePlan &plan,
                            const RunnerOptions &options);

/**
 * Run N-layer GCN inference for @p workload on @p engine: convenience
 * wrapper for buildPhasePlan + executePlan.
 */
InferenceResult runInference(accel::AcceleratorSim &engine,
                             const GcnWorkload &workload,
                             const RunnerOptions &options);

} // namespace grow::gcn
