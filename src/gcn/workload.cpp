#include "gcn/workload.hpp"

#include <algorithm>
#include <chrono>

#include "graph/normalize.hpp"
#include "graph/sampling.hpp"
#include "partition/multilevel.hpp"
#include "sparse/convert.hpp"
#include "util/bitutil.hpp"
#include "util/logging.hpp"

namespace grow::gcn {

namespace {

/**
 * GIN's sum-aggregation operand A_gin = A + (1+eps)I: binary adjacency
 * with the learnable central-node weight on the diagonal (h' =
 * MLP((1+eps)h_v + sum_u h_u)). Built per workload -- eps is a model
 * knob, not a graph artefact.
 */
sparse::CsrMatrix
ginAdjacency(const graph::CsrView &g, double eps)
{
    const uint32_t n = g.numNodes();
    std::vector<uint64_t> rowPtr(n + 1, 0);
    std::vector<NodeId> colIdx;
    std::vector<double> values;
    colIdx.reserve(g.numArcs() + n);
    values.reserve(g.numArcs() + n);
    for (NodeId v = 0; v < n; ++v) {
        bool selfPlaced = false;
        for (NodeId u : g.neighbors(v)) {
            if (!selfPlaced && u > v) {
                colIdx.push_back(v);
                values.push_back(1.0 + eps);
                selfPlaced = true;
            }
            colIdx.push_back(u);
            values.push_back(1.0);
        }
        if (!selfPlaced) {
            colIdx.push_back(v);
            values.push_back(1.0 + eps);
        }
        rowPtr[v + 1] = colIdx.size();
    }
    return sparse::CsrMatrix::fromRaw(n, n, std::move(rowPtr),
                                      std::move(colIdx),
                                      std::move(values));
}

} // namespace

sparse::CsrMatrix
permuteRows(const sparse::CsrMatrix &m,
            const std::vector<NodeId> &new_to_old)
{
    GROW_ASSERT(new_to_old.size() == m.rows(), "permutation size mismatch");
    std::vector<uint64_t> rowPtr(m.rows() + 1, 0);
    for (NodeId i = 0; i < m.rows(); ++i)
        rowPtr[i + 1] = rowPtr[i] + m.rowNnz(new_to_old[i]);
    std::vector<NodeId> colIdx(m.nnz());
    std::vector<double> values(m.nnz());
    for (NodeId i = 0; i < m.rows(); ++i) {
        auto cols = m.rowCols(new_to_old[i]);
        auto vals = m.rowVals(new_to_old[i]);
        std::copy(cols.begin(), cols.end(), colIdx.begin() + rowPtr[i]);
        std::copy(vals.begin(), vals.end(), values.begin() + rowPtr[i]);
    }
    return sparse::CsrMatrix::fromRaw(m.rows(), m.cols(),
                                      std::move(rowPtr), std::move(colIdx),
                                      std::move(values));
}

std::vector<uint32_t>
layerDims(const graph::GcnShape &shape, uint32_t numLayers)
{
    GROW_ASSERT(numLayers >= 1, "a GCN model needs at least one layer");
    std::vector<uint32_t> dims;
    dims.reserve(numLayers + 1);
    dims.push_back(shape.inFeatures);
    for (uint32_t i = 1; i < numLayers; ++i)
        dims.push_back(shape.hidden);
    dims.push_back(shape.classes);
    return dims;
}

uint32_t
defaultClusterSize(const graph::GcnShape &shape, uint32_t hdn_top_n)
{
    // A cluster whose nodes all fit in the cache turns every
    // intra-cluster reference into a hit. 512 KB / (hidden x 8 B) rows,
    // capped by the 4096-entry CAM (Table III). Small graphs that fit
    // outright stay whole -- the paper partitions only the large graphs
    // into many clusters (Sec. V-C).
    uint32_t cacheRows = static_cast<uint32_t>(std::min<uint64_t>(
        hdn_top_n,
        (512 * 1024) /
            (static_cast<uint64_t>(shape.hidden) * kValueBytes)));
    return std::max(64u, cacheRows);
}

std::shared_ptr<const GraphArtifacts>
extendWithSampling(std::shared_ptr<const GraphArtifacts> base,
                   uint32_t fanout)
{
    GROW_ASSERT(base != nullptr && !base->hasSampling && fanout >= 1,
                "sampling extension needs an unsampled base and a "
                "positive fanout");
    auto a = std::make_shared<GraphArtifacts>();
    // Cheap identity fields are mirrored; the expensive graph-level
    // payload stays in the base and is reached through the accessors.
    a->spec = base->spec;
    a->tier = base->tier;
    a->plan = base->plan;
    a->plan.sampleFanout = fanout;
    a->hasPartitioning = base->hasPartitioning;
    a->maxClusterNodes = base->maxClusterNodes;
    a->base = std::move(base);
    // SAGEConv's fanout-k operand (Sec. VIII): depth-independent,
    // deterministic per (spec, tier, plan) like every other artefact
    // -- the seed derives from the dataset spec, not the per-workload
    // feature seed.
    a->sampleSeed = a->spec->seed * 131 + 17;
    a->adjacencySampled = graph::sampleNeighborAdjacency(
        a->graphView(), fanout, a->sampleSeed);
    if (a->hasPartitioning)
        a->adjacencySampledPartitioned =
            a->adjacencySampled.permutedSymmetric(a->relabel().newToOld);
    a->hasSampling = true;
    return a;
}

std::shared_ptr<const GraphArtifacts>
buildGraphArtifacts(const graph::DatasetSpec &spec, graph::ScaleTier tier,
                    const PartitionPlan &plan, uint32_t threads)
{
    if (plan.sampleFanout > 0) {
        PartitionPlan basePlan = plan;
        basePlan.sampleFanout = 0;
        return extendWithSampling(
            buildGraphArtifacts(spec, tier, basePlan, threads),
            plan.sampleFanout);
    }

    using Clock = std::chrono::steady_clock;
    auto msSince = [](Clock::time_point &mark) {
        const auto now = Clock::now();
        const double ms =
            std::chrono::duration<double, std::milli>(now - mark)
                .count();
        mark = now;
        return ms;
    };

    auto a = std::make_shared<GraphArtifacts>();
    a->spec = &graph::datasetByName(spec.name);
    a->tier = tier;
    a->plan = plan;

    GraphArtifacts::BuildProfile prof;
    prof.threads = std::max(1u, threads);
    const auto buildStart = Clock::now();
    auto mark = buildStart;

    if (spec.isFileBacked()) {
        // The graph stays on disk: every stage below streams it
        // through the mmap view. The file records the tier it was
        // written at; silently relabelling it would poison cache keys
        // and bench tables.
        if (tier != spec.sourceTier)
            fatal("dataset '" + spec.name + "' was converted at scale=" +
                  graph::tierName(spec.sourceTier) + "; pass scale=" +
                  graph::tierName(spec.sourceTier) +
                  " to use " + spec.sourceFile);
        a->own.mapped = graph::fileDatasetGraph(spec);
    } else {
        auto inst = graph::buildDataset(spec, tier);
        a->own.graph = std::move(inst.graph);
    }
    const graph::CsrView gv = a->graphView();
    prof.arcs = gv.numArcs();
    prof.synthMs = msSince(mark);

    a->own.adjacency =
        graph::normalizedAdjacency(gv, /*self_loops=*/true, threads);
    prof.normalizeMs = msSince(mark);

    if (plan.buildPartitioning) {
        const uint32_t n = gv.numNodes();
        const uint32_t clusterSize =
            plan.targetClusterSize
                ? plan.targetClusterSize
                : defaultClusterSize(spec.gcn, plan.hdnTopN);
        partition::PartitionConfig pc;
        // Ceiling division: floor would let a single cluster overshoot
        // the cache it was sized against (e.g. n=1000 at clusterSize=600
        // must give 2 clusters, not one 1000-row cluster).
        pc.numParts = std::max<uint32_t>(
            1, static_cast<uint32_t>(ceilDiv(n, clusterSize)));
        pc.seed = spec.seed * 31 + 11;
        pc.threads = threads;
        partition::MultilevelPartitioner partitioner(pc);
        auto parts = partitioner.partition(gv);
        prof.partitionMs = msSince(mark);

        a->own.relabel = partition::relabelByPartition(n, parts);
        // The partitioner's balance bound is soft; make it hard so no
        // cluster exceeds the HDN cache capacity it was sized for.
        a->own.relabel.clustering = partition::splitOversizedClusters(
            a->own.relabel.clustering, clusterSize);
        a->maxClusterNodes = clusterSize;
        a->own.adjacencyPartitioned = a->own.adjacency.permutedSymmetric(
            a->own.relabel.newToOld, threads);
        prof.relabelMs = msSince(mark);

        // Intra-cluster ranking straight off the original view + the
        // permutation: the relabeled graph is never materialized.
        a->own.hdnLists = partition::selectHdnPerCluster(
            gv, a->own.relabel, plan.hdnTopN, threads);
        prof.hdnMs = msSince(mark);
        a->hasPartitioning = true;
    }

    prof.totalMs = std::chrono::duration<double, std::milli>(
                       Clock::now() - buildStart)
                       .count();
    prof.valid = true;
    a->buildProfile = prof;
    return a;
}

GcnWorkload
buildLayerData(std::shared_ptr<const GraphArtifacts> artifacts,
               const WorkloadConfig &config)
{
    GROW_ASSERT(artifacts != nullptr, "workload needs graph artefacts");
    GROW_ASSERT(artifacts->tier == config.tier,
                "workload tier does not match its graph artefacts");
    GROW_ASSERT(artifacts->hasPartitioning == config.buildPartitioning,
                "workload partitioning does not match its artefacts");
    GROW_ASSERT(!modelUsesSampling(config.model) ||
                    (artifacts->hasSampling &&
                     artifacts->plan.sampleFanout == config.sageFanout),
                "sampling model needs artefacts built with its fanout");

    GcnWorkload w;
    w.artifacts = std::move(artifacts);
    w.model = config.model;

    const graph::DatasetSpec &spec = *w.spec();
    const uint32_t n = w.nodes();
    Rng rng(config.seed * 1000003 + spec.seed);

    // Layer plan: X(0) at Table I's x0 density; every deeper X(i)
    // stands in for a post-ReLU feature map, for which Table I only
    // publishes the density after layer 1 -- reuse it for all of them
    // (see DESIGN.md substitutions).
    const auto dims = layerDims(spec.gcn, config.numLayers);
    w.layers.resize(config.numLayers);
    for (uint32_t i = 0; i < config.numLayers; ++i) {
        w.layers[i].index = i;
        w.layers[i].inDim = dims[i];
        w.layers[i].outDim = dims[i + 1];
        w.layers[i].xDensity = i == 0 ? spec.x0Density : spec.x1Density;
    }

    // Synthetic feature matrices at the published densities (Table I).
    // The draw order below (features, then GIN extras, then weights)
    // keeps the model=Gcn random stream identical to the pre-model-zoo
    // builder, so default workloads reproduce bit-for-bit.
    w.features.reserve(config.numLayers);
    for (const auto &layer : w.layers)
        w.features.push_back(
            sparse::randomCsr(n, layer.inDim, layer.xDensity, rng));

    if (config.model == ModelKind::Gin) {
        // X'(i): sparse stand-in for relu(A_gin X(i) W(i)), the input
        // of the layer's trailing MLP combination. Post-ReLU maps
        // carry the published x1Density (DESIGN.md substitutions).
        w.mlpFeatures.reserve(config.numLayers);
        for (const auto &layer : w.layers)
            w.mlpFeatures.push_back(sparse::randomCsr(
                n, layer.outDim, spec.x1Density, rng));
        // The epsilon-weighted central node enters the aggregation
        // operand's diagonal; every layer shares one A_gin (no rng).
        w.ginEpsilon = config.ginEpsilon;
        w.adjacencyGin = ginAdjacency(w.graphView(), config.ginEpsilon);
        if (w.hasPartitioning())
            w.adjacencyGinPartitioned =
                w.adjacencyGin.permutedSymmetric(w.relabel().newToOld);
    }

    if (w.hasPartitioning()) {
        w.featuresPartitioned.reserve(w.features.size());
        for (const auto &x : w.features)
            w.featuresPartitioned.push_back(
                permuteRows(x, w.relabel().newToOld));
        w.mlpFeaturesPartitioned.reserve(w.mlpFeatures.size());
        for (const auto &x : w.mlpFeatures)
            w.mlpFeaturesPartitioned.push_back(
                permuteRows(x, w.relabel().newToOld));
    }

    if (config.functionalData) {
        w.weights.reserve(config.numLayers);
        for (const auto &layer : w.layers)
            w.weights.push_back(
                sparse::randomDense(layer.inDim, layer.outDim, rng));
        if (config.model == ModelKind::Gin) {
            w.mlpWeights.reserve(config.numLayers);
            for (const auto &layer : w.layers)
                w.mlpWeights.push_back(sparse::randomDense(
                    layer.outDim, layer.outDim, rng));
        }
    }
    return w;
}

GcnWorkload
buildWorkload(const graph::DatasetSpec &spec, const WorkloadConfig &config)
{
    return buildLayerData(
        buildGraphArtifacts(spec, config.tier, config.partitionPlan()),
        config);
}

} // namespace grow::gcn
