#include "gcn/workload.hpp"

#include <algorithm>

#include "graph/normalize.hpp"
#include "partition/multilevel.hpp"
#include "sparse/convert.hpp"
#include "util/logging.hpp"

namespace grow::gcn {

sparse::CsrMatrix
permuteRows(const sparse::CsrMatrix &m,
            const std::vector<NodeId> &new_to_old)
{
    GROW_ASSERT(new_to_old.size() == m.rows(), "permutation size mismatch");
    std::vector<uint64_t> rowPtr(m.rows() + 1, 0);
    for (NodeId i = 0; i < m.rows(); ++i)
        rowPtr[i + 1] = rowPtr[i] + m.rowNnz(new_to_old[i]);
    std::vector<NodeId> colIdx(m.nnz());
    std::vector<double> values(m.nnz());
    for (NodeId i = 0; i < m.rows(); ++i) {
        auto cols = m.rowCols(new_to_old[i]);
        auto vals = m.rowVals(new_to_old[i]);
        std::copy(cols.begin(), cols.end(), colIdx.begin() + rowPtr[i]);
        std::copy(vals.begin(), vals.end(), values.begin() + rowPtr[i]);
    }
    return sparse::CsrMatrix::fromRaw(m.rows(), m.cols(),
                                      std::move(rowPtr), std::move(colIdx),
                                      std::move(values));
}

GcnWorkload
buildWorkload(const graph::DatasetSpec &spec, const WorkloadConfig &config)
{
    GcnWorkload w;
    w.spec = &graph::datasetByName(spec.name);
    w.tier = config.tier;
    w.shape = spec.gcn;

    auto inst = graph::buildDataset(spec, config.tier);
    w.graph = std::move(inst.graph);
    w.adjacency = graph::normalizedAdjacency(w.graph, /*self_loops=*/true);

    const uint32_t n = w.graph.numNodes();
    Rng rng(config.seed * 1000003 + spec.seed);

    // Feature matrices at the published densities (Table I).
    w.x0 = sparse::randomCsr(n, spec.gcn.inFeatures, spec.x0Density, rng);
    w.x1 = sparse::randomCsr(n, spec.gcn.hidden, spec.x1Density, rng);

    if (config.buildPartitioning) {
        // Default cluster granularity tracks the HDN cache: a cluster
        // whose nodes all fit in the cache turns every intra-cluster
        // reference into a hit. 512 KB / (hidden x 8 B) rows, capped by
        // the 4096-entry CAM (Table III). Small graphs that fit outright
        // stay whole -- the paper partitions only the large graphs into
        // many clusters (Sec. V-C).
        uint32_t cacheRows = static_cast<uint32_t>(std::min<uint64_t>(
            config.hdnTopN,
            (512 * 1024) /
                (static_cast<uint64_t>(spec.gcn.hidden) * kValueBytes)));
        const uint32_t clusterSize = config.targetClusterSize
                                         ? config.targetClusterSize
                                         : std::max(64u, cacheRows);
        partition::PartitionConfig pc;
        pc.numParts = std::max(1u, n / clusterSize);
        pc.seed = spec.seed * 31 + 11;
        partition::MultilevelPartitioner partitioner(pc);
        auto parts = partitioner.partition(w.graph);
        w.relabel = partition::relabelByPartition(n, parts);
        auto relabeledGraph = w.graph.relabeled(w.relabel.newToOld);
        w.adjacencyPartitioned =
            w.adjacency.permutedSymmetric(w.relabel.newToOld);
        w.hdnLists = partition::selectHdnPerCluster(
            relabeledGraph, w.relabel.clustering, config.hdnTopN);
        w.x0Partitioned = permuteRows(w.x0, w.relabel.newToOld);
        w.x1Partitioned = permuteRows(w.x1, w.relabel.newToOld);
        w.hasPartitioning = true;
    }

    if (config.functionalData) {
        w.w0 = sparse::randomDense(spec.gcn.inFeatures, spec.gcn.hidden,
                                   rng);
        w.w1 = sparse::randomDense(spec.gcn.hidden, spec.gcn.classes, rng);
    }
    return w;
}

} // namespace grow::gcn
