#include "gcn/workload.hpp"

#include <algorithm>

#include "graph/normalize.hpp"
#include "partition/multilevel.hpp"
#include "sparse/convert.hpp"
#include "util/logging.hpp"

namespace grow::gcn {

sparse::CsrMatrix
permuteRows(const sparse::CsrMatrix &m,
            const std::vector<NodeId> &new_to_old)
{
    GROW_ASSERT(new_to_old.size() == m.rows(), "permutation size mismatch");
    std::vector<uint64_t> rowPtr(m.rows() + 1, 0);
    for (NodeId i = 0; i < m.rows(); ++i)
        rowPtr[i + 1] = rowPtr[i] + m.rowNnz(new_to_old[i]);
    std::vector<NodeId> colIdx(m.nnz());
    std::vector<double> values(m.nnz());
    for (NodeId i = 0; i < m.rows(); ++i) {
        auto cols = m.rowCols(new_to_old[i]);
        auto vals = m.rowVals(new_to_old[i]);
        std::copy(cols.begin(), cols.end(), colIdx.begin() + rowPtr[i]);
        std::copy(vals.begin(), vals.end(), values.begin() + rowPtr[i]);
    }
    return sparse::CsrMatrix::fromRaw(m.rows(), m.cols(),
                                      std::move(rowPtr), std::move(colIdx),
                                      std::move(values));
}

std::vector<uint32_t>
layerDims(const graph::GcnShape &shape, uint32_t numLayers)
{
    GROW_ASSERT(numLayers >= 1, "a GCN model needs at least one layer");
    std::vector<uint32_t> dims;
    dims.reserve(numLayers + 1);
    dims.push_back(shape.inFeatures);
    for (uint32_t i = 1; i < numLayers; ++i)
        dims.push_back(shape.hidden);
    dims.push_back(shape.classes);
    return dims;
}

GcnWorkload
buildWorkload(const graph::DatasetSpec &spec, const WorkloadConfig &config)
{
    GcnWorkload w;
    w.spec = &graph::datasetByName(spec.name);
    w.tier = config.tier;
    w.shape = spec.gcn;

    auto inst = graph::buildDataset(spec, config.tier);
    w.graph = std::move(inst.graph);
    w.adjacency = graph::normalizedAdjacency(w.graph, /*self_loops=*/true);

    const uint32_t n = w.graph.numNodes();
    Rng rng(config.seed * 1000003 + spec.seed);

    // Layer plan: X(0) at Table I's x0 density; every deeper X(i)
    // stands in for a post-ReLU feature map, for which Table I only
    // publishes the density after layer 1 -- reuse it for all of them
    // (see DESIGN.md substitutions).
    const auto dims = layerDims(spec.gcn, config.numLayers);
    w.layers.resize(config.numLayers);
    for (uint32_t i = 0; i < config.numLayers; ++i) {
        w.layers[i].index = i;
        w.layers[i].inDim = dims[i];
        w.layers[i].outDim = dims[i + 1];
        w.layers[i].xDensity = i == 0 ? spec.x0Density : spec.x1Density;
    }

    // Synthetic feature matrices at the published densities (Table I).
    w.features.reserve(config.numLayers);
    for (const auto &layer : w.layers)
        w.features.push_back(
            sparse::randomCsr(n, layer.inDim, layer.xDensity, rng));

    if (config.buildPartitioning) {
        // Default cluster granularity tracks the HDN cache: a cluster
        // whose nodes all fit in the cache turns every intra-cluster
        // reference into a hit. 512 KB / (hidden x 8 B) rows, capped by
        // the 4096-entry CAM (Table III). Small graphs that fit outright
        // stay whole -- the paper partitions only the large graphs into
        // many clusters (Sec. V-C).
        uint32_t cacheRows = static_cast<uint32_t>(std::min<uint64_t>(
            config.hdnTopN,
            (512 * 1024) /
                (static_cast<uint64_t>(spec.gcn.hidden) * kValueBytes)));
        const uint32_t clusterSize = config.targetClusterSize
                                         ? config.targetClusterSize
                                         : std::max(64u, cacheRows);
        partition::PartitionConfig pc;
        pc.numParts = std::max(1u, n / clusterSize);
        pc.seed = spec.seed * 31 + 11;
        partition::MultilevelPartitioner partitioner(pc);
        auto parts = partitioner.partition(w.graph);
        w.relabel = partition::relabelByPartition(n, parts);
        auto relabeledGraph = w.graph.relabeled(w.relabel.newToOld);
        w.adjacencyPartitioned =
            w.adjacency.permutedSymmetric(w.relabel.newToOld);
        w.hdnLists = partition::selectHdnPerCluster(
            relabeledGraph, w.relabel.clustering, config.hdnTopN);
        w.featuresPartitioned.reserve(w.features.size());
        for (const auto &x : w.features)
            w.featuresPartitioned.push_back(
                permuteRows(x, w.relabel.newToOld));
        w.hasPartitioning = true;
    }

    if (config.functionalData) {
        w.weights.reserve(config.numLayers);
        for (const auto &layer : w.layers)
            w.weights.push_back(
                sparse::randomDense(layer.inDim, layer.outDim, rng));
    }
    return w;
}

} // namespace grow::gcn
