/**
 * @file
 * GCN inference workload construction.
 *
 * A workload bundles everything a bench needs to run one dataset
 * through an N-layer GCN (Table I's "Feature length F0-H-C" shape,
 * generalised to arbitrary depth {F0, H1..Hk-1, C}):
 *
 *  - the synthetic graph and its normalized adjacency (Eq. 1);
 *  - GROW's preprocessing artefacts: METIS-like partition,
 *    cluster-contiguous relabeling and per-cluster HDN ID lists
 *    (Sec. V-C), alongside the *original* layout used by the
 *    baselines (Table II: their preprocessing is "None");
 *  - one synthetic feature matrix X(i) per layer at the densities of
 *    Table I (X(i), i >= 1, stands in for relu(A X(i-1) W(i-1)) of a
 *    trained model -- see DESIGN.md substitutions);
 *  - optional dense per-layer weight matrices for functional
 *    verification.
 *
 * Construction is split in two so sweeps don't redo graph work per
 * depth (DESIGN.md "Shared graph artefacts"):
 *
 *  - buildGraphArtifacts() produces the depth-independent bundle
 *    (graph, normalized adjacency, partitioning, relabeling, HDN
 *    lists), immutable and shared between workloads;
 *  - buildLayerData() layers the cheap per-depth data (features,
 *    weights) on top of a shared bundle.
 *
 * buildWorkload() remains the one-shot convenience composition.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "gcn/model.hpp"
#include "graph/datasets.hpp"
#include "graph/file_graph.hpp"
#include "graph/graph.hpp"
#include "partition/hdn_select.hpp"
#include "partition/relabel.hpp"
#include "sparse/csr_matrix.hpp"
#include "sparse/dense_matrix.hpp"

namespace grow::gcn {

/**
 * The graph-level slice of workload construction: everything that is
 * independent of model depth and feature synthesis. Two workloads with
 * equal partition plans (and dataset + tier) can share one artefact
 * bundle.
 */
struct PartitionPlan
{
    /** Build partitioning artefacts (clustering + HDN lists). */
    bool buildPartitioning = true;
    /** Target nodes per cluster (0 = derive from the HDN cache). */
    uint32_t targetClusterSize = 0;
    /** HDN IDs stored per cluster (CAM capacity, Sec. V-C). */
    uint32_t hdnTopN = 4096;
    /**
     * Neighbour-sampling fanout (SAGEConv's fanout-k operand,
     * Sec. VIII); 0 skips the sampled-adjacency artefact. The sampling
     * seed is derived from the dataset spec, so the artefact stays
     * deterministic per (dataset, tier, plan).
     */
    uint32_t sampleFanout = 0;
};

/** Knobs of workload construction. */
struct WorkloadConfig
{
    graph::ScaleTier tier = graph::ScaleTier::Mini;
    /** GNN layer type the workload will be lowered as. */
    ModelKind model = ModelKind::Gcn;
    /** Model depth k >= 1 (number of graph-convolution layers). */
    uint32_t numLayers = 2;
    /** Build partitioning artefacts (clustering + HDN lists). */
    bool buildPartitioning = true;
    /** Target nodes per cluster (0 = library default of the cache size). */
    uint32_t targetClusterSize = 0;
    /** HDN IDs stored per cluster (CAM capacity, Sec. V-C). */
    uint32_t hdnTopN = 4096;
    /** Neighbours sampled per node for the SAGEConv models. */
    uint32_t sageFanout = 10;
    /**
     * GIN's learnable epsilon: the (1+eps) central-node weight on the
     * diagonal of the GIN sum-aggregation operand (h' = MLP((1+eps)h_v
     * + sum_u h_u)).
     */
    double ginEpsilon = 0.1;
    /** Also synthesise dense weights for functional verification. */
    bool functionalData = false;
    uint64_t seed = 7;

    /** The graph-level slice of this config. */
    PartitionPlan partitionPlan() const
    {
        return {buildPartitioning, targetClusterSize, hdnTopN,
                modelUsesSampling(model) ? sageFanout : 0};
    }
};

/**
 * One GCN layer of the model: X(i)[N x inDim] is combined with
 * W(i)[inDim x outDim] and aggregated over A (the A*(X*W) order of
 * Sec. II-B).
 */
struct LayerSpec
{
    uint32_t index = 0;
    uint32_t inDim = 0;   ///< input feature length of this layer
    uint32_t outDim = 0;  ///< output feature length of this layer
    double xDensity = 0.0; ///< density of the synthetic X(i)
};

/**
 * Per-layer feature lengths {F0, H, .., H, C} for a depth-k model of
 * @p shape: a 1-layer model maps F0 directly to C; deeper models place
 * k-1 hidden layers of width H in between. Size is numLayers + 1.
 */
std::vector<uint32_t> layerDims(const graph::GcnShape &shape,
                                uint32_t numLayers);

/**
 * Immutable depth-independent artefacts of one (dataset, tier,
 * partition plan): the synthetic graph, its normalized adjacency, and
 * GROW's preprocessing outputs. Shared (by shared_ptr) between every
 * workload built on top of it -- never mutated after construction.
 *
 * A *sampled* bundle (plan.sampleFanout > 0) owns only the cheap
 * sampled-adjacency extension and holds its unsampled base bundle by
 * shared_ptr: the expensive graph-level payload exists once in memory
 * no matter how many fanouts extend it, and the disk cache serializes
 * only the extension (see driver::saveArtifacts). Consumers go through
 * the accessor methods, which forward to the base transparently.
 */
struct GraphArtifacts
{
    const graph::DatasetSpec *spec = nullptr;
    graph::ScaleTier tier = graph::ScaleTier::Mini;
    PartitionPlan plan;

    /** Partitioning artefacts built (mirrors the base for extensions). */
    bool hasPartitioning = false;
    /** Hard per-cluster node bound the clustering honours (0 = none). */
    uint32_t maxClusterNodes = 0;

    /**
     * The expensive graph-level payload. Populated on base bundles
     * only; a sampled extension leaves it empty and forwards to
     * *base. Use the accessors below, not the members.
     */
    struct Payload
    {
        graph::Graph graph; ///< original labelling (heap bundles)
        /**
         * The mmap-backed graph of a file-backed bundle
         * (dataset=file:<path>); null for synthesized bundles, whose
         * graph lives in `graph`. Exactly one of the two is populated
         * -- consumers stream either through graphView().
         */
        std::shared_ptr<const graph::MappedCsrGraph> mapped;
        /** Normalized adjacency, original labelling (baselines). */
        sparse::CsrMatrix adjacency;
        sparse::CsrMatrix adjacencyPartitioned; ///< relabeled
        partition::RelabelResult relabel;
        std::vector<std::vector<NodeId>> hdnLists; ///< relabeled IDs
    } own;

    /** Unsampled base this bundle extends (null on base bundles). */
    std::shared_ptr<const GraphArtifacts> base;

    /** Sampled-adjacency artefacts (empty unless plan.sampleFanout,
     *  which also records the fanout they were drawn with). */
    bool hasSampling = false;
    uint64_t sampleSeed = 0; ///< derived from the dataset spec
    /** Mean-normalized fanout-k sampled adjacency, original labelling. */
    sparse::CsrMatrix adjacencySampled;
    /** Relabeled copy (empty unless also hasPartitioning). */
    sparse::CsrMatrix adjacencySampledPartitioned;

    /** Graph-level payload (the base's for a sampled extension). */
    const Payload &payload() const { return base ? base->own : own; }

    /**
     * CSR view of the graph -- the heap copy or the mmap-backed file.
     * This is the accessor every consumer should stream through.
     */
    graph::CsrView graphView() const
    {
        const Payload &p = payload();
        return p.mapped ? p.mapped->view() : p.graph.view();
    }

    /** Whether the graph streams from a mmap-backed .growcsr file. */
    bool fileBacked() const { return payload().mapped != nullptr; }

    /**
     * The heap graph. EMPTY on file-backed bundles (the graph stays on
     * disk) -- use graphView() unless you specifically need the heap
     * object.
     */
    const graph::Graph &graph() const { return payload().graph; }
    const sparse::CsrMatrix &adjacency() const
    {
        return payload().adjacency;
    }
    const sparse::CsrMatrix &adjacencyPartitioned() const
    {
        return payload().adjacencyPartitioned;
    }
    const partition::RelabelResult &relabel() const
    {
        return payload().relabel;
    }
    const std::vector<std::vector<NodeId>> &hdnLists() const
    {
        return payload().hdnLists;
    }

    uint32_t nodes() const { return graphView().numNodes(); }

    /**
     * Wall-clock profile of the build that produced this bundle
     * (profile=1 benches emit it as the build_phase metric family).
     * Valid only when the bundle was actually built in this process;
     * cache hits and disk loads leave it invalid.
     */
    struct BuildProfile
    {
        bool valid = false;
        uint32_t threads = 1;      ///< workers the build ran with
        double synthMs = 0.0;      ///< graph synthesis or file mapping
        double normalizeMs = 0.0;  ///< normalized adjacency build
        double partitionMs = 0.0;  ///< multilevel partitioning
        double relabelMs = 0.0;    ///< relabel + permuted adjacency
        double hdnMs = 0.0;        ///< per-cluster HDN ranking
        double totalMs = 0.0;
        uint64_t arcs = 0;         ///< graph arcs processed

        /** Arc throughput of the whole build (the edges/s metric). */
        double arcsPerSec() const
        {
            return totalMs > 0.0
                       ? static_cast<double>(arcs) / (totalMs / 1000.0)
                       : 0.0;
        }
    };

    BuildProfile buildProfile;
};

/**
 * Default nodes-per-cluster target for @p shape: a cluster whose nodes
 * all fit in the HDN cache turns every intra-cluster reference into a
 * hit. 512 KB / (hidden x 8 B) rows, capped by the 4096-entry CAM
 * (Table III), floored at 64.
 */
uint32_t defaultClusterSize(const graph::GcnShape &shape, uint32_t hdn_top_n);

/**
 * Synthesise the graph of @p spec at @p tier (or mmap it for a
 * file-backed spec) and run the partitioning preprocessing of @p plan.
 * Deterministic for (spec, tier, plan); the depth/seed knobs of
 * WorkloadConfig do not affect the result, and neither does
 * @p threads: only order-independent disjoint-write stages are
 * parallelized (in thread-count-independent chunks), so every thread
 * count yields a bit-identical bundle.
 */
std::shared_ptr<const GraphArtifacts>
buildGraphArtifacts(const graph::DatasetSpec &spec, graph::ScaleTier tier,
                    const PartitionPlan &plan = {}, uint32_t threads = 1);

/**
 * Extend @p base (built without sampling) with the sampled-adjacency
 * artefact for @p fanout. The returned bundle *shares* the base by
 * shared_ptr -- no graph-level payload is copied or rebuilt -- and is
 * bit-identical (through the accessors) to building the sampled plan
 * from scratch.
 */
std::shared_ptr<const GraphArtifacts>
extendWithSampling(std::shared_ptr<const GraphArtifacts> base,
                   uint32_t fanout);

/** A fully constructed per-dataset workload. */
struct GcnWorkload
{
    /** Shared graph-level artefacts (never null after construction). */
    std::shared_ptr<const GraphArtifacts> artifacts;

    /** GNN layer type this workload is lowered as. */
    ModelKind model = ModelKind::Gcn;

    /** Per-layer shape/density plan; size is the model depth. */
    std::vector<LayerSpec> layers;

    /** Per-layer feature matrices X(i), original labelling. */
    std::vector<sparse::CsrMatrix> features;
    /** Row-permuted copies matching adjacencyPartitioned(). */
    std::vector<sparse::CsrMatrix> featuresPartitioned;

    /** Per-layer dense weights W(i) (empty unless functionalData). */
    std::vector<sparse::DenseMatrix> weights;

    /**
     * GIN-only operands. The aggregation streams the GIN sum operand
     * A_gin = A + (1+eps)I (binary adjacency, epsilon-weighted self
     * loop -- GIN's central-node weighting lives here, not in a
     * normalized A). X'(i) is the synthetic sparse stand-in for
     * relu(A_gin X(i) W(i)) that feeds the trailing MLP combination of
     * layer i (see DESIGN.md substitutions), and mlpWeights holds its
     * outDim x outDim weight.
     */
    double ginEpsilon = 0.0;
    sparse::CsrMatrix adjacencyGin;
    sparse::CsrMatrix adjacencyGinPartitioned;
    std::vector<sparse::CsrMatrix> mlpFeatures;
    std::vector<sparse::CsrMatrix> mlpFeaturesPartitioned;
    std::vector<sparse::DenseMatrix> mlpWeights;

    /** Dataset the workload was built from (null only if default-
     *  constructed; every built workload has one). */
    const graph::DatasetSpec *spec() const
    {
        return artifacts ? artifacts->spec : nullptr;
    }
    graph::ScaleTier tier() const { return artifacts->tier; }
    /** Table I layer shape {F0, H, C} of the dataset. */
    const graph::GcnShape &shape() const { return artifacts->spec->gcn; }

    /** The synthetic graph, original labelling. EMPTY on file-backed
     *  workloads -- stream through graphView() instead. */
    const graph::Graph &graph() const { return artifacts->graph(); }
    /** CSR view of the graph (heap or mmap-backed). */
    graph::CsrView graphView() const { return artifacts->graphView(); }
    /** Normalized adjacency, original labelling. */
    const sparse::CsrMatrix &adjacency() const
    {
        return artifacts->adjacency();
    }
    /** Whether partitioning artefacts were built. */
    bool hasPartitioning() const { return artifacts->hasPartitioning; }
    /** Normalized adjacency in the cluster-contiguous labelling. */
    const sparse::CsrMatrix &adjacencyPartitioned() const
    {
        return artifacts->adjacencyPartitioned();
    }
    /** Relabeling permutation + cluster layout. */
    const partition::RelabelResult &relabel() const
    {
        return artifacts->relabel();
    }
    /** Per-cluster HDN ID lists (relabeled IDs). */
    const std::vector<std::vector<NodeId>> &hdnLists() const
    {
        return artifacts->hdnLists();
    }

    /** Whether the sampled-adjacency artefact was built. */
    bool hasSampling() const { return artifacts->hasSampling; }
    /** Sampled adjacency (SAGEConv operand), original labelling. */
    const sparse::CsrMatrix &adjacencySampled() const
    {
        return artifacts->adjacencySampled;
    }
    /** Sampled adjacency in the cluster-contiguous labelling. */
    const sparse::CsrMatrix &adjacencySampledPartitioned() const
    {
        return artifacts->adjacencySampledPartitioned;
    }

    uint32_t nodes() const { return artifacts->nodes(); }
    uint32_t numLayers() const
    {
        return static_cast<uint32_t>(layers.size());
    }

    const LayerSpec &layer(uint32_t i) const { return layers.at(i); }
    /** Input feature matrix of layer @p i, original labelling. */
    const sparse::CsrMatrix &x(uint32_t i) const { return features.at(i); }
    /** Input feature matrix of layer @p i, partitioned labelling. */
    const sparse::CsrMatrix &xPartitioned(uint32_t i) const
    {
        return featuresPartitioned.at(i);
    }
    /** Dense weight matrix of layer @p i (functionalData only). */
    const sparse::DenseMatrix &weight(uint32_t i) const
    {
        return weights.at(i);
    }
    /** GIN second-MLP-stage input of layer @p i, original labelling. */
    const sparse::CsrMatrix &xMlp(uint32_t i) const
    {
        return mlpFeatures.at(i);
    }
    /** GIN second-MLP-stage input of layer @p i, partitioned. */
    const sparse::CsrMatrix &xMlpPartitioned(uint32_t i) const
    {
        return mlpFeaturesPartitioned.at(i);
    }
    /** GIN second-MLP-stage weight of layer @p i (functionalData). */
    const sparse::DenseMatrix &mlpWeight(uint32_t i) const
    {
        return mlpWeights.at(i);
    }
    bool hasFunctionalData() const { return !weights.empty(); }
};

/**
 * Layer the per-depth data (synthetic features, optional weights) of
 * @p config on top of shared @p artifacts. The expensive graph-level
 * state is borrowed, not rebuilt: any number of depths/seeds can reuse
 * one bundle. config.tier and the partition knobs must match the ones
 * the artefacts were built with.
 */
GcnWorkload buildLayerData(std::shared_ptr<const GraphArtifacts> artifacts,
                           const WorkloadConfig &config);

/** Build the workload for @p spec under @p config (one-shot). */
GcnWorkload buildWorkload(const graph::DatasetSpec &spec,
                          const WorkloadConfig &config);

/** Permute the rows of a CSR matrix: row i of result = row map[i]. */
sparse::CsrMatrix permuteRows(const sparse::CsrMatrix &m,
                              const std::vector<NodeId> &new_to_old);

} // namespace grow::gcn
