/**
 * @file
 * GCN inference workload construction.
 *
 * A workload bundles everything a bench needs to run one dataset
 * through an N-layer GCN (Table I's "Feature length F0-H-C" shape,
 * generalised to arbitrary depth {F0, H1..Hk-1, C}):
 *
 *  - the synthetic graph and its normalized adjacency (Eq. 1);
 *  - GROW's preprocessing artefacts: METIS-like partition,
 *    cluster-contiguous relabeling and per-cluster HDN ID lists
 *    (Sec. V-C), alongside the *original* layout used by the
 *    baselines (Table II: their preprocessing is "None");
 *  - one synthetic feature matrix X(i) per layer at the densities of
 *    Table I (X(i), i >= 1, stands in for relu(A X(i-1) W(i-1)) of a
 *    trained model -- see DESIGN.md substitutions);
 *  - optional dense per-layer weight matrices for functional
 *    verification.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "graph/datasets.hpp"
#include "graph/graph.hpp"
#include "partition/hdn_select.hpp"
#include "partition/relabel.hpp"
#include "sparse/csr_matrix.hpp"
#include "sparse/dense_matrix.hpp"

namespace grow::gcn {

/** Knobs of workload construction. */
struct WorkloadConfig
{
    graph::ScaleTier tier = graph::ScaleTier::Mini;
    /** Model depth k >= 1 (number of graph-convolution layers). */
    uint32_t numLayers = 2;
    /** Build partitioning artefacts (clustering + HDN lists). */
    bool buildPartitioning = true;
    /** Target nodes per cluster (0 = library default of 700). */
    uint32_t targetClusterSize = 0;
    /** HDN IDs stored per cluster (CAM capacity, Sec. V-C). */
    uint32_t hdnTopN = 4096;
    /** Also synthesise dense weights for functional verification. */
    bool functionalData = false;
    uint64_t seed = 7;
};

/**
 * One GCN layer of the model: X(i)[N x inDim] is combined with
 * W(i)[inDim x outDim] and aggregated over A (the A*(X*W) order of
 * Sec. II-B).
 */
struct LayerSpec
{
    uint32_t index = 0;
    uint32_t inDim = 0;   ///< input feature length of this layer
    uint32_t outDim = 0;  ///< output feature length of this layer
    double xDensity = 0.0; ///< density of the synthetic X(i)
};

/**
 * Per-layer feature lengths {F0, H, .., H, C} for a depth-k model of
 * @p shape: a 1-layer model maps F0 directly to C; deeper models place
 * k-1 hidden layers of width H in between. Size is numLayers + 1.
 */
std::vector<uint32_t> layerDims(const graph::GcnShape &shape,
                                uint32_t numLayers);

/** A fully constructed per-dataset workload. */
struct GcnWorkload
{
    const graph::DatasetSpec *spec = nullptr;
    graph::ScaleTier tier = graph::ScaleTier::Mini;
    graph::GcnShape shape;

    /** Per-layer shape/density plan; size is the model depth. */
    std::vector<LayerSpec> layers;

    graph::Graph graph; ///< original labelling

    /** Normalized adjacency in the original labelling (baselines). */
    sparse::CsrMatrix adjacency;

    /** Partitioning artefacts (empty unless buildPartitioning). */
    bool hasPartitioning = false;
    sparse::CsrMatrix adjacencyPartitioned; ///< relabeled
    partition::RelabelResult relabel;
    std::vector<std::vector<NodeId>> hdnLists; ///< relabeled IDs

    /** Per-layer feature matrices X(i), original labelling. */
    std::vector<sparse::CsrMatrix> features;
    /** Row-permuted copies matching adjacencyPartitioned. */
    std::vector<sparse::CsrMatrix> featuresPartitioned;

    /** Per-layer dense weights W(i) (empty unless functionalData). */
    std::vector<sparse::DenseMatrix> weights;

    uint32_t nodes() const { return graph.numNodes(); }
    uint32_t numLayers() const
    {
        return static_cast<uint32_t>(layers.size());
    }

    const LayerSpec &layer(uint32_t i) const { return layers.at(i); }
    /** Input feature matrix of layer @p i, original labelling. */
    const sparse::CsrMatrix &x(uint32_t i) const { return features.at(i); }
    /** Input feature matrix of layer @p i, partitioned labelling. */
    const sparse::CsrMatrix &xPartitioned(uint32_t i) const
    {
        return featuresPartitioned.at(i);
    }
    /** Dense weight matrix of layer @p i (functionalData only). */
    const sparse::DenseMatrix &weight(uint32_t i) const
    {
        return weights.at(i);
    }
    bool hasFunctionalData() const { return !weights.empty(); }
};

/** Build the workload for @p spec under @p config. */
GcnWorkload buildWorkload(const graph::DatasetSpec &spec,
                          const WorkloadConfig &config);

/** Permute the rows of a CSR matrix: row i of result = row map[i]. */
sparse::CsrMatrix permuteRows(const sparse::CsrMatrix &m,
                              const std::vector<NodeId> &new_to_old);

} // namespace grow::gcn
