/**
 * @file
 * GCN inference workload construction.
 *
 * A workload bundles everything a bench needs to run one dataset
 * through a 2-layer GCN (Table I's "Feature length F0-H-C"):
 *
 *  - the synthetic graph and its normalized adjacency (Eq. 1);
 *  - GROW's preprocessing artefacts: METIS-like partition,
 *    cluster-contiguous relabeling and per-cluster HDN ID lists
 *    (Sec. V-C), alongside the *original* layout used by the
 *    baselines (Table II: their preprocessing is "None");
 *  - feature matrices X(0)/X(1) synthesised at the densities of
 *    Table I (X(1) stands in for relu(A X(0) W(0)) of a trained
 *    model -- see DESIGN.md substitutions);
 *  - optional dense weight matrices for functional verification.
 */
#pragma once

#include <cstdint>
#include <optional>

#include "graph/datasets.hpp"
#include "graph/graph.hpp"
#include "partition/hdn_select.hpp"
#include "partition/relabel.hpp"
#include "sparse/csr_matrix.hpp"
#include "sparse/dense_matrix.hpp"

namespace grow::gcn {

/** Knobs of workload construction. */
struct WorkloadConfig
{
    graph::ScaleTier tier = graph::ScaleTier::Mini;
    /** Build partitioning artefacts (clustering + HDN lists). */
    bool buildPartitioning = true;
    /** Target nodes per cluster (0 = library default of 700). */
    uint32_t targetClusterSize = 0;
    /** HDN IDs stored per cluster (CAM capacity, Sec. V-C). */
    uint32_t hdnTopN = 4096;
    /** Also synthesise dense weights for functional verification. */
    bool functionalData = false;
    uint64_t seed = 7;
};

/** A fully constructed per-dataset workload. */
struct GcnWorkload
{
    const graph::DatasetSpec *spec = nullptr;
    graph::ScaleTier tier = graph::ScaleTier::Mini;
    graph::GcnShape shape;

    graph::Graph graph; ///< original labelling

    /** Normalized adjacency in the original labelling (baselines). */
    sparse::CsrMatrix adjacency;

    /** Partitioning artefacts (empty unless buildPartitioning). */
    bool hasPartitioning = false;
    sparse::CsrMatrix adjacencyPartitioned; ///< relabeled
    partition::RelabelResult relabel;
    std::vector<std::vector<NodeId>> hdnLists; ///< relabeled IDs

    /** Feature matrices, original labelling. */
    sparse::CsrMatrix x0;
    sparse::CsrMatrix x1;
    /** Row-permuted copies matching adjacencyPartitioned. */
    sparse::CsrMatrix x0Partitioned;
    sparse::CsrMatrix x1Partitioned;

    /** Dense weights (only when functionalData). */
    std::optional<sparse::DenseMatrix> w0;
    std::optional<sparse::DenseMatrix> w1;

    uint32_t nodes() const { return graph.numNodes(); }
};

/** Build the workload for @p spec under @p config. */
GcnWorkload buildWorkload(const graph::DatasetSpec &spec,
                          const WorkloadConfig &config);

/** Permute the rows of a CSR matrix: row i of result = row map[i]. */
sparse::CsrMatrix permuteRows(const sparse::CsrMatrix &m,
                              const std::vector<NodeId> &new_to_old);

} // namespace grow::gcn
