#include "graph/datasets.hpp"

#include <algorithm>
#include <map>
#include <mutex>

#include "graph/file_graph.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"

namespace grow::graph {

namespace {

/**
 * Process-wide registry of file-backed datasets, keyed by the dataset
 * name embedded in the .growcsr header. The registry keeps the mmap
 * alive for the process lifetime; bundles built from it share the same
 * mapping by shared_ptr.
 */
struct FileDatasetEntry
{
    DatasetSpec spec;
    std::shared_ptr<const MappedCsrGraph> graph;
};

std::mutex &
fileRegistryMutex()
{
    static std::mutex mu;
    return mu;
}

std::map<std::string, FileDatasetEntry> &
fileRegistry()
{
    static std::map<std::string, FileDatasetEntry> registry;
    return registry;
}

} // namespace

ScaleTier
tierFromString(const std::string &s)
{
    std::string t = toLower(s);
    if (t == "full")
        return ScaleTier::Full;
    if (t == "mini")
        return ScaleTier::Mini;
    if (t == "tiny")
        return ScaleTier::Tiny;
    if (t == "unit")
        return ScaleTier::Unit;
    fatal("unknown scale tier: " + s);
}

const char *
tierName(ScaleTier tier)
{
    switch (tier) {
      case ScaleTier::Full: return "full";
      case ScaleTier::Mini: return "mini";
      case ScaleTier::Tiny: return "tiny";
      case ScaleTier::Unit: return "unit";
    }
    return "?";
}

const std::vector<DatasetSpec> &
allDatasets()
{
    // Structure columns transcribed from Table I. Power-law exponents
    // and intra-community fractions are synthesis choices (see
    // DESIGN.md): heavier tails for the social/e-commerce graphs,
    // strong community structure everywhere (Fig. 14 shows dense
    // diagonal blocks for all four large graphs).
    static const std::vector<DatasetSpec> datasets = {
        //  name      nodes     arcs        deg   densA     x0      x1
        {"cora", 2708, 13264, 4.90, 1.81e-3, 0.0127, 0.780,
         {1433, 16, 7}, 2.70, 0.85, 101, 1, 1, 1.0, 1.0},
        {"citeseer", 3327, 12431, 3.74, 1.12e-3, 0.0085, 0.891,
         {3703, 16, 6}, 2.90, 0.85, 102, 1, 1, 1.0, 1.0},
        {"pubmed", 19717, 108365, 5.50, 2.79e-4, 0.100, 0.776,
         {500, 16, 3}, 2.60, 0.85, 103, 1, 2, 1.0, 1.0},
        {"flickr", 89250, 989006, 11.1, 1.24e-4, 0.464, 0.772,
         {500, 64, 7}, 2.20, 0.85, 104, 2, 8, 1.0, 1.0},
        {"reddit", 232965, 114848857, 493.0, 2.12e-3, 1.000, 0.639,
         {602, 64, 41}, 2.00, 0.75, 105, 16, 64, 4.0, 8.0},
        {"yelp", 716847, 13954819, 19.5, 2.72e-5, 1.000, 0.772,
         {300, 64, 100}, 2.30, 0.85, 106, 16, 64, 2.0, 4.0},
        {"pokec", 1632803, 46236731, 28.3, 1.73e-5, 0.399, 0.772,
         {60, 64, 48}, 2.50, 0.80, 107, 16, 64, 2.0, 4.0},
        {"amazon", 2449029, 126167309, 51.5, 2.10e-5, 0.990, 0.772,
         {100, 64, 47}, 2.20, 0.85, 108, 16, 64, 2.0, 4.0},
    };
    return datasets;
}

const DatasetSpec &
datasetByName(const std::string &name)
{
    std::string n = toLower(name);
    {
        std::lock_guard<std::mutex> lock(fileRegistryMutex());
        auto it = fileRegistry().find(n);
        if (it != fileRegistry().end())
            return it->second.spec;
    }
    for (const auto &d : allDatasets())
        if (d.name == n)
            return d;
    fatal("unknown dataset: " + name);
}

const DatasetSpec &
registerFileDataset(const std::string &path)
{
    auto mapped = MappedCsrGraph::open(path);
    if (!mapped)
        fatal("dataset file unusable (missing, truncated, corrupt or "
              "stale format): " + path);
    DatasetSpec spec = mapped->spec();
    std::lock_guard<std::mutex> lock(fileRegistryMutex());
    auto it = fileRegistry().find(spec.name);
    if (it != fileRegistry().end()) {
        if (it->second.spec.sourceChecksum != spec.sourceChecksum)
            fatal("dataset name collision: '" + spec.name +
                  "' already registered from " +
                  it->second.spec.sourceFile +
                  " with different content than " + path);
        return it->second.spec;
    }
    // Copy the key out first: `spec.name` and `std::move(spec)` are
    // indeterminately sequenced as emplace arguments.
    const std::string name = spec.name;
    auto ins = fileRegistry()
                   .emplace(name, FileDatasetEntry{std::move(spec),
                                                   std::move(mapped)})
                   .first;
    return ins->second.spec;
}

std::shared_ptr<const MappedCsrGraph>
fileDatasetGraph(const DatasetSpec &spec)
{
    if (!spec.isFileBacked())
        return nullptr;
    std::lock_guard<std::mutex> lock(fileRegistryMutex());
    auto it = fileRegistry().find(spec.name);
    GROW_ASSERT(it != fileRegistry().end() &&
                    it->second.spec.sourceChecksum == spec.sourceChecksum,
                "file-backed spec '" + spec.name +
                    "' is not in the file dataset registry");
    return it->second.graph;
}

std::vector<DatasetSpec>
datasetsByNames(const std::vector<std::string> &names)
{
    std::vector<DatasetSpec> out;
    for (const auto &n : names) {
        if (toLower(n) == "all") {
            out = allDatasets();
            return out;
        }
        if (toLower(n).rfind("file:", 0) == 0) {
            out.push_back(registerFileDataset(n.substr(5)));
            continue;
        }
        out.push_back(datasetByName(n));
    }
    return out;
}

uint32_t
scaledNodes(const DatasetSpec &spec, ScaleTier tier)
{
    switch (tier) {
      case ScaleTier::Full:
        return spec.paperNodes;
      case ScaleTier::Mini:
        return std::max(64u, spec.paperNodes / spec.miniNodeDiv);
      case ScaleTier::Tiny:
        return std::max(64u, spec.paperNodes / spec.tinyNodeDiv);
      case ScaleTier::Unit:
        return std::min(spec.paperNodes, 800u);
    }
    return spec.paperNodes;
}

double
scaledAvgDegree(const DatasetSpec &spec, ScaleTier tier)
{
    double deg = spec.paperAvgDegree;
    if (tier == ScaleTier::Mini)
        deg /= spec.miniDegreeDiv;
    if (tier == ScaleTier::Tiny)
        deg /= spec.tinyDegreeDiv;
    if (tier == ScaleTier::Unit)
        deg = std::min(deg, 16.0);
    // Degree cannot exceed the node count.
    double n = scaledNodes(spec, tier);
    return std::min(deg, n / 2.0);
}

uint32_t
plantedCommunities(uint32_t nodes)
{
    // Target ~700-node communities: matches "thousands of clusters" for
    // million-node graphs (Sec. V-C) when extrapolated to full scale.
    return std::max(2u, nodes / 700u);
}

DatasetInstance
buildDataset(const DatasetSpec &spec, ScaleTier tier)
{
    DatasetInstance inst;
    inst.spec = &datasetByName(spec.name);
    inst.tier = tier;

    if (spec.isFileBacked()) {
        // Materialize a heap copy of the mapped file; callers that can
        // stream straight off the mmap use fileDatasetGraph() instead.
        auto mapped = fileDatasetGraph(spec);
        CsrView v = mapped->view();
        inst.graph = Graph::fromAdjacency(
            {v.offsets.begin(), v.offsets.end()},
            {v.adjacency.begin(), v.adjacency.end()});
        return inst;
    }

    DcSbmParams p;
    p.nodes = scaledNodes(spec, tier);
    p.avgDegree = scaledAvgDegree(spec, tier);
    p.powerLawAlpha = spec.powerLawAlpha;
    p.communities = plantedCommunities(p.nodes);
    p.intraFraction = spec.intraFraction;
    p.maxWeightFraction = 0.10;
    p.seed = spec.seed * 7919 + static_cast<uint64_t>(tier);
    inst.graph = generateDcSbm(p, inst.plantedCommunity);
    return inst;
}

} // namespace grow::graph
