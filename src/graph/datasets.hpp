/**
 * @file
 * Registry of the paper's eight evaluation datasets (Table I).
 *
 * Each DatasetSpec records the published structure (node count, arc
 * count, feature densities, GCN layer shape) plus the synthesis
 * parameters used to generate a structurally equivalent DC-SBM graph.
 *
 * Scale tiers: because a full-scale Amazon (2.4M nodes, 126M arcs) makes
 * every sweep bench run for hours, large graphs can be instantiated at
 * reduced node counts with the average degree preserved:
 *  - Full: exactly the paper's node counts.
 *  - Mini: the default for headline benches; large graphs / 16.
 *  - Tiny: for multi-point sweeps; large graphs / 64 (Reddit also
 *    reduces degree 4x to keep density plausible).
 *  - Unit: a few hundred nodes, for unit/integration tests.
 * The relative ordering of datasets and all qualitative behaviours
 * (power law, community structure, hypersparse adjacency tiles) are
 * preserved; EXPERIMENTS.md quantifies the effect of the rescaling.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/graph.hpp"

namespace grow::graph {

/** Evaluation scale for a dataset instantiation. */
enum class ScaleTier { Full, Mini, Tiny, Unit };

/** Parse "full"/"mini"/"tiny"/"unit" (case-insensitive). */
ScaleTier tierFromString(const std::string &s);

/** Human-readable tier name. */
const char *tierName(ScaleTier tier);

/** GCN layer dimensions from Table I ("Feature length F0-H-C"). */
struct GcnShape
{
    uint32_t inFeatures = 0; ///< F0: input feature length
    uint32_t hidden = 0;     ///< H: hidden feature length
    uint32_t classes = 0;    ///< C: output classes
};

/** One evaluation dataset: published structure + synthesis parameters. */
struct DatasetSpec
{
    std::string name;

    // Published structure (Table I).
    uint32_t paperNodes = 0;
    uint64_t paperArcs = 0;      ///< "# of Edges" row (directed arcs)
    double paperAvgDegree = 0.0;
    double paperDensityA = 0.0;
    double x0Density = 0.0;      ///< input feature matrix density
    double x1Density = 0.0;      ///< post-layer-1 feature density
    GcnShape gcn;

    // Synthesis parameters.
    double powerLawAlpha = 2.3;
    double intraFraction = 0.85;
    uint64_t seed = 1;

    // Scale-tier node/degree divisors.
    uint32_t miniNodeDiv = 1;
    uint32_t tinyNodeDiv = 1;
    double miniDegreeDiv = 1.0;
    double tinyDegreeDiv = 1.0;

    /**
     * File-backed datasets (`dataset=file:<path>`): the graph is
     * mmap-loaded from a .growcsr file (graph/file_graph.hpp) instead
     * of synthesized, and the payload checksum joins every cache key
     * derived from this spec so two files never alias. Empty/0 for
     * the synthesized registry datasets.
     */
    std::string sourceFile;
    uint64_t sourceChecksum = 0;
    ScaleTier sourceTier = ScaleTier::Full;

    /** Whether this is one of the four large-scale datasets. */
    bool isLargeScale() const { return miniNodeDiv > 1; }

    /** Whether the graph comes from a .growcsr file. */
    bool isFileBacked() const { return !sourceFile.empty(); }
};

/** The eight datasets of Table I, ordered by node count. */
const std::vector<DatasetSpec> &allDatasets();

/**
 * Lookup by (case-insensitive) name; fatal() when unknown. File
 * datasets registered via registerFileDataset() are consulted first,
 * so a registered file *shadows* the builtin of the same name for the
 * rest of the process -- exactly what lets a converted Table I graph
 * replay its in-memory twin bit for bit.
 */
const DatasetSpec &datasetByName(const std::string &name);

/**
 * Resolve a list of names ("all" expands to every dataset). A
 * `file:<path>` entry opens the .growcsr file at <path> and registers
 * it under the dataset name embedded in its header.
 */
std::vector<DatasetSpec> datasetsByNames(const std::vector<std::string> &names);

class MappedCsrGraph;

/**
 * Open the .growcsr file at @p path (fatal() when unreadable or
 * corrupt -- a named file that cannot be used is a configuration
 * error) and register it in the process-wide file dataset registry
 * under its embedded dataset name. Re-registering the same content is
 * idempotent; two different files claiming one name fatal(). The
 * returned spec carries sourceFile/sourceChecksum/sourceTier.
 */
const DatasetSpec &registerFileDataset(const std::string &path);

/**
 * The mapped graph backing a file-backed @p spec (registered earlier);
 * null for synthesized specs.
 */
std::shared_ptr<const MappedCsrGraph>
fileDatasetGraph(const DatasetSpec &spec);

/** Node count of @p spec at @p tier. */
uint32_t scaledNodes(const DatasetSpec &spec, ScaleTier tier);

/** Average degree of @p spec at @p tier. */
double scaledAvgDegree(const DatasetSpec &spec, ScaleTier tier);

/**
 * Number of planted communities at a given node count (targets the
 * cluster granularity GROW's partitioning preprocessing aims for).
 */
uint32_t plantedCommunities(uint32_t nodes);

/** A generated dataset: graph + provenance. */
struct DatasetInstance
{
    const DatasetSpec *spec = nullptr;
    ScaleTier tier = ScaleTier::Mini;
    Graph graph;
    /** Ground-truth community per node (for generator tests only). */
    std::vector<uint32_t> plantedCommunity;

    uint32_t nodes() const { return graph.numNodes(); }
};

/** Synthesise @p spec at @p tier (deterministic per spec.seed). */
DatasetInstance buildDataset(const DatasetSpec &spec, ScaleTier tier);

} // namespace grow::graph
