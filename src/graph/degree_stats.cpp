#include "graph/degree_stats.hpp"

#include <algorithm>

namespace grow::graph {

LogHistogram
degreeHistogram(const CsrView &g)
{
    LogHistogram h;
    for (NodeId v = 0; v < g.numNodes(); ++v)
        h.record(g.degree(v));
    return h;
}

std::vector<uint32_t>
sortedDegreesDesc(const CsrView &g)
{
    std::vector<uint32_t> d(g.numNodes());
    for (NodeId v = 0; v < g.numNodes(); ++v)
        d[v] = g.degree(v);
    std::sort(d.begin(), d.end(), std::greater<>());
    return d;
}

double
topKDegreeCoverage(const CsrView &g, uint32_t k)
{
    if (g.numArcs() == 0)
        return 0.0;
    auto degrees = sortedDegreesDesc(g);
    k = std::min<uint32_t>(k, static_cast<uint32_t>(degrees.size()));
    uint64_t covered = 0;
    for (uint32_t i = 0; i < k; ++i)
        covered += degrees[i];
    return static_cast<double>(covered) / static_cast<double>(g.numArcs());
}

double
degreeGini(const CsrView &g)
{
    uint32_t n = g.numNodes();
    if (n == 0)
        return 0.0;
    std::vector<uint32_t> d(n);
    for (NodeId v = 0; v < n; ++v)
        d[v] = g.degree(v);
    std::sort(d.begin(), d.end());
    double cum = 0.0;
    double weighted = 0.0;
    for (uint32_t i = 0; i < n; ++i) {
        cum += d[i];
        weighted += static_cast<double>(i + 1) * d[i];
    }
    if (cum == 0.0)
        return 0.0;
    return (2.0 * weighted) / (n * cum) - (n + 1.0) / n;
}

} // namespace grow::graph
