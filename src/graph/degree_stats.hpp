/**
 * @file
 * Degree-distribution analysis (Fig. 11 and HDN coverage estimation).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "sim/histogram.hpp"

namespace grow::graph {

/** Power-of-two bucketed degree histogram of @p g. */
LogHistogram degreeHistogram(const Graph &g);

/** All node degrees sorted descending. */
std::vector<uint32_t> sortedDegreesDesc(const Graph &g);

/**
 * Fraction of all adjacency entries whose *target* is one of the top-k
 * highest-degree nodes. This is the upper bound on the HDN cache hit
 * rate without graph partitioning (Sec. V-C).
 */
double topKDegreeCoverage(const Graph &g, uint32_t k);

/** Gini coefficient of the degree distribution (0 = uniform). */
double degreeGini(const Graph &g);

} // namespace grow::graph
