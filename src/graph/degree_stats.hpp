/**
 * @file
 * Degree-distribution analysis (Fig. 11 and HDN coverage estimation).
 *
 * All analyses operate on a CsrView, so they stream heap graphs and
 * mmap-backed file graphs alike; the Graph overloads are conveniences.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "sim/histogram.hpp"

namespace grow::graph {

/** Power-of-two bucketed degree histogram of @p g. */
LogHistogram degreeHistogram(const CsrView &g);
inline LogHistogram degreeHistogram(const Graph &g)
{
    return degreeHistogram(g.view());
}

/** All node degrees sorted descending. */
std::vector<uint32_t> sortedDegreesDesc(const CsrView &g);
inline std::vector<uint32_t> sortedDegreesDesc(const Graph &g)
{
    return sortedDegreesDesc(g.view());
}

/**
 * Fraction of all adjacency entries whose *target* is one of the top-k
 * highest-degree nodes. This is the upper bound on the HDN cache hit
 * rate without graph partitioning (Sec. V-C).
 */
double topKDegreeCoverage(const CsrView &g, uint32_t k);
inline double topKDegreeCoverage(const Graph &g, uint32_t k)
{
    return topKDegreeCoverage(g.view(), k);
}

/** Gini coefficient of the degree distribution (0 = uniform). */
double degreeGini(const CsrView &g);
inline double degreeGini(const Graph &g) { return degreeGini(g.view()); }

} // namespace grow::graph
