#include "graph/file_graph.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "util/checksum.hpp"
#include "util/logging.hpp"

namespace grow::graph {

namespace {

namespace fs = std::filesystem;

/**
 * .growcsr layout (all fields little-endian, host order -- the format
 * is an interchange format between runs on one machine, like the
 * WorkloadCache artefact files):
 *
 *   [ 0] char[8]   magic "GROWCSRF"
 *   [ 8] u32       format version (kCsrFileFormatVersion)
 *   [12] u32       reserved (0)
 *   ---- checksummed payload ----
 *   [16] spec block: u32-length-prefixed name + synthesis PODs in
 *        the WorkloadCache specFingerprint field order + u32 tier
 *   [..] u32       numNodes
 *   [..] u64       numArcs
 *   [..] zero pad to the next 8-byte-aligned *file* offset
 *   [..] u64[n+1]  offsets      (8-aligned, used in place via mmap)
 *   [..] u32[arcs] adjacency    (NodeId)
 *   ---- end of payload ----
 *   [..] u64       FNV-1a of the payload bytes (incl. the pad)
 */
constexpr size_t kHeaderBytes = sizeof(kCsrFileMagic) + 2 * sizeof(uint32_t);

/** Little append-only encoder for the (small) spec block. */
class PodWriter
{
  public:
    template <typename T>
    void
    pod(T v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        buf_.append(reinterpret_cast<const char *>(&v), sizeof(T));
    }

    void
    str(const std::string &s)
    {
        pod(static_cast<uint32_t>(s.size()));
        buf_.append(s);
    }

    const std::string &bytes() const { return buf_; }

  private:
    std::string buf_;
};

/** Bounds-checked decoder over the mapped payload. */
class PodReader
{
  public:
    PodReader(const char *data, size_t begin, size_t end)
        : data_(data), pos_(begin), end_(end)
    {
    }

    template <typename T>
    bool
    pod(T &out)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        if (pos_ + sizeof(T) > end_)
            return false;
        std::memcpy(&out, data_ + pos_, sizeof(T));
        pos_ += sizeof(T);
        return true;
    }

    bool
    str(std::string &out)
    {
        uint32_t len = 0;
        if (!pod(len) || len > end_ - pos_)
            return false;
        out.assign(data_ + pos_, len);
        pos_ += len;
        return true;
    }

    bool
    skip(size_t n)
    {
        if (n > end_ - pos_)
            return false;
        pos_ += n;
        return true;
    }

    size_t pos() const { return pos_; }

  private:
    const char *data_;
    size_t pos_ = 0;
    size_t end_ = 0;
};

/**
 * Serialize the dataset identity carried inside the file. Field order
 * deliberately mirrors the WorkloadCache specFingerprint so the two
 * formats describe a spec the same way.
 */
void
encodeSpec(PodWriter &w, const DatasetSpec &spec, ScaleTier tier)
{
    w.str(spec.name);
    w.pod(spec.paperNodes);
    w.pod(spec.paperArcs);
    w.pod(spec.paperAvgDegree);
    w.pod(spec.paperDensityA);
    w.pod(spec.x0Density);
    w.pod(spec.x1Density);
    w.pod(spec.gcn.inFeatures);
    w.pod(spec.gcn.hidden);
    w.pod(spec.gcn.classes);
    w.pod(spec.powerLawAlpha);
    w.pod(spec.intraFraction);
    w.pod(spec.seed);
    w.pod(spec.miniNodeDiv);
    w.pod(spec.tinyNodeDiv);
    w.pod(spec.miniDegreeDiv);
    w.pod(spec.tinyDegreeDiv);
    w.pod(static_cast<uint32_t>(tier));
}

bool
decodeSpec(PodReader &r, DatasetSpec &spec, ScaleTier &tier)
{
    uint32_t tierRaw = 0;
    if (!r.str(spec.name) || !r.pod(spec.paperNodes) ||
        !r.pod(spec.paperArcs) || !r.pod(spec.paperAvgDegree) ||
        !r.pod(spec.paperDensityA) || !r.pod(spec.x0Density) ||
        !r.pod(spec.x1Density) || !r.pod(spec.gcn.inFeatures) ||
        !r.pod(spec.gcn.hidden) || !r.pod(spec.gcn.classes) ||
        !r.pod(spec.powerLawAlpha) || !r.pod(spec.intraFraction) ||
        !r.pod(spec.seed) || !r.pod(spec.miniNodeDiv) ||
        !r.pod(spec.tinyNodeDiv) || !r.pod(spec.miniDegreeDiv) ||
        !r.pod(spec.tinyDegreeDiv) || !r.pod(tierRaw))
        return false;
    if (tierRaw > static_cast<uint32_t>(ScaleTier::Unit))
        return false;
    tier = static_cast<ScaleTier>(tierRaw);
    return spec.name.size() > 0;
}

/** Checksumming pass-through onto an ofstream. */
class ChecksummedOut
{
  public:
    explicit ChecksummedOut(std::ofstream &out) : out_(out) {}

    void
    put(const void *data, size_t size)
    {
        out_.write(static_cast<const char *>(data),
                   static_cast<std::streamsize>(size));
        sum_.update(data, size);
        written_ += size;
    }

    /** Zero-pad so the next byte lands on an 8-aligned file offset. */
    void
    padTo8(size_t file_offset_of_next_byte)
    {
        static const char zeros[8] = {};
        size_t mis = file_offset_of_next_byte % 8;
        if (mis != 0)
            put(zeros, 8 - mis);
    }

    uint64_t digest() const { return sum_.digest(); }
    uint64_t written() const { return written_; }

  private:
    std::ofstream &out_;
    util::Fnv1a sum_;
    uint64_t written_ = 0;
};

/** RAII mmap of a whole file (read-only or read-write). */
struct FileMap
{
    void *addr = nullptr;
    size_t bytes = 0;
    int fd = -1;

    bool
    open(const std::string &path, bool writable)
    {
        fd = ::open(path.c_str(), writable ? O_RDWR : O_RDONLY);
        if (fd < 0)
            return false;
        struct stat st;
        if (::fstat(fd, &st) != 0 || st.st_size < 0) {
            close();
            return false;
        }
        bytes = static_cast<size_t>(st.st_size);
        if (bytes == 0)
            return true; // empty mapping is legal for us (addr null)
        addr = ::mmap(nullptr, bytes,
                      writable ? (PROT_READ | PROT_WRITE) : PROT_READ,
                      writable ? MAP_SHARED : MAP_PRIVATE, fd, 0);
        if (addr == MAP_FAILED) {
            addr = nullptr;
            close();
            return false;
        }
        return true;
    }

    void
    close()
    {
        if (addr != nullptr)
            ::munmap(addr, bytes);
        if (fd >= 0)
            ::close(fd);
        addr = nullptr;
        bytes = 0;
        fd = -1;
    }

    ~FileMap() { close(); }
};

/** One parsed edge line. */
struct EdgeLine
{
    uint64_t u = 0;
    uint64_t v = 0;
    bool isEdge = false; ///< false: comment/blank line
};

/**
 * Parse one text line: `u v` or `u v w`, '#'/'%' comments, blank lines.
 * fatal() on anything else -- silently skipping garbage would corrupt
 * the graph.
 */
EdgeLine
parseLine(const std::string &line, uint64_t line_no,
          const std::string &text_path)
{
    EdgeLine e;
    const char *p = line.c_str();
    while (*p == ' ' || *p == '\t' || *p == '\r')
        ++p;
    if (*p == '\0' || *p == '#' || *p == '%')
        return e;
    char *end = nullptr;
    errno = 0;
    e.u = std::strtoull(p, &end, 10);
    if (end == p || errno != 0)
        fatal(text_path + ":" + std::to_string(line_no) +
              ": expected `u v [w]` edge line");
    p = end;
    while (*p == ' ' || *p == '\t' || *p == ',')
        ++p;
    errno = 0;
    e.v = std::strtoull(p, &end, 10);
    if (end == p || errno != 0)
        fatal(text_path + ":" + std::to_string(line_no) +
              ": expected `u v [w]` edge line");
    // Anything after the second endpoint (an optional weight) is
    // ignored; GROW operates on binary adjacency structure.
    e.isEdge = true;
    return e;
}

} // namespace

bool
writeCsrFile(const std::string &path, const DatasetSpec &spec,
             ScaleTier tier, const CsrView &g)
{
    GROW_ASSERT(g.offsets.size() ==
                    static_cast<size_t>(g.numNodes()) + 1,
                "CSR view with inconsistent offsets");
    PodWriter specBlock;
    encodeSpec(specBlock, spec, tier);

    try {
        fs::path target(path);
        if (target.has_parent_path())
            fs::create_directories(target.parent_path());
        // Atomic publish, same discipline as the artefact cache: a
        // crashed writer can never leave a torn file under the final
        // name.
        fs::path tmp = target;
        tmp += ".tmp";
        {
            std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
            if (!out)
                return false;
            out.write(kCsrFileMagic, sizeof(kCsrFileMagic));
            uint32_t version = kCsrFileFormatVersion;
            uint32_t reserved = 0;
            out.write(reinterpret_cast<const char *>(&version),
                      sizeof(version));
            out.write(reinterpret_cast<const char *>(&reserved),
                      sizeof(reserved));

            ChecksummedOut co(out);
            co.put(specBlock.bytes().data(), specBlock.bytes().size());
            uint32_t nodes = g.numNodes();
            uint64_t arcs = g.numArcs();
            co.put(&nodes, sizeof(nodes));
            co.put(&arcs, sizeof(arcs));
            co.padTo8(kHeaderBytes + co.written());
            co.put(g.offsets.data(), g.offsets.size() * sizeof(uint64_t));
            co.put(g.adjacency.data(),
                   g.adjacency.size() * sizeof(NodeId));
            uint64_t sum = co.digest();
            out.write(reinterpret_cast<const char *>(&sum), sizeof(sum));
            if (!out)
                return false;
        }
        fs::rename(tmp, target);
        return true;
    } catch (const std::exception &e) {
        logWarn("csr file write failed for " + path + ": " + e.what());
        return false;
    }
}

ConvertStats
convertEdgeListFile(const std::string &text_path,
                    const std::string &out_path,
                    const DatasetSpec &spec_template, ScaleTier tier,
                    uint32_t nodes_hint)
{
    ConvertStats stats;

    // ---- Pass 1: count raw degrees (self loops excluded, duplicates
    // still included) and find the node-id range. Host RAM: O(nodes).
    std::vector<uint64_t> rawDegree;
    uint64_t maxNode = 0;
    bool sawEdge = false;
    {
        std::ifstream in(text_path);
        if (!in)
            fatal("cannot open edge list: " + text_path);
        std::string line;
        uint64_t lineNo = 0;
        while (std::getline(in, line)) {
            ++lineNo;
            EdgeLine e = parseLine(line, lineNo, text_path);
            if (!e.isEdge)
                continue;
            ++stats.textEdges;
            if (e.u == e.v) {
                ++stats.selfLoops;
                continue;
            }
            uint64_t hi = std::max(e.u, e.v);
            if (hi >= kInvalidNode)
                fatal(text_path + ":" + std::to_string(lineNo) +
                      ": node id " + std::to_string(hi) +
                      " exceeds the 32-bit node-id range");
            maxNode = std::max(maxNode, hi);
            sawEdge = true;
            if (hi >= rawDegree.size())
                rawDegree.resize(hi + 1, 0);
            ++rawDegree[e.u];
            ++rawDegree[e.v];
        }
    }
    uint32_t nodes = sawEdge ? static_cast<uint32_t>(maxNode) + 1 : 0;
    nodes = std::max(nodes, nodes_hint);
    rawDegree.resize(nodes, 0);
    stats.nodes = nodes;

    // Raw (pre-dedup) CSR offsets; doubles as the scatter cursor base.
    std::vector<uint64_t> rawOffset(static_cast<size_t>(nodes) + 1, 0);
    for (uint32_t v = 0; v < nodes; ++v)
        rawOffset[v + 1] = rawOffset[v] + rawDegree[v];
    const uint64_t rawArcs = rawOffset[nodes];

    // ---- Pass 2: scatter both arc directions into a temporary
    // mmap-backed file next to the output. The OS pages the arc pool;
    // the heap never holds it.
    fs::path tmpArcs(out_path);
    tmpArcs += ".arcs.tmp";
    FileMap arcMap;
    if (rawArcs > 0) {
        {
            std::ofstream touch(tmpArcs, std::ios::binary |
                                             std::ios::trunc);
            if (!touch)
                fatal("cannot create scatter file: " + tmpArcs.string());
        }
        std::error_code ec;
        fs::resize_file(tmpArcs, rawArcs * sizeof(NodeId), ec);
        if (ec)
            fatal("cannot size scatter file " + tmpArcs.string() + ": " +
                  ec.message());
        if (!arcMap.open(tmpArcs.string(), /*writable=*/true))
            fatal("cannot map scatter file: " + tmpArcs.string());
    }
    NodeId *arcs = static_cast<NodeId *>(arcMap.addr);
    {
        std::vector<uint64_t> cursor(rawOffset.begin(),
                                     rawOffset.end() - 1);
        std::ifstream in(text_path);
        if (!in)
            fatal("cannot reopen edge list: " + text_path);
        std::string line;
        uint64_t lineNo = 0;
        while (std::getline(in, line)) {
            ++lineNo;
            EdgeLine e = parseLine(line, lineNo, text_path);
            if (!e.isEdge || e.u == e.v)
                continue;
            arcs[cursor[e.u]++] = static_cast<NodeId>(e.v);
            arcs[cursor[e.v]++] = static_cast<NodeId>(e.u);
        }
    }

    // ---- Per-row sort + dedup in place (matches Graph::fromEdges
    // semantics exactly), computing the final offsets.
    std::vector<uint64_t> finalOffset(static_cast<size_t>(nodes) + 1, 0);
    for (uint32_t v = 0; v < nodes; ++v) {
        NodeId *begin = arcs + rawOffset[v];
        NodeId *end = arcs + rawOffset[v + 1];
        std::sort(begin, end);
        NodeId *kept = std::unique(begin, end);
        stats.duplicateArcs += static_cast<uint64_t>(end - kept);
        finalOffset[v + 1] =
            finalOffset[v] + static_cast<uint64_t>(kept - begin);
    }
    stats.arcs = finalOffset[nodes];

    // ---- Stream the final file with an incremental checksum.
    PodWriter specBlock;
    {
        DatasetSpec spec = spec_template;
        spec.sourceFile.clear();
        spec.sourceChecksum = 0;
        // Structural fields reflect the measured graph, not whatever
        // the template claimed.
        spec.paperNodes = nodes;
        spec.paperArcs = stats.arcs;
        spec.paperAvgDegree =
            nodes == 0 ? 0.0
                       : static_cast<double>(stats.arcs) /
                             static_cast<double>(nodes);
        spec.paperDensityA =
            nodes == 0 ? 0.0
                       : static_cast<double>(stats.arcs) /
                             (static_cast<double>(nodes) *
                              static_cast<double>(nodes));
        encodeSpec(specBlock, spec, tier);
    }

    fs::path target(out_path);
    {
        std::error_code ec;
        if (target.has_parent_path())
            fs::create_directories(target.parent_path(), ec);
    }
    fs::path tmpOut = target;
    tmpOut += ".tmp";
    {
        std::ofstream out(tmpOut, std::ios::binary | std::ios::trunc);
        if (!out)
            fatal("cannot create output file: " + tmpOut.string());
        out.write(kCsrFileMagic, sizeof(kCsrFileMagic));
        uint32_t version = kCsrFileFormatVersion;
        uint32_t reserved = 0;
        out.write(reinterpret_cast<const char *>(&version),
                  sizeof(version));
        out.write(reinterpret_cast<const char *>(&reserved),
                  sizeof(reserved));

        ChecksummedOut co(out);
        co.put(specBlock.bytes().data(), specBlock.bytes().size());
        co.put(&nodes, sizeof(nodes));
        co.put(&stats.arcs, sizeof(stats.arcs));
        co.padTo8(kHeaderBytes + co.written());
        co.put(finalOffset.data(), finalOffset.size() * sizeof(uint64_t));
        // Adjacency rows stream straight off the scatter mmap: only the
        // deduplicated prefix of each raw row is live.
        for (uint32_t v = 0; v < nodes; ++v) {
            const uint64_t keep = finalOffset[v + 1] - finalOffset[v];
            if (keep > 0)
                co.put(arcs + rawOffset[v], keep * sizeof(NodeId));
        }
        uint64_t sum = co.digest();
        out.write(reinterpret_cast<const char *>(&sum), sizeof(sum));
        if (!out)
            fatal("write failed for " + tmpOut.string());
    }
    arcMap.close();
    {
        std::error_code ec;
        fs::remove(tmpArcs, ec);
        fs::rename(tmpOut, target, ec);
        if (ec)
            fatal("cannot publish " + target.string() + ": " +
                  ec.message());
    }
    return stats;
}

std::shared_ptr<const MappedCsrGraph>
MappedCsrGraph::open(const std::string &path)
{
    auto map = std::make_unique<FileMap>();
    if (!map->open(path, /*writable=*/false))
        return nullptr;
    const char *base = static_cast<const char *>(map->addr);
    const size_t size = map->bytes;
    if (size < kHeaderBytes + sizeof(uint64_t))
        return nullptr;
    if (std::memcmp(base, kCsrFileMagic, sizeof(kCsrFileMagic)) != 0)
        return nullptr;
    uint32_t version = 0;
    std::memcpy(&version, base + sizeof(kCsrFileMagic), sizeof(version));
    if (version != kCsrFileFormatVersion)
        return nullptr; // stale format: reconvert, don't guess

    uint64_t storedSum = 0;
    std::memcpy(&storedSum, base + size - sizeof(storedSum),
                sizeof(storedSum));
    const size_t payloadEnd = size - sizeof(storedSum);
    if (util::fnv1a(base + kHeaderBytes, payloadEnd - kHeaderBytes) !=
        storedSum)
        return nullptr;

    PodReader r(base, kHeaderBytes, payloadEnd);
    DatasetSpec spec;
    ScaleTier tier = ScaleTier::Full;
    uint32_t nodes = 0;
    uint64_t arcs = 0;
    if (!decodeSpec(r, spec, tier) || !r.pod(nodes) || !r.pod(arcs))
        return nullptr;
    if (r.pos() % 8 != 0 && !r.skip(8 - r.pos() % 8))
        return nullptr;

    const uint64_t offsetsBytes =
        (static_cast<uint64_t>(nodes) + 1) * sizeof(uint64_t);
    const uint64_t adjBytes = arcs * sizeof(NodeId);
    if (payloadEnd - r.pos() != offsetsBytes + adjBytes)
        return nullptr; // truncated or trailing bytes: not ours
    const uint64_t *offsets =
        reinterpret_cast<const uint64_t *>(base + r.pos());
    const NodeId *adjacency =
        reinterpret_cast<const NodeId *>(base + r.pos() + offsetsBytes);

    // Structural bounds: monotone offsets bracketing exactly the
    // adjacency array. Full per-arc validation (sortedness, symmetry)
    // is validateStructure() -- the checksum already rules out
    // corruption, this rules out a well-formed file describing an
    // impossible CSR.
    if (offsets[0] != 0 || offsets[nodes] != arcs)
        return nullptr;
    for (uint32_t v = 0; v < nodes; ++v)
        if (offsets[v] > offsets[v + 1])
            return nullptr;

    auto g = std::shared_ptr<MappedCsrGraph>(new MappedCsrGraph());
    g->path_ = path;
    g->map_ = map->addr;
    g->mapBytes_ = map->bytes;
    // Mapping ownership moves to g; the fd is no longer needed (the
    // mapping keeps the file alive).
    map->addr = nullptr;
    map->bytes = 0;
    g->offsets_ = offsets;
    g->adjacency_ = adjacency;
    g->numNodes_ = nodes;
    g->numArcs_ = arcs;
    g->checksum_ = storedSum;
    g->tier_ = tier;
    spec.sourceFile = path;
    spec.sourceChecksum = storedSum;
    spec.sourceTier = tier;
    g->spec_ = std::move(spec);
    return g;
}

MappedCsrGraph::~MappedCsrGraph()
{
    if (map_ != nullptr)
        ::munmap(map_, mapBytes_);
}

bool
MappedCsrGraph::validateStructure() const
{
    const CsrView v = view();
    for (NodeId u = 0; u < numNodes_; ++u) {
        auto nbrs = v.neighbors(u);
        NodeId prev = kInvalidNode;
        for (NodeId w : nbrs) {
            if (w >= numNodes_ || w == u)
                return false;
            if (prev != kInvalidNode && w <= prev)
                return false; // unsorted or duplicate
            prev = w;
            // Symmetry: u must appear in w's sorted list.
            auto back = v.neighbors(w);
            if (!std::binary_search(back.begin(), back.end(), u))
                return false;
        }
    }
    return true;
}

} // namespace grow::graph
