/**
 * @file
 * Out-of-core graph ingestion: the .growcsr binary interchange format
 * and the mmap-backed MappedCsrGraph.
 *
 * Every workload used to be synthesized in RAM; real power-law graphs
 * (the regime GROW targets, Sec. V) are far bigger than the synthetic
 * tiers. This file provides the ingestion path:
 *
 *  - A versioned, checksummed binary CSR file format following the
 *    same header discipline as the WorkloadCache artefact cache
 *    (magic, format version, payload, trailing FNV-1a checksum --
 *    util/checksum.hpp), carrying the full DatasetSpec so a converted
 *    graph replays the exact feature densities / GCN shape / seeds of
 *    its source dataset.
 *  - writeCsrFile(): streaming writer (atomic temp+rename) from any
 *    CsrView.
 *  - convertEdgeListFile(): two-pass out-of-core text converter.
 *    Edge-list / COO text is scanned once to count degrees, scattered
 *    through a temporary mmap-backed arc file (the OS pages it, not
 *    the heap), per-row sorted and deduplicated in place, then
 *    streamed into the final file. Host RAM stays O(nodes), never
 *    O(edges).
 *  - MappedCsrGraph: read-only mmap of a .growcsr file exposing the
 *    graph::CsrView accessor surface, so partitioning and simulation
 *    stream graphs larger than RAM straight off the page cache.
 *    Selected end to end via `dataset=file:<path>`.
 *
 * A truncated, corrupted, stale-version or foreign file is never
 * trusted: open() verifies the header, the structural bounds and the
 * payload checksum, and returns null on any mismatch.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "graph/datasets.hpp"
#include "graph/graph.hpp"

namespace grow::graph {

/** File magic identifying a GROW binary CSR graph. */
inline constexpr char kCsrFileMagic[8] = {'G', 'R', 'O', 'W',
                                          'C', 'S', 'R', 'F'};

/**
 * On-disk CSR format version. Bump whenever the serialized layout or
 * the semantics of any field change: stale files must be rejected at
 * open, never reinterpreted.
 */
inline constexpr uint32_t kCsrFileFormatVersion = 1;

/**
 * Serialize @p g with @p spec's identity/synthesis metadata to @p path
 * (atomic via temp+rename). @p tier records the scale the graph was
 * instantiated at, so benches can sanity-check `scale=` against the
 * file. Returns false (after logging) when the file cannot be written.
 */
bool writeCsrFile(const std::string &path, const DatasetSpec &spec,
                  ScaleTier tier, const CsrView &g);

/** Outcome counters of one edge-list conversion. */
struct ConvertStats
{
    uint32_t nodes = 0;
    uint64_t arcs = 0;           ///< directed arcs in the output
    uint64_t textEdges = 0;      ///< edge lines parsed
    uint64_t selfLoops = 0;      ///< dropped (u, u) lines
    uint64_t duplicateArcs = 0;  ///< dropped repeated adjacency entries
};

/**
 * Convert whitespace-separated edge-list / COO text at @p text_path
 * into a .growcsr file at @p out_path. Lines are `u v` or `u v w` (the
 * weight is ignored -- GROW operates on binary adjacency structure);
 * `#` and `%` comment lines and blank lines are skipped. The graph is
 * undirected: every line contributes both (u,v) and (v,u) adjacency
 * entries; self loops are dropped and duplicate edges deduplicated,
 * matching Graph::fromEdges exactly (round trips are bit-identical).
 *
 * Out-of-core by construction: the text is streamed twice, arcs are
 * scattered through a temporary mmap-backed file next to @p out_path,
 * and the result is streamed out with an incremental checksum. Host
 * heap usage is O(nodes), never O(edges).
 *
 * @p spec_template supplies the dataset identity (name, GCN shape,
 * feature densities, seeds) stored in the file; its structural fields
 * (node/arc counts, degrees) are overwritten with the measured values.
 * @p nodes_hint forces at least that many nodes (isolated tail nodes
 * included); the maximum endpoint + 1 is used when larger. fatal() on
 * unparsable text.
 */
ConvertStats convertEdgeListFile(const std::string &text_path,
                                 const std::string &out_path,
                                 const DatasetSpec &spec_template,
                                 ScaleTier tier,
                                 uint32_t nodes_hint = 0);

/**
 * Read-only mmap view of a .growcsr file. The offsets/adjacency arrays
 * are used in place -- opening a 100 GB graph costs two pages plus the
 * sequential checksum pass -- and the kernel pages adjacency in and
 * out on demand, which is what lets the build pipeline and simulator
 * stream graphs larger than RAM.
 *
 * Instances are immutable and shared by shared_ptr (the file dataset
 * registry and every GraphArtifacts bundle built from it hold one).
 */
class MappedCsrGraph
{
  public:
    /**
     * Map @p path. Returns null -- never throws, never returns partial
     * data -- when the file is missing, truncated, corrupted (checksum
     * mismatch), from another format version, or structurally invalid
     * (non-monotone offsets, out-of-range endpoints).
     */
    static std::shared_ptr<const MappedCsrGraph>
    open(const std::string &path);

    ~MappedCsrGraph();

    MappedCsrGraph(const MappedCsrGraph &) = delete;
    MappedCsrGraph &operator=(const MappedCsrGraph &) = delete;

    /** Dataset identity embedded at conversion time. sourceFile /
     *  sourceChecksum are filled in, so WorkloadCache keys derived
     *  from this spec include the file content identity. */
    const DatasetSpec &spec() const { return spec_; }

    /** Scale tier recorded when the file was written. */
    ScaleTier tier() const { return tier_; }

    /** The accessor surface the build pipeline consumes. */
    CsrView view() const { return {{offsets_, numNodes_ + 1ull},
                                   {adjacency_, numArcs_}}; }

    uint32_t numNodes() const { return numNodes_; }
    uint64_t numArcs() const { return numArcs_; }

    /** Payload checksum: the content identity used in cache keys. */
    uint64_t checksum() const { return checksum_; }

    const std::string &path() const { return path_; }

    /** Total bytes mapped (for footprint accounting). */
    uint64_t mappedBytes() const { return mapBytes_; }

    /**
     * Full structural validation (sorted rows, symmetry, no self
     * loops) -- O(arcs log degree), touches every page; meant for
     * tests and `graph_convert verify=`, not the open path.
     */
    bool validateStructure() const;

  private:
    MappedCsrGraph() = default;

    std::string path_;
    void *map_ = nullptr;
    uint64_t mapBytes_ = 0;
    const uint64_t *offsets_ = nullptr;
    const NodeId *adjacency_ = nullptr;
    uint32_t numNodes_ = 0;
    uint64_t numArcs_ = 0;
    uint64_t checksum_ = 0;
    ScaleTier tier_ = ScaleTier::Full;
    DatasetSpec spec_;
};

} // namespace grow::graph
