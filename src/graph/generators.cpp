#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace grow::graph {

namespace {

/**
 * Draw Pareto degree weights with shape (alpha - 1), rescaled to the
 * target mean and capped to keep hubs bounded.
 */
std::vector<double>
degreeWeights(uint32_t nodes, double avg_degree, double alpha,
              double max_weight_fraction, Rng &rng)
{
    GROW_ASSERT(alpha > 1.0, "power-law exponent must exceed 1");
    std::vector<double> w(nodes);
    double sum = 0.0;
    for (auto &x : w) {
        x = rng.pareto(alpha - 1.0, 1.0);
        sum += x;
    }
    double scale = avg_degree * nodes / sum;
    double cap = std::max(avg_degree, max_weight_fraction * nodes);
    for (auto &x : w)
        x = std::min(x * scale, cap);
    return w;
}

} // namespace

Graph
generateDcSbm(const DcSbmParams &params)
{
    std::vector<uint32_t> ignored;
    return generateDcSbm(params, ignored);
}

Graph
generateDcSbm(const DcSbmParams &params, std::vector<uint32_t> &community_out)
{
    GROW_ASSERT(params.nodes > 1, "need at least two nodes");
    GROW_ASSERT(params.communities >= 1, "need at least one community");
    GROW_ASSERT(params.intraFraction >= 0.0 && params.intraFraction <= 1.0,
                "intraFraction must be in [0,1]");
    Rng rng(params.seed);

    const uint32_t n = params.nodes;
    const uint32_t k =
        std::min(params.communities, std::max(1u, n / 2));

    // Shuffled community assignment: communities are (almost) equal
    // sized, but node IDs give no hint of membership.
    std::vector<uint32_t> comm(n);
    for (uint32_t i = 0; i < n; ++i)
        comm[i] = i % k;
    rng.shuffle(comm);
    community_out = comm;

    std::vector<double> weights = degreeWeights(
        n, params.avgDegree, params.powerLawAlpha,
        params.maxWeightFraction, rng);

    // Global sampler and per-community samplers.
    AliasTable global(weights);
    std::vector<std::vector<NodeId>> members(k);
    for (uint32_t i = 0; i < n; ++i)
        members[comm[i]].push_back(i);
    std::vector<AliasTable> local(k);
    for (uint32_t c = 0; c < k; ++c) {
        GROW_ASSERT(!members[c].empty(), "empty community");
        std::vector<double> mw(members[c].size());
        for (size_t i = 0; i < members[c].size(); ++i)
            mw[i] = weights[members[c][i]];
        local[c] = AliasTable(mw);
    }

    // Target undirected edges; oversample slightly because self loops
    // and duplicates are discarded in Graph::fromEdges.
    const uint64_t target =
        static_cast<uint64_t>(params.avgDegree * n / 2.0);
    std::vector<std::pair<NodeId, NodeId>> edges;
    edges.reserve(target + target / 16);
    const uint64_t attempts = target + target / 12 + 16;
    for (uint64_t e = 0; e < attempts; ++e) {
        NodeId u = global.sample(rng);
        NodeId v;
        if (rng.bernoulli(params.intraFraction)) {
            const auto &m = members[comm[u]];
            v = m[local[comm[u]].sample(rng)];
        } else {
            v = global.sample(rng);
        }
        if (u == v)
            continue;
        edges.emplace_back(u, v);
    }
    return Graph::fromEdges(n, std::move(edges));
}

Graph
generateChungLu(uint32_t nodes, double avg_degree, double alpha,
                uint64_t seed)
{
    DcSbmParams p;
    p.nodes = nodes;
    p.avgDegree = avg_degree;
    p.powerLawAlpha = alpha;
    p.communities = 1;
    p.intraFraction = 0.0;
    p.seed = seed;
    return generateDcSbm(p);
}

Graph
generateRmat(const RmatParams &params)
{
    const uint32_t n = 1u << params.scale;
    const uint64_t target =
        static_cast<uint64_t>(n * params.edgeFactor / 2.0);
    const double d = 1.0 - params.a - params.b - params.c;
    GROW_ASSERT(d >= 0.0, "R-MAT probabilities exceed 1");
    Rng rng(params.seed);

    std::vector<std::pair<NodeId, NodeId>> edges;
    edges.reserve(target);
    for (uint64_t e = 0; e < target + target / 10; ++e) {
        uint32_t u = 0, v = 0;
        for (uint32_t bit = 0; bit < params.scale; ++bit) {
            double r = rng.uniform();
            u <<= 1;
            v <<= 1;
            if (r < params.a) {
                // top-left: nothing set
            } else if (r < params.a + params.b) {
                v |= 1;
            } else if (r < params.a + params.b + params.c) {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        if (u != v)
            edges.emplace_back(u, v);
    }
    return Graph::fromEdges(n, std::move(edges));
}

Graph
generateErdosRenyi(uint32_t nodes, uint64_t undirected_edges, uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::pair<NodeId, NodeId>> edges;
    edges.reserve(undirected_edges);
    for (uint64_t e = 0; e < undirected_edges; ++e) {
        NodeId u = static_cast<NodeId>(rng.bounded(nodes));
        NodeId v = static_cast<NodeId>(rng.bounded(nodes));
        if (u != v)
            edges.emplace_back(u, v);
    }
    return Graph::fromEdges(nodes, std::move(edges));
}

Graph
generateGrid(uint32_t width, uint32_t height)
{
    GROW_ASSERT(width > 0 && height > 0, "grid dims must be positive");
    std::vector<std::pair<NodeId, NodeId>> edges;
    auto id = [width](uint32_t x, uint32_t y) { return y * width + x; };
    for (uint32_t y = 0; y < height; ++y) {
        for (uint32_t x = 0; x < width; ++x) {
            if (x + 1 < width)
                edges.emplace_back(id(x, y), id(x + 1, y));
            if (y + 1 < height)
                edges.emplace_back(id(x, y), id(x, y + 1));
        }
    }
    return Graph::fromEdges(width * height, std::move(edges));
}

} // namespace grow::graph
