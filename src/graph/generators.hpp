/**
 * @file
 * Synthetic graph generators.
 *
 * The paper evaluates on eight real-world graphs (Table I). Those
 * datasets are not redistributable inside this repository, so we
 * synthesise graphs that reproduce the three structural properties
 * GROW's mechanisms depend on:
 *
 *  1. power-law degree distribution (drives HDN caching, Fig. 11),
 *  2. community structure (drives graph partitioning, Figs. 13/14),
 *  3. target size/average degree (drives density and tiling behaviour).
 *
 * The primary generator is a degree-corrected stochastic block model
 * (DC-SBM): nodes carry Pareto-distributed degree weights and belong to
 * planted communities; each edge keeps its endpoints inside one
 * community with probability `intraFraction`. Chung-Lu (no communities)
 * and R-MAT generators are provided for ablations and tests.
 */
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "util/random.hpp"

namespace grow::graph {

/** Parameters of the degree-corrected stochastic block model. */
struct DcSbmParams
{
    uint32_t nodes = 0;
    /** Target average degree (arcs per node). */
    double avgDegree = 8.0;
    /** Degree-distribution power-law exponent (typically 2.1 - 3.0). */
    double powerLawAlpha = 2.3;
    /** Number of planted communities (>= 1; 1 degenerates to Chung-Lu). */
    uint32_t communities = 1;
    /** Probability an edge stays inside its source's community. */
    double intraFraction = 0.8;
    /** Per-node weight cap as a fraction of `nodes` (bounds hub size). */
    double maxWeightFraction = 0.25;
    uint64_t seed = 1;
};

/**
 * Generate a DC-SBM graph. Node IDs are shuffled so that community
 * membership is *not* discoverable from ID order -- the partitioner has
 * to find it (exactly the situation of Fig. 12 vs Fig. 13).
 */
Graph generateDcSbm(const DcSbmParams &params);

/**
 * Ground-truth community of each node for the most recent construction
 * is returned alongside the graph via this overload.
 */
Graph generateDcSbm(const DcSbmParams &params,
                    std::vector<uint32_t> &community_out);

/** Chung-Lu power-law graph (no community structure). */
Graph generateChungLu(uint32_t nodes, double avg_degree, double alpha,
                      uint64_t seed);

/** R-MAT parameters (defaults are the common Graph500 values). */
struct RmatParams
{
    uint32_t scale = 10;       ///< nodes = 2^scale
    double edgeFactor = 8.0;   ///< undirected edges = nodes * edgeFactor / 2
    double a = 0.57, b = 0.19, c = 0.19; ///< d = 1 - a - b - c
    uint64_t seed = 1;
};

/** Recursive-matrix (R-MAT) generator. */
Graph generateRmat(const RmatParams &params);

/** Uniform Erdos-Renyi G(n, m) graph (tests and non-power-law study). */
Graph generateErdosRenyi(uint32_t nodes, uint64_t undirected_edges,
                         uint64_t seed);

/** 2-D grid graph (deterministic, for partitioner sanity tests). */
Graph generateGrid(uint32_t width, uint32_t height);

} // namespace grow::graph
