#include "graph/graph.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace grow::graph {

Graph
Graph::fromEdges(uint32_t nodes, std::vector<std::pair<NodeId, NodeId>> edges)
{
    // Canonicalize to (min, max), drop self loops, dedupe.
    for (auto &[u, v] : edges) {
        GROW_ASSERT(u < nodes && v < nodes, "edge endpoint out of range");
        if (u > v)
            std::swap(u, v);
    }
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    edges.erase(std::remove_if(edges.begin(), edges.end(),
                               [](const auto &e) {
                                   return e.first == e.second;
                               }),
                edges.end());

    Graph g;
    g.offsets_.assign(static_cast<size_t>(nodes) + 1, 0);
    for (const auto &[u, v] : edges) {
        g.offsets_[u + 1] += 1;
        g.offsets_[v + 1] += 1;
    }
    for (uint32_t i = 0; i < nodes; ++i)
        g.offsets_[i + 1] += g.offsets_[i];
    g.neighbors_.resize(edges.size() * 2);
    std::vector<uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
    for (const auto &[u, v] : edges) {
        g.neighbors_[cursor[u]++] = v;
        g.neighbors_[cursor[v]++] = u;
    }
    for (uint32_t v = 0; v < nodes; ++v)
        std::sort(g.neighbors_.begin() + g.offsets_[v],
                  g.neighbors_.begin() + g.offsets_[v + 1]);
    return g;
}

Graph
Graph::fromAdjacency(std::vector<uint64_t> offsets,
                     std::vector<NodeId> neighbors)
{
    GROW_ASSERT(!offsets.empty() && offsets.front() == 0 &&
                    offsets.back() == neighbors.size(),
                "malformed adjacency offsets");
    Graph g;
    g.offsets_ = std::move(offsets);
    g.neighbors_ = std::move(neighbors);
    GROW_ASSERT(g.validate(), "adjacency arrays violate graph invariants");
    return g;
}

double
Graph::avgDegree() const
{
    uint32_t n = numNodes();
    return n == 0 ? 0.0
                  : static_cast<double>(numArcs()) / static_cast<double>(n);
}

double
Graph::density() const
{
    uint32_t n = numNodes();
    if (n == 0)
        return 0.0;
    return static_cast<double>(numArcs()) /
           (static_cast<double>(n) * static_cast<double>(n));
}

uint32_t
Graph::degree(NodeId v) const
{
    GROW_ASSERT(v < numNodes(), "node out of range");
    return static_cast<uint32_t>(offsets_[v + 1] - offsets_[v]);
}

std::span<const NodeId>
Graph::neighbors(NodeId v) const
{
    GROW_ASSERT(v < numNodes(), "node out of range");
    return {neighbors_.data() + offsets_[v],
            static_cast<size_t>(offsets_[v + 1] - offsets_[v])};
}

bool
Graph::hasEdge(NodeId u, NodeId v) const
{
    auto nb = neighbors(u);
    return std::binary_search(nb.begin(), nb.end(), v);
}

Graph
Graph::relabeled(const std::vector<NodeId> &new_to_old) const
{
    uint32_t n = numNodes();
    GROW_ASSERT(new_to_old.size() == n, "permutation size mismatch");
    std::vector<NodeId> old_to_new(n, kInvalidNode);
    for (NodeId i = 0; i < n; ++i) {
        GROW_ASSERT(new_to_old[i] < n && old_to_new[new_to_old[i]] == kInvalidNode,
                    "new_to_old is not a permutation");
        old_to_new[new_to_old[i]] = i;
    }

    Graph g;
    g.offsets_.assign(static_cast<size_t>(n) + 1, 0);
    for (NodeId i = 0; i < n; ++i)
        g.offsets_[i + 1] = g.offsets_[i] + degree(new_to_old[i]);
    g.neighbors_.resize(numArcs());
    for (NodeId i = 0; i < n; ++i) {
        uint64_t out = g.offsets_[i];
        for (NodeId nb : neighbors(new_to_old[i]))
            g.neighbors_[out++] = old_to_new[nb];
        std::sort(g.neighbors_.begin() + g.offsets_[i],
                  g.neighbors_.begin() + g.offsets_[i + 1]);
    }
    return g;
}

bool
Graph::validate() const
{
    uint32_t n = numNodes();
    for (NodeId v = 0; v < n; ++v) {
        auto nb = neighbors(v);
        for (size_t i = 0; i < nb.size(); ++i) {
            if (nb[i] >= n || nb[i] == v)
                return false;
            if (i > 0 && nb[i] <= nb[i - 1])
                return false;
            // Symmetry.
            if (!hasEdge(nb[i], v))
                return false;
        }
    }
    return true;
}

} // namespace grow::graph
