/**
 * @file
 * Undirected graph in adjacency-CSR form.
 *
 * The convention throughout matches Table I of the paper: "# of Edges"
 * counts directed arcs (each undirected edge contributes two adjacency
 * entries), so average degree = arcs / nodes.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "sim/types.hpp"

namespace grow::graph {

/**
 * Non-owning view of an adjacency-CSR graph: the accessor surface the
 * workload-build front-end (normalize, partition, relabel, HDN select,
 * sampling) consumes. Both storage backends produce one -- Graph (heap
 * vectors) via view() and MappedCsrGraph (mmap-backed file, possibly
 * larger than RAM) via its view() -- so the whole pipeline streams
 * either without caring where the bytes live. Invariants match Graph:
 * sorted neighbor lists, symmetric, no self loops.
 */
struct CsrView
{
    std::span<const uint64_t> offsets;  ///< size numNodes+1 (or empty)
    std::span<const NodeId> adjacency;  ///< sorted within each node

    uint32_t numNodes() const
    {
        return static_cast<uint32_t>(
            offsets.empty() ? 0 : offsets.size() - 1);
    }

    /** Directed adjacency entries (2x undirected edge count). */
    uint64_t numArcs() const { return adjacency.size(); }

    /** Undirected edge count. */
    uint64_t numEdges() const { return adjacency.size() / 2; }

    double avgDegree() const
    {
        const uint32_t n = numNodes();
        return n == 0 ? 0.0
                      : static_cast<double>(numArcs()) /
                            static_cast<double>(n);
    }

    /** Density of the (binary) adjacency matrix. */
    double density() const
    {
        const double n = numNodes();
        return n == 0.0 ? 0.0 : static_cast<double>(numArcs()) / (n * n);
    }

    uint32_t degree(NodeId v) const
    {
        return static_cast<uint32_t>(offsets[v + 1] - offsets[v]);
    }

    /** Sorted neighbor list of @p v. */
    std::span<const NodeId> neighbors(NodeId v) const
    {
        return adjacency.subspan(offsets[v],
                                 static_cast<size_t>(offsets[v + 1] -
                                                     offsets[v]));
    }
};

class Graph
{
  public:
    Graph() = default;

    /**
     * Build from undirected edge endpoints. Self-loops and duplicate
     * edges are removed; both (u,v) and (v,u) adjacency entries are
     * created.
     */
    static Graph fromEdges(uint32_t nodes,
                           std::vector<std::pair<NodeId, NodeId>> edges);

    /**
     * Rebuild from raw adjacency-CSR arrays (e.g. a deserialized
     * graph). The arrays must already satisfy the class invariants:
     * sorted neighbor lists, symmetric, no self loops -- validated.
     */
    static Graph fromAdjacency(std::vector<uint64_t> offsets,
                               std::vector<NodeId> neighbors);

    uint32_t numNodes() const { return static_cast<uint32_t>(offsets_.empty() ? 0 : offsets_.size() - 1); }

    /** Directed adjacency entries (2x undirected edge count). */
    uint64_t numArcs() const { return neighbors_.size(); }

    /** Undirected edge count. */
    uint64_t numEdges() const { return neighbors_.size() / 2; }

    double avgDegree() const;

    /** Density of the (binary) adjacency matrix. */
    double density() const;

    uint32_t degree(NodeId v) const;

    /** Sorted neighbor list of @p v. */
    std::span<const NodeId> neighbors(NodeId v) const;

    const std::vector<uint64_t> &offsets() const { return offsets_; }
    const std::vector<NodeId> &adjacency() const { return neighbors_; }

    /** Non-owning CSR view (the front-end accessor surface). */
    CsrView view() const { return {offsets_, neighbors_}; }

    /** Whether edge (u,v) exists (binary search). */
    bool hasEdge(NodeId u, NodeId v) const;

    /**
     * Relabelled copy: node i of the result is node new_to_old[i] of
     * this graph.
     */
    Graph relabeled(const std::vector<NodeId> &new_to_old) const;

    /** Structural invariants: sortedness, symmetry, no self loops. */
    bool validate() const;

  private:
    std::vector<uint64_t> offsets_;  ///< size numNodes+1
    std::vector<NodeId> neighbors_;  ///< sorted within each node
};

} // namespace grow::graph
