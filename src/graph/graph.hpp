/**
 * @file
 * Undirected graph in adjacency-CSR form.
 *
 * The convention throughout matches Table I of the paper: "# of Edges"
 * counts directed arcs (each undirected edge contributes two adjacency
 * entries), so average degree = arcs / nodes.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "sim/types.hpp"

namespace grow::graph {

class Graph
{
  public:
    Graph() = default;

    /**
     * Build from undirected edge endpoints. Self-loops and duplicate
     * edges are removed; both (u,v) and (v,u) adjacency entries are
     * created.
     */
    static Graph fromEdges(uint32_t nodes,
                           std::vector<std::pair<NodeId, NodeId>> edges);

    /**
     * Rebuild from raw adjacency-CSR arrays (e.g. a deserialized
     * graph). The arrays must already satisfy the class invariants:
     * sorted neighbor lists, symmetric, no self loops -- validated.
     */
    static Graph fromAdjacency(std::vector<uint64_t> offsets,
                               std::vector<NodeId> neighbors);

    uint32_t numNodes() const { return static_cast<uint32_t>(offsets_.empty() ? 0 : offsets_.size() - 1); }

    /** Directed adjacency entries (2x undirected edge count). */
    uint64_t numArcs() const { return neighbors_.size(); }

    /** Undirected edge count. */
    uint64_t numEdges() const { return neighbors_.size() / 2; }

    double avgDegree() const;

    /** Density of the (binary) adjacency matrix. */
    double density() const;

    uint32_t degree(NodeId v) const;

    /** Sorted neighbor list of @p v. */
    std::span<const NodeId> neighbors(NodeId v) const;

    const std::vector<uint64_t> &offsets() const { return offsets_; }
    const std::vector<NodeId> &adjacency() const { return neighbors_; }

    /** Whether edge (u,v) exists (binary search). */
    bool hasEdge(NodeId u, NodeId v) const;

    /**
     * Relabelled copy: node i of the result is node new_to_old[i] of
     * this graph.
     */
    Graph relabeled(const std::vector<NodeId> &new_to_old) const;

    /** Structural invariants: sortedness, symmetry, no self loops. */
    bool validate() const;

  private:
    std::vector<uint64_t> offsets_;  ///< size numNodes+1
    std::vector<NodeId> neighbors_;  ///< sorted within each node
};

} // namespace grow::graph
