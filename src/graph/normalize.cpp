#include "graph/normalize.hpp"

#include <cmath>

#include "util/work_pool.hpp"

namespace grow::graph {

sparse::CsrMatrix
normalizedAdjacency(const CsrView &g, bool self_loops, uint32_t threads)
{
    const uint32_t n = g.numNodes();
    std::vector<double> invSqrtDeg(n);
    for (NodeId v = 0; v < n; ++v) {
        double d = g.degree(v) + (self_loops ? 1.0 : 0.0);
        invSqrtDeg[v] = d > 0.0 ? 1.0 / std::sqrt(d) : 0.0;
    }

    std::vector<uint64_t> rowPtr(static_cast<size_t>(n) + 1, 0);
    for (NodeId v = 0; v < n; ++v)
        rowPtr[v + 1] = rowPtr[v] + g.degree(v) + (self_loops ? 1 : 0);
    std::vector<NodeId> colIdx(rowPtr[n]);
    std::vector<double> values(rowPtr[n]);

    // Disjoint-write row fill: each row's slice of colIdx/values is
    // bracketed by rowPtr, so chunks never overlap and the output is
    // independent of the thread count.
    util::parallelFor(n, threads,
                      [&](uint64_t begin, uint64_t end, uint32_t) {
        for (NodeId v = static_cast<NodeId>(begin); v < end; ++v) {
            uint64_t out = rowPtr[v];
            // The self loop lands at its sorted position among the
            // (ascending) neighbors, matching the canonical COO order
            // this construction replaced bit for bit.
            bool selfPlaced = !self_loops;
            for (NodeId nb : g.neighbors(v)) {
                if (!selfPlaced && nb > v) {
                    colIdx[out] = v;
                    values[out] = invSqrtDeg[v] * invSqrtDeg[v];
                    selfPlaced = true;
                    ++out;
                }
                colIdx[out] = nb;
                values[out] = invSqrtDeg[v] * invSqrtDeg[nb];
                ++out;
            }
            if (!selfPlaced) {
                colIdx[out] = v;
                values[out] = invSqrtDeg[v] * invSqrtDeg[v];
            }
        }
    });
    return sparse::CsrMatrix::fromRaw(n, n, std::move(rowPtr),
                                      std::move(colIdx),
                                      std::move(values));
}

sparse::CsrMatrix
normalizedAdjacency(const Graph &g, bool self_loops)
{
    return normalizedAdjacency(g.view(), self_loops, 1);
}

sparse::CsrMatrix
binaryAdjacency(const CsrView &g)
{
    std::vector<uint64_t> rowPtr(g.offsets.begin(), g.offsets.end());
    if (rowPtr.empty())
        rowPtr.push_back(0);
    std::vector<NodeId> colIdx(g.adjacency.begin(), g.adjacency.end());
    std::vector<double> values(colIdx.size(), 1.0);
    return sparse::CsrMatrix::fromRaw(g.numNodes(), g.numNodes(),
                                      std::move(rowPtr),
                                      std::move(colIdx),
                                      std::move(values));
}

sparse::CsrMatrix
binaryAdjacency(const Graph &g)
{
    return binaryAdjacency(g.view());
}

} // namespace grow::graph
