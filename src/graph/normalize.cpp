#include "graph/normalize.hpp"

#include <cmath>

#include "sparse/coo_matrix.hpp"

namespace grow::graph {

sparse::CsrMatrix
normalizedAdjacency(const Graph &g, bool self_loops)
{
    const uint32_t n = g.numNodes();
    std::vector<double> invSqrtDeg(n);
    for (NodeId v = 0; v < n; ++v) {
        double d = g.degree(v) + (self_loops ? 1.0 : 0.0);
        invSqrtDeg[v] = d > 0.0 ? 1.0 / std::sqrt(d) : 0.0;
    }

    sparse::CooMatrix coo(n, n);
    coo.reserve(g.numArcs() + (self_loops ? n : 0));
    for (NodeId v = 0; v < n; ++v) {
        if (self_loops)
            coo.add(v, v, invSqrtDeg[v] * invSqrtDeg[v]);
        for (NodeId nb : g.neighbors(v))
            coo.add(v, nb, invSqrtDeg[v] * invSqrtDeg[nb]);
    }
    coo.canonicalize();
    return sparse::CsrMatrix::fromCoo(coo);
}

sparse::CsrMatrix
binaryAdjacency(const Graph &g)
{
    const uint32_t n = g.numNodes();
    sparse::CooMatrix coo(n, n);
    coo.reserve(g.numArcs());
    for (NodeId v = 0; v < n; ++v)
        for (NodeId nb : g.neighbors(v))
            coo.add(v, nb, 1.0);
    coo.canonicalize();
    return sparse::CsrMatrix::fromCoo(coo);
}

} // namespace grow::graph
