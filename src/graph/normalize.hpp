/**
 * @file
 * GCN adjacency normalization.
 *
 * Equation (1) of the paper operates on a normalized adjacency matrix;
 * normalization happens offline as a one-time preprocessing step
 * (Sec. II-A). We implement the standard Kipf & Welling symmetric form
 *     A_hat = D^{-1/2} (A + I) D^{-1/2}
 * with optional self-loops.
 */
#pragma once

#include "graph/graph.hpp"
#include "sparse/csr_matrix.hpp"

namespace grow::graph {

/**
 * Build the normalized adjacency CSR of @p g. Row fills fan out over
 * @p threads workers in thread-count-independent chunks
 * (util::parallelFor): the result is bit-identical for every thread
 * count, including the serial threads=1 path.
 *
 * @param g            input CSR view (heap Graph or mmap-backed file)
 * @param self_loops   add I before normalizing (GCN convention)
 * @param threads      worker threads for the row fill
 */
sparse::CsrMatrix normalizedAdjacency(const CsrView &g,
                                      bool self_loops = true,
                                      uint32_t threads = 1);

/** Convenience overload over a heap Graph (serial). */
sparse::CsrMatrix normalizedAdjacency(const Graph &g,
                                      bool self_loops = true);

/** Unnormalized binary adjacency CSR (all values 1.0). */
sparse::CsrMatrix binaryAdjacency(const CsrView &g);

/** Convenience overload over a heap Graph. */
sparse::CsrMatrix binaryAdjacency(const Graph &g);

} // namespace grow::graph
