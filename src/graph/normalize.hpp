/**
 * @file
 * GCN adjacency normalization.
 *
 * Equation (1) of the paper operates on a normalized adjacency matrix;
 * normalization happens offline as a one-time preprocessing step
 * (Sec. II-A). We implement the standard Kipf & Welling symmetric form
 *     A_hat = D^{-1/2} (A + I) D^{-1/2}
 * with optional self-loops.
 */
#pragma once

#include "graph/graph.hpp"
#include "sparse/csr_matrix.hpp"

namespace grow::graph {

/**
 * Build the normalized adjacency CSR of @p g.
 *
 * @param g            input graph
 * @param self_loops   add I before normalizing (GCN convention)
 */
sparse::CsrMatrix normalizedAdjacency(const Graph &g,
                                      bool self_loops = true);

/** Unnormalized binary adjacency CSR (all values 1.0). */
sparse::CsrMatrix binaryAdjacency(const Graph &g);

} // namespace grow::graph
