#include "graph/sampling.hpp"

#include <algorithm>

#include "util/logging.hpp"
#include "util/random.hpp"

namespace grow::graph {

sparse::CsrMatrix
sampleNeighborAdjacency(const Graph &g, uint32_t fanout, uint64_t seed)
{
    return sampleNeighborAdjacency(g.view(), fanout, seed);
}

sparse::CsrMatrix
sampleNeighborAdjacency(const CsrView &g, uint32_t fanout, uint64_t seed)
{
    GROW_ASSERT(fanout >= 1, "neighbour sampling needs fanout >= 1");
    const uint32_t n = g.numNodes();
    Rng rng(seed);

    std::vector<uint64_t> rowPtr(n + 1, 0);
    std::vector<NodeId> colIdx;
    std::vector<double> values;
    // The sample can never exceed self + degree entries per row, so a
    // huge fanout must not reserve n*(fanout+1) (OOM-sized on large
    // graphs where the actual result is arc-bounded).
    const size_t reserve =
        std::min<size_t>(static_cast<size_t>(n) * (fanout + 1ull),
                         g.numArcs() + n);
    colIdx.reserve(reserve);
    values.reserve(reserve);

    std::vector<NodeId> pool;
    for (NodeId v = 0; v < n; ++v) {
        auto nbrs = g.neighbors(v);
        const uint32_t deg = static_cast<uint32_t>(nbrs.size());
        const uint32_t k = std::min(fanout, deg);

        // Sampled neighbour set: all of them when the fanout covers the
        // degree, else a partial Fisher-Yates draw without replacement.
        pool.assign(nbrs.begin(), nbrs.end());
        if (k < deg) {
            for (uint32_t i = 0; i < k; ++i) {
                uint32_t j =
                    i + static_cast<uint32_t>(rng.bounded(deg - i));
                std::swap(pool[i], pool[j]);
            }
            pool.resize(k);
        }
        // Central node joins its sampled set (SAGEConv mean includes
        // h_v); re-sort so the CSR row invariant (ascending) holds.
        pool.push_back(v);
        std::sort(pool.begin(), pool.end());

        const double weight = 1.0 / static_cast<double>(pool.size());
        for (NodeId u : pool) {
            colIdx.push_back(u);
            values.push_back(weight);
        }
        rowPtr[v + 1] = rowPtr[v] + pool.size();
    }
    return sparse::CsrMatrix::fromRaw(n, n, std::move(rowPtr),
                                      std::move(colIdx),
                                      std::move(values));
}

} // namespace grow::graph
