/**
 * @file
 * Seeded neighbour sampling (GraphSAGE's fanout-k operand, Sec. VIII).
 *
 * SAGEConv aggregates over a *sampled* neighbourhood instead of the
 * full adjacency: every node keeps itself plus at most `fanout`
 * uniformly drawn neighbours. On the GROW pipeline the sampled
 * neighbourhood is just another sparse LHS -- a row-subsampled,
 * mean-normalized adjacency matrix streamed by the same row-stationary
 * dataflow (the Sec. VIII argument for SAGEConv mapping onto the MAC
 * array as-is).
 *
 * Sampling is deterministic per (graph, fanout, seed), so the sampled
 * adjacency is a depth-independent preprocessing artefact: it is built
 * once in gcn::buildGraphArtifacts and cached (memory + disk) through
 * driver::WorkloadCache exactly like the partitioning outputs.
 */
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "sparse/csr_matrix.hpp"

namespace grow::graph {

/**
 * Row-stochastic sampled adjacency of @p g: row v holds v itself plus
 * min(fanout, degree(v)) distinct neighbours drawn uniformly without
 * replacement, every entry weighted 1/(1 + #sampled) (the SAGEConv
 * mean over the sampled set including the central node). The result is
 * square (N x N) but -- unlike the input graph -- *not* symmetric:
 * u sampling v does not make v sample u.
 *
 * Deterministic: the same (g, fanout, seed) always yields a
 * bit-identical matrix. @p fanout must be >= 1.
 */
sparse::CsrMatrix sampleNeighborAdjacency(const CsrView &g,
                                          uint32_t fanout, uint64_t seed);

/** Convenience overload over a heap Graph. */
sparse::CsrMatrix sampleNeighborAdjacency(const Graph &g, uint32_t fanout,
                                          uint64_t seed);

} // namespace grow::graph
