#include "mapping/mapping.hpp"

#include <sstream>

#include "util/logging.hpp"

namespace grow::mapping {

const char *
dimName(Dim dim)
{
    switch (dim) {
      case Dim::M: return "M";
      case Dim::K: return "K";
      case Dim::N: return "N";
    }
    return "?";
}

const char *
stationarityName(Stationarity s)
{
    switch (s) {
      case Stationarity::Row: return "row-stationary";
      case Stationarity::Output: return "output-stationary";
      case Stationarity::None: return "streaming";
    }
    return "?";
}

const char *
denseReuseName(DenseReuse r)
{
    switch (r) {
      case DenseReuse::Resident: return "resident";
      case DenseReuse::PinnedCache: return "pinned-cache";
      case DenseReuse::LruCache: return "lru-cache";
      case DenseReuse::Tiled: return "tiled";
      case DenseReuse::None: return "none";
    }
    return "?";
}

const char *
operandFormatName(OperandFormat f)
{
    switch (f) {
      case OperandFormat::DenseRows: return "dense-rows";
      case OperandFormat::CompressedFiber: return "compressed-fiber";
    }
    return "?";
}

const char *
phaseClassName(PhaseClass c)
{
    switch (c) {
      case PhaseClass::DenseResident: return "dense-resident";
      case PhaseClass::SparseStreaming: return "sparse-streaming";
    }
    return "?";
}

const char *
bufferRoleName(BufferRole r)
{
    switch (r) {
      case BufferRole::SparseInput: return "sparse-input";
      case BufferRole::DenseInput: return "dense-input";
      case BufferRole::Output: return "output";
      case BufferRole::RowCache: return "row-cache";
      case BufferRole::MergeQueue: return "merge-queue";
    }
    return "?";
}

Bytes
MappingSpec::bufferCapacity(BufferRole role) const
{
    for (const BufferLevel &b : buffers) {
        if (b.role == role)
            return b.capacityBytes;
    }
    return 0;
}

void
validate(const MappingSpec &spec)
{
    bool seen[3] = {false, false, false};
    uint32_t spatial = 0;
    for (const LoopLevel &l : spec.loops) {
        seen[static_cast<size_t>(l.dim)] = true;
        if (l.kind == MapKind::Spatial)
            ++spatial;
    }
    GROW_ASSERT(seen[0] && seen[1] && seen[2],
                "mapping loop nest must cover M, K and N");
    GROW_ASSERT(spatial <= 1,
                "at most one spatial level per mapping");
    GROW_ASSERT(spec.spatialLanes >= 1, "spatialLanes must be >= 1");
    GROW_ASSERT(spec.rowWindow >= 1, "rowWindow must be >= 1");
    GROW_ASSERT(spec.missConcurrency >= 1,
                "missConcurrency must be >= 1");
    if (spec.rhsResident()) {
        GROW_ASSERT(spec.denseReuse == DenseReuse::Resident ||
                        spec.denseReuse == DenseReuse::LruCache ||
                        spec.denseReuse == DenseReuse::Tiled ||
                        spec.denseReuse == DenseReuse::None,
                    "dense-resident phase with a pinned reuse cache");
    }
}

void
validate(const EngineMapping &mapping)
{
    GROW_ASSERT(!mapping.engine.empty(), "engine mapping needs a name");
    GROW_ASSERT(mapping.combination.phaseClass ==
                    PhaseClass::DenseResident,
                "combination spec must be dense-resident");
    GROW_ASSERT(mapping.aggregation.phaseClass ==
                    PhaseClass::SparseStreaming,
                "aggregation spec must be sparse-streaming");
    GROW_ASSERT(mapping.dramBytesPerCycle > 0.0,
                "mapping needs a positive DRAM bandwidth");
    GROW_ASSERT(mapping.numPes >= 1, "mapping needs >= 1 PE");
    validate(mapping.combination);
    validate(mapping.aggregation);
}

std::string
describe(const MappingSpec &spec)
{
    std::ostringstream os;
    os << stationarityName(spec.stationarity) << " { ";
    for (const LoopLevel &l : spec.loops) {
        os << (l.kind == MapKind::Spatial ? "SpatialMap" : "TemporalMap");
        if (l.tile == 0)
            os << "(*,*) ";
        else
            os << "(" << l.tile << "," << l.tile << ") ";
        os << dimName(l.dim) << "; ";
    }
    os << "} rhs=" << operandFormatName(spec.rhsFormat)
       << " reuse=" << denseReuseName(spec.denseReuse);
    return os.str();
}

const EngineMapping &
genericMapping()
{
    static const EngineMapping generic = [] {
        EngineMapping em;
        em.engine = "generic";
        em.consumesPartitioning = false;
        MappingSpec s;
        s.stationarity = Stationarity::Row;
        s.loops = {{Dim::M, MapKind::Temporal, 0},
                   {Dim::K, MapKind::Temporal, 1},
                   {Dim::N, MapKind::Spatial, 0}};
        em.combination = s;
        em.combination.phaseClass = PhaseClass::DenseResident;
        em.combination.denseReuse = DenseReuse::Resident;
        em.aggregation = s;
        em.aggregation.phaseClass = PhaseClass::SparseStreaming;
        em.aggregation.denseReuse = DenseReuse::None;
        validate(em);
        return em;
    }();
    return generic;
}

} // namespace grow::mapping
