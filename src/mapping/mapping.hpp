/**
 * @file
 * Declarative dataflow mappings (MAESTRO-style) for the SpDeGEMM
 * engines.
 *
 * Every accelerator model publishes one EngineMapping: a small,
 * per-phase-class description of its loop nest (order, temporal vs
 * spatial mapping, tile sizes), operand stationarity, dense-operand
 * reuse category, operand formats and buffer levels. Two consumers
 * replace what used to be hardwired per-engine knowledge:
 *
 *  - gcn::buildPhasePlan derives every engine-visible problem field
 *    (rhsOnChip, accel::Phase, artefact attachment) from the spec of
 *    the phase class it is lowering, so the lowering contains no
 *    per-engine special cases, and
 *  - costmodel::AnalyticalCostModel turns (MappingSpec, workload
 *    reuse statistics) into closed-form cycle/traffic estimates, the
 *    fast tier of the design-space-exploration driver.
 *
 * The vocabulary follows qmaestro's dataflow DSL (TemporalMap /
 * SpatialMap per dimension); describe() renders a spec in that style
 * for reports and debugging. The module is a leaf: it depends only on
 * sim/types.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace grow::mapping {

/** Loop dimensions of C[M x N] = S[M x K] * D[K x N]. */
enum class Dim : uint8_t { M, K, N };

const char *dimName(Dim dim);

/** How one loop level distributes its dimension (MAESTRO directive). */
enum class MapKind : uint8_t { Temporal, Spatial };

/** One level of the loop nest, outermost first. */
struct LoopLevel
{
    Dim dim = Dim::M;
    MapKind kind = MapKind::Temporal;
    /**
     * Iteration-space tile mapped at this level; 0 means "full extent
     * or chosen per problem at runtime" (e.g. GCNAX's traffic-driven
     * tiling search).
     */
    uint32_t tile = 0;
};

/** Which operand the loop body holds stationary. */
enum class Stationarity : uint8_t {
    Row,    ///< one sparse LHS row's products stay resident (GROW)
    Output, ///< output tile accumulates in place (GCNAX)
    None    ///< partials stream through a merge network
};

const char *stationarityName(Stationarity s);

/** Reuse category of the dense RHS operand. */
enum class DenseReuse : uint8_t {
    Resident,    ///< whole operand pinned on-chip for the phase (W)
    PinnedCache, ///< top-degree rows pinned per cluster (GROW HDN)
    LruCache,    ///< demand-filled fully-associative LRU (GAMMA)
    Tiled,       ///< buffer-sized tiles refetched per output trip
    None         ///< every reference refetches (MatRaptor)
};

const char *denseReuseName(DenseReuse r);

/** Storage format of an operand as it crosses the DRAM boundary. */
enum class OperandFormat : uint8_t {
    DenseRows,      ///< N values per row, value bytes only
    CompressedFiber ///< value+index per element plus a segment pointer
};

const char *operandFormatName(OperandFormat f);

/**
 * Which phase class of the GCN lowering a spec describes. The lowering
 * (not the engine) decides the class per PlannedPhase: combination
 * X*W keeps the weight operand on-chip for the whole phase
 * (Sec. V-B), every adjacency-streaming step does not.
 */
enum class PhaseClass : uint8_t { DenseResident, SparseStreaming };

const char *phaseClassName(PhaseClass c);

/** Named on-chip buffer level of a mapping. */
enum class BufferRole : uint8_t {
    SparseInput, ///< streamed sparse LHS staging
    DenseInput,  ///< dense RHS rows / tiles
    Output,      ///< output accumulation
    RowCache,    ///< dense-row reuse cache (HDN / fiber cache)
    MergeQueue   ///< partial-result sorting or merge storage
};

const char *bufferRoleName(BufferRole r);

struct BufferLevel
{
    BufferRole role = BufferRole::SparseInput;
    Bytes capacityBytes = 0;
};

/**
 * Dataflow of one engine for one phase class. Purely declarative:
 * engines publish it, the lowering and the analytical cost model
 * consume it; nothing here executes.
 */
struct MappingSpec
{
    PhaseClass phaseClass = PhaseClass::SparseStreaming;
    Stationarity stationarity = Stationarity::Row;
    DenseReuse denseReuse = DenseReuse::None;
    OperandFormat rhsFormat = OperandFormat::DenseRows;
    OperandFormat outFormat = OperandFormat::DenseRows;

    /** Loop nest, outermost first. */
    std::vector<LoopLevel> loops;
    /** On-chip buffer levels backing the mapping. */
    std::vector<BufferLevel> buffers;

    /** MAC lanes the spatial level spreads one product over. */
    uint32_t spatialLanes = 1;
    /** Rows held concurrently in the temporal M window (runahead). */
    uint32_t rowWindow = 1;
    /** Outstanding distinct dense-row misses (LDN entries). */
    uint32_t missConcurrency = 1;
    /** Post-MAC merge throughput in elements/cycle (0 = accumulate
     *  in place, no merge network). */
    uint32_t reductionLanes = 0;
    /** Entries of the pinned-row ID CAM bounding the pinned set. */
    uint32_t pinnedIdEntries = 0;
    /** Pipeline bubble per non-empty sparse tile (tiled dataflows). */
    Cycle tileOverheadCycles = 0;
    /** Sparse-stream DMA chunk granularity (0 = line granular). */
    Bytes streamChunkBytes = 0;
    /** Tiling-search bounds (DenseReuse::Tiled only). */
    uint32_t minTileK = 0;
    uint32_t minTileM = 0;

    /** Whether the dense operand is on-chip for the whole phase. */
    bool rhsResident() const
    {
        return phaseClass == PhaseClass::DenseResident;
    }

    /** Capacity of the first buffer with @p role (0 when absent). */
    Bytes bufferCapacity(BufferRole role) const;
};

/**
 * The complete dataflow description one engine publishes: one spec per
 * phase class plus the platform scalars the roofline needs.
 */
struct EngineMapping
{
    /** Engine report name ("grow", "gcnax", ...). */
    std::string engine;
    /**
     * Whether the engine can exploit GROW's preprocessing artefacts
     * (cluster layout + per-cluster HDN lists). A run convention may
     * still disable partitioning for such an engine ("grow w/o G.P"),
     * which is why RunOptions::usePartitioning stays separate.
     */
    bool consumesPartitioning = false;

    MappingSpec combination;
    MappingSpec aggregation;

    /** Per-PE DRAM bandwidth in bytes per accelerator cycle. */
    double dramBytesPerCycle = 128.0;
    /** Idle DRAM access latency in cycles. */
    Cycle dramAccessLatency = 100;
    /** Processing elements sharing the (PE-scaled) channel. */
    uint32_t numPes = 1;

    /** Spec for a phase class. */
    const MappingSpec &spec(PhaseClass c) const
    {
        return c == PhaseClass::DenseResident ? combination : aggregation;
    }
};

/**
 * Asserts the structural invariants of @p spec: the loop nest covers
 * M, K and N, at most one spatial level, non-zero lane/window/
 * concurrency counts, and a phase class consistent with the reuse
 * category (a DenseResident phase never carries a reuse cache).
 */
void validate(const MappingSpec &spec);

/** validate() both specs plus the per-phase-class invariants. */
void validate(const EngineMapping &mapping);

/**
 * qmaestro-style rendering of one spec, e.g.
 *   "row-stationary { TemporalMap(16,16) M; TemporalMap(1,1) K;
 *    SpatialMap(16,16) N; } rhs=dense-rows reuse=pinned-cache"
 */
std::string describe(const MappingSpec &spec);

/**
 * The engine-neutral lowering contract: combination is DenseResident,
 * adjacency steps are SparseStreaming. buildPhasePlan falls back to
 * this when RunOptions carries no engine mapping (plans built
 * without an engine in hand, e.g. plan-shape tests); the problems it
 * produces are field-identical to every published engine mapping's.
 */
const EngineMapping &genericMapping();

} // namespace grow::mapping
