#include "mem/dma.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace grow::mem {

DmaEngine::DmaEngine(DramModel &dram, Bytes chunk_bytes)
    : dram_(dram), chunkBytes_(chunk_bytes)
{
    GROW_ASSERT(chunkBytes_ >= dram.config().lineBytes,
                "DMA chunk must be at least one DRAM line");
}

Cycle
DmaEngine::streamRead(Cycle now, uint64_t addr, Bytes bytes,
                      TrafficClass cls)
{
    Cycle done = now;
    Bytes remaining = bytes;
    uint64_t cursor = addr;
    while (remaining > 0) {
        Bytes chunk = std::min(remaining, chunkBytes_);
        done = dram_.read(now, cursor, chunk, cls);
        cursor += chunk;
        remaining -= chunk;
        ++requests_;
    }
    return done;
}

Cycle
DmaEngine::streamWrite(Cycle now, uint64_t addr, Bytes bytes,
                       TrafficClass cls)
{
    Cycle done = now;
    Bytes remaining = bytes;
    uint64_t cursor = addr;
    while (remaining > 0) {
        Bytes chunk = std::min(remaining, chunkBytes_);
        done = dram_.write(now, cursor, chunk, cls);
        cursor += chunk;
        remaining -= chunk;
        ++requests_;
    }
    return done;
}

} // namespace grow::mem
