/**
 * @file
 * DMA engine: chunked streaming transfers between DRAM and the on-chip
 * buffers (Fig. 8's "DMA unit").
 */
#pragma once

#include <cstdint>

#include "mem/dram.hpp"
#include "sim/types.hpp"

namespace grow::mem {

/**
 * Streams large transfers through DRAM in fixed-size chunks so a long
 * preload does not monopolise the channel in one indivisible request.
 */
class DmaEngine
{
  public:
    /**
     * @param dram        shared DRAM device
     * @param chunk_bytes request granularity (default 256 B)
     */
    explicit DmaEngine(DramModel &dram, Bytes chunk_bytes = 256);

    /** Stream-read @p bytes; returns completion of the last chunk. */
    Cycle streamRead(Cycle now, uint64_t addr, Bytes bytes,
                     TrafficClass cls);

    /** Stream-write @p bytes; returns completion of the last chunk. */
    Cycle streamWrite(Cycle now, uint64_t addr, Bytes bytes,
                      TrafficClass cls);

    uint64_t requestsIssued() const { return requests_; }

  private:
    DramModel &dram_;
    Bytes chunkBytes_;
    uint64_t requests_ = 0;
};

} // namespace grow::mem
