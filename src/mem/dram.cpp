#include "mem/dram.hpp"

#include <algorithm>
#include <cmath>

#include "util/bitutil.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"

namespace grow::mem {

Bytes
DramTraffic::totalRead() const
{
    Bytes total = 0;
    for (Bytes b : readBytes)
        total += b;
    return total;
}

Bytes
DramTraffic::totalWrite() const
{
    Bytes total = 0;
    for (Bytes b : writeBytes)
        total += b;
    return total;
}

Bytes
DramModel::lineAligned(Bytes bytes) const
{
    return roundUp(std::max<Bytes>(bytes, 1), config_.lineBytes);
}

SimpleDram::SimpleDram(DramConfig config) : DramModel(config)
{
    GROW_ASSERT(config.bandwidthGBps > 0, "bandwidth must be positive");
}

Cycle
SimpleDram::serialize(Cycle now, Bytes line_bytes)
{
    Cycle start = std::max(now, channelFree_);
    double cycles = static_cast<double>(line_bytes) /
                    config_.bytesPerCycle() + residual_;
    // Charge whole cycles only and carry the fraction (always in
    // [0, 1)) into the next transfer: long-run channel occupancy is
    // exactly totalBytes / bytesPerCycle. A sub-cycle transfer may
    // occupy the channel for 0 cycles -- its cost is borne by the
    // transfer that tips the accumulator over -- but its *completion*
    // is still reported at least one cycle after issue below, so no
    // transfer ever appears instantaneous to the engine.
    Cycle whole = static_cast<Cycle>(cycles);
    residual_ = cycles - static_cast<double>(whole);
    channelFree_ = start + whole;
    busyCycles_ += whole;
    return std::max(channelFree_, start + 1);
}

std::unique_ptr<DramModel>
SimpleDram::cloneTimingState() const
{
    auto copy = std::make_unique<SimpleDram>(config_);
    copy->channelFree_ = channelFree_;
    copy->residual_ = residual_;
    copy->busyCycles_ = busyCycles_;
    return copy;
}

Cycle
SimpleDram::read(Cycle now, uint64_t addr, Bytes bytes, TrafficClass cls)
{
    (void)addr;
    Bytes tx = lineAligned(bytes);
    recordRead(cls, tx);
    return serialize(now, tx) + config_.accessLatency;
}

Cycle
SimpleDram::write(Cycle now, uint64_t addr, Bytes bytes, TrafficClass cls)
{
    (void)addr;
    Bytes tx = lineAligned(bytes);
    recordWrite(cls, tx);
    // Writes are posted: they occupy the channel but the engine does not
    // wait for the array update.
    return serialize(now, tx);
}

BankedDram::BankedDram(DramConfig config, BankTiming timing)
    : DramModel(config), timing_(timing)
{
    GROW_ASSERT(timing_.banks > 0, "need at least one bank");
    bankFree_.assign(timing_.banks, 0);
    openRow_.assign(timing_.banks, ~0ULL);
}

Cycle
BankedDram::access(Cycle now, uint64_t addr, Bytes bytes)
{
    // Line-interleaved bank mapping.
    const Bytes line = config_.lineBytes;
    const double busCyclesPerLine =
        static_cast<double>(line) / config_.bytesPerCycle();
    uint64_t firstLine = addr / line;
    uint64_t numLines = ceilDiv(bytes, line);
    Cycle done = now;
    double busCarry = 0.0;
    for (uint64_t l = 0; l < numLines; ++l) {
        uint64_t lineAddr = firstLine + l;
        uint32_t bank = static_cast<uint32_t>(lineAddr % timing_.banks);
        uint64_t row = (lineAddr / timing_.banks) /
                       std::max<uint64_t>(1, timing_.rowBytes / line);
        Cycle ready = std::max(now, bankFree_[bank]);
        Cycle lat;
        ++rowAccesses_;
        if (openRow_[bank] == row) {
            lat = timing_.tCas;
            ++rowHits_;
        } else {
            lat = timing_.tRp + timing_.tRcd + timing_.tCas;
            openRow_[bank] = row;
        }
        Cycle dataReady = ready + lat;
        // Shared bus serialization.
        double busCycles = busCyclesPerLine + busCarry;
        Cycle busWhole = std::max<Cycle>(1, static_cast<Cycle>(busCycles));
        busCarry = busCycles - static_cast<double>(busWhole);
        if (busCarry < 0)
            busCarry = 0;
        Cycle busStart = std::max(dataReady, busFree_);
        busFree_ = busStart + busWhole;
        busyCycles_ += busWhole;
        bankFree_[bank] = busFree_;
        done = std::max(done, busFree_);
    }
    return done;
}

Cycle
BankedDram::read(Cycle now, uint64_t addr, Bytes bytes, TrafficClass cls)
{
    Bytes tx = lineAligned(bytes);
    recordRead(cls, tx);
    return access(now, addr, tx) + config_.accessLatency;
}

Cycle
BankedDram::write(Cycle now, uint64_t addr, Bytes bytes, TrafficClass cls)
{
    Bytes tx = lineAligned(bytes);
    recordWrite(cls, tx);
    return access(now, addr, tx);
}

std::unique_ptr<DramModel>
BankedDram::cloneTimingState() const
{
    auto copy = std::make_unique<BankedDram>(config_, timing_);
    copy->bankFree_ = bankFree_;
    copy->openRow_ = openRow_;
    copy->busFree_ = busFree_;
    copy->busyCycles_ = busyCycles_;
    copy->rowHits_ = rowHits_;
    copy->rowAccesses_ = rowAccesses_;
    return copy;
}

double
BankedDram::rowHitRate() const
{
    return rowAccesses_ == 0
               ? 0.0
               : static_cast<double>(rowHits_) /
                     static_cast<double>(rowAccesses_);
}

std::unique_ptr<DramModel>
makeDram(const std::string &kind, DramConfig config)
{
    std::string k = toLower(kind);
    if (k == "simple")
        return std::make_unique<SimpleDram>(config);
    if (k == "banked")
        return std::make_unique<BankedDram>(config, BankTiming{});
    fatal("unknown DRAM model: " + kind);
}

} // namespace grow::mem
