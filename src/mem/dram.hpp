/**
 * @file
 * Off-chip memory models.
 *
 * Two fidelity levels are provided behind one interface:
 *
 *  - SimpleDram: a bandwidth-serialized channel with a fixed access
 *    latency and 64 B line granularity. This matches the abstraction
 *    the paper's evaluation uses ("same ... off-chip memory bandwidth",
 *    Table III: 128 GB/sec) and is the default for all benches.
 *
 *  - BankedDram: a Ramulator-flavoured bank/row-buffer model (row hits
 *    vs row conflicts, per-bank timing, shared data bus) for fidelity
 *    studies; the qualitative results are insensitive to the choice,
 *    which tests/mem/dram_test.cpp demonstrates.
 *
 * All transfers round up to whole lines; the caller separately tracks
 * how many of those bytes were effectual (Fig. 6's metric).
 */
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mem/traffic.hpp"
#include "sim/types.hpp"

namespace grow::mem {

/** Common DRAM configuration. */
struct DramConfig
{
    /** Peak bandwidth in GB/s (Table III default: 128). */
    double bandwidthGBps = 128.0;
    /** Accelerator clock in GHz (Sec. VI: 1 GHz). */
    double clockGHz = 1.0;
    /** Idle access latency in accelerator cycles. */
    Cycle accessLatency = 100;
    /** Minimum access granularity (Sec. IV-B: 64 bytes). */
    Bytes lineBytes = kDramLineBytes;

    /** Peak transfer rate in bytes per accelerator cycle. */
    double bytesPerCycle() const { return bandwidthGBps / clockGHz; }
};

/** Per-class transfer accounting. */
struct DramTraffic
{
    std::array<Bytes, kNumTrafficClasses> readBytes{};
    std::array<Bytes, kNumTrafficClasses> writeBytes{};

    Bytes totalRead() const;
    Bytes totalWrite() const;
    Bytes total() const { return totalRead() + totalWrite(); }
};

/**
 * Abstract DRAM device shared by all engines (and all PEs of a
 * multi-PE configuration).
 */
class DramModel
{
  public:
    explicit DramModel(DramConfig config) : config_(config) {}
    virtual ~DramModel() = default;

    const DramConfig &config() const { return config_; }

    /**
     * Issue a read of @p bytes at @p addr at time @p now.
     * @return cycle at which the data is available on-chip.
     */
    virtual Cycle read(Cycle now, uint64_t addr, Bytes bytes,
                       TrafficClass cls) = 0;

    /**
     * Issue a write of @p bytes at @p addr at time @p now.
     * @return cycle at which the write has drained.
     */
    virtual Cycle write(Cycle now, uint64_t addr, Bytes bytes,
                        TrafficClass cls) = 0;

    const DramTraffic &traffic() const { return traffic_; }

    /**
     * Independent copy of this device carrying the full timing state
     * (channel/bank occupancy, fractional-cycle residuals) but fresh
     * traffic accounting. The epoch arbiter (src/accel/dram_arbiter)
     * snapshots the canonical device into per-lane replicas with this:
     * a replica answers one lane's requests exactly as the canonical
     * device would have at the snapshot point, and is then discarded.
     */
    virtual std::unique_ptr<DramModel> cloneTimingState() const = 0;

    /** Cycles the channel spent transferring data. */
    Cycle busyCycles() const { return busyCycles_; }

    /** Reset all accounting (not the timing state). */
    void clearTraffic() { traffic_ = DramTraffic{}; }

  protected:
    /** Round a request to line granularity. */
    Bytes lineAligned(Bytes bytes) const;

    void
    recordRead(TrafficClass cls, Bytes bytes)
    {
        traffic_.readBytes[static_cast<size_t>(cls)] += bytes;
    }

    void
    recordWrite(TrafficClass cls, Bytes bytes)
    {
        traffic_.writeBytes[static_cast<size_t>(cls)] += bytes;
    }

    DramConfig config_;
    DramTraffic traffic_;
    Cycle busyCycles_ = 0;
};

/**
 * Bandwidth-serialized single-channel model with fixed latency.
 */
class SimpleDram : public DramModel
{
  public:
    explicit SimpleDram(DramConfig config);

    Cycle read(Cycle now, uint64_t addr, Bytes bytes,
               TrafficClass cls) override;
    Cycle write(Cycle now, uint64_t addr, Bytes bytes,
                TrafficClass cls) override;
    std::unique_ptr<DramModel> cloneTimingState() const override;

  private:
    /**
     * Serialize @p bytes on the channel starting no earlier than now.
     * Returns the completion cycle (>= 1 cycle after issue); channel
     * occupancy accounting stays exact via the fractional residual, so
     * busyCycles() converges to totalBytes / bytesPerCycle even for
     * streams of sub-cycle transfers.
     */
    Cycle serialize(Cycle now, Bytes line_bytes);

    Cycle channelFree_ = 0;
    /** Fractional-cycle accumulator (in [0,1)) so bandwidth is exact. */
    double residual_ = 0.0;
};

/** Bank/row-buffer timing parameters (in accelerator cycles @1 GHz). */
struct BankTiming
{
    Cycle tCas = 14;       ///< column access (row already open)
    Cycle tRcd = 14;       ///< activate-to-access
    Cycle tRp = 14;        ///< precharge
    uint32_t banks = 16;
    Bytes rowBytes = 2048; ///< row-buffer size
};

/**
 * Banked DRAM with open-row policy and a shared data bus.
 */
class BankedDram : public DramModel
{
  public:
    BankedDram(DramConfig config, BankTiming timing);

    Cycle read(Cycle now, uint64_t addr, Bytes bytes,
               TrafficClass cls) override;
    Cycle write(Cycle now, uint64_t addr, Bytes bytes,
                TrafficClass cls) override;
    std::unique_ptr<DramModel> cloneTimingState() const override;

    /** Fraction of line accesses that hit an open row. */
    double rowHitRate() const;

  private:
    Cycle access(Cycle now, uint64_t addr, Bytes bytes);

    BankTiming timing_;
    std::vector<Cycle> bankFree_;
    std::vector<uint64_t> openRow_;
    Cycle busFree_ = 0;
    uint64_t rowHits_ = 0;
    uint64_t rowAccesses_ = 0;
};

/** Factory: "simple" or "banked". */
std::unique_ptr<DramModel> makeDram(const std::string &kind,
                                    DramConfig config);

} // namespace grow::mem
