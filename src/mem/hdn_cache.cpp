#include "mem/hdn_cache.hpp"

#include "util/logging.hpp"

namespace grow::mem {

HdnCache::HdnCache(HdnCacheConfig config, uint32_t universe)
    : config_(config), member_(universe, 0),
      dataArray_("hdnCache", config.capacityBytes),
      camArray_("hdnIdList",
                static_cast<Bytes>(config.camEntries) * kHdnIdBytes)
{
}

uint32_t
HdnCache::loadCluster(const std::vector<NodeId> &ids)
{
    ++epoch_;
    GROW_ASSERT(epoch_ != 0, "epoch counter wrapped");
    const uint32_t limit = config_.maxResidentRows();
    uint32_t pinned = 0;
    for (NodeId id : ids) {
        if (pinned >= limit)
            break;
        GROW_ASSERT(id < member_.size(), "HDN id out of universe");
        if (member_[id] == epoch_)
            continue;
        member_[id] = epoch_;
        ++pinned;
        dataArray_.write(config_.rowBytes);
        camArray_.write(kHdnIdBytes);
    }
    residentRows_ = pinned;
    rowsLoaded_ += pinned;
    return pinned;
}

double
HdnCache::hitRate() const
{
    uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0
                      : static_cast<double>(hits_) /
                            static_cast<double>(total);
}

void
HdnCache::clearStats()
{
    hits_ = misses_ = rowsLoaded_ = 0;
    dataArray_.clearStats();
    camArray_.clearStats();
}

} // namespace grow::mem
