/**
 * @file
 * High-degree-node cache + HDN ID list CAM (I-BUF_dense of Fig. 8).
 *
 * The HDN cache is a scratchpad, not a demand cache: at the start of a
 * cluster the control unit pins the RHS rows of that cluster's top-N
 * high-degree nodes and they stay resident until the next cluster
 * (Sec. VIII discusses why pinning beats LRU for this workload). The
 * companion HDN ID list is a fully associative CAM sized at 4096
 * entries x 3 B = 12 KB (Sec. V-C), supporting one lookup per cycle.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "mem/sram.hpp"
#include "sim/types.hpp"
#include "util/logging.hpp"

namespace grow::mem {

/** Configuration of the paired HDN ID list + HDN cache. */
struct HdnCacheConfig
{
    /** HDN cache data capacity (Table III: 512 KB). */
    Bytes capacityBytes = 512 * 1024;
    /** CAM entries in the HDN ID list (Sec. V-C: 4096). */
    uint32_t camEntries = 4096;
    /** Bytes of one pinned RHS row (= feature length x 8 B). */
    Bytes rowBytes = 128;

    /** Rows that can be resident simultaneously. */
    uint32_t
    maxResidentRows() const
    {
        Bytes per = rowBytes ? rowBytes : 1;
        uint64_t rows = capacityBytes / per;
        return static_cast<uint32_t>(
            rows < camEntries ? rows : camEntries);
    }
};

/**
 * Pinned-content scratchpad keyed by node ID.
 */
class HdnCache
{
  public:
    HdnCache(HdnCacheConfig config, uint32_t universe);

    const HdnCacheConfig &config() const { return config_; }

    /**
     * Replace the pinned set with (a prefix of) @p ids: ids beyond the
     * capacity/CAM limit are dropped, mirroring the hardware's static
     * sizing. Returns the number of rows actually pinned.
     */
    uint32_t loadCluster(const std::vector<NodeId> &ids);

    /** CAM probe: is @p id pinned? Updates hit/miss counters. Inline:
     *  one probe per LHS non-zero -- the single hottest call of the
     *  whole simulator (flat epoch-stamped membership array, no probe
     *  loop, no hashing). */
    bool
    lookup(NodeId id)
    {
        GROW_ASSERT(id < member_.size(), "HDN id out of universe");
        camArray_.read(kHdnIdBytes);
        const bool hit = member_[id] == epoch_ && residentRows_ > 0;
        if (hit) {
            ++hits_;
            dataArray_.read(config_.rowBytes);
        } else {
            ++misses_;
        }
        return hit;
    }

    /** Non-counting membership test (for assertions/tests). */
    bool
    resident(NodeId id) const
    {
        GROW_ASSERT(id < member_.size(), "HDN id out of universe");
        return member_[id] == epoch_ && residentRows_ > 0;
    }

    uint32_t residentRows() const { return residentRows_; }

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }
    uint64_t lookups() const { return hits_ + misses_; }
    double hitRate() const;

    /** Cumulative rows pinned across all loadCluster calls. */
    uint64_t rowsLoaded() const { return rowsLoaded_; }

    /** Underlying SRAM access counters (for the energy model). */
    SramBuffer &dataArray() { return dataArray_; }
    SramBuffer &camArray() { return camArray_; }

    void clearStats();

  private:
    HdnCacheConfig config_;
    /** Epoch-stamped membership: member_[id] == epoch_ <=> pinned. */
    std::vector<uint32_t> member_;
    uint32_t epoch_ = 0;
    uint32_t residentRows_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t rowsLoaded_ = 0;
    SramBuffer dataArray_;
    SramBuffer camArray_;
};

} // namespace grow::mem
