#include "mem/lru_cache.hpp"

#include "util/logging.hpp"

namespace grow::mem {

LruRowCache::LruRowCache(Bytes capacity_bytes, Bytes row_bytes)
{
    GROW_ASSERT(row_bytes > 0, "row size must be positive");
    uint64_t rows = capacity_bytes / row_bytes;
    maxRows_ = static_cast<uint32_t>(rows == 0 ? 1 : rows);
}

bool
LruRowCache::lookup(NodeId id)
{
    auto it = map_.find(id);
    if (it == map_.end()) {
        ++misses_;
        return false;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
}

void
LruRowCache::insert(NodeId id)
{
    if (map_.count(id))
        return;
    while (map_.size() >= maxRows_) {
        if (pinnedRows_ >= maxRows_)
            return; // fully pinned; nothing to evict
        evictOne();
    }
    lru_.push_front(Entry{id, false});
    map_[id] = lru_.begin();
}

void
LruRowCache::pin(NodeId id)
{
    auto it = map_.find(id);
    if (it == map_.end()) {
        insert(id);
        it = map_.find(id);
        if (it == map_.end())
            return;
    }
    if (!it->second->pinned) {
        it->second->pinned = true;
        ++pinnedRows_;
    }
}

void
LruRowCache::evictOne()
{
    for (auto rit = lru_.rbegin(); rit != lru_.rend(); ++rit) {
        if (!rit->pinned) {
            map_.erase(rit->id);
            lru_.erase(std::next(rit).base());
            ++evictions_;
            return;
        }
    }
}

double
LruRowCache::hitRate() const
{
    uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0
                      : static_cast<double>(hits_) /
                            static_cast<double>(total);
}

void
LruRowCache::clear()
{
    lru_.clear();
    map_.clear();
    pinnedRows_ = 0;
    hits_ = misses_ = evictions_ = 0;
}

} // namespace grow::mem
