/**
 * @file
 * Byte-budgeted LRU cache keyed by node ID.
 *
 * Models GAMMA's "fiber cache" (Sec. VII-H): a demand-filled cache over
 * RHS matrix rows with least-recently-used replacement -- deliberately
 * *not* aware of the graph's power-law structure, which is exactly the
 * contrast the paper draws against GROW's pinned HDN cache. Also used
 * by the pinned-vs-LRU replacement-policy study (Sec. VIII).
 */
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "sim/types.hpp"

namespace grow::mem {

class LruRowCache
{
  public:
    /**
     * @param capacity_bytes total data capacity
     * @param row_bytes      size of one cached row
     */
    LruRowCache(Bytes capacity_bytes, Bytes row_bytes);

    /**
     * Probe for @p id; on hit, refresh recency. On miss the row is NOT
     * inserted (call insert() once the fill returns).
     */
    bool lookup(NodeId id);

    /** Insert @p id, evicting LRU rows as needed. */
    void insert(NodeId id);

    /** Pin @p id so it is never evicted (hybrid policies). */
    void pin(NodeId id);

    uint32_t residentRows() const
    {
        return static_cast<uint32_t>(map_.size());
    }
    uint32_t maxRows() const { return maxRows_; }

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }
    uint64_t evictions() const { return evictions_; }
    double hitRate() const;

    void clear();

  private:
    struct Entry
    {
        NodeId id;
        bool pinned;
    };

    void evictOne();

    uint32_t maxRows_;
    std::list<Entry> lru_; ///< front = most recent
    std::unordered_map<NodeId, std::list<Entry>::iterator> map_;
    uint32_t pinnedRows_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t evictions_ = 0;
};

} // namespace grow::mem
