#include "mem/sram.hpp"

#include "util/logging.hpp"

namespace grow::mem {

SramBuffer::SramBuffer(std::string name, Bytes capacity)
    : name_(std::move(name)), capacity_(capacity)
{
    GROW_ASSERT(capacity_ > 0, "SRAM capacity must be positive");
}

void
SramBuffer::clearStats()
{
    readAccesses_ = writeAccesses_ = 0;
    bytesRead_ = bytesWritten_ = 0;
}

} // namespace grow::mem
