/**
 * @file
 * On-chip SRAM buffer accounting.
 *
 * The engines access SRAM at full pipeline rate, so these buffers carry
 * no timing state -- they exist to (a) enforce capacity invariants and
 * (b) count accesses for the energy model (Fig. 22's "SRAM (dynamic)"
 * component scales with per-access energy, which itself scales with the
 * buffer's capacity).
 */
#pragma once

#include <cstdint>
#include <string>

#include "sim/types.hpp"

namespace grow::mem {

/** A named on-chip SRAM with capacity and access counters. */
class SramBuffer
{
  public:
    SramBuffer(std::string name, Bytes capacity);

    const std::string &name() const { return name_; }
    Bytes capacity() const { return capacity_; }

    /** Record a read of @p bytes. Inline: this sits on the per-nonzero
     *  CAM/data path of the row engines. */
    void
    read(Bytes bytes)
    {
        readAccesses_ += 1;
        bytesRead_ += bytes;
    }

    /** Record a write of @p bytes. */
    void
    write(Bytes bytes)
    {
        writeAccesses_ += 1;
        bytesWritten_ += bytes;
    }

    uint64_t readAccesses() const { return readAccesses_; }
    uint64_t writeAccesses() const { return writeAccesses_; }
    Bytes bytesRead() const { return bytesRead_; }
    Bytes bytesWritten() const { return bytesWritten_; }
    uint64_t accesses() const { return readAccesses_ + writeAccesses_; }

    void clearStats();

  private:
    std::string name_;
    Bytes capacity_;
    uint64_t readAccesses_ = 0;
    uint64_t writeAccesses_ = 0;
    Bytes bytesRead_ = 0;
    Bytes bytesWritten_ = 0;
};

} // namespace grow::mem
