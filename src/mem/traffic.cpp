#include "mem/traffic.hpp"

namespace grow::mem {

const char *
trafficClassName(TrafficClass cls)
{
    switch (cls) {
      case TrafficClass::SparseStream: return "sparseStream";
      case TrafficClass::DenseRow: return "denseRow";
      case TrafficClass::OutputWrite: return "outputWrite";
      case TrafficClass::HdnPreload: return "hdnPreload";
      case TrafficClass::Metadata: return "metadata";
      case TrafficClass::NumClasses: break;
    }
    return "?";
}

} // namespace grow::mem
