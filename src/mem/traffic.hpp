/**
 * @file
 * DRAM traffic classification.
 *
 * Every byte moved to or from DRAM is attributed to one of these
 * classes so the benches can reproduce the paper's traffic breakdowns
 * (Figs. 18/19) and the effective-bandwidth analysis (Fig. 6).
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace grow::mem {

/** Category of a DRAM transfer. */
enum class TrafficClass : uint8_t {
    SparseStream = 0, ///< compressed LHS matrix (CSR/CSC non-zeros)
    DenseRow,         ///< RHS dense matrix rows (XW or W)
    OutputWrite,      ///< output matrix rows/tiles
    HdnPreload,       ///< HDN ID lists + pinned rows at cluster start
    Metadata,         ///< pointers, tile descriptors, merge metadata
    NumClasses
};

inline constexpr size_t kNumTrafficClasses =
    static_cast<size_t>(TrafficClass::NumClasses);

/** Human-readable class name. */
const char *trafficClassName(TrafficClass cls);

} // namespace grow::mem
