#include "partition/degree_reorder.hpp"

#include <algorithm>
#include <numeric>

namespace grow::partition {

RelabelResult
degreeSortRelabel(const graph::Graph &g)
{
    RelabelResult out;
    out.newToOld.resize(g.numNodes());
    std::iota(out.newToOld.begin(), out.newToOld.end(), 0u);
    std::stable_sort(out.newToOld.begin(), out.newToOld.end(),
                     [&g](NodeId a, NodeId b) {
                         return g.degree(a) > g.degree(b);
                     });
    out.clustering.clusterStart = {0, g.numNodes()};
    return out;
}

} // namespace grow::partition
