/**
 * @file
 * Degree-based vertex reordering (Zhang & Li, FPGA'18 style).
 *
 * Related-work baseline for GROW's preprocessing (Sec. III): reorder
 * vertices by descending degree so that hot rows land close together.
 * Used in the preprocessing ablation benches.
 */
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "partition/relabel.hpp"

namespace grow::partition {

/**
 * Permutation ordering nodes by descending degree (stable tie-break on
 * original ID). Returned as a RelabelResult with a single cluster.
 */
RelabelResult degreeSortRelabel(const graph::Graph &g);

} // namespace grow::partition
