#include "partition/hdn_select.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace grow::partition {

std::vector<std::vector<NodeId>>
selectHdnPerCluster(const graph::Graph &relabeled,
                    const Clustering &clustering, uint32_t top_n)
{
    const uint32_t k = clustering.numClusters();
    GROW_ASSERT(clustering.clusterStart.back() == relabeled.numNodes(),
                "clustering does not cover the graph");
    std::vector<std::vector<NodeId>> lists(k);
    std::vector<std::pair<uint32_t, NodeId>> ranked;
    for (uint32_t c = 0; c < k; ++c) {
        const uint32_t lo = clustering.clusterStart[c];
        const uint32_t hi = clustering.clusterStart[c + 1];
        ranked.clear();
        ranked.reserve(hi - lo);
        for (NodeId v = lo; v < hi; ++v) {
            uint32_t intra = 0;
            for (NodeId nb : relabeled.neighbors(v))
                if (nb >= lo && nb < hi)
                    ++intra;
            ranked.emplace_back(intra, v);
        }
        // Sort by descending intra-degree; tie-break on ID for
        // determinism.
        std::sort(ranked.begin(), ranked.end(),
                  [](const auto &a, const auto &b) {
                      if (a.first != b.first)
                          return a.first > b.first;
                      return a.second < b.second;
                  });
        const size_t n = std::min<size_t>(top_n, ranked.size());
        lists[c].reserve(n);
        for (size_t i = 0; i < n; ++i)
            lists[c].push_back(ranked[i].second);
    }
    return lists;
}

std::vector<NodeId>
selectGlobalHdn(const graph::Graph &g, uint32_t top_n)
{
    std::vector<std::pair<uint32_t, NodeId>> ranked;
    ranked.reserve(g.numNodes());
    for (NodeId v = 0; v < g.numNodes(); ++v)
        ranked.emplace_back(g.degree(v), v);
    std::sort(ranked.begin(), ranked.end(),
              [](const auto &a, const auto &b) {
                  if (a.first != b.first)
                      return a.first > b.first;
                  return a.second < b.second;
              });
    const size_t n = std::min<size_t>(top_n, ranked.size());
    std::vector<NodeId> out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i)
        out.push_back(ranked[i].second);
    return out;
}

} // namespace grow::partition
