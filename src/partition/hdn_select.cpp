#include "partition/hdn_select.hpp"

#include <algorithm>

#include "util/logging.hpp"
#include "util/work_pool.hpp"

namespace grow::partition {

std::vector<std::vector<NodeId>>
selectHdnPerCluster(const graph::Graph &relabeled,
                    const Clustering &clustering, uint32_t top_n)
{
    const uint32_t k = clustering.numClusters();
    GROW_ASSERT(clustering.clusterStart.back() == relabeled.numNodes(),
                "clustering does not cover the graph");
    std::vector<std::vector<NodeId>> lists(k);
    std::vector<std::pair<uint32_t, NodeId>> ranked;
    for (uint32_t c = 0; c < k; ++c) {
        const uint32_t lo = clustering.clusterStart[c];
        const uint32_t hi = clustering.clusterStart[c + 1];
        ranked.clear();
        ranked.reserve(hi - lo);
        for (NodeId v = lo; v < hi; ++v) {
            uint32_t intra = 0;
            for (NodeId nb : relabeled.neighbors(v))
                if (nb >= lo && nb < hi)
                    ++intra;
            ranked.emplace_back(intra, v);
        }
        // Sort by descending intra-degree; tie-break on ID for
        // determinism.
        std::sort(ranked.begin(), ranked.end(),
                  [](const auto &a, const auto &b) {
                      if (a.first != b.first)
                          return a.first > b.first;
                      return a.second < b.second;
                  });
        const size_t n = std::min<size_t>(top_n, ranked.size());
        lists[c].reserve(n);
        for (size_t i = 0; i < n; ++i)
            lists[c].push_back(ranked[i].second);
    }
    return lists;
}

std::vector<std::vector<NodeId>>
selectHdnPerCluster(const graph::CsrView &original,
                    const RelabelResult &relabel, uint32_t top_n,
                    uint32_t threads)
{
    const Clustering &clustering = relabel.clustering;
    const uint32_t k = clustering.numClusters();
    const uint32_t n = original.numNodes();
    GROW_ASSERT(clustering.clusterStart.back() == n &&
                    relabel.newToOld.size() == n,
                "clustering does not cover the graph");

    // Invert the permutation once; disjoint writes, so chunkable.
    std::vector<NodeId> oldToNew(n);
    util::parallelFor(n, threads,
                      [&](uint64_t begin, uint64_t end, uint32_t) {
        for (NodeId v = static_cast<NodeId>(begin); v < end; ++v)
            oldToNew[relabel.newToOld[v]] = v;
    });

    // Each cluster ranks its own nodes and writes only its own list:
    // order-independent, bit-identical for every thread count.
    std::vector<std::vector<NodeId>> lists(k);
    util::parallelFor(k, threads,
                      [&](uint64_t begin, uint64_t end, uint32_t) {
        std::vector<std::pair<uint32_t, NodeId>> ranked;
        for (uint32_t c = static_cast<uint32_t>(begin); c < end; ++c) {
            const uint32_t lo = clustering.clusterStart[c];
            const uint32_t hi = clustering.clusterStart[c + 1];
            ranked.clear();
            ranked.reserve(hi - lo);
            for (NodeId v = lo; v < hi; ++v) {
                uint32_t intra = 0;
                for (NodeId nb : original.neighbors(relabel.newToOld[v])) {
                    NodeId rnb = oldToNew[nb];
                    if (rnb >= lo && rnb < hi)
                        ++intra;
                }
                ranked.emplace_back(intra, v);
            }
            std::sort(ranked.begin(), ranked.end(),
                      [](const auto &a, const auto &b) {
                          if (a.first != b.first)
                              return a.first > b.first;
                          return a.second < b.second;
                      });
            const size_t take = std::min<size_t>(top_n, ranked.size());
            lists[c].reserve(take);
            for (size_t i = 0; i < take; ++i)
                lists[c].push_back(ranked[i].second);
        }
    });
    return lists;
}

std::vector<NodeId>
selectGlobalHdn(const graph::Graph &g, uint32_t top_n)
{
    std::vector<std::pair<uint32_t, NodeId>> ranked;
    ranked.reserve(g.numNodes());
    for (NodeId v = 0; v < g.numNodes(); ++v)
        ranked.emplace_back(g.degree(v), v);
    std::sort(ranked.begin(), ranked.end(),
              [](const auto &a, const auto &b) {
                  if (a.first != b.first)
                      return a.first > b.first;
                  return a.second < b.second;
              });
    const size_t n = std::min<size_t>(top_n, ranked.size());
    std::vector<NodeId> out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i)
        out.push_back(ranked[i].second);
    return out;
}

} // namespace grow::partition
