/**
 * @file
 * High-degree-node (HDN) list generation.
 *
 * GROW's software stack augments the partitioning pass with "a pass that
 * generates the top-N high-degree nodes as a HDN ID list per each
 * cluster" (Sec. V-C). The per-cluster ranking uses *intra-cluster*
 * degree (Fig. 13 explicitly tabulates "Node degree (Intra-cluster)"),
 * because only references from within the active cluster can hit the
 * cache while that cluster is being processed.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "partition/relabel.hpp"

namespace grow::partition {

/**
 * Top-N nodes per cluster by intra-cluster degree, over a graph that
 * has already been relabeled cluster-contiguously.
 *
 * @return one ID list per cluster (IDs in the relabeled space), each
 *         sorted by descending intra-cluster degree.
 */
std::vector<std::vector<NodeId>>
selectHdnPerCluster(const graph::Graph &relabeled,
                    const Clustering &clustering, uint32_t top_n);

/**
 * Same ranking computed from the *original* graph view plus the
 * relabeling, without materializing the relabeled graph: intra-cluster
 * degrees are counted through the permutation, streaming the (possibly
 * mmap-backed, larger-than-RAM) original adjacency once. Clusters are
 * ranked independently and fanned out over @p threads workers in
 * thread-count-independent chunks -- the lists are bit-identical to
 * the materialized overload for every thread count.
 */
std::vector<std::vector<NodeId>>
selectHdnPerCluster(const graph::CsrView &original,
                    const RelabelResult &relabel, uint32_t top_n,
                    uint32_t threads = 1);

/**
 * Global top-N by total degree: the HDN list GROW uses when graph
 * partitioning is disabled (Fig. 17's "GROW (w/o G.P)" configuration).
 */
std::vector<NodeId> selectGlobalHdn(const graph::Graph &g, uint32_t top_n);

} // namespace grow::partition
