#include "partition/metrics.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace grow::partition {

PartitionQuality
evaluatePartition(const graph::CsrView &g, const PartitionResult &parts)
{
    GROW_ASSERT(parts.assignment.size() == g.numNodes(),
                "assignment size mismatch");
    PartitionQuality q;
    uint64_t intraArcs = 0;
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        uint32_t pv = parts.assignment[v];
        // Views built straight from raw edge lists may still carry
        // self loops and duplicate arcs (convertEdgeListFile removes
        // them during conversion; grow::Graph never has them). Neither
        // is a cut *edge*: a self loop cannot cross a part boundary by
        // definition, and a duplicated arc is the same edge counted
        // twice. Rows are sorted (CsrView invariant), so duplicates
        // are adjacent.
        NodeId prev = kInvalidNode;
        for (NodeId nb : g.neighbors(v)) {
            if (nb == v || nb == prev)
                continue;
            prev = nb;
            if (parts.assignment[nb] == pv)
                ++intraArcs;
            else if (v < nb)
                ++q.cutEdges;
        }
    }
    q.intraArcFraction =
        g.numArcs() == 0
            ? 1.0
            : static_cast<double>(intraArcs) /
                  static_cast<double>(g.numArcs());

    std::vector<uint64_t> sizes(parts.numParts, 0);
    for (uint32_t p : parts.assignment)
        sizes[p] += 1;
    uint64_t maxSize = 0;
    for (uint64_t s : sizes) {
        if (s > 0)
            ++q.nonEmptyParts;
        maxSize = std::max(maxSize, s);
    }
    if (q.nonEmptyParts > 0) {
        double avg = static_cast<double>(g.numNodes()) /
                     static_cast<double>(q.nonEmptyParts);
        q.balance = avg > 0 ? static_cast<double>(maxSize) / avg : 0.0;
    }
    return q;
}

} // namespace grow::partition
