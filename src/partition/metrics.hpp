/**
 * @file
 * Partition quality metrics (edge cut, balance, intra-cluster locality).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "partition/multilevel.hpp"

namespace grow::partition {

/** Summary statistics of a partition over a graph. */
struct PartitionQuality
{
    uint64_t cutEdges = 0;        ///< undirected edges crossing parts
    double intraArcFraction = 0;  ///< fraction of arcs staying in-part
    double balance = 0;           ///< max part size / average part size
    uint32_t nonEmptyParts = 0;
};

/** Compute quality metrics of @p parts over @p g. */
PartitionQuality evaluatePartition(const graph::CsrView &g,
                                   const PartitionResult &parts);
inline PartitionQuality
evaluatePartition(const graph::Graph &g, const PartitionResult &parts)
{
    return evaluatePartition(g.view(), parts);
}

} // namespace grow::partition
