#include "partition/multilevel.hpp"

#include <algorithm>
#include <numeric>
#include <span>

#include "util/logging.hpp"
#include "util/random.hpp"
#include "util/work_pool.hpp"

namespace grow::partition {

namespace {

/**
 * Internal weighted graph used across coarsening levels. Node weights
 * count contracted fine nodes; edge weights count contracted fine edges.
 *
 * The level-0 graph *borrows* the caller's CSR arrays (possibly an
 * mmap-backed view of a file bigger than RAM) with implicit all-1
 * weights; contracted levels own their arrays. Accessors hide the
 * distinction.
 */
struct WGraph
{
    uint32_t n = 0;
    /** Borrowed arrays (level 0 only; empty owned arrays select them). */
    std::span<const uint64_t> offExt;
    std::span<const NodeId> adjExt;
    /** Owned arrays (contracted levels). */
    std::vector<uint64_t> offOwn;
    std::vector<NodeId> adjOwn;
    /** Weights; empty vectors mean implicitly all-1 (level 0). */
    std::vector<uint32_t> ewtOwn;
    std::vector<uint32_t> nwtOwn;

    uint64_t totalNodeWeight = 0;

    const uint64_t *off() const
    {
        return offOwn.empty() ? offExt.data() : offOwn.data();
    }
    const NodeId *adj() const
    {
        return adjOwn.empty() ? adjExt.data() : adjOwn.data();
    }
    uint32_t ewt(uint64_t i) const
    {
        return ewtOwn.empty() ? 1u : ewtOwn[i];
    }
    uint32_t nwt(NodeId u) const
    {
        return nwtOwn.empty() ? 1u : nwtOwn[u];
    }
};

WGraph
fromView(const graph::CsrView &g)
{
    WGraph w;
    w.n = g.numNodes();
    w.offExt = g.offsets;
    w.adjExt = g.adjacency;
    w.totalNodeWeight = w.n;
    return w;
}

/** One coarsening level: coarse graph + fine->coarse map. */
struct Level
{
    WGraph graph;
    std::vector<NodeId> fineToCoarse;
};

/**
 * Heavy-edge matching: every unmatched node grabs its unmatched
 * neighbor with the heaviest connecting edge. Inherently sequential
 * (each decision depends on all earlier ones through the rng-shuffled
 * visit order), so it stays serial -- see the determinism contract in
 * the header.
 */
std::vector<NodeId>
heavyEdgeMatching(const WGraph &g, Rng &rng)
{
    std::vector<NodeId> order(g.n);
    std::iota(order.begin(), order.end(), 0u);
    rng.shuffle(order);

    std::vector<NodeId> match(g.n, kInvalidNode);
    for (NodeId u : order) {
        if (match[u] != kInvalidNode)
            continue;
        NodeId best = kInvalidNode;
        uint32_t bestW = 0;
        for (uint64_t i = g.off()[u]; i < g.off()[u + 1]; ++i) {
            NodeId v = g.adj()[i];
            if (v == u || match[v] != kInvalidNode)
                continue;
            if (g.ewt(i) > bestW) {
                bestW = g.ewt(i);
                best = v;
            }
        }
        if (best == kInvalidNode) {
            match[u] = u; // matched with itself
        } else {
            match[u] = best;
            match[best] = u;
        }
    }
    return match;
}

/**
 * Contract matched pairs into a coarse graph.
 *
 * Every coarse row is computed independently from its (at most two)
 * fine members, so the row-building loop is a pure disjoint-write
 * fan-out: parallelized over util::parallelFor's thread-count-
 * independent chunks, it produces the same rows -- and therefore the
 * same coarse graph -- for every thread count.
 */
Level
contract(const WGraph &g, const std::vector<NodeId> &match,
         uint32_t threads)
{
    Level lvl;
    lvl.fineToCoarse.assign(g.n, kInvalidNode);
    uint32_t cn = 0;
    for (NodeId u = 0; u < g.n; ++u) {
        if (lvl.fineToCoarse[u] != kInvalidNode)
            continue;
        NodeId v = match[u];
        lvl.fineToCoarse[u] = cn;
        if (v != u)
            lvl.fineToCoarse[v] = cn;
        ++cn;
    }

    WGraph &c = lvl.graph;
    c.n = cn;
    c.nwtOwn.assign(cn, 0);
    for (NodeId u = 0; u < g.n; ++u)
        c.nwtOwn[lvl.fineToCoarse[u]] += g.nwt(u);
    c.totalNodeWeight = g.totalNodeWeight;

    // Materialize edges per coarse node. Each coarse node is processed
    // exactly once, via its smallest fine member, and writes only its
    // own row -- disjoint writes, safe and deterministic to chunk.
    std::vector<std::vector<std::pair<NodeId, uint32_t>>> rows(cn);
    util::parallelFor(g.n, threads,
                      [&](uint64_t begin, uint64_t end, uint32_t) {
        // Scatter scratch, reused across chunks on the same worker
        // thread. Rows reset their touched entries to zero on exit, so
        // the array stays all-zero between uses.
        static thread_local std::vector<uint32_t> weightTo;
        if (weightTo.size() < cn)
            weightTo.assign(cn, 0);
        std::vector<NodeId> touched;
        for (NodeId u = static_cast<NodeId>(begin); u < end; ++u) {
            NodeId v = match[u];
            if (v < u)
                continue; // row is built by the smaller member
            NodeId cu = lvl.fineToCoarse[u];
            touched.clear();
            auto scan = [&](NodeId fine) {
                for (uint64_t i = g.off()[fine]; i < g.off()[fine + 1];
                     ++i) {
                    NodeId cv = lvl.fineToCoarse[g.adj()[i]];
                    if (cv == cu)
                        continue; // interior edge disappears
                    if (weightTo[cv] == 0)
                        touched.push_back(cv);
                    weightTo[cv] += g.ewt(i);
                }
            };
            scan(u);
            if (v != u)
                scan(v);
            auto &row = rows[cu];
            row.reserve(touched.size());
            for (NodeId cv : touched) {
                row.emplace_back(cv, weightTo[cv]);
                weightTo[cv] = 0;
            }
            std::sort(row.begin(), row.end());
        }
    });

    std::vector<uint64_t> counts(cn + 1, 0);
    for (NodeId cu = 0; cu < cn; ++cu)
        counts[cu + 1] = counts[cu] + rows[cu].size();
    c.offOwn = std::move(counts);
    c.adjOwn.resize(c.offOwn[cn]);
    c.ewtOwn.resize(c.offOwn[cn]);
    util::parallelFor(cn, threads,
                      [&](uint64_t begin, uint64_t end, uint32_t) {
        for (NodeId cu = static_cast<NodeId>(begin); cu < end; ++cu) {
            uint64_t out = c.offOwn[cu];
            for (const auto &[cv, w] : rows[cu]) {
                c.adjOwn[out] = cv;
                c.ewtOwn[out] = w;
                ++out;
            }
        }
    });
    return lvl;
}

/**
 * Balanced greedy-attachment initial partition of the coarsest graph:
 * nodes are visited in descending weight order and each joins the
 * adjacent part with the strongest (edge-weight) attachment among the
 * parts still under the balance bound; unattached nodes seed the
 * currently lightest part. Heavy nodes therefore spread out first and
 * act as seeds, and community members follow their hubs.
 */
std::vector<uint32_t>
initialPartition(const WGraph &g, uint32_t k, Rng &rng)
{
    std::vector<uint32_t> part(g.n, kInvalidNode);
    if (k == 1) {
        std::fill(part.begin(), part.end(), 0u);
        return part;
    }
    const double maxW = 1.05 * static_cast<double>(g.totalNodeWeight) /
                        static_cast<double>(k);

    std::vector<NodeId> order(g.n);
    std::iota(order.begin(), order.end(), 0u);
    rng.shuffle(order); // random tie-break below the weight sort
    std::stable_sort(order.begin(), order.end(),
                     [&g](NodeId a, NodeId b) {
                         return g.nwt(a) > g.nwt(b);
                     });

    std::vector<double> partW(k, 0.0);
    std::vector<uint64_t> conn(k, 0);
    std::vector<uint32_t> touched;
    for (NodeId u : order) {
        touched.clear();
        for (uint64_t i = g.off()[u]; i < g.off()[u + 1]; ++i) {
            uint32_t p = part[g.adj()[i]];
            if (p == kInvalidNode)
                continue;
            if (conn[p] == 0)
                touched.push_back(p);
            conn[p] += g.ewt(i);
        }
        uint32_t best = kInvalidNode;
        uint64_t bestConn = 0;
        for (uint32_t p : touched) {
            if (conn[p] > bestConn && partW[p] + g.nwt(u) <= maxW) {
                best = p;
                bestConn = conn[p];
            }
        }
        if (best == kInvalidNode) {
            // Seed (or overflow into) the lightest part.
            best = 0;
            for (uint32_t p = 1; p < k; ++p)
                if (partW[p] < partW[best])
                    best = p;
        }
        part[u] = best;
        partW[best] += g.nwt(u);
        for (uint32_t p : touched)
            conn[p] = 0;
    }
    return part;
}

/**
 * Boundary FM refinement: greedily move boundary nodes to the adjacent
 * part with maximal connectivity gain subject to the balance bound.
 */
void
refine(const WGraph &g, std::vector<uint32_t> &part, uint32_t k,
       double imbalance, uint32_t passes, Rng &rng)
{
    if (k <= 1)
        return;
    std::vector<uint64_t> partW(k, 0);
    for (NodeId u = 0; u < g.n; ++u)
        partW[part[u]] += g.nwt(u);
    const double maxW = imbalance *
        static_cast<double>(g.totalNodeWeight) / static_cast<double>(k);

    std::vector<NodeId> order(g.n);
    std::iota(order.begin(), order.end(), 0u);

    std::vector<uint64_t> conn(k, 0);
    std::vector<uint32_t> touchedParts;

    for (uint32_t pass = 0; pass < passes; ++pass) {
        rng.shuffle(order);
        uint64_t moves = 0;
        for (NodeId u : order) {
            uint32_t own = part[u];
            const bool overweight = partW[own] > maxW;
            touchedParts.clear();
            bool boundary = false;
            for (uint64_t i = g.off()[u]; i < g.off()[u + 1]; ++i) {
                uint32_t p = part[g.adj()[i]];
                if (p != own)
                    boundary = true;
                if (conn[p] == 0)
                    touchedParts.push_back(p);
                conn[p] += g.ewt(i);
            }
            if (boundary) {
                uint32_t best = own;
                // An overweight part sheds boundary nodes even at a
                // connectivity loss (explicit rebalancing).
                uint64_t bestConn = overweight ? 0 : conn[own];
                for (uint32_t p : touchedParts) {
                    if (p == own)
                        continue;
                    bool better = overweight ? conn[p] >= bestConn
                                             : conn[p] > bestConn;
                    if (better && partW[p] + g.nwt(u) <= maxW &&
                        partW[own] > g.nwt(u)) {
                        best = p;
                        bestConn = conn[p];
                    }
                }
                if (best != own) {
                    partW[own] -= g.nwt(u);
                    partW[best] += g.nwt(u);
                    part[u] = best;
                    ++moves;
                }
            }
            for (uint32_t p : touchedParts)
                conn[p] = 0;
        }
        if (moves == 0)
            break;
    }
}

} // namespace

MultilevelPartitioner::MultilevelPartitioner(PartitionConfig config)
    : config_(config)
{
    GROW_ASSERT(config_.numParts >= 1, "need at least one part");
}

PartitionResult
MultilevelPartitioner::partition(const graph::Graph &g) const
{
    return partition(g.view());
}

PartitionResult
MultilevelPartitioner::partition(const graph::CsrView &g) const
{
    PartitionResult result;
    const uint32_t k = std::min(config_.numParts,
                                std::max(1u, g.numNodes()));
    result.numParts = k;
    if (k == 1 || g.numNodes() == 0) {
        result.assignment.assign(g.numNodes(), 0);
        return result;
    }

    Rng rng(config_.seed);

    // Coarsening.
    std::vector<Level> levels;
    WGraph current = fromView(g);
    const uint32_t targetNodes =
        std::max(2u * k, k * config_.coarsenNodesPerPart);
    while (current.n > targetNodes &&
           levels.size() < config_.maxLevels) {
        auto match = heavyEdgeMatching(current, rng);
        Level lvl = contract(current, match, config_.threads);
        if (lvl.graph.n >= current.n * 95 / 100)
            break; // matching stalled (e.g. star graphs)
        WGraph coarse = lvl.graph;
        levels.push_back(std::move(lvl));
        current = std::move(coarse);
    }

    // Initial partition at the coarsest level.
    std::vector<uint32_t> part = initialPartition(current, k, rng);
    refine(current, part, k, config_.imbalance, config_.refinePasses, rng);

    // Uncoarsen with refinement.
    for (auto it = levels.rbegin(); it != levels.rend(); ++it) {
        const auto &map = it->fineToCoarse;
        std::vector<uint32_t> finePart(map.size());
        for (size_t u = 0; u < map.size(); ++u)
            finePart[u] = part[map[u]];
        part = std::move(finePart);
        // Rebuild the fine-level weighted view to refine on.
        const WGraph *fineGraph = nullptr;
        WGraph base;
        if (it + 1 != levels.rend()) {
            fineGraph = &(it + 1)->graph;
        } else {
            base = fromView(g);
            fineGraph = &base;
        }
        refine(*fineGraph, part, k, config_.imbalance,
               config_.refinePasses, rng);
    }

    result.assignment = std::move(part);
    return result;
}

PartitionResult
contiguousPartition(uint32_t nodes, uint32_t parts)
{
    GROW_ASSERT(parts >= 1, "need at least one part");
    PartitionResult r;
    r.numParts = parts;
    r.assignment.resize(nodes);
    uint64_t per = (nodes + parts - 1) / std::max(1u, parts);
    for (uint32_t i = 0; i < nodes; ++i)
        r.assignment[i] = static_cast<uint32_t>(
            std::min<uint64_t>(i / std::max<uint64_t>(per, 1), parts - 1));
    return r;
}

PartitionResult
randomPartition(uint32_t nodes, uint32_t parts, uint64_t seed)
{
    GROW_ASSERT(parts >= 1, "need at least one part");
    PartitionResult r;
    r.numParts = parts;
    r.assignment.resize(nodes);
    Rng rng(seed);
    for (uint32_t i = 0; i < nodes; ++i)
        r.assignment[i] = static_cast<uint32_t>(rng.bounded(parts));
    return r;
}

} // namespace grow::partition
