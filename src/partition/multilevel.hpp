/**
 * @file
 * Multilevel k-way graph partitioner.
 *
 * GROW preprocesses the adjacency matrix with a METIS-style graph
 * partitioning pass (Sec. V-C) so that intra-cluster nodes share far
 * more edges than inter-cluster nodes. METIS itself is not vendored;
 * this is an independent implementation of the same multilevel scheme
 * (Karypis & Kumar, SIAM J. Sci. Comput. 1998):
 *
 *  1. Coarsening via heavy-edge matching (HEM) until the graph is small.
 *  2. Initial k-way partition via greedy graph growing (BFS regions).
 *  3. Uncoarsening with boundary Fiduccia-Mattheyses refinement under a
 *     balance constraint.
 *
 * The partitioner is deterministic for a fixed seed AND a fixed thread
 * count is *not* required: only the order-independent disjoint-write
 * stage (pair contraction) is parallelized, in thread-count-independent
 * chunks (util::parallelFor), while the rng-sequential stages (matching,
 * initial partition, refinement) stay serial. threads=8 therefore
 * produces bit-identical assignments to threads=1.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace grow::partition {

/** Result of a k-way partition. */
struct PartitionResult
{
    uint32_t numParts = 0;
    /** Node -> part assignment. */
    std::vector<uint32_t> assignment;
};

/** Tuning parameters for the multilevel scheme. */
struct PartitionConfig
{
    uint32_t numParts = 2;
    /** Allowed max part weight as a multiple of the average. */
    double imbalance = 1.10;
    uint64_t seed = 1;
    /** Stop coarsening once nodes <= numParts * this. */
    uint32_t coarsenNodesPerPart = 16;
    /** FM passes per uncoarsening level. */
    uint32_t refinePasses = 4;
    /** Hard cap on coarsening levels. */
    uint32_t maxLevels = 48;
    /**
     * Worker threads for the contraction stage (1 = serial). Never part
     * of any cache key: the assignment is bit-identical for every
     * value.
     */
    uint32_t threads = 1;
};

/**
 * Multilevel k-way partitioner.
 */
class MultilevelPartitioner
{
  public:
    explicit MultilevelPartitioner(PartitionConfig config);

    /** Partition @p g into config.numParts parts. */
    PartitionResult partition(const graph::Graph &g) const;

    /**
     * Partition any CSR view (heap Graph or mmap-backed file graph --
     * the level-0 adjacency is streamed from the view, never copied,
     * so graphs larger than RAM coarsen straight off the page cache).
     */
    PartitionResult partition(const graph::CsrView &g) const;

  private:
    PartitionConfig config_;
};

/**
 * Baseline partitioner assigning equally sized contiguous ID ranges
 * (no structure awareness); used as an ablation reference.
 */
PartitionResult contiguousPartition(uint32_t nodes, uint32_t parts);

/** Random balanced partition (ablation reference). */
PartitionResult randomPartition(uint32_t nodes, uint32_t parts,
                                uint64_t seed);

} // namespace grow::partition
