#include "partition/relabel.hpp"

#include <algorithm>

#include "util/bitutil.hpp"
#include "util/logging.hpp"

namespace grow::partition {

uint32_t
Clustering::clusterOf(NodeId v) const
{
    auto it = std::upper_bound(clusterStart.begin(), clusterStart.end(), v);
    GROW_ASSERT(it != clusterStart.begin() && it != clusterStart.end(),
                "node outside clustering range");
    return static_cast<uint32_t>(it - clusterStart.begin() - 1);
}

RelabelResult
relabelByPartition(uint32_t nodes, const PartitionResult &parts)
{
    GROW_ASSERT(parts.assignment.size() == nodes,
                "assignment size mismatch");
    RelabelResult out;

    // Drop empty parts so clusters are dense.
    std::vector<uint32_t> sizes(parts.numParts, 0);
    for (uint32_t p : parts.assignment)
        sizes[p] += 1;
    std::vector<uint32_t> denseId(parts.numParts, 0);
    uint32_t k = 0;
    for (uint32_t p = 0; p < parts.numParts; ++p)
        if (sizes[p] > 0)
            denseId[p] = k++;

    out.clustering.clusterStart.assign(k + 1, 0);
    for (uint32_t p = 0; p < parts.numParts; ++p)
        if (sizes[p] > 0)
            out.clustering.clusterStart[denseId[p] + 1] = sizes[p];
    for (uint32_t c = 0; c < k; ++c)
        out.clustering.clusterStart[c + 1] +=
            out.clustering.clusterStart[c];

    out.newToOld.resize(nodes);
    std::vector<uint32_t> cursor(out.clustering.clusterStart.begin(),
                                 out.clustering.clusterStart.end() - 1);
    for (NodeId v = 0; v < nodes; ++v) {
        uint32_t c = denseId[parts.assignment[v]];
        out.newToOld[cursor[c]++] = v;
    }
    return out;
}

RelabelResult
identityRelabel(uint32_t nodes)
{
    RelabelResult out;
    out.newToOld.resize(nodes);
    for (NodeId v = 0; v < nodes; ++v)
        out.newToOld[v] = v;
    out.clustering.clusterStart = {0, nodes};
    return out;
}

Clustering
splitOversizedClusters(const Clustering &c, uint32_t max_nodes)
{
    GROW_ASSERT(max_nodes > 0, "cluster bound must be positive");
    Clustering out;
    out.clusterStart.reserve(c.clusterStart.size());
    out.clusterStart.push_back(0);
    for (uint32_t i = 0; i < c.numClusters(); ++i) {
        const uint32_t start = c.clusterStart[i];
        const uint32_t size = c.clusterSize(i);
        const uint32_t chunks = std::max<uint32_t>(
            1, static_cast<uint32_t>(ceilDiv(size, max_nodes)));
        // Even split: the first (size % chunks) chunks get one extra.
        const uint32_t base = size / chunks;
        const uint32_t extra = size % chunks;
        uint32_t offset = start;
        for (uint32_t j = 0; j < chunks; ++j) {
            offset += base + (j < extra ? 1 : 0);
            out.clusterStart.push_back(offset);
        }
        GROW_ASSERT(offset == start + size, "cluster split accounting");
    }
    return out;
}

} // namespace grow::partition
