/**
 * @file
 * Cluster-contiguous node relabeling.
 *
 * Graph partitioning by itself "only changes the way a particular node
 * is assigned with its node ID" (Sec. V-C, Fig. 13): after partitioning,
 * GROW renumbers nodes so that each cluster occupies a contiguous ID
 * range, which groups the cluster's non-zeros into diagonal blocks of
 * the adjacency matrix (Fig. 14).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "partition/multilevel.hpp"

namespace grow::partition {

/** Cluster layout over a relabeled node space. */
struct Clustering
{
    /** clusterStart[c] .. clusterStart[c+1]-1 are cluster c's node IDs. */
    std::vector<uint32_t> clusterStart;

    uint32_t numClusters() const
    {
        return clusterStart.empty()
                   ? 0
                   : static_cast<uint32_t>(clusterStart.size() - 1);
    }

    /** Cluster of (relabeled) node @p v (linear scan-free lookup). */
    uint32_t clusterOf(NodeId v) const;

    /** Number of nodes in cluster @p c. */
    uint32_t clusterSize(uint32_t c) const
    {
        return clusterStart[c + 1] - clusterStart[c];
    }
};

/** Relabeling outcome: permutation + resulting cluster layout. */
struct RelabelResult
{
    /** new_to_old[i] = original ID of relabeled node i. */
    std::vector<NodeId> newToOld;
    Clustering clustering;
};

/**
 * Build the cluster-contiguous relabeling for @p parts. Within a
 * cluster, nodes keep their relative original order.
 */
RelabelResult relabelByPartition(uint32_t nodes,
                                 const PartitionResult &parts);

/** Trivial clustering: all nodes in one cluster, identity labels. */
RelabelResult identityRelabel(uint32_t nodes);

/**
 * Enforce a hard per-cluster node bound: any cluster of @p c larger
 * than @p max_nodes is split into evenly sized contiguous chunks (at
 * most @p max_nodes each, sizes differing by at most one). The node
 * relabeling is unchanged -- only cluster boundaries are added -- so
 * this composes with any RelabelResult. The partitioner's balance
 * constraint is soft (overweight parts can overflow); GROW's
 * cache-sizing argument (Sec. V-C) needs the bound to be hard, since a
 * cluster that overshoots the HDN cache defeats the preprocessing.
 */
Clustering splitOversizedClusters(const Clustering &c, uint32_t max_nodes);

} // namespace grow::partition
