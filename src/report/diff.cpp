#include "report/diff.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <sstream>

#include "util/logging.hpp"

namespace grow::report {

namespace {

/** Append "|key=value" when the record carries a string @p field. */
void
appendStringDim(std::string &key, const JsonValue &record,
                const char *field)
{
    const JsonValue *v = record.find(field);
    if (v != nullptr && v->isString() && !v->str.empty())
        key += std::string("|") + field + "=" + v->str;
}

/** The slice of one record the join compares. */
struct RecordView
{
    bool hasValue = false;
    double value = 0.0;
    std::string text;
    std::string unit;
    std::string metric;
};

std::map<std::string, RecordView>
indexRecords(const JsonValue &root)
{
    std::map<std::string, RecordView> index;
    const JsonValue *records = root.find("records");
    GROW_ASSERT(records != nullptr && records->isArray(),
                "diffReports needs validated report JSON");
    for (const JsonValue &r : records->arr) {
        RecordView view;
        if (const JsonValue *v = r.find("value");
            v != nullptr && v->isNumber()) {
            view.hasValue = true;
            view.value = v->number;
        }
        if (const JsonValue *t = r.find("text");
            t != nullptr && t->isString())
            view.text = t->str;
        if (const JsonValue *u = r.find("unit");
            u != nullptr && u->isString())
            view.unit = u->str;
        if (const JsonValue *m = r.find("metric");
            m != nullptr && m->isString())
            view.metric = m->str;
        // Last write wins on duplicate keys; the schema contract
        // (record.hpp) says rows must be uniquely identified, and the
        // report tests enforce it for the shipped benches.
        index[recordJoinKey(r)] = std::move(view);
    }
    return index;
}

std::string
fmtValue(double v)
{
    return jsonNumber(v);
}

std::string
fmtPercentDelta(double rel)
{
    if (std::isinf(rel))
        return rel > 0 ? "+inf%" : "-inf%";
    std::ostringstream oss;
    oss.setf(std::ios::fixed);
    oss.precision(3);
    oss << (rel >= 0 ? "+" : "") << rel * 100.0 << "%";
    return oss.str();
}

} // namespace

std::string
recordJoinKey(const JsonValue &record)
{
    std::string key;
    if (const JsonValue *b = record.find("bench");
        b != nullptr && b->isString())
        key += b->str;
    key += "|";
    if (const JsonValue *t = record.find("table");
        t != nullptr && t->isString())
        key += t->str;
    appendStringDim(key, record, "dataset");
    appendStringDim(key, record, "engine");
    appendStringDim(key, record, "model");
    if (const JsonValue *d = record.find("depth");
        d != nullptr && d->isNumber())
        key += "|depth=" + jsonNumber(d->number);
    if (const JsonValue *dims = record.find("dims");
        dims != nullptr && dims->isObject()) {
        for (const auto &[k, v] : dims->obj)
            if (v.isString())
                key += "|" + k + "=" + v.str;
    }
    key += "|";
    if (const JsonValue *m = record.find("metric");
        m != nullptr && m->isString())
        key += m->str;
    return key;
}

DiffResult
diffReports(const JsonValue &base, const JsonValue &current,
            const DiffOptions &options)
{
    auto baseIdx = indexRecords(base);
    auto currIdx = indexRecords(current);

    DiffResult out;
    auto gatedUnit = [&options](const std::string &unit) {
        return std::find(options.gateUnits.begin(),
                         options.gateUnits.end(),
                         unit) != options.gateUnits.end();
    };
    // Override precedence: metric name beats unit beats the global
    // tolerance; the presence of any override gates the record.
    auto overrideFor = [&options](const std::string &metric,
                                  const std::string &unit)
        -> const double * {
        auto it = options.tolOverrides.find(metric);
        if (it != options.tolOverrides.end())
            return &it->second;
        it = options.tolOverrides.find(unit);
        if (it != options.tolOverrides.end())
            return &it->second;
        return nullptr;
    };
    for (const auto &[key, b] : baseIdx) {
        auto it = currIdx.find(key);
        if (it == currIdx.end()) {
            out.onlyBase.push_back(key);
            continue;
        }
        const RecordView &c = it->second;
        ++out.joined;
        if (b.hasValue && c.hasValue) {
            if (b.value != c.value) {
                DiffEntry e;
                e.key = key;
                e.unit = c.unit.empty() ? b.unit : c.unit;
                e.baseValue = b.value;
                e.currValue = c.value;
                e.relDelta =
                    b.value != 0.0
                        ? (c.value - b.value) / std::fabs(b.value)
                        : (c.value > 0.0
                               ? std::numeric_limits<double>::infinity()
                               : -std::numeric_limits<
                                     double>::infinity());
                const std::string &metric =
                    c.metric.empty() ? b.metric : c.metric;
                const double *ov = overrideFor(metric, e.unit);
                const double tol =
                    ov != nullptr ? *ov : options.relTolerance;
                e.regression = (ov != nullptr || gatedUnit(e.unit)) &&
                               std::fabs(e.relDelta) > tol;
                if (e.regression)
                    ++out.regressions;
                out.drifted.push_back(std::move(e));
            }
        } else if (b.text != c.text || b.hasValue != c.hasValue) {
            out.textChanges.push_back(
                {key, b.hasValue ? fmtValue(b.value) : b.text,
                 c.hasValue ? fmtValue(c.value) : c.text});
            // A gated metric that gained or lost its numeric value is
            // a gate failure, not cosmetics: otherwise a bench bug
            // that turns "cycles" into a text cell would silently
            // retire the metric from the gate. No tolerance applies.
            if (b.hasValue != c.hasValue &&
                (gatedUnit(b.unit) || gatedUnit(c.unit) ||
                 overrideFor(b.metric, b.unit) != nullptr ||
                 overrideFor(c.metric, c.unit) != nullptr))
                ++out.regressions;
        }
    }
    for (const auto &[key, c] : currIdx) {
        (void)c;
        if (!baseIdx.count(key))
            out.onlyCurrent.push_back(key);
    }
    // Worst drift first; deterministic tie-break on the key.
    std::sort(out.drifted.begin(), out.drifted.end(),
              [](const DiffEntry &a, const DiffEntry &b) {
                  double da = std::fabs(a.relDelta);
                  double db = std::fabs(b.relDelta);
                  if (da != db)
                      return da > db;
                  return a.key < b.key;
              });
    return out;
}

std::string
formatDiff(const DiffResult &result, const DiffOptions &options,
           size_t max_lines)
{
    std::ostringstream oss;
    oss << "report_diff: " << result.joined << " metric(s) joined, "
        << result.drifted.size() << " drifted, " << result.regressions
        << " gated regression(s) beyond tol="
        << jsonNumber(options.relTolerance);
    if (!options.tolOverrides.empty()) {
        oss << " (+" << options.tolOverrides.size() << " override(s):";
        for (const auto &[name, tol] : options.tolOverrides)
            oss << " " << name << "=" << jsonNumber(tol);
        oss << ")";
    }
    oss << "\n";
    size_t lines = 0;
    auto budget = [&] {
        return max_lines == 0 || lines < max_lines;
    };
    for (const auto &e : result.drifted) {
        if (!budget()) {
            oss << "  ... (" << result.drifted.size() - lines
                << " more drifted metric(s) suppressed)\n";
            break;
        }
        oss << (e.regression ? "  REGRESSION " : "  drift      ")
            << e.key << (e.unit.empty() ? "" : " [" + e.unit + "]")
            << ": " << fmtValue(e.baseValue) << " -> "
            << fmtValue(e.currValue) << " ("
            << fmtPercentDelta(e.relDelta) << ")\n";
        ++lines;
    }
    for (const auto &t : result.textChanges) {
        if (!budget())
            break;
        oss << "  text        " << t.key << ": '" << t.baseText
            << "' -> '" << t.currText << "'\n";
        ++lines;
    }
    if (!result.onlyBase.empty())
        oss << "  " << result.onlyBase.size()
            << " record(s) only in base (first: " << result.onlyBase[0]
            << ")\n";
    if (!result.onlyCurrent.empty())
        oss << "  " << result.onlyCurrent.size()
            << " record(s) only in current (first: "
            << result.onlyCurrent[0] << ")\n";
    if (result.regressions > 0) {
        // One final greppable line for CI logs: the top worst gated
        // regressions, even when the detail lines above were truncated
        // by max_lines. `drifted` is already sorted worst-first.
        constexpr size_t kFailSummaryTop = 3;
        oss << "report_diff: FAIL; worst drift:";
        size_t shown = 0;
        for (const auto &e : result.drifted) {
            if (!e.regression)
                continue;
            oss << (shown ? ", " : " ") << e.key << " ("
                << fmtPercentDelta(e.relDelta) << ")";
            if (++shown == kFailSummaryTop)
                break;
        }
        if (result.regressions > shown)
            oss << ", +" << result.regressions - shown << " more";
        oss << "\n";
    }
    return oss.str();
}

} // namespace grow::report
