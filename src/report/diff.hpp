/**
 * @file
 * Perf-trajectory differ: join two structured report files on the
 * canonical (bench, table, row-dims, metric) record key and classify
 * the per-metric deltas.
 *
 * The records of BENCH_GROW.json are keyed for exactly this join
 * (record.hpp): CI downloads the latest main-branch trajectory
 * artifact, diffs it against the current run with tools/report_diff
 * and fails when a gated metric (cycles and DRAM bytes by default)
 * drifts beyond the configured tolerance. The simulator is
 * deterministic, so any drift is a real behavioural change -- either
 * an intended optimisation (bump the baseline by merging) or a
 * regression this gate exists to catch.
 */
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "report/json.hpp"

namespace grow::report {

/** Knobs of one diff run. */
struct DiffOptions
{
    /**
     * Allowed relative drift |curr - base| / |base| of a gated metric
     * before it counts as a regression. 0 demands bit-stability.
     */
    double relTolerance = 0.0;
    /** Units participating in the gate (cycle counts, byte totals). */
    std::vector<std::string> gateUnits = {"cycles", "bytes"};
    /**
     * Per-metric tolerance overrides, keyed by metric name (e.g.
     * "rows_per_sec") or unit (e.g. "rows/s", "ms"). Precedence:
     * metric name > unit > relTolerance. An override also *gates* its
     * metric/unit even when the unit is outside gateUnits -- that is
     * how the nondeterministic sim-speed family (units outside the
     * default gate set) gets its own loose CI gate without loosening
     * the 2%-tight cycles/bytes gate (CLI: repeatable `tol.<name>=`).
     */
    std::map<std::string, double> tolOverrides;
};

/** One joined numeric metric whose value changed. */
struct DiffEntry
{
    std::string key; ///< canonical join key (recordJoinKey)
    std::string unit;
    double baseValue = 0.0;
    double currValue = 0.0;
    /** (curr - base) / |base|; +-inf when base == 0 and curr != 0. */
    double relDelta = 0.0;
    /** Whether the unit is gated *and* |relDelta| exceeds tolerance. */
    bool regression = false;
};

/** A categorical (text) metric whose rendering changed. */
struct TextChange
{
    std::string key;
    std::string baseText;
    std::string currText;
};

/** Outcome of diffing two report files. */
struct DiffResult
{
    size_t joined = 0; ///< records present in both files
    /** Numeric metrics whose value changed (regressions included). */
    std::vector<DiffEntry> drifted;
    /** Gate failures: drifted entries with .regression, plus gated
     *  metrics that gained/lost their numeric value entirely (those
     *  appear in textChanges -- a "cycles" record degrading to a text
     *  cell must not silently retire the metric from the gate). */
    size_t regressions = 0;
    std::vector<TextChange> textChanges;
    /** Join keys present in only one side (benches added/removed --
     *  informational, never a gate failure). */
    std::vector<std::string> onlyBase;
    std::vector<std::string> onlyCurrent;
};

/**
 * Canonical join key of one parsed record object:
 * "bench|table|dataset=..|engine=..|model=..|depth=..|extra..|metric".
 * Absent optional dimensions are omitted, so the key is stable across
 * files regardless of field order.
 */
std::string recordJoinKey(const JsonValue &record);

/**
 * Join @p base and @p current (validated report roots -- run
 * validateReportJson first) on recordJoinKey and classify every
 * metric. Entries come back sorted by |relDelta| descending (ties by
 * key) so the worst drift leads the report.
 */
DiffResult diffReports(const JsonValue &base, const JsonValue &current,
                       const DiffOptions &options = {});

/**
 * Human-readable rendering of @p result (at most @p max_lines detail
 * lines; 0 = unlimited). One line per drifted metric, then the
 * added/removed key summary.
 */
std::string formatDiff(const DiffResult &result,
                       const DiffOptions &options, size_t max_lines = 0);

} // namespace grow::report
