#include "report/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdlib>

#include "report/report.hpp"

namespace grow::report {

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : obj)
        if (k == key)
            return &v;
    return nullptr;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    // Non-finite values are not representable in JSON; callers
    // sanitize upstream (record.cpp), this is a final backstop.
    if (!std::isfinite(v))
        return "null";
    char buf[64];
    auto res = std::to_chars(buf, buf + sizeof(buf), v);
    return std::string(buf, res.ptr);
}

namespace {

/** Recursive-descent parser over a borrowed buffer. */
class Parser
{
  public:
    Parser(const std::string &text, std::string *error)
        : text_(text), error_(error)
    {
    }

    bool
    parse(JsonValue &out)
    {
        skipWs();
        if (!value(out))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing content after top-level value");
        return true;
    }

  private:
    bool
    fail(const std::string &msg)
    {
        if (error_ && error_->empty())
            *error_ = msg + " at offset " + std::to_string(pos_);
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    literal(const char *word, JsonValue &out, JsonValue::Kind kind,
            bool boolean)
    {
        size_t len = std::string(word).size();
        if (text_.compare(pos_, len, word) != 0)
            return fail("invalid literal");
        pos_ += len;
        out.kind = kind;
        out.boolean = boolean;
        return true;
    }

    bool
    string(std::string &out)
    {
        if (pos_ >= text_.size() || text_[pos_] != '"')
            return fail("expected string");
        ++pos_;
        out.clear();
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                return fail("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code += static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code += static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code += static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape digit");
                }
                // We only ever emit \u00xx for control characters;
                // encode the code point as UTF-8 for generality.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
              }
              default: return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    number(JsonValue &out)
    {
        size_t start = pos_;
        if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '-' ||
                text_[pos_] == '+'))
            ++pos_;
        if (pos_ == start)
            return fail("expected number");
        const std::string token = text_.substr(start, pos_ - start);
        char *end = nullptr;
        out.number = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size())
            return fail("malformed number '" + token + "'");
        out.kind = JsonValue::Kind::Number;
        return true;
    }

    bool
    value(JsonValue &out)
    {
        if (depth_ > 64)
            return fail("nesting too deep");
        skipWs();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        char c = text_[pos_];
        if (c == '{') {
            ++pos_;
            ++depth_;
            out.kind = JsonValue::Kind::Object;
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == '}') {
                ++pos_;
                --depth_;
                return true;
            }
            while (true) {
                skipWs();
                std::string key;
                if (!string(key))
                    return false;
                skipWs();
                if (pos_ >= text_.size() || text_[pos_++] != ':')
                    return fail("expected ':'");
                JsonValue member;
                if (!value(member))
                    return false;
                out.obj.emplace_back(std::move(key), std::move(member));
                skipWs();
                if (pos_ >= text_.size())
                    return fail("unterminated object");
                if (text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (text_[pos_] == '}') {
                    ++pos_;
                    --depth_;
                    return true;
                }
                return fail("expected ',' or '}'");
            }
        }
        if (c == '[') {
            ++pos_;
            ++depth_;
            out.kind = JsonValue::Kind::Array;
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ']') {
                ++pos_;
                --depth_;
                return true;
            }
            while (true) {
                JsonValue element;
                if (!value(element))
                    return false;
                out.arr.push_back(std::move(element));
                skipWs();
                if (pos_ >= text_.size())
                    return fail("unterminated array");
                if (text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (text_[pos_] == ']') {
                    ++pos_;
                    --depth_;
                    return true;
                }
                return fail("expected ',' or ']'");
            }
        }
        if (c == '"') {
            out.kind = JsonValue::Kind::String;
            return string(out.str);
        }
        if (c == 't')
            return literal("true", out, JsonValue::Kind::Bool, true);
        if (c == 'f')
            return literal("false", out, JsonValue::Kind::Bool, false);
        if (c == 'n')
            return literal("null", out, JsonValue::Kind::Null, false);
        return number(out);
    }

    const std::string &text_;
    std::string *error_;
    size_t pos_ = 0;
    int depth_ = 0;
};

std::string
stringOr(const JsonValue &obj, const char *key, const std::string &def = "")
{
    const JsonValue *v = obj.find(key);
    return v && v->isString() ? v->str : def;
}

} // namespace

bool
parseJson(const std::string &text, JsonValue &out, std::string *error)
{
    if (error)
        error->clear();
    Parser p(text, error);
    return p.parse(out);
}

bool
validateReportJson(const JsonValue &root, std::vector<std::string> &errors)
{
    const size_t before = errors.size();
    if (!root.isObject()) {
        errors.push_back("top level is not an object");
        return false;
    }

    const JsonValue *schema = root.find("schema");
    if (!schema || !schema->isNumber()) {
        errors.push_back("missing numeric 'schema'");
    } else if (schema->number !=
               static_cast<double>(kReportSchemaVersion)) {
        errors.push_back("schema version " + jsonNumber(schema->number) +
                         " does not match this build's version " +
                         std::to_string(kReportSchemaVersion) +
                         " (regenerate the report or upgrade the tool)");
    }

    const JsonValue *bench = root.find("bench");
    if (!bench || !bench->isString() || bench->str.empty())
        errors.push_back("missing non-empty string 'bench'");

    const JsonValue *records = root.find("records");
    if (!records || !records->isArray()) {
        errors.push_back("missing array 'records'");
        return errors.size() == before;
    }

    for (size_t i = 0; i < records->arr.size(); ++i) {
        const JsonValue &r = records->arr[i];
        const std::string where = "records[" + std::to_string(i) + "]";
        if (!r.isObject()) {
            errors.push_back(where + " is not an object");
            continue;
        }
        for (const char *key : {"bench", "table", "metric"}) {
            const JsonValue *v = r.find(key);
            if (!v || !v->isString() || v->str.empty())
                errors.push_back(where + " missing non-empty string '" +
                                 key + "'");
        }
        const JsonValue *value = r.find("value");
        const JsonValue *text = r.find("text");
        if (value && !value->isNumber())
            errors.push_back(where + " 'value' is not a number");
        if (text && !text->isString())
            errors.push_back(where + " 'text' is not a string");
        if (!value && !text)
            errors.push_back(where + " has neither 'value' nor 'text'");
        const JsonValue *dims = r.find("dims");
        if (dims && !dims->isObject())
            errors.push_back(where + " 'dims' is not an object");
        const JsonValue *depth = r.find("depth");
        if (depth && !depth->isNumber())
            errors.push_back(where + " 'depth' is not a number");
    }
    return errors.size() == before;
}

bool
reportFromJson(const JsonValue &root, Report &out, std::string *error)
{
    std::vector<std::string> errors;
    if (!validateReportJson(root, errors)) {
        if (error)
            *error = errors.front();
        return false;
    }

    ReportMeta meta;
    meta.generator = stringOr(root, "generator", meta.generator);
    meta.bench = stringOr(root, "bench");
    meta.revision = stringOr(root, "revision");
    meta.scale = stringOr(root, "scale");
    meta.model = stringOr(root, "model");
    meta.suite = stringOr(root, "suite");
    if (const JsonValue *benches = root.find("benches"))
        for (const auto &b : benches->arr)
            meta.benches.push_back(b.str);
    Report rep(meta);
    if (const JsonValue *notes = root.find("notes"))
        for (const auto &n : notes->arr)
            rep.note(n.str);

    for (const JsonValue &r : root.find("records")->arr) {
        MetricRecord rec;
        rec.bench = stringOr(r, "bench");
        rec.table = stringOr(r, "table");
        rec.dims.dataset = stringOr(r, "dataset");
        rec.dims.engine = stringOr(r, "engine");
        rec.dims.model = stringOr(r, "model");
        if (const JsonValue *depth = r.find("depth"))
            rec.dims.depth = static_cast<uint32_t>(depth->number);
        if (const JsonValue *dims = r.find("dims"))
            for (const auto &[k, v] : dims->obj)
                rec.dims.extra.emplace_back(k, v.str);
        rec.metric = stringOr(r, "metric");
        rec.unit = stringOr(r, "unit");
        if (const JsonValue *value = r.find("value")) {
            rec.hasValue = true;
            rec.value = value->number;
        }
        rec.text = stringOr(r, "text");
        rep.addRecord(std::move(rec));
    }
    out = std::move(rep);
    return true;
}

} // namespace grow::report
