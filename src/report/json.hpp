/**
 * @file
 * Minimal JSON support for the structured results API.
 *
 * The writer side (escape/number helpers, used by JsonSink) and a
 * small strict recursive-descent parser sized for our own report
 * files: objects, arrays, strings with escapes, numbers, booleans and
 * null. Numbers are emitted with std::to_chars (shortest round-trip
 * form), so emit -> parse -> re-emit is bit-identical -- the property
 * the trajectory tooling and the round-trip tests rely on.
 *
 * This is deliberately not a general JSON library: no third-party
 * dependency is available in the build image, and the report schema
 * only needs this subset. validateReportJson() is the single source
 * of truth for "is this a well-formed report file" shared by
 * tools/report_check and CI.
 */
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace grow::report {

class Report;

/** Parsed JSON value (object keys keep their file order). */
struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str; ///< String payload (unescaped)
    std::vector<JsonValue> arr;
    std::vector<std::pair<std::string, JsonValue>> obj;

    /** Member lookup (objects only); null when absent. */
    const JsonValue *find(const std::string &key) const;

    bool isString() const { return kind == Kind::String; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }
};

/**
 * Parse @p text into @p out. Returns false (with a position-annotated
 * message in @p error when non-null) on malformed input; trailing
 * non-whitespace after the top-level value is an error.
 */
bool parseJson(const std::string &text, JsonValue &out,
               std::string *error = nullptr);

/** JSON string escaping (quotes not included). */
std::string jsonEscape(const std::string &s);

/** Shortest round-trip decimal form of @p v (std::to_chars). */
std::string jsonNumber(double v);

/**
 * Validate @p root against the report schema (record.hpp): top-level
 * schema/bench/records, per-record required keys (bench, table,
 * metric, and value or text), field types. Appends one message per
 * problem to @p errors; returns true when none were found. A schema
 * number different from kReportSchemaVersion is an error -- bump
 * detection, not silent acceptance.
 */
bool validateReportJson(const JsonValue &root,
                        std::vector<std::string> &errors);

/**
 * Rebuild a Report (meta + loose records; tables are not serialized)
 * from parsed report JSON. Returns false with @p error set when the
 * document does not validate.
 */
bool reportFromJson(const JsonValue &root, Report &out,
                    std::string *error = nullptr);

} // namespace grow::report
