#include "report/record.hpp"

#include <cmath>

#include "util/string_util.hpp"

namespace grow::report {

namespace {

/**
 * Non-finite values must never reach the JSON sink (nan/inf are not
 * valid JSON numbers): degrade to a text-only cell carrying whatever
 * display string the caller's formatter produced.
 */
Value
numeric(double v, std::string text, std::string unit)
{
    Value out;
    out.hasValue = std::isfinite(v);
    out.value = out.hasValue ? v : 0.0;
    out.unit = std::move(unit);
    out.text = std::move(text);
    return out;
}

} // namespace

Value
textCell(std::string text)
{
    Value out;
    out.text = std::move(text);
    return out;
}

Value
count(uint64_t v, std::string unit)
{
    return numeric(static_cast<double>(v), fmtCount(v), std::move(unit));
}

Value
real(double v, int precision, std::string unit)
{
    return numeric(v, fmtDouble(v, precision), std::move(unit));
}

Value
ratio(double v, int precision)
{
    return numeric(v, fmtRatio(v, precision), "x");
}

Value
fraction(double v, int precision)
{
    return numeric(v, fmtPercent(v, precision), "fraction");
}

Value
bytesValue(uint64_t bytes)
{
    return numeric(static_cast<double>(bytes), fmtBytes(bytes), "bytes");
}

Value
sci(double v, int precision, std::string unit)
{
    return numeric(v, fmtSci(v, precision), std::move(unit));
}

Value
custom(double v, std::string text, std::string unit)
{
    return numeric(v, std::move(text), std::move(unit));
}

} // namespace grow::report
