/**
 * @file
 * Typed metric records: the unit of the structured results API.
 *
 * Every number a bench or example emits is declared as a MetricRecord
 * rather than formatted by hand: the row's identity (dataset, engine,
 * model, depth, free-form extra dimensions) is kept separate from the
 * metric itself (name, unit, raw value) and from its human-readable
 * rendering (the display text the table sink prints). Sinks
 * (src/report/sinks.hpp) then render the same records as aligned text
 * tables, schema-versioned JSON, or CSV -- the bench never formats
 * output itself.
 *
 * Schema evolution: kReportSchemaVersion is stamped into every JSON
 * report; consumers (tools/report_check, CI jq assertions, trajectory
 * plots) must reject files from a different schema instead of guessing
 * field semantics.
 */
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace grow::report {

/**
 * Version of the machine-readable report schema. Bump whenever a
 * record/report field is added, removed, renamed or changes meaning,
 * so downstream trajectory tooling never mixes incompatible runs.
 *
 * v1: initial schema -- {schema, generator, bench, revision, scale,
 *     model, suite?, benches?, notes?, records:[{bench, table,
 *     dataset?, engine?, model?, depth?, dims?, metric, unit?, value?,
 *     text?}]}.
 */
inline constexpr uint32_t kReportSchemaVersion = 1;

/**
 * One cell payload: the raw numeric value (when the metric is
 * numeric), the unit it is measured in, and the exact display string
 * the table sink prints. Factory helpers below apply the repository's
 * canonical formatting (util/string_util.hpp) so table output matches
 * the historical hand-formatted benches bit for bit.
 */
struct Value
{
    bool hasValue = false; ///< false for text-only cells
    double value = 0.0;    ///< raw value (finite iff hasValue)
    std::string unit;      ///< "cycles", "bytes", "x", "fraction", ...
    std::string text;      ///< display string for the table sink
};

/** Text-only cell (row keys, "-" placeholders, descriptions). */
Value textCell(std::string text);

/** Integer count rendered with thousands separators (fmtCount). */
Value count(uint64_t v, std::string unit = "count");

/** Plain real number at @p precision decimals (fmtDouble). */
Value real(double v, int precision = 3, std::string unit = "");

/** Speedup-style ratio rendered as "2.84x" (fmtRatio). */
Value ratio(double v, int precision = 2);

/** Fraction in [0,1] rendered as a percentage (fmtPercent). The raw
 *  value stays the fraction, not the percentage. */
Value fraction(double v, int precision = 1);

/** Byte count rendered with a binary suffix (fmtBytes). */
Value bytesValue(uint64_t bytes);

/** Engineering notation like "1.26e8" (fmtSci). */
Value sci(double v, int precision = 2, std::string unit = "");

/** Raw value with a caller-chosen display string. */
Value custom(double v, std::string text, std::string unit);

/**
 * Identity of one report row. The named dimensions cover the common
 * sweep axes; anything else (cache capacity, runahead degree, rank in
 * a distribution curve, request id) goes into `extra` as ordered
 * key/value pairs. Rows of one table must be uniquely identified by
 * their dims, or downstream joins collide.
 */
struct RowDims
{
    std::string dataset;
    std::string engine;
    std::string model;
    uint32_t depth = 0; ///< model depth (0 = not applicable)
    std::vector<std::pair<std::string, std::string>> extra;
};

/**
 * One flattened metric observation: what the JSON/CSV sinks emit and
 * what BENCH_GROW.json accumulates across runs. `bench` + `table` +
 * dims + `metric` identify the observation; `value` (numeric) or
 * `text` (categorical) carry it.
 */
struct MetricRecord
{
    std::string bench;
    std::string table;
    RowDims dims;
    std::string metric;
    std::string unit;
    bool hasValue = false;
    double value = 0.0;
    std::string text;
};

} // namespace grow::report
