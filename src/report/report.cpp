#include "report/report.hpp"

#include "util/logging.hpp"

#ifndef GROW_GIT_REVISION
#define GROW_GIT_REVISION "unknown"
#endif

namespace grow::report {

std::string
buildRevision()
{
    return GROW_GIT_REVISION;
}

RowBuilder &
RowBuilder::add(Value v)
{
    data_->rows.at(row_).cells.push_back(std::move(v));
    return *this;
}

TableBuilder &
TableBuilder::col(std::string key, std::string header, std::string unit)
{
    GROW_ASSERT(data_->rows.empty(),
                "declare every column before the first row of table " +
                    data_->id);
    data_->columns.push_back(
        {std::move(key), std::move(header), std::move(unit)});
    return *this;
}

RowBuilder
TableBuilder::row(RowDims dims)
{
    data_->rows.push_back({std::move(dims), {}});
    return RowBuilder(data_, data_->rows.size() - 1);
}

void
Report::note(std::string text)
{
    auto item = std::make_unique<ReportItem>();
    item->kind = ReportItem::Kind::Note;
    item->text = std::move(text);
    items_.push_back(std::move(item));
}

TableBuilder
Report::table(std::string id, std::string title)
{
    auto item = std::make_unique<ReportItem>();
    item->kind = ReportItem::Kind::Table;
    item->table.id = std::move(id);
    item->table.title = std::move(title);
    items_.push_back(std::move(item));
    return TableBuilder(&items_.back()->table);
}

void
Report::addRecord(MetricRecord r)
{
    loose_.push_back(std::move(r));
}

namespace {

/** Whether a cell only echoes its row's identity (see records()). */
bool
isDimEcho(const Column &col, const Value &cell, const RowDims &dims)
{
    // Text cells in the conventional identity/label columns repeat the
    // row dims or caption the row ("metric"/"label" columns of the
    // summary tables) -- identity, not data.
    if (!cell.hasValue &&
        (col.key == "dataset" || col.key == "engine" ||
         col.key == "model" || col.key == "metric" || col.key == "label"))
        return true;
    for (const auto &[key, value] : dims.extra)
        if (col.key == key)
            return true;
    return false;
}

} // namespace

std::vector<MetricRecord>
Report::records() const
{
    std::vector<MetricRecord> out;
    for (const auto &item : items_) {
        if (item->kind != ReportItem::Kind::Table)
            continue;
        const TableData &t = item->table;
        for (const auto &row : t.rows) {
            GROW_ASSERT(row.cells.size() <= t.columns.size(),
                        "table " + t.id + " row has more cells than "
                        "declared columns");
            for (size_t c = 0; c < row.cells.size(); ++c) {
                const Column &col = t.columns[c];
                const Value &cell = row.cells[c];
                if (isDimEcho(col, cell, row.dims))
                    continue;
                if (!cell.hasValue && cell.text.empty())
                    continue; // nothing to report
                MetricRecord r;
                r.bench = meta_.bench;
                r.table = t.id;
                r.dims = row.dims;
                r.metric = col.key;
                r.unit = cell.unit.empty() ? col.unit : cell.unit;
                r.hasValue = cell.hasValue;
                r.value = cell.value;
                r.text = cell.text;
                out.push_back(std::move(r));
            }
        }
    }
    out.insert(out.end(), loose_.begin(), loose_.end());
    return out;
}

void
Report::merge(const Report &other)
{
    for (auto &r : other.records())
        loose_.push_back(std::move(r));
    if (!other.meta().bench.empty())
        meta_.benches.push_back(other.meta().bench);
}

namespace {
ReportCollector *g_collector = nullptr;
} // namespace

ReportCollector *
activeCollector()
{
    return g_collector;
}

void
setActiveCollector(ReportCollector *collector)
{
    g_collector = collector;
}

} // namespace grow::report
