/**
 * @file
 * The Report object: everything one bench/example run wants to say.
 *
 * A report is an ordered sequence of items -- free-text notes (banner
 * lines, cache statistics) and declared tables -- plus run-level
 * provenance (bench name, scale tier, model, git revision, schema
 * version). Benches build it through TableBuilder instead of printing:
 *
 *   auto t = rep.table("fig20a", "Figure 20(a)");
 *   t.col("dataset", "dataset")
 *    .col("gcnax_cycles", "GCNAX cycles", "cycles");
 *   t.row({.dataset = spec.name})
 *    .add(report::textCell(spec.name))
 *    .add(report::count(cycles, "cycles"));
 *
 * The chosen ReportSink (src/report/sinks.hpp) then renders the whole
 * report once: the table sink reproduces the historical hand-formatted
 * stdout, the JSON/CSV sinks flatten every table into MetricRecords.
 *
 * A process-wide ReportCollector can intercept finished reports
 * (bench_suite does this) so many benches can run in one process and
 * merge their records into a single trajectory file.
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "report/record.hpp"

namespace grow::report {

/** Run-level provenance stamped into every emitted report. */
struct ReportMeta
{
    std::string generator = "grow-bench";
    std::string bench;    ///< emitting binary ("fig20_speedup", ...)
    std::string revision; ///< git describe of the build (buildRevision())
    std::string scale;    ///< dataset scale tier ("mini", ...)
    std::string model;    ///< GNN model kind ("gcn", ...)
    std::string suite;    ///< suite name (bench_suite merges only)
    std::vector<std::string> benches; ///< merged benches (suite only)
};

/** `git describe` of the tree this binary was built from. */
std::string buildRevision();

/** One declared table column: stable record key + display header. */
struct Column
{
    std::string key;    ///< metric name in records ("gcnax_cycles")
    std::string header; ///< display header ("GCNAX cycles")
    std::string unit;   ///< default unit for cells without one
};

/** Declared table payload (id + columns + dimensioned rows). */
struct TableData
{
    struct Row
    {
        RowDims dims;
        std::vector<Value> cells; ///< positional, matching columns
    };

    std::string id;    ///< stable table key in records ("fig20a")
    std::string title; ///< display caption ("Figure 20(a)")
    std::vector<Column> columns;
    std::vector<Row> rows;
};

/** One ordered piece of a report. */
struct ReportItem
{
    enum class Kind { Note, Table };
    Kind kind = Kind::Note;
    std::string text; ///< Note: verbatim line (no trailing newline)
    TableData table;  ///< Table payload
};

class Report;

/** Chaining helper appending cells to one declared row. Indexes into
 *  the table rather than holding a Row pointer, so it stays valid
 *  even if further row() calls reallocate the row vector. */
class RowBuilder
{
  public:
    RowBuilder(TableData *data, size_t row) : data_(data), row_(row) {}

    /** Append the next positional cell. */
    RowBuilder &add(Value v);

  private:
    TableData *data_;
    size_t row_;
};

/** Chaining helper declaring columns / rows of one table. */
class TableBuilder
{
  public:
    explicit TableBuilder(TableData *data) : data_(data) {}

    /** Declare the next column. Must precede the first row. */
    TableBuilder &col(std::string key, std::string header,
                      std::string unit = "");

    /** Start a row identified by @p dims; add() cells positionally. */
    RowBuilder row(RowDims dims = {});

  private:
    TableData *data_;
};

/** Everything one run reports; see the file comment. */
class Report
{
  public:
    Report() = default;
    explicit Report(ReportMeta meta) : meta_(std::move(meta)) {}

    ReportMeta &meta() { return meta_; }
    const ReportMeta &meta() const { return meta_; }

    /** Append a free-text line (printed verbatim by the table sink,
     *  kept as "notes" in JSON). */
    void note(std::string text);

    /** Declare a new table; fill it through the returned builder. */
    TableBuilder table(std::string id, std::string title);

    /** Append an already-flattened record (suite merge, JSON parse). */
    void addRecord(MetricRecord r);

    const std::vector<std::unique_ptr<ReportItem>> &items() const
    {
        return items_;
    }
    const std::vector<MetricRecord> &looseRecords() const
    {
        return loose_;
    }

    /**
     * Flatten every table into MetricRecords (plus the loose records,
     * in order). Cells that merely echo a row's identity -- a text
     * cell in a "dataset"/"engine"/"model"/"metric"/"label" column, or
     * any cell whose column key names an extra dim of its row -- are
     * skipped: they are identity, not metrics.
     */
    std::vector<MetricRecord> records() const;

    /**
     * Append every record of @p other (tables flattened) to this
     * report's loose records, and remember other's bench name in
     * meta().benches. The records keep their own bench field -- this
     * is how bench_suite builds the merged BENCH_GROW.json.
     */
    void merge(const Report &other);

  private:
    ReportMeta meta_;
    std::vector<std::unique_ptr<ReportItem>> items_;
    std::vector<MetricRecord> loose_;
};

/**
 * Process-wide interception point for finished reports: while a
 * collector is active (setActiveCollector), BenchContext hands its
 * report here instead of emitting it, so bench_suite can run many
 * benches in-process and merge their records.
 */
class ReportCollector
{
  public:
    void add(Report r) { reports_.push_back(std::move(r)); }
    std::vector<Report> &reports() { return reports_; }

  private:
    std::vector<Report> reports_;
};

/** The active collector, or null when reports emit directly. */
ReportCollector *activeCollector();

/** Install (or, with null, remove) the active collector. */
void setActiveCollector(ReportCollector *collector);

} // namespace grow::report
