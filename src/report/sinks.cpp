#include "report/sinks.hpp"

#include <fstream>
#include <iostream>
#include <sstream>

#include "report/json.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

namespace grow::report {

void
TableSink::emit(const Report &report, std::ostream &os) const
{
    for (const auto &item : report.items()) {
        if (item->kind == ReportItem::Kind::Note) {
            os << item->text << "\n";
            continue;
        }
        const TableData &data = item->table;
        TextTable t(data.title);
        std::vector<std::string> header;
        header.reserve(data.columns.size());
        for (const auto &col : data.columns)
            header.push_back(col.header);
        t.setHeader(std::move(header));
        for (const auto &row : data.rows) {
            std::vector<std::string> cells;
            cells.reserve(row.cells.size());
            for (const auto &cell : row.cells)
                cells.push_back(cell.text);
            t.addRow(std::move(cells));
        }
        os << t.render();
        os.flush();
    }
}

namespace {

void
jsonStringField(std::ostream &os, bool &first, const char *key,
                const std::string &value)
{
    if (value.empty())
        return;
    os << (first ? "" : ",") << '"' << key << "\":\"" << jsonEscape(value)
       << '"';
    first = false;
}

void
writeRecord(std::ostream &os, const MetricRecord &r)
{
    os << "    {";
    bool first = true;
    jsonStringField(os, first, "bench", r.bench);
    jsonStringField(os, first, "table", r.table);
    jsonStringField(os, first, "dataset", r.dims.dataset);
    jsonStringField(os, first, "engine", r.dims.engine);
    jsonStringField(os, first, "model", r.dims.model);
    if (r.dims.depth > 0) {
        os << (first ? "" : ",") << "\"depth\":" << r.dims.depth;
        first = false;
    }
    if (!r.dims.extra.empty()) {
        os << (first ? "" : ",") << "\"dims\":{";
        first = false;
        bool firstDim = true;
        for (const auto &[key, value] : r.dims.extra) {
            os << (firstDim ? "" : ",") << '"' << jsonEscape(key)
               << "\":\"" << jsonEscape(value) << '"';
            firstDim = false;
        }
        os << "}";
    }
    jsonStringField(os, first, "metric", r.metric);
    jsonStringField(os, first, "unit", r.unit);
    if (r.hasValue) {
        os << (first ? "" : ",") << "\"value\":" << jsonNumber(r.value);
        first = false;
    }
    jsonStringField(os, first, "text", r.text);
    os << "}";
}

void
jsonStringList(std::ostream &os, const char *key,
               const std::vector<std::string> &values)
{
    if (values.empty())
        return;
    os << "  \"" << key << "\": [";
    for (size_t i = 0; i < values.size(); ++i)
        os << (i ? "," : "") << '"' << jsonEscape(values[i]) << '"';
    os << "],\n";
}

} // namespace

void
JsonSink::emit(const Report &report, std::ostream &os) const
{
    const ReportMeta &meta = report.meta();
    os << "{\n";
    os << "  \"schema\": " << kReportSchemaVersion << ",\n";
    os << "  \"generator\": \"" << jsonEscape(meta.generator) << "\",\n";
    os << "  \"bench\": \"" << jsonEscape(meta.bench) << "\",\n";
    if (!meta.revision.empty())
        os << "  \"revision\": \"" << jsonEscape(meta.revision) << "\",\n";
    if (!meta.scale.empty())
        os << "  \"scale\": \"" << jsonEscape(meta.scale) << "\",\n";
    if (!meta.model.empty())
        os << "  \"model\": \"" << jsonEscape(meta.model) << "\",\n";
    if (!meta.suite.empty())
        os << "  \"suite\": \"" << jsonEscape(meta.suite) << "\",\n";
    jsonStringList(os, "benches", meta.benches);
    std::vector<std::string> notes;
    for (const auto &item : report.items())
        if (item->kind == ReportItem::Kind::Note)
            notes.push_back(item->text);
    jsonStringList(os, "notes", notes);

    auto records = report.records();
    os << "  \"records\": [";
    for (size_t i = 0; i < records.size(); ++i) {
        os << (i ? ",\n" : "\n");
        writeRecord(os, records[i]);
    }
    os << (records.empty() ? "]" : "\n  ]") << "\n}\n";
    os.flush();
}

namespace {

/** RFC-4180 escaping: quote cells containing separators or quotes. */
std::string
csvEscape(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

void
CsvSink::emit(const Report &report, std::ostream &os) const
{
    os << "bench,table,dataset,engine,model,depth,dims,metric,unit,"
          "value,text\n";
    for (const auto &r : report.records()) {
        std::string dims;
        for (const auto &[key, value] : r.dims.extra) {
            if (!dims.empty())
                dims += ';';
            dims += key + "=" + value;
        }
        os << csvEscape(r.bench) << ',' << csvEscape(r.table) << ','
           << csvEscape(r.dims.dataset) << ',' << csvEscape(r.dims.engine)
           << ',' << csvEscape(r.dims.model) << ','
           << (r.dims.depth > 0 ? std::to_string(r.dims.depth) : "")
           << ',' << csvEscape(dims) << ',' << csvEscape(r.metric) << ','
           << csvEscape(r.unit) << ','
           << (r.hasValue ? jsonNumber(r.value) : "") << ','
           << csvEscape(r.text) << "\n";
    }
    os.flush();
}

std::unique_ptr<ReportSink>
makeSink(const std::string &format)
{
    if (format == "table")
        return std::make_unique<TableSink>();
    if (format == "json")
        return std::make_unique<JsonSink>();
    if (format == "csv")
        return std::make_unique<CsvSink>();
    fatal("unknown report format '" + format +
          "' (expected table, json or csv)");
}

void
emitReport(const Report &report, const std::string &format,
           const std::string &out_path)
{
    auto sink = makeSink(format);
    if (out_path.empty()) {
        sink->emit(report, std::cout);
        return;
    }
    std::ofstream out(out_path, std::ios::trunc);
    if (!out)
        fatal("cannot open report output file '" + out_path + "'");
    sink->emit(report, out);
    if (!out)
        fatal("failed writing report output file '" + out_path + "'");
}

} // namespace grow::report
