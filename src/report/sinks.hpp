/**
 * @file
 * Pluggable renderers of one Report.
 *
 * - TableSink renders the historical human-readable output: notes
 *   verbatim, tables through util/table.hpp TextTable -- byte-for-byte
 *   what the hand-formatted benches used to print.
 * - JsonSink emits the schema-versioned machine-readable document
 *   ({"schema": N, "bench": ..., "records": [...]}) the perf
 *   trajectory (BENCH_GROW.json) is built from.
 * - CsvSink flattens the records into one RFC-4180 CSV table for
 *   spreadsheet/plotting consumers.
 *
 * Every bench accepts `format=table|json|csv` and `out=<path>`;
 * emitReport() is the shared "pick sink, open stream, render" helper
 * behind that contract.
 */
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "report/report.hpp"

namespace grow::report {

/** Renders one finished Report onto a stream. */
class ReportSink
{
  public:
    virtual ~ReportSink() = default;
    virtual void emit(const Report &report, std::ostream &os) const = 0;
};

/** Human-readable notes + aligned text tables (the default). */
class TableSink : public ReportSink
{
  public:
    void emit(const Report &report, std::ostream &os) const override;
};

/** Schema-versioned JSON document (one record object per line). */
class JsonSink : public ReportSink
{
  public:
    void emit(const Report &report, std::ostream &os) const override;
};

/** Flat RFC-4180 CSV over the flattened records. */
class CsvSink : public ReportSink
{
  public:
    void emit(const Report &report, std::ostream &os) const override;
};

/** Sink for @p format ("table", "json", "csv"); fatal() otherwise. */
std::unique_ptr<ReportSink> makeSink(const std::string &format);

/**
 * Render @p report with the @p format sink onto @p out_path (stdout
 * when empty). fatal() on an unknown format or unwritable path.
 */
void emitReport(const Report &report, const std::string &format,
                const std::string &out_path);

} // namespace grow::report
