#include "scaleout/halo.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace grow::scaleout {

uint64_t
HaloPlan::totalBoundaryVertices() const
{
    uint64_t total = 0;
    for (const auto &perSrc : boundary)
        for (const auto &verts : perSrc)
            total += verts.size();
    return total;
}

HaloPlan
buildHaloPlan(const sparse::CsrMatrix &adjacency,
              const ChipShardPlan &shard)
{
    GROW_ASSERT(shard.nodeToChip.size() == adjacency.rows(),
                "shard plan does not cover the adjacency rows");
    HaloPlan plan;
    plan.chips = shard.chips;
    plan.boundary.assign(shard.chips,
                         std::vector<std::vector<NodeId>>(shard.chips));
    for (uint32_t v = 0; v < adjacency.rows(); ++v) {
        const uint32_t dst = shard.nodeToChip[v];
        for (NodeId nb : adjacency.rowCols(v)) {
            const uint32_t src = shard.nodeToChip[nb];
            if (src != dst)
                plan.boundary[dst][src].push_back(nb);
        }
    }
    for (auto &perSrc : plan.boundary) {
        for (auto &verts : perSrc) {
            std::sort(verts.begin(), verts.end());
            verts.erase(std::unique(verts.begin(), verts.end()),
                        verts.end());
        }
    }
    return plan;
}

} // namespace grow::scaleout
