/**
 * @file
 * Halo-exchange planning: which features cross which link.
 *
 * Before a layer's aggregation can run on chip d, the combination
 * outputs of every *boundary vertex* -- a vertex owned by another chip
 * s that some row of d's adjacency slice references -- must arrive
 * over s's egress link. The HaloPlan enumerates those boundary-vertex
 * sets once per shard plan (they are a pure function of the adjacency
 * structure); each layer then moves |boundary(d, s)| * outDim *
 * kValueBytes bytes over link s -> d, each remote row fetched exactly
 * once per layer (the chip-local halo buffer deduplicates the
 * cut-edge endpoints, mirroring how the HDN cache deduplicates
 * on-chip row reuse).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "scaleout/shard.hpp"
#include "sim/types.hpp"

namespace grow::scaleout {

/** Boundary-vertex sets of one shard plan. */
struct HaloPlan
{
    uint32_t chips = 1;
    /**
     * boundary[dst][src] = sorted distinct (relabeled) vertices owned
     * by chip src that chip dst's adjacency rows reference
     * (boundary[d][d] is always empty).
     */
    std::vector<std::vector<std::vector<NodeId>>> boundary;

    /** Boundary vertices pulled by @p dst from @p src. */
    uint64_t boundaryVertices(uint32_t dst, uint32_t src) const
    {
        return boundary[dst][src].size();
    }

    /** Total boundary vertices across all directed chip pairs. */
    uint64_t totalBoundaryVertices() const;

    /** Bytes link src -> dst carries for one layer of @p rhs_cols
     *  features. */
    Bytes pairPhaseBytes(uint32_t dst, uint32_t src,
                         uint32_t rhs_cols) const
    {
        return boundaryVertices(dst, src) *
               static_cast<Bytes>(rhs_cols) * kValueBytes;
    }

    /** Bytes all links carry for one layer of @p rhs_cols features. */
    Bytes phaseBytes(uint32_t rhs_cols) const
    {
        return totalBoundaryVertices() *
               static_cast<Bytes>(rhs_cols) * kValueBytes;
    }
};

/**
 * Enumerate the boundary-vertex sets of @p shard over @p adjacency
 * (the relabeled operand the aggregation streams). Deterministic and
 * independent of thread count.
 */
HaloPlan buildHaloPlan(const sparse::CsrMatrix &adjacency,
                       const ChipShardPlan &shard);

} // namespace grow::scaleout
