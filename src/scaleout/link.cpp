#include "scaleout/link.hpp"

namespace grow::scaleout {

mem::DramConfig
linkDramConfig(const LinkSpec &spec)
{
    mem::DramConfig config;
    config.bandwidthGBps = spec.bandwidthGBps;
    config.clockGHz = spec.clockGHz;
    config.accessLatency = spec.latencyCycles();
    // Byte-exact accounting: no line rounding, so the link's traffic
    // counters equal the halo payload bytes exactly.
    config.lineBytes = 1;
    return config;
}

InterchipLink::InterchipLink(uint32_t source_chip, const LinkSpec &spec)
    : mem::SimpleDram(linkDramConfig(spec)), source_(source_chip)
{
}

Cycle
InterchipLink::read(Cycle now, uint64_t addr, Bytes bytes,
                    mem::TrafficClass cls)
{
    ++transfers_;
    return mem::SimpleDram::read(now, addr, bytes, cls);
}

Cycle
InterchipLink::write(Cycle now, uint64_t addr, Bytes bytes,
                     mem::TrafficClass cls)
{
    ++transfers_;
    return mem::SimpleDram::write(now, addr, bytes, cls);
}

} // namespace grow::scaleout
