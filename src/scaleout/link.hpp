/**
 * @file
 * Inter-chip link model.
 *
 * One InterchipLink is the egress port of one chip: a bandwidth-
 * serialized channel with a fixed per-transfer latency, shared by
 * every remote chip pulling halo rows from its owner. It reuses the
 * SimpleDram timing core (serialization with exact fractional-cycle
 * occupancy accounting) with byte-exact granularity -- lineBytes is 1,
 * so the per-link byte counters equal the halo payload exactly, which
 * the conservation tests (and the `tol.link-bytes=0.0` CI gate) rely
 * on. Being a mem::DramModel, a link drops straight into the
 * generalized accel::EpochArbiter as one arbitrated resource.
 */
#pragma once

#include <memory>

#include "mem/dram.hpp"
#include "scaleout/topology.hpp"

namespace grow::scaleout {

/** Egress link of one chip (a DramModel-shaped shared resource). */
class InterchipLink : public mem::SimpleDram
{
  public:
    InterchipLink(uint32_t source_chip, const LinkSpec &spec);

    /** Chip whose egress this link is. */
    uint32_t source() const { return source_; }

    /** Completed transfers (replayed through the canonical device). */
    uint64_t transfers() const { return transfers_; }

    Cycle read(Cycle now, uint64_t addr, Bytes bytes,
               mem::TrafficClass cls) override;
    Cycle write(Cycle now, uint64_t addr, Bytes bytes,
                mem::TrafficClass cls) override;

  private:
    uint32_t source_ = 0;
    uint64_t transfers_ = 0;
};

/** The DramConfig an InterchipLink runs @p spec under. */
mem::DramConfig linkDramConfig(const LinkSpec &spec);

} // namespace grow::scaleout
