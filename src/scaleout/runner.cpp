#include "scaleout/runner.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <memory>

#include "accel/dram_arbiter.hpp"
#include "driver/engine_factory.hpp"
#include "scaleout/link.hpp"
#include "util/logging.hpp"
#include "util/wallclock.hpp"
#include "util/work_pool.hpp"

namespace grow::scaleout {

namespace {

/** Contiguous global row ranges [first, last) of one chip's slice:
 *  the owned clusters' node ranges, ascending, adjacent ones merged. */
std::vector<std::pair<uint32_t, uint32_t>>
chipRowRanges(const ChipShardPlan &shard,
              const partition::Clustering &clustering, uint32_t chip)
{
    std::vector<std::pair<uint32_t, uint32_t>> ranges;
    for (uint32_t c : shard.chipClusters[chip]) {
        const uint32_t lo = clustering.clusterStart[c];
        const uint32_t hi = clustering.clusterStart[c + 1];
        if (!ranges.empty() && ranges.back().second == lo)
            ranges.back().second = hi;
        else
            ranges.emplace_back(lo, hi);
    }
    return ranges;
}

/** Row-slice @p m to @p ranges (columns stay global). */
sparse::CsrMatrix
sliceRows(const sparse::CsrMatrix &m,
          const std::vector<std::pair<uint32_t, uint32_t>> &ranges)
{
    uint32_t rows = 0;
    uint64_t nnz = 0;
    for (const auto &[lo, hi] : ranges) {
        rows += hi - lo;
        nnz += m.rowPtr()[hi] - m.rowPtr()[lo];
    }
    std::vector<uint64_t> rowPtr;
    rowPtr.reserve(rows + 1);
    rowPtr.push_back(0);
    std::vector<NodeId> colIdx;
    colIdx.reserve(nnz);
    std::vector<double> values;
    values.reserve(nnz);
    for (const auto &[lo, hi] : ranges) {
        for (uint32_t r = lo; r < hi; ++r) {
            const auto cols = m.rowCols(r);
            const auto vals = m.rowVals(r);
            colIdx.insert(colIdx.end(), cols.begin(), cols.end());
            values.insert(values.end(), vals.begin(), vals.end());
            rowPtr.push_back(colIdx.size());
        }
    }
    return sparse::CsrMatrix::fromRaw(rows, m.cols(), std::move(rowPtr),
                                      std::move(colIdx),
                                      std::move(values));
}

/** One chip's private operand storage; the per-chip plan borrows from
 *  it, so it must outlive the chip's execution. */
struct ChipSlice
{
    std::vector<std::pair<uint32_t, uint32_t>> ranges;
    /** Global operand -> this chip's row slice. */
    std::map<const sparse::CsrMatrix *,
             std::unique_ptr<sparse::CsrMatrix>>
        sliced;
    partition::Clustering clustering;
    std::vector<std::vector<NodeId>> hdnLists;
    gcn::PhasePlan plan;

    const sparse::CsrMatrix &slice(const sparse::CsrMatrix &global)
    {
        auto it = sliced.find(&global);
        if (it == sliced.end()) {
            it = sliced
                     .emplace(&global,
                              std::make_unique<sparse::CsrMatrix>(
                                  sliceRows(global, ranges)))
                     .first;
        }
        return *it->second;
    }
};

/** Element-wise accumulate classified traffic. */
void
mergeTraffic(mem::DramTraffic &into, const mem::DramTraffic &from)
{
    for (size_t i = 0; i < mem::kNumTrafficClasses; ++i) {
        into.readBytes[i] += from.readBytes[i];
        into.writeBytes[i] += from.writeBytes[i];
    }
}

/** One chunked link transfer of a halo step. */
struct LinkTransfer
{
    uint32_t src = 0;
    uint64_t addr = 0;
    Bytes bytes = 0;
};

/**
 * Co-simulate the halo steps of @p plan over one egress link per chip.
 * Receiving chips are the arbiter lanes, egress links the resources;
 * each lane's DMA engine pipelines its pulls (serialization chains on
 * the link channel, the per-transfer latency overlaps), and cross-lane
 * link contention resolves at epoch boundaries -- deterministic for
 * every worker count. Returns per-step cycle counts in plan order of
 * the halo steps.
 */
std::vector<Cycle>
simulateHalo(const gcn::PhasePlan &plan, const HaloPlan &halo,
             const EngineTopology &topo,
             std::vector<std::unique_ptr<InterchipLink>> &links,
             const gcn::RunOptions &options)
{
    const uint32_t chips = topo.chips;
    std::vector<mem::DramModel *> resources;
    resources.reserve(chips);
    for (auto &link : links)
        resources.push_back(link.get());
    accel::EpochArbiter arbiter(resources, chips);

    const Cycle window =
        options.sim.epochCycles > 0 ? options.sim.epochCycles : 4096;
    const Cycle latency = topo.link.latencyCycles();
    const uint32_t threads = std::max(1u, options.sim.threads);

    std::vector<Cycle> stepCycles;
    Cycle clock = 0;
    for (const gcn::PlannedPhase &ph : plan) {
        if (ph.op != gcn::PhaseOp::HaloExchange)
            continue;
        const Bytes rowBytes =
            static_cast<Bytes>(ph.problem.rhsCols) * kValueBytes;

        // Per-lane transfer lists: every remote boundary vertex's
        // feature row, chunked to the link DMA granularity, sources in
        // ascending chip order.
        std::vector<std::vector<LinkTransfer>> lane(chips);
        for (uint32_t dst = 0; dst < chips; ++dst) {
            for (uint32_t src = 0; src < chips; ++src) {
                for (NodeId v : halo.boundary[dst][src]) {
                    Bytes left = rowBytes;
                    uint64_t addr =
                        static_cast<uint64_t>(v) * rowBytes;
                    while (left > 0) {
                        const Bytes piece =
                            std::min<Bytes>(left, topo.link.chunkBytes);
                        lane[dst].push_back({src, addr, piece});
                        addr += piece;
                        left -= piece;
                    }
                }
            }
        }

        const Cycle stepStart = clock;
        std::vector<size_t> pos(chips, 0);
        std::vector<Cycle> laneFree(chips, stepStart);
        std::vector<Cycle> laneLast(chips, stepStart);
        Cycle windowEnd = stepStart + window;
        for (;;) {
            bool pending = false;
            for (uint32_t d = 0; d < chips; ++d)
                pending = pending || pos[d] < lane[d].size();
            if (!pending)
                break;
            arbiter.beginEpoch();
            std::vector<std::function<void()>> tasks;
            tasks.reserve(chips);
            for (uint32_t d = 0; d < chips; ++d) {
                tasks.emplace_back([&, d] {
                    while (pos[d] < lane[d].size() &&
                           laneFree[d] < windowEnd) {
                        const LinkTransfer &tr = lane[d][pos[d]];
                        const Cycle done =
                            arbiter.port(tr.src, d)
                                .read(laneFree[d], tr.addr, tr.bytes,
                                      mem::TrafficClass::DenseRow);
                        // Pipelined DMA: the next pull starts once the
                        // link channel frees up; the fixed latency
                        // overlaps across in-flight transfers.
                        laneFree[d] = std::max<Cycle>(
                            laneFree[d] + 1,
                            done > latency ? done - latency
                                           : laneFree[d] + 1);
                        laneLast[d] = std::max(laneLast[d], done);
                        ++pos[d];
                    }
                });
            }
            util::rethrowFirstError(
                util::WorkPool::shared().runAll(std::move(tasks),
                                                threads));
            arbiter.commitEpoch();
            windowEnd += window;
        }
        Cycle stepEnd = stepStart;
        for (uint32_t d = 0; d < chips; ++d)
            stepEnd = std::max(stepEnd, laneLast[d]);
        stepCycles.push_back(stepEnd - stepStart);
        clock = stepEnd;
    }
    return stepCycles;
}

} // namespace

ScaleoutResult
runInference(const EngineTopology &topology,
             const gcn::GcnWorkload &workload,
             const gcn::RunOptions &options)
{
    util::WallClock runClock;
    topology.validate();
    const uint32_t chips = topology.chips;
    driver::EngineSpec spec = driver::engineForTopology(topology);

    gcn::RunOptions opts = options;
    opts.chips = chips;
    opts.usePartitioning = spec.usePartitioning;
    GROW_ASSERT(!opts.sim.functional || chips == 1,
                "multi-chip topologies have no functional mode");

    const gcn::PhasePlan plan = gcn::buildPhasePlan(workload, opts);

    ScaleoutResult out;
    // The shard objective streams the same relabeled operand the
    // aggregation does (the halo markers carry it for chips > 1).
    if (chips > 1) {
        const sparse::CsrMatrix *adjacency = nullptr;
        for (const auto &ph : plan) {
            if (ph.op == gcn::PhaseOp::HaloExchange) {
                adjacency = ph.problem.lhs;
                break;
            }
        }
        GROW_ASSERT(adjacency != nullptr,
                    "multi-chip plan lacks halo markers");
        out.shard = buildShardPlan(*adjacency,
                                   workload.relabel().clustering, chips);
        out.halo = buildHaloPlan(*adjacency, out.shard);
    } else {
        const uint32_t nodes = workload.nodes();
        out.shard.chips = 1;
        out.shard.chipNodes = {nodes};
        out.shard.nodeToChip.assign(nodes, 0);
        if (opts.usePartitioning) {
            const auto &clustering = workload.relabel().clustering;
            out.shard.clusterToChip.assign(clustering.numClusters(), 0);
            out.shard.chipClusters.resize(1);
            for (uint32_t c = 0; c < clustering.numClusters(); ++c)
                out.shard.chipClusters[0].push_back(c);
        } else {
            out.shard.clusterToChip = {0};
            out.shard.chipClusters = {{0}};
        }
        out.halo.chips = 1;
        out.halo.boundary.assign(1, {{}});
    }

    // ---- Per-chip slices and plans ----------------------------------
    std::vector<ChipSlice> slices(chips);
    for (uint32_t c = 0; c < chips; ++c) {
        ChipSlice &slice = slices[c];
        if (opts.usePartitioning) {
            const auto &clustering = workload.relabel().clustering;
            slice.ranges = chipRowRanges(out.shard, clustering, c);
            slice.clustering.clusterStart.push_back(0);
            for (uint32_t cl : out.shard.chipClusters[c]) {
                slice.clustering.clusterStart.push_back(
                    slice.clustering.clusterStart.back() +
                    clustering.clusterSize(cl));
                if (cl < workload.hdnLists().size())
                    slice.hdnLists.push_back(workload.hdnLists()[cl]);
            }
        } else {
            slice.ranges = {{0u, workload.nodes()}};
        }
        for (const gcn::PlannedPhase &ph : plan) {
            if (ph.op == gcn::PhaseOp::HaloExchange)
                continue;
            gcn::PlannedPhase chipPh = ph;
            chipPh.problem.lhs = &slice.slice(*ph.problem.lhs);
            if (ph.problem.clustering != nullptr) {
                chipPh.problem.clustering = &slice.clustering;
                chipPh.problem.hdnLists = &slice.hdnLists;
            }
            slice.plan.push_back(std::move(chipPh));
        }
    }

    // ---- Execute every chip through the single-chip executor --------
    out.perChip.reserve(chips);
    for (uint32_t c = 0; c < chips; ++c) {
        auto engine = spec.make();
        out.perChip.push_back(
            gcn::executePlan(*engine, slices[c].plan, opts));
    }

    // ---- Co-simulate the halo steps over the links ------------------
    std::vector<std::unique_ptr<InterchipLink>> links;
    std::vector<Cycle> haloStepCycles;
    if (chips > 1) {
        links.reserve(chips);
        for (uint32_t s = 0; s < chips; ++s)
            links.push_back(
                std::make_unique<InterchipLink>(s, topology.link));
        haloStepCycles =
            simulateHalo(plan, out.halo, topology, links, opts);
    }

    // ---- Link accounting (exact by construction) --------------------
    out.links.egressBytes.assign(chips, 0);
    out.links.egressBusyCycles.assign(chips, 0);
    std::vector<uint32_t> haloLayers;
    for (const auto &ph : plan)
        if (ph.op == gcn::PhaseOp::HaloExchange)
            haloLayers.push_back(ph.problem.rhsCols);
    for (uint32_t src = 0; src < chips; ++src) {
        for (uint32_t dst = 0; dst < chips; ++dst) {
            if (src == dst)
                continue;
            LinkPairTraffic pair;
            pair.src = src;
            pair.dst = dst;
            for (uint32_t cols : haloLayers) {
                pair.bytes += out.halo.pairPhaseBytes(dst, src, cols);
                const Bytes rowBytes =
                    static_cast<Bytes>(cols) * kValueBytes;
                const uint64_t chunks =
                    rowBytes == 0
                        ? 0
                        : (rowBytes + topology.link.chunkBytes - 1) /
                              topology.link.chunkBytes;
                pair.transfers +=
                    out.halo.boundaryVertices(dst, src) * chunks;
            }
            out.links.pairs.push_back(pair);
            out.links.totalBytes += pair.bytes;
            out.links.totalTransfers += pair.transfers;
        }
    }
    if (chips > 1) {
        for (uint32_t src = 0; src < chips; ++src) {
            out.links.egressBytes[src] = links[src]->traffic().total();
            out.links.egressBusyCycles[src] = links[src]->busyCycles();
        }
        // Conservation: the canonical egress devices must have carried
        // exactly the boundary-feature payload.
        for (uint32_t src = 0; src < chips; ++src) {
            Bytes expected = 0;
            for (const auto &pair : out.links.pairs)
                if (pair.src == src)
                    expected += pair.bytes;
            GROW_ASSERT(out.links.egressBytes[src] == expected,
                        "link byte conservation violated on chip " +
                            std::to_string(src));
        }
    }
    out.haloBytes = out.links.totalBytes;

    // ---- Merge ------------------------------------------------------
    gcn::InferenceResult &merged = out.merged;
    merged = gcn::InferenceResult{};
    merged.engine = out.perChip.front().engine;
    merged.model = out.perChip.front().model;
    merged.modelAreaOverhead = out.perChip.front().modelAreaOverhead;
    size_t chipPhase = 0;
    size_t haloStep = 0;
    for (const gcn::PlannedPhase &ph : plan) {
        gcn::PhaseMetrics pm;
        pm.layer = ph.layer;
        pm.op = ph.op;
        if (ph.op == gcn::PhaseOp::HaloExchange) {
            const Cycle cycles = haloStepCycles.at(haloStep++);
            pm.result.cycles = cycles;
            pm.result.label = ph.problem.label;
            merged.totalCycles += cycles;
            merged.haloCycles += cycles;
        } else {
            Cycle maxCycles = 0;
            for (uint32_t c = 0; c < chips; ++c) {
                const gcn::PhaseMetrics &cpm =
                    out.perChip[c].phases.at(chipPhase);
                maxCycles = std::max(maxCycles, cpm.result.cycles);
                pm.result.macOps += cpm.result.macOps;
                pm.result.cacheHits += cpm.result.cacheHits;
                pm.result.cacheMisses += cpm.result.cacheMisses;
                mergeTraffic(pm.result.traffic, cpm.result.traffic);
                pm.energy += cpm.energy;
                pm.hostMillis += cpm.hostMillis;
            }
            const gcn::PhaseMetrics &first =
                out.perChip.front().phases.at(chipPhase);
            pm.result.engine = first.result.engine;
            pm.result.phase = first.result.phase;
            pm.result.label = first.result.label;
            pm.result.cycles = maxCycles;
            merged.totalCycles += maxCycles;
            merged.macOps += pm.result.macOps;
            merged.cacheHits += pm.result.cacheHits;
            merged.cacheMisses += pm.result.cacheMisses;
            mergeTraffic(merged.traffic, pm.result.traffic);
            merged.energy += pm.energy;
            switch (ph.op) {
              case gcn::PhaseOp::Combination:
                merged.combinationCycles += maxCycles;
                break;
              case gcn::PhaseOp::Aggregation:
                merged.aggregationCycles += maxCycles;
                break;
              case gcn::PhaseOp::AttentionScore:
                merged.attentionCycles += maxCycles;
                break;
              case gcn::PhaseOp::HaloExchange:
                break; // handled above
            }
            ++chipPhase;
        }
        merged.phases.push_back(std::move(pm));
    }
    for (const auto &chipRes : out.perChip) {
        merged.simRows += chipRes.simRows;
        merged.hostMillis += chipRes.hostMillis;
    }
    out.haloCycles = merged.haloCycles;
    merged.hostMillis = std::max(merged.hostMillis,
                                 runClock.elapsedMs());
    return out;
}

} // namespace grow::scaleout
