/**
 * @file
 * Multi-chip sharded co-simulation.
 *
 * scaleout::runInference executes one inference across the chips of an
 * EngineTopology:
 *
 *  1. The workload is lowered once (gcn::buildPhasePlan with
 *     options.chips = topology.chips), which interleaves one
 *     HaloExchange step per layer ahead of the adjacency-streaming
 *     steps.
 *  2. A ChipShardPlan assigns the partitioner's clusters to chips
 *     (cut-arc-minimising, balance-capped), and every engine phase is
 *     row-sliced to each chip's owned clusters: the sliced operands
 *     keep global column IDs, so the relabeled layout, per-cluster HDN
 *     lists and the engines' cluster round-robin apply unchanged.
 *  3. Each chip's slice runs through the unchanged single-chip
 *     executor (gcn::executePlan) -- chips are hermetic between halo
 *     points, so the per-chip results fold with per-phase max cycles
 *     (chips run concurrently in real hardware) and summed traffic /
 *     MACs / energy.
 *  4. The HaloExchange steps are co-simulated against one
 *     InterchipLink per chip through the generalized
 *     accel::EpochArbiter (links are the resources, receiving chips
 *     the lanes), so link contention resolves at deterministic epoch
 *     boundaries: results are bit-identical for every `threads=`
 *     value, and a chips=1 topology reproduces the single-chip path
 *     byte-for-byte (the identity slice is the whole workload and no
 *     halo steps exist).
 *
 * See DESIGN.md "Multi-chip scale-out".
 */
#pragma once

#include <vector>

#include "gcn/runner.hpp"
#include "scaleout/halo.hpp"
#include "scaleout/shard.hpp"
#include "scaleout/topology.hpp"

namespace grow::scaleout {

/** Bytes/transfers one directed link pair carried (exact by
 *  construction: boundary vertices x feature bytes, see HaloPlan). */
struct LinkPairTraffic
{
    uint32_t src = 0;
    uint32_t dst = 0;
    Bytes bytes = 0;
    uint64_t transfers = 0;
};

/** Per-link accounting of one scale-out run. */
struct LinkMetrics
{
    /** Directed pairs (src != dst), ascending (src, dst). */
    std::vector<LinkPairTraffic> pairs;
    /** Canonical egress-device byte counters, one per source chip
     *  (equal to the pair sums -- the conservation invariant). */
    std::vector<Bytes> egressBytes;
    /** Cycles each egress link spent transferring. */
    std::vector<Cycle> egressBusyCycles;
    Bytes totalBytes = 0;
    uint64_t totalTransfers = 0;
};

/** Outcome of one sharded inference. */
struct ScaleoutResult
{
    /**
     * Whole-topology aggregate: per-phase max cycles across chips
     * (summed over phases, halo steps included), summed traffic /
     * MACs / energy / cache statistics. For chips == 1 this is
     * bit-identical to the single-chip gcn::runInference result.
     */
    gcn::InferenceResult merged;
    /** Per-chip single-chip results, chip order. */
    std::vector<gcn::InferenceResult> perChip;
    ChipShardPlan shard;
    HaloPlan halo;
    LinkMetrics links;
    /** Total feature bytes moved by all halo steps. */
    Bytes haloBytes = 0;
    /** Cycles spent in halo steps (also merged.haloCycles). */
    Cycle haloCycles = 0;
};

/**
 * Run one inference of @p workload on @p topology under @p options
 * (options.chips is overridden by topology.chips). Deterministic:
 * bit-identical for every options.sim.threads value.
 */
ScaleoutResult runInference(const EngineTopology &topology,
                            const gcn::GcnWorkload &workload,
                            const gcn::RunOptions &options);

} // namespace grow::scaleout
