#include "scaleout/shard.hpp"

#include <algorithm>
#include <map>

#include "util/logging.hpp"

namespace grow::scaleout {

namespace {

/** clusterOf lookup table for every node (clusters are contiguous). */
std::vector<uint32_t>
nodeClusters(const partition::Clustering &clustering, uint32_t nodes)
{
    std::vector<uint32_t> out(nodes);
    for (uint32_t c = 0; c < clustering.numClusters(); ++c) {
        for (uint32_t v = clustering.clusterStart[c];
             v < clustering.clusterStart[c + 1]; ++v)
            out[v] = c;
    }
    return out;
}

} // namespace

ChipShardPlan
buildShardPlan(const sparse::CsrMatrix &adjacency,
               const partition::Clustering &clustering, uint32_t chips)
{
    const uint32_t numClusters = clustering.numClusters();
    const uint32_t nodes = adjacency.rows();
    GROW_ASSERT(chips >= 1, "shard plan needs chips >= 1");
    GROW_ASSERT(numClusters >= 1, "shard plan needs a clustering");
    GROW_ASSERT(clustering.clusterStart.back() == nodes,
                "clustering does not cover the adjacency rows");
    if (chips > numClusters)
        fatal("chips=" + std::to_string(chips) + " exceeds the " +
              std::to_string(numClusters) +
              " partition clusters of this workload (a cluster is "
              "never split across chips)");

    ChipShardPlan plan;
    plan.chips = chips;
    plan.clusterToChip.assign(numClusters, 0);
    plan.chipNodes.assign(chips, 0);

    const std::vector<uint32_t> nodeCluster =
        nodeClusters(clustering, nodes);

    if (chips > 1) {
        // Symmetric cluster-connectivity weights: every adjacency
        // non-zero contributes to both endpoint clusters' neighbour
        // maps, so a cluster's map prices all arcs it would drag
        // across a chip boundary.
        std::vector<std::map<uint32_t, uint64_t>> weight(numClusters);
        for (uint32_t v = 0; v < nodes; ++v) {
            const uint32_t cv = nodeCluster[v];
            for (NodeId nb : adjacency.rowCols(v)) {
                const uint32_t cn = nodeCluster[nb];
                if (cn == cv)
                    continue;
                weight[cv][cn] += 1;
                weight[cn][cv] += 1;
            }
        }

        // Contiguous balanced seeding in cluster order: relabeled
        // cluster IDs are locality-sorted (the partitioner's layout),
        // so contiguous runs are already a decent cut.
        const uint64_t target =
            (static_cast<uint64_t>(nodes) + chips - 1) / chips;
        uint32_t chip = 0;
        for (uint32_t c = 0; c < numClusters; ++c) {
            const uint64_t size = clustering.clusterSize(c);
            if (chip + 1 < chips && plan.chipNodes[chip] > 0 &&
                plan.chipNodes[chip] + size > target)
                ++chip;
            // Never strand clusters: the tail chips must each get at
            // least one cluster.
            const uint32_t remainingChips = chips - chip - 1;
            const uint32_t remainingClusters = numClusters - c - 1;
            plan.clusterToChip[c] = chip;
            plan.chipNodes[chip] += size;
            if (remainingChips > 0 && remainingClusters <= remainingChips &&
                remainingClusters > 0)
                ++chip;
        }

        // Hard balance cap: ~10% over the mean, but never below the
        // largest single cluster (a cluster is never split).
        uint64_t maxCluster = 0;
        for (uint32_t c = 0; c < numClusters; ++c)
            maxCluster = std::max<uint64_t>(maxCluster,
                                            clustering.clusterSize(c));
        const uint64_t cap =
            std::max<uint64_t>(maxCluster, target + target / 10);

        // Deterministic greedy refinement: move a cluster to the chip
        // holding most of its neighbour weight when that strictly
        // reduces the cut and respects the cap; clusters and chips are
        // scanned in ascending order, ties keep the lowest chip.
        std::vector<uint32_t> clustersOnChip(chips, 0);
        for (uint32_t c = 0; c < numClusters; ++c)
            ++clustersOnChip[plan.clusterToChip[c]];
        std::vector<uint64_t> conn(chips);
        for (int pass = 0; pass < 8; ++pass) {
            bool moved = false;
            for (uint32_t c = 0; c < numClusters; ++c) {
                const uint32_t from = plan.clusterToChip[c];
                if (clustersOnChip[from] <= 1)
                    continue; // never empty a chip
                std::fill(conn.begin(), conn.end(), 0);
                for (const auto &[d, w] : weight[c])
                    conn[plan.clusterToChip[d]] += w;
                const uint64_t size = clustering.clusterSize(c);
                uint32_t best = from;
                uint64_t bestGain = 0;
                for (uint32_t p = 0; p < chips; ++p) {
                    if (p == from ||
                        plan.chipNodes[p] + size > cap)
                        continue;
                    if (conn[p] > conn[from] &&
                        conn[p] - conn[from] > bestGain) {
                        best = p;
                        bestGain = conn[p] - conn[from];
                    }
                }
                if (best != from) {
                    plan.clusterToChip[c] = best;
                    plan.chipNodes[from] -= size;
                    plan.chipNodes[best] += size;
                    --clustersOnChip[from];
                    ++clustersOnChip[best];
                    moved = true;
                }
            }
            if (!moved)
                break;
        }
    } else {
        plan.chipNodes[0] = nodes;
    }

    plan.chipClusters.assign(chips, {});
    for (uint32_t c = 0; c < numClusters; ++c)
        plan.chipClusters[plan.clusterToChip[c]].push_back(c);

    plan.nodeToChip.resize(nodes);
    for (uint32_t v = 0; v < nodes; ++v)
        plan.nodeToChip[v] = plan.clusterToChip[nodeCluster[v]];

    for (uint32_t v = 0; v < nodes; ++v) {
        const uint32_t cv = plan.nodeToChip[v];
        for (NodeId nb : adjacency.rowCols(v))
            if (plan.nodeToChip[nb] != cv)
                ++plan.cutArcs;
    }
    return plan;
}

} // namespace grow::scaleout
