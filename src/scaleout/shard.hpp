/**
 * @file
 * Chip-shard planning: assigning partition clusters to chips.
 *
 * The multi-chip runner shards an inference at *cluster* granularity:
 * the partitioner's clusters (partition::multilevel via the workload's
 * RelabelResult) stay intact, and the shard plan only decides which
 * chip owns which clusters. Reusing the cluster structure keeps every
 * single-chip artefact valid per chip -- the cluster-contiguous
 * relabeling, the per-cluster HDN lists and the engines' cluster
 * round-robin all apply unchanged to a chip's slice -- while the plan
 * minimises the adjacency non-zeros that cross chips (the halo bytes
 * the links must carry).
 *
 * buildShardPlan is deterministic: contiguous balanced seeding in
 * cluster order, then fixed greedy refinement passes that move a
 * cluster to the chip with the highest cut-arc gain under a hard node
 * balance cap, scanning clusters and chips in ascending order with
 * lowest-index tie-breaks.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "partition/relabel.hpp"
#include "sparse/csr_matrix.hpp"

namespace grow::scaleout {

/** Assignment of partition clusters (and thus nodes) to chips. */
struct ChipShardPlan
{
    uint32_t chips = 1;
    /** clusterToChip[c] = chip owning cluster c. */
    std::vector<uint32_t> clusterToChip;
    /** Clusters owned by each chip, ascending cluster IDs. */
    std::vector<std::vector<uint32_t>> chipClusters;
    /** Nodes owned by each chip. */
    std::vector<uint64_t> chipNodes;
    /** nodeToChip[v] = chip owning (relabeled) node v. */
    std::vector<uint32_t> nodeToChip;
    /** Adjacency non-zeros whose row and column chips differ. */
    uint64_t cutArcs = 0;

    /** Chip owning (relabeled) node @p v. */
    uint32_t chipOf(NodeId v) const { return nodeToChip[v]; }
};

/**
 * Assign the clusters of @p clustering to @p chips chips. The cut
 * objective counts the non-zeros of @p adjacency (the relabeled
 * operand the aggregation streams) whose endpoints land on different
 * chips; the balance cap keeps every chip within ~10% of the mean node
 * count (never below the largest single cluster -- a cluster is never
 * split). chips == 1 returns the trivial plan.
 */
ChipShardPlan buildShardPlan(const sparse::CsrMatrix &adjacency,
                             const partition::Clustering &clustering,
                             uint32_t chips);

} // namespace grow::scaleout
