#include "scaleout/topology.hpp"

#include "util/logging.hpp"

namespace grow::scaleout {

void
EngineTopology::validate() const
{
    if (engine.empty())
        fatal("EngineTopology: engine key is empty");
    if (chips < 1 || chips > kMaxChips)
        fatal("EngineTopology: chips must be in [1, " +
              std::to_string(kMaxChips) + "], got " +
              std::to_string(chips));
    if (growConfig && engine.rfind("grow", 0) != 0)
        fatal("EngineTopology: a GrowConfig override needs a "
              "grow-family engine key, got '" + engine + "'");
    if (!(link.bandwidthGBps > 0.0))
        fatal("EngineTopology: link bandwidth must be > 0 GB/s");
    if (link.latencyNs < 0.0)
        fatal("EngineTopology: link latency must be >= 0 ns");
    if (link.chunkBytes == 0)
        fatal("EngineTopology: link chunk size must be > 0 bytes");
    if (!(link.clockGHz > 0.0))
        fatal("EngineTopology: link clock must be > 0 GHz");
}

} // namespace grow::scaleout
