/**
 * @file
 * The engine-topology descriptor of a (possibly multi-chip) run.
 *
 * The redesigned front-end API: one EngineTopology names everything
 * the driver needs to instantiate the simulated hardware -- the engine
 * configuration key, how many chips the inference is sharded across,
 * an optional GrowConfig override for the grow-family engines, and the
 * inter-chip link specification. chips == 1 describes the classic
 * single-chip setup; driver::engineForTopology() and
 * scaleout::runInference() consume the descriptor directly, and
 * bench::BenchContext builds one from the `chips=` / `link_gbps=` /
 * `link_ns=` CLI keys. See DESIGN.md "Multi-chip scale-out".
 */
#pragma once

#include <optional>
#include <string>

#include "core/grow_config.hpp"
#include "sim/types.hpp"

namespace grow::scaleout {

/** Inter-chip link model parameters (one egress link per chip). */
struct LinkSpec
{
    /** Peak per-link bandwidth in GB/s (`link_gbps=`). */
    double bandwidthGBps = 64.0;
    /** Per-transfer latency in nanoseconds (`link_ns=`). */
    double latencyNs = 500.0;
    /** DMA chunk granularity of one halo transfer (bytes). */
    Bytes chunkBytes = 512;
    /** Accelerator clock the latency converts against (GHz). */
    double clockGHz = 1.0;

    /** Per-transfer latency in accelerator cycles. */
    Cycle latencyCycles() const
    {
        return static_cast<Cycle>(latencyNs * clockGHz);
    }

    /** Peak transfer rate in bytes per accelerator cycle. */
    double bytesPerCycle() const { return bandwidthGBps / clockGHz; }
};

/**
 * Everything needed to instantiate the simulated hardware of one run.
 * Construct via the fluent setters:
 *
 *   auto topo = EngineTopology("grow").withChips(4).withLinkGbps(32);
 */
struct EngineTopology
{
    EngineTopology() = default;
    explicit EngineTopology(std::string engine_key)
        : engine(std::move(engine_key))
    {
    }

    /** Engine configuration key (driver::engineByKey). */
    std::string engine = "grow";
    /** Number of chips the inference is sharded across. */
    uint32_t chips = 1;
    /** Inter-chip link model (meaningful only when chips > 1). */
    LinkSpec link;
    /**
     * GrowConfig override for the grow-family engines (every chip of
     * the topology runs this configuration). Unset uses the registry
     * configuration of `engine`; setting it with a non-grow engine key
     * is rejected by validate().
     */
    std::optional<core::GrowConfig> growConfig;

    EngineTopology &withEngine(std::string key)
    {
        engine = std::move(key);
        return *this;
    }
    EngineTopology &withChips(uint32_t n)
    {
        chips = n;
        return *this;
    }
    EngineTopology &withLink(const LinkSpec &spec)
    {
        link = spec;
        return *this;
    }
    EngineTopology &withLinkGbps(double gbps)
    {
        link.bandwidthGBps = gbps;
        return *this;
    }
    EngineTopology &withLinkNs(double ns)
    {
        link.latencyNs = ns;
        return *this;
    }
    EngineTopology &withGrowConfig(const core::GrowConfig &config)
    {
        growConfig = config;
        return *this;
    }

    /** Whether this describes a multi-chip run. */
    bool sharded() const { return chips > 1; }

    /** fatal() on out-of-range or conflicting fields. */
    void validate() const;
};

/** Upper bound on chips a topology may request. */
inline constexpr uint32_t kMaxChips = 64;

} // namespace grow::scaleout
