#include "serve/executor.hpp"

#include <algorithm>
#include <cctype>
#include <memory>
#include <utility>

#include "driver/engine_factory.hpp"
#include "gcn/runner.hpp"
#include "util/logging.hpp"
#include "util/wallclock.hpp"

namespace grow::serve {

namespace {

bool
iequals(const std::string &a, const std::string &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i)
        if (std::tolower(static_cast<unsigned char>(a[i])) !=
            std::tolower(static_cast<unsigned char>(b[i])))
            return false;
    return true;
}

} // namespace

uint64_t
estimateRequestBytes(const graph::DatasetSpec &spec, graph::ScaleTier tier,
                     uint32_t depth)
{
    // Operand working set: per-layer sparse features (value + index,
    // ~8 B/nnz) plus one pass over the adjacency. Closed-form from
    // the published structure, deliberately ignoring model-specific
    // extras (GIN MLP operands, attention scores) -- admission needs
    // a stable relative ordering of requests, not an allocator-grade
    // number.
    const double nodes = static_cast<double>(graph::scaledNodes(spec, tier));
    const double featureNnz =
        nodes * (static_cast<double>(spec.gcn.inFeatures) * spec.x0Density +
                 static_cast<double>(depth > 1 ? depth - 1 : 0) *
                     static_cast<double>(spec.gcn.hidden) * spec.x1Density);
    const double adjacencyNnz = nodes * spec.paperAvgDegree;
    const double bytes = (featureNnz + adjacencyNnz) * 8.0;
    return bytes > 0.0 ? static_cast<uint64_t>(bytes) : 1;
}

Executor::Executor(driver::WorkloadCache &cache,
                   std::vector<graph::DatasetSpec> datasets,
                   uint32_t sim_threads)
    : cache_(cache), datasets_(std::move(datasets)),
      simThreads_(std::max(1u, sim_threads))
{
    if (datasets_.empty())
        datasets_ = graph::allDatasets();
}

const graph::DatasetSpec *
Executor::findDataset(const std::string &name) const
{
    for (const auto &spec : datasets_)
        if (iequals(spec.name, name))
            return &spec;
    return nullptr;
}

bool
Executor::validate(ServeRequest &req, std::string *error) const
{
    auto fail = [error](const std::string &msg) {
        if (error)
            *error = msg;
        return false;
    };
    const graph::DatasetSpec *spec = findDataset(req.dataset);
    if (!spec)
        return fail("unknown dataset '" + req.dataset + "'");
    bool modelKnown = false;
    for (gcn::ModelKind kind : gcn::allModelKinds())
        if (req.model == gcn::modelKindName(kind))
            modelKnown = true;
    if (!modelKnown)
        return fail("unknown model '" + req.model + "'");
    const auto engines = driver::knownEngineKeys();
    if (std::find(engines.begin(), engines.end(), req.engine) ==
        engines.end())
        return fail("unknown engine '" + req.engine + "'");
    if (req.depth < 1 || req.depth > kMaxServeDepth)
        return fail("depth must be in [1, " +
                    std::to_string(kMaxServeDepth) + "], got " +
                    std::to_string(req.depth));
    req.costBytes = estimateRequestBytes(*spec, req.tier, req.depth);
    return true;
}

ExecResult
Executor::run(const ServeRequest &req) const
{
    ExecResult result;
    util::WallClock clock;
    ServeRequest checked = req;
    if (!validate(checked, &result.error))
        return result;
    try {
        const graph::DatasetSpec &spec = *findDataset(checked.dataset);
        const driver::EngineSpec engine = driver::engineByKey(checked.engine);
        gcn::WorkloadConfig wc;
        wc.tier = checked.tier;
        wc.model = gcn::modelKindFromString(checked.model);
        wc.numLayers = checked.depth;
        wc.seed = checked.seed;
        const gcn::GcnWorkload workload = cache_.workload(spec, wc);
        gcn::RunOptions options;
        options.usePartitioning = engine.usePartitioning;
        options.sim.threads = simThreads_;
        auto sim = engine.make();
        const gcn::InferenceResult inference =
            gcn::runInference(*sim, workload, options);
        result.digest.cycles = inference.totalCycles;
        result.digest.dramBytes = inference.totalTrafficBytes();
        result.digest.macOps = inference.macOps;
        result.digest.cacheHits = inference.cacheHits;
        result.digest.cacheMisses = inference.cacheMisses;
        result.ok = true;
    } catch (const std::exception &e) {
        result.error = std::string("execution failed: ") + e.what();
    }
    result.hostMs = clock.elapsedMs();
    return result;
}

} // namespace grow::serve
