/**
 * @file
 * Request validation and inference execution for the serving layer.
 *
 * The executor is the one place a ServeRequest meets the simulator:
 * it validates the (dataset, model, engine, depth) tuple against the
 * configured universe -- returning an error instead of fatal()ing,
 * because a malformed request must never take the daemon down --
 * resolves the workload through the shared driver::WorkloadCache
 * (artefact reuse + LRU eviction), and runs gcn::runInference on a
 * fresh engine instance.
 *
 * Everything in the returned digest is a deterministic function of
 * the request tuple alone: the same request served by the daemon, by
 * the virtual-clock loop, or by a direct in-process call produces a
 * bit-identical digest. The CI serving gate diffs exactly that.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "driver/workload_cache.hpp"
#include "serve/request.hpp"

namespace grow::serve {

/**
 * Admission cost estimate of one request: the approximate operand
 * footprint (features + adjacency working set) its inference will
 * pin. A deterministic closed form of the dataset spec -- cheap
 * enough to compute on every push, never exact; the byte budget it
 * feeds is a load-shedding knob, not an allocator.
 */
uint64_t estimateRequestBytes(const graph::DatasetSpec &spec,
                              graph::ScaleTier tier, uint32_t depth);

/** Outcome of Executor::run. */
struct ExecResult
{
    bool ok = false;
    std::string error; ///< validation/execution failure (ok == false)
    InferenceDigest digest;
    double hostMs = 0.0; ///< host wall-clock of resolve + inference
};

class Executor
{
  public:
    /**
     * Serve requests against @p cache. @p datasets is the allowed
     * dataset universe (empty = every registry dataset); a request
     * naming anything else is rejected as an error. @p sim_threads is
     * the phase-level fan-out budget handed to each inference.
     */
    Executor(driver::WorkloadCache &cache,
             std::vector<graph::DatasetSpec> datasets = {},
             uint32_t sim_threads = 1);

    /**
     * Validate @p req (dataset/model/engine/depth) without executing.
     * Returns false with @p error set on an invalid tuple. Also fills
     * req.costBytes from estimateRequestBytes -- validation is the
     * admission-side step, so the cost ride-alongs here.
     */
    bool validate(ServeRequest &req, std::string *error) const;

    /**
     * Execute @p req end to end: validate, resolve the workload
     * through the cache, run inference. Never throws or exits on a
     * bad request -- the failure comes back in ExecResult::error.
     * Thread-safe: concurrent calls share only the (thread-safe)
     * workload cache.
     */
    ExecResult run(const ServeRequest &req) const;

    const std::vector<graph::DatasetSpec> &datasets() const
    {
        return datasets_;
    }

  private:
    const graph::DatasetSpec *findDataset(const std::string &name) const;

    driver::WorkloadCache &cache_;
    std::vector<graph::DatasetSpec> datasets_;
    uint32_t simThreads_ = 1;
};

/** Model-depth bound accepted by the serving layer. */
inline constexpr uint32_t kMaxServeDepth = 16;

} // namespace grow::serve
