#include "serve/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "graph/datasets.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"

namespace grow::serve {

namespace {

/** Depth-series bound: past it, every second sample is dropped and
 *  the recording stride doubles (deterministic decimation). */
constexpr size_t kMaxDepthSamples = 512;

} // namespace

double
percentile(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    GROW_ASSERT(q >= 0.0 && q <= 1.0, "percentile q out of [0,1]");
    // Nearest-rank: the smallest value with at least q of the mass at
    // or below it. Deterministic, no interpolation.
    const size_t n = sorted.size();
    size_t rank = static_cast<size_t>(
        std::ceil(q * static_cast<double>(n)));
    if (rank == 0)
        rank = 1;
    return sorted[std::min(rank, n) - 1];
}

void
ServeMetrics::recordAdmission(Admission a, uint32_t depth_after, Micros now)
{
    std::lock_guard<std::mutex> lk(mu_);
    ++counters_.submitted;
    if (a == Admission::Admitted)
        ++counters_.admitted;
    sampleDepthLocked(now, depth_after);
}

void
ServeMetrics::sampleQueueDepth(Micros now, uint32_t depth)
{
    std::lock_guard<std::mutex> lk(mu_);
    sampleDepthLocked(now, depth);
}

void
ServeMetrics::sampleDepthLocked(Micros now, uint32_t depth)
{
    if (depthEvents_++ % depthStride_ == 0) {
        depthSeries_.push_back({now, depth});
        if (depthSeries_.size() > kMaxDepthSamples) {
            // Keep every second sample; future events thin the same
            // way via the doubled stride.
            std::vector<DepthSample> kept;
            kept.reserve(depthSeries_.size() / 2 + 1);
            for (size_t i = 0; i < depthSeries_.size(); i += 2)
                kept.push_back(depthSeries_[i]);
            depthSeries_ = std::move(kept);
            depthStride_ *= 2;
        }
    }
}

void
ServeMetrics::recordOutcome(const RequestRecord &record)
{
    std::lock_guard<std::mutex> lk(mu_);
    TenantStats &t = tenants_[record.request.tenant];
    switch (record.status) {
    case RequestStatus::Completed:
        ++counters_.completed;
        ++t.completed;
        t.latenciesMs.push_back(record.totalMs());
        t.execMsSum += record.execMs;
        t.cycles += record.digest.cycles;
        t.dramBytes += record.digest.dramBytes;
        break;
    case RequestStatus::RejectedQueueFull:
        ++counters_.rejectedQueueFull;
        ++t.rejected;
        break;
    case RequestStatus::RejectedBytes:
        ++counters_.rejectedBytes;
        ++t.rejected;
        break;
    case RequestStatus::RejectedClosed:
        ++counters_.rejectedClosed;
        ++t.rejected;
        break;
    case RequestStatus::Expired:
        ++counters_.expired;
        ++t.expired;
        break;
    case RequestStatus::Error:
        ++counters_.errors;
        ++t.errors;
        break;
    }
}

void
ServeMetrics::recordProtocolError()
{
    std::lock_guard<std::mutex> lk(mu_);
    ++counters_.protocolErrors;
}

uint64_t
ServeMetrics::outcomes() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return counters_.completed + counters_.rejectedQueueFull +
           counters_.rejectedBytes + counters_.rejectedClosed +
           counters_.expired + counters_.errors;
}

uint64_t
ServeMetrics::protocolErrors() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return counters_.protocolErrors;
}

void
ServeMetrics::fillReport(report::Report &rep,
                         const driver::WorkloadCache::Snapshot *cache) const
{
    Counters counters;
    std::map<std::string, TenantStats> tenants;
    std::vector<DepthSample> depth;
    {
        std::lock_guard<std::mutex> lk(mu_);
        counters = counters_;
        tenants = tenants_;
        depth = depthSeries_;
    }

    {
        auto t = rep.table("serve_admission", "admission control");
        t.col("submitted", "submitted", "count")
            .col("admitted", "admitted", "count")
            .col("completed", "completed", "count")
            .col("rejected_queue_full", "rej. queue", "count")
            .col("rejected_byte_budget", "rej. bytes", "count")
            .col("rejected_shutdown", "rej. shutdown", "count")
            .col("expired", "expired", "count")
            .col("errors", "errors", "count")
            .col("protocol_errors", "protocol errors", "count");
        t.row({})
            .add(report::count(counters.submitted))
            .add(report::count(counters.admitted))
            .add(report::count(counters.completed))
            .add(report::count(counters.rejectedQueueFull))
            .add(report::count(counters.rejectedBytes))
            .add(report::count(counters.rejectedClosed))
            .add(report::count(counters.expired))
            .add(report::count(counters.errors))
            .add(report::count(counters.protocolErrors));
    }

    if (!tenants.empty()) {
        auto t = rep.table("serve_tenants",
                           "per-tenant serving latency");
        t.col("tenant", "tenant")
            .col("requests", "requests", "count")
            .col("completed", "completed", "count")
            .col("rejected", "rejected", "count")
            .col("expired", "expired", "count")
            .col("mean_ms", "mean", "ms")
            .col("p50_ms", "p50", "ms")
            .col("p95_ms", "p95", "ms")
            .col("p99_ms", "p99", "ms")
            .col("served_cycles", "served cycles", "cycles")
            .col("served_dram_bytes", "served DRAM", "bytes");
        for (const auto &[name, stats] : tenants) {
            std::vector<double> sorted = stats.latenciesMs;
            std::sort(sorted.begin(), sorted.end());
            double mean = 0.0;
            for (double v : sorted)
                mean += v;
            if (!sorted.empty())
                mean /= static_cast<double>(sorted.size());
            const uint64_t requests = stats.completed + stats.rejected +
                                      stats.expired + stats.errors;
            auto ms = [](double v) {
                return report::real(v, 3, "ms");
            };
            t.row({.extra = {{"tenant", name}}})
                .add(report::textCell(name))
                .add(report::count(requests))
                .add(report::count(stats.completed))
                .add(report::count(stats.rejected))
                .add(report::count(stats.expired))
                .add(ms(mean))
                .add(ms(percentile(sorted, 0.50)))
                .add(ms(percentile(sorted, 0.95)))
                .add(ms(percentile(sorted, 0.99)))
                .add(report::count(stats.cycles, "cycles"))
                .add(report::bytesValue(stats.dramBytes));
        }
    }

    if (!depth.empty()) {
        auto t = rep.table("serve_queue_depth",
                           "queue depth over time");
        t.col("time_ms", "time", "ms").col("depth", "depth", "count");
        for (size_t i = 0; i < depth.size(); ++i)
            t.row({.extra = {{"sample", std::to_string(i)}}})
                .add(report::real(millis(depth[i].timeUs), 3, "ms"))
                .add(report::count(depth[i].depth));
    }

    if (cache) {
        auto t = rep.table("serve_cache", "workload cache");
        t.col("builds", "builds", "count")
            .col("memory_hits", "memory hits", "count")
            .col("disk_loads", "disk loads", "count")
            .col("evictions", "evictions", "count")
            .col("evictions_bytes", "evictions (bytes cap)", "count")
            .col("entries", "entries", "count")
            .col("footprint", "footprint", "bytes");
        t.row({})
            .add(report::count(cache->counters.builds))
            .add(report::count(cache->counters.memoryHits))
            .add(report::count(cache->counters.diskLoads))
            .add(report::count(cache->counters.evictions))
            .add(report::count(cache->counters.evictionsByBytes))
            .add(report::count(cache->entries))
            .add(report::bytesValue(cache->bytes));
    }
}

double
appendServedDatasetTable(report::Report &rep,
                         const std::vector<RequestRecord> &records,
                         const std::string &tableId, const std::string &title)
{
    struct Agg
    {
        graph::ScaleTier tier = graph::ScaleTier::Mini;
        std::string engine;
        uint64_t requests = 0;
        double cycles = 0.0;
        double traffic = 0.0;
        double hits = 0.0;
        double lookups = 0.0;
    };
    std::vector<std::pair<std::string, Agg>> byDataset;
    double aggregateMs = 0.0;
    for (const RequestRecord &r : records) {
        if (r.status != RequestStatus::Completed)
            continue;
        Agg *agg = nullptr;
        for (auto &[name, a] : byDataset)
            if (name == r.request.dataset)
                agg = &a;
        if (!agg) {
            byDataset.push_back({r.request.dataset, {}});
            agg = &byDataset.back().second;
            agg->tier = r.request.tier;
            agg->engine = r.request.engine;
        }
        ++agg->requests;
        agg->cycles += static_cast<double>(r.digest.cycles);
        agg->traffic += static_cast<double>(r.digest.dramBytes);
        agg->hits += static_cast<double>(r.digest.cacheHits);
        agg->lookups += static_cast<double>(r.digest.cacheHits +
                                            r.digest.cacheMisses);
        aggregateMs += r.digest.simulatedMs();
    }

    auto t = rep.table(tableId, title);
    t.col("dataset", "graph")
        .col("nodes", "nodes", "count")
        .col("mean_cycles", "mean cycles", "cycles")
        .col("mean_dram_traffic", "mean DRAM traffic", "bytes")
        .col("hdn_hit_rate", "HDN hit rate")
        .col("mean_latency_ms", "mean latency @1GHz", "ms");
    for (const auto &[name, agg] : byDataset) {
        const double n = static_cast<double>(agg.requests);
        const double meanCycles = agg.cycles / n;
        t.row({.dataset = name, .engine = agg.engine})
            .add(report::textCell(name))
            .add(report::count(graph::scaledNodes(
                graph::datasetByName(name), agg.tier)))
            .add(report::count(static_cast<uint64_t>(meanCycles), "cycles"))
            .add(report::bytesValue(
                static_cast<uint64_t>(agg.traffic / n)))
            .add(agg.lookups > 0
                     ? report::fraction(agg.hits / agg.lookups)
                     : report::textCell("-"))
            .add(report::custom(meanCycles / 1e6,
                                fmtDouble(meanCycles / 1e6, 2) + " ms",
                                "ms"));
    }
    return aggregateMs;
}

} // namespace grow::serve
