/**
 * @file
 * Structured serving metrics: per-tenant latency distributions,
 * admission counters, queue-depth time series, cache snapshot -- all
 * emitted through grow::report so the serving trajectory is gated by
 * report_check/report_diff like every other metric family.
 *
 * The same ServeMetrics instance sits behind the socket daemon (many
 * threads; every mutator is mutex-protected) and the deterministic
 * virtual-clock loop (one thread, virtual timestamps). Report output
 * is deterministic whenever the event sequence is: tenants emit in
 * name order, percentiles are nearest-rank on the full latency set,
 * and the queue-depth series decimates by stride doubling (a pure
 * function of the event sequence, never of wall-clock sampling).
 */
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "driver/workload_cache.hpp"
#include "report/report.hpp"
#include "serve/request.hpp"

namespace grow::serve {

/** Nearest-rank percentile of @p sorted (ascending); 0 when empty. */
double percentile(const std::vector<double> &sorted, double q);

class ServeMetrics
{
  public:
    /** Admission verdict for one push (samples the depth series). */
    void recordAdmission(Admission a, uint32_t depth_after, Micros now);

    /** Depth sample outside admission (dispatch, periodic flush). */
    void sampleQueueDepth(Micros now, uint32_t depth);

    /** Final disposition of one request (completion, rejection
     *  response, expiry, execution error). */
    void recordOutcome(const RequestRecord &record);

    /** A client line that failed to parse (daemon only). */
    void recordProtocolError();

    /** Requests whose outcome has been recorded. */
    uint64_t outcomes() const;

    uint64_t protocolErrors() const;

    /**
     * Append the serving tables to @p rep: serve_admission (counter
     * row), serve_tenants (per-tenant counts, latency percentiles and
     * served simulated work), serve_queue_depth (decimated series),
     * and -- when @p cache is non-null -- serve_cache from one
     * coherent WorkloadCache snapshot.
     */
    void fillReport(report::Report &rep,
                    const driver::WorkloadCache::Snapshot *cache) const;

  private:
    struct TenantStats
    {
        uint64_t completed = 0;
        uint64_t rejected = 0; ///< all rejection flavours
        uint64_t expired = 0;
        uint64_t errors = 0;
        /** totalMs of every completed request, arrival order. */
        std::vector<double> latenciesMs;
        double execMsSum = 0.0;
        uint64_t cycles = 0;    ///< served simulated cycles (sum)
        uint64_t dramBytes = 0; ///< served simulated traffic (sum)
    };

    struct Counters
    {
        uint64_t submitted = 0;
        uint64_t admitted = 0;
        uint64_t completed = 0;
        uint64_t rejectedQueueFull = 0;
        uint64_t rejectedBytes = 0;
        uint64_t rejectedClosed = 0;
        uint64_t expired = 0;
        uint64_t errors = 0;
        uint64_t protocolErrors = 0;
    };

    struct DepthSample
    {
        Micros timeUs = 0;
        uint32_t depth = 0;
    };

    void sampleDepthLocked(Micros now, uint32_t depth);

    mutable std::mutex mu_;
    Counters counters_;
    std::map<std::string, TenantStats> tenants_;
    std::vector<DepthSample> depthSeries_;
    uint64_t depthEvents_ = 0;
    uint64_t depthStride_ = 1;
};

/**
 * Append the per-dataset serving table (the batched_serving example's
 * historical shape: dataset, nodes, mean cycles, mean DRAM traffic,
 * HDN hit rate, mean latency @1GHz) aggregated over the Completed
 * records of @p records, one row per dataset in first-appearance
 * order. Returns the aggregate simulated engine time in ms (the
 * `aggregate_engine_ms` record's value).
 */
double appendServedDatasetTable(report::Report &rep,
                                const std::vector<RequestRecord> &records,
                                const std::string &tableId,
                                const std::string &title);

} // namespace grow::serve
