#include "serve/options.hpp"

#include "graph/datasets.hpp"
#include "util/logging.hpp"

namespace grow::serve {

const std::vector<std::string> &
scheduleKeys()
{
    static const std::vector<std::string> keys = {
        "requests", "seed",  "mean_gap_us", "tenants",     "datasets",
        "engines",  "model", "scale",       "depth",       "feature_seed",
        "deadline_ms"};
    return keys;
}

ScheduleConfig
scheduleFromArgs(const CliArgs &args)
{
    ScheduleConfig config;
    config.seed = static_cast<uint64_t>(args.getInt("seed", 7));
    config.count = static_cast<uint32_t>(args.getInt("requests", 32));
    config.meanGapUs = args.getInt("mean_gap_us", 2000);
    if (args.has("tenants")) {
        std::string error;
        if (!parseTenantMix(args.get("tenants", ""), config.tenants,
                            &error))
            fatal("tenants=: " + error);
    }
    config.datasets = args.getList("datasets", {"cora"});
    config.engines = args.getList("engines", {"grow"});
    config.model = args.get("model", "gcn");
    config.tier = graph::tierFromString(args.get("scale", "mini"));
    config.depth = static_cast<uint32_t>(args.getInt("depth", 2));
    config.featureSeedBase =
        static_cast<uint64_t>(args.getInt("feature_seed", 7));
    config.deadlineRelUs = args.getInt("deadline_ms", 0) * 1000;
    return config;
}

const std::vector<std::string> &
admissionKeys()
{
    static const std::vector<std::string> keys = {
        "queue_depth", "bytebudget", "default_deadline_ms"};
    return keys;
}

AdmissionConfig
admissionFromArgs(const CliArgs &args)
{
    AdmissionConfig admission;
    admission.maxDepth =
        static_cast<uint32_t>(args.getInt("queue_depth", 64));
    if (args.has("bytebudget"))
        admission.byteBudget =
            parseByteSize("bytebudget", args.get("bytebudget", ""));
    admission.defaultDeadlineUs =
        args.getInt("default_deadline_ms", 0) * 1000;
    return admission;
}

} // namespace grow::serve
