/**
 * @file
 * The serving binaries' shared `key=value` option grammar.
 *
 * grow_serve (mode=sim and the socket daemon), serve_load and the
 * batched_serving example all accept the same schedule- and
 * admission-control flags; this is the one place their key lists and
 * parsing live, so the grammars cannot drift between the tools and a
 * requireKnown() list always matches what the parser reads.
 */
#pragma once

#include <string>
#include <vector>

#include "serve/queue.hpp"
#include "serve/schedule.hpp"
#include "util/cli.hpp"

namespace grow::serve {

/**
 * The schedule flags shared by grow_serve mode=sim, serve_load and
 * batched_serving: requests=, seed=, mean_gap_us=, tenants=,
 * datasets=, engines=, model=, scale=, depth=, feature_seed=,
 * deadline_ms=. Append to a tool's requireKnown() list.
 */
const std::vector<std::string> &scheduleKeys();

/** Build a ScheduleConfig from parsed flags (defaults per field);
 *  fatal() on a malformed tenants= mix. */
ScheduleConfig scheduleFromArgs(const CliArgs &args);

/** The admission-control flags: queue_depth=, bytebudget=,
 *  default_deadline_ms=. */
const std::vector<std::string> &admissionKeys();

/**
 * Build an AdmissionConfig from parsed flags: queue_depth= (default
 * 64), bytebudget= (grow::parseByteSize grammar, default off) and
 * default_deadline_ms= (default 0 = none).
 */
AdmissionConfig admissionFromArgs(const CliArgs &args);

} // namespace grow::serve
