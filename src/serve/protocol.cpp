#include "serve/protocol.hpp"

#include <cmath>
#include <sstream>

#include "report/json.hpp"

namespace grow::serve {

namespace {

/** Non-fatal tier parse (tierFromString exits on bad input). */
bool
tierFromWire(const std::string &s, graph::ScaleTier &out)
{
    for (graph::ScaleTier t :
         {graph::ScaleTier::Full, graph::ScaleTier::Mini,
          graph::ScaleTier::Tiny, graph::ScaleTier::Unit}) {
        if (s == graph::tierName(t)) {
            out = t;
            return true;
        }
    }
    return false;
}

bool
fail(std::string *error, const std::string &msg)
{
    if (error)
        *error = msg;
    return false;
}

/** Exact unsigned integer from a JSON number (rejects 2^53+ / frac). */
bool
asUint(const report::JsonValue &v, uint64_t &out)
{
    if (!v.isNumber() || v.number < 0.0 || v.number > 9007199254740992.0 ||
        v.number != std::floor(v.number))
        return false;
    out = static_cast<uint64_t>(v.number);
    return true;
}

void
appendField(std::ostringstream &os, bool &first, const std::string &key,
            const std::string &jsonValue)
{
    os << (first ? "{" : ",") << '"' << key << "\":" << jsonValue;
    first = false;
}

void
appendString(std::ostringstream &os, bool &first, const std::string &key,
             const std::string &value)
{
    appendField(os, first, key,
                "\"" + report::jsonEscape(value) + "\"");
}

void
appendUint(std::ostringstream &os, bool &first, const std::string &key,
           uint64_t value)
{
    appendField(os, first, key, std::to_string(value));
}

void
appendDouble(std::ostringstream &os, bool &first, const std::string &key,
             double value)
{
    appendField(os, first, key, report::jsonNumber(value));
}

} // namespace

bool
parseClientLine(const std::string &line, ClientLine &out, std::string *error)
{
    report::JsonValue root;
    std::string parseError;
    if (!report::parseJson(line, root, &parseError))
        return fail(error, "malformed JSON: " + parseError);
    if (!root.isObject())
        return fail(error, "expected a JSON object");

    if (const report::JsonValue *cmd = root.find("cmd")) {
        if (!cmd->isString())
            return fail(error, "cmd must be a string");
        if (root.obj.size() != 1)
            return fail(error, "cmd lines carry no other keys");
        if (cmd->str == "shutdown") {
            out.kind = ClientLine::Kind::Shutdown;
            return true;
        }
        if (cmd->str == "ping") {
            out.kind = ClientLine::Kind::Ping;
            return true;
        }
        return fail(error, "unknown cmd '" + cmd->str + "'");
    }

    out.kind = ClientLine::Kind::Request;
    ServeRequest req;
    bool haveId = false, haveDataset = false;
    for (const auto &[key, value] : root.obj) {
        if (key == "id") {
            if (!asUint(value, req.id))
                return fail(error, "id must be a non-negative integer");
            haveId = true;
        } else if (key == "tenant") {
            if (!value.isString() || value.str.empty())
                return fail(error, "tenant must be a non-empty string");
            req.tenant = value.str;
        } else if (key == "dataset") {
            if (!value.isString() || value.str.empty())
                return fail(error, "dataset must be a non-empty string");
            req.dataset = value.str;
            haveDataset = true;
        } else if (key == "model") {
            if (!value.isString())
                return fail(error, "model must be a string");
            req.model = value.str;
        } else if (key == "engine") {
            if (!value.isString())
                return fail(error, "engine must be a string");
            req.engine = value.str;
        } else if (key == "scale") {
            if (!value.isString() || !tierFromWire(value.str, req.tier))
                return fail(error,
                            "scale must be full/mini/tiny/unit");
        } else if (key == "depth") {
            uint64_t depth = 0;
            if (!asUint(value, depth) || depth == 0 || depth > UINT32_MAX)
                return fail(error, "depth must be a positive integer");
            req.depth = static_cast<uint32_t>(depth);
        } else if (key == "seed") {
            if (!asUint(value, req.seed))
                return fail(error, "seed must be a non-negative integer");
        } else if (key == "deadline_ms") {
            uint64_t ms = 0;
            if (!asUint(value, ms))
                return fail(error,
                            "deadline_ms must be a non-negative integer");
            req.deadlineRelUs = static_cast<Micros>(ms) * 1000;
        } else {
            return fail(error, "unknown request key '" + key + "'");
        }
    }
    if (!haveId)
        return fail(error, "missing required key 'id'");
    if (!haveDataset)
        return fail(error, "missing required key 'dataset'");
    out.request = std::move(req);
    return true;
}

std::string
encodeRequest(const ServeRequest &req)
{
    std::ostringstream os;
    bool first = true;
    appendUint(os, first, "id", req.id);
    appendString(os, first, "tenant", req.tenant);
    appendString(os, first, "dataset", req.dataset);
    appendString(os, first, "model", req.model);
    appendString(os, first, "engine", req.engine);
    appendString(os, first, "scale", graph::tierName(req.tier));
    appendUint(os, first, "depth", req.depth);
    appendUint(os, first, "seed", req.seed);
    if (req.deadlineRelUs > 0)
        appendUint(os, first, "deadline_ms",
                   static_cast<uint64_t>(req.deadlineRelUs / 1000));
    os << "}";
    return os.str();
}

std::string
encodeShutdown()
{
    return "{\"cmd\":\"shutdown\"}";
}

std::string
encodePing()
{
    return "{\"cmd\":\"ping\"}";
}

std::string
encodeResponse(const RequestRecord &record)
{
    std::ostringstream os;
    bool first = true;
    appendUint(os, first, "id", record.request.id);
    appendString(os, first, "status", statusName(record.status));
    appendString(os, first, "tenant", record.request.tenant);
    appendString(os, first, "dataset", record.request.dataset);
    appendString(os, first, "model", record.request.model);
    appendString(os, first, "engine", record.request.engine);
    appendString(os, first, "scale", graph::tierName(record.request.tier));
    appendUint(os, first, "depth", record.request.depth);
    appendUint(os, first, "seed", record.request.seed);
    appendDouble(os, first, "queue_ms", record.queueMs());
    appendDouble(os, first, "total_ms", record.totalMs());
    if (record.status == RequestStatus::Completed) {
        appendDouble(os, first, "exec_ms", record.execMs);
        appendUint(os, first, "cycles", record.digest.cycles);
        appendUint(os, first, "dram_bytes", record.digest.dramBytes);
        appendUint(os, first, "mac_ops", record.digest.macOps);
        appendUint(os, first, "cache_hits", record.digest.cacheHits);
        appendUint(os, first, "cache_misses", record.digest.cacheMisses);
    }
    if (record.status == RequestStatus::Error)
        appendString(os, first, "error", record.error);
    os << "}";
    return os.str();
}

bool
parseResponse(const std::string &line, RequestRecord &out, std::string *error)
{
    report::JsonValue root;
    std::string parseError;
    if (!report::parseJson(line, root, &parseError))
        return fail(error, "malformed JSON: " + parseError);
    if (!root.isObject())
        return fail(error, "expected a JSON object");

    RequestRecord rec;
    bool haveStatus = false;
    double queueMs = 0.0, totalMs = 0.0;
    for (const auto &[key, value] : root.obj) {
        if (key == "id") {
            if (!asUint(value, rec.request.id))
                return fail(error, "id must be a non-negative integer");
        } else if (key == "status") {
            if (!value.isString() ||
                !statusFromName(value.str, rec.status))
                return fail(error, "unknown status");
            haveStatus = true;
        } else if (key == "tenant") {
            rec.request.tenant = value.str;
        } else if (key == "dataset") {
            rec.request.dataset = value.str;
        } else if (key == "model") {
            rec.request.model = value.str;
        } else if (key == "engine") {
            rec.request.engine = value.str;
        } else if (key == "scale") {
            if (!value.isString() ||
                !tierFromWire(value.str, rec.request.tier))
                return fail(error, "bad scale");
        } else if (key == "depth") {
            uint64_t depth = 0;
            if (!asUint(value, depth))
                return fail(error, "bad depth");
            rec.request.depth = static_cast<uint32_t>(depth);
        } else if (key == "seed") {
            if (!asUint(value, rec.request.seed))
                return fail(error, "bad seed");
        } else if (key == "queue_ms") {
            queueMs = value.number;
        } else if (key == "total_ms") {
            totalMs = value.number;
        } else if (key == "exec_ms") {
            rec.execMs = value.number;
        } else if (key == "cycles") {
            if (!asUint(value, rec.digest.cycles))
                return fail(error, "bad cycles");
        } else if (key == "dram_bytes") {
            if (!asUint(value, rec.digest.dramBytes))
                return fail(error, "bad dram_bytes");
        } else if (key == "mac_ops") {
            if (!asUint(value, rec.digest.macOps))
                return fail(error, "bad mac_ops");
        } else if (key == "cache_hits") {
            if (!asUint(value, rec.digest.cacheHits))
                return fail(error, "bad cache_hits");
        } else if (key == "cache_misses") {
            if (!asUint(value, rec.digest.cacheMisses))
                return fail(error, "bad cache_misses");
        } else if (key == "error") {
            rec.error = value.str;
        } else {
            return fail(error, "unknown response key '" + key + "'");
        }
    }
    if (!haveStatus)
        return fail(error, "missing required key 'status'");
    // The client has no server timestamps; reconstruct them so the
    // record's derived queueMs()/totalMs() return the wire values
    // (arrival pinned at 0 on the client's copy).
    rec.request.arrivalUs = 0;
    rec.dispatchUs = static_cast<Micros>(std::llround(queueMs * 1000.0));
    rec.completionUs = static_cast<Micros>(std::llround(totalMs * 1000.0));
    out = std::move(rec);
    return true;
}

std::string
digestLine(const ServeRequest &req, const InferenceDigest &digest)
{
    std::ostringstream os;
    os << "tenant=" << req.tenant << " id=" << req.id
       << " dataset=" << req.dataset << " model=" << req.model
       << " engine=" << req.engine << " scale=" << graph::tierName(req.tier)
       << " depth=" << req.depth << " seed=" << req.seed
       << " cycles=" << digest.cycles << " dram_bytes=" << digest.dramBytes
       << " mac_ops=" << digest.macOps << " cache_hits=" << digest.cacheHits
       << " cache_misses=" << digest.cacheMisses;
    return os.str();
}

} // namespace grow::serve
