/**
 * @file
 * Line-delimited JSON wire protocol of the serving daemon.
 *
 * One JSON object per newline-terminated line, both directions, over
 * a Unix-domain socket. Parsing reuses the dependency-free strict
 * parser from src/report/json.hpp; numbers ride as JSON numbers
 * (exact for anything below 2^53 -- simulated cycle counts included).
 *
 * Client -> daemon:
 *   {"id":1,"tenant":"t0","dataset":"cora","model":"gcn",
 *    "engine":"grow","scale":"mini","depth":2,"seed":7,
 *    "deadline_ms":250}
 *   {"cmd":"shutdown"}          -- graceful shutdown (drain + report)
 *   {"cmd":"ping"}              -- liveness probe
 *
 * Daemon -> client (response, echoing identity):
 *   {"id":1,"status":"ok","tenant":"t0","dataset":"cora", ...,
 *    "queue_ms":1.5,"exec_ms":40.2,"total_ms":41.7,
 *    "cycles":123,"dram_bytes":456,"mac_ops":789,
 *    "cache_hits":10,"cache_misses":2}
 *   {"id":1,"status":"rejected_queue_full", ...}
 *   {"id":1,"status":"error","error":"unknown dataset 'corra'"}
 *   {"status":"shutting_down"} / {"status":"pong"}  -- cmd replies
 *
 * Unknown keys are rejected (same philosophy as CliArgs::
 * requireKnown: a typoed key must fail loudly, not silently serve
 * defaults).
 */
#pragma once

#include <string>

#include "serve/request.hpp"

namespace grow::serve {

/** What one client line asked for. */
struct ClientLine
{
    enum class Kind { Request, Shutdown, Ping };
    Kind kind = Kind::Request;
    ServeRequest request; ///< Kind::Request only
};

/**
 * Parse one client line. Returns false with @p error set on malformed
 * JSON, an unknown key, a missing required field (id, dataset) or a
 * bad field type -- the daemon answers such lines with a protocol
 * error instead of dying.
 */
bool parseClientLine(const std::string &line, ClientLine &out,
                     std::string *error);

/** Serialize @p req as a request line (client side; no newline). */
std::string encodeRequest(const ServeRequest &req);

/** The shutdown/ping control lines. */
std::string encodeShutdown();
std::string encodePing();

/** Serialize @p record as a response line (daemon side; no newline). */
std::string encodeResponse(const RequestRecord &record);

/**
 * Parse a response line back into a record (client side). Timing and
 * digest fields are restored exactly (shortest-round-trip numbers).
 */
bool parseResponse(const std::string &line, RequestRecord &out,
                   std::string *error);

/**
 * Canonical one-line digest of a completed request, the byte-identity
 * currency of the CI serving gate: daemon-side records, client-side
 * response echoes and direct in-process execution of the same request
 * must all produce identical lines. Integer-exact fields only -- no
 * floating timing, nothing host-dependent.
 */
std::string digestLine(const ServeRequest &req,
                       const InferenceDigest &digest);

} // namespace grow::serve
