#include "serve/queue.hpp"

#include <utility>

#include "util/logging.hpp"

namespace grow::serve {

RequestQueue::RequestQueue(AdmissionConfig config) : config_(config)
{
    GROW_ASSERT(config_.maxDepth >= 1,
                "RequestQueue needs maxDepth >= 1");
}

Admission
RequestQueue::push(ServeRequest r, Micros now)
{
    std::lock_guard<std::mutex> lk(mu_);
    if (closed_)
        return Admission::Closed;
    if (depth_ >= config_.maxDepth)
        return Admission::QueueFull;
    if (config_.byteBudget > 0 &&
        queuedBytes_ + inflightBytes_ + r.costBytes > config_.byteBudget)
        return Admission::OverByteBudget;
    r.arrivalUs = now;
    if (r.deadlineUs == 0) {
        if (r.deadlineRelUs > 0)
            r.deadlineUs = now + r.deadlineRelUs;
        else if (config_.defaultDeadlineUs > 0)
            r.deadlineUs = now + config_.defaultDeadlineUs;
    }
    queuedBytes_ += r.costBytes;
    ++depth_;
    tenants_[r.tenant].push_back(std::move(r));
    return Admission::Admitted;
}

bool
RequestQueue::pop(Micros now, ServeRequest &out,
                  std::vector<ServeRequest> &expired)
{
    std::lock_guard<std::mutex> lk(mu_);
    while (depth_ > 0) {
        // Fair share: the first non-empty tenant strictly after the
        // cursor, wrapping -- a skewed tenant's backlog waits behind
        // one request from every other active tenant.
        auto it = tenants_.upper_bound(cursor_);
        if (it == tenants_.end())
            it = tenants_.begin();
        ServeRequest r = std::move(it->second.front());
        it->second.pop_front();
        cursor_ = it->first;
        if (it->second.empty())
            tenants_.erase(it);
        --depth_;
        queuedBytes_ -= r.costBytes;
        if (r.deadlineUs > 0 && now > r.deadlineUs) {
            // Cancelled before dispatch: bytes released, slot freed.
            expired.push_back(std::move(r));
            continue;
        }
        inflightBytes_ += r.costBytes;
        out = std::move(r);
        return true;
    }
    return false;
}

void
RequestQueue::onComplete(const ServeRequest &r)
{
    std::lock_guard<std::mutex> lk(mu_);
    GROW_ASSERT(inflightBytes_ >= r.costBytes,
                "onComplete() without a matching pop()");
    inflightBytes_ -= r.costBytes;
}

void
RequestQueue::close()
{
    std::lock_guard<std::mutex> lk(mu_);
    closed_ = true;
}

bool
RequestQueue::closed() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return closed_;
}

uint32_t
RequestQueue::depth() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return depth_;
}

uint64_t
RequestQueue::pendingBytes() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return queuedBytes_ + inflightBytes_;
}

uint32_t
RequestQueue::activeTenants() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return static_cast<uint32_t>(tenants_.size());
}

} // namespace grow::serve
