/**
 * @file
 * Bounded multi-tenant request queue with admission control.
 *
 * The single waiting room of the serving layer, shared by the socket
 * daemon (many producer connections, one dispatcher consumer) and the
 * deterministic virtual-clock loop (one thread wearing both hats):
 *
 *  - Admission (push): a request is rejected -- with a reason the
 *    caller turns into a protocol response -- when the bounded queue
 *    sits at maxDepth or when its cost estimate would push the queued
 *    + in-flight byte total past the budget. Backpressure is explicit
 *    rejection, never silent blocking: a client that keeps sending
 *    into an overloaded daemon gets told so per request.
 *  - Deadlines (pop): a request whose absolute deadline has passed is
 *    cancelled *before* dispatch and returned on the expired list --
 *    simulating a stale inference nobody will read wastes an engine.
 *  - Fair share (pop): requests are held in per-tenant FIFOs and
 *    popped round-robin over the tenants with pending work (ordered
 *    by tenant name, cursor after the last served), so a tenant
 *    flooding the queue delays its own backlog, not everyone else's.
 *    Within a tenant, arrival order is preserved.
 *
 * Byte accounting: an admitted request's costBytes stays counted from
 * admission until the caller reports onComplete() (dispatch moves it
 * from queued to in-flight, it does not release it); expiry and
 * rejection release immediately. All member functions are
 * thread-safe; time is always passed in by the caller, so the queue
 * itself works identically on the real and the virtual clock.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "serve/request.hpp"

namespace grow::serve {

/** Admission-control knobs. */
struct AdmissionConfig
{
    /** Queued-request cap (admission rejects past it; >= 1). */
    uint32_t maxDepth = 64;
    /** Queued + in-flight cost-byte budget (0 = unbounded). */
    uint64_t byteBudget = 0;
    /**
     * Deadline applied at admission to requests that carry none
     * (relative to arrival; 0 = no default, such requests never
     * expire).
     */
    Micros defaultDeadlineUs = 0;
};

class RequestQueue
{
  public:
    explicit RequestQueue(AdmissionConfig config);

    /**
     * Admit or reject @p r at time @p now. On admission the request is
     * stamped (arrivalUs = now; a missing deadline gets the config
     * default) and owned by the queue until pop() hands it back.
     */
    Admission push(ServeRequest r, Micros now);

    /**
     * Pop the next dispatchable request in fair-share order at time
     * @p now. Requests found past their deadline are moved onto
     * @p expired (their bytes released) instead of being returned.
     * Returns false when nothing dispatchable remains.
     */
    bool pop(Micros now, ServeRequest &out,
             std::vector<ServeRequest> &expired);

    /**
     * Release the in-flight bytes of a dispatched request. Must be
     * called exactly once per successful pop(), when the request
     * completes (or fails) execution.
     */
    void onComplete(const ServeRequest &r);

    /**
     * Stop admitting (push returns Closed); queued requests still
     * drain through pop(). The graceful-shutdown sequence is: close(),
     * drain via pop()/onComplete(), flush the final report.
     */
    void close();

    bool closed() const;

    /** Queued requests (excludes in-flight). */
    uint32_t depth() const;

    /** Queued + in-flight cost bytes currently counted. */
    uint64_t pendingBytes() const;

    /** Tenants with queued requests. */
    uint32_t activeTenants() const;

    const AdmissionConfig &config() const { return config_; }

  private:
    AdmissionConfig config_;
    mutable std::mutex mu_;
    /** Per-tenant FIFOs, ordered by tenant name (fair-share order). */
    std::map<std::string, std::deque<ServeRequest>> tenants_;
    /** Tenant served last; the next pop starts strictly after it. */
    std::string cursor_;
    uint32_t depth_ = 0;
    uint64_t queuedBytes_ = 0;
    uint64_t inflightBytes_ = 0;
    bool closed_ = false;
};

} // namespace grow::serve
