#include "serve/request.hpp"

#include "util/logging.hpp"

namespace grow::serve {

const char *
statusName(RequestStatus status)
{
    switch (status) {
    case RequestStatus::Completed:
        return "ok";
    case RequestStatus::RejectedQueueFull:
        return "rejected_queue_full";
    case RequestStatus::RejectedBytes:
        return "rejected_byte_budget";
    case RequestStatus::RejectedClosed:
        return "rejected_shutdown";
    case RequestStatus::Expired:
        return "expired";
    case RequestStatus::Error:
        return "error";
    }
    panic("unhandled RequestStatus");
}

bool
statusFromName(const std::string &name, RequestStatus &out)
{
    for (RequestStatus s :
         {RequestStatus::Completed, RequestStatus::RejectedQueueFull,
          RequestStatus::RejectedBytes, RequestStatus::RejectedClosed,
          RequestStatus::Expired, RequestStatus::Error}) {
        if (name == statusName(s)) {
            out = s;
            return true;
        }
    }
    return false;
}

RequestStatus
rejectionStatus(Admission a)
{
    switch (a) {
    case Admission::QueueFull:
        return RequestStatus::RejectedQueueFull;
    case Admission::OverByteBudget:
        return RequestStatus::RejectedBytes;
    case Admission::Closed:
        return RequestStatus::RejectedClosed;
    case Admission::Admitted:
        break;
    }
    panic("rejectionStatus() called on an admitted request");
}

} // namespace grow::serve
