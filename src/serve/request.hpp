/**
 * @file
 * Request/response types of the GROW serving layer.
 *
 * A ServeRequest names one multi-tenant inference job -- a (dataset,
 * model, tier, engine config) tuple plus the per-request seed that
 * stands in for fresh user input -- with the admission metadata the
 * queue needs (tenant, arrival time, absolute deadline, cost
 * estimate). A RequestRecord is the fully resolved outcome: admission
 * verdict or inference digest plus the latency breakdown, the unit
 * every serving metric (p50/p99, admission counters, byte-identity
 * diffs) is derived from.
 *
 * Time is kept as integer microseconds on a serving-layer clock that
 * is either the host's steady clock (the socket daemon) or a virtual
 * clock advanced by the deterministic event loop (serve/virtual_serve
 * .hpp) -- the queue, metrics and records never know which.
 */
#pragma once

#include <cstdint>
#include <string>

#include "graph/datasets.hpp"

namespace grow::serve {

/** Serving-layer timestamp/duration: integer microseconds. */
using Micros = int64_t;

/** Milliseconds (double) from a Micros duration. */
inline double
millis(Micros us)
{
    return static_cast<double>(us) / 1000.0;
}

/** Admission verdict for one push into the request queue. */
enum class Admission {
    Admitted,
    QueueFull,       ///< bounded queue at maxDepth
    OverByteBudget,  ///< queued + in-flight cost bytes past the budget
    Closed,          ///< queue closed (graceful shutdown in progress)
};

/** Final disposition of one request. */
enum class RequestStatus {
    Completed,          ///< inference ran; digest is valid
    RejectedQueueFull,  ///< admission: queue depth cap
    RejectedBytes,      ///< admission: in-flight byte budget
    RejectedClosed,     ///< admission: daemon shutting down
    Expired,            ///< deadline passed before dispatch
    Error,              ///< invalid request or execution failure
};

/** Wire name of @p status ("ok", "rejected_queue_full", ...). */
const char *statusName(RequestStatus status);

/** Inverse of statusName(); returns false on an unknown name. */
bool statusFromName(const std::string &name, RequestStatus &out);

/** The rejection status matching an admission verdict (not Admitted). */
RequestStatus rejectionStatus(Admission a);

/** One serving request. */
struct ServeRequest
{
    /** Client-chosen id, echoed in the response (unique per client). */
    uint64_t id = 0;
    std::string tenant = "default";
    std::string dataset;
    std::string model = "gcn";
    std::string engine = "grow";
    graph::ScaleTier tier = graph::ScaleTier::Mini;
    uint32_t depth = 2;     ///< model depth (layers)
    uint64_t seed = 7;      ///< per-request feature seed
    /** Arrival timestamp on the serving clock (stamped at admission). */
    Micros arrivalUs = 0;
    /**
     * Absolute deadline on the serving clock; 0 = none. A request
     * past its deadline is cancelled before dispatch, never after.
     * Stamped at admission from deadlineRelUs (the wire/schedule form)
     * or the queue's default.
     */
    Micros deadlineUs = 0;
    /** Relative deadline (wire `deadline_ms`, schedule form); 0 =
     *  none. Converted to deadlineUs when the queue admits. */
    Micros deadlineRelUs = 0;
    /**
     * Admission cost estimate (operand footprint of the job,
     * serve::estimateRequestBytes) counted against the in-flight byte
     * budget from admission until completion.
     */
    uint64_t costBytes = 0;
    /** Daemon-internal dispatch ticket (callback routing); not wire. */
    uint64_t ticket = 0;
};

/**
 * The deterministic core of one completed inference: every field is a
 * bit-exact function of the request tuple, so a daemon-served request
 * and a direct gcn::runInference() of the same tuple must produce
 * identical digests (the CI byte-identity gate).
 */
struct InferenceDigest
{
    uint64_t cycles = 0;      ///< simulated accelerator cycles
    uint64_t dramBytes = 0;   ///< total DRAM traffic
    uint64_t macOps = 0;
    uint64_t cacheHits = 0;   ///< HDN cache hits
    uint64_t cacheMisses = 0;

    /** Simulated service latency at the 1 GHz clock, in ms. */
    double simulatedMs() const
    {
        return static_cast<double>(cycles) / 1e6;
    }
};

/** Fully resolved outcome of one request. */
struct RequestRecord
{
    ServeRequest request;
    RequestStatus status = RequestStatus::Error;
    /** Dispatch/completion timestamps on the serving clock (valid for
     *  Completed; completionUs doubles as the decision time for
     *  rejections and expiries). */
    Micros dispatchUs = 0;
    Micros completionUs = 0;
    /** Host- or virtual-clock execution time in ms (Completed only).
     *  The socket daemon measures host wall-clock; the virtual loop
     *  uses the simulated service time -- deterministic. */
    double execMs = 0.0;
    InferenceDigest digest;
    std::string error; ///< Error status only

    /** Time spent queued before dispatch (ms). */
    double queueMs() const
    {
        return status == RequestStatus::Completed
                   ? millis(dispatchUs - request.arrivalUs)
                   : millis(completionUs - request.arrivalUs);
    }

    /** Arrival-to-resolution latency (ms). */
    double totalMs() const
    {
        return millis(completionUs - request.arrivalUs);
    }
};

} // namespace grow::serve
