#include "serve/schedule.hpp"

#include <sstream>

#include "util/logging.hpp"
#include "util/random.hpp"

namespace grow::serve {

std::vector<ScheduledRequest>
buildSchedule(const ScheduleConfig &config)
{
    GROW_ASSERT(!config.tenants.empty(), "schedule needs >= 1 tenant");
    GROW_ASSERT(!config.datasets.empty(), "schedule needs >= 1 dataset");
    GROW_ASSERT(!config.engines.empty(), "schedule needs >= 1 engine");
    GROW_ASSERT(config.meanGapUs >= 2, "meanGapUs must be >= 2");

    uint64_t totalWeight = 0;
    for (const TenantMix &t : config.tenants) {
        GROW_ASSERT(t.weight > 0, "tenant weight must be positive");
        totalWeight += t.weight;
    }

    Rng rng(config.seed);
    std::vector<ScheduledRequest> out;
    out.reserve(config.count);
    Micros now = 0;
    for (uint32_t i = 0; i < config.count; ++i) {
        // Integer gap in [mean/2, 3*mean/2): deterministic timeline
        // with the requested mean, no libm involved.
        now += config.meanGapUs / 2 +
               static_cast<Micros>(
                   rng.bounded(static_cast<uint64_t>(config.meanGapUs)));

        ScheduledRequest sr;
        sr.atUs = now;
        ServeRequest &r = sr.request;
        r.id = i + 1;
        uint64_t pick = rng.bounded(totalWeight);
        for (const TenantMix &t : config.tenants) {
            if (pick < t.weight) {
                r.tenant = t.name;
                break;
            }
            pick -= t.weight;
        }
        r.dataset = config.datasets[rng.bounded(config.datasets.size())];
        r.engine = config.engines[rng.bounded(config.engines.size())];
        r.model = config.model;
        r.tier = config.tier;
        r.depth = config.depth;
        r.seed = config.featureSeedBase + r.id;
        r.deadlineRelUs = config.deadlineRelUs;
        out.push_back(std::move(sr));
    }
    return out;
}

bool
parseTenantMix(const std::string &spec, std::vector<TenantMix> &out,
               std::string *error)
{
    std::vector<TenantMix> parsed;
    std::istringstream is(spec);
    std::string item;
    while (std::getline(is, item, ',')) {
        if (item.empty())
            continue;
        TenantMix mix;
        size_t colon = item.find(':');
        mix.name = item.substr(0, colon);
        if (mix.name.empty()) {
            if (error)
                *error = "empty tenant name in '" + spec + "'";
            return false;
        }
        if (colon != std::string::npos) {
            const std::string w = item.substr(colon + 1);
            char *end = nullptr;
            unsigned long v = std::strtoul(w.c_str(), &end, 10);
            if (w.empty() || *end != '\0' || v == 0) {
                if (error)
                    *error = "bad tenant weight '" + w + "'";
                return false;
            }
            mix.weight = static_cast<uint32_t>(v);
        }
        parsed.push_back(std::move(mix));
    }
    if (parsed.empty()) {
        if (error)
            *error = "empty tenant mix '" + spec + "'";
        return false;
    }
    out = std::move(parsed);
    return true;
}

} // namespace grow::serve
