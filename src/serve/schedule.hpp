/**
 * @file
 * Seeded deterministic request schedules for the serving layer.
 *
 * A schedule is the serving analogue of a synthetic dataset: an exact,
 * replayable list of (arrival time, request) pairs derived from one
 * 64-bit seed. The virtual-clock loop replays it in simulated time,
 * serve_load replays it against a live daemon in real time, and the
 * direct mode executes the same requests with no daemon at all --
 * because all three draw the identical schedule, their digests must
 * agree byte for byte (the CI equivalence gate).
 *
 * Arrival gaps are integer microseconds drawn uniformly from
 * [meanGapUs/2, 3*meanGapUs/2) -- no floating point in the timeline,
 * so the schedule is bit-stable across libm implementations. Tenants
 * are drawn by integer weight, which is how the fairness tests build
 * skewed mixes (one tenant with weight 8 against two with weight 1).
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/request.hpp"

namespace grow::serve {

/** One tenant in the mix and its relative arrival weight. */
struct TenantMix
{
    std::string name = "default";
    uint32_t weight = 1;
};

/** Knobs for buildSchedule(); every field defaulted and deterministic. */
struct ScheduleConfig
{
    uint64_t seed = 7;       ///< schedule seed (tenants, gaps, picks)
    uint32_t count = 32;     ///< number of requests
    Micros meanGapUs = 2000; ///< mean inter-arrival gap
    std::vector<TenantMix> tenants = {{"default", 1}};
    std::vector<std::string> datasets = {"cora"};
    std::vector<std::string> engines = {"grow"};
    std::string model = "gcn";
    graph::ScaleTier tier = graph::ScaleTier::Mini;
    uint32_t depth = 2;
    /** Per-request feature seed = featureSeedBase + request id, so a
     *  replay of the same schedule hits the same simulator inputs. */
    uint64_t featureSeedBase = 7;
    Micros deadlineRelUs = 0; ///< relative deadline stamped on each request
};

/** One scheduled arrival. */
struct ScheduledRequest
{
    Micros atUs = 0;
    ServeRequest request;
};

/**
 * Materialise the schedule for @p config: @p config.count requests
 * with ids 1..count, arrival times strictly increasing from the first
 * gap, tenants drawn by weight, datasets/engines drawn uniformly.
 */
std::vector<ScheduledRequest> buildSchedule(const ScheduleConfig &config);

/**
 * Parse a tenant mix spec "name:weight,name:weight,..." (weight
 * defaults to 1 when omitted). Returns false on a malformed spec.
 */
bool parseTenantMix(const std::string &spec, std::vector<TenantMix> &out,
                    std::string *error);

} // namespace grow::serve
