#include "serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "serve/protocol.hpp"
#include "util/logging.hpp"
#include "util/wallclock.hpp"
#include "util/work_pool.hpp"

namespace grow::serve {

namespace {

/** Poll interval for loops that must notice stop_ without an event. */
constexpr int kPollMs = 50;

/** Write all of @p line plus a newline; false on a broken pipe. */
bool
writeLine(int fd, const std::string &line)
{
    std::string framed = line;
    framed.push_back('\n');
    size_t off = 0;
    while (off < framed.size()) {
        ssize_t n = ::send(fd, framed.data() + off, framed.size() - off,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<size_t>(n);
    }
    return true;
}

} // namespace

ServeDaemon::ServeDaemon(const Executor &executor, ServerConfig config,
                         ServeMetrics &metrics)
    : executor_(executor), config_(std::move(config)), metrics_(metrics),
      queue_(config_.admission), epoch_(std::chrono::steady_clock::now())
{
    GROW_ASSERT(config_.maxInflight >= 1,
                "ServeDaemon needs maxInflight >= 1");
}

ServeDaemon::~ServeDaemon()
{
    requestStop();
    wait();
}

Micros
ServeDaemon::now() const
{
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

bool
ServeDaemon::start(std::string *error)
{
    if (config_.socketPath.size() >= sizeof(sockaddr_un{}.sun_path)) {
        if (error)
            *error = "socket path too long: " + config_.socketPath;
        return false;
    }
    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
        if (error)
            *error = std::string("socket(): ") + std::strerror(errno);
        return false;
    }
    ::unlink(config_.socketPath.c_str());
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, config_.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0) {
        if (error)
            *error = "bind(" + config_.socketPath +
                     "): " + std::strerror(errno);
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    if (::listen(listenFd_, 64) < 0) {
        if (error)
            *error = std::string("listen(): ") + std::strerror(errno);
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    acceptThread_ = std::thread([this] { acceptLoop(); });
    dispatchThread_ = std::thread([this] { dispatchLoop(); });
    return true;
}

void
ServeDaemon::requestStop()
{
    bool expected = false;
    if (!stop_.compare_exchange_strong(expected, true))
        return;
    queue_.close();
    cv_.notify_all();
}

void
ServeDaemon::wait()
{
    if (acceptThread_.joinable())
        acceptThread_.join();
    if (dispatchThread_.joinable())
        dispatchThread_.join();
    // Drain finished; connection readers exit on stop_ or EOF.
    std::vector<std::thread> readers;
    {
        std::lock_guard<std::mutex> lk(connThreadsMu_);
        readers.swap(connThreads_);
    }
    for (std::thread &t : readers)
        t.join();
    std::lock_guard<std::mutex> lk(mu_);
    for (auto &[ticket, conn] : conns_) {
        (void)ticket;
        if (conn->fd >= 0) {
            ::close(conn->fd);
            conn->fd = -1;
        }
    }
    conns_.clear();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        ::unlink(config_.socketPath.c_str());
        listenFd_ = -1;
    }
}

std::vector<RequestRecord>
ServeDaemon::records() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return records_;
}

void
ServeDaemon::acceptLoop()
{
    while (!stop_.load(std::memory_order_acquire)) {
        pollfd pfd{listenFd_, POLLIN, 0};
        int rc = ::poll(&pfd, 1, kPollMs);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            logError(std::string("serve: poll(): ") +
                     std::strerror(errno));
            break;
        }
        if (rc == 0 || !(pfd.revents & POLLIN))
            continue;
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            logError(std::string("serve: accept(): ") +
                     std::strerror(errno));
            break;
        }
        auto conn = std::make_shared<Conn>();
        conn->fd = fd;
        uint64_t ticket;
        {
            std::lock_guard<std::mutex> lk(mu_);
            ticket = nextTicket_++;
            conns_[ticket] = conn;
        }
        // The ticket travels on every request from this connection so
        // responses route back to the right socket.
        std::lock_guard<std::mutex> lk(connThreadsMu_);
        connThreads_.emplace_back([this, conn, ticket]() mutable {
            connectionLoop(std::move(conn), ticket);
        });
    }
}

void
ServeDaemon::connectionLoop(std::shared_ptr<Conn> conn, uint64_t myTicket)
{
    std::string buffer;
    char chunk[4096];
    bool eof = false;
    while (!eof && !stop_.load(std::memory_order_acquire)) {
        pollfd pfd{conn->fd, POLLIN, 0};
        int rc = ::poll(&pfd, 1, kPollMs);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (rc == 0 || !(pfd.revents & (POLLIN | POLLHUP)))
            continue;
        ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (n == 0) {
            eof = true;
            break;
        }
        buffer.append(chunk, static_cast<size_t>(n));
        size_t nl;
        while ((nl = buffer.find('\n')) != std::string::npos) {
            std::string line = buffer.substr(0, nl);
            buffer.erase(0, nl + 1);
            if (line.empty())
                continue;

            ClientLine parsed;
            std::string error;
            if (!parseClientLine(line, parsed, &error)) {
                metrics_.recordProtocolError();
                RequestRecord rec;
                rec.status = RequestStatus::Error;
                rec.error = "protocol: " + error;
                std::lock_guard<std::mutex> wl(conn->writeMu);
                writeLine(conn->fd, encodeResponse(rec));
                continue;
            }
            if (parsed.kind == ClientLine::Kind::Ping) {
                std::lock_guard<std::mutex> wl(conn->writeMu);
                writeLine(conn->fd, "{\"cmd\":\"pong\"}");
                continue;
            }
            if (parsed.kind == ClientLine::Kind::Shutdown) {
                {
                    std::lock_guard<std::mutex> wl(conn->writeMu);
                    writeLine(conn->fd, "{\"cmd\":\"shutdown_ack\"}");
                }
                requestStop();
                continue;
            }

            ServeRequest req = parsed.request;
            req.ticket = myTicket;
            std::string verror;
            if (!executor_.validate(req, &verror)) {
                RequestRecord rec;
                rec.request = std::move(req);
                rec.request.arrivalUs = now();
                rec.completionUs = rec.request.arrivalUs;
                rec.status = RequestStatus::Error;
                rec.error = verror;
                respond(rec);
                finishRecord(std::move(rec));
                continue;
            }
            const Micros arrival = now();
            const Admission verdict = queue_.push(req, arrival);
            metrics_.recordAdmission(verdict, queue_.depth(), arrival);
            if (verdict != Admission::Admitted) {
                RequestRecord rec;
                rec.request = std::move(req);
                rec.request.arrivalUs = arrival;
                rec.completionUs = arrival;
                rec.status = rejectionStatus(verdict);
                respond(rec);
                finishRecord(std::move(rec));
                continue;
            }
            cv_.notify_one();
        }
    }

    if (eof) {
        // Client gone: drop the route so late responses are skipped.
        std::lock_guard<std::mutex> lk(mu_);
        auto it = conns_.find(myTicket);
        if (it != conns_.end()) {
            std::lock_guard<std::mutex> wl(it->second->writeMu);
            ::close(it->second->fd);
            it->second->fd = -1;
            conns_.erase(it);
        }
    }
}

void
ServeDaemon::dispatchLoop()
{
    for (;;) {
        {
            std::unique_lock<std::mutex> lk(mu_);
            cv_.wait_for(lk, std::chrono::milliseconds(kPollMs), [this] {
                return stop_.load(std::memory_order_acquire) ||
                       (queue_.depth() > 0 &&
                        inflight_ < config_.maxInflight);
            });
            if (stop_.load(std::memory_order_acquire) &&
                queue_.depth() == 0 && inflight_ == 0)
                return;
        }
        for (;;) {
            {
                std::lock_guard<std::mutex> lk(mu_);
                if (inflight_ >= config_.maxInflight)
                    break;
            }
            ServeRequest req;
            std::vector<ServeRequest> expired;
            const Micros t = now();
            const bool got = queue_.pop(t, req, expired);
            for (ServeRequest &e : expired) {
                RequestRecord rec;
                rec.request = std::move(e);
                rec.status = RequestStatus::Expired;
                rec.completionUs = t;
                respond(rec);
                finishRecord(std::move(rec));
            }
            metrics_.sampleQueueDepth(t, queue_.depth());
            if (!got)
                break;
            {
                std::lock_guard<std::mutex> lk(mu_);
                ++inflight_;
            }
            // Copy-capturing keeps the lambda copyable (std::function).
            auto task = [this, req]() { execute(req); };
            if (!config_.pool || !config_.pool->trySubmit(task))
                task();
        }
    }
}

void
ServeDaemon::execute(ServeRequest req)
{
    RequestRecord rec;
    rec.dispatchUs = now();
    ExecResult er = executor_.run(req);
    queue_.onComplete(req);
    rec.request = std::move(req);
    rec.completionUs = now();
    if (er.ok) {
        rec.status = RequestStatus::Completed;
        rec.digest = er.digest;
        rec.execMs = er.hostMs;
    } else {
        rec.status = RequestStatus::Error;
        rec.error = er.error;
    }
    respond(rec);
    finishRecord(std::move(rec));
    {
        std::lock_guard<std::mutex> lk(mu_);
        GROW_ASSERT(inflight_ > 0, "execute() without dispatch");
        --inflight_;
    }
    cv_.notify_one();
}

void
ServeDaemon::respond(const RequestRecord &record)
{
    std::shared_ptr<Conn> conn;
    {
        std::lock_guard<std::mutex> lk(mu_);
        auto it = conns_.find(record.request.ticket);
        if (it != conns_.end())
            conn = it->second;
    }
    if (!conn)
        return; // client disconnected; outcome still recorded
    std::lock_guard<std::mutex> wl(conn->writeMu);
    if (conn->fd >= 0)
        writeLine(conn->fd, encodeResponse(record));
}

void
ServeDaemon::finishRecord(RequestRecord record)
{
    metrics_.recordOutcome(record);
    std::lock_guard<std::mutex> lk(mu_);
    records_.push_back(std::move(record));
}

} // namespace grow::serve
