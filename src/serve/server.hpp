/**
 * @file
 * The GROW serving daemon: a persistent Unix-domain-socket server
 * multiplexing multi-tenant inference requests onto the simulator.
 *
 * Wire protocol (serve/protocol.hpp): line-delimited JSON, one request
 * or command object per line, one response object per resolved
 * request. Every connection is read by its own thread; parsed requests
 * are validated (non-fatally -- a malformed or unknown request gets an
 * error response, never a dead daemon), costed, and pushed through the
 * bounded multi-tenant RequestQueue. Admission failures (queue depth,
 * in-flight byte budget, shutdown) are answered immediately with a
 * reject-with-reason response -- backpressure the client can act on.
 *
 * A single dispatcher thread pops admitted requests in fair-share
 * order and hands execution to the process-wide util::WorkPool via
 * trySubmit(); when the pool has no workers (single-core hosts,
 * shutdown) the dispatcher runs the job inline. In-flight concurrency
 * is bounded by maxInflight. Deadline-expired requests are cancelled
 * at dispatch time and answered with status "expired".
 *
 * Graceful shutdown (protocol `{"cmd":"shutdown"}` or requestStop()):
 * the queue closes (new pushes answered rejected_shutdown), the
 * dispatcher drains everything already admitted, in-flight executions
 * finish, responses flush, then the listener stops. The daemon's
 * RequestRecord log and ServeMetrics survive shutdown so main() can
 * emit reports and digest lines afterwards.
 */
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/executor.hpp"
#include "serve/metrics.hpp"
#include "serve/queue.hpp"

namespace grow::util {
class WorkPool;
}

namespace grow::serve {

/** Daemon knobs. */
struct ServerConfig
{
    std::string socketPath = "grow_serve.sock";
    AdmissionConfig admission;
    /** Max requests executing concurrently (>=1). */
    uint32_t maxInflight = 1;
    /** Pool for execution; null = always inline on the dispatcher. */
    util::WorkPool *pool = nullptr;
};

class ServeDaemon
{
  public:
    ServeDaemon(const Executor &executor, ServerConfig config,
                ServeMetrics &metrics);
    ~ServeDaemon();

    ServeDaemon(const ServeDaemon &) = delete;
    ServeDaemon &operator=(const ServeDaemon &) = delete;

    /** Bind + listen + spawn accept/dispatch threads. False (with
     *  @p error) when the socket cannot be bound. */
    bool start(std::string *error);

    /** Begin graceful shutdown (idempotent, safe from signals' wake
     *  path and from connection threads). */
    void requestStop();

    /** Block until the daemon has fully drained and stopped. */
    void wait();

    /** True once requestStop() was observed. */
    bool stopping() const { return stop_.load(std::memory_order_acquire); }

    /** Every resolved request, in resolution order (post-wait()). */
    std::vector<RequestRecord> records() const;

  private:
    struct Conn
    {
        int fd = -1;
        std::mutex writeMu;
    };

    void acceptLoop();
    void connectionLoop(std::shared_ptr<Conn> conn, uint64_t myTicket);
    void dispatchLoop();
    void execute(ServeRequest req);
    void respond(const RequestRecord &record);
    void finishRecord(RequestRecord record);
    Micros now() const;

    const Executor &executor_;
    ServerConfig config_;
    ServeMetrics &metrics_;
    RequestQueue queue_;

    std::chrono::steady_clock::time_point epoch_;
    std::atomic<bool> stop_{false};
    int listenFd_ = -1;

    mutable std::mutex mu_;
    std::condition_variable cv_; ///< dispatcher wake: work or stop
    uint32_t inflight_ = 0;
    uint64_t nextTicket_ = 1;
    std::map<uint64_t, std::shared_ptr<Conn>> conns_;
    std::vector<RequestRecord> records_;

    std::thread acceptThread_;
    std::thread dispatchThread_;
    std::vector<std::thread> connThreads_;
    std::mutex connThreadsMu_;
};

} // namespace grow::serve
