#include "serve/virtual_serve.hpp"

#include <cmath>
#include <queue>

#include "util/logging.hpp"

namespace grow::serve {

namespace {

/** One in-flight request, resolving at doneUs on the virtual clock. */
struct Pending
{
    Micros doneUs = 0;
    RequestRecord record;
};

struct PendingLater
{
    bool
    operator()(const Pending &a, const Pending &b) const
    {
        if (a.doneUs != b.doneUs)
            return a.doneUs > b.doneUs;
        return a.record.request.id > b.record.request.id;
    }
};

} // namespace

VirtualServeResult
runVirtualServe(const std::vector<ScheduledRequest> &schedule,
                const Executor *executor, const VirtualServeConfig &config,
                ServeMetrics *metrics)
{
    GROW_ASSERT(config.slots >= 1, "virtual serve needs >= 1 slot");
    GROW_ASSERT(executor || config.serviceMs,
                "virtual serve needs an executor or a serviceMs override");

    RequestQueue queue(config.admission);
    std::priority_queue<Pending, std::vector<Pending>, PendingLater> inflight;
    VirtualServeResult result;
    result.records.reserve(schedule.size());
    Micros now = 0;

    auto resolve = [&](RequestRecord record) {
        if (metrics)
            metrics->recordOutcome(record);
        result.records.push_back(std::move(record));
    };

    auto finishOne = [&]() {
        Pending p = inflight.top();
        inflight.pop();
        now = p.doneUs;
        queue.onComplete(p.record.request);
        resolve(std::move(p.record));
    };

    // Dispatch until every slot is busy or the queue is dry; expiries
    // discovered on the way out resolve at the current instant.
    auto dispatch = [&]() {
        while (inflight.size() < config.slots) {
            ServeRequest req;
            std::vector<ServeRequest> expired;
            const bool got = queue.pop(now, req, expired);
            for (ServeRequest &e : expired) {
                RequestRecord rec;
                rec.request = std::move(e);
                rec.status = RequestStatus::Expired;
                rec.completionUs = now;
                resolve(std::move(rec));
            }
            if (!got)
                break;
            RequestRecord rec;
            rec.request = std::move(req);
            rec.dispatchUs = now;
            double serviceMs = 0.0;
            if (executor) {
                ExecResult er = executor->run(rec.request);
                if (!er.ok) {
                    queue.onComplete(rec.request);
                    rec.status = RequestStatus::Error;
                    rec.error = er.error;
                    rec.completionUs = now;
                    resolve(std::move(rec));
                    continue;
                }
                rec.digest = er.digest;
                serviceMs = er.digest.simulatedMs();
            }
            if (config.serviceMs)
                serviceMs = config.serviceMs(rec.request);
            rec.status = RequestStatus::Completed;
            rec.execMs = serviceMs;
            Pending p;
            p.doneUs = now + static_cast<Micros>(
                                 std::llround(serviceMs * 1000.0));
            rec.completionUs = p.doneUs;
            p.record = std::move(rec);
            inflight.push(std::move(p));
        }
        if (metrics)
            metrics->sampleQueueDepth(now, queue.depth());
    };

    for (const ScheduledRequest &sr : schedule) {
        // Completions scheduled before this arrival resolve first so
        // their slots (and bytes) are free for admission.
        while (!inflight.empty() && inflight.top().doneUs <= sr.atUs) {
            finishOne();
            dispatch();
        }
        now = sr.atUs;

        ServeRequest req = sr.request;
        std::string error;
        if (executor && !executor->validate(req, &error)) {
            RequestRecord rec;
            rec.request = std::move(req);
            rec.request.arrivalUs = now;
            rec.status = RequestStatus::Error;
            rec.error = error;
            rec.completionUs = now;
            resolve(std::move(rec));
            continue;
        }
        const Admission verdict = queue.push(std::move(req), now);
        if (metrics)
            metrics->recordAdmission(verdict, queue.depth(), now);
        if (verdict != Admission::Admitted) {
            RequestRecord rec;
            rec.request = sr.request;
            rec.request.arrivalUs = now;
            rec.status = rejectionStatus(verdict);
            rec.completionUs = now;
            resolve(std::move(rec));
            continue;
        }
        dispatch();
    }

    // Arrivals exhausted: drain in-flight work and the backlog.
    while (!inflight.empty()) {
        finishOne();
        dispatch();
    }
    result.endUs = now;
    return result;
}

} // namespace grow::serve
