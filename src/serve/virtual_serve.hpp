/**
 * @file
 * Deterministic in-process serving simulation on a virtual clock.
 *
 * Replays a seeded schedule (serve/schedule.hpp) through the exact
 * admission/fair-share/deadline machinery the socket daemon uses
 * (serve/queue.hpp), but advances an integer virtual clock by discrete
 * events instead of waiting on a host clock. Service time for a
 * completed request is its *simulated* latency -- digest cycles at the
 * 1 GHz modeled clock -- so every latency percentile, queue-depth
 * sample and admission counter is a pure function of (schedule seed,
 * admission config, slot count). That makes serving-layer behaviour
 * CI-gateable: the records land in BENCH_GROW.json next to the
 * simulator's own metric families and report_diff holds the line.
 *
 * Event order at one instant: completions resolve before arrivals, so
 * a slot freed at t can serve a request arriving at t -- mirroring the
 * daemon, where the dispatcher observes completion before accepting
 * more work.
 */
#pragma once

#include <functional>
#include <vector>

#include "serve/executor.hpp"
#include "serve/metrics.hpp"
#include "serve/queue.hpp"
#include "serve/schedule.hpp"

namespace grow::serve {

/** Knobs for runVirtualServe(). */
struct VirtualServeConfig
{
    AdmissionConfig admission;
    /** Parallel service slots (modeled accelerator instances). */
    uint32_t slots = 1;
    /**
     * Service-time override in ms; when empty, requests execute
     * through the Executor and take digest.simulatedMs(). Tests use
     * synthetic service times to probe the queue without running the
     * simulator.
     */
    std::function<double(const ServeRequest &)> serviceMs;
};

/** Outcome of one virtual-clock replay. */
struct VirtualServeResult
{
    /** Every request's resolution, in event order (deterministic). */
    std::vector<RequestRecord> records;
    /** Virtual time at which the last event resolved. */
    Micros endUs = 0;
};

/**
 * Replay @p schedule (arrival times non-decreasing) through the
 * serving queue on a virtual clock. @p executor may be null only when
 * @p config.serviceMs is set. @p metrics is optional.
 */
VirtualServeResult runVirtualServe(const std::vector<ScheduledRequest> &schedule,
                                   const Executor *executor,
                                   const VirtualServeConfig &config,
                                   ServeMetrics *metrics);

} // namespace grow::serve
