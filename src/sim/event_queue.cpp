#include "sim/event_queue.hpp"

#include "util/logging.hpp"

namespace grow {

void
EventQueue::schedule(Cycle when, uint64_t tag)
{
    heap_.push(Event{when, tag, nextSeq_++});
}

Cycle
EventQueue::nextTime() const
{
    GROW_ASSERT(!heap_.empty(), "nextTime() on empty event queue");
    return heap_.top().when;
}

Event
EventQueue::pop()
{
    GROW_ASSERT(!heap_.empty(), "pop() on empty event queue");
    Event e = heap_.top();
    heap_.pop();
    return e;
}

void
EventQueue::clear()
{
    while (!heap_.empty())
        heap_.pop();
    nextSeq_ = 0;
}

} // namespace grow
