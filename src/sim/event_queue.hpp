/**
 * @file
 * Minimal discrete-event queue used by the cycle-level engines.
 *
 * Events carry an opaque 64-bit tag; the owning engine interprets tags
 * (e.g. "DRAM fill for RHS row k completed"). Ties are broken by
 * insertion order so simulations are deterministic.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <queue>
#include <vector>

#include "sim/types.hpp"

namespace grow {

/** One scheduled event. */
struct Event
{
    Cycle when = 0;
    uint64_t tag = 0;
    uint64_t seq = 0; ///< insertion order, for deterministic tie-break
};

/**
 * Priority queue of events ordered by (when, seq).
 */
class EventQueue
{
  public:
    /** Schedule @p tag to fire at absolute cycle @p when. */
    void schedule(Cycle when, uint64_t tag);

    /** Whether any events remain. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events. */
    size_t size() const { return heap_.size(); }

    /** Cycle of the earliest pending event (queue must be non-empty). */
    Cycle nextTime() const;

    /** Remove and return the earliest event (queue must be non-empty). */
    Event pop();

    /** Drop all events. */
    void clear();

  private:
    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> heap_;
    uint64_t nextSeq_ = 0;
};

} // namespace grow
