#include "sim/histogram.hpp"

#include <cmath>

#include "util/bitutil.hpp"
#include "util/logging.hpp"

namespace grow {

BucketHistogram::BucketHistogram(std::vector<uint64_t> upper_bounds)
    : bounds_(std::move(upper_bounds))
{
    GROW_ASSERT(!bounds_.empty(), "histogram needs at least one bucket");
    for (size_t i = 1; i < bounds_.size(); ++i)
        GROW_ASSERT(bounds_[i] > bounds_[i - 1],
                    "histogram bounds must be strictly ascending");
    counts_.assign(bounds_.size() + 1, 0);
}

void
BucketHistogram::record(uint64_t value)
{
    record(value, 1);
}

void
BucketHistogram::record(uint64_t value, uint64_t count)
{
    size_t i = 0;
    while (i < bounds_.size() && value > bounds_[i])
        ++i;
    counts_[i] += count;
    total_ += count;
}

uint64_t
BucketHistogram::count(size_t i) const
{
    GROW_ASSERT(i < counts_.size(), "bucket index out of range");
    return counts_[i];
}

double
BucketHistogram::fraction(size_t i) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(count(i)) / static_cast<double>(total_);
}

std::string
BucketHistogram::label(size_t i) const
{
    GROW_ASSERT(i < counts_.size(), "bucket index out of range");
    if (i == bounds_.size())
        return ">" + std::to_string(bounds_.back());
    uint64_t lo = i == 0 ? 0 : bounds_[i - 1] + 1;
    uint64_t hi = bounds_[i];
    if (lo == hi)
        return std::to_string(lo);
    return std::to_string(lo) + "-" + std::to_string(hi);
}

LogHistogram::LogHistogram()
{
    counts_.assign(64, 0);
    logSums_.assign(64, 0.0);
    sums_.assign(64, 0);
}

void
LogHistogram::record(uint64_t value)
{
    size_t bucket = value <= 1 ? 0 : log2Floor(value);
    counts_[bucket] += 1;
    sums_[bucket] += value;
    if (value >= 1)
        logSums_[bucket] += std::log(static_cast<double>(value));
    total_ += 1;
    sumValues_ += static_cast<double>(value);
    if (value > max_)
        max_ = value;
}

double
LogHistogram::mean() const
{
    return total_ == 0 ? 0.0 : sumValues_ / static_cast<double>(total_);
}

uint64_t
LogHistogram::bucketCount(size_t i) const
{
    GROW_ASSERT(i < counts_.size(), "bucket index out of range");
    return counts_[i];
}

double
LogHistogram::powerLawAlpha(uint64_t xmin) const
{
    // MLE: alpha = 1 + n / sum(ln(x_i / (xmin - 0.5))) over x_i >= xmin.
    if (xmin < 1)
        xmin = 1;
    double n = 0.0;
    double logSum = 0.0;
    double shift = std::log(static_cast<double>(xmin) - 0.5);
    size_t startBucket = xmin <= 1 ? 0 : log2Floor(xmin);
    for (size_t b = startBucket; b < counts_.size(); ++b) {
        // Buckets below xmin's bucket are excluded; the xmin bucket is
        // included approximately (acceptable for reporting purposes).
        n += static_cast<double>(counts_[b]);
        logSum += logSums_[b] - static_cast<double>(counts_[b]) * shift;
    }
    if (n < 16 || logSum <= 0.0)
        return 0.0;
    return 1.0 + n / logSum;
}

} // namespace grow
