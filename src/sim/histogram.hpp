/**
 * @file
 * Bucketed histograms for characterisation experiments.
 *
 * Figure 5 of the paper buckets "non-zeros per tile" into
 * {1, 2, 3-8, 9-16, >16} (aggregation) and {1, 2, 3-8, 9-1024, >1024}
 * (combination); BucketHistogram reproduces exactly that reporting.
 * Figure 11 plots a degree distribution, served by LogHistogram.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace grow {

/**
 * Histogram over user-defined right-inclusive value buckets.
 *
 * Buckets are defined by their upper bounds; an implicit overflow bucket
 * catches everything above the last bound.
 */
class BucketHistogram
{
  public:
    /** @param upper_bounds ascending inclusive upper bounds per bucket. */
    explicit BucketHistogram(std::vector<uint64_t> upper_bounds);

    /** Record one sample. */
    void record(uint64_t value);

    /** Record @p count identical samples. */
    void record(uint64_t value, uint64_t count);

    /** Number of buckets including the overflow bucket. */
    size_t numBuckets() const { return counts_.size(); }

    /** Raw count in bucket @p i. */
    uint64_t count(size_t i) const;

    /** Fraction of all samples in bucket @p i (0 if empty). */
    double fraction(size_t i) const;

    /** Total samples recorded. */
    uint64_t total() const { return total_; }

    /** Label like "1", "3-8" or ">16" for bucket @p i. */
    std::string label(size_t i) const;

  private:
    std::vector<uint64_t> bounds_;
    std::vector<uint64_t> counts_;
    uint64_t total_ = 0;
};

/**
 * Power-of-two bucketed histogram with mean/max tracking, used for degree
 * distributions and queue depths.
 */
class LogHistogram
{
  public:
    LogHistogram();

    void record(uint64_t value);

    uint64_t total() const { return total_; }
    uint64_t maxValue() const { return max_; }
    double mean() const;

    /** Count of samples in [2^i, 2^(i+1)) (bucket 0 holds value 0..1). */
    uint64_t bucketCount(size_t i) const;
    size_t numBuckets() const { return counts_.size(); }

    /**
     * Maximum-likelihood power-law exponent estimate (Clauset et al.)
     * over samples >= @p xmin. Returns 0 when too few samples.
     */
    double powerLawAlpha(uint64_t xmin = 2) const;

  private:
    std::vector<uint64_t> counts_;
    std::vector<double> logSums_; ///< per-bucket sum of ln(value)
    std::vector<uint64_t> sums_;  ///< per-bucket sum of values
    uint64_t total_ = 0;
    uint64_t max_ = 0;
    double sumValues_ = 0.0;
};

} // namespace grow
