#include "sim/stats.hpp"

#include <sstream>

namespace grow {

void
StatRegistry::add(const std::string &name, double delta)
{
    counters_[name] += delta;
}

void
StatRegistry::set(const std::string &name, double value)
{
    counters_[name] = value;
}

double
StatRegistry::get(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0.0 : it->second;
}

bool
StatRegistry::has(const std::string &name) const
{
    return counters_.count(name) > 0;
}

StatSnapshot
StatRegistry::snapshot() const
{
    return counters_;
}

StatSnapshot
StatRegistry::diff(const StatSnapshot &earlier, const StatSnapshot &later)
{
    StatSnapshot out = later;
    for (const auto &[name, value] : earlier)
        out[name] -= value;
    return out;
}

void
StatRegistry::clear()
{
    counters_.clear();
}

std::string
StatRegistry::dump(const std::string &prefix) const
{
    std::ostringstream oss;
    for (const auto &[name, value] : counters_) {
        if (name.rfind(prefix, 0) == 0)
            oss << name << " = " << value << "\n";
    }
    return oss.str();
}

} // namespace grow
