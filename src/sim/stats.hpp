/**
 * @file
 * Named statistics registry for simulator components.
 *
 * Components register scalar counters under hierarchical names
 * ("dram.bytesRead", "hdnCache.hits", ...). The registry supports
 * snapshot/diff so a phase (aggregation vs combination) can be measured
 * in isolation -- this is how the latency/energy breakdown figures are
 * produced.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace grow {

/** A snapshot of all counters at one point in simulated time. */
using StatSnapshot = std::map<std::string, double>;

/**
 * Hierarchically named scalar statistics.
 */
class StatRegistry
{
  public:
    /** Add @p delta to counter @p name (creating it at zero). */
    void add(const std::string &name, double delta);

    /** Set counter @p name to @p value. */
    void set(const std::string &name, double value);

    /** Read counter @p name (0 if absent). */
    double get(const std::string &name) const;

    /** Whether the counter exists. */
    bool has(const std::string &name) const;

    /** All counters, sorted by name. */
    StatSnapshot snapshot() const;

    /** Per-counter difference @p later - @p earlier. */
    static StatSnapshot diff(const StatSnapshot &earlier,
                             const StatSnapshot &later);

    /** Reset all counters to zero. */
    void clear();

    /** Render as "name = value" lines (for debugging / examples). */
    std::string dump(const std::string &prefix = "") const;

  private:
    std::map<std::string, double> counters_;
};

} // namespace grow
