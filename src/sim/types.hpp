/**
 * @file
 * Fundamental scalar types shared by all cycle-level models.
 */
#pragma once

#include <cstdint>

namespace grow {

/** Simulated clock cycle count (accelerator runs at 1 GHz, Table III). */
using Cycle = uint64_t;

/** Byte count for traffic accounting. */
using Bytes = uint64_t;

/** Node / row / column index into graph-sized structures. */
using NodeId = uint32_t;

/** Sentinel for "no node". */
inline constexpr NodeId kInvalidNode = 0xFFFFFFFFu;

/** Element sizes used throughout the models (64-bit MACs, Table III). */
inline constexpr Bytes kValueBytes = 8;  ///< matrix value (fp64)
inline constexpr Bytes kIndexBytes = 4;  ///< CSR/CSC column or row index
inline constexpr Bytes kPtrBytes = 8;    ///< CSR/CSC segment pointer
inline constexpr Bytes kHdnIdBytes = 3;  ///< HDN ID list entry (Sec. V-C)

/** Minimum DRAM access granularity (Sec. IV-B: 64-byte). */
inline constexpr Bytes kDramLineBytes = 64;

} // namespace grow
