#include "sparse/convert.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace grow::sparse {

DenseMatrix
toDense(const CsrMatrix &m)
{
    DenseMatrix d(m.rows(), m.cols());
    for (uint32_t r = 0; r < m.rows(); ++r) {
        auto cols = m.rowCols(r);
        auto vals = m.rowVals(r);
        for (size_t i = 0; i < cols.size(); ++i)
            d.at(r, cols[i]) = vals[i];
    }
    return d;
}

DenseMatrix
toDense(const CscMatrix &m)
{
    DenseMatrix d(m.rows(), m.cols());
    for (uint32_t c = 0; c < m.cols(); ++c) {
        auto rows = m.colRows(c);
        auto vals = m.colVals(c);
        for (size_t i = 0; i < rows.size(); ++i)
            d.at(rows[i], c) = vals[i];
    }
    return d;
}

CsrMatrix
toCsr(const DenseMatrix &m, double eps)
{
    CooMatrix coo(m.rows(), m.cols());
    for (uint32_t r = 0; r < m.rows(); ++r)
        for (uint32_t c = 0; c < m.cols(); ++c)
            if (std::abs(m.at(r, c)) > eps)
                coo.add(r, c, m.at(r, c));
    coo.canonicalize();
    return CsrMatrix::fromCoo(coo);
}

CsrMatrix
toCsr(const CscMatrix &m)
{
    CooMatrix coo(m.rows(), m.cols());
    coo.reserve(m.nnz());
    for (uint32_t c = 0; c < m.cols(); ++c) {
        auto rows = m.colRows(c);
        auto vals = m.colVals(c);
        for (size_t i = 0; i < rows.size(); ++i)
            coo.add(rows[i], c, vals[i]);
    }
    coo.canonicalize();
    return CsrMatrix::fromCoo(coo);
}

CscMatrix
toCsc(const CsrMatrix &m)
{
    return CscMatrix::fromCsr(m);
}

CsrMatrix
randomCsr(uint32_t rows, uint32_t cols, double density, Rng &rng)
{
    GROW_ASSERT(density >= 0.0 && density <= 1.0,
                "density must be in [0,1]");
    CooMatrix coo(rows, cols);
    coo.reserve(static_cast<size_t>(density * rows * cols * 1.05) + 16);
    if (density >= 1.0) {
        for (uint32_t r = 0; r < rows; ++r)
            for (uint32_t c = 0; c < cols; ++c)
                coo.add(r, c, rng.uniform(-1.0, 1.0));
    } else if (density > 0.0) {
        // Geometric skipping: expected cost O(nnz) not O(rows*cols).
        double log1mp = std::log1p(-density);
        uint64_t total = static_cast<uint64_t>(rows) * cols;
        uint64_t pos = 0;
        while (true) {
            double u = 1.0 - rng.uniform();
            uint64_t skip =
                static_cast<uint64_t>(std::floor(std::log(u) / log1mp));
            pos += skip;
            if (pos >= total)
                break;
            coo.add(static_cast<NodeId>(pos / cols),
                    static_cast<NodeId>(pos % cols), rng.uniform(-1.0, 1.0));
            pos += 1;
            if (pos >= total)
                break;
        }
    }
    coo.canonicalize();
    return CsrMatrix::fromCoo(coo);
}

DenseMatrix
randomDense(uint32_t rows, uint32_t cols, Rng &rng)
{
    DenseMatrix d(rows, cols);
    for (uint32_t r = 0; r < rows; ++r)
        for (uint32_t c = 0; c < cols; ++c)
            d.at(r, c) = rng.uniform(-1.0, 1.0);
    return d;
}

} // namespace grow::sparse
