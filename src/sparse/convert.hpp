/**
 * @file
 * Conversions between sparse/dense matrix representations and random
 * matrix synthesis helpers.
 */
#pragma once

#include "sparse/coo_matrix.hpp"
#include "sparse/csc_matrix.hpp"
#include "sparse/csr_matrix.hpp"
#include "sparse/dense_matrix.hpp"
#include "util/random.hpp"

namespace grow::sparse {

/** Densify a CSR matrix. */
DenseMatrix toDense(const CsrMatrix &m);

/** Densify a CSC matrix. */
DenseMatrix toDense(const CscMatrix &m);

/** Sparsify a dense matrix (entries with |x| > eps become non-zeros). */
CsrMatrix toCsr(const DenseMatrix &m, double eps = 0.0);

/** CSC <-> CSR through structure transposition. */
CsrMatrix toCsr(const CscMatrix &m);
CscMatrix toCsc(const CsrMatrix &m);

/**
 * Random CSR matrix with i.i.d. Bernoulli(@p density) non-zero pattern
 * and uniform values in [-1, 1). Used to synthesise GCN feature matrices
 * X at the densities reported in Table I.
 */
CsrMatrix randomCsr(uint32_t rows, uint32_t cols, double density, Rng &rng);

/** Random dense matrix with uniform values in [-1, 1). */
DenseMatrix randomDense(uint32_t rows, uint32_t cols, Rng &rng);

} // namespace grow::sparse
