#include "sparse/coo_matrix.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace grow::sparse {

CooMatrix::CooMatrix(uint32_t rows, uint32_t cols) : rows_(rows), cols_(cols)
{
}

void
CooMatrix::add(NodeId row, NodeId col, double value)
{
    GROW_ASSERT(row < rows_ && col < cols_, "COO entry out of bounds");
    triples_.push_back(Triple{row, col, value});
    canonical_ = false;
}

void
CooMatrix::canonicalize()
{
    std::sort(triples_.begin(), triples_.end(),
              [](const Triple &a, const Triple &b) {
                  if (a.row != b.row)
                      return a.row < b.row;
                  return a.col < b.col;
              });
    size_t out = 0;
    for (size_t i = 0; i < triples_.size();) {
        Triple merged = triples_[i];
        size_t j = i + 1;
        while (j < triples_.size() && triples_[j].row == merged.row &&
               triples_[j].col == merged.col) {
            merged.value += triples_[j].value;
            ++j;
        }
        triples_[out++] = merged;
        i = j;
    }
    triples_.resize(out);
    canonical_ = true;
}

} // namespace grow::sparse
