/**
 * @file
 * Coordinate-format sparse matrix: the mutable builder format.
 *
 * Graph generators emit COO triples which are then deduplicated, sorted
 * and converted to CSR/CSC for the accelerator models.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace grow::sparse {

/** One (row, col, value) triple. */
struct Triple
{
    NodeId row;
    NodeId col;
    double value;
};

class CooMatrix
{
  public:
    CooMatrix() = default;
    CooMatrix(uint32_t rows, uint32_t cols);

    uint32_t rows() const { return rows_; }
    uint32_t cols() const { return cols_; }
    uint64_t nnz() const { return triples_.size(); }

    /** Append one entry (duplicates allowed until canonicalize()). */
    void add(NodeId row, NodeId col, double value);

    /** Reserve capacity for @p n triples. */
    void reserve(size_t n) { triples_.reserve(n); }

    /**
     * Sort by (row, col) and combine duplicates by summing values.
     * Entries that sum to exactly zero are kept (structural non-zeros).
     */
    void canonicalize();

    /** Whether canonicalize() has been called since the last add(). */
    bool canonical() const { return canonical_; }

    const std::vector<Triple> &triples() const { return triples_; }

  private:
    uint32_t rows_ = 0;
    uint32_t cols_ = 0;
    bool canonical_ = true;
    std::vector<Triple> triples_;
};

} // namespace grow::sparse
