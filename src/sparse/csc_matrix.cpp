#include "sparse/csc_matrix.hpp"

#include "sparse/coo_matrix.hpp"
#include "sparse/csr_matrix.hpp"
#include "util/logging.hpp"

namespace grow::sparse {

CscMatrix::CscMatrix(uint32_t rows, uint32_t cols)
    : rows_(rows), cols_(cols), colPtr_(cols + 1, 0)
{
}

CscMatrix
CscMatrix::fromCoo(const CooMatrix &coo)
{
    GROW_ASSERT(coo.canonical(), "COO must be canonicalized before CSC");
    CscMatrix m(coo.rows(), coo.cols());
    m.rowIdx_.resize(coo.nnz());
    m.values_.resize(coo.nnz());
    for (const auto &t : coo.triples())
        m.colPtr_[t.col + 1] += 1;
    for (uint32_t c = 0; c < m.cols_; ++c)
        m.colPtr_[c + 1] += m.colPtr_[c];
    std::vector<uint64_t> cursor(m.colPtr_.begin(), m.colPtr_.end() - 1);
    // COO is sorted by (row, col) so per-column rows come out ascending.
    for (const auto &t : coo.triples()) {
        uint64_t pos = cursor[t.col]++;
        m.rowIdx_[pos] = t.row;
        m.values_[pos] = t.value;
    }
    return m;
}

CscMatrix
CscMatrix::fromCsr(const CsrMatrix &csr)
{
    CscMatrix m(csr.rows(), csr.cols());
    m.rowIdx_.resize(csr.nnz());
    m.values_.resize(csr.nnz());
    for (NodeId c : csr.colIdx())
        m.colPtr_[c + 1] += 1;
    for (uint32_t c = 0; c < m.cols_; ++c)
        m.colPtr_[c + 1] += m.colPtr_[c];
    std::vector<uint64_t> cursor(m.colPtr_.begin(), m.colPtr_.end() - 1);
    for (uint32_t r = 0; r < csr.rows(); ++r) {
        auto cols = csr.rowCols(r);
        auto vals = csr.rowVals(r);
        for (size_t i = 0; i < cols.size(); ++i) {
            uint64_t pos = cursor[cols[i]]++;
            m.rowIdx_[pos] = r;
            m.values_[pos] = vals[i];
        }
    }
    return m;
}

double
CscMatrix::density() const
{
    if (rows_ == 0 || cols_ == 0)
        return 0.0;
    return static_cast<double>(nnz()) /
           (static_cast<double>(rows_) * static_cast<double>(cols_));
}

std::span<const NodeId>
CscMatrix::colRows(NodeId c) const
{
    GROW_ASSERT(c < cols_, "column index out of range");
    return {rowIdx_.data() + colPtr_[c],
            static_cast<size_t>(colPtr_[c + 1] - colPtr_[c])};
}

std::span<const double>
CscMatrix::colVals(NodeId c) const
{
    GROW_ASSERT(c < cols_, "column index out of range");
    return {values_.data() + colPtr_[c],
            static_cast<size_t>(colPtr_[c + 1] - colPtr_[c])};
}

Bytes
CscMatrix::streamBytes() const
{
    return nnz() * (kValueBytes + kIndexBytes) +
           static_cast<Bytes>(cols_) * kPtrBytes;
}

bool
CscMatrix::validate() const
{
    if (colPtr_.size() != static_cast<size_t>(cols_) + 1)
        return false;
    if (colPtr_.front() != 0 || colPtr_.back() != rowIdx_.size())
        return false;
    if (rowIdx_.size() != values_.size())
        return false;
    for (uint32_t c = 0; c < cols_; ++c) {
        if (colPtr_[c] > colPtr_[c + 1])
            return false;
        for (uint64_t i = colPtr_[c]; i < colPtr_[c + 1]; ++i) {
            if (rowIdx_[i] >= rows_)
                return false;
            if (i > colPtr_[c] && rowIdx_[i] <= rowIdx_[i - 1])
                return false;
        }
    }
    return true;
}

} // namespace grow::sparse
