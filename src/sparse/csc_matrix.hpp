/**
 * @file
 * Compressed-sparse-column matrix.
 *
 * CSC is GCNAX's operand format (Table II, Fig. 4(b)): the outer-product
 * dataflow consumes the sparse tile column by column. The GROW paper's
 * bandwidth-waste analysis (Fig. 6) hinges on how a 2-D tile maps onto
 * per-column CSC segments; see sparse/tiling.hpp.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "sim/types.hpp"

namespace grow::sparse {

class CooMatrix;
class CsrMatrix;

class CscMatrix
{
  public:
    CscMatrix() = default;
    CscMatrix(uint32_t rows, uint32_t cols);

    /** Build from a canonical COO matrix. */
    static CscMatrix fromCoo(const CooMatrix &coo);

    /** Build from a CSR matrix (transpose of structure arrays). */
    static CscMatrix fromCsr(const CsrMatrix &csr);

    uint32_t rows() const { return rows_; }
    uint32_t cols() const { return cols_; }
    uint64_t nnz() const { return rowIdx_.size(); }
    double density() const;

    uint64_t colNnz(NodeId c) const { return colPtr_[c + 1] - colPtr_[c]; }

    /** Row indices of column @p c (ascending). */
    std::span<const NodeId> colRows(NodeId c) const;

    /** Values of column @p c. */
    std::span<const double> colVals(NodeId c) const;

    const std::vector<uint64_t> &colPtr() const { return colPtr_; }
    const std::vector<NodeId> &rowIdx() const { return rowIdx_; }
    const std::vector<double> &values() const { return values_; }

    /** DRAM footprint of the compressed stream. */
    Bytes streamBytes() const;

    bool validate() const;

  private:
    uint32_t rows_ = 0;
    uint32_t cols_ = 0;
    std::vector<uint64_t> colPtr_;
    std::vector<NodeId> rowIdx_;
    std::vector<double> values_;
};

} // namespace grow::sparse
