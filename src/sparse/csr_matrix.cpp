#include "sparse/csr_matrix.hpp"

#include <algorithm>
#include <numeric>

#include "sparse/coo_matrix.hpp"
#include "util/logging.hpp"
#include "util/work_pool.hpp"

namespace grow::sparse {

CsrMatrix::CsrMatrix(uint32_t rows, uint32_t cols)
    : rows_(rows), cols_(cols), rowPtr_(rows + 1, 0)
{
}

CsrMatrix
CsrMatrix::fromCoo(const CooMatrix &coo)
{
    GROW_ASSERT(coo.canonical(), "COO must be canonicalized before CSR");
    CsrMatrix m(coo.rows(), coo.cols());
    m.colIdx_.reserve(coo.nnz());
    m.values_.reserve(coo.nnz());
    for (const auto &t : coo.triples()) {
        m.rowPtr_[t.row + 1] += 1;
        m.colIdx_.push_back(t.col);
        m.values_.push_back(t.value);
    }
    for (uint32_t r = 0; r < m.rows_; ++r)
        m.rowPtr_[r + 1] += m.rowPtr_[r];
    return m;
}

CsrMatrix
CsrMatrix::fromRaw(uint32_t rows, uint32_t cols,
                   std::vector<uint64_t> row_ptr,
                   std::vector<NodeId> col_idx, std::vector<double> values)
{
    CsrMatrix m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.rowPtr_ = std::move(row_ptr);
    m.colIdx_ = std::move(col_idx);
    m.values_ = std::move(values);
    GROW_ASSERT(m.validate(), "invalid raw CSR arrays");
    return m;
}

double
CsrMatrix::density() const
{
    if (rows_ == 0 || cols_ == 0)
        return 0.0;
    return static_cast<double>(nnz()) /
           (static_cast<double>(rows_) * static_cast<double>(cols_));
}

std::span<const NodeId>
CsrMatrix::rowCols(NodeId r) const
{
    GROW_ASSERT(r < rows_, "row index out of range");
    return {colIdx_.data() + rowPtr_[r],
            static_cast<size_t>(rowPtr_[r + 1] - rowPtr_[r])};
}

std::span<const double>
CsrMatrix::rowVals(NodeId r) const
{
    GROW_ASSERT(r < rows_, "row index out of range");
    return {values_.data() + rowPtr_[r],
            static_cast<size_t>(rowPtr_[r + 1] - rowPtr_[r])};
}

CsrMatrix
CsrMatrix::transposed() const
{
    CsrMatrix t(cols_, rows_);
    t.colIdx_.resize(nnz());
    t.values_.resize(nnz());
    // Count column occupancy.
    for (NodeId c : colIdx_)
        t.rowPtr_[c + 1] += 1;
    for (uint32_t r = 0; r < t.rows_; ++r)
        t.rowPtr_[r + 1] += t.rowPtr_[r];
    // Scatter.
    std::vector<uint64_t> cursor(t.rowPtr_.begin(), t.rowPtr_.end() - 1);
    for (uint32_t r = 0; r < rows_; ++r) {
        for (uint64_t i = rowPtr_[r]; i < rowPtr_[r + 1]; ++i) {
            uint64_t pos = cursor[colIdx_[i]]++;
            t.colIdx_[pos] = r;
            t.values_[pos] = values_[i];
        }
    }
    return t;
}

CsrMatrix
CsrMatrix::permutedSymmetric(const std::vector<NodeId> &new_to_old,
                             uint32_t threads) const
{
    GROW_ASSERT(rows_ == cols_, "symmetric permutation needs square matrix");
    GROW_ASSERT(new_to_old.size() == rows_, "permutation size mismatch");

    // Invert: old id -> new id.
    std::vector<NodeId> old_to_new(rows_, kInvalidNode);
    for (NodeId n = 0; n < rows_; ++n) {
        NodeId o = new_to_old[n];
        GROW_ASSERT(o < rows_ && old_to_new[o] == kInvalidNode,
                    "new_to_old is not a permutation");
        old_to_new[o] = n;
    }

    CsrMatrix p(rows_, cols_);
    p.colIdx_.resize(nnz());
    p.values_.resize(nnz());
    for (NodeId n = 0; n < rows_; ++n)
        p.rowPtr_[n + 1] = p.rowPtr_[n] + rowNnz(new_to_old[n]);

    // Each output row remaps and re-sorts its own slice, bracketed by
    // rowPtr: disjoint writes, bit-identical for any thread count.
    util::parallelFor(rows_, threads,
                      [&](uint64_t begin, uint64_t end, uint32_t) {
        std::vector<std::pair<NodeId, double>> entries;
        for (NodeId n = static_cast<NodeId>(begin); n < end; ++n) {
            NodeId o = new_to_old[n];
            uint64_t out = p.rowPtr_[n];
            auto cols = rowCols(o);
            auto vals = rowVals(o);
            // Remap columns then sort the row back into ascending order.
            entries.resize(cols.size());
            for (size_t i = 0; i < cols.size(); ++i)
                entries[i] = {old_to_new[cols[i]], vals[i]};
            std::sort(entries.begin(), entries.end());
            for (const auto &[c, v] : entries) {
                p.colIdx_[out] = c;
                p.values_[out] = v;
                ++out;
            }
        }
    });
    return p;
}

Bytes
CsrMatrix::streamBytes() const
{
    return nnz() * (kValueBytes + kIndexBytes) +
           static_cast<Bytes>(rows_) * kPtrBytes;
}

bool
CsrMatrix::validate() const
{
    if (rowPtr_.size() != static_cast<size_t>(rows_) + 1)
        return false;
    if (rowPtr_.front() != 0 || rowPtr_.back() != colIdx_.size())
        return false;
    if (colIdx_.size() != values_.size())
        return false;
    for (uint32_t r = 0; r < rows_; ++r) {
        if (rowPtr_[r] > rowPtr_[r + 1])
            return false;
        for (uint64_t i = rowPtr_[r]; i < rowPtr_[r + 1]; ++i) {
            if (colIdx_[i] >= cols_)
                return false;
            if (i > rowPtr_[r] && colIdx_[i] <= colIdx_[i - 1])
                return false;
        }
    }
    return true;
}

} // namespace grow::sparse
