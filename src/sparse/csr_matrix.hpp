/**
 * @file
 * Compressed-sparse-row matrix.
 *
 * CSR is GROW's native operand format (Table II): the row-stationary
 * dataflow walks one LHS row at a time, and the CSR layout packs each
 * row's non-zeros densely so streaming them wastes no DRAM bandwidth
 * (Fig. 10(c)).
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "sim/types.hpp"

namespace grow::sparse {

class CooMatrix;

class CsrMatrix
{
  public:
    CsrMatrix() = default;

    /** Construct an empty matrix of the given shape. */
    CsrMatrix(uint32_t rows, uint32_t cols);

    /** Build from a canonical COO matrix. */
    static CsrMatrix fromCoo(const CooMatrix &coo);

    /** Build directly from raw arrays (validated). */
    static CsrMatrix fromRaw(uint32_t rows, uint32_t cols,
                             std::vector<uint64_t> row_ptr,
                             std::vector<NodeId> col_idx,
                             std::vector<double> values);

    uint32_t rows() const { return rows_; }
    uint32_t cols() const { return cols_; }
    uint64_t nnz() const { return colIdx_.size(); }

    /** Fraction of non-zero positions. */
    double density() const;

    /** Number of non-zeros in row @p r. */
    uint64_t rowNnz(NodeId r) const { return rowPtr_[r + 1] - rowPtr_[r]; }

    /** Column indices of row @p r. */
    std::span<const NodeId> rowCols(NodeId r) const;

    /** Values of row @p r. */
    std::span<const double> rowVals(NodeId r) const;

    const std::vector<uint64_t> &rowPtr() const { return rowPtr_; }
    const std::vector<NodeId> &colIdx() const { return colIdx_; }
    const std::vector<double> &values() const { return values_; }

    /** Transposed copy (CSR of the transpose). */
    CsrMatrix transposed() const;

    /**
     * Apply a symmetric permutation: row/col i of the result is
     * row/col perm[i] of this matrix (i.e. new_id -> old_id mapping).
     * Requires a square matrix. This is the "node relabeling" step of
     * GROW's graph-partitioning preprocessing (Fig. 13). Rows are
     * remapped independently (disjoint writes), so @p threads workers
     * produce a bit-identical matrix for every thread count.
     */
    CsrMatrix permutedSymmetric(const std::vector<NodeId> &new_to_old,
                                uint32_t threads = 1) const;

    /**
     * DRAM footprint of the compressed stream: values + column indices
     * (+ one row pointer per row).
     */
    Bytes streamBytes() const;

    /** Whether the structure arrays are internally consistent. */
    bool validate() const;

  private:
    uint32_t rows_ = 0;
    uint32_t cols_ = 0;
    std::vector<uint64_t> rowPtr_;  ///< size rows_+1
    std::vector<NodeId> colIdx_;    ///< size nnz, ascending within a row
    std::vector<double> values_;    ///< size nnz
};

} // namespace grow::sparse
