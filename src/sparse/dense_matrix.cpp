#include "sparse/dense_matrix.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace grow::sparse {

DenseMatrix::DenseMatrix(uint32_t rows, uint32_t cols)
    : rows_(rows), cols_(cols),
      data_(static_cast<size_t>(rows) * cols, 0.0)
{
}

void
DenseMatrix::fill(double v)
{
    std::fill(data_.begin(), data_.end(), v);
}

uint64_t
DenseMatrix::nonZeroCount(double eps) const
{
    uint64_t count = 0;
    for (double v : data_)
        if (std::abs(v) > eps)
            ++count;
    return count;
}

double
DenseMatrix::density(double eps) const
{
    if (data_.empty())
        return 0.0;
    return static_cast<double>(nonZeroCount(eps)) /
           static_cast<double>(data_.size());
}

Bytes
DenseMatrix::sizeBytes() const
{
    return static_cast<Bytes>(rows_) * cols_ * kValueBytes;
}

double
DenseMatrix::maxAbsDiff(const DenseMatrix &a, const DenseMatrix &b)
{
    GROW_ASSERT(a.rows() == b.rows() && a.cols() == b.cols(),
                "maxAbsDiff on mismatched shapes");
    double m = 0.0;
    for (size_t i = 0; i < a.data_.size(); ++i)
        m = std::max(m, std::abs(a.data_[i] - b.data_[i]));
    return m;
}

} // namespace grow::sparse
