/**
 * @file
 * Row-major dense matrix of fp64 values.
 *
 * Used for the right-hand-side operands of the paper's SpDeGEMMs (the
 * weight matrices W and the combination outputs XW) and for functional
 * verification of the cycle-level engines.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace grow::sparse {

class DenseMatrix
{
  public:
    DenseMatrix() = default;

    /** Construct a zero-initialised @p rows x @p cols matrix. */
    DenseMatrix(uint32_t rows, uint32_t cols);

    uint32_t rows() const { return rows_; }
    uint32_t cols() const { return cols_; }

    /** Element access. */
    double at(uint32_t r, uint32_t c) const { return data_[idx(r, c)]; }
    double &at(uint32_t r, uint32_t c) { return data_[idx(r, c)]; }

    /** Pointer to the start of row @p r (contiguous, cols() wide). */
    const double *row(uint32_t r) const { return data_.data() + idx(r, 0); }
    double *row(uint32_t r) { return data_.data() + idx(r, 0); }

    /** Set every element to @p v. */
    void fill(double v);

    /** Count of elements with |x| > eps. */
    uint64_t nonZeroCount(double eps = 0.0) const;

    /** Fraction of non-zero elements. */
    double density(double eps = 0.0) const;

    /** Footprint in DRAM (values only, row-major). */
    Bytes sizeBytes() const;

    /** Max |a - b| over all elements (matrices must be same shape). */
    static double maxAbsDiff(const DenseMatrix &a, const DenseMatrix &b);

  private:
    size_t
    idx(uint32_t r, uint32_t c) const
    {
        return static_cast<size_t>(r) * cols_ + c;
    }

    uint32_t rows_ = 0;
    uint32_t cols_ = 0;
    std::vector<double> data_;
};

} // namespace grow::sparse
