#include "sparse/reference_gemm.hpp"

#include <algorithm>
#include <vector>

#include "sparse/coo_matrix.hpp"
#include "util/logging.hpp"

namespace grow::sparse {

DenseMatrix
referenceSpMM(const CsrMatrix &s, const DenseMatrix &d)
{
    GROW_ASSERT(s.cols() == d.rows(), "SpMM shape mismatch");
    DenseMatrix c(s.rows(), d.cols());
    const uint32_t n = d.cols();
    for (uint32_t r = 0; r < s.rows(); ++r) {
        auto cols = s.rowCols(r);
        auto vals = s.rowVals(r);
        double *out = c.row(r);
        for (size_t i = 0; i < cols.size(); ++i) {
            const double v = vals[i];
            const double *rhs = d.row(cols[i]);
            for (uint32_t j = 0; j < n; ++j)
                out[j] += v * rhs[j];
        }
    }
    return c;
}

DenseMatrix
referenceGemm(const DenseMatrix &a, const DenseMatrix &b)
{
    GROW_ASSERT(a.cols() == b.rows(), "GEMM shape mismatch");
    DenseMatrix c(a.rows(), b.cols());
    for (uint32_t i = 0; i < a.rows(); ++i) {
        double *out = c.row(i);
        for (uint32_t k = 0; k < a.cols(); ++k) {
            const double v = a.at(i, k);
            if (v == 0.0)
                continue;
            const double *rhs = b.row(k);
            for (uint32_t j = 0; j < b.cols(); ++j)
                out[j] += v * rhs[j];
        }
    }
    return c;
}

CsrMatrix
referenceSpGemm(const CsrMatrix &a, const CsrMatrix &b)
{
    GROW_ASSERT(a.cols() == b.rows(), "SpGEMM shape mismatch");
    // Gustavson: accumulate each output row in a sparse accumulator.
    std::vector<double> acc(b.cols(), 0.0);
    std::vector<NodeId> touched;
    std::vector<uint8_t> seen(b.cols(), 0);

    CooMatrix coo(a.rows(), b.cols());
    for (uint32_t r = 0; r < a.rows(); ++r) {
        touched.clear();
        auto acols = a.rowCols(r);
        auto avals = a.rowVals(r);
        for (size_t i = 0; i < acols.size(); ++i) {
            const double v = avals[i];
            auto bcols = b.rowCols(acols[i]);
            auto bvals = b.rowVals(acols[i]);
            for (size_t j = 0; j < bcols.size(); ++j) {
                NodeId c = bcols[j];
                if (!seen[c]) {
                    seen[c] = 1;
                    touched.push_back(c);
                    acc[c] = 0.0;
                }
                acc[c] += v * bvals[j];
            }
        }
        std::sort(touched.begin(), touched.end());
        for (NodeId c : touched) {
            coo.add(r, c, acc[c]);
            seen[c] = 0;
        }
    }
    coo.canonicalize();
    return CsrMatrix::fromCoo(coo);
}

DenseMatrix
relu(const DenseMatrix &m)
{
    DenseMatrix out(m.rows(), m.cols());
    for (uint32_t r = 0; r < m.rows(); ++r)
        for (uint32_t c = 0; c < m.cols(); ++c)
            out.at(r, c) = std::max(0.0, m.at(r, c));
    return out;
}

MacCounts
countMacsBothOrders(const CsrMatrix &a, const CsrMatrix &x, uint32_t w_cols)
{
    GROW_ASSERT(a.cols() == x.rows(), "A*X shape mismatch");
    MacCounts out;

    // Order 1: (A*X) costs sum over nnz(A_ik) of nnz(X row k); the
    // result AX is dense (n x f), so (AX)*W costs n * f * w_cols.
    uint64_t ax = 0;
    for (uint32_t r = 0; r < a.rows(); ++r)
        for (NodeId k : a.rowCols(r))
            ax += x.rowNnz(k);
    out.axThenW = ax + static_cast<uint64_t>(a.rows()) * x.cols() * w_cols;

    // Order 2: (X*W) costs nnz(X) * w_cols; A*(XW) costs nnz(A) * w_cols
    // because XW is dense with w_cols columns.
    out.xwThenA = x.nnz() * w_cols + a.nnz() * w_cols;
    return out;
}

} // namespace grow::sparse
