/**
 * @file
 * Golden-model matrix kernels.
 *
 * These reference implementations define functional correctness for
 * every accelerator model: each cycle-level engine also produces its
 * output matrix, which integration tests compare against referenceSpMM.
 * The MAC-counting helpers reproduce the Fig. 2 execution-order study
 * ((A*X)*W vs A*(X*W)).
 */
#pragma once

#include <cstdint>

#include "sparse/csr_matrix.hpp"
#include "sparse/dense_matrix.hpp"

namespace grow::sparse {

/** C = S * D for sparse S (CSR) and dense D. */
DenseMatrix referenceSpMM(const CsrMatrix &s, const DenseMatrix &d);

/** C = A * B for dense A, B. */
DenseMatrix referenceGemm(const DenseMatrix &a, const DenseMatrix &b);

/** Sparse-sparse product as CSR (row-wise / Gustavson formulation). */
CsrMatrix referenceSpGemm(const CsrMatrix &a, const CsrMatrix &b);

/** Element-wise ReLU into a copy. */
DenseMatrix relu(const DenseMatrix &m);

/**
 * Multiply-accumulate counts for the two GCN execution orders of
 * A * X * W (Sec. II-B). Sparse operands contribute only effectual MACs.
 */
struct MacCounts
{
    /** (A*X) then (AX)*W. */
    uint64_t axThenW = 0;
    /** (X*W) then A*(XW). */
    uint64_t xwThenA = 0;
};

/**
 * Count MACs for both execution orders given the structural operands.
 *
 * @param a adjacency (sparse, n x n)
 * @param x features (sparse-or-dense, n x f; CSR structure used)
 * @param w_cols output feature width of the dense weight matrix
 */
MacCounts countMacsBothOrders(const CsrMatrix &a, const CsrMatrix &x,
                              uint32_t w_cols);

} // namespace grow::sparse
