#include "sparse/tiling.hpp"

#include "util/bitutil.hpp"
#include "util/logging.hpp"

namespace grow::sparse {

namespace {

constexpr uint64_t kMaxTiles = 1ULL << 28;

} // namespace

TileGridStats
TileGridStats::compute(const CsrMatrix &m, TileShape shape)
{
    GROW_ASSERT(shape.rows > 0 && shape.cols > 0, "tile shape must be >0");
    TileGridStats s;
    s.shape_ = shape;
    s.rowTiles_ = static_cast<uint32_t>(ceilDiv(m.rows(), shape.rows));
    s.colTiles_ = static_cast<uint32_t>(ceilDiv(m.cols(), shape.cols));
    uint64_t tiles = static_cast<uint64_t>(s.rowTiles_) * s.colTiles_;
    GROW_ASSERT(tiles <= kMaxTiles, "tile grid too large");
    s.nnz_.assign(tiles, 0);
    for (uint32_t r = 0; r < m.rows(); ++r) {
        uint64_t base = static_cast<uint64_t>(r / shape.rows) * s.colTiles_;
        for (NodeId c : m.rowCols(r))
            s.nnz_[base + c / shape.cols] += 1;
    }
    return s;
}

TileGridStats
TileGridStats::compute(const CscMatrix &m, TileShape shape)
{
    GROW_ASSERT(shape.rows > 0 && shape.cols > 0, "tile shape must be >0");
    TileGridStats s;
    s.shape_ = shape;
    s.rowTiles_ = static_cast<uint32_t>(ceilDiv(m.rows(), shape.rows));
    s.colTiles_ = static_cast<uint32_t>(ceilDiv(m.cols(), shape.cols));
    uint64_t tiles = static_cast<uint64_t>(s.rowTiles_) * s.colTiles_;
    GROW_ASSERT(tiles <= kMaxTiles, "tile grid too large");
    s.nnz_.assign(tiles, 0);
    for (uint32_t c = 0; c < m.cols(); ++c) {
        uint32_t k = c / shape.cols;
        for (NodeId r : m.colRows(c))
            s.nnz_[static_cast<uint64_t>(r / shape.rows) * s.colTiles_ + k]
                += 1;
    }
    return s;
}

uint32_t
TileGridStats::nnzAt(uint32_t m, uint32_t k) const
{
    GROW_ASSERT(m < rowTiles_ && k < colTiles_, "tile index out of range");
    return nnz_[static_cast<uint64_t>(m) * colTiles_ + k];
}

uint64_t
TileGridStats::nonEmptyTiles() const
{
    uint64_t count = 0;
    for (uint32_t v : nnz_)
        count += v > 0;
    return count;
}

uint64_t
TileGridStats::totalNnz() const
{
    uint64_t total = 0;
    for (uint32_t v : nnz_)
        total += v;
    return total;
}

BucketHistogram
TileGridStats::nnzHistogram(const std::vector<uint64_t> &bounds) const
{
    BucketHistogram h(bounds);
    for (uint32_t v : nnz_)
        if (v > 0)
            h.record(v);
    return h;
}

Bytes
TileFetchModel::effectualBytes(uint64_t nnz)
{
    return nnz * (kValueBytes + kIndexBytes);
}

Bytes
TileFetchModel::fetchedBytes(uint64_t nnz)
{
    if (nnz == 0)
        return 0;
    Bytes values = roundUp(nnz * kValueBytes, kDramLineBytes);
    Bytes indices = roundUp(nnz * kIndexBytes, kDramLineBytes);
    Bytes descriptor = kDramLineBytes;
    return values + indices + descriptor;
}

double
TileFetchTotals::utilization() const
{
    if (fetched == 0)
        return 1.0;
    return static_cast<double>(effectual) / static_cast<double>(fetched);
}

TileFetchTotals
tileFetchTotals(const TileGridStats &stats)
{
    TileFetchTotals t;
    for (uint32_t m = 0; m < stats.rowTiles(); ++m) {
        for (uint32_t k = 0; k < stats.colTiles(); ++k) {
            uint64_t nnz = stats.nnzAt(m, k);
            if (nnz == 0)
                continue;
            t.effectual += TileFetchModel::effectualBytes(nnz);
            t.fetched += TileFetchModel::fetchedBytes(nnz);
            t.tilesFetched += 1;
        }
    }
    return t;
}

TileFetchTotals
rowStreamFetchTotals(const CsrMatrix &m)
{
    TileFetchTotals t;
    // Values, indices and row pointers are all consumed by the
    // row-stationary engine, so the pointer stream counts as effectual.
    t.effectual = m.nnz() * (kValueBytes + kIndexBytes) +
                  static_cast<Bytes>(m.rows()) * kPtrBytes;
    // Values, indices and row pointers are each one densely packed
    // sequential stream.
    t.fetched = roundUp(m.nnz() * kValueBytes, kDramLineBytes) +
                roundUp(m.nnz() * kIndexBytes, kDramLineBytes) +
                roundUp(static_cast<Bytes>(m.rows()) * kPtrBytes,
                        kDramLineBytes);
    t.tilesFetched = m.rows();
    return t;
}

} // namespace grow::sparse
