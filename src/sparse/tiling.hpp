/**
 * @file
 * 2-D tiling analysis for outer-product SpDeGEMM dataflows.
 *
 * GCNAX (the paper's baseline) fetches the sparse operand as 2-D tiles of
 * a CSC-compressed matrix (Fig. 4). The GROW paper's motivation rests on
 * two measurements over those tiles:
 *  - Fig. 5: the number of non-zeros per fetched tile, and
 *  - Fig. 6: the effective DRAM bandwidth when fetching them with a
 *    64-byte minimum access granularity.
 * This module computes per-tile non-zero counts and models the tile fetch
 * cost: a non-empty tile transfers its packed values (8 B each), its
 * packed indices (4 B each) and one descriptor line, each rounded up to
 * the DRAM line size. A tile holding a single non-zero therefore reaches
 * only 12 B / 192 B = 6.25% utilization -- matching the paper's reported
 * worst case of "<6%" -- while the dense combination tiles approach 100%.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "sim/histogram.hpp"
#include "sim/types.hpp"
#include "sparse/csc_matrix.hpp"
#include "sparse/csr_matrix.hpp"

namespace grow::sparse {

/** Dimensions of one tile. */
struct TileShape
{
    uint32_t rows = 0;
    uint32_t cols = 0;
};

/**
 * Per-tile non-zero counts over a fixed tile grid.
 */
class TileGridStats
{
  public:
    TileGridStats() = default;

    /** Count tile occupancy of @p m under @p shape. */
    static TileGridStats compute(const CsrMatrix &m, TileShape shape);
    static TileGridStats compute(const CscMatrix &m, TileShape shape);

    uint32_t rowTiles() const { return rowTiles_; }
    uint32_t colTiles() const { return colTiles_; }
    TileShape shape() const { return shape_; }

    /** Non-zeros in tile (row tile @p m, column tile @p k). */
    uint32_t nnzAt(uint32_t m, uint32_t k) const;

    /** Number of tiles holding at least one non-zero. */
    uint64_t nonEmptyTiles() const;

    /** Total non-zeros across all tiles. */
    uint64_t totalNnz() const;

    /**
     * Histogram of nnz over *non-empty* tiles (the tiles that are
     * actually fetched), with the paper's Fig. 5 bucket bounds.
     */
    BucketHistogram nnzHistogram(const std::vector<uint64_t> &bounds) const;

  private:
    uint32_t rowTiles_ = 0;
    uint32_t colTiles_ = 0;
    TileShape shape_;
    std::vector<uint32_t> nnz_;
};

/**
 * DRAM cost model for fetching one compressed-sparse tile.
 */
struct TileFetchModel
{
    /** Bytes of useful payload in a tile with @p nnz non-zeros. */
    static Bytes effectualBytes(uint64_t nnz);

    /**
     * Bytes actually transferred from DRAM for a tile with @p nnz
     * non-zeros (0 for empty tiles, which the tile directory skips).
     */
    static Bytes fetchedBytes(uint64_t nnz);
};

/** Aggregate fetch totals for a whole matrix under a tile shape. */
struct TileFetchTotals
{
    Bytes effectual = 0;
    Bytes fetched = 0;
    uint64_t tilesFetched = 0;

    /** effectual / fetched, or 1.0 when nothing was fetched. */
    double utilization() const;
};

/** Sum the fetch model over all tiles of @p stats. */
TileFetchTotals tileFetchTotals(const TileGridStats &stats);

/**
 * Fetch totals for GROW's 1-D row-granular CSR streaming (Fig. 10(c)):
 * consecutive rows are packed densely, so the whole stream is read at
 * line granularity exactly once.
 */
TileFetchTotals rowStreamFetchTotals(const CsrMatrix &m);

} // namespace grow::sparse
