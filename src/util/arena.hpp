/**
 * @file
 * Per-engine bump arena + fixed-capacity ring buffer for the simulator
 * hot loops.
 *
 * The cycle-level engines (core::RowEngine above all) used to keep
 * their per-row bookkeeping in node-based standard containers
 * (std::deque, std::unordered_map). Every simulated row then paid for
 * pointer chasing and allocator traffic on structures whose sizes are
 * *statically bounded by the hardware configuration*: the multi-row
 * window never exceeds the runahead degree, the stream-chunk FIFO is
 * bounded by I-BUF capacity over the DMA chunk size, the LDN table by
 * its entry count. Arena + RingBuffer (and util/flat_map.hpp) replace
 * them with contiguous, cache-line-friendly storage carved out of one
 * allocation per engine:
 *
 *  - Arena: a bump allocator over one contiguous block. alloc<T>(n)
 *    returns aligned uninitialised storage; nothing is freed
 *    individually -- the owning engine frees everything at once by
 *    dropping the arena. Capacity is fixed at construction; exceeding
 *    it is a programming error (the caller sized the tables wrong),
 *    not a resize.
 *
 *  - RingBuffer<T>: a power-of-two-capacity FIFO with O(1)
 *    push_back/pop_front/operator[] and no wraparound branches beyond
 *    one mask. Growth is rejected by design: callers derive the
 *    capacity from the hardware bound, and a push beyond it means the
 *    bound was computed wrong (GROW_ASSERT), never a silent
 *    reallocation that would invalidate outstanding references.
 *
 * Everything here is deterministic plain data: swapping these in for
 * the standard containers must not change a single simulated cycle,
 * which tests/gcn/model_zoo_test.cpp's bit-identity locks enforce.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>

#include "util/logging.hpp"

namespace grow::util {

/** Round @p n up to the next power of two (min 1). */
inline size_t
ceilPow2(size_t n)
{
    size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

/**
 * Fixed-capacity bump allocator. One contiguous block, aligned for
 * anything up to alignof(std::max_align_t); alloc() hands out
 * uninitialised storage and never frees -- lifetime of every
 * allocation is the lifetime of the arena.
 */
class Arena
{
  public:
    explicit Arena(size_t capacity_bytes)
        : capacity_(capacity_bytes),
          block_(capacity_bytes ? new std::byte[capacity_bytes] : nullptr)
    {
    }

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    size_t capacity() const { return capacity_; }
    size_t used() const { return used_; }

    /** Aligned uninitialised storage for @p n objects of T. The arena
     *  must have been sized to fit every table it backs -- running out
     *  is a sizing bug, not an allocation failure. */
    template <typename T>
    T *
    alloc(size_t n)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena storage is never destructed");
        const size_t align = alignof(T);
        size_t at = (used_ + align - 1) & ~(align - 1);
        GROW_ASSERT(at + n * sizeof(T) <= capacity_,
                    "arena exhausted: size the tables before carving");
        used_ = at + n * sizeof(T);
        return reinterpret_cast<T *>(block_.get() + at);
    }

  private:
    size_t capacity_ = 0;
    size_t used_ = 0;
    std::unique_ptr<std::byte[]> block_;
};

/**
 * Fixed-capacity FIFO over arena (or heap) storage. Capacity rounds up
 * to a power of two so head/tail wrap with one mask. push_back beyond
 * capacity asserts -- see the file comment for why growth is rejected.
 */
template <typename T>
class RingBuffer
{
  public:
    RingBuffer() = default;

    /** Carve storage for at least @p min_capacity elements from
     *  @p arena. */
    RingBuffer(Arena &arena, size_t min_capacity)
        : mask_(ceilPow2(min_capacity ? min_capacity : 1) - 1),
          data_(arena.alloc<T>(mask_ + 1))
    {
    }

    /** Heap-backed variant (tests, callers without an arena). */
    explicit RingBuffer(size_t min_capacity)
        : mask_(ceilPow2(min_capacity ? min_capacity : 1) - 1),
          owned_(new T[mask_ + 1]), data_(owned_.get())
    {
    }

    size_t capacity() const { return data_ ? mask_ + 1 : 0; }
    size_t size() const { return tail_ - head_; }
    bool empty() const { return head_ == tail_; }
    bool full() const { return size() == capacity(); }

    T &
    push_back(const T &v)
    {
        GROW_ASSERT(!full(),
                    "ring buffer full: fixed capacity, growth rejected");
        T &slot = data_[tail_ & mask_];
        slot = v;
        ++tail_;
        return slot;
    }

    void
    pop_front()
    {
        GROW_ASSERT(!empty(), "pop_front on empty ring buffer");
        ++head_;
    }

    T &front() { return (*this)[0]; }
    const T &front() const { return (*this)[0]; }
    T &back() { return (*this)[size() - 1]; }
    const T &back() const { return (*this)[size() - 1]; }

    /** @p i counted from the front (0 = oldest). */
    T &
    operator[](size_t i)
    {
        GROW_ASSERT(i < size(), "ring buffer index out of range");
        return data_[(head_ + i) & mask_];
    }
    const T &
    operator[](size_t i) const
    {
        GROW_ASSERT(i < size(), "ring buffer index out of range");
        return data_[(head_ + i) & mask_];
    }

    void clear() { head_ = tail_ = 0; }

  private:
    size_t mask_ = 0;
    size_t head_ = 0;
    size_t tail_ = 0;
    std::unique_ptr<T[]> owned_;
    T *data_ = nullptr;
};

} // namespace grow::util
