/**
 * @file
 * Small integer helpers shared across the simulator.
 */
#pragma once

#include <cstdint>

namespace grow {

/** Ceiling division for non-negative integers. */
constexpr uint64_t
ceilDiv(uint64_t a, uint64_t b)
{
    return (a + b - 1) / b;
}

/** Round @p a up to the next multiple of @p b. */
constexpr uint64_t
roundUp(uint64_t a, uint64_t b)
{
    return ceilDiv(a, b) * b;
}

/** Round @p a down to a multiple of @p b. */
constexpr uint64_t
roundDown(uint64_t a, uint64_t b)
{
    return (a / b) * b;
}

/** Whether @p x is a power of two (0 is not). */
constexpr bool
isPow2(uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** Smallest power of two >= @p x (x must be >= 1). */
constexpr uint64_t
nextPow2(uint64_t x)
{
    uint64_t p = 1;
    while (p < x)
        p <<= 1;
    return p;
}

/** floor(log2(x)) for x >= 1. */
constexpr unsigned
log2Floor(uint64_t x)
{
    unsigned r = 0;
    while (x >>= 1)
        ++r;
    return r;
}

} // namespace grow
