/**
 * @file
 * FNV-1a content checksums shared by every on-disk format.
 *
 * Both binary interchange formats (the WorkloadCache artefact files and
 * the graph_convert CSR files) follow one header discipline: magic,
 * format version, payload, trailing FNV-1a 64-bit checksum over the
 * payload bytes. The hash lives here so the two formats cannot drift
 * apart, and so out-of-core writers can checksum incrementally while
 * streaming the payload instead of buffering it.
 */
#pragma once

#include <cstddef>
#include <cstdint>

namespace grow::util {

/** FNV-1a 64-bit offset basis. */
inline constexpr uint64_t kFnv1aSeed = 0xcbf29ce484222325ULL;

/** FNV-1a 64-bit prime. */
inline constexpr uint64_t kFnv1aPrime = 0x100000001b3ULL;

/**
 * One-shot FNV-1a 64-bit over a byte range; cheap, order-sensitive,
 * and resumable by passing a previous digest as @p seed.
 */
inline uint64_t
fnv1a(const void *data, size_t size, uint64_t seed = kFnv1aSeed)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    uint64_t h = seed;
    for (size_t i = 0; i < size; ++i) {
        h ^= p[i];
        h *= kFnv1aPrime;
    }
    return h;
}

/**
 * Streaming FNV-1a accumulator for writers that produce their payload
 * in pieces (graph_convert streams multi-GB neighbor arrays without
 * ever holding them in one buffer).
 */
class Fnv1a
{
  public:
    /** Fold @p size bytes at @p data into the digest. */
    void update(const void *data, size_t size)
    {
        digest_ = fnv1a(data, size, digest_);
    }

    /** Digest of everything folded in so far. */
    uint64_t digest() const { return digest_; }

  private:
    uint64_t digest_ = kFnv1aSeed;
};

} // namespace grow::util
