#include "util/cli.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/logging.hpp"
#include "util/string_util.hpp"

namespace grow {

CliArgs::CliArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        // Tolerate google-benchmark style flags so mixed binaries work.
        if (arg.rfind("--", 0) == 0)
            continue;
        auto pos = arg.find('=');
        if (pos == std::string::npos) {
            fatal("unrecognized argument '" + arg +
                  "' (expected key=value)");
        }
        kv_[trim(arg.substr(0, pos))] = trim(arg.substr(pos + 1));
    }
}

bool
CliArgs::has(const std::string &key) const
{
    return kv_.count(key) > 0;
}

std::string
CliArgs::get(const std::string &key, const std::string &def) const
{
    auto it = kv_.find(key);
    return it == kv_.end() ? def : it->second;
}

int64_t
CliArgs::getInt(const std::string &key, int64_t def) const
{
    auto it = kv_.find(key);
    if (it == kv_.end())
        return def;
    return std::strtoll(it->second.c_str(), nullptr, 10);
}

double
CliArgs::getDouble(const std::string &key, double def) const
{
    auto it = kv_.find(key);
    if (it == kv_.end())
        return def;
    return std::strtod(it->second.c_str(), nullptr);
}

bool
CliArgs::getBool(const std::string &key, bool def) const
{
    auto it = kv_.find(key);
    if (it == kv_.end())
        return def;
    std::string v = toLower(it->second);
    if (v == "1" || v == "true" || v == "yes" || v == "on")
        return true;
    if (v == "0" || v == "false" || v == "no" || v == "off")
        return false;
    fatal("invalid boolean value for " + key + ": " + it->second);
}

std::map<std::string, std::string>
CliArgs::withPrefix(const std::string &prefix) const
{
    std::map<std::string, std::string> out;
    for (const auto &[key, value] : kv_) {
        if (key.size() > prefix.size() && key.rfind(prefix, 0) == 0)
            out.emplace(key.substr(prefix.size()), value);
    }
    return out;
}

void
CliArgs::requireKnown(const std::vector<std::string> &known,
                      const std::vector<std::string> &known_prefixes) const
{
    std::vector<std::string> sorted = known;
    std::sort(sorted.begin(), sorted.end());
    auto prefixed = [&known_prefixes](const std::string &key) {
        for (const auto &p : known_prefixes)
            if (key.size() > p.size() && key.rfind(p, 0) == 0)
                return true;
        return false;
    };
    std::string unknown;
    for (const auto &[key, value] : kv_) {
        if (std::find(sorted.begin(), sorted.end(), key) != sorted.end())
            continue;
        if (prefixed(key))
            continue;
        if (!unknown.empty())
            unknown += ", ";
        unknown += key;
    }
    if (unknown.empty())
        return;
    std::string accepted;
    for (const auto &key : sorted) {
        if (!accepted.empty())
            accepted += ", ";
        accepted += key;
    }
    for (const auto &p : known_prefixes) {
        if (!accepted.empty())
            accepted += ", ";
        accepted += p + "<name>";
    }
    fatal("unknown argument(s): " + unknown + " (accepted keys: " +
          accepted + ")");
}

void
CliArgs::applyAliases(
    const std::vector<std::pair<std::string, std::string>> &aliases)
{
    for (const auto &[oldKey, canonical] : aliases) {
        auto it = kv_.find(oldKey);
        if (it == kv_.end())
            continue;
        if (kv_.count(canonical)) {
            fatal("both '" + oldKey + "=' and '" + canonical +
                  "=' supplied; '" + oldKey +
                  "=' is a deprecated alias of '" + canonical +
                  "=' -- pass only the canonical key");
        }
        logWarn("'" + oldKey + "=' is deprecated; use '" + canonical +
                "='");
        kv_.emplace(canonical, it->second);
        kv_.erase(it);
    }
}

uint64_t
parseByteSize(const std::string &key, const std::string &value)
{
    if (value.empty())
        fatal(key + " needs a byte size (e.g. " + key + "=512M)");
    uint64_t mult = 1;
    std::string digits = value;
    switch (value.back()) {
      case 'k': case 'K': mult = 1ull << 10; break;
      case 'm': case 'M': mult = 1ull << 20; break;
      case 'g': case 'G': mult = 1ull << 30; break;
      default: break;
    }
    if (mult != 1)
        digits.pop_back();
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos)
        fatal(key + " must be <digits>[K|M|G], got '" + value + "'");
    return std::stoull(digits) * mult;
}

std::vector<std::string>
CliArgs::getList(const std::string &key,
                 const std::vector<std::string> &def) const
{
    auto it = kv_.find(key);
    if (it == kv_.end())
        return def;
    std::vector<std::string> out;
    for (auto &piece : split(it->second, ','))
        if (!trim(piece).empty())
            out.push_back(trim(piece));
    return out;
}

} // namespace grow
