/**
 * @file
 * Minimal key=value command-line parsing for bench/example binaries.
 *
 * Every harness accepts arguments of the form `key=value` (e.g.
 * `scale=mini datasets=cora,reddit seed=7`) so that the default
 * `for b in build/bench/*; do $b; done` sweep runs with sensible
 * defaults while still allowing focused re-runs.
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace grow {

/** Parsed `key=value` command-line options with typed accessors. */
class CliArgs
{
  public:
    CliArgs() = default;

    /** Parse argv; unknown positional arguments trigger fatal(). */
    CliArgs(int argc, char **argv);

    /** Whether @p key was supplied. */
    bool has(const std::string &key) const;

    /** String option with default. */
    std::string get(const std::string &key, const std::string &def) const;

    /** Integer option with default. */
    int64_t getInt(const std::string &key, int64_t def) const;

    /** Double option with default. */
    double getDouble(const std::string &key, double def) const;

    /** Boolean option with default (accepts 0/1/true/false/yes/no). */
    bool getBool(const std::string &key, bool def) const;

    /** Comma-separated list option. */
    std::vector<std::string>
    getList(const std::string &key, const std::vector<std::string> &def) const;

    /**
     * Repeatable prefixed options: every supplied key starting with
     * @p prefix, returned as (suffix -> value) with the prefix
     * stripped. `tol.cycles=0.02 tol.rows/s=0.15` under prefix "tol."
     * yields {cycles: "0.02", "rows/s": "0.15"}. Suffixes must be
     * non-empty (a bare `tol.=x` is rejected by requireKnown).
     */
    std::map<std::string, std::string>
    withPrefix(const std::string &prefix) const;

    /**
     * fatal() unless every supplied key is in @p known or carries one
     * of @p known_prefixes with a non-empty suffix. A typo like
     * `cachdir=` must abort with the accepted-key list instead of
     * silently running with the option dropped.
     */
    void requireKnown(const std::vector<std::string> &known,
                      const std::vector<std::string> &known_prefixes = {})
        const;

    /**
     * Rename deprecated keys to their canonical spelling before any
     * lookup: each (old, canonical) pair moves a supplied `old=` value
     * under `canonical=` and logs a one-line deprecation note. Both
     * spellings supplied at once is a conflict and fatal()s -- the
     * caller cannot know which value was meant. Call before
     * requireKnown() so only the canonical grammar needs listing.
     */
    void applyAliases(
        const std::vector<std::pair<std::string, std::string>> &aliases);

  private:
    std::map<std::string, std::string> kv_;
};

/**
 * Parse a byte-size option value: digits with an optional K/M/G suffix
 * (binary multiples). @p key names the option in error messages. The
 * one grammar behind every byte-budget flag (`memcap=`, `bytebudget=`).
 */
uint64_t parseByteSize(const std::string &key, const std::string &value);

} // namespace grow
