/**
 * @file
 * Open-addressing flat hash map for the simulator hot loops.
 *
 * FlatMap<K, V> replaces std::unordered_map in per-engine tables whose
 * live size is bounded by the hardware configuration (core::RowEngine's
 * LDN table above all): one contiguous slot array, linear probing, no
 * per-node allocation, no pointer chasing -- a lookup touches one cache
 * line in the common case instead of walking a bucket chain.
 *
 * Deletion uses tombstones: erase() marks the slot Dead so later probes
 * keep walking past it; insert() reuses the first tombstone on its
 * probe path. The table never rehashes -- capacity is fixed at
 * construction (rounded to a power of two, sized so the configured
 * load factor is never exceeded) and exceeding it asserts, mirroring
 * util/arena.hpp's growth-rejection contract: live occupancy is
 * hardware-bounded, so overflow is a sizing bug.
 *
 * To stop tombstone accumulation from degrading probes in long runs,
 * the map rebuilds in place (compaction, not growth) when live + dead
 * slots would exceed 3/4 of the table. Live entries alone never exceed
 * 1/2, so at least slotCount/4 tombstones accrue between rebuilds and
 * compaction stays amortised O(1) per erase even under full-occupancy
 * churn.
 *
 * Key type K must be an unsigned integral; one key value must be
 * reserved as the empty sentinel (kInvalidNode for NodeId keys).
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "util/arena.hpp"
#include "util/logging.hpp"

namespace grow::util {

template <typename K, typename V>
class FlatMap
{
    static_assert(std::is_unsigned_v<K>,
                  "FlatMap keys must be unsigned integrals");

  public:
    /**
     * @param max_live  most entries ever live at once (hardware bound)
     * @param empty_key reserved key value that is never inserted
     */
    FlatMap(size_t max_live, K empty_key)
        : emptyKey_(empty_key),
          mask_(ceilPow2(
                    (max_live ? max_live : 1) * kSlotsPerEntry) -
                1),
          slots_(mask_ + 1, Slot{empty_key, V{}, State::Empty}),
          maxLive_(max_live ? max_live : 1)
    {
    }

    size_t size() const { return live_; }
    bool empty() const { return live_ == 0; }
    size_t capacity() const { return maxLive_; }
    size_t slotCount() const { return mask_ + 1; }

    /** Pointer to the value of @p key, or nullptr. Never invalidated
     *  by erase(); invalidated by insert() (potential compaction). */
    V *
    find(K key)
    {
        size_t i = probeStart(key);
        while (true) {
            Slot &s = slots_[i];
            if (s.state == State::Empty)
                return nullptr;
            if (s.state == State::Live && s.key == key)
                return &s.value;
            i = (i + 1) & mask_;
        }
    }

    const V *
    find(K key) const
    {
        return const_cast<FlatMap *>(this)->find(key);
    }

    /** Insert or overwrite. Asserts when live occupancy would exceed
     *  the construction bound. */
    void
    insert(K key, const V &value)
    {
        GROW_ASSERT(key != emptyKey_, "FlatMap: reserved key inserted");
        size_t i = probeStart(key);
        size_t firstDead = kNone;
        while (true) {
            Slot &s = slots_[i];
            if (s.state == State::Live && s.key == key) {
                s.value = value;
                return;
            }
            if (s.state == State::Dead && firstDead == kNone)
                firstDead = i;
            if (s.state == State::Empty)
                break;
            i = (i + 1) & mask_;
        }
        GROW_ASSERT(live_ < maxLive_,
                    "FlatMap full: fixed capacity, growth rejected");
        if (firstDead != kNone) {
            i = firstDead;
            --dead_;
        } else if ((live_ + dead_ + 1) * 4 > slotCount() * 3) {
            // Tombstones are crowding the table: rebuild in place and
            // redo the probe. The 3/4 threshold (live alone never
            // exceeds 1/2) lets ~slotCount/4 tombstones accumulate
            // between rebuilds, so compaction is amortised O(1) per
            // erase even when the table churns at full occupancy --
            // while probes still terminate fast on the >= 1/4 of slots
            // that stay Empty.
            compact();
            insert(key, value);
            return;
        }
        slots_[i] = Slot{key, value, State::Live};
        ++live_;
    }

    /** Remove @p key if present; returns whether it was. */
    bool
    erase(K key)
    {
        size_t i = probeStart(key);
        while (true) {
            Slot &s = slots_[i];
            if (s.state == State::Empty)
                return false;
            if (s.state == State::Live && s.key == key) {
                s.state = State::Dead;
                s.key = emptyKey_;
                --live_;
                ++dead_;
                return true;
            }
            i = (i + 1) & mask_;
        }
    }

    void
    clear()
    {
        for (Slot &s : slots_)
            s = Slot{emptyKey_, V{}, State::Empty};
        live_ = dead_ = 0;
    }

    /** Tombstoned slots (observability for tests). */
    size_t tombstones() const { return dead_; }

  private:
    enum class State : uint8_t { Empty, Dead, Live };

    struct Slot
    {
        K key;
        V value;
        State state;
    };

    /** Slot array head-room: 2 slots per live entry caps the load
     *  factor at 0.5 before tombstones force a compaction. */
    static constexpr size_t kSlotsPerEntry = 2;
    static constexpr size_t kNone = static_cast<size_t>(-1);

    size_t
    probeStart(K key) const
    {
        // Fibonacci hashing spreads consecutive node ids; consecutive
        // probes stay linear for cache friendliness.
        uint64_t h = static_cast<uint64_t>(key) * 0x9E3779B97F4A7C15ULL;
        return static_cast<size_t>(h >> 32) & mask_;
    }

    void
    compact()
    {
        std::vector<Slot> old = std::move(slots_);
        slots_.assign(old.size(), Slot{emptyKey_, V{}, State::Empty});
        live_ = dead_ = 0;
        for (const Slot &s : old)
            if (s.state == State::Live)
                insert(s.key, s.value);
    }

    K emptyKey_;
    size_t mask_;
    std::vector<Slot> slots_;
    size_t maxLive_;
    size_t live_ = 0;
    size_t dead_ = 0;
};

} // namespace grow::util
