#include "util/logging.hpp"

#include <stdexcept>

namespace grow {

Logger &
Logger::instance()
{
    static Logger logger;
    return logger;
}

void
Logger::log(LogLevel level, const std::string &msg)
{
    if (static_cast<int>(level) < static_cast<int>(level_))
        return;
    const char *tag = "";
    switch (level) {
      case LogLevel::Debug: tag = "[debug] "; break;
      case LogLevel::Info:  tag = "[info]  "; break;
      case LogLevel::Warn:  tag = "[warn]  "; break;
      case LogLevel::Error: tag = "[error] "; break;
      case LogLevel::Silent: return;
    }
    std::cerr << tag << msg << "\n";
}

void logDebug(const std::string &msg) { Logger::instance().log(LogLevel::Debug, msg); }
void logInfo(const std::string &msg)  { Logger::instance().log(LogLevel::Info, msg); }
void logWarn(const std::string &msg)  { Logger::instance().log(LogLevel::Warn, msg); }
void logError(const std::string &msg) { Logger::instance().log(LogLevel::Error, msg); }

void
panic(const std::string &msg)
{
    // Throwing (rather than abort()) lets unit tests observe panics.
    throw std::logic_error("panic: " + msg);
}

void
fatal(const std::string &msg)
{
    throw std::runtime_error("fatal: " + msg);
}

} // namespace grow
