/**
 * @file
 * Logging and error-reporting facilities.
 *
 * Follows the gem5 convention of distinguishing panic() (an internal
 * invariant was violated -- a simulator bug) from fatal() (the user asked
 * for something the simulator cannot do -- a configuration error).
 */
#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace grow {

/** Verbosity levels for runtime log output. */
enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Silent = 4 };

/**
 * Global logging configuration.
 *
 * The default level is Warn so that library users (tests, benches) are not
 * flooded; benches raise it explicitly when tracing a simulation.
 */
class Logger
{
  public:
    /** Return the process-wide logger instance. */
    static Logger &instance();

    LogLevel level() const { return level_; }
    void setLevel(LogLevel level) { level_ = level; }

    /** Emit one message if @p level passes the current threshold. */
    void log(LogLevel level, const std::string &msg);

  private:
    Logger() = default;
    LogLevel level_ = LogLevel::Warn;
};

/** Log a debug-level message. */
void logDebug(const std::string &msg);
/** Log an info-level message. */
void logInfo(const std::string &msg);
/** Log a warning. */
void logWarn(const std::string &msg);
/** Log an error (does not terminate). */
void logError(const std::string &msg);

/**
 * Abort because an internal invariant was violated (simulator bug).
 * Mirrors gem5's panic(): never the user's fault.
 */
[[noreturn]] void panic(const std::string &msg);

/**
 * Exit because of a user-level configuration error (not a simulator bug).
 * Mirrors gem5's fatal().
 */
[[noreturn]] void fatal(const std::string &msg);

/**
 * Check a simulator invariant; panic with location info when violated.
 * Unlike assert() this is active in release builds: cycle-level models
 * must never silently corrupt state.
 */
#define GROW_ASSERT(cond, msg)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            std::ostringstream oss_;                                        \
            oss_ << "assertion failed at " << __FILE__ << ":" << __LINE__   \
                 << ": " << (msg);                                          \
            ::grow::panic(oss_.str());                                      \
        }                                                                   \
    } while (0)

} // namespace grow
