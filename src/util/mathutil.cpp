#include "util/mathutil.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace grow {

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double logSum = 0.0;
    for (double v : values) {
        GROW_ASSERT(v > 0.0 && std::isfinite(v),
                    "geomean requires strictly positive finite values");
        logSum += std::log(v);
    }
    return std::exp(logSum / static_cast<double>(values.size()));
}

} // namespace grow
