/**
 * @file
 * Small floating-point helpers shared by benches and reports.
 */
#pragma once

#include <vector>

namespace grow {

/**
 * Geometric mean of @p values (the "average speedup" aggregation of
 * the figure benches). An empty input returns 0. Every value must be
 * strictly positive: a zero or negative ratio has no geometric mean,
 * and silently returning NaN (or a garbage exp(log) of a negative)
 * would corrupt summary rows -- panics instead.
 */
double geomean(const std::vector<double> &values);

} // namespace grow
