#include "util/random.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace grow {

namespace {

/** SplitMix64 step, used only for seeding. */
uint64_t
splitMix64(uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t x = seed;
    for (auto &s : s_)
        s = splitMix64(x);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> uniform in [0,1).
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

uint64_t
Rng::bounded(uint64_t n)
{
    GROW_ASSERT(n > 0, "bounded(0) is undefined");
    // Lemire's nearly-divisionless bounded sampling.
    uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < n) {
        uint64_t t = -n % n;
        while (l < t) {
            x = next();
            m = static_cast<__uint128_t>(x) * n;
            l = static_cast<uint64_t>(m);
        }
    }
    return static_cast<uint64_t>(m >> 64);
}

int64_t
Rng::range(int64_t lo, int64_t hi)
{
    GROW_ASSERT(lo <= hi, "range with lo > hi");
    return lo + static_cast<int64_t>(bounded(static_cast<uint64_t>(hi - lo + 1)));
}

bool
Rng::bernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

double
Rng::pareto(double alpha, double xm)
{
    GROW_ASSERT(alpha > 0 && xm > 0, "pareto requires positive parameters");
    double u = 1.0 - uniform(); // in (0, 1]
    return xm / std::pow(u, 1.0 / alpha);
}

double
Rng::exponential(double lambda)
{
    GROW_ASSERT(lambda > 0, "exponential requires positive rate");
    double u = 1.0 - uniform();
    return -std::log(u) / lambda;
}

double
Rng::normal(double mean, double stddev)
{
    double u1 = 1.0 - uniform();
    double u2 = uniform();
    double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
    return mean + stddev * z;
}

AliasTable::AliasTable(const std::vector<double> &weights)
{
    const size_t n = weights.size();
    GROW_ASSERT(n > 0, "alias table needs at least one weight");
    double total = 0.0;
    for (double w : weights) {
        GROW_ASSERT(w >= 0.0, "alias table weights must be non-negative");
        total += w;
    }
    GROW_ASSERT(total > 0.0, "alias table weights must not all be zero");

    prob_.assign(n, 0.0);
    alias_.assign(n, 0);

    // Vose's algorithm.
    std::vector<double> scaled(n);
    std::vector<uint32_t> small, large;
    small.reserve(n);
    large.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        scaled[i] = weights[i] * n / total;
        if (scaled[i] < 1.0)
            small.push_back(static_cast<uint32_t>(i));
        else
            large.push_back(static_cast<uint32_t>(i));
    }
    while (!small.empty() && !large.empty()) {
        uint32_t s = small.back(); small.pop_back();
        uint32_t l = large.back(); large.pop_back();
        prob_[s] = scaled[s];
        alias_[s] = l;
        scaled[l] = (scaled[l] + scaled[s]) - 1.0;
        if (scaled[l] < 1.0)
            small.push_back(l);
        else
            large.push_back(l);
    }
    while (!large.empty()) {
        prob_[large.back()] = 1.0;
        large.pop_back();
    }
    while (!small.empty()) {
        prob_[small.back()] = 1.0;
        small.pop_back();
    }
}

uint32_t
AliasTable::sample(Rng &rng) const
{
    GROW_ASSERT(!prob_.empty(), "sampling from empty alias table");
    uint32_t i = static_cast<uint32_t>(rng.bounded(prob_.size()));
    return rng.uniform() < prob_[i] ? i : alias_[i];
}

} // namespace grow
