/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * All synthetic graphs and feature matrices are generated from explicit
 * seeds so that every experiment in the paper-reproduction harness is
 * bit-reproducible across runs and machines. The generator is
 * xoshiro256** (Blackman & Vigna), which is fast, has a 256-bit state and
 * passes BigCrush; we do not use std::mt19937 because its stream is not
 * guaranteed identical across standard-library implementations for all
 * the distribution adaptors we need.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace grow {

/**
 * xoshiro256** PRNG with SplitMix64 seeding.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n) using Lemire's bounded method. */
    uint64_t bounded(uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t range(int64_t lo, int64_t hi);

    /** Bernoulli trial with success probability p. */
    bool bernoulli(double p);

    /**
     * Pareto-distributed sample with shape @p alpha and minimum @p xm.
     * Used for power-law degree weights: P(X > x) = (xm/x)^alpha.
     */
    double pareto(double alpha, double xm = 1.0);

    /** Standard exponential sample with rate @p lambda. */
    double exponential(double lambda = 1.0);

    /** Normal sample via Box-Muller (no state cached). */
    double normal(double mean = 0.0, double stddev = 1.0);

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (size_t i = v.size(); i > 1; --i) {
            size_t j = bounded(i);
            std::swap(v[i - 1], v[j]);
        }
    }

  private:
    uint64_t s_[4];
};

/**
 * Alias-method sampler for drawing indices from a fixed discrete
 * distribution in O(1) per sample. Used by the graph generators to pick
 * edge endpoints proportionally to power-law degree weights.
 */
class AliasTable
{
  public:
    AliasTable() = default;

    /** Build from (unnormalised) non-negative weights. */
    explicit AliasTable(const std::vector<double> &weights);

    /** Number of categories. */
    size_t size() const { return prob_.size(); }

    /** Whether the table has been initialised with >=1 category. */
    bool empty() const { return prob_.empty(); }

    /** Draw one index. */
    uint32_t sample(Rng &rng) const;

  private:
    std::vector<double> prob_;
    std::vector<uint32_t> alias_;
};

} // namespace grow
