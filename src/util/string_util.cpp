#include "util/string_util.hpp"

#include <cctype>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace grow {

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == sep) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    out.push_back(cur);
    return out;
}

std::string
trim(const std::string &s)
{
    size_t b = 0;
    size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::string
fmtDouble(double v, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << v;
    return oss.str();
}

std::string
fmtRatio(double v, int precision)
{
    return fmtDouble(v, precision) + "x";
}

std::string
fmtPercent(double v, int precision)
{
    return fmtDouble(v * 100.0, precision) + "%";
}

std::string
fmtBytes(uint64_t bytes)
{
    const char *suffix[] = {"B", "KiB", "MiB", "GiB", "TiB"};
    double v = static_cast<double>(bytes);
    int idx = 0;
    while (v >= 1024.0 && idx < 4) {
        v /= 1024.0;
        ++idx;
    }
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(idx == 0 ? 0 : 2) << v << " "
        << suffix[idx];
    return oss.str();
}

std::string
fmtCount(uint64_t n)
{
    std::string digits = std::to_string(n);
    std::string out;
    int count = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (count > 0 && count % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++count;
    }
    return std::string(out.rbegin(), out.rend());
}

std::string
fmtSci(double v, int precision)
{
    std::ostringstream oss;
    oss << std::scientific << std::setprecision(precision) << v;
    return oss.str();
}

std::string
toLower(const std::string &s)
{
    std::string out = s;
    for (char &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

} // namespace grow
