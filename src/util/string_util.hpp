/**
 * @file
 * String formatting helpers used by the reporting layer.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace grow {

/** Split @p s on @p sep (keeping empty fields). */
std::vector<std::string> split(const std::string &s, char sep);

/** Strip leading/trailing whitespace. */
std::string trim(const std::string &s);

/** Render a double with @p precision significant decimal places. */
std::string fmtDouble(double v, int precision = 3);

/** Render a ratio like "2.84x". */
std::string fmtRatio(double v, int precision = 2);

/** Render a fraction in [0,1] as a percentage like "23.4%". */
std::string fmtPercent(double v, int precision = 1);

/** Render a byte count with binary suffix (KiB/MiB/GiB). */
std::string fmtBytes(uint64_t bytes);

/** Render a large count with thousands separators. */
std::string fmtCount(uint64_t n);

/** Render an engineering-notation count like "1.26e8" for big numbers. */
std::string fmtSci(double v, int precision = 2);

/** Lower-case ASCII copy. */
std::string toLower(const std::string &s);

} // namespace grow
