#include "util/table.hpp"

#include <algorithm>
#include <iostream>
#include <sstream>

namespace grow {

TextTable::TextTable(std::string title) : title_(std::move(title)) {}

void
TextTable::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    row.resize(header_.empty() ? row.size() : header_.size());
    rows_.push_back(std::move(row));
}

std::string
TextTable::render() const
{
    size_t ncols = header_.size();
    for (const auto &row : rows_)
        ncols = std::max(ncols, row.size());

    std::vector<size_t> width(ncols, 0);
    auto fit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    };
    if (!header_.empty())
        fit(header_);
    for (const auto &row : rows_)
        fit(row);

    auto renderRow = [&](const std::vector<std::string> &row) {
        std::ostringstream oss;
        for (size_t c = 0; c < ncols; ++c) {
            std::string cell = c < row.size() ? row[c] : "";
            oss << "| " << cell << std::string(width[c] - cell.size(), ' ')
                << " ";
        }
        oss << "|";
        return oss.str();
    };

    std::ostringstream out;
    out << "== " << title_ << " ==\n";
    std::string sep = "+";
    for (size_t c = 0; c < ncols; ++c)
        sep += std::string(width[c] + 2, '-') + "+";
    out << sep << "\n";
    if (!header_.empty()) {
        out << renderRow(header_) << "\n" << sep << "\n";
    }
    for (const auto &row : rows_)
        out << renderRow(row) << "\n";
    out << sep << "\n";
    return out.str();
}

std::string
TextTable::renderCsv() const
{
    auto escape = [](const std::string &cell) {
        if (cell.find_first_of(",\"\n") == std::string::npos)
            return cell;
        std::string out = "\"";
        for (char c : cell) {
            if (c == '"')
                out += '"';
            out += c;
        }
        out += '"';
        return out;
    };
    std::ostringstream oss;
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            if (c > 0)
                oss << ',';
            oss << escape(row[c]);
        }
        oss << '\n';
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &row : rows_)
        emit(row);
    return oss.str();
}

void
TextTable::print() const
{
    std::cout << render() << std::flush;
}

} // namespace grow
