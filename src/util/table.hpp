/**
 * @file
 * ASCII table rendering for the benchmark harness.
 *
 * Every bench binary regenerates one table or figure from the paper; the
 * series are printed as aligned text tables so the output can be diffed
 * against EXPERIMENTS.md.
 */
#pragma once

#include <string>
#include <vector>

namespace grow {

/**
 * A simple column-aligned text table with a title and a header row.
 */
class TextTable
{
  public:
    /** Construct with a caption printed above the table. */
    explicit TextTable(std::string title);

    /** Set the header row. */
    void setHeader(std::vector<std::string> header);

    /** Append one data row (padded/truncated to header width). */
    void addRow(std::vector<std::string> row);

    /** Render the full table to a string. */
    std::string render() const;

    /**
     * Render as RFC-4180-style CSV (quoting cells containing commas or
     * quotes) for downstream plotting scripts.
     */
    std::string renderCsv() const;

    /** Render and write to stdout. */
    void print() const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace grow
