#include "util/topology.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <thread>
#include <unordered_map>

#ifdef __linux__
#include <sched.h>
#endif

namespace grow::util {

namespace {

/** First line of @p path, or "" when unreadable. */
std::string
readLine(const std::string &path)
{
    std::ifstream in(path);
    std::string line;
    if (!in || !std::getline(in, line))
        return {};
    return line;
}

/** Unsigned decimal content of @p path, or @p fallback. */
uint32_t
readUint(const std::string &path, uint32_t fallback)
{
    const std::string line = readLine(path);
    if (line.empty())
        return fallback;
    try {
        return static_cast<uint32_t>(std::stoul(line));
    } catch (...) {
        return fallback;
    }
}

} // namespace

std::vector<uint32_t>
parseCpuList(const std::string &list)
{
    // Kernel cpulist grammar: comma-separated decimal ids and
    // inclusive lo-hi ranges. Malformed tokens are skipped rather than
    // fatal -- a broken sysfs must degrade, not abort the simulator.
    std::vector<uint32_t> out;
    std::stringstream ss(list);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
        tok.erase(std::remove_if(tok.begin(), tok.end(),
                                 [](unsigned char c) {
                                     return std::isspace(c);
                                 }),
                  tok.end());
        if (tok.empty())
            continue;
        try {
            const auto dash = tok.find('-');
            if (dash == std::string::npos) {
                out.push_back(static_cast<uint32_t>(std::stoul(tok)));
                continue;
            }
            const uint64_t lo = std::stoul(tok.substr(0, dash));
            const uint64_t hi = std::stoul(tok.substr(dash + 1));
            // Bound the span so a corrupt "0-4294967295" cannot
            // allocate the world.
            if (hi < lo || hi - lo > 4096)
                continue;
            for (uint64_t c = lo; c <= hi; ++c)
                out.push_back(static_cast<uint32_t>(c));
        } catch (...) {
            continue;
        }
    }
    return out;
}

Topology
Topology::parse(const std::string &sysfs_root)
{
    Topology t;
    const std::string cpuRoot = sysfs_root + "/devices/system/cpu";
    std::vector<uint32_t> online =
        parseCpuList(readLine(cpuRoot + "/online"));
    if (online.empty()) {
        // No sysfs view (non-Linux, locked-down container): one flat
        // node with hardware_concurrency CPUs.
        const uint32_t hw =
            std::max(1u, std::thread::hardware_concurrency());
        for (uint32_t c = 0; c < hw; ++c)
            online.push_back(c);
    }

    // NUMA membership comes from the node side of the tree (each
    // node's cpulist); CPUs not claimed by any node default to node 0.
    std::unordered_map<uint32_t, uint32_t> cpuNode;
    const std::string nodeRoot = sysfs_root + "/devices/system/node";
    for (uint32_t n : parseCpuList(readLine(nodeRoot + "/online"))) {
        const std::string cpulist =
            readLine(nodeRoot + "/node" + std::to_string(n) + "/cpulist");
        for (uint32_t c : parseCpuList(cpulist))
            cpuNode.emplace(c, n);
    }

    t.cpus_.reserve(online.size());
    for (uint32_t c : online) {
        CpuPlace p;
        p.cpu = c;
        p.package = readUint(cpuRoot + "/cpu" + std::to_string(c) +
                                 "/topology/physical_package_id",
                             0);
        const auto it = cpuNode.find(c);
        p.node = it == cpuNode.end() ? 0 : it->second;
        t.cpus_.push_back(p);
    }
    return t;
}

const Topology &
Topology::host()
{
    static const Topology t = parse("/sys");
    return t;
}

uint32_t
Topology::nodes() const
{
    std::vector<uint32_t> seen;
    for (const auto &p : cpus_)
        seen.push_back(p.node);
    std::sort(seen.begin(), seen.end());
    seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
    return static_cast<uint32_t>(seen.size());
}

uint32_t
Topology::packages() const
{
    std::vector<uint32_t> seen;
    for (const auto &p : cpus_)
        seen.push_back(p.package);
    std::sort(seen.begin(), seen.end());
    seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
    return static_cast<uint32_t>(seen.size());
}

std::vector<uint32_t>
Topology::placement(uint32_t workers) const
{
    if (workers == 0 || cpus_.empty())
        return {};
    std::vector<CpuPlace> order = cpus_;
    std::stable_sort(order.begin(), order.end(),
                     [](const CpuPlace &a, const CpuPlace &b) {
                         if (a.node != b.node)
                             return a.node < b.node;
                         if (a.package != b.package)
                             return a.package < b.package;
                         return a.cpu < b.cpu;
                     });
    std::vector<uint32_t> out(workers);
    for (uint32_t i = 0; i < workers; ++i)
        out[i] = order[i % order.size()].cpu;
    return out;
}

bool
pinCurrentThread(uint32_t cpu)
{
#ifdef __linux__
    if (cpu >= CPU_SETSIZE)
        return false;
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(cpu, &set);
    return sched_setaffinity(0, sizeof(set), &set) == 0;
#else
    (void)cpu;
    return false;
#endif
}

} // namespace grow::util
