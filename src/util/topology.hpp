/**
 * @file
 * Host CPU topology discovery for worker placement.
 *
 * The simulator's worker pool (util/work_pool.hpp) fans cycle-level
 * lanes out across cores. Where those workers land matters: lanes of
 * one inference share read-only graph operands, so keeping workers on
 * one socket/NUMA node preserves LLC sharing and avoids cross-node
 * traffic on every CSR access. Topology parses the Linux sysfs view
 * (`/sys/devices/system/cpu`, `/sys/devices/system/node`) into an
 * ordered CPU list and computes a node-major compact placement; the
 * pool then best-effort pins each worker to its assigned CPU.
 *
 * Everything degrades gracefully: on hosts without the sysfs files
 * (containers, non-Linux) the topology collapses to "one node, one
 * package, hardware_concurrency CPUs" and pinning becomes a no-op.
 * parse() takes the sysfs root as a parameter so tests can point it at
 * a fabricated tree.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace grow::util {

/** One online logical CPU and where it lives. */
struct CpuPlace
{
    uint32_t cpu = 0;     ///< logical CPU id
    uint32_t package = 0; ///< physical socket
    uint32_t node = 0;    ///< NUMA node
};

/** Parse a kernel cpulist string ("0-3,8,10-11") into CPU ids. */
std::vector<uint32_t> parseCpuList(const std::string &list);

class Topology
{
  public:
    /** Empty topology (no CPUs known). */
    Topology() = default;

    /**
     * Parse the sysfs tree under @p sysfs_root (normally "/sys").
     * Missing files degrade to single-package/single-node; a missing
     * online-CPU list degrades to hardware_concurrency CPUs.
     */
    static Topology parse(const std::string &sysfs_root);

    /** The host topology, parsed once from /sys and cached. */
    static const Topology &host();

    const std::vector<CpuPlace> &cpus() const { return cpus_; }

    /** Distinct NUMA nodes / packages seen. */
    uint32_t nodes() const;
    uint32_t packages() const;

    /**
     * Assign @p workers worker threads to CPUs, node-major and
     * compact: all CPUs of node 0 (by package, then id) before node 1,
     * wrapping round-robin when workers exceed the CPU count. Compact
     * beats spreading here because co-simulating lanes share read-only
     * operands -- same-socket workers hit the same LLC lines.
     */
    std::vector<uint32_t> placement(uint32_t workers) const;

  private:
    std::vector<CpuPlace> cpus_;
};

/**
 * Best-effort pin of the calling thread to @p cpu (Linux
 * sched_setaffinity). Returns whether the pin took effect; failure is
 * never an error -- placement is an optimisation, not a contract.
 */
bool pinCurrentThread(uint32_t cpu);

} // namespace grow::util
