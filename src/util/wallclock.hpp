/**
 * @file
 * Host wall-clock instrumentation for the simulator itself.
 *
 * Everything else in the repository measures *modeled* time (cycles of
 * the simulated accelerator). WallClock/ScopedTimer measure the *host*
 * time the simulator spends producing those cycles, feeding the
 * `sim-speed` metric family (wall-clock per phase/bench, simulated
 * rows per host second) that bench_suite emits into BENCH_GROW.json
 * when `profile=1`.
 *
 * Wall-clock readings are inherently nondeterministic, so they must
 * never leak into golden-locked output: profiling is opt-in, the
 * records carry their own units ("ms", "rows/s") outside the
 * default-gated set, and tools/report_diff only gates them through an
 * explicit per-metric tolerance override (`tol.rows/s=0.15`).
 */
#pragma once

#include <chrono>

namespace grow::util {

/** Monotonic stopwatch, started at construction. */
class WallClock
{
  public:
    WallClock() : start_(std::chrono::steady_clock::now()) {}

    /** Restart the stopwatch. */
    void restart() { start_ = std::chrono::steady_clock::now(); }

    /** Elapsed host milliseconds since construction/restart. */
    double
    elapsedMs() const
    {
        auto d = std::chrono::steady_clock::now() - start_;
        return std::chrono::duration<double, std::milli>(d).count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

/** Adds the elapsed milliseconds of its scope to an accumulator. */
class ScopedTimer
{
  public:
    explicit ScopedTimer(double &accum_ms) : accum_(accum_ms) {}
    ~ScopedTimer() { accum_ += clock_.elapsedMs(); }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    double &accum_;
    WallClock clock_;
};

/** Simulated rows per host second (0 when no time elapsed). */
inline double
rowsPerSecond(uint64_t rows, double wall_ms)
{
    return wall_ms > 0.0
               ? static_cast<double>(rows) * 1000.0 / wall_ms
               : 0.0;
}

} // namespace grow::util
