#include "util/work_pool.hpp"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>

#include "util/logging.hpp"

namespace grow::util {

uint32_t
checkedThreadCount(int64_t requested)
{
    const uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
    const int64_t limit = static_cast<int64_t>(hw) * 4;
    if (requested < 1)
        fatal("threads must be >= 1, got " + std::to_string(requested) +
              " (omit threads= for one worker per core; threads=1 is "
              "the serial baseline)");
    if (requested > limit)
        fatal("threads=" + std::to_string(requested) + " exceeds 4x the "
              "hardware concurrency (" + std::to_string(hw) +
              " cores, limit " + std::to_string(limit) +
              "): refusing to oversubscribe that hard");
    return static_cast<uint32_t>(requested);
}

void
rethrowFirstError(const std::vector<std::exception_ptr> &errors)
{
    for (const auto &e : errors)
        if (e)
            std::rethrow_exception(e);
}

/**
 * One runAll() invocation. Owned by shared_ptr: a claim ticket that a
 * worker only picks up after the batch already drained must find the
 * control block alive (and see no unclaimed task), not dangling
 * caller-stack memory.
 */
struct WorkPool::Batch
{
    std::vector<std::function<void()>> tasks;
    std::vector<std::exception_ptr> errors;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex m;
    std::condition_variable cv;
};

struct WorkPool::Impl
{
    std::mutex m;
    std::condition_variable cv;
    /** Claim tickets: one entry per helper invited into a batch. */
    std::deque<std::shared_ptr<Batch>> tickets;
    bool stop = false;
};

WorkPool::WorkPool(uint32_t workers) : impl_(std::make_unique<Impl>())
{
    workers_.reserve(workers);
    for (uint32_t i = 0; i < workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

WorkPool::~WorkPool()
{
    {
        std::lock_guard<std::mutex> lk(impl_->m);
        impl_->stop = true;
    }
    impl_->cv.notify_all();
    for (auto &t : workers_)
        t.join();
}

WorkPool &
WorkPool::shared()
{
    // The caller of runAll() always participates, so the shared pool
    // keeps hardware_concurrency - 1 workers: full-width fan-out uses
    // exactly one thread per core with no oversubscription.
    static WorkPool pool(std::max(1u, std::thread::hardware_concurrency()) -
                         1);
    return pool;
}

void
WorkPool::help(Batch &batch)
{
    const size_t size = batch.tasks.size();
    while (true) {
        const size_t i = batch.next.fetch_add(1);
        if (i >= size)
            return;
        try {
            batch.tasks[i]();
        } catch (...) {
            batch.errors[i] = std::current_exception();
        }
        if (batch.done.fetch_add(1) + 1 == size) {
            // Empty critical section: the waiter must not check the
            // predicate between our done increment and the notify.
            std::lock_guard<std::mutex> lk(batch.m);
            batch.cv.notify_all();
        }
    }
}

void
WorkPool::workerLoop()
{
    while (true) {
        std::shared_ptr<Batch> batch;
        {
            std::unique_lock<std::mutex> lk(impl_->m);
            impl_->cv.wait(lk, [this] {
                return impl_->stop || !impl_->tickets.empty();
            });
            if (impl_->stop)
                return;
            batch = std::move(impl_->tickets.front());
            impl_->tickets.pop_front();
        }
        help(*batch);
    }
}

std::vector<std::exception_ptr>
WorkPool::runAll(std::vector<std::function<void()>> tasks,
                 uint32_t max_parallel)
{
    if (tasks.empty())
        return {};
    auto batch = std::make_shared<Batch>();
    batch->errors.resize(tasks.size());
    batch->tasks = std::move(tasks);

    // Invite helpers: the caller is one executor, so max_parallel - 1
    // tickets bound the in-flight task count at max_parallel; never
    // more tickets than workers or tasks could use.
    const size_t budget = max_parallel == 0 ? workers_.size()
                                            : max_parallel - 1;
    uint32_t helpers = static_cast<uint32_t>(std::min<size_t>(
        {budget, workers_.size(), batch->tasks.size() - 1}));
    if (helpers > 0) {
        {
            std::lock_guard<std::mutex> lk(impl_->m);
            for (uint32_t i = 0; i < helpers; ++i)
                impl_->tickets.push_back(batch);
        }
        impl_->cv.notify_all();
    }

    help(*batch);
    {
        std::unique_lock<std::mutex> lk(batch->m);
        batch->cv.wait(lk, [&] {
            return batch->done.load() == batch->tasks.size();
        });
    }
    return std::move(batch->errors);
}

} // namespace grow::util
