#include "util/work_pool.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <mutex>
#include <utility>

#include "util/logging.hpp"
#include "util/topology.hpp"

namespace grow::util {

uint32_t
checkedThreadCount(int64_t requested)
{
    const uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
    const int64_t limit = static_cast<int64_t>(hw) * 4;
    if (requested < 1)
        fatal("threads must be >= 1, got " + std::to_string(requested) +
              " (omit threads= for one worker per core; threads=1 is "
              "the serial baseline)");
    if (requested > limit)
        fatal("threads=" + std::to_string(requested) + " exceeds 4x the "
              "hardware concurrency (" + std::to_string(hw) +
              " cores, limit " + std::to_string(limit) +
              "): refusing to oversubscribe that hard");
    return static_cast<uint32_t>(requested);
}

void
rethrowFirstError(const std::vector<std::exception_ptr> &errors)
{
    for (const auto &e : errors)
        if (e)
            std::rethrow_exception(e);
}

namespace {

/** Tasks per completion-tree leaf counter (one cacheline each). */
constexpr size_t kLeafFan = 8;

/** Worker has no assigned CPU (topology too narrow to pin). */
constexpr uint32_t kNoCpu = UINT32_MAX;

/** Retired batches kept for reuse; beyond this they just die. */
constexpr size_t kMaxSpareBatches = 4;

} // namespace

/**
 * One runAll() invocation. Owned by shared_ptr: a claim ticket that a
 * worker only picks up after the batch already drained must find the
 * control block alive (and see no unclaimed task), not dangling
 * caller-stack memory. Retired batches are pooled (WorkPool::Impl::
 * spares) and reset() for the next submission, so steady-state
 * epoch-round fan-out allocates nothing.
 */
struct WorkPool::Batch
{
    std::vector<std::function<void()>> tasks;
    std::vector<std::exception_ptr> errors;
    std::atomic<size_t> next{0};

    /**
     * Completion tree: task i retires into leaf i / kLeafFan; the last
     * task of a leaf retires the leaf into doneLeaves, which is the
     * only word the caller parks on. Workers thus contend on
     * ceil(size / kLeafFan) distinct cachelines instead of one hot
     * counter, and the caller is woken exactly once.
     */
    struct alignas(64) Leaf
    {
        std::atomic<size_t> done{0};
    };
    std::unique_ptr<Leaf[]> leaves;
    size_t numLeaves = 0;
    size_t leafCapacity = 0;
    std::atomic<size_t> doneLeaves{0};

    /** Arm for a new submission (caller must hold the only reference). */
    void reset(std::vector<std::function<void()>> new_tasks)
    {
        tasks = std::move(new_tasks);
        errors.assign(tasks.size(), std::exception_ptr());
        next.store(0, std::memory_order_relaxed);
        numLeaves = (tasks.size() + kLeafFan - 1) / kLeafFan;
        if (numLeaves > leafCapacity) {
            leaves = std::make_unique<Leaf[]>(numLeaves);
            leafCapacity = numLeaves;
        } else {
            for (size_t g = 0; g < numLeaves; ++g)
                leaves[g].done.store(0, std::memory_order_relaxed);
        }
        doneLeaves.store(0, std::memory_order_relaxed);
    }
};

struct WorkPool::Impl
{
    std::mutex m;

    /** One announced batch; takers count the invites down. */
    struct Ticket
    {
        std::shared_ptr<Batch> batch;
        uint32_t invites = 0;
    };
    std::deque<Ticket> tickets;

    /**
     * Per-worker parking slot: a worker that finds no ticket loads its
     * epoch under the lock, registers on the idle stack and futex-
     * waits on the epoch outside the lock. A waker pops the id, bumps
     * the epoch and notifies that one slot -- the bump-after-load
     * ordering through the mutex makes the wakeup lossless.
     */
    struct alignas(64) Slot
    {
        std::atomic<uint32_t> epoch{0};
        bool parkedListed = false; ///< under m: id is on `idle`
    };
    std::unique_ptr<Slot[]> slots;
    std::vector<uint32_t> idle; ///< LIFO of parked worker ids (under m)

    /** Retired batches available for reuse (under m). */
    std::vector<std::shared_ptr<Batch>> spares;

    /** Fire-and-forget tasks (trySubmit) awaiting a worker (under m). */
    std::deque<std::function<void()>> detached;
    /** Detached tasks submitted but not yet finished (drain futex). */
    std::atomic<uint64_t> detachedPending{0};

    bool stop = false;
};

WorkPool::WorkPool(uint32_t workers) : impl_(std::make_unique<Impl>())
{
    impl_->slots = std::make_unique<Impl::Slot[]>(workers);
    impl_->idle.reserve(workers);
    // Topology-aware placement: pin workers node-major/compact when
    // the host has a CPU for each worker; on narrower machines (CI
    // containers, oversubscribed pools) leave placement to the
    // scheduler rather than stack pinned workers on one core.
    const Topology &topo = Topology::host();
    std::vector<uint32_t> place;
    if (workers > 0 && workers <= topo.cpus().size())
        place = topo.placement(workers);
    workers_.reserve(workers);
    for (uint32_t i = 0; i < workers; ++i) {
        const uint32_t cpu = place.empty() ? kNoCpu : place[i];
        workers_.emplace_back([this, i, cpu] {
            if (cpu != kNoCpu)
                pinCurrentThread(cpu);
            workerLoop(i);
        });
    }
}

WorkPool::~WorkPool()
{
    // Detached work first: a task handed to trySubmit() before the
    // destructor began must run, not vanish with the workers.
    drainDetached();
    {
        std::lock_guard<std::mutex> lk(impl_->m);
        impl_->stop = true;
    }
    for (size_t i = 0; i < workers_.size(); ++i) {
        impl_->slots[i].epoch.fetch_add(1, std::memory_order_release);
        impl_->slots[i].epoch.notify_one();
    }
    for (auto &t : workers_)
        t.join();
}

WorkPool &
WorkPool::shared()
{
    // The caller of runAll() always participates, so the shared pool
    // keeps hardware_concurrency - 1 workers: full-width fan-out uses
    // exactly one thread per core with no oversubscription.
    static WorkPool pool(std::max(1u, std::thread::hardware_concurrency()) -
                         1);
    return pool;
}

void
WorkPool::help(Batch &batch)
{
    const size_t size = batch.tasks.size();
    while (true) {
        const size_t i = batch.next.fetch_add(1);
        if (i >= size)
            return;
        try {
            batch.tasks[i]();
        } catch (...) {
            batch.errors[i] = std::current_exception();
        }
        const size_t leaf = i / kLeafFan;
        const size_t group = std::min(kLeafFan, size - leaf * kLeafFan);
        if (batch.leaves[leaf].done.fetch_add(1) + 1 == group) {
            if (batch.doneLeaves.fetch_add(1) + 1 == batch.numLeaves)
                batch.doneLeaves.notify_all();
        }
    }
}

void
WorkPool::workerLoop(uint32_t id)
{
    Impl &impl = *impl_;
    Impl::Slot &slot = impl.slots[id];
    while (true) {
        std::shared_ptr<Batch> batch;
        std::function<void()> fire;
        uint32_t seen = 0;
        {
            std::unique_lock<std::mutex> lk(impl.m);
            // Stop is honoured only once no work is pending: a pool
            // being torn down finishes what was already submitted
            // (tickets have a participating caller; detached tasks
            // have nobody else).
            if (!impl.tickets.empty()) {
                Impl::Ticket &t = impl.tickets.front();
                batch = t.batch; // refcount bump only, no allocation
                if (--t.invites == 0)
                    impl.tickets.pop_front();
            } else if (!impl.detached.empty()) {
                fire = std::move(impl.detached.front());
                impl.detached.pop_front();
            } else if (impl.stop) {
                return;
            } else {
                // The epoch load is ordered before any waker's bump by
                // the mutex, so wait(seen) below cannot miss a wakeup:
                // a bump between unlock and wait makes it return
                // immediately.
                seen = slot.epoch.load(std::memory_order_relaxed);
                if (!slot.parkedListed) {
                    slot.parkedListed = true;
                    impl.idle.push_back(id);
                }
            }
        }
        if (batch) {
            help(*batch);
            continue;
        }
        if (fire) {
            try {
                fire();
            } catch (const std::exception &e) {
                logError(std::string("detached pool task threw: ") +
                         e.what());
            } catch (...) {
                logError("detached pool task threw a non-std exception");
            }
            // Destroy the closure before announcing completion: drain
            // waiters may rely on resources the closure owns being
            // released.
            fire = nullptr;
            impl.detachedPending.fetch_sub(1, std::memory_order_release);
            impl.detachedPending.notify_all();
            continue;
        }
        slot.epoch.wait(seen);
    }
}

std::vector<std::exception_ptr>
WorkPool::runAll(std::vector<std::function<void()>> tasks,
                 uint32_t max_parallel)
{
    if (tasks.empty())
        return {};
    const size_t size = tasks.size();

    // Reuse a retired batch when the spare list holds the only
    // reference (no straggling helper can still touch its counters).
    std::shared_ptr<Batch> batch;
    {
        std::lock_guard<std::mutex> lk(impl_->m);
        auto &spares = impl_->spares;
        for (auto it = spares.begin(); it != spares.end(); ++it) {
            if (it->use_count() == 1) {
                batch = std::move(*it);
                spares.erase(it);
                break;
            }
        }
    }
    if (!batch)
        batch = std::make_shared<Batch>();
    batch->reset(std::move(tasks));

    // Invite helpers: the caller is one executor, so max_parallel - 1
    // invites bound the in-flight task count at max_parallel; never
    // more invites than workers or tasks could use.
    const size_t budget = max_parallel == 0 ? workers_.size()
                                            : max_parallel - 1;
    const uint32_t helpers = static_cast<uint32_t>(
        std::min<size_t>({budget, workers_.size(), size - 1}));
    if (helpers > 0) {
        // One ticket for the whole batch, then targeted wakeups of
        // exactly the parked workers wanted. Busy workers re-check the
        // ticket queue before parking, so invites beyond the parked
        // population are picked up as workers free up.
        std::vector<uint32_t> wake;
        wake.reserve(helpers);
        {
            std::lock_guard<std::mutex> lk(impl_->m);
            impl_->tickets.push_back(Impl::Ticket{batch, helpers});
            for (uint32_t h = 0; h < helpers && !impl_->idle.empty();
                 ++h) {
                const uint32_t id = impl_->idle.back();
                impl_->idle.pop_back();
                impl_->slots[id].parkedListed = false;
                wake.push_back(id);
            }
        }
        for (uint32_t id : wake) {
            impl_->slots[id].epoch.fetch_add(1, std::memory_order_release);
            impl_->slots[id].epoch.notify_one();
        }
    }

    help(*batch);
    // Park on the completion-tree root until every leaf retired.
    size_t seen = batch->doneLeaves.load(std::memory_order_acquire);
    while (seen != batch->numLeaves) {
        batch->doneLeaves.wait(seen);
        seen = batch->doneLeaves.load(std::memory_order_acquire);
    }

    std::vector<std::exception_ptr> errors = std::move(batch->errors);
    {
        std::lock_guard<std::mutex> lk(impl_->m);
        // Pool the batch only when we hold the sole reference: a late
        // taker of a drained ticket may still read tasks.size(), so
        // the closures can only be dropped once nobody else can look.
        if (batch.use_count() == 1 &&
            impl_->spares.size() < kMaxSpareBatches) {
            batch->tasks.clear();
            impl_->spares.push_back(std::move(batch));
        }
    }
    return errors;
}

bool
WorkPool::trySubmit(std::function<void()> task)
{
    if (workers_.empty())
        return false;
    uint32_t wakeId = 0;
    bool haveWake = false;
    {
        std::lock_guard<std::mutex> lk(impl_->m);
        if (impl_->stop)
            return false;
        impl_->detached.push_back(std::move(task));
        impl_->detachedPending.fetch_add(1, std::memory_order_relaxed);
        if (!impl_->idle.empty()) {
            wakeId = impl_->idle.back();
            impl_->idle.pop_back();
            impl_->slots[wakeId].parkedListed = false;
            haveWake = true;
        }
        // No parked worker: a busy one re-checks the detached queue
        // before parking, so the task is picked up as workers free up.
    }
    if (haveWake) {
        impl_->slots[wakeId].epoch.fetch_add(1, std::memory_order_release);
        impl_->slots[wakeId].epoch.notify_one();
    }
    return true;
}

uint32_t
WorkPool::idleWorkers() const
{
    std::lock_guard<std::mutex> lk(impl_->m);
    return static_cast<uint32_t>(impl_->idle.size());
}

uint64_t
WorkPool::detachedPending() const
{
    return impl_->detachedPending.load(std::memory_order_acquire);
}

void
WorkPool::drainDetached()
{
    uint64_t pending;
    while ((pending = impl_->detachedPending.load(
                std::memory_order_acquire)) != 0)
        impl_->detachedPending.wait(pending);
}

uint32_t
parallelForChunks(uint64_t n)
{
    // Fixed chunk plan per n: enough chunks that a wide pool load-
    // balances, few enough that per-chunk overhead stays invisible.
    // Deliberately independent of the thread count -- chunk boundaries
    // are part of the deterministic contract.
    constexpr uint64_t kMaxChunks = 64;
    constexpr uint64_t kMinChunkItems = 2048;
    if (n == 0)
        return 0;
    const uint64_t byGranularity = (n + kMinChunkItems - 1) / kMinChunkItems;
    return static_cast<uint32_t>(std::min(kMaxChunks, byGranularity));
}

void
parallelFor(uint64_t n,
            uint32_t threads,
            const std::function<void(uint64_t, uint64_t, uint32_t)> &fn)
{
    const uint32_t chunks = parallelForChunks(n);
    if (chunks == 0)
        return;
    auto chunkBounds = [n, chunks](uint32_t c) {
        // Even split: the first (n % chunks) chunks get one extra item.
        const uint64_t base = n / chunks;
        const uint64_t extra = n % chunks;
        const uint64_t begin =
            c * base + std::min<uint64_t>(c, extra);
        const uint64_t end = begin + base + (c < extra ? 1 : 0);
        return std::pair<uint64_t, uint64_t>(begin, end);
    };
    if (threads <= 1 || chunks == 1) {
        // Identical chunk sequence, executed inline in ascending order.
        for (uint32_t c = 0; c < chunks; ++c) {
            auto [begin, end] = chunkBounds(c);
            fn(begin, end, c);
        }
        return;
    }
    std::vector<std::function<void()>> tasks;
    tasks.reserve(chunks);
    for (uint32_t c = 0; c < chunks; ++c) {
        auto [begin, end] = chunkBounds(c);
        tasks.push_back([&fn, begin, end, c] { fn(begin, end, c); });
    }
    rethrowFirstError(WorkPool::shared().runAll(std::move(tasks), threads));
}

} // namespace grow::util
